package hirata

// Validates the obs what-if estimator the only way that counts: against
// actual re-simulations with the changed core.Config. The estimator's
// claim is an interval [Low, High] for the re-run's cycle count; these
// tests run the paper's ray-trace workload, ask for "+1 load/store unit",
// "+1 ALU" and "+1 thread slot", then perform the real re-runs
// (Config.ExtraUnits / LoadStoreUnits / ThreadSlots) and check the
// interval brackets the measurement.

import (
	"testing"

	"hirata/internal/core"
	"hirata/internal/isa"
	"hirata/internal/obs"
)

// whatIfTolerance absorbs second-order scheduling effects the bound cannot
// model (a relaxed resource reshuffles arbitration); the interval must
// still bracket the re-run within 2%.
const whatIfTolerance = 0.02

func rayTraceObserved(t *testing.T, cfg core.Config) (*Collector, MTResult, *RayTrace) {
	t.Helper()
	rt, err := BuildRayTrace(RayTraceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.NewMemory(rt.Par, cfg.ThreadSlots)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(cfg, CollectorOptions{})
	res, err := RunMTObserved(cfg, rt.Par.Text, m, []Observer{c})
	if err != nil {
		t.Fatal(err)
	}
	return c, res, rt
}

func rayTraceRerun(t *testing.T, rt *RayTrace, cfg core.Config) MTResult {
	t.Helper()
	m, err := rt.NewMemory(rt.Par, cfg.ThreadSlots)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMT(cfg, rt.Par.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkBracket asserts actual ∈ [Low·(1−tol), High·(1+tol)].
func checkBracket(t *testing.T, est obs.Estimate, actual uint64) {
	t.Helper()
	low := float64(est.Low) * (1 - whatIfTolerance)
	high := float64(est.High) * (1 + whatIfTolerance)
	if f := float64(actual); f < low || f > high {
		t.Errorf("%s: actual re-run took %d cycles, outside estimate [%d, %d] (±%.0f%%)",
			est.Scenario, actual, est.Low, est.High, 100*whatIfTolerance)
	}
	if actual > est.Baseline+est.Baseline/50 {
		t.Errorf("%s: relaxing the machine slowed the run: %d → %d cycles", est.Scenario, est.Baseline, actual)
	}
}

func TestWhatIfUnitBoundsAgainstRerun(t *testing.T) {
	base := core.Config{ThreadSlots: 8, LoadStoreUnits: 1, StandbyStations: true, RotationInterval: 8}
	c, res, rt := rayTraceObserved(t, base)

	estLS, err := c.WhatIf(obs.Scenario{Kind: "unit", Unit: isa.UnitLoadStore, Label: "+1 LoadStore"})
	if err != nil {
		t.Fatal(err)
	}
	estALU, err := c.WhatIf(obs.Scenario{Kind: "unit", Unit: isa.UnitIntALU, Label: "+1 IntALU"})
	if err != nil {
		t.Fatal(err)
	}
	if estLS.Baseline != res.Cycles {
		t.Fatalf("estimate baseline %d, observed run took %d", estLS.Baseline, res.Cycles)
	}

	// The 8-thread ray trace on one load/store unit is LS-bound (the paper's
	// Table 2 shows the second LS unit matters); the critical path must
	// charge more to load/store contention than to the ALUs.
	if estLS.Attributed <= estALU.Attributed {
		t.Errorf("path charges LS %d ≤ ALU %d cycles; expected the 1-LS machine to be LS-bound",
			estLS.Attributed, estALU.Attributed)
	}

	lsCfg := base
	lsCfg.LoadStoreUnits = 2
	checkBracket(t, estLS, rayTraceRerun(t, rt, lsCfg).Cycles)

	aluCfg := base
	aluCfg.ExtraUnits[isa.UnitIntALU] = 1
	checkBracket(t, estALU, rayTraceRerun(t, rt, aluCfg).Cycles)
}

func TestWhatIfSlotBoundAgainstRerun(t *testing.T) {
	base := core.Config{ThreadSlots: 4, LoadStoreUnits: 2, StandbyStations: true, RotationInterval: 8}
	c, res, rt := rayTraceObserved(t, base)

	est, err := c.WhatIf(obs.Scenario{Kind: "slot", Label: "+1 thread slot"})
	if err != nil {
		t.Fatal(err)
	}
	if est.Baseline != res.Cycles {
		t.Fatalf("estimate baseline %d, observed run took %d", est.Baseline, res.Cycles)
	}
	// The +1-slot re-run needs a memory image built for 5 workers: the
	// parallel program reads its thread count from memory at fork time.
	grown := base
	grown.ThreadSlots = 5
	checkBracket(t, est, rayTraceRerun(t, rt, grown).Cycles)
}
