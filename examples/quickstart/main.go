// Quickstart: assemble a small multithreaded program and run it on the
// simulated processor.
//
// The program fast-forks onto every thread slot; each logical processor
// computes the square of (tid+1) and stores it. The run prints per-unit
// utilization and the cycle count, then the same work executed
// sequentially on the baseline RISC machine for comparison.
package main

import (
	"fmt"
	"log"

	"hirata"
)

const parallelSrc = `
	.data
	.org 8
out:	.space 8
	.text
	ffork              ; start a thread on every other slot
	tid  r1            ; logical processor identifier
	addi r2, r1, 1
	mul  r3, r2, r2    ; (tid+1)^2 on the integer multiplier
	itof f1, r3
	fsqrt f2, f1       ; and back via the FP divider, for variety
	ftoi r4, f2
	sw   r3, out(r1)
	halt
`

const sequentialSrc = `
	.data
	.org 8
out:	.space 8
	.text
	li   r1, 0
loop:	addi r2, r1, 1
	mul  r3, r2, r2
	itof f1, r3
	fsqrt f2, f1
	ftoi r4, f2
	sw   r3, out(r1)
	addi r1, r1, 1
	slti r5, r1, 8
	bnez r5, loop
	halt
`

func main() {
	prog, err := hirata.Assemble(parallelSrc)
	if err != nil {
		log.Fatal(err)
	}
	m, err := prog.NewMemory(64)
	if err != nil {
		log.Fatal(err)
	}
	cfg := hirata.MTConfig{ThreadSlots: 8, LoadStoreUnits: 2, StandbyStations: true}
	res, err := hirata.RunMT(cfg, prog.Text, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("multithreaded run (8 thread slots):")
	fmt.Print(res.String())
	out := prog.MustSymbol("out")
	for i := int64(0); i < 8; i++ {
		fmt.Printf("  thread %d stored %d\n", i, m.IntAt(out+i))
	}

	seq, err := hirata.Assemble(sequentialSrc)
	if err != nil {
		log.Fatal(err)
	}
	ms, err := seq.NewMemory(64)
	if err != nil {
		log.Fatal(err)
	}
	rres, err := hirata.RunRISC(hirata.RISCConfig{LoadStoreUnits: 2}, seq.Text, ms)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsequential baseline: %d cycles (vs %d multithreaded, %.2fx)\n",
		rres.Cycles, res.Cycles, float64(rres.Cycles)/float64(res.Cycles))
}
