// Compiler: workloads at source level. The paper compiled its programs
// with a commercial C compiler; this example uses the bundled MinC
// compiler (docs/MINC.md) to build a kernel — explicit 1-D heat diffusion
// with a flag-based barrier between sweeps — and runs it on 1..8 logical
// processors, verifying every cell against the same computation in Go.
package main

import (
	"fmt"
	"log"

	"hirata"
)

const kernel = `
global int   n = 256;
global int   steps = 40;
global float cur[258];
global float nxt[258];
global int   phase[8];     // per-thread sweep counters (single writer each)

func main() {
    fork();
    int me = tid();
    int stride = nthreads();

    // Each thread initialises its stripe: a hot spike in the middle.
    int i = me + 1;
    while (i <= n) {
        cur[i] = 0.0;
        if (i == n / 2) { cur[i] = 100.0; }
        i = i + stride;
    }
    phase[me] = 1;
    for (int u = 0; u < stride; u = u + 1) {
        while (phase[u] < 1) { }
    }

    // Explicit diffusion sweeps with a sense-free barrier: every thread
    // publishes its sweep count (it is the only writer of phase[me]) and
    // waits for all others before reading neighbour cells again.
    for (int s = 0; s < steps; s = s + 1) {
        int k = me + 1;
        if (s % 2 == 0) {
            while (k <= n) {
                nxt[k] = cur[k] + 0.25 * (cur[k-1] - 2.0 * cur[k] + cur[k+1]);
                k = k + stride;
            }
        } else {
            while (k <= n) {
                cur[k] = nxt[k] + 0.25 * (nxt[k-1] - 2.0 * nxt[k] + nxt[k+1]);
                k = k + stride;
            }
        }
        phase[me] = s + 2;
        for (int u = 0; u < stride; u = u + 1) {
            while (phase[u] < s + 2) { }
        }
    }
}
`

func main() {
	prog, err := hirata.CompileMinC(kernel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d instructions from %d source lines\n\n",
		len(prog.Text), countLines(kernel))

	run := func(slots int) uint64 {
		m, err := prog.NewMemory(1024)
		if err != nil {
			log.Fatal(err)
		}
		hirata.SetMinCThreads(prog, m, slots)
		res, err := hirata.RunMT(hirata.MTConfig{
			ThreadSlots:     slots,
			LoadStoreUnits:  2,
			StandbyStations: true,
		}, prog.Text, m)
		if err != nil {
			log.Fatal(err)
		}
		verify(prog, m)
		return res.Cycles
	}

	seq := run(1)
	fmt.Printf("1 thread slot:  %8d cycles (verified)\n", seq)
	for _, slots := range []int{2, 4, 8} {
		cyc := run(slots)
		fmt.Printf("%d thread slots: %8d cycles  (speed-up %.2f, verified)\n",
			slots, cyc, float64(seq)/float64(cyc))
	}
}

// verify recomputes the diffusion in Go and compares every cell.
func verify(prog *hirata.Program, m *hirata.Memory) {
	const n, steps = 256, 40
	cur := make([]float64, n+2)
	nxt := make([]float64, n+2)
	cur[n/2] = 100.0
	for s := 0; s < steps; s++ {
		src, dst := cur, nxt
		if s%2 == 1 {
			src, dst = nxt, cur
		}
		for k := 1; k <= n; k++ {
			dst[k] = src[k] + 0.25*(src[k-1]-2.0*src[k]+src[k+1])
		}
	}
	final, sym := cur, "cur"
	if steps%2 == 1 {
		final, sym = nxt, "nxt"
	}
	base := prog.MustSymbol(sym)
	for k := 1; k <= n; k++ {
		if got := m.FloatAt(base + int64(k)); got != final[k] {
			log.Fatalf("cell %d: simulated %g != reference %g", k, got, final[k])
		}
	}
}

func countLines(s string) int {
	n := 1
	for _, c := range s {
		if c == '\n' {
			n++
		}
	}
	return n
}
