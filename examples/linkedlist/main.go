// Linkedlist: eager execution of a sequential while loop (§2.3.3, §3.5).
//
// The loop walks a linked list and breaks when a data-dependent condition
// turns negative — a loop neither vector nor VLIW machines can
// parallelize. On the multithreaded processor, successive iterations run
// on successive logical processors: the pointer chases through queue
// registers, iterations start before their predecessors finish (eagerly),
// the rotating-priority discipline keeps the earliest iteration supreme,
// and when an iteration hits the break condition it waits for the highest
// priority, publishes its result with priority stores, and kills the
// speculative successors.
package main

import (
	"fmt"
	"log"

	"hirata"
)

func main() {
	const nodes = 200
	for _, breakAt := range []int{-1, 73} {
		cfg := hirata.LinkedListConfig{Nodes: nodes, BreakAt: breakAt}
		ll, err := hirata.BuildLinkedList(cfg)
		if err != nil {
			log.Fatal(err)
		}
		iters := ll.ExpectedIterations()
		if breakAt < 0 {
			fmt.Printf("full traversal of %d nodes:\n", nodes)
		} else {
			fmt.Printf("traversal breaking at node %d:\n", breakAt)
		}

		mSeq, err := ll.NewMemory(ll.Seq, 1)
		if err != nil {
			log.Fatal(err)
		}
		seq, err := hirata.RunRISC(hirata.RISCConfig{LoadStoreUnits: 1}, ll.Seq.Text, mSeq)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  sequential: %6d cycles  (%.2f cycles/iteration)\n",
			seq.Cycles, float64(seq.Cycles)/float64(iters))

		for _, slots := range []int{2, 3, 4, 8} {
			m, err := ll.NewMemory(ll.Par, slots)
			if err != nil {
				log.Fatal(err)
			}
			res, err := hirata.RunMT(hirata.MTConfig{
				ThreadSlots:     slots,
				LoadStoreUnits:  1,
				StandbyStations: true,
			}, ll.Par.Text, m)
			if err != nil {
				log.Fatal(err)
			}
			count := m.IntAt(ll.Par.MustSymbol("gcount"))
			if count != int64(iters) {
				log.Fatalf("%d slots: eager execution visited %d nodes, want %d", slots, count, iters)
			}
			fmt.Printf("  %d slots:    %6d cycles  (%.2f cycles/iteration, speed-up %.2f, kills %d)\n",
				slots, res.Cycles, float64(res.Cycles)/float64(iters),
				float64(seq.Cycles)/float64(res.Cycles), res.Kills)
		}
		fmt.Println()
	}
	fmt.Println("(every run verified: iteration counts and break results match sequential execution)")
}
