// Doacross: parallelising a loop with a loop-carried dependence through
// queue registers (§2.3.1). Livermore Kernel 5 is a first-order linear
// recurrence,
//
//	X(i) = Z(i) * (Y(i) - X(i-1)),
//
// so iteration i cannot even start its multiply before iteration i-1
// finishes — the classic doacross pattern. On the multithreaded processor
// the iterations are dealt round-robin to the logical processors and the
// X values flow around the queue-register ring; everything else in the
// iteration (loads of Y and Z, address arithmetic, the store) overlaps
// with the chain.
package main

import (
	"fmt"
	"log"

	"hirata"
)

func main() {
	const n = 300
	rc, err := hirata.BuildRecurrence(hirata.RecurrenceConfig{N: n})
	if err != nil {
		log.Fatal(err)
	}
	want := rc.Expected()

	mSeq, err := rc.NewMemory(rc.Seq, 1)
	if err != nil {
		log.Fatal(err)
	}
	seq, err := hirata.RunRISC(hirata.RISCConfig{}, rc.Seq.Text, mSeq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("X(i) = Z(i)*(Y(i) - X(i-1)), %d iterations\n\n", n)
	fmt.Printf("sequential: %d cycles (%.2f cycles/iteration)\n", seq.Cycles, float64(seq.Cycles)/n)

	for _, slots := range []int{2, 3, 4, 8} {
		m, err := rc.NewMemory(rc.Par, slots)
		if err != nil {
			log.Fatal(err)
		}
		res, err := hirata.RunMT(hirata.MTConfig{ThreadSlots: slots, StandbyStations: true}, rc.Par.Text, m)
		if err != nil {
			log.Fatal(err)
		}
		got := rc.X(rc.Par, m)
		for i := range want {
			if got[i] != want[i] {
				log.Fatalf("%d slots: X(%d) = %g, want %g", slots, i, got[i], want[i])
			}
		}
		fmt.Printf("%d slots:    %d cycles (%.2f cycles/iteration, speed-up %.2f)\n",
			slots, res.Cycles, float64(res.Cycles)/n, float64(seq.Cycles)/float64(res.Cycles))
	}
	fmt.Println("\nall parallel runs verified bit-identical against the recurrence definition;")
	fmt.Println("speed-up saturates at the length of the X(i-1) -> X(i) dependence chain.")
}
