// Raytrace: the paper's headline experiment (§3.2). A synthetic
// sphere-intersection kernel — the inner loop of a ray tracer — runs
// sequentially on the baseline RISC machine and in parallel on the
// multithreaded processor with 2, 4 and 8 thread slots, with one and two
// load/store units.
//
// Watch the load/store unit utilization climb to ~100% with one unit at 8
// slots: that saturation is why the paper's Table 2 plateaus at 3.22x and
// why adding a second load/store unit restores scaling.
package main

import (
	"fmt"
	"log"

	"hirata"
)

func main() {
	rt, err := hirata.BuildRayTrace(hirata.RayTraceConfig{Rays: 120, Spheres: 12})
	if err != nil {
		log.Fatal(err)
	}

	// Sequential baseline.
	mSeq, err := rt.NewMemory(rt.Seq, 1)
	if err != nil {
		log.Fatal(err)
	}
	base, err := hirata.RunRISC(hirata.RISCConfig{LoadStoreUnits: 1}, rt.Seq.Text, mSeq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential: %d cycles, CPI %.2f\n\n", base.Cycles, base.CPI())

	for _, ls := range []int{1, 2} {
		fmt.Printf("%d load/store unit(s):\n", ls)
		for _, slots := range []int{2, 4, 8} {
			m, err := rt.NewMemory(rt.Par, slots)
			if err != nil {
				log.Fatal(err)
			}
			res, err := hirata.RunMT(hirata.MTConfig{
				ThreadSlots:     slots,
				LoadStoreUnits:  ls,
				StandbyStations: true,
			}, rt.Par.Text, m)
			if err != nil {
				log.Fatal(err)
			}
			busiest := res.BusiestUnit()
			fmt.Printf("  %d slots: %7d cycles  speed-up %.2f  busiest unit %s at %.0f%%\n",
				slots, res.Cycles, float64(base.Cycles)/float64(res.Cycles),
				busiest.Class, busiest.Utilization(res.Cycles))
		}
	}

	// The results are bit-identical to the sequential run.
	m8, err := rt.NewMemory(rt.Par, 8)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := hirata.RunMT(hirata.MTConfig{ThreadSlots: 8, LoadStoreUnits: 2, StandbyStations: true},
		rt.Par.Text, m8); err != nil {
		log.Fatal(err)
	}
	ts, hits := rt.Results(rt.Par, m8)
	tsSeq, hitsSeq := rt.Results(rt.Seq, mSeq)
	for i := range ts {
		if ts[i] != tsSeq[i] || hits[i] != hitsSeq[i] {
			log.Fatalf("ray %d: parallel result differs from sequential", i)
		}
	}
	fmt.Printf("\nverified: all %d per-ray results identical to the sequential run\n", len(ts))
}
