// Livermore: the static code scheduling study (§3.4). Livermore Kernel 1
//
//	X(K) = Q + Y(K)*(R*Z(K+10) + T*Z(K+11))
//
// is compiled three ways — naive dependence-chained order, strategy A
// (list scheduling), and strategy B (list scheduling with a resource
// reservation table and a standby table) — and run on 1..8 thread slots
// with one load/store unit, in explicit-rotation mode with a
// change-priority instruction per iteration.
//
// The interesting numbers: scheduling shortens the single-thread loop
// (paper: 50 -> 42 cycles/iteration), and every strategy converges to the
// structural bound of (3 loads + 1 store) x 2-cycle issue latency = 8
// cycles/iteration as thread slots are added.
package main

import (
	"fmt"
	"log"

	"hirata"
)

func main() {
	const n = 400
	fmt.Printf("Livermore Kernel 1, %d iterations, one load/store unit\n\n", n)
	fmt.Printf("%-6s %-16s %-16s %-16s\n", "slots", "non-optimized", "strategy A", "strategy B")
	for _, slots := range []int{1, 2, 3, 4, 6, 8} {
		fmt.Printf("%-6d", slots)
		for _, strat := range []hirata.Strategy{
			hirata.ScheduleNone, hirata.ScheduleStrategyA, hirata.ScheduleStrategyB,
		} {
			lv, err := hirata.BuildLivermore(hirata.LivermoreConfig{
				N: n, Threads: slots, Strategy: strat, LoadStoreUnits: 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			prog := lv.Par
			if slots == 1 {
				prog = lv.Seq
			}
			m, err := prog.NewMemory(64)
			if err != nil {
				log.Fatal(err)
			}
			res, err := hirata.RunMT(hirata.MTConfig{
				ThreadSlots:     slots,
				LoadStoreUnits:  1,
				StandbyStations: true,
			}, prog.Text, m)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %-16.2f", float64(res.Cycles)/float64(n))

			// Verify against the closed-form result.
			want := lv.Expected()
			got := lv.X(prog, m)
			for k := range want {
				if got[k] != want[k] {
					log.Fatalf("%v, %d slots: X(%d) = %g, want %g", strat, slots, k, got[k], want[k])
				}
			}
		}
		fmt.Println()
	}
	fmt.Println("\n(cycles per iteration; all runs verified against the closed-form result)")
}
