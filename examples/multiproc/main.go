// Multiproc: concurrent multithreading (§2.1.3). In a large multiprocessor,
// remote memory accesses take hundreds of cycles. The elementary processor
// holds more context frames than thread slots: when a load targets absent
// (remote) data it takes a data-absence trap, the outstanding access is
// recorded in the access requirement buffer, and the slot rapidly rebinds
// to a ready context frame. When the data arrives the thread resumes by
// re-executing its buffered accesses.
//
// This example runs eight threads of a remote pointer-chase kernel on two
// thread slots and compares stall-through execution (context switching
// suppressed) against 4 and 8 context frames.
package main

import (
	"fmt"
	"log"

	"hirata"
)

const kernel = `
	tid  r1
	slli r2, r1, 5
	addi r3, r2, 4096     ; this thread's block of remote memory
	li   r6, 12           ; chained remote loads
loop:	lw   r4, 0(r3)        ; data-absence trap on first touch
	add  r5, r5, r4
	addi r3, r3, 2
	addi r6, r6, -1
	bnez r6, loop
	mul  r5, r5, r5
	sw   r5, 64(r1)
	halt
`

func main() {
	const (
		threads       = 8
		slots         = 2
		remoteLatency = 400
	)
	prog, err := hirata.Assemble(kernel)
	if err != nil {
		log.Fatal(err)
	}

	run := func(frames int, suppress bool) {
		m := hirata.NewMemoryWithRemote(8192, 4096, remoteLatency)
		for i := int64(4096); i < 8192; i++ {
			m.SetInt(i, i%89)
		}
		cfg := hirata.MTConfig{
			ThreadSlots:      slots,
			ContextFrames:    frames,
			StandbyStations:  true,
			ExplicitRotation: suppress, // explicit mode suppresses switches
		}
		pcs := make([]int64, threads)
		res, err := hirata.RunMT(cfg, prog.Text, m, pcs...)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%d context frames", frames)
		if suppress {
			label = "switching suppressed"
		}
		fmt.Printf("  %-22s %8d cycles, %3d context switches\n", label, res.Cycles, res.Switches)
	}

	fmt.Printf("%d threads, %d thread slots, %d-cycle remote memory:\n", threads, slots, remoteLatency)
	run(threads, true)
	run(threads, false)
	fmt.Println("\nwith spare context frames the slots stay busy during remote waits;")
	fmt.Println("suppressed, every remote load stalls its slot for the full latency.")
}
