; fib.s — iterative Fibonacci, single-threaded.
; Run with:  hirata-sim -machine risc -dump-mem 100:101 examples/programs/fib.s
	.data
	.org 90
n:	.word 20
	.org 100
out:	.word 0
	.text
	lw   r1, n          ; counter
	li   r2, 0          ; fib(0)
	li   r3, 1          ; fib(1)
loop:	beqz r1, done
	add  r4, r2, r3
	mov  r2, r3
	mov  r3, r4
	addi r1, r1, -1
	j    loop
done:	sw   r2, out(r0)
	halt
