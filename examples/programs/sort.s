; sort.s — parallel odd-even transposition sort across thread slots.
; Each phase, every thread compares-and-swaps a stripe of adjacent pairs;
; a flag barrier (single writer per thread) separates phases. After N
; phases the array is sorted.
; Run with:  hirata-sim -slots 4 -dump-mem 100:116 examples/programs/sort.s
	.data
	.org 8
gthreads: .word 4            ; must match -slots
n:	.word 16
phase:	.space 8
	.org 100
arr:	.word 9, 3, 14, 1, 12, 6, 0, 11, 5, 15, 2, 8, 13, 4, 10, 7
	.text
	; The flag barrier below is spin-wait synchronisation, which the
	; verifier's happens-before engine cannot model (it only orders
	; ffork/kill and queue transfers) — suppress the race check.
	.lint allow L010
	ffork
	tid  r1
	lw   r2, gthreads
	lw   r3, n
	li   r9, 0               ; phase counter
phase_loop:
	slt  r4, r9, r3
	beqz r4, done
	; pair start index: phase parity + 2*stripe
	andi r5, r9, 1           ; 0 for even phases, 1 for odd
	slli r6, r1, 1
	add  r5, r5, r6          ; first pair index for this thread
pairs:
	addi r4, r3, -1
	slt  r4, r5, r4          ; pair < n-1 ?
	beqz r4, sync
	la   r6, arr
	add  r6, r6, r5
	lw   r7, 0(r6)
	lw   r8, 1(r6)
	slt  r4, r8, r7          ; out of order?
	beqz r4, nswap
	sw   r8, 0(r6)
	sw   r7, 1(r6)
nswap:
	slli r4, r2, 1
	add  r5, r5, r4          ; next pair for this thread (stride 2*threads)
	j    pairs
sync:
	; barrier: publish my phase, wait for everyone
	addi r9, r9, 1
	la   r6, phase
	add  r6, r6, r1
	sw   r9, 0(r6)
	li   r10, 0
wait:
	slt  r4, r10, r2
	beqz r4, phase_loop
	la   r6, phase
	add  r6, r6, r10
	lw   r7, 0(r6)
	slt  r4, r7, r9
	bnez r4, wait            ; someone is behind; spin
	addi r10, r10, 1
	j    wait
done:
	halt
