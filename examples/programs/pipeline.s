; pipeline.s — a three-stage software pipeline over queue registers.
; Thread 0 produces values, thread 1 transforms them, thread 2 consumes
; and stores. Demonstrates register-level communication between logical
; processors (the ring topology of §2.3.1: slot i writes to slot i+1).
; Run with:  hirata-sim -slots 3 -dump-mem 100:110 examples/programs/pipeline.s
	.equ COUNT 10
	.text
	ffork
	qen  r20, r21       ; r20 reads from predecessor, r21 writes onward
	tid  r1
	beqz r1, produce
	li   r2, 1
	beq  r1, r2, transform
	j    consume

produce:                    ; slot 0: emit 1..COUNT to slot 1
	li   r3, 0
ploop:	addi r3, r3, 1
	mov  r21, r3
	slti r4, r3, COUNT
	bnez r4, ploop
	halt

transform:                  ; slot 1: square each value, pass to slot 2
	li   r3, 0
tloop:	mov  r5, r20
	mul  r21, r5, r5
	addi r3, r3, 1
	slti r4, r3, COUNT
	bnez r4, tloop
	halt

consume:                    ; slot 2: store the squares
	li   r3, 0
cloop:	mov  r5, r20
	la   r6, 100
	add  r6, r6, r3
	sw   r5, 0(r6)
	addi r3, r3, 1
	slti r4, r3, COUNT
	bnez r4, cloop
	halt
