; dotprod.s — parallel dot product across all thread slots.
; Each logical processor accumulates a strided slice of the vectors and
; publishes its partial sum; thread 0 is reduced last by convention of the
; verifying harness. Run with:
;   hirata-sim -slots 4 -ls 2 -dump-mem 200:204 examples/programs/dotprod.s
	.data
	.org 8
nthreads: .word 4          ; must match -slots
n:	.word 64
xs:	.space 64
ys:	.space 64
	.org 200
partials: .space 8
	.text
	ffork
	tid  r1
	lw   r2, nthreads
	lw   r3, n
	; initialise this thread's slice: x[i] = i, y[i] = 2 (threads fill
	; their own stripes, so initialisation is parallel too)
	mov  r4, r1
init:	slt  r5, r4, r3
	beqz r5, compute
	la   r6, xs
	add  r6, r6, r4
	sw   r4, 0(r6)
	la   r6, ys
	add  r6, r6, r4
	li   r7, 2
	sw   r7, 0(r6)
	add  r4, r4, r2
	j    init
compute:
	mov  r4, r1
	li   r8, 0          ; partial sum
sum:	slt  r5, r4, r3
	beqz r5, publish
	la   r6, xs
	add  r6, r6, r4
	lw   r9, 0(r6)
	la   r6, ys
	add  r6, r6, r4
	lw   r10, 0(r6)
	mul  r11, r9, r10
	add  r8, r8, r11
	add  r4, r4, r2
	j    sum
publish:
	la   r6, partials
	add  r6, r6, r1
	sw   r8, 0(r6)
	halt
