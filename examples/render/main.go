// Render: the paper's motivating application, end to end. The authors
// built this processor for an "integrated visualization system" whose ray
// tracer dominated their workloads — so this example actually renders an
// image on the simulated machine: a raster of rays is traced by eight
// logical processors issuing simultaneously to the shared functional
// units, and the per-ray hit results become ASCII art.
//
// The simulated machine computes every pixel; the host only draws.
package main

import (
	"fmt"
	"log"
	"time"

	"hirata"
)

const (
	width  = 64
	height = 28
)

func main() {
	rt, err := hirata.BuildRayTrace(hirata.RayTraceConfig{
		Width:   width,
		Height:  height,
		Spheres: 9,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}

	const slots = 8
	m, err := rt.NewMemory(rt.Par, slots)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := hirata.RunMT(hirata.MTConfig{
		ThreadSlots:     slots,
		LoadStoreUnits:  2,
		StandbyStations: true,
	}, rt.Par.Text, m)
	if err != nil {
		log.Fatal(err)
	}
	host := time.Since(start)

	ts, hits := rt.Results(rt.Par, m)

	// Shade by hit distance: nearer hits get denser glyphs.
	var tmin, tmax float64
	first := true
	for i, h := range hits {
		if h < 0 {
			continue
		}
		if first || ts[i] < tmin {
			tmin = ts[i]
		}
		if first || ts[i] > tmax {
			tmax = ts[i]
		}
		first = false
	}
	shades := []byte("@%#*+=-:.")
	for y := 0; y < height; y++ {
		row := make([]byte, width)
		for x := 0; x < width; x++ {
			i := y*width + x
			if hits[i] < 0 {
				row[x] = ' '
				continue
			}
			f := 0.0
			if tmax > tmin {
				f = (ts[i] - tmin) / (tmax - tmin)
			}
			idx := int(f * float64(len(shades)-1))
			row[x] = shades[idx]
		}
		fmt.Println(string(row))
	}

	fmt.Printf("\n%dx%d pixels, %d spheres, %d logical processors\n", width, height, rt.Cfg.Spheres, slots)
	fmt.Printf("simulated: %d cycles, %d instructions (IPC %.2f)\n", res.Cycles, res.Instructions, res.IPC())
	fmt.Printf("host time: %v (%.1fk simulated cycles/s)\n", host.Round(time.Millisecond),
		float64(res.Cycles)/host.Seconds()/1000)
}
