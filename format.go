package hirata

import (
	"fmt"
	"strings"

	"hirata/internal/sched"
)

// FormatTable2 renders Table 2 with paper-vs-measured speed-ups.
func FormatTable2(t *Table2) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: speed-up by parallel multithreading (ray tracing)\n")
	fmt.Fprintf(&b, "sequential baseline: %d cycles (1 ls unit), %d cycles (2 ls units)\n",
		t.BaselineCycle[1], t.BaselineCycle[2])
	fmt.Fprintf(&b, "%-6s | %-17s | %-17s | %-17s | %-17s\n", "", "1 ls, no standby", "1 ls, standby", "2 ls, no standby", "2 ls, standby")
	fmt.Fprintf(&b, "%-6s | %-8s %-8s | %-8s %-8s | %-8s %-8s | %-8s %-8s\n",
		"slots", "paper", "ours", "paper", "ours", "paper", "ours", "paper", "ours")
	for _, slots := range t.Config.Slots {
		fmt.Fprintf(&b, "%-6d", slots)
		for _, ls := range []int{1, 2} {
			for _, sb := range []bool{false, true} {
				cell, ok := t.Cell(slots, ls, sb)
				if !ok {
					fmt.Fprintf(&b, " | %-8s %-8s", "-", "-")
					continue
				}
				fmt.Fprintf(&b, " | %-8s %-8.2f", paperStr(PaperTable2(slots, ls, sb)), cell.Speedup)
			}
		}
		b.WriteByte('\n')
	}
	// Busiest-unit utilization (§3.2's saturation explanation).
	for _, slots := range t.Config.Slots {
		if cell, ok := t.Cell(slots, 1, true); ok {
			fmt.Fprintf(&b, "busiest unit at %d slots, 1 ls: %s at %.0f%%\n",
				slots, cell.BusiestClass, cell.BusiestUtil)
		}
	}
	return b.String()
}

// FormatTable3 renders Table 3's (D,S) grid.
func FormatTable3(t *Table3) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: speed-up vs employed parallelism (D = issue width, S = thread slots)\n")
	fmt.Fprintf(&b, "sequential baseline: %d cycles (8 functional units)\n", t.BaselineCycle)
	fmt.Fprintf(&b, "%-8s | %-8s | %-8s | %-8s\n", "D x S", "paper", "ours", "cycles")
	for _, c := range t.Cells {
		fmt.Fprintf(&b, "(%d,%d)%-3s | %-8s | %-8.2f | %d\n",
			c.IssueWidth, c.Slots, "", paperStr(PaperTable3(c.IssueWidth, c.Slots)), c.Speedup, c.Cycles)
	}
	return b.String()
}

// FormatTable4 renders the static-scheduling comparison.
func FormatTable4(t *Table4) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: static code scheduling, Livermore Kernel 1 (cycles per iteration)\n")
	fmt.Fprintf(&b, "bound = static lower bound per iteration (docs/LINT.md, \"Static performance bounds\")\n")
	fmt.Fprintf(&b, "%-6s | %-26s | %-26s | %-26s\n", "", "non-optimized", "strategy A", "strategy B")
	fmt.Fprintf(&b, "%-6s | %-8s %-8s %-8s | %-8s %-8s %-8s | %-8s %-8s %-8s\n",
		"slots", "paper", "ours", "bound", "paper", "ours", "bound", "paper", "ours", "bound")
	for _, slots := range t.Config.Slots {
		fmt.Fprintf(&b, "%-6d", slots)
		for _, strat := range []Strategy{sched.None, sched.StrategyA, sched.StrategyB} {
			cell, ok := t.Cell(slots, strat)
			if !ok {
				fmt.Fprintf(&b, " | %-8s %-8s %-8s", "-", "-", "-")
				continue
			}
			bound := "-"
			if cell.StaticBound > 0 {
				bound = fmt.Sprintf("%.2f", float64(cell.StaticBound)/float64(t.Config.N))
			}
			fmt.Fprintf(&b, " | %-8s %-8.2f %-8s",
				paperStr(PaperTable4(slots, strat)), cell.CyclesPerIter, bound)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTable5 renders the eager-execution evaluation.
func FormatTable5(t *Table5) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: eager execution of sequential loop iterations (cycles per iteration)\n")
	fmt.Fprintf(&b, "sequential: paper %.0f, ours %.2f (%d cycles / %d iterations)\n",
		PaperTable5Sequential, t.SequentialPerIt, t.SequentialCycles, t.Config.Nodes)
	fmt.Fprintf(&b, "%-6s | %-10s | %-10s | %-10s\n", "slots", "paper", "ours", "speed-up")
	for _, c := range t.Cells {
		fmt.Fprintf(&b, "%-6d | %-10s | %-10.2f | %.2f\n",
			c.Slots, paperStr(PaperTable5(c.Slots)), c.CyclesPerIter, c.Speedup)
	}
	fmt.Fprintf(&b, "paper's asymptotic speed-up: 56/17 = 3.29\n")
	return b.String()
}

// FormatRotationSweep renders the rotation-interval experiment.
func FormatRotationSweep(cells []RotationSweepCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rotation-interval sweep (§3.2: little influence; 8-16 slightly superior)\n")
	fmt.Fprintf(&b, "%-10s | %-10s | %-10s\n", "interval", "cycles", "speed-up")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-10d | %-10d | %.3f\n", c.Interval, c.Cycles, c.Speedup)
	}
	return b.String()
}

// FormatPrivateICache renders the private-instruction-cache variant.
func FormatPrivateICache(cells []PrivateICacheCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Private per-slot instruction caches (§3.2: paper saw 1.79->1.80, 5.79->5.80)\n")
	fmt.Fprintf(&b, "%-24s | %-10s | %-10s\n", "configuration", "shared", "private")
	for _, c := range cells {
		fmt.Fprintf(&b, "%d slots, %d ls, standby=%-5v | %-10.2f | %-10.2f\n",
			c.Slots, c.LoadStoreUnits, c.Standby, c.SharedSpeedup, c.PrivateSpeedup)
	}
	return b.String()
}

// FormatUtilization renders the functional-unit utilization report.
func FormatUtilization(res MTResult, slots, lsUnits int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Functional-unit utilization, %d slots, %d load/store unit(s), %d cycles\n",
		slots, lsUnits, res.Cycles)
	for _, u := range res.Units {
		fmt.Fprintf(&b, "%-10s[%d]: N=%-9d U=%5.1f%%\n",
			unitClassName(u.Class), u.Index, u.Invocations, u.Utilization(res.Cycles))
	}
	return b.String()
}

// FormatFiniteCache renders the finite-cache extension sweep.
func FormatFiniteCache(cells []FiniteCacheCell, slots int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Finite data-cache sweep, %d slots (paper future work)\n", slots)
	fmt.Fprintf(&b, "%-10s | %-10s | %-14s\n", "lines", "cycles", "vs perfect")
	for _, c := range cells {
		name := fmt.Sprintf("%d", c.Lines)
		if c.Lines == 0 {
			name = "perfect"
		}
		fmt.Fprintf(&b, "%-10s | %-10d | %.3f\n", name, c.Cycles, c.Speedup)
	}
	return b.String()
}

// FormatQueueDepth renders the queue-register-depth ablation.
func FormatQueueDepth(cells []QueueDepthCell, slots int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Queue-register depth ablation, eager while loop, %d slots\n", slots)
	fmt.Fprintf(&b, "%-8s | %-14s\n", "depth", "cycles/iter")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-8d | %.2f\n", c.Depth, c.CyclesPerIter)
	}
	return b.String()
}

// FormatConcurrentMT renders the context-switching experiment.
func FormatConcurrentMT(cells []ConcurrentMTCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Concurrent multithreading: remote loads on one thread slot (§2.1.3)\n")
	fmt.Fprintf(&b, "%-26s | %-10s | %-10s\n", "configuration", "cycles", "switches")
	for _, c := range cells {
		name := fmt.Sprintf("%d frames", c.ContextFrames)
		if c.Suppressed {
			name = "switching suppressed"
		}
		fmt.Fprintf(&b, "%-26s | %-10d | %d\n", name, c.Cycles, c.Switches)
	}
	return b.String()
}

// FormatIssueBandwidth renders the §4-related-work comparison.
func FormatIssueBandwidth(cells []IssueBandwidthCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Simultaneous issue vs single-issue multithreading (§4 precursors: HEP, Farrens & Pleszkun)\n")
	fmt.Fprintf(&b, "%-6s | %-22s | %-22s\n", "slots", "simultaneous speed-up", "single-issue speed-up")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-6d | %-22.2f | %-22.2f\n", c.Slots, c.Simultaneous, c.SingleIssue)
	}
	return b.String()
}

// FormatDoacross renders the queue-register doacross experiment.
func FormatDoacross(cells []DoacrossCell, seqCycles uint64, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Doacross loop through queue registers (Livermore Kernel 5, first-order recurrence)\n")
	fmt.Fprintf(&b, "sequential: %d cycles (%.2f cycles/iter over %d iterations)\n",
		seqCycles, float64(seqCycles)/float64(n), n)
	fmt.Fprintf(&b, "%-6s | %-12s | %-10s\n", "slots", "cycles/iter", "speed-up")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-6d | %-12.2f | %.2f\n", c.Slots, c.CyclesPerIter, c.Speedup)
	}
	return b.String()
}

// FormatSWPAblation renders the strategy-B vs software-pipelining contrast.
func FormatSWPAblation(cells []SWPAblationCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Strategy B vs software pipelining on LK1 (§2.3.2: standby stations avoid NOP padding)\n")
	fmt.Fprintf(&b, "%-6s | %-20s | %-12s | %-10s\n", "slots", "scheduler", "cycles/iter", "code size")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-6d | %-20s | %-12.2f | %d\n", c.Slots, c.Strategy, c.CyclesPerIter, c.CodeSize)
	}
	return b.String()
}

func paperStr(v float64) string {
	if v == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", v)
}

// FormatStandbyDepth renders the standby-station depth ablation.
func FormatStandbyDepth(cells []StandbyDepthCell, slots int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Standby-station depth ablation, %d slots, 1 ls unit (paper: depth-1 latches)\n", slots)
	fmt.Fprintf(&b, "%-8s | %-10s | %-10s\n", "depth", "cycles", "speed-up")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-8d | %-10d | %.2f\n", c.Depth, c.Cycles, c.Speedup)
	}
	return b.String()
}

// FormatUnroll renders the loop-unrolling ablation.
func FormatUnroll(cells []UnrollCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Loop unrolling x static scheduling on LK1 (cycles per iteration, strategy A)\n")
	fmt.Fprintf(&b, "%-6s | %-8s | %-14s\n", "slots", "unroll", "cycles/iter")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-6d | %-8d | %.2f\n", c.Slots, c.Unroll, c.CyclesPerIter)
	}
	return b.String()
}

// FormatSpeedupCurveCSV renders the slots sweep as CSV for plotting.
func FormatSpeedupCurveCSV(cells []CurveCell) string {
	var b strings.Builder
	b.WriteString("slots,speedup_1ls,speedup_2ls\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%d,%.4f,%.4f\n", c.Slots, c.SpeedupL1, c.SpeedupL2)
	}
	return b.String()
}

// FormatBranchHiding renders the branch-delay-hiding experiment.
func FormatBranchHiding(cells []BranchHidingCell, seqCycles uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Branch-delay hiding (§2.1.2): Collatz step counts, one branch every ~4 instructions\n")
	fmt.Fprintf(&b, "sequential baseline: %d cycles. With many branchy threads the shared fetch\n", seqCycles)
	b.WriteString("unit itself saturates on refetches; private fetch units (last column) are the\n")
	b.WriteString("remedy the paper anticipates (\"another cache and fetch unit would be needed\").\n")
	fmt.Fprintf(&b, "%-6s | %-10s | %-10s | %-12s | %-12s | %-14s\n", "slots", "cycles", "speed-up", "eff/thread", "2 fetch units", "private fetch")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-6d | %-10d | %-10.2f | %-12.2f | %-12.2f | %.2f\n",
			c.Slots, c.Cycles, c.Speedup, c.PerThreadEff, c.TwoFetch, c.PrivateSpeedup)
	}
	return b.String()
}
