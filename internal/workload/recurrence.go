package workload

import (
	"fmt"

	"hirata/internal/asm"
	"hirata/internal/mem"
)

// RecurrenceConfig parameterises a doacross loop: Livermore Kernel 5, a
// first-order linear recurrence
//
//	X(i) = Z(i) * (Y(i) - X(i-1))
//
// Unlike the doall Livermore Kernel 1, successive iterations are linked by
// X(i-1), so parallel execution requires communication between logical
// processors — exactly what the paper's queue registers provide (§2.3.1):
// each thread receives X(i-1) from its ring predecessor through an FP
// queue register and forwards X(i) to its successor.
type RecurrenceConfig struct {
	N    int   // iterations (default 300)
	Seed int64 // unused; kept for symmetry with other workloads
}

func (c RecurrenceConfig) withDefaults() RecurrenceConfig {
	if c.N <= 0 {
		c.N = 300
	}
	return c
}

// Recurrence bundles the generated programs.
type Recurrence struct {
	Cfg RecurrenceConfig
	Seq *asm.Program
	Par *asm.Program
}

// BuildRecurrence generates the sequential and doacross versions.
func BuildRecurrence(cfg RecurrenceConfig) (*Recurrence, error) {
	cfg = cfg.withDefaults()
	data := recurrenceData(cfg)
	seq, err := asm.Assemble(data + recurrenceSeq())
	if err != nil {
		return nil, fmt.Errorf("workload: sequential recurrence: %w", err)
	}
	par, err := asm.Assemble(data + recurrencePar())
	if err != nil {
		return nil, fmt.Errorf("workload: doacross recurrence: %w", err)
	}
	return &Recurrence{Cfg: cfg, Seq: seq, Par: par}, nil
}

// NewMemory builds a memory image for a run with the given thread count.
func (rc *Recurrence) NewMemory(p *asm.Program, threads int) (*mem.Memory, error) {
	m, err := p.NewMemory(64)
	if err != nil {
		return nil, err
	}
	m.SetInt(p.MustSymbol("gthreadsrc"), int64(threads))
	return m, nil
}

// X extracts the computed vector after a run.
func (rc *Recurrence) X(p *asm.Program, m *mem.Memory) []float64 {
	base := p.MustSymbol("xv")
	out := make([]float64, rc.Cfg.N+1)
	for i := range out {
		out[i] = m.FloatAt(base + int64(i))
	}
	return out
}

// Expected computes the reference recurrence in Go.
func (rc *Recurrence) Expected() []float64 {
	n := rc.Cfg.N
	x := make([]float64, n+1)
	x[0] = 0.25
	for i := 1; i <= n; i++ {
		y := 1.0 + 0.001*float64(i)
		z := 0.998
		x[i] = z * (y - x[i-1])
	}
	return x
}

func recurrenceData(cfg RecurrenceConfig) string {
	var b []byte
	app := func(s string, args ...any) { b = append(b, fmt.Sprintf(s+"\n", args...)...) }
	app("\t.data")
	app("\t.org 8")
	app("gn: .word %d", cfg.N)
	app("gthreadsrc: .word 1")
	app("yv:")
	for i := 0; i <= cfg.N; i++ {
		app("\t.float %g", 1.0+0.001*float64(i))
	}
	app("zv:")
	for i := 0; i <= cfg.N; i++ {
		app("\t.float %g", 0.998)
	}
	app("xv: .float 0.25") // X(0)
	app("\t.space %d", cfg.N)
	app("\t.text")
	return string(b)
}

// recurrenceSeq computes the recurrence in a plain loop.
func recurrenceSeq() string {
	return `
	lw   r5, gn
	la   r1, yv
	la   r2, zv
	la   r3, xv
	flw  f1, 0(r3)       ; x = X(0)
	li   r6, 1           ; i
loop:	flw  f2, 1(r1)       ; Y(i)
	flw  f3, 1(r2)       ; Z(i)
	fsub f4, f2, f1
	fmul f1, f3, f4      ; x = Z(i) * (Y(i) - x)
	fsw  f1, 1(r3)       ; X(i)
	addi r1, r1, 1
	addi r2, r2, 1
	addi r3, r3, 1
	addi r6, r6, 1
	slt  r7, r5, r6      ; i > n ?
	beqz r7, loop
	halt
`
}

// recurrencePar distributes iterations round-robin over the logical
// processors; X(i-1) arrives through the FP queue register f28 and X(i)
// leaves through f29. The ring order of the queue registers preserves the
// sequential iteration order without any explicit synchronisation.
func recurrencePar() string {
	return `
	ffork
	qenf f28, f29
	tid  r8
	lw   r5, gn
	lw   r9, gthreadsrc
	la   r1, yv
	add  r1, r1, r8
	la   r2, zv
	add  r2, r2, r8
	la   r3, xv
	add  r3, r3, r8
	addi r6, r8, 1       ; first iteration of this thread
	bnez r8, loop
	flw  f1, xv          ; thread 0 seeds with X(0)
	j    body
loop:	slt  r7, r5, r6      ; i > n: this thread is finished
	bnez r7, done
	fmov f1, f28         ; receive X(i-1) from the ring predecessor
body:	flw  f2, 1(r1)       ; Y(i)
	flw  f3, 1(r2)       ; Z(i)
	fsub f4, f2, f1
	fmul f1, f3, f4      ; X(i)
	fmov f29, f1         ; forward to the successor iteration
	fsw  f1, 1(r3)
	add  r1, r1, r9
	add  r2, r2, r9
	add  r3, r3, r9
	add  r6, r6, r9
	j    loop
done:	halt
`
}
