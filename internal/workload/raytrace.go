// Package workload builds the paper's benchmark programs in the machine's
// assembly language:
//
//   - a synthetic ray-tracing kernel (sphere intersection tests) standing in
//     for the commercial ray tracer the paper traces (§3.2, Tables 2 and 3),
//   - Livermore Kernel 1 for the static-scheduling study (§3.4, Table 4),
//   - the linked-list while loop for eager execution (§2.3.3/§3.5, Table 5).
//
// Every workload comes in a sequential version (runs on the baseline RISC
// machine and the functional interpreter) and a parallel version (runs on
// the multithreaded processor), both computing identical results so the
// simulators can be differentially verified.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"hirata/internal/asm"
	"hirata/internal/mem"
)

// RayTraceConfig parameterises the synthetic ray tracer.
//
// The intersection-test kernel mirrors the structure the paper describes:
// per sphere it loads the sphere record, evaluates the quadratic
// discriminant, conditionally takes a square root and updates the closest
// hit. SpillPairs models the register-pressure spills a 1992 commercial
// compiler emits; it directly controls the load/store fraction of the
// instruction mix (and therefore where the load/store unit saturates, the
// effect behind the paper's Table 2 plateau).
type RayTraceConfig struct {
	Spheres    int   // number of spheres in the scene (default 12)
	Rays       int   // number of rays (default 240)
	Seed       int64 // scene generator seed (default 1)
	SpillPairs int   // spill/reload pairs per sphere test (default 2)
	// Width and Height, when both set, replace the random rays with a
	// Width×Height raster of parallel rays (row-major), so the per-ray
	// results form an image; Rays is then Width*Height.
	Width, Height int
}

func (c RayTraceConfig) withDefaults() RayTraceConfig {
	if c.Spheres <= 0 {
		c.Spheres = 12
	}
	if c.Width > 0 && c.Height > 0 {
		c.Rays = c.Width * c.Height
	}
	if c.Rays <= 0 {
		c.Rays = 240
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SpillPairs < 0 {
		c.SpillPairs = 0
	} else if c.SpillPairs == 0 {
		// Calibrated so one load/store unit saturates around 8 threads,
		// reproducing the plateau of the paper's Table 2.
		c.SpillPairs = 3
	}
	return c
}

// RayTrace bundles the two program versions and the scene layout.
type RayTrace struct {
	Cfg RayTraceConfig
	Seq *asm.Program // sequential: plain loop over all rays
	Par *asm.Program // parallel: fast-fork, rays strided by thread id
}

// BuildRayTrace generates the scene and assembles both program versions.
func BuildRayTrace(cfg RayTraceConfig) (*RayTrace, error) {
	cfg = cfg.withDefaults()
	data := rayTraceData(cfg)
	seq, err := asm.Assemble(data + rayTraceText(cfg, false))
	if err != nil {
		return nil, fmt.Errorf("workload: sequential ray tracer: %w", err)
	}
	par, err := asm.Assemble(data + rayTraceText(cfg, true))
	if err != nil {
		return nil, fmt.Errorf("workload: parallel ray tracer: %w", err)
	}
	return &RayTrace{Cfg: cfg, Seq: seq, Par: par}, nil
}

// NewMemory builds a memory image for a run with the given thread count.
func (rt *RayTrace) NewMemory(p *asm.Program, threads int) (*mem.Memory, error) {
	m, err := p.NewMemory(64)
	if err != nil {
		return nil, err
	}
	m.SetInt(p.MustSymbol("gthreads"), int64(threads))
	return m, nil
}

// Results extracts the per-ray (t, hit-index) pairs after a run.
func (rt *RayTrace) Results(p *asm.Program, m *mem.Memory) ([]float64, []int64) {
	base := p.MustSymbol("results")
	ts := make([]float64, rt.Cfg.Rays)
	hits := make([]int64, rt.Cfg.Rays)
	for i := 0; i < rt.Cfg.Rays; i++ {
		ts[i] = m.FloatAt(base + int64(2*i))
		hits[i] = m.IntAt(base + int64(2*i) + 1)
	}
	return ts, hits
}

// rayTraceData emits the scene: spheres (cx, cy, cz, radius), rays (origin,
// direction), result and spill areas, and the globals block.
func rayTraceData(cfg RayTraceConfig) string {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var b strings.Builder
	b.WriteString("\t.data\n\t.org 8\n")
	fmt.Fprintf(&b, "gthreads: .word 1\n")
	fmt.Fprintf(&b, "gnspheres: .word %d\n", cfg.Spheres)
	fmt.Fprintf(&b, "gnrays: .word %d\n", cfg.Rays)

	b.WriteString("spheres:\n")
	for i := 0; i < cfg.Spheres; i++ {
		// Spheres scattered in front of the ray origin plane.
		cx := rng.Float64()*8 - 4
		cy := rng.Float64()*8 - 4
		cz := 4 + rng.Float64()*12
		r := 0.4 + rng.Float64()*1.6
		fmt.Fprintf(&b, "\t.float %.6f, %.6f, %.6f, %.6f\n", cx, cy, cz, r)
	}
	b.WriteString("rays:\n")
	if cfg.Width > 0 && cfg.Height > 0 {
		// Raster of parallel rays covering the scene, row-major.
		for y := 0; y < cfg.Height; y++ {
			for x := 0; x < cfg.Width; x++ {
				ox := -5 + 10*(float64(x)+0.5)/float64(cfg.Width)
				oy := 5 - 10*(float64(y)+0.5)/float64(cfg.Height)
				fmt.Fprintf(&b, "\t.float %.6f, %.6f, 0, 0, 0, 1\n", ox, oy)
			}
		}
	} else {
		for i := 0; i < cfg.Rays; i++ {
			// Rays from a jittered grid, pointing roughly +z.
			ox := rng.Float64()*10 - 5
			oy := rng.Float64()*10 - 5
			oz := 0.0
			dx := rng.Float64()*0.6 - 0.3
			dy := rng.Float64()*0.6 - 0.3
			dz := 1.0
			fmt.Fprintf(&b, "\t.float %.6f, %.6f, %.6f, %.6f, %.6f, %.6f\n", ox, oy, oz, dx, dy, dz)
		}
	}
	fmt.Fprintf(&b, "results: .space %d\n", 2*cfg.Rays)
	fmt.Fprintf(&b, "spills: .space %d\n", 64*16) // 16 words per possible thread
	b.WriteString("\t.text\n")
	return b.String()
}

// rayTraceText emits the program. Register plan:
//
//	r1 tid       r2 stride (nthreads)   r3 ray index   r4 &ray
//	r5 scratch   r6 &sphere             r7 sphere idx  r8 nspheres
//	r9 hit idx   r10 &result            r11 &spill     r12 nrays
//	f1-f3 origin f4-f6 direction  f7 tmin  f8 t  f9 0.0  f31 big
func rayTraceText(cfg RayTraceConfig, parallel bool) string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	if parallel {
		w("\tffork")
		w("\ttid  r1")
	} else {
		w("\tli   r1, 0")
	}
	w("\tlw   r2, gthreads")
	w("\tlw   r8, gnspheres")
	w("\tlw   r12, gnrays")
	w("\tslli r11, r1, 4") // private spill area
	w("\tla   r5, spills")
	w("\tadd  r11, r11, r5")
	w("\tmov  r3, r1") // ray index starts at tid
	w("\titof f9, r0") // constant 0.0 for the discriminant/behind tests

	w("rayloop:")
	w("\tslt  r5, r3, r12")
	w("\tbeqz r5, done")
	// &ray = rays + 6*idx
	w("\tslli r4, r3, 2")
	w("\tslli r5, r3, 1")
	w("\tadd  r4, r4, r5")
	w("\tla   r5, rays")
	w("\tadd  r4, r4, r5")
	w("\tflw  f1, 0(r4)")
	w("\tflw  f2, 1(r4)")
	w("\tflw  f3, 2(r4)")
	w("\tflw  f4, 3(r4)")
	w("\tflw  f5, 4(r4)")
	w("\tflw  f6, 5(r4)")
	// tmin = 1e30, hit = -1
	w("\tli   r5, 10000")
	w("\titof f7, r5")
	w("\tfmul f7, f7, f7")
	w("\tli   r9, -1")
	w("\tla   r6, spheres")
	w("\tli   r7, 0")

	w("sphloop:")
	w("\tflw  f10, 0(r6)") // cx
	w("\tflw  f11, 1(r6)") // cy
	w("\tflw  f12, 2(r6)") // cz
	w("\tflw  f13, 3(r6)") // radius
	// oc = origin - center
	w("\tfsub f14, f1, f10")
	w("\tfsub f15, f2, f11")
	w("\tfsub f16, f3, f12")
	// b = oc . dir
	w("\tfmul f17, f14, f4")
	w("\tfmul f18, f15, f5")
	w("\tfmul f19, f16, f6")
	w("\tfadd f20, f17, f18")
	w("\tfadd f20, f20, f19")
	// c = oc . oc - r*r
	w("\tfmul f21, f14, f14")
	w("\tfmul f22, f15, f15")
	w("\tfmul f23, f16, f16")
	w("\tfadd f24, f21, f22")
	w("\tfadd f24, f24, f23")
	w("\tfmul f25, f13, f13")
	w("\tfsub f26, f24, f25")
	// Register-pressure spills (compiled-code realism; see RayTraceConfig).
	for i := 0; i < cfg.SpillPairs; i++ {
		w("\tfsw  f20, %d(r11)", 2*i)
		w("\tfsw  f26, %d(r11)", 2*i+1)
	}
	for i := 0; i < cfg.SpillPairs; i++ {
		w("\tflw  f20, %d(r11)", 2*i)
		w("\tflw  f26, %d(r11)", 2*i+1)
	}
	// disc = b*b - c
	w("\tfmul f27, f20, f20")
	w("\tfsub f28, f27, f26")
	w("\tflt  r5, f28, f9")
	w("\tbnez r5, miss")
	// t = -b - sqrt(disc)
	w("\tfsqrt f29, f28")
	w("\tfneg f30, f20")
	w("\tfsub f8, f30, f29")
	// closest positive hit
	w("\tflt  r5, f9, f8")
	w("\tflt  r10, f8, f7")
	w("\tand  r5, r5, r10")
	w("\tbeqz r5, miss")
	w("\tfmov f7, f8")
	w("\tmov  r9, r7")
	w("miss:")
	w("\taddi r6, r6, 4")
	w("\taddi r7, r7, 1")
	w("\tbne  r7, r8, sphloop")

	// store result: t (or 0 if no hit) and hit index
	w("\tslli r10, r3, 1")
	w("\tla   r5, results")
	w("\tadd  r10, r10, r5")
	w("\tfsw  f7, 0(r10)")
	w("\tsw   r9, 1(r10)")
	w("\tadd  r3, r3, r2") // next ray for this thread
	w("\tj    rayloop")
	w("done:")
	w("\thalt")
	return b.String()
}
