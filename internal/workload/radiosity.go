package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"hirata/internal/asm"
	"hirata/internal/mem"
	"hirata/internal/minc"
)

// RadiosityConfig parameterises the paper's second named graphics
// algorithm (§1: "ray-tracing and radiosity are very famous algorithms").
// The kernel is one Jacobi iteration of the radiosity gather,
//
//	B'[i] = E[i] + rho[i] * Σ_j F[i][j] * B[j],
//
// an N² data-parallel gather with a memory-heavy inner loop. Unlike the
// other workloads it is written in MinC and compiled — exercising the
// whole substrate stack the way the paper's commercially-compiled
// workloads did.
type RadiosityConfig struct {
	Patches int // N (default 24)
	Sweeps  int // Jacobi iterations (default 4)
	Seed    int64
}

func (c RadiosityConfig) withDefaults() RadiosityConfig {
	if c.Patches <= 0 {
		c.Patches = 24
	}
	if c.Sweeps <= 0 {
		c.Sweeps = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Radiosity bundles the compiled program and its scene.
type Radiosity struct {
	Cfg  RadiosityConfig
	Prog *asm.Program
	e    []float64 // emission
	rho  []float64 // reflectivity
	f    []float64 // form factors, row-major N×N
}

// BuildRadiosity generates the scene and compiles the MinC kernel.
func BuildRadiosity(cfg RadiosityConfig) (*Radiosity, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Patches

	rd := &Radiosity{Cfg: cfg}
	rd.e = make([]float64, n)
	rd.rho = make([]float64, n)
	rd.f = make([]float64, n*n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.2 {
			rd.e[i] = 1 + rng.Float64()*4 // a light source
		}
		rd.rho[i] = 0.2 + 0.6*rng.Float64()
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				v := rng.Float64()
				rd.f[i*n+j] = v
				rowSum += v
			}
		}
		for j := 0; j < n; j++ { // normalise the row (energy conservation)
			rd.f[i*n+j] /= rowSum * 1.25
		}
	}

	src := radiositySrc(cfg)
	prog, err := minc.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("workload: radiosity kernel: %w\n%s", err, src)
	}
	// The kernel synchronises its sweeps with spin-wait flag barriers
	// (while (phase[u] < k) {}), a protocol the lint pass's
	// happens-before engine cannot see: it only orders ffork/kill and
	// matched queue transfers. Every cross-thread access here is
	// barrier-separated, so suppress the race check for this program.
	prog.LintAllow = append(prog.LintAllow, "L010")
	rd.Prog = prog
	return rd, nil
}

// radiositySrc emits the MinC kernel: double-buffered Jacobi sweeps with a
// single-writer flag barrier between them.
func radiositySrc(cfg RadiosityConfig) string {
	var b strings.Builder
	n := cfg.Patches
	fmt.Fprintf(&b, "global int n = %d;\n", n)
	fmt.Fprintf(&b, "global int sweeps = %d;\n", cfg.Sweeps)
	fmt.Fprintf(&b, "global float e[%d];\n", n)
	fmt.Fprintf(&b, "global float rho[%d];\n", n)
	fmt.Fprintf(&b, "global float ff[%d];\n", n*n)
	fmt.Fprintf(&b, "global float ba[%d];\n", n)
	fmt.Fprintf(&b, "global float bb[%d];\n", n)
	b.WriteString("global int phase[8];\n")
	b.WriteString(`
func main() {
    fork();
    int me = tid();
    int stride = nthreads();

    // B0 = E, computed in parallel stripes.
    int i = me;
    while (i < n) {
        ba[i] = e[i];
        i = i + stride;
    }
    phase[me] = 1;
    for (int u = 0; u < stride; u = u + 1) {
        while (phase[u] < 1) { }
    }

    for (int s = 0; s < sweeps; s = s + 1) {
        int k = me;
        while (k < n) {
            float acc = 0.0;
            int row = k * n;
            if (s % 2 == 0) {
                for (int j = 0; j < n; j = j + 1) {
                    acc = acc + ff[row + j] * ba[j];
                }
                bb[k] = e[k] + rho[k] * acc;
            } else {
                for (int j = 0; j < n; j = j + 1) {
                    acc = acc + ff[row + j] * bb[j];
                }
                ba[k] = e[k] + rho[k] * acc;
            }
            k = k + stride;
        }
        phase[me] = s + 2;
        for (int u = 0; u < stride; u = u + 1) {
            while (phase[u] < s + 2) { }
        }
    }
}
`)
	return b.String()
}

// NewMemory builds the memory image for a run with the given thread count.
func (rd *Radiosity) NewMemory(threads int) (*mem.Memory, error) {
	m, err := rd.Prog.NewMemory(64)
	if err != nil {
		return nil, err
	}
	minc.SetThreads(rd.Prog, m, threads)
	n := rd.Cfg.Patches
	eBase := rd.Prog.MustSymbol("e")
	rhoBase := rd.Prog.MustSymbol("rho")
	fBase := rd.Prog.MustSymbol("ff")
	for i := 0; i < n; i++ {
		m.SetFloat(eBase+int64(i), rd.e[i])
		m.SetFloat(rhoBase+int64(i), rd.rho[i])
	}
	for k, v := range rd.f {
		m.SetFloat(fBase+int64(k), v)
	}
	return m, nil
}

// Result extracts the final radiosity vector after a run.
func (rd *Radiosity) Result(m *mem.Memory) []float64 {
	sym := "ba"
	if rd.Cfg.Sweeps%2 == 1 {
		sym = "bb"
	}
	base := rd.Prog.MustSymbol(sym)
	out := make([]float64, rd.Cfg.Patches)
	for i := range out {
		out[i] = m.FloatAt(base + int64(i))
	}
	return out
}

// Expected computes the reference result in Go.
func (rd *Radiosity) Expected() []float64 {
	n := rd.Cfg.Patches
	cur := make([]float64, n)
	next := make([]float64, n)
	copy(cur, rd.e)
	for s := 0; s < rd.Cfg.Sweeps; s++ {
		for i := 0; i < n; i++ {
			acc := 0.0
			for j := 0; j < n; j++ {
				acc += rd.f[i*n+j] * cur[j]
			}
			next[i] = rd.e[i] + rd.rho[i]*acc
		}
		cur, next = next, cur
	}
	return cur
}
