package workload

import (
	"fmt"
	"math/rand"

	"hirata/internal/asm"
	"hirata/internal/mem"
)

// LinkedListConfig parameterises the paper's while-loop sample (Figure 6):
//
//	ptr = header;
//	while (ptr != NULL) {
//	    tmp = a*(ptr->point->x) + b*(ptr->point->y) + c;
//	    if (tmp < 0) break;
//	    ptr = ptr->next;
//	}
//
// The eager parallel version assigns successive iterations to the logical
// processors round-robin; the pointer chases through queue registers so an
// iteration can start as soon as its predecessor has loaded ptr->next
// (§2.3.3, Figure 7).
type LinkedListConfig struct {
	Nodes int   // list length (default 200)
	Seed  int64 // node coordinate seed (default 1)
	// BreakAt plants a node whose tmp is negative at that index, exercising
	// the early-exit (break) path. Use a negative value (or >= Nodes) to
	// traverse the whole list. Note that the zero value breaks at the first
	// node; full-traversal runs must set BreakAt explicitly.
	BreakAt int
	// StoreResults makes every iteration publish tmp with a priority store
	// (swp), demonstrating in-order memory writes from eager execution.
	// The measurement runs keep it off, matching the paper's loop body.
	StoreResults bool
}

func (c LinkedListConfig) withDefaults() LinkedListConfig {
	if c.Nodes <= 0 {
		c.Nodes = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Coefficients of the tmp computation.
const (
	llA = 0.5
	llB = 0.25
	llC = 1.0
)

// LinkedList bundles the generated programs.
type LinkedList struct {
	Cfg LinkedListConfig
	Seq *asm.Program
	Par *asm.Program
}

// BuildLinkedList generates the list data and both traversal programs.
func BuildLinkedList(cfg LinkedListConfig) (*LinkedList, error) {
	cfg = cfg.withDefaults()
	data := linkedListData(cfg)
	seq, err := asm.Assemble(data + linkedListSeq(cfg))
	if err != nil {
		return nil, fmt.Errorf("workload: sequential list walk: %w", err)
	}
	par, err := asm.Assemble(data + linkedListEager(cfg))
	if err != nil {
		return nil, fmt.Errorf("workload: eager list walk: %w", err)
	}
	return &LinkedList{Cfg: cfg, Seq: seq, Par: par}, nil
}

// ExpectedIterations returns how many loop iterations the traversal takes.
func (ll *LinkedList) ExpectedIterations() int {
	if ll.Cfg.BreakAt >= 0 && ll.Cfg.BreakAt < ll.Cfg.Nodes {
		return ll.Cfg.BreakAt + 1
	}
	return ll.Cfg.Nodes
}

// nodeXY returns the coordinates of node i; the break node gets
// coordinates that drive tmp negative.
func nodeXY(cfg LinkedListConfig, i int, rng *rand.Rand) (x, y float64) {
	x = rng.Float64() * 4
	y = rng.Float64() * 4
	if i == cfg.BreakAt {
		x, y = -100, -100 // tmp = a*x + b*y + c < 0
	}
	return
}

// linkedListData lays out nodes {point*, next*} and points {x, y}.
func linkedListData(cfg LinkedListConfig) string {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var b []byte
	app := func(s string, args ...any) { b = append(b, fmt.Sprintf(s+"\n", args...)...) }
	app("\t.data")
	app("\t.org 8")
	app("ga: .float %g", llA)
	app("gb: .float %g", llB)
	app("gc: .float %g", llC)
	app("gtmp: .float 0")
	app("gcount: .word 0")
	app("gthreadsll: .word 1")
	app("gout: .space %d", cfg.Nodes+2) // per-iteration tmp stores (swp mode)

	// Layout: nodes then points. Node i at nodesBase+2i = {&point_i, &node_{i+1} or 0}.
	nodesBase := 32 + cfg.Nodes + 2
	pointsBase := nodesBase + 2*cfg.Nodes
	app("\t.org %d", nodesBase)
	app("nodes:")
	for i := 0; i < cfg.Nodes; i++ {
		next := 0
		if i+1 < cfg.Nodes {
			next = nodesBase + 2*(i+1)
		}
		app("\t.word %d, %d", pointsBase+2*i, next)
	}
	app("points:")
	for i := 0; i < cfg.Nodes; i++ {
		x, y := nodeXY(cfg, i, rng)
		app("\t.float %.6f, %.6f", x, y)
	}
	app("\t.text")
	return string(b)
}

// linkedListSeq is the straightforward single-threaded traversal.
func linkedListSeq(cfg LinkedListConfig) string {
	var b []byte
	app := func(s string, args ...any) { b = append(b, fmt.Sprintf(s+"\n", args...)...) }
	app("\tflw  f10, ga")
	app("\tflw  f11, gb")
	app("\tflw  f12, gc")
	app("\titof f9, r0")    // constant 0.0 for the break test
	app("\titof f6, r0")    // tmp published at exit, even for an empty list
	app("\tla   r1, nodes") // ptr
	app("\tli   r2, 0")     // iteration count
	app("loop:")
	app("\tbeqz r1, exit")
	app("\tlw   r3, 0(r1)") // ptr->point
	app("\tflw  f1, 0(r3)") // x
	app("\tflw  f2, 1(r3)") // y
	app("\tfmul f3, f10, f1")
	app("\tfmul f4, f11, f2")
	app("\tfadd f5, f3, f4")
	app("\tfadd f6, f5, f12") // tmp
	if cfg.StoreResults {
		app("\tla   r5, gout")
		app("\tadd  r5, r5, r2")
		app("\tfsw  f6, 0(r5)")
	}
	app("\taddi r2, r2, 1")
	app("\tflt  r4, f6, f9") // tmp < 0 (f9 stays 0.0)
	app("\tbnez r4, exit")
	app("\tlw   r1, 1(r1)") // ptr = ptr->next
	app("\tj    loop")
	app("exit:")
	app("\tfsw  f6, gtmp")
	app("\tsw   r2, gcount")
	app("\thalt")
	return string(b)
}

// linkedListEager is the paper's eager execution scheme: the pointer flows
// around the ring of logical processors through queue registers (r26 reads
// from the predecessor, r27 writes to the successor); an exiting thread
// publishes its results with priority stores and kills the other threads.
func linkedListEager(cfg LinkedListConfig) string {
	var b []byte
	app := func(s string, args ...any) { b = append(b, fmt.Sprintf(s+"\n", args...)...) }
	app("\tsetmode 1") // explicit rotation: compiler-controlled priorities
	app("\tffork")
	app("\tqen  r26, r27")
	app("\ttid  r8")
	app("\tflw  f10, ga")
	app("\tflw  f11, gb")
	app("\tflw  f12, gc")
	app("\titof f9, r0")         // constant 0.0 for the break test
	app("\tlw   r9, gthreadsll") // stride for the iteration counter
	app("\tmov  r2, r8")         // this thread's first iteration index
	app("\tbnez r8, loop")
	app("\tla   r1, nodes") // thread 0 seeds the pipeline with the header
	app("\tj    body")
	app("loop:")
	app("\tmov  r1, r26") // receive ptr from the preceding iteration
	app("body:")
	app("\tbeqz r1, exitnull")
	app("\tlw   r3, 1(r1)") // ptr->next, loaded first...
	app("\tmov  r27, r3")   // ...and forwarded eagerly to the next thread
	app("\tlw   r4, 0(r1)") // ptr->point
	app("\tflw  f1, 0(r4)")
	app("\tflw  f2, 1(r4)")
	app("\tfmul f3, f10, f1")
	app("\tfmul f4, f11, f2")
	app("\tfadd f5, f3, f4")
	app("\tfadd f6, f5, f12") // tmp
	if cfg.StoreResults {
		app("\tla   r5, gout")
		app("\tadd  r5, r5, r2")
		app("\tfswp f6, 0(r5)") // in-order publication via priority store
	}
	app("\tflt  r5, f6, f9")
	app("\tbnez r5, exitbreak")
	app("\tadd  r2, r2, r9")
	app("\tchgpri") // acknowledge this iteration; pass priority on
	app("\tj    loop")
	// Only the earliest remaining iteration may commit and stop the loop:
	// the priority stores and kill interlock until this thread is highest.
	app("exitbreak:")
	app("\taddi r2, r2, 1") // count includes the breaking iteration
	app("\tfswp f6, gtmp(r0)")
	app("\tswp  r2, gcount(r0)")
	app("\tkill")
	app("\thalt")
	app("exitnull:")
	// r2 already equals the traversal length; tmp belongs to an earlier
	// iteration's thread, so only the count is published here.
	app("\tswp  r2, gcount(r0)")
	app("\tkill")
	app("\thalt")
	return string(b)
}

// NewMemory builds a memory image for a run with the given thread count.
func (ll *LinkedList) NewMemory(p *asm.Program, threads int) (*mem.Memory, error) {
	m, err := p.NewMemory(64)
	if err != nil {
		return nil, err
	}
	m.SetInt(p.MustSymbol("gthreadsll"), int64(threads))
	return m, nil
}
