package workload

import (
	"math"
	"testing"

	"hirata/internal/core"
	"hirata/internal/exec"
	"hirata/internal/risc"
)

func TestRecurrenceSequentialCorrect(t *testing.T) {
	rc, err := BuildRecurrence(RecurrenceConfig{N: 50})
	if err != nil {
		t.Fatal(err)
	}
	want := rc.Expected()

	m, err := rc.NewMemory(rc.Seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	ip := exec.NewInterp(rc.Seq.Text, m)
	if err := ip.Run(); err != nil {
		t.Fatal(err)
	}
	got := rc.X(rc.Seq, m)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interp: X(%d) = %g, want %g", i, got[i], want[i])
		}
	}

	mr, err := rc.NewMemory(rc.Seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := risc.New(risc.Config{}, rc.Seq.Text, mr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rm.Run(); err != nil {
		t.Fatal(err)
	}
	gotR := rc.X(rc.Seq, mr)
	for i := range want {
		if gotR[i] != want[i] {
			t.Fatalf("risc: X(%d) = %g, want %g", i, gotR[i], want[i])
		}
	}
}

func TestRecurrenceDoacrossCorrect(t *testing.T) {
	rc, err := BuildRecurrence(RecurrenceConfig{N: 60})
	if err != nil {
		t.Fatal(err)
	}
	want := rc.Expected()
	for _, slots := range []int{1, 2, 3, 4, 8} {
		m, err := rc.NewMemory(rc.Par, slots)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.New(core.Config{ThreadSlots: slots, StandbyStations: true}, rc.Par.Text, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.StartThread(0); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(); err != nil {
			t.Fatalf("slots=%d: %v", slots, err)
		}
		got := rc.X(rc.Par, m)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("slots=%d: X(%d) = %g, want %g (diff %g)",
					slots, i, got[i], want[i], math.Abs(got[i]-want[i]))
			}
		}
	}
}

func TestRecurrenceDoacrossSpeedsUp(t *testing.T) {
	rc, err := BuildRecurrence(RecurrenceConfig{N: 120})
	if err != nil {
		t.Fatal(err)
	}
	run := func(slots int) uint64 {
		m, err := rc.NewMemory(rc.Par, slots)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.New(core.Config{ThreadSlots: slots, StandbyStations: true}, rc.Par.Text, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.StartThread(0); err != nil {
			t.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	c1, c2, c4 := run(1), run(2), run(4)
	if c2 >= c1 {
		t.Errorf("doacross not faster with 2 slots: %d >= %d", c2, c1)
	}
	if c4 >= c2 {
		t.Errorf("doacross not faster with 4 slots: %d >= %d", c4, c2)
	}
	// The recurrence chain bounds the speed-up well below linear.
	if float64(c1)/float64(c4) > 3.5 {
		t.Errorf("speed-up %0.2f implausibly high for a serial recurrence", float64(c1)/float64(c4))
	}
}
