package workload

import (
	"testing"

	"hirata/internal/core"
	"hirata/internal/exec"
	"hirata/internal/risc"
	"hirata/internal/sched"
)

func TestRayTraceSeqMatchesParallel(t *testing.T) {
	rt, err := BuildRayTrace(RayTraceConfig{Spheres: 6, Rays: 24})
	if err != nil {
		t.Fatal(err)
	}

	// Golden: functional interpreter on the sequential program.
	mSeq, err := rt.NewMemory(rt.Seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	ip := exec.NewInterp(rt.Seq.Text, mSeq)
	if err := ip.Run(); err != nil {
		t.Fatal(err)
	}
	tsGold, hitsGold := rt.Results(rt.Seq, mSeq)

	hitCount := 0
	for _, h := range hitsGold {
		if h >= 0 {
			hitCount++
		}
	}
	if hitCount == 0 || hitCount == len(hitsGold) {
		t.Errorf("degenerate scene: %d/%d hits — branches untested", hitCount, len(hitsGold))
	}

	// Baseline RISC machine must agree.
	mRisc, err := rt.NewMemory(rt.Seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := risc.New(risc.Config{}, rt.Seq.Text, mRisc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rm.Run(); err != nil {
		t.Fatal(err)
	}
	tsRisc, hitsRisc := rt.Results(rt.Seq, mRisc)

	// Multithreaded machine on the parallel program, several widths.
	for _, slots := range []int{1, 2, 4, 8} {
		mPar, err := rt.NewMemory(rt.Par, slots)
		if err != nil {
			t.Fatal(err)
		}
		proc, err := core.New(core.Config{ThreadSlots: slots, StandbyStations: true, LoadStoreUnits: 2}, rt.Par.Text, mPar)
		if err != nil {
			t.Fatal(err)
		}
		if err := proc.StartThread(0); err != nil {
			t.Fatal(err)
		}
		if _, err := proc.Run(); err != nil {
			t.Fatal(err)
		}
		tsPar, hitsPar := rt.Results(rt.Par, mPar)
		for i := range tsGold {
			if tsPar[i] != tsGold[i] || hitsPar[i] != hitsGold[i] {
				t.Fatalf("slots=%d ray %d: core (%g,%d) != golden (%g,%d)",
					slots, i, tsPar[i], hitsPar[i], tsGold[i], hitsGold[i])
			}
			if tsRisc[i] != tsGold[i] || hitsRisc[i] != hitsGold[i] {
				t.Fatalf("ray %d: risc (%g,%d) != golden (%g,%d)",
					i, tsRisc[i], hitsRisc[i], tsGold[i], hitsGold[i])
			}
		}
	}
}

func TestRayTraceInstructionMix(t *testing.T) {
	// The kernel must be memory-heavy enough to saturate one load/store
	// unit around 8 threads (~25-40% memory operations), the effect behind
	// Table 2's plateau.
	rt, err := BuildRayTrace(RayTraceConfig{Spheres: 6, Rays: 16})
	if err != nil {
		t.Fatal(err)
	}
	mm, err := rt.NewMemory(rt.Seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	ip := exec.NewInterp(rt.Seq.Text, mm)
	var memOps, total uint64
	for {
		pc := ip.PC
		running, err := ip.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !running {
			break
		}
		total++
		if rt.Seq.Text[pc].Op.IsMem() {
			memOps++
		}
	}
	frac := float64(memOps) / float64(total)
	if frac < 0.22 || frac > 0.45 {
		t.Errorf("memory-op fraction = %.3f, want 0.22-0.45 for load/store saturation", frac)
	}
	t.Logf("dynamic instructions=%d memory fraction=%.3f", total, frac)
}

func TestLivermoreAllStrategiesCorrect(t *testing.T) {
	for _, strat := range []sched.Strategy{sched.None, sched.StrategyA, sched.StrategyB} {
		for _, slots := range []int{1, 2, 4, 8} {
			lv, err := BuildLivermore(LivermoreConfig{N: 37, Threads: slots, Strategy: strat})
			if err != nil {
				t.Fatal(err)
			}
			want := lv.Expected()

			// Sequential on the interpreter.
			mSeq, err := lv.Seq.NewMemory(64)
			if err != nil {
				t.Fatal(err)
			}
			ip := exec.NewInterp(lv.Seq.Text, mSeq)
			if err := ip.Run(); err != nil {
				t.Fatal(err)
			}
			got := lv.X(lv.Seq, mSeq)
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("%v seq: x[%d] = %g, want %g", strat, k, got[k], want[k])
				}
			}

			// Parallel on the multithreaded machine.
			mPar, err := lv.Par.NewMemory(64)
			if err != nil {
				t.Fatal(err)
			}
			proc, err := core.New(core.Config{ThreadSlots: slots, StandbyStations: true}, lv.Par.Text, mPar)
			if err != nil {
				t.Fatal(err)
			}
			if err := proc.StartThread(0); err != nil {
				t.Fatal(err)
			}
			if _, err := proc.Run(); err != nil {
				t.Fatalf("%v slots=%d: %v", strat, slots, err)
			}
			gotPar := lv.X(lv.Par, mPar)
			for k := range want {
				if gotPar[k] != want[k] {
					t.Fatalf("%v par slots=%d: x[%d] = %g, want %g", strat, slots, k, gotPar[k], want[k])
				}
			}
		}
	}
}

func TestLinkedListSequentialVsEager(t *testing.T) {
	cases := []LinkedListConfig{
		{Nodes: 40, BreakAt: -1},
		{Nodes: 40, BreakAt: 17},
		{Nodes: 40, BreakAt: 0},
		{Nodes: 7, BreakAt: 5},
	}
	for _, cfg := range cases {
		ll, err := BuildLinkedList(cfg)
		if err != nil {
			t.Fatal(err)
		}

		mSeq, err := ll.NewMemory(ll.Seq, 1)
		if err != nil {
			t.Fatal(err)
		}
		ip := exec.NewInterp(ll.Seq.Text, mSeq)
		if err := ip.Run(); err != nil {
			t.Fatal(err)
		}
		wantCount := int64(ll.ExpectedIterations())
		if got := mSeq.IntAt(ll.Seq.MustSymbol("gcount")); got != wantCount {
			t.Fatalf("cfg %+v: sequential count = %d, want %d", cfg, got, wantCount)
		}

		for _, slots := range []int{1, 2, 3, 4, 8} {
			mPar, err := ll.NewMemory(ll.Par, slots)
			if err != nil {
				t.Fatal(err)
			}
			proc, err := core.New(core.Config{ThreadSlots: slots, StandbyStations: true}, ll.Par.Text, mPar)
			if err != nil {
				t.Fatal(err)
			}
			if err := proc.StartThread(0); err != nil {
				t.Fatal(err)
			}
			if _, err := proc.Run(); err != nil {
				t.Fatalf("cfg %+v slots=%d: %v", cfg, slots, err)
			}
			if got := mPar.IntAt(ll.Par.MustSymbol("gcount")); got != wantCount {
				t.Errorf("cfg %+v slots=%d: eager count = %d, want %d", cfg, slots, got, wantCount)
			}
			if cfg.BreakAt >= 0 {
				wantTmp := mSeq.FloatAt(ll.Seq.MustSymbol("gtmp"))
				if got := mPar.FloatAt(ll.Par.MustSymbol("gtmp")); got != wantTmp {
					t.Errorf("cfg %+v slots=%d: eager tmp = %g, want %g", cfg, slots, got, wantTmp)
				}
			}
		}
	}
}

func TestLinkedListStoreResultsInOrder(t *testing.T) {
	// With priority stores enabled, every iteration's tmp lands in gout in
	// iteration order, identical to sequential execution.
	cfg := LinkedListConfig{Nodes: 24, BreakAt: -1, StoreResults: true}
	ll, err := BuildLinkedList(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mSeq, err := ll.NewMemory(ll.Seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	ip := exec.NewInterp(ll.Seq.Text, mSeq)
	if err := ip.Run(); err != nil {
		t.Fatal(err)
	}
	mPar, err := ll.NewMemory(ll.Par, 4)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := core.New(core.Config{ThreadSlots: 4, StandbyStations: true}, ll.Par.Text, mPar)
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.StartThread(0); err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Run(); err != nil {
		t.Fatal(err)
	}
	base := ll.Seq.MustSymbol("gout")
	basePar := ll.Par.MustSymbol("gout")
	for i := 0; i < cfg.Nodes; i++ {
		if mSeq.FloatAt(base+int64(i)) != mPar.FloatAt(basePar+int64(i)) {
			t.Errorf("gout[%d]: seq %g != eager %g", i,
				mSeq.FloatAt(base+int64(i)), mPar.FloatAt(basePar+int64(i)))
		}
	}
}

// TestLivermoreUnrolled: unrolled bodies compute identical results and
// improve cycles per iteration before the load/store unit saturates.
func TestLivermoreUnrolled(t *testing.T) {
	const n = 96
	run := func(unroll, slots int) (float64, []float64) {
		lv, err := BuildLivermore(LivermoreConfig{
			N: n, Threads: slots, Strategy: sched.StrategyA, Unroll: unroll,
		})
		if err != nil {
			t.Fatal(err)
		}
		prog := lv.Par
		if slots == 1 {
			prog = lv.Seq
		}
		m, err := prog.NewMemory(64)
		if err != nil {
			t.Fatal(err)
		}
		proc, err := core.New(core.Config{ThreadSlots: slots, LoadStoreUnits: 1, StandbyStations: true}, prog.Text, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := proc.StartThread(0); err != nil {
			t.Fatal(err)
		}
		res, err := proc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Cycles) / n, lv.X(prog, m)
	}
	want := (&Livermore{Cfg: LivermoreConfig{N: n}}).Expected()
	for _, slots := range []int{1, 2, 4} {
		base, x1 := run(1, slots)
		unrolled, x2 := run(2, slots)
		for k := range want {
			if x1[k] != want[k] || x2[k] != want[k] {
				t.Fatalf("slots=%d: wrong results at k=%d", slots, k)
			}
		}
		if slots <= 2 && unrolled >= base {
			t.Errorf("slots=%d: unroll 2 not faster: %.2f >= %.2f cycles/iter", slots, unrolled, base)
		}
		t.Logf("slots=%d: unroll1=%.2f unroll2=%.2f cycles/iter", slots, base, unrolled)
	}
	// unroll 3 also stays correct
	_, x3 := runUnroll3(t, n)
	for k := range want {
		if x3[k] != want[k] {
			t.Fatalf("unroll 3: wrong result at k=%d", k)
		}
	}
	if _, err := BuildLivermore(LivermoreConfig{N: 50, Threads: 4, Unroll: 3}); err == nil {
		t.Error("indivisible N accepted with unroll")
	}
}

func runUnroll3(t *testing.T, n int) (float64, []float64) {
	t.Helper()
	lv, err := BuildLivermore(LivermoreConfig{N: n, Threads: 1, Strategy: sched.StrategyB, Unroll: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := lv.Seq.NewMemory(64)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := core.New(core.Config{ThreadSlots: 1, LoadStoreUnits: 1, StandbyStations: true}, lv.Seq.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.StartThread(0); err != nil {
		t.Fatal(err)
	}
	res, err := proc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return float64(res.Cycles) / float64(n), lv.X(lv.Seq, m)
}

// TestRadiosityCorrect verifies the MinC-compiled radiosity kernel against
// the Go reference at several thread counts, and that parallelism pays.
func TestRadiosityCorrect(t *testing.T) {
	rd, err := BuildRadiosity(RadiosityConfig{Patches: 20, Sweeps: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := rd.Expected()
	var cyc1, cyc8 uint64
	for _, slots := range []int{1, 2, 4, 8} {
		m, err := rd.NewMemory(slots)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.New(core.Config{ThreadSlots: slots, LoadStoreUnits: 2, StandbyStations: true}, rd.Prog.Text, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.StartThread(0); err != nil {
			t.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			t.Fatalf("slots=%d: %v", slots, err)
		}
		got := rd.Result(m)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("slots=%d: B[%d] = %g, want %g", slots, i, got[i], want[i])
			}
		}
		switch slots {
		case 1:
			cyc1 = res.Cycles
		case 8:
			cyc8 = res.Cycles
		}
	}
	if cyc8 >= cyc1 {
		t.Errorf("radiosity did not speed up: %d >= %d cycles", cyc8, cyc1)
	}
	t.Logf("radiosity: 1 slot %d cycles, 8 slots %d cycles (%.2fx)", cyc1, cyc8, float64(cyc1)/float64(cyc8))
}
