package workload

import (
	"fmt"

	"hirata/internal/asm"
	"hirata/internal/isa"
	"hirata/internal/sched"
)

// LivermoreConfig parameterises Livermore Kernel 1 (§3.4, Table 4):
//
//	DO 1 K = 1, N
//	1  X(K) = Q + Y(K)*(R*Z(K+10) + T*Z(K+11))
type LivermoreConfig struct {
	N        int            // iterations (default 400)
	Threads  int            // thread slots the parallel version will run on
	Strategy sched.Strategy // static code scheduling strategy
	// LoadStoreUnits feeds strategy B's resource reservation table.
	LoadStoreUnits int
	// Unroll replicates the loop body (1..3 copies) before scheduling,
	// the classic transform the paper cites ([3], loop unrolling) for
	// exposing more parallelism to the static scheduler. N must be
	// divisible by Threads*Unroll.
	Unroll int
}

func (c LivermoreConfig) withDefaults() LivermoreConfig {
	if c.N <= 0 {
		c.N = 400
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.LoadStoreUnits <= 0 {
		c.LoadStoreUnits = 1
	}
	if c.Unroll <= 0 {
		c.Unroll = 1
	}
	return c
}

// Livermore bundles the generated programs.
type Livermore struct {
	Cfg LivermoreConfig
	Seq *asm.Program // sequential loop (baseline machine)
	Par *asm.Program // parallel doall: iterations strided across threads
}

// lk1Q, lk1R, lk1T are the kernel's scalar constants.
const (
	lk1Q = 1.5
	lk1R = 2.0
	lk1T = 3.0
)

// lk1Body builds the loop body with the given address stride: loads
// Z(K+10), Z(K+11), Y(K), computes X(K), stores it, and advances the three
// base registers (r1 = &X(K), r2 = &Y(K), r3 = &Z(K)).
//
// The order is the naive dependence-chained order a simple compiler emits;
// the static schedulers reorder it.
func lk1Body(stride int32) []isa.Instruction {
	return lk1BodyUnrolled(stride, 1)
}

// lk1BodyUnrolled replicates the body `unroll` times with renamed FP
// temporaries (one bank of eight registers per copy) and displaced
// addresses, advancing the base registers once at the end — exactly what a
// compiler's unroller produces. unroll must be 1..3 (register pressure).
func lk1BodyUnrolled(stride int32, unroll int) []isa.Instruction {
	if unroll < 1 || unroll > 3 {
		panic("lk1BodyUnrolled: unroll must be 1..3")
	}
	var out []isa.Instruction
	// FP temp banks per copy; f10..f12 hold the Q, R, T constants.
	banks := [3][8]isa.Reg{
		{isa.F1, isa.F2, isa.F3, isa.F4, isa.F5, isa.F6, isa.F7, isa.F8},
		{isa.F13, isa.F14, isa.F15, isa.F16, isa.F17, isa.F18, isa.F19, isa.F20},
		{isa.F21, isa.F22, isa.F23, isa.F24, isa.F25, isa.F26, isa.F27, isa.F28},
	}
	for k := 0; k < unroll; k++ {
		f := banks[k]
		d := int32(k) * stride // displacement of this copy
		out = append(out,
			isa.Instruction{Op: isa.FLW, Rd: f[0], Rs1: isa.R3, Imm: 10 + d},
			isa.Instruction{Op: isa.FMUL, Rd: f[1], Rs1: isa.F11, Rs2: f[0]},
			isa.Instruction{Op: isa.FLW, Rd: f[2], Rs1: isa.R3, Imm: 11 + d},
			isa.Instruction{Op: isa.FMUL, Rd: f[3], Rs1: isa.F12, Rs2: f[2]},
			isa.Instruction{Op: isa.FADD, Rd: f[4], Rs1: f[1], Rs2: f[3]},
			isa.Instruction{Op: isa.FLW, Rd: f[5], Rs1: isa.R2, Imm: d},
			isa.Instruction{Op: isa.FMUL, Rd: f[6], Rs1: f[5], Rs2: f[4]},
			isa.Instruction{Op: isa.FADD, Rd: f[7], Rs1: isa.F10, Rs2: f[6]},
			isa.Instruction{Op: isa.FSW, Rs1: isa.R1, Rs2: f[7], Imm: d},
		)
	}
	adv := stride * int32(unroll)
	out = append(out,
		isa.Instruction{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R1, Imm: adv},
		isa.Instruction{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R2, Imm: adv},
		isa.Instruction{Op: isa.ADDI, Rd: isa.R3, Rs1: isa.R3, Imm: adv},
	)
	return out
}

// BuildLivermore generates both versions with the configured scheduling.
func BuildLivermore(cfg LivermoreConfig) (*Livermore, error) {
	cfg = cfg.withDefaults()

	// An unrolled body computes Unroll iterations unconditionally, so the
	// trip count must divide evenly (unroll 1 keeps per-iteration checks).
	if cfg.Unroll > 1 && cfg.N%(cfg.Threads*cfg.Unroll) != 0 {
		return nil, fmt.Errorf("workload: LK1 N=%d must be divisible by threads*unroll=%d",
			cfg.N, cfg.Threads*cfg.Unroll)
	}
	mkProg := func(parallel bool) (*asm.Program, error) {
		stride := int32(1)
		threads := 1
		if parallel {
			stride = int32(cfg.Threads)
			threads = cfg.Threads
		}
		body, err := sched.Schedule(lk1BodyUnrolled(stride, cfg.Unroll), cfg.Strategy, sched.Options{
			Threads:        threads,
			LoadStoreUnits: cfg.LoadStoreUnits,
		})
		if err != nil {
			return nil, err
		}
		src := lk1Data(cfg) + lk1Text(cfg, body, parallel)
		return asm.Assemble(src)
	}

	seq, err := mkProg(false)
	if err != nil {
		return nil, fmt.Errorf("workload: sequential LK1: %w", err)
	}
	par, err := mkProg(true)
	if err != nil {
		return nil, fmt.Errorf("workload: parallel LK1: %w", err)
	}
	return &Livermore{Cfg: cfg, Seq: seq, Par: par}, nil
}

// X extracts the result vector after a run.
func (lv *Livermore) X(p *asm.Program, m interface{ FloatAt(int64) float64 }) []float64 {
	base := p.MustSymbol("xvec")
	out := make([]float64, lv.Cfg.N)
	for i := range out {
		out[i] = m.FloatAt(base + int64(i))
	}
	return out
}

// Expected computes the reference result in Go.
func (lv *Livermore) Expected() []float64 {
	n := lv.Cfg.N
	y := make([]float64, n+12)
	z := make([]float64, n+12)
	for i := range y {
		y[i] = 0.5 * float64(i)
		z[i] = 0.25 * float64(i)
	}
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		out[k] = lk1Q + y[k]*(lk1R*z[k+10]+lk1T*z[k+11])
	}
	return out
}

func lk1Data(cfg LivermoreConfig) string {
	var b []byte
	app := func(s string, args ...any) { b = append(b, fmt.Sprintf(s+"\n", args...)...) }
	app("\t.data")
	app("\t.org 8")
	app("gq: .float %g", lk1Q)
	app("gr: .float %g", lk1R)
	app("gt: .float %g", lk1T)
	app("gn: .word %d", cfg.N)
	app("yvec:")
	for i := 0; i < cfg.N+12; i++ {
		app("\t.float %g", 0.5*float64(i))
	}
	app("zvec:")
	for i := 0; i < cfg.N+12; i++ {
		app("\t.float %g", 0.25*float64(i))
	}
	app("xvec: .space %d", cfg.N)
	app("\t.text")
	return string(b)
}

// lk1Text wraps the (scheduled) body in the loop skeleton. The parallel
// version runs in explicit-rotation mode with a change-priority instruction
// at the end of every iteration, as §2.3.1 prescribes.
func lk1Text(cfg LivermoreConfig, body []isa.Instruction, parallel bool) string {
	var b []byte
	app := func(s string, args ...any) { b = append(b, fmt.Sprintf(s+"\n", args...)...) }

	if parallel {
		// The stride below is compiled in as an immediate, so the
		// program is only race-free when run with exactly cfg.Threads
		// threads; tell the inter-thread lint pass to analyse that
		// configuration instead of its default slot count.
		app("\t.lint slots %d", cfg.Threads)
		app("\tsetmode 1")
		app("\tffork")
		app("\ttid  r4")
	} else {
		app("\tli   r4, 0")
	}
	app("\tflw  f10, gq")
	app("\tflw  f11, gr")
	app("\tflw  f12, gt")
	app("\tlw   r5, gn")
	// r1 = &X(tid), r2 = &Y(tid), r3 = &Z(tid)
	app("\tla   r1, xvec")
	app("\tadd  r1, r1, r4")
	app("\tla   r2, yvec")
	app("\tadd  r2, r2, r4")
	app("\tla   r3, zvec")
	app("\tadd  r3, r3, r4")
	// iteration counter: this thread executes ceil((N - tid)/stride) times
	app("\tmov  r6, r4")
	app("loop:")
	app("\tslt  r7, r6, r5")
	app("\tbeqz r7, done")
	for _, in := range body {
		app("\t%s", in.String())
	}
	stride := cfg.Unroll
	if parallel {
		stride = cfg.Threads * cfg.Unroll
		app("\tchgpri")
	}
	app("\taddi r6, r6, %d", stride)
	app("\tj    loop")
	app("done:")
	app("\thalt")
	return string(b)
}
