// Package trace implements the paper's simulation methodology: §3.2 drives
// the simulator with "traced instruction sequences" of real programs. A
// Record is one dynamically executed instruction together with the two
// facts a timing-only replay needs beyond the encoding itself: the
// effective address of memory operations and the branch outcome.
//
// Traces are recorded by running a program on the functional interpreter
// (Record/RecordProgram), serialised with a compact binary codec
// (Write/Read), summarised (Stats), and replayed on the multithreaded
// machine through core.NewTraceDriven.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"hirata/internal/exec"
	"hirata/internal/isa"
	"hirata/internal/mem"
)

// Record is one dynamically executed instruction.
type Record struct {
	Ins   isa.Instruction
	PC    int64 // word address the instruction was fetched from
	Addr  int64 // effective address, valid when Ins accesses memory
	Taken bool  // branch outcome, valid when Ins is a branch
}

// RecordProgram runs a single-threaded program on the functional
// interpreter and returns its dynamic instruction trace. The multithreading
// opcodes are rejected (traces describe one instruction stream).
func RecordProgram(prog []isa.Instruction, m *mem.Memory, maxSteps uint64) ([]Record, error) {
	ip := exec.NewInterp(prog, m)
	if maxSteps > 0 {
		ip.SetMaxSteps(maxSteps)
	}
	var out []Record
	for {
		pc := ip.PC
		if pc < 0 || pc >= int64(len(prog)) {
			return nil, fmt.Errorf("trace: pc %d outside program", pc)
		}
		in := prog[pc]
		rec := Record{Ins: in, PC: pc}
		if in.Op.IsMem() {
			rec.Addr = ip.Regs.ReadInt(in.Rs1) + int64(in.Imm)
		}
		running, err := ip.Step()
		if err != nil {
			return nil, err
		}
		if in.Op.IsBranch() {
			rec.Taken = ip.PC != pc+1
		}
		out = append(out, rec)
		if !running {
			return out, nil
		}
	}
}

// Codec constants.
const (
	magic   = "HTRC"
	version = 1

	flagTaken = 1 << 0
	flagAddr  = 1 << 1
)

// Write serialises a trace: a magic/version header, a record count, then
// per record the 32-bit instruction word, a varint PC delta, a flag byte,
// and a varint address for memory operations.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := bw.WriteByte(version); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := putUvarint(uint64(len(recs))); err != nil {
		return err
	}
	prevPC := int64(0)
	for i, r := range recs {
		word, err := isa.Encode(r.Ins)
		if err != nil {
			return fmt.Errorf("trace: record %d: %w", i, err)
		}
		var buf [4]byte
		binary.BigEndian.PutUint32(buf[:], uint32(word))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
		if err := putUvarint(zigzag(r.PC - prevPC)); err != nil {
			return err
		}
		prevPC = r.PC
		flags := byte(0)
		if r.Taken {
			flags |= flagTaken
		}
		if r.Ins.Op.IsMem() {
			flags |= flagAddr
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		if flags&flagAddr != 0 {
			if err := putUvarint(zigzag(r.Addr)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserialises a trace written by Write.
func Read(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head[:len(magic)])
	}
	if head[len(magic)] != version {
		return nil, fmt.Errorf("trace: unsupported version %d", head[len(magic)])
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	const maxRecords = 1 << 30
	if count > maxRecords {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	recs := make([]Record, 0, count)
	prevPC := int64(0)
	var word [4]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, word[:]); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		ins, err := isa.Decode(isa.Word(binary.BigEndian.Uint32(word[:])))
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d pc: %w", i, err)
		}
		pc := prevPC + unzigzag(delta)
		prevPC = pc
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d flags: %w", i, err)
		}
		rec := Record{Ins: ins, PC: pc, Taken: flags&flagTaken != 0}
		if flags&flagAddr != 0 {
			a, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d addr: %w", i, err)
			}
			rec.Addr = unzigzag(a)
		}
		recs = append(recs, rec)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return nil, fmt.Errorf("trace: after last record: %w", err)
		}
		extra, cerr := io.Copy(io.Discard, br)
		if cerr != nil {
			return nil, fmt.Errorf("trace: after last record: %w", cerr)
		}
		return nil, fmt.Errorf("trace: %d byte(s) of trailing garbage after record %d", extra+1, count)
	}
	return recs, nil
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Mix summarises a trace's dynamic instruction mix.
type Mix struct {
	Total    uint64
	ByClass  [isa.NumUnitClasses + 1]uint64 // indexed by UnitClass
	Branches uint64
	Taken    uint64
	Loads    uint64
	Stores   uint64
}

// Stats computes the dynamic mix of a trace.
func Stats(recs []Record) Mix {
	var m Mix
	for _, r := range recs {
		m.Total++
		m.ByClass[r.Ins.Op.Unit()]++
		switch {
		case r.Ins.Op.IsBranch():
			m.Branches++
			if r.Taken {
				m.Taken++
			}
		case r.Ins.Op.IsLoad():
			m.Loads++
		case r.Ins.Op.IsStore():
			m.Stores++
		}
	}
	return m
}

// MemFraction returns the fraction of memory operations in the mix.
func (m Mix) MemFraction() float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Loads+m.Stores) / float64(m.Total)
}

// String renders the mix.
func (m Mix) String() string {
	if m.Total == 0 {
		return "empty trace"
	}
	s := fmt.Sprintf("instructions: %d\n", m.Total)
	for cls := isa.UnitClass(0); int(cls) <= isa.NumUnitClasses; cls++ {
		if m.ByClass[cls] == 0 {
			continue
		}
		s += fmt.Sprintf("  %-10s %8d (%5.1f%%)\n", cls, m.ByClass[cls],
			100*float64(m.ByClass[cls])/float64(m.Total))
	}
	s += fmt.Sprintf("  loads %d, stores %d (memory fraction %.1f%%)\n",
		m.Loads, m.Stores, 100*m.MemFraction())
	if m.Branches > 0 {
		s += fmt.Sprintf("  branches %d, %.1f%% taken\n", m.Branches,
			100*float64(m.Taken)/float64(m.Branches))
	}
	return s
}
