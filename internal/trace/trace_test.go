package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hirata/internal/asm"
	"hirata/internal/core"
	"hirata/internal/isa"
)

const sampleSrc = `
	.data
	.org 20
vec:	.word 3, 1, 4, 1, 5, 9, 2, 6
out:	.space 2
	.text
	li   r1, 0
	li   r2, 0
	la   r3, vec
loop:	lw   r4, 0(r3)
	add  r2, r2, r4
	addi r3, r3, 1
	addi r1, r1, 1
	slti r5, r1, 8
	bnez r5, loop
	sw   r2, out(r0)
	itof f1, r2
	fsqrt f2, f1
	fsw  f2, out+1(r0)
	halt
`

func record(t *testing.T) ([]Record, *asm.Program) {
	t.Helper()
	prog := asm.MustAssemble(sampleSrc)
	m, err := prog.NewMemory(32)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := RecordProgram(prog.Text, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	return recs, prog
}

func TestRecordProgram(t *testing.T) {
	recs, _ := record(t)
	if len(recs) == 0 {
		t.Fatal("empty trace")
	}
	last := recs[len(recs)-1]
	if last.Ins.Op != isa.HALT {
		t.Errorf("trace does not end with halt: %v", last.Ins)
	}
	// Branch outcomes: the loop branch is taken 7 times, untaken once.
	taken, untaken := 0, 0
	for _, r := range recs {
		if r.Ins.Op == isa.BNEZ {
			if r.Taken {
				taken++
			} else {
				untaken++
			}
		}
	}
	if taken != 7 || untaken != 1 {
		t.Errorf("branch outcomes = %d taken / %d untaken, want 7/1", taken, untaken)
	}
	// Load addresses walk the vector.
	var addrs []int64
	for _, r := range recs {
		if r.Ins.Op == isa.LW {
			addrs = append(addrs, r.Addr)
		}
	}
	if len(addrs) != 8 || addrs[0] != 20 || addrs[7] != 27 {
		t.Errorf("load addresses wrong: %v", addrs)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	recs, _ := record(t)
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("length %d != %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

// Property: the codec round-trips arbitrary well-formed records.
func TestCodecProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	mkRec := func() Record {
		r := Record{PC: rng.Int63n(1 << 30)}
		// Unused operand slots must be NoReg: the codec round-trips the
		// canonical (decoder-produced) form of an instruction.
		switch rng.Intn(3) {
		case 0:
			r.Ins = isa.Instruction{Op: isa.ADD, Rd: isa.R1, Rs1: isa.R2, Rs2: isa.R3}
		case 1:
			r.Ins = isa.Instruction{Op: isa.LW, Rd: isa.R4, Rs1: isa.R5, Rs2: isa.NoReg, Imm: int32(rng.Intn(100))}
			r.Addr = rng.Int63n(1<<40) - 1<<39
		default:
			r.Ins = isa.Instruction{Op: isa.BEQZ, Rs1: isa.R1, Rs2: isa.NoReg, Rd: isa.NoReg, Imm: int32(rng.Intn(1000))}
			r.Taken = rng.Intn(2) == 0
		}
		return r
	}
	f := func() bool {
		n := rng.Intn(50)
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = mkRec()
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NOPE"),
		[]byte("HTRC\x02"),         // bad version
		[]byte("HTRC\x01\xff"),     // truncated count
		[]byte("HTRC\x01\x02\x00"), // truncated records
	}
	for _, c := range cases {
		if _, err := Read(bytes.NewReader(c)); err == nil {
			t.Errorf("Read(%q) succeeded", c)
		}
	}
}

// TestReadRejectsTrailingGarbage: a valid trace followed by junk is a
// corrupt file, not a valid trace — Read must fail with a positioned error
// rather than silently discard the extra bytes.
func TestReadRejectsTrailingGarbage(t *testing.T) {
	recs, _ := record(t)
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	for _, junk := range [][]byte{{0x00}, {0xde, 0xad, 0xbe, 0xef}, bytes.Repeat([]byte{0x55}, 1000)} {
		corrupt := append(append([]byte{}, buf.Bytes()...), junk...)
		_, err := Read(bytes.NewReader(corrupt))
		if err == nil {
			t.Fatalf("Read accepted %d trailing garbage byte(s)", len(junk))
		}
		want := fmt.Sprintf("trace: %d byte(s) of trailing garbage after record %d", len(junk), len(recs))
		if err.Error() != want {
			t.Errorf("error = %q, want %q", err, want)
		}
	}
	// The clean file still reads.
	if _, err := Read(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("clean trace rejected: %v", err)
	}
}

func TestStats(t *testing.T) {
	recs, _ := record(t)
	mix := Stats(recs)
	if mix.Total != uint64(len(recs)) {
		t.Errorf("total = %d, want %d", mix.Total, len(recs))
	}
	if mix.Loads != 8 || mix.Stores != 2 {
		t.Errorf("loads/stores = %d/%d, want 8/2", mix.Loads, mix.Stores)
	}
	if mix.Branches != 8 || mix.Taken != 7 {
		t.Errorf("branches/taken = %d/%d, want 8/7", mix.Branches, mix.Taken)
	}
	if mix.MemFraction() <= 0 || mix.MemFraction() >= 1 {
		t.Errorf("memory fraction = %g", mix.MemFraction())
	}
	if s := mix.String(); len(s) == 0 {
		t.Error("empty Stats string")
	}
}

// toInputs converts records for core replay.
func toInputs(recs []Record) []core.TraceInput {
	out := make([]core.TraceInput, len(recs))
	for i, r := range recs {
		out[i] = core.TraceInput{Ins: r.Ins, Addr: r.Addr}
	}
	return out
}

// TestTraceDrivenMatchesExecutionDriven is the key equivalence property:
// replaying a recorded trace must take exactly as many cycles as executing
// the program, for any machine shape.
func TestTraceDrivenMatchesExecutionDriven(t *testing.T) {
	recs, prog := record(t)
	for _, cfg := range []core.Config{
		{ThreadSlots: 1, StandbyStations: true},
		{ThreadSlots: 1, StandbyStations: false},
		{ThreadSlots: 1, LoadStoreUnits: 2, StandbyStations: true},
	} {
		m, err := prog.NewMemory(32)
		if err != nil {
			t.Fatal(err)
		}
		pe, err := core.New(cfg, prog.Text, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := pe.StartThread(0); err != nil {
			t.Fatal(err)
		}
		resExec, err := pe.Run()
		if err != nil {
			t.Fatal(err)
		}

		pt, err := core.NewTraceDriven(cfg, [][]core.TraceInput{toInputs(recs)})
		if err != nil {
			t.Fatal(err)
		}
		resTrace, err := pt.Run()
		if err != nil {
			t.Fatal(err)
		}
		if resTrace.Cycles != resExec.Cycles {
			t.Errorf("cfg %+v: trace-driven %d cycles != execution-driven %d",
				cfg, resTrace.Cycles, resExec.Cycles)
		}
		if resTrace.Instructions != resExec.Instructions {
			t.Errorf("cfg %+v: instruction counts differ: %d != %d",
				cfg, resTrace.Instructions, resExec.Instructions)
		}
	}
}

// TestTraceDrivenMultithreaded replays several traces simultaneously and
// checks basic throughput behaviour.
func TestTraceDrivenMultithreaded(t *testing.T) {
	recs, _ := record(t)
	in := toInputs(recs)
	run := func(slots, copies int) uint64 {
		traces := make([][]core.TraceInput, copies)
		for i := range traces {
			traces[i] = in
		}
		p, err := core.NewTraceDriven(core.Config{
			ThreadSlots:     slots,
			LoadStoreUnits:  2,
			StandbyStations: true,
		}, traces)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	c1 := run(1, 4) // four copies time-share one slot
	c4 := run(4, 4) // four copies run simultaneously
	if c4 >= c1 {
		t.Errorf("multithreaded replay not faster: %d >= %d", c4, c1)
	}
}

func TestTraceDrivenRejectsSpecials(t *testing.T) {
	bad := []core.TraceInput{{Ins: isa.Instruction{Op: isa.FFORK}}}
	if _, err := core.NewTraceDriven(core.Config{ThreadSlots: 1}, [][]core.TraceInput{bad}); err == nil {
		t.Error("ffork accepted in a trace")
	}
	if _, err := core.NewTraceDriven(core.Config{ThreadSlots: 1}, nil); err == nil {
		t.Error("empty trace set accepted")
	}
	if _, err := core.NewTraceDriven(core.Config{ThreadSlots: 1}, [][]core.TraceInput{{}}); err == nil {
		t.Error("empty trace accepted")
	}
}
