package sweep

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderStable(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Map(100, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results, want 100", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Errorf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Map(0) = %v, %v; want nil, nil", got, err)
	}
}

func TestMapLowestIndexError(t *testing.T) {
	// Cells 3, 17 and 41 fail; every worker count must report cell 3's
	// error, the one a sequential early-stopping loop would surface.
	for _, workers := range []int{1, 2, 8} {
		_, err := Map(50, workers, func(i int) (int, error) {
			switch i {
			case 3, 17, 41:
				return 0, fmt.Errorf("cell %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "cell 3 failed" {
			t.Errorf("workers=%d: err = %v, want cell 3 failed", workers, err)
		}
	}
}

func TestMapSequentialStopsEarly(t *testing.T) {
	// The workers==1 reference path must behave like the loop it replaced:
	// no cell after the first failure runs.
	var ran atomic.Int32
	boom := errors.New("boom")
	_, err := Map(10, 1, func(i int) (int, error) {
		ran.Add(1)
		if i == 4 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n != 5 {
		t.Errorf("sequential path ran %d cells after failure at cell 4; want 5", n)
	}
}

func TestMapRunsEveryCellOnce(t *testing.T) {
	var calls [200]atomic.Int32
	if _, err := Map(len(calls), 16, func(i int) (int, error) {
		calls[i].Add(1)
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Errorf("cell %d ran %d times, want 1", i, n)
		}
	}
}

func TestMapWorkersClamped(t *testing.T) {
	// More workers than cells must not deadlock or double-run cells.
	var ran atomic.Int32
	got, err := Map(3, 100, func(i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || ran.Load() != 3 {
		t.Fatalf("got %v (%d calls), want 3 cells once each", got, ran.Load())
	}
}
