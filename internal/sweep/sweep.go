// Package sweep executes independent simulation cells concurrently.
//
// The paper's results are grids of independent simulations (Tables 2–5,
// the §3.3 speedup curves): every cell builds its own Processor and Memory
// and shares nothing with its neighbours, so the grid parallelises
// trivially while each simulator core stays single-threaded. Map is the
// only primitive the experiment runners need: run fn(0..n-1) on a bounded
// worker pool and hand back the results in index order, so a parallel
// sweep is observationally identical to the sequential loop it replaced —
// byte-identical output, deterministic error selection — regardless of
// worker count or scheduling.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Telemetry observes a Map run for host-side self-observability
// (internal/hostobs feeds sweep-worker timelines and queue-depth counters
// into the host Chrome trace and /hostmetrics from it). CellDone is called
// after every cell, including on the sequential workers==1 reference path
// (as worker 0); pending is the number of cells not yet finished after this
// one. Implementations must be safe for concurrent calls and must not
// panic; a nil Telemetry costs nothing.
type Telemetry interface {
	CellDone(worker, cell, pending int, start, end time.Time, err error)
}

// Map runs fn(i) for every i in [0, n) and returns the n results in index
// order. workers bounds the number of concurrent calls: 1 runs the plain
// sequential loop (the reference path), values above n are clamped, and
// workers <= 0 selects runtime.NumCPU(). Workers pull indices from a
// shared atomic counter, so cells of uneven cost balance automatically.
//
// On failure Map returns the error of the lowest-index failing cell — the
// same error a sequential loop stopping at its first failure surfaces —
// so error reporting is deterministic at any worker count. (The parallel
// path still runs every cell; cells are independent simulations, so the
// extra work has no observable effect beyond latency.)
func Map[T any](n, workers int, fn func(int) (T, error)) ([]T, error) {
	return MapObserved(n, workers, fn, nil)
}

// MapObserved is Map with an optional Telemetry sink. Telemetry only
// observes timing; results and error selection are identical to Map.
func MapObserved[T any](n, workers int, fn func(int) (T, error), tel Telemetry) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	var done atomic.Int64
	report := func(worker, cell int, start time.Time, err error) {
		if tel == nil {
			return
		}
		pending := n - int(done.Add(1))
		tel.CellDone(worker, cell, pending, start, time.Now(), err)
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			start := time.Time{}
			if tel != nil {
				start = time.Now()
			}
			r, err := fn(i)
			report(0, i, start, err)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				start := time.Time{}
				if tel != nil {
					start = time.Now()
				}
				results[i], errs[i] = fn(i)
				report(worker, i, start, errs[i])
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
