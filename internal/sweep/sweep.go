// Package sweep executes independent simulation cells concurrently.
//
// The paper's results are grids of independent simulations (Tables 2–5,
// the §3.3 speedup curves): every cell builds its own Processor and Memory
// and shares nothing with its neighbours, so the grid parallelises
// trivially while each simulator core stays single-threaded. Map is the
// only primitive the experiment runners need: run fn(0..n-1) on a bounded
// worker pool and hand back the results in index order, so a parallel
// sweep is observationally identical to the sequential loop it replaced —
// byte-identical output, deterministic error selection — regardless of
// worker count or scheduling.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn(i) for every i in [0, n) and returns the n results in index
// order. workers bounds the number of concurrent calls: 1 runs the plain
// sequential loop (the reference path), values above n are clamped, and
// workers <= 0 selects runtime.NumCPU(). Workers pull indices from a
// shared atomic counter, so cells of uneven cost balance automatically.
//
// On failure Map returns the error of the lowest-index failing cell — the
// same error a sequential loop stopping at its first failure surfaces —
// so error reporting is deterministic at any worker count. (The parallel
// path still runs every cell; cells are independent simulations, so the
// extra work has no observable effect beyond latency.)
func Map[T any](n, workers int, fn func(int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
