package minc

import (
	"os"
	"path/filepath"
	"testing"

	"hirata/internal/lint"
)

// FuzzCompile feeds MinC sources (seeded from the shipped examples) to the
// compiler and verifies every successfully compiled program against the
// structural lint checks: the code generator must never emit branches to
// nowhere, transfers into a split li expansion, paths that run off the end
// of the text section, or writes to r0.
//
// The value-flow diagnostics (uninitialised reads, queue protocol, queue
// deadlock, unreachable code) are deliberately not asserted: fuzzed MinC
// can legitimately describe programs with those properties (for example a
// qrecv() with no matching qsend), and the verifier is then correct to
// report them.
func FuzzCompile(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "programs", "*.mc"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no MinC example corpus found")
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	// Small hand seeds covering features the examples may not hit.
	f.Add("int x; void main() { x = 1 + 2 * 3; }")
	f.Add("void main() { int i; for (i = 0; i < 4; i = i + 1) { } }")
	f.Add("float g; void main() { float a; a = 1.5; if (a < 2.0) { g = a; } }")
	f.Add("void main() { fork(); qsend(tid()); qrecv(); }")
	f.Add("int a[8]; void main() { int i; while (i < 8) { a[i] = i; i = i + 1; } }")

	structural := map[lint.Code]bool{
		lint.CodeBadTarget:     true,
		lint.CodeSplitLI:       true,
		lint.CodeNoHalt:        true,
		lint.CodeReadonlyWrite: true,
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Compile(src)
		if err != nil {
			return // rejecting bad source is fine; crashing is not
		}
		for _, d := range lint.AnalyzeProgram(p, lint.Config{}) {
			if structural[d.Code] {
				t.Errorf("compiled output fails verification: %v\nsource:\n%s", d, src)
			}
		}
	})
}
