package minc

// typ is a MinC type.
type typ uint8

const (
	typInt typ = iota
	typFloat
)

func (t typ) String() string {
	if t == typFloat {
		return "float"
	}
	return "int"
}

// file is a parsed compilation unit.
type file struct {
	globals []*global
	body    []stmt // the body of func main
}

// global is one global declaration.
type global struct {
	name    string
	ty      typ
	size    int     // 0 for scalars, element count for arrays
	init    float64 // initial value for scalars (bit pattern chosen by type)
	hasInit bool
	line    int
}

// Statements.
type stmt interface{ stmtLine() int }

type declStmt struct {
	name string
	ty   typ
	init expr
	line int
}

type assignStmt struct {
	name  string
	index expr // nil for scalars
	value expr
	line  int
}

type ifStmt struct {
	cond      expr
	then, els []stmt
	line      int
}

type whileStmt struct {
	cond expr
	body []stmt
	line int
}

type forStmt struct {
	init stmt // declStmt or assignStmt, may be nil
	cond expr
	post stmt // assignStmt, may be nil
	body []stmt
	line int
}

type breakStmt struct{ line int }
type continueStmt struct{ line int }

// callStmt is an intrinsic statement: fork(), chgpri(), kill(), halt(),
// qmap(), qmapf(), qunmap(), qsend(x), qsendf(x).
type callStmt struct {
	name string
	arg  expr // qsend/qsendf operand
	line int
}

func (s *declStmt) stmtLine() int     { return s.line }
func (s *assignStmt) stmtLine() int   { return s.line }
func (s *ifStmt) stmtLine() int       { return s.line }
func (s *whileStmt) stmtLine() int    { return s.line }
func (s *forStmt) stmtLine() int      { return s.line }
func (s *breakStmt) stmtLine() int    { return s.line }
func (s *continueStmt) stmtLine() int { return s.line }
func (s *callStmt) stmtLine() int     { return s.line }

// Expressions.
type expr interface{ exprLine() int }

type intLit struct {
	val  int64
	line int
}

type floatLit struct {
	val  float64
	line int
}

type varRef struct {
	name string
	line int
}

type indexExpr struct {
	name  string
	index expr
	line  int
}

type binExpr struct {
	op   string
	l, r expr
	line int
}

type unExpr struct {
	op   string // "-" or "!"
	x    expr
	line int
}

// callExpr is an intrinsic expression: tid(), nthreads(), sqrt(x),
// abs(x), float(x), int(x).
type callExpr struct {
	name string
	args []expr
	line int
}

func (e *intLit) exprLine() int    { return e.line }
func (e *floatLit) exprLine() int  { return e.line }
func (e *varRef) exprLine() int    { return e.line }
func (e *indexExpr) exprLine() int { return e.line }
func (e *binExpr) exprLine() int   { return e.line }
func (e *unExpr) exprLine() int    { return e.line }
func (e *callExpr) exprLine() int  { return e.line }
