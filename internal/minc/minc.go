// Package minc is a small C-like kernel-language compiler targeting the
// machine's ISA. The paper's evaluation compiles its workloads with "a
// commercial RISC compiler" — this package is the from-scratch equivalent
// substrate, so workloads can be written at the source level and run on
// any of the simulators.
//
// The language ("MinC"):
//
//	global int   n = 64;            // scalar global with initial value
//	global float xs[64];            // global array (zero-initialised)
//	global float q = 1.5;
//
//	func main() {
//	    fork();                     // start a thread on every slot
//	    int i = tid();
//	    while (i < n) {
//	        xs[i] = sqrt(float(i)) * q + 1.0;
//	        i = i + nthreads();
//	    }
//	}
//
// Types: int (64-bit) and float (IEEE double). Statements: declarations,
// assignments, if/else, while, for, break, continue, and the intrinsic
// statements fork(), chgpri(), kill(), halt(). Expressions: arithmetic
// (+ - * / %), comparisons, logical && || ! (evaluated without
// short-circuit; operands are side-effect free by construction), array
// indexing, and the intrinsics tid(), nthreads(), sqrt(x), abs(x),
// float(x), int(x).
//
// The compiler performs a syntax-directed translation to assembly text,
// which the internal/asm assembler turns into a Program: globals live in
// the data section (addresses in the symbol table), locals live in
// registers, and expression temporaries come from a small register pool.
// nthreads() reads the global __nthreads, which the host sets with
// SetThreads before a run.
package minc

import (
	"fmt"

	"hirata/internal/asm"
	"hirata/internal/mem"
)

// Compile translates MinC source into an assembled Program.
func Compile(src string) (*asm.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	file, err := parse(toks)
	if err != nil {
		return nil, err
	}
	text, err := generate(file)
	if err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(text)
	if err != nil {
		return nil, fmt.Errorf("minc: internal: generated assembly rejected: %w\n%s", err, text)
	}
	return prog, nil
}

// CompileToAsm returns the generated assembly source without assembling,
// for inspection and tests.
func CompileToAsm(src string) (string, error) {
	toks, err := lex(src)
	if err != nil {
		return "", err
	}
	file, err := parse(toks)
	if err != nil {
		return "", err
	}
	return generate(file)
}

// SetThreads stores the thread count where compiled nthreads() reads it.
func SetThreads(p *asm.Program, m *mem.Memory, threads int) {
	if addr, ok := p.Symbol("__nthreads"); ok {
		m.SetInt(addr, int64(threads))
	}
}

// EvaluateReference parses a single-threaded MinC program and evaluates it
// directly on the AST (the compiler's reference semantics), returning the
// final scalar globals as raw 64-bit words and the global arrays as word
// slices. Used for differential testing of the compiler.
func EvaluateReference(src string) (map[string]uint64, map[string][]uint64, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, nil, err
	}
	f, err := parse(toks)
	if err != nil {
		return nil, nil, err
	}
	return evaluate(f)
}
