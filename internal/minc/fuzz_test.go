package minc

// Differential testing of the compiler: random single-threaded MinC
// programs are compiled and run on the ISA-level functional model, and
// independently evaluated directly on the AST. The two executions must
// leave identical global state, bit for bit.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hirata/internal/exec"
)

// progGen builds random, always-terminating MinC programs.
type progGen struct {
	rng *rand.Rand
	b   strings.Builder
	// in-scope integer locals usable in expressions (loop counters and
	// declared scalars); float locals tracked separately. Loop counters
	// are readable but never assignment targets (loops must terminate).
	intVars    []string
	assignable []string
	floatVars  []string
	nextVar    int
	stmtsLeft  int
}

const arrLen = 8

func (g *progGen) gen() string {
	g.b.WriteString("global int iout[8];\n")
	g.b.WriteString("global float fout[8];\n")
	g.b.WriteString("global int gs = 3;\n")
	g.b.WriteString("global float gf = 1.25;\n")
	g.b.WriteString("func main() {\n")
	g.stmtsLeft = 24 + g.rng.Intn(24)
	g.block(1)
	g.b.WriteString("}\n")
	return g.b.String()
}

func (g *progGen) indent(level int) {
	for i := 0; i < level; i++ {
		g.b.WriteByte('\t')
	}
}

func (g *progGen) block(level int) {
	n := 1 + g.rng.Intn(5)
	savedInt, savedAssign, savedFloat := len(g.intVars), len(g.assignable), len(g.floatVars)
	for i := 0; i < n && g.stmtsLeft > 0; i++ {
		g.stmtsLeft--
		g.stmt(level)
	}
	g.intVars = g.intVars[:savedInt]
	g.assignable = g.assignable[:savedAssign]
	g.floatVars = g.floatVars[:savedFloat]
}

func (g *progGen) stmt(level int) {
	if level > 3 {
		g.assignStmt(level)
		return
	}
	switch g.rng.Intn(10) {
	case 0, 1:
		// new local
		name := fmt.Sprintf("v%d", g.nextVar)
		g.nextVar++
		if g.rng.Intn(2) == 0 {
			g.indent(level)
			fmt.Fprintf(&g.b, "int %s = %s;\n", name, g.intExpr(0))
			g.intVars = append(g.intVars, name)
			g.assignable = append(g.assignable, name)
		} else {
			g.indent(level)
			fmt.Fprintf(&g.b, "float %s = %s;\n", name, g.floatExpr(0))
			g.floatVars = append(g.floatVars, name)
		}
	case 2:
		// if/else
		g.indent(level)
		fmt.Fprintf(&g.b, "if (%s) {\n", g.intExpr(0))
		g.block(level + 1)
		g.indent(level)
		if g.rng.Intn(2) == 0 {
			g.b.WriteString("} else {\n")
			g.block(level + 1)
			g.indent(level)
		}
		g.b.WriteString("}\n")
	case 3:
		// bounded for loop
		name := fmt.Sprintf("v%d", g.nextVar)
		g.nextVar++
		bound := 2 + g.rng.Intn(5)
		g.indent(level)
		fmt.Fprintf(&g.b, "for (int %s = 0; %s < %d; %s = %s + 1) {\n", name, name, bound, name, name)
		g.intVars = append(g.intVars, name)
		g.block(level + 1)
		g.intVars = g.intVars[:len(g.intVars)-1]
		g.indent(level)
		g.b.WriteString("}\n")
	case 4:
		// bounded while loop with a protected countdown variable
		name := fmt.Sprintf("v%d", g.nextVar)
		g.nextVar++
		bound := 2 + g.rng.Intn(4)
		g.indent(level)
		fmt.Fprintf(&g.b, "int %s = %d;\n", name, bound)
		g.indent(level)
		fmt.Fprintf(&g.b, "while (%s > 0) {\n", name)
		g.intVars = append(g.intVars, name)
		g.block(level + 1)
		g.indent(level + 1)
		fmt.Fprintf(&g.b, "%s = %s - 1;\n", name, name)
		g.intVars = g.intVars[:len(g.intVars)-1]
		g.indent(level)
		g.b.WriteString("}\n")
	default:
		g.assignStmt(level)
	}
}

func (g *progGen) assignStmt(level int) {
	g.indent(level)
	switch g.rng.Intn(5) {
	case 0:
		fmt.Fprintf(&g.b, "iout[%s] = %s;\n", g.indexExpr(), g.intExpr(0))
	case 1:
		fmt.Fprintf(&g.b, "fout[%s] = %s;\n", g.indexExpr(), g.floatExpr(0))
	case 2:
		fmt.Fprintf(&g.b, "gs = %s;\n", g.intExpr(0))
	case 3:
		fmt.Fprintf(&g.b, "gf = %s;\n", g.floatExpr(0))
	default:
		if len(g.assignable) > 0 && g.rng.Intn(2) == 0 {
			v := g.assignable[g.rng.Intn(len(g.assignable))]
			fmt.Fprintf(&g.b, "%s = %s;\n", v, g.intExpr(0))
		} else if len(g.floatVars) > 0 {
			v := g.floatVars[g.rng.Intn(len(g.floatVars))]
			fmt.Fprintf(&g.b, "%s = %s;\n", v, g.floatExpr(0))
		} else {
			fmt.Fprintf(&g.b, "gs = %s;\n", g.intExpr(0))
		}
	}
}

// indexExpr yields an always-in-range array index.
func (g *progGen) indexExpr() string {
	return fmt.Sprintf("((%s) %% %d + %d) %% %d", g.intExpr(1), arrLen, arrLen, arrLen)
}

func (g *progGen) intExpr(depth int) string {
	if depth > 2 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(200)-100)
		case 1:
			if len(g.intVars) > 0 {
				return g.intVars[g.rng.Intn(len(g.intVars))]
			}
			return "gs"
		case 2:
			return "gs"
		default:
			return fmt.Sprintf("iout[%d]", g.rng.Intn(arrLen))
		}
	}
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.intExpr(depth+1), g.intExpr(depth+1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.intExpr(depth+1), g.intExpr(depth+1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.intExpr(depth+1), g.intExpr(depth+1))
	case 3:
		// nonzero constant divisor keeps both semantics defined
		return fmt.Sprintf("(%s / %d)", g.intExpr(depth+1), 1+g.rng.Intn(9))
	case 4:
		return fmt.Sprintf("(%s %% %d)", g.intExpr(depth+1), 1+g.rng.Intn(9))
	case 5:
		return fmt.Sprintf("(%s %s %s)", g.intExpr(depth+1), g.cmpOp(), g.intExpr(depth+1))
	case 6:
		return fmt.Sprintf("(%s %s %s)", g.floatExpr(depth+1), g.cmpOp(), g.floatExpr(depth+1))
	default:
		return fmt.Sprintf("int(%s)", g.floatExpr(depth+1))
	}
}

func (g *progGen) cmpOp() string {
	ops := []string{"==", "!=", "<", "<=", ">", ">="}
	return ops[g.rng.Intn(len(ops))]
}

func (g *progGen) floatExpr(depth int) string {
	if depth > 2 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%.3f", g.rng.Float64()*8-4)
		case 1:
			if len(g.floatVars) > 0 {
				return g.floatVars[g.rng.Intn(len(g.floatVars))]
			}
			return "gf"
		case 2:
			return "gf"
		default:
			return fmt.Sprintf("fout[%d]", g.rng.Intn(arrLen))
		}
	}
	switch g.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.floatExpr(depth+1), g.floatExpr(depth+1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.floatExpr(depth+1), g.floatExpr(depth+1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.floatExpr(depth+1), g.floatExpr(depth+1))
	case 3:
		return fmt.Sprintf("(%s / %.3f)", g.floatExpr(depth+1), 0.5+g.rng.Float64()*4)
	case 4:
		return fmt.Sprintf("sqrt(abs(%s))", g.floatExpr(depth+1))
	default:
		return fmt.Sprintf("float(%s)", g.intExpr(depth+1))
	}
}

// TestCompilerDifferential is the headline compiler-correctness property.
func TestCompilerDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	for trial := 0; trial < 120; trial++ {
		g := &progGen{rng: rng}
		src := g.gen()

		wantScalars, wantArrays, err := EvaluateReference(src)
		if err != nil {
			t.Fatalf("trial %d: reference evaluation: %v\n%s", trial, err, src)
		}

		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}
		m, err := prog.NewMemory(256)
		if err != nil {
			t.Fatal(err)
		}
		SetThreads(prog, m, 1)
		ip := exec.NewInterp(prog.Text, m)
		if err := ip.Run(); err != nil {
			t.Fatalf("trial %d: machine run: %v\n%s", trial, err, src)
		}

		for name, want := range wantScalars {
			got, err := m.Load(prog.MustSymbol(name))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d: global %s = %#x, reference %#x\n%s", trial, name, got, want, src)
			}
		}
		for name, want := range wantArrays {
			base := prog.MustSymbol(name)
			for i, w := range want {
				got, err := m.Load(base + int64(i))
				if err != nil {
					t.Fatal(err)
				}
				if got != w {
					t.Fatalf("trial %d: %s[%d] = %#x, reference %#x\n%s", trial, name, i, got, w, src)
				}
			}
		}
	}
}
