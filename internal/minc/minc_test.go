package minc

import (
	"math"
	"strings"
	"testing"

	"hirata/internal/core"
	"hirata/internal/exec"
	"hirata/internal/mem"
	"hirata/internal/risc"
)

// compileRun compiles src and runs it on the functional interpreter.
func compileRun(t *testing.T, src string) (*mem.Memory, map[string]int64) {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m, err := prog.NewMemory(256)
	if err != nil {
		t.Fatal(err)
	}
	SetThreads(prog, m, 1)
	ip := exec.NewInterp(prog.Text, m)
	if err := ip.Run(); err != nil {
		t.Fatalf("run: %v\n%s", err, mustAsm(t, src))
	}
	return m, prog.Symbols
}

func mustAsm(t *testing.T, src string) string {
	t.Helper()
	out, err := CompileToAsm(src)
	if err != nil {
		return "<compile error>"
	}
	return out
}

func TestArithmetic(t *testing.T) {
	m, syms := compileRun(t, `
		global int a;
		global int b;
		global float c;
		func main() {
			a = (3 + 4) * 5 - 18 / 3 % 4;
			b = -7 + 2 * (1 + 1);
			c = 1.5 * 4.0 + 0.25;
		}
	`)
	if got := m.IntAt(syms["a"]); got != 33 {
		t.Errorf("a = %d, want 33", got)
	}
	if got := m.IntAt(syms["b"]); got != -3 {
		t.Errorf("b = %d, want -3", got)
	}
	if got := m.FloatAt(syms["c"]); got != 6.25 {
		t.Errorf("c = %g, want 6.25", got)
	}
}

func TestGlobalsAndInit(t *testing.T) {
	m, syms := compileRun(t, `
		global int n = 42;
		global float q = -2.5;
		global int out;
		global float fout;
		func main() {
			out = n + 1;
			fout = q * 2.0;
		}
	`)
	if got := m.IntAt(syms["out"]); got != 43 {
		t.Errorf("out = %d, want 43", got)
	}
	if got := m.FloatAt(syms["fout"]); got != -5 {
		t.Errorf("fout = %g, want -5", got)
	}
}

func TestControlFlow(t *testing.T) {
	m, syms := compileRun(t, `
		global int fizz;
		global int buzz;
		global int both;
		global int sum;
		func main() {
			for (int i = 1; i <= 30; i = i + 1) {
				if (i % 15 == 0) {
					both = both + 1;
				} else if (i % 3 == 0) {
					fizz = fizz + 1;
				} else if (i % 5 == 0) {
					buzz = buzz + 1;
				}
			}
			int k = 0;
			while (1) {
				k = k + 1;
				if (k >= 10) { break; }
			}
			int s = 0;
			for (int j = 0; j < 10; j = j + 1) {
				if (j % 2 == 0) { continue; }
				s = s + j;
			}
			sum = s + k;
		}
	`)
	if got := m.IntAt(syms["fizz"]); got != 8 {
		t.Errorf("fizz = %d, want 8", got)
	}
	if got := m.IntAt(syms["buzz"]); got != 4 {
		t.Errorf("buzz = %d, want 4", got)
	}
	if got := m.IntAt(syms["both"]); got != 2 {
		t.Errorf("both = %d, want 2", got)
	}
	if got := m.IntAt(syms["sum"]); got != 25+10 {
		t.Errorf("sum = %d, want 35", got)
	}
}

func TestArraysAndIntrinsics(t *testing.T) {
	m, syms := compileRun(t, `
		global float roots[16];
		global int idx[16];
		global float total;
		func main() {
			for (int i = 0; i < 16; i = i + 1) {
				roots[i] = sqrt(float(i));
				idx[i] = int(roots[i] * roots[i] + 0.5);
			}
			float t = 0.0;
			for (int i = 0; i < 16; i = i + 1) {
				t = t + roots[i];
			}
			total = t;
		}
	`)
	base := syms["roots"]
	want := 0.0
	for i := 0; i < 16; i++ {
		r := math.Sqrt(float64(i))
		want += r
		if got := m.FloatAt(base + int64(i)); got != r {
			t.Errorf("roots[%d] = %g, want %g", i, got, r)
		}
		if got := m.IntAt(syms["idx"] + int64(i)); got != int64(i) {
			t.Errorf("idx[%d] = %d, want %d", i, got, i)
		}
	}
	if got := m.FloatAt(syms["total"]); got != want {
		t.Errorf("total = %g, want %g", got, want)
	}
}

func TestLogicalOps(t *testing.T) {
	m, syms := compileRun(t, `
		global int r[8];
		func main() {
			r[0] = 1 && 1;
			r[1] = 1 && 0;
			r[2] = 0 || 3;
			r[3] = 0 || 0;
			r[4] = !0;
			r[5] = !7;
			r[6] = (2 < 3) && (3.5 > 1.0);
			r[7] = 5 && 2;
		}
	`)
	want := []int64{1, 0, 1, 0, 1, 0, 1, 1}
	for i, w := range want {
		if got := m.IntAt(syms["r"] + int64(i)); got != w {
			t.Errorf("r[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestFloatComparisons(t *testing.T) {
	m, syms := compileRun(t, `
		global int r[6];
		func main() {
			float a = 1.5;
			float b = 2.5;
			r[0] = a < b;
			r[1] = a > b;
			r[2] = a <= 1.5;
			r[3] = b >= 3.0;
			r[4] = a == 1.5;
			r[5] = a != b;
		}
	`)
	want := []int64{1, 0, 1, 0, 1, 1}
	for i, w := range want {
		if got := m.IntAt(syms["r"] + int64(i)); got != w {
			t.Errorf("r[%d] = %d, want %d", i, got, w)
		}
	}
}

// TestMultithreadedKernel compiles a forked kernel and runs it on the
// multithreaded machine at several widths.
func TestMultithreadedKernel(t *testing.T) {
	src := `
		global int n = 32;
		global float xs[32];
		global int done[8];
		func main() {
			fork();
			int i = tid();
			int step = nthreads();
			while (i < n) {
				xs[i] = sqrt(float(i)) * 2.0 + 1.0;
				i = i + step;
			}
			done[tid()] = 1;
		}
	`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, slots := range []int{1, 2, 4, 8} {
		m, err := prog.NewMemory(256)
		if err != nil {
			t.Fatal(err)
		}
		SetThreads(prog, m, slots)
		p, err := core.New(core.Config{ThreadSlots: slots, StandbyStations: true, LoadStoreUnits: 2}, prog.Text, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.StartThread(0); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(); err != nil {
			t.Fatalf("slots=%d: %v", slots, err)
		}
		base := prog.MustSymbol("xs")
		for i := 0; i < 32; i++ {
			want := math.Sqrt(float64(i))*2 + 1
			if got := m.FloatAt(base + int64(i)); got != want {
				t.Errorf("slots=%d: xs[%d] = %g, want %g", slots, i, got, want)
			}
		}
		for i := 0; i < slots; i++ {
			if got := m.IntAt(prog.MustSymbol("done") + int64(i)); got != 1 {
				t.Errorf("slots=%d: thread %d did not finish", slots, i)
			}
		}
	}
}

// TestCompiledMatchesAllMachines: the same compiled program computes the
// same results on the interpreter, the RISC baseline and the MT machine.
func TestCompiledMatchesAllMachines(t *testing.T) {
	src := `
		global float acc;
		global int steps;
		func main() {
			float x = 1.0;
			int i = 0;
			while (x < 1000.0) {
				x = x * 1.5 + float(i % 3);
				i = i + 1;
			}
			acc = x;
			steps = i;
		}
	`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]uint64, 3)
	for k := 0; k < 3; k++ {
		m, err := prog.NewMemory(64)
		if err != nil {
			t.Fatal(err)
		}
		SetThreads(prog, m, 1)
		switch k {
		case 0:
			ip := exec.NewInterp(prog.Text, m)
			if err := ip.Run(); err != nil {
				t.Fatal(err)
			}
		case 1:
			mc, _ := risc.New(risc.Config{}, prog.Text, m)
			if _, err := mc.Run(); err != nil {
				t.Fatal(err)
			}
		case 2:
			p, _ := core.New(core.Config{ThreadSlots: 1, StandbyStations: true}, prog.Text, m)
			if err := p.StartThread(0); err != nil {
				t.Fatal(err)
			}
			if _, err := p.Run(); err != nil {
				t.Fatal(err)
			}
		}
		v, _ := m.Load(prog.MustSymbol("acc"))
		results[k] = v
	}
	if results[0] != results[1] || results[1] != results[2] {
		t.Errorf("machines disagree: %x %x %x", results[0], results[1], results[2])
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"no main":               `global int x;`,
		"undefined var":         `func main() { x = 1; }`,
		"dup local":             `func main() { int x = 1; int x = 2; }`,
		"dup global":            "global int x;\nglobal int x;\nfunc main() { }",
		"scalar as array":       `global int x; func main() { x[0] = 1; }`,
		"array as scalar":       `global int x[4]; func main() { x = 1; }`,
		"break outside":         `func main() { break; }`,
		"continue outside":      `func main() { continue; }`,
		"bad token":             `func main() { int x = 1 @ 2; }`,
		"unterminated":          `func main() { int x = 1;`,
		"float mod":             `func main() { float x = 1.5 % 2.0; }`,
		"two funcs":             `func main() { } func main() { }`,
		"not main":              `func other() { }`,
		"array init":            `global int xs[4] = 3; func main() { }`,
		"bad arity":             `func main() { int x = sqrt(); }`,
		"shadow global":         `global int g; func main() { int g = 1; }`,
		"local array ref":       `func main() { int x = 1; int y = x[0]; }`,
		"not operator on float": `func main() { int x = !1.5; }`,
	}
	for name, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: compiled without error:\n%s", name, src)
		}
	}
}

func TestTooManyLocals(t *testing.T) {
	src := "func main() {\n"
	for i := 0; i < 11; i++ {
		src += "\tint v" + string(rune('a'+i)) + " = 1;\n"
	}
	src += "}\n"
	if _, err := Compile(src); err == nil {
		t.Error("11 int locals accepted (max is 10)")
	}
}

func TestDeepExpressionRejected(t *testing.T) {
	// Build an expression nesting deeper than the temp pool.
	e := "1"
	for i := 0; i < 15; i++ {
		e = "(" + e + " + (2 * (3 - " + e + ")))"
		if len(e) > 4000 {
			break
		}
	}
	src := "global int x; func main() { x = " + e + "; }"
	if _, err := Compile(src); err == nil {
		// Deep nesting may still fit if the generator frees eagerly; only
		// flag if it produced wrong code, which other tests would catch.
		t.Skip("expression fit in the temporary pool")
	}
}

// TestQueueIntrinsics compiles a software pipeline over queue registers:
// thread 0 produces, thread 1 squares, thread 2 stores.
func TestQueueIntrinsics(t *testing.T) {
	src := `
		global int out[10];
		func main() {
			fork();
			qmap();
			int me = tid();
			if (me == 0) {
				for (int i = 1; i <= 10; i = i + 1) {
					qsend(i);
				}
			} else if (me == 1) {
				for (int i = 0; i < 10; i = i + 1) {
					int v = qrecv();
					qsend(v * v);
				}
			} else if (me == 2) {
				for (int i = 0; i < 10; i = i + 1) {
					out[i] = qrecv();
				}
			}
		}
	`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMemory(256)
	if err != nil {
		t.Fatal(err)
	}
	SetThreads(prog, m, 3)
	p, err := core.New(core.Config{ThreadSlots: 3, StandbyStations: true}, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.StartThread(0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	base := prog.MustSymbol("out")
	for i := int64(0); i < 10; i++ {
		want := (i + 1) * (i + 1)
		if got := m.IntAt(base + i); got != want {
			t.Errorf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

// TestQueueFloatRecurrence compiles the doacross recurrence in MinC and
// verifies against the Go computation.
func TestQueueFloatRecurrence(t *testing.T) {
	src := `
		global int n = 40;
		global float xs[41];
		func main() {
			fork();
			qmapf();
			int me = tid();
			int step = nthreads();
			int i = me + 1;
			float x = 0.0;
			if (me == 0) {
				x = 0.25;
			} else {
				if (i <= n) { x = qrecvf(); }
			}
			while (i <= n) {
				x = 0.998 * (1.0 + 0.001 * float(i) - x);
				qsendf(x);
				xs[i] = x;
				i = i + step;
				if (i <= n) { x = qrecvf(); }
			}
		}
	`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, slots := range []int{1, 2, 4} {
		m, err := prog.NewMemory(256)
		if err != nil {
			t.Fatal(err)
		}
		SetThreads(prog, m, slots)
		p, err := core.New(core.Config{ThreadSlots: slots, StandbyStations: true, QueueDepth: 2}, prog.Text, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.StartThread(0); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(); err != nil {
			t.Fatalf("slots=%d: %v", slots, err)
		}
		// Reference in Go.
		x := 0.25
		base := prog.MustSymbol("xs")
		for i := 1; i <= 40; i++ {
			x = 0.998 * (1.0 + 0.001*float64(i) - x)
			if got := m.FloatAt(base + int64(i)); got != x {
				t.Errorf("slots=%d: xs[%d] = %g, want %g", slots, i, got, x)
			}
		}
	}
}

func TestCompileToAsmOutput(t *testing.T) {
	out, err := CompileToAsm(`
		global float g = 2.5;
		func main() { g = g * 2.0; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{".data", "__nthreads", "g: .float 2.5", "fmul", "halt"} {
		if !strings.Contains(out, want) {
			t.Errorf("generated assembly missing %q:\n%s", want, out)
		}
	}
	if _, err := CompileToAsm("garbage"); err == nil {
		t.Error("CompileToAsm accepted garbage")
	}
}

func TestParserEdgeCases(t *testing.T) {
	// for with empty clauses
	m, syms := compileRun(t, `
		global int out;
		func main() {
			int i = 0;
			for (;;) {
				i = i + 1;
				if (i == 5) { break; }
			}
			for (i = 10; i > 8; ) { i = i - 1; }
			out = i;
		}
	`)
	if got := m.IntAt(syms["out"]); got != 8 {
		t.Errorf("out = %d, want 8", got)
	}
	bad := []string{
		`func main() { for (int i = 0 i < 3; ) { } }`, // missing ;
		`func main() { if 1 { } }`,                    // missing parens
		`func main() { int = 3; }`,                    // missing name
		`func main() { x[1 = 2; }`,                    // unclosed index
		`func main() { qsend(); }`,                    // qsend arity
		`global int a[0]; func main() { }`,            // zero-size array
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("compiled without error: %q", src)
		}
	}
}
