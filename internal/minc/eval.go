package minc

import (
	"fmt"
	"math"
)

// evalState is a direct AST evaluator used as the compiler's reference
// semantics: tests generate random programs, run the compiled code on the
// ISA-level functional model, evaluate the AST here, and require identical
// results. Only single-threaded programs are evaluable (fork/queue
// intrinsics are rejected).
type evalState struct {
	globals map[string]*global
	scalars map[string]float64 // raw value; type tracked separately
	arrays  map[string][]uint64
	locals  []map[string]evalVal
	steps   int
}

type evalVal struct {
	ty typ
	i  int64
	f  float64
}

func intVal(v int64) evalVal     { return evalVal{ty: typInt, i: v} }
func floatVal(v float64) evalVal { return evalVal{ty: typFloat, f: v} }

func (v evalVal) asFloat() float64 {
	if v.ty == typFloat {
		return v.f
	}
	return float64(v.i)
}

func (v evalVal) asInt() int64 {
	if v.ty == typFloat {
		return int64(v.f)
	}
	return v.i
}

// evalLimit bounds evaluation steps (runaway protection).
const evalLimit = 2_000_000

type breakSignal struct{}
type continueSignal struct{}

// evaluate runs a parsed file directly, returning the final global state:
// scalar globals as raw 64-bit words and arrays as word slices.
func evaluate(f *file) (map[string]uint64, map[string][]uint64, error) {
	ev := &evalState{
		globals: map[string]*global{},
		scalars: map[string]float64{},
		arrays:  map[string][]uint64{},
		locals:  []map[string]evalVal{{}},
	}
	for _, g := range f.globals {
		ev.globals[g.name] = g
		if g.size > 0 {
			ev.arrays[g.name] = make([]uint64, g.size)
		} else if g.hasInit {
			ev.scalars[g.name] = g.init
		}
	}
	err := ev.runStmts(f.body)
	if err != nil {
		return nil, nil, err
	}
	out := map[string]uint64{}
	for name, g := range ev.globals {
		if g.size > 0 {
			continue
		}
		v := ev.scalars[name]
		if g.ty == typFloat {
			out[name] = math.Float64bits(v)
		} else {
			out[name] = uint64(int64(v))
		}
	}
	return out, ev.arrays, nil
}

func (ev *evalState) step(line int) error {
	ev.steps++
	if ev.steps > evalLimit {
		return errAt(line, "evaluation step limit exceeded")
	}
	return nil
}

func (ev *evalState) runStmts(list []stmt) error {
	for _, s := range list {
		if err := ev.runStmt(s); err != nil {
			return err
		}
	}
	return nil
}

// control-flow signals travel as panics to keep the walker simple; they
// are recovered at loop boundaries.
func (ev *evalState) runStmt(s stmt) error {
	if err := ev.step(s.stmtLine()); err != nil {
		return err
	}
	switch s := s.(type) {
	case *declStmt:
		v, err := ev.eval(s.init)
		if err != nil {
			return err
		}
		ev.locals[len(ev.locals)-1][s.name] = coerce(v, s.ty)
		return nil
	case *assignStmt:
		v, err := ev.eval(s.value)
		if err != nil {
			return err
		}
		return ev.assign(s, v)
	case *ifStmt:
		c, err := ev.eval(s.cond)
		if err != nil {
			return err
		}
		ev.push()
		defer ev.pop()
		if c.asInt() != 0 {
			return ev.runStmts(s.then)
		}
		return ev.runStmts(s.els)
	case *whileStmt:
		for {
			c, err := ev.eval(s.cond)
			if err != nil {
				return err
			}
			if c.asInt() == 0 {
				return nil
			}
			stop, err := ev.runLoopBody(s.body)
			if err != nil || stop {
				return err
			}
		}
	case *forStmt:
		ev.push()
		defer ev.pop()
		if s.init != nil {
			if err := ev.runStmt(s.init); err != nil {
				return err
			}
		}
		for {
			if s.cond != nil {
				c, err := ev.eval(s.cond)
				if err != nil {
					return err
				}
				if c.asInt() == 0 {
					return nil
				}
			}
			stop, err := ev.runLoopBody(s.body)
			if err != nil || stop {
				return err
			}
			if s.post != nil {
				if err := ev.runStmt(s.post); err != nil {
					return err
				}
			}
		}
	case *breakStmt:
		panic(breakSignal{})
	case *continueStmt:
		panic(continueSignal{})
	case *callStmt:
		if s.name == "halt" {
			return nil // single-threaded: evaluation simply ends at body end
		}
		return errAt(s.line, "intrinsic %s is not evaluable (multithreaded)", s.name)
	}
	return errAt(s.stmtLine(), "unsupported statement in evaluator")
}

// runLoopBody executes a loop body, converting break/continue signals.
func (ev *evalState) runLoopBody(body []stmt) (stop bool, err error) {
	defer func() {
		switch r := recover(); r.(type) {
		case nil:
		case breakSignal:
			stop = true
		case continueSignal:
		default:
			panic(r)
		}
	}()
	ev.push()
	defer ev.pop()
	err = ev.runStmts(body)
	return
}

func (ev *evalState) push() { ev.locals = append(ev.locals, map[string]evalVal{}) }
func (ev *evalState) pop()  { ev.locals = ev.locals[:len(ev.locals)-1] }

func (ev *evalState) lookup(name string) (evalVal, bool) {
	for i := len(ev.locals) - 1; i >= 0; i-- {
		if v, ok := ev.locals[i][name]; ok {
			return v, true
		}
	}
	return evalVal{}, false
}

func (ev *evalState) setLocal(name string, v evalVal) bool {
	for i := len(ev.locals) - 1; i >= 0; i-- {
		if old, ok := ev.locals[i][name]; ok {
			ev.locals[i][name] = coerce(v, old.ty)
			return true
		}
	}
	return false
}

func coerce(v evalVal, ty typ) evalVal {
	if ty == typFloat {
		return floatVal(v.asFloat())
	}
	return intVal(v.asInt())
}

func (ev *evalState) assign(s *assignStmt, v evalVal) error {
	if s.index == nil {
		if ev.setLocal(s.name, v) {
			return nil
		}
		g, ok := ev.globals[s.name]
		if !ok || g.size > 0 {
			return errAt(s.line, "bad scalar assignment to %q", s.name)
		}
		if g.ty == typFloat {
			ev.scalars[s.name] = v.asFloat()
		} else {
			ev.scalars[s.name] = float64(v.asInt())
		}
		return nil
	}
	g, ok := ev.globals[s.name]
	if !ok || g.size == 0 {
		return errAt(s.line, "bad array assignment to %q", s.name)
	}
	idx, err := ev.eval(s.index)
	if err != nil {
		return err
	}
	i := idx.asInt()
	if i < 0 || i >= int64(g.size) {
		return errAt(s.line, "index %d out of range for %q[%d]", i, s.name, g.size)
	}
	if g.ty == typFloat {
		ev.arrays[s.name][i] = math.Float64bits(v.asFloat())
	} else {
		ev.arrays[s.name][i] = uint64(v.asInt())
	}
	return nil
}

func (ev *evalState) eval(e expr) (evalVal, error) {
	if err := ev.step(e.exprLine()); err != nil {
		return evalVal{}, err
	}
	switch e := e.(type) {
	case *intLit:
		return intVal(e.val), nil
	case *floatLit:
		return floatVal(e.val), nil
	case *varRef:
		if v, ok := ev.lookup(e.name); ok {
			return v, nil
		}
		g, ok := ev.globals[e.name]
		if !ok || g.size > 0 {
			return evalVal{}, errAt(e.line, "bad variable %q", e.name)
		}
		if g.ty == typFloat {
			return floatVal(ev.scalars[e.name]), nil
		}
		return intVal(int64(ev.scalars[e.name])), nil
	case *indexExpr:
		g, ok := ev.globals[e.name]
		if !ok || g.size == 0 {
			return evalVal{}, errAt(e.line, "bad array %q", e.name)
		}
		idx, err := ev.eval(e.index)
		if err != nil {
			return evalVal{}, err
		}
		i := idx.asInt()
		if i < 0 || i >= int64(g.size) {
			return evalVal{}, errAt(e.line, "index %d out of range for %q[%d]", i, e.name, g.size)
		}
		w := ev.arrays[e.name][i]
		if g.ty == typFloat {
			return floatVal(math.Float64frombits(w)), nil
		}
		return intVal(int64(w)), nil
	case *unExpr:
		v, err := ev.eval(e.x)
		if err != nil {
			return evalVal{}, err
		}
		switch e.op {
		case "-":
			if v.ty == typFloat {
				return floatVal(-v.f), nil
			}
			return intVal(-v.i), nil
		case "!":
			return intVal(b2i(v.asInt() == 0)), nil
		}
	case *binExpr:
		return ev.evalBin(e)
	case *callExpr:
		switch e.name {
		case "tid":
			return intVal(0), nil
		case "nthreads":
			return intVal(1), nil
		case "sqrt":
			v, err := ev.eval(e.args[0])
			if err != nil {
				return evalVal{}, err
			}
			return floatVal(math.Sqrt(v.asFloat())), nil
		case "abs":
			v, err := ev.eval(e.args[0])
			if err != nil {
				return evalVal{}, err
			}
			return floatVal(math.Abs(v.asFloat())), nil
		case "float":
			v, err := ev.eval(e.args[0])
			if err != nil {
				return evalVal{}, err
			}
			return floatVal(v.asFloat()), nil
		case "int":
			v, err := ev.eval(e.args[0])
			if err != nil {
				return evalVal{}, err
			}
			return intVal(v.asInt()), nil
		}
		return evalVal{}, errAt(e.line, "intrinsic %s is not evaluable", e.name)
	}
	return evalVal{}, errAt(e.exprLine(), "unsupported expression in evaluator")
}

func (ev *evalState) evalBin(e *binExpr) (evalVal, error) {
	l, err := ev.eval(e.l)
	if err != nil {
		return evalVal{}, err
	}
	r, err := ev.eval(e.r)
	if err != nil {
		return evalVal{}, err
	}
	if e.op == "&&" {
		return intVal(b2i(l.asInt() != 0 && r.asInt() != 0)), nil
	}
	if e.op == "||" {
		return intVal(b2i(l.asInt() != 0 || r.asInt() != 0)), nil
	}
	if l.ty == typFloat || r.ty == typFloat {
		a, b := l.asFloat(), r.asFloat()
		switch e.op {
		case "+":
			return floatVal(a + b), nil
		case "-":
			return floatVal(a - b), nil
		case "*":
			return floatVal(a * b), nil
		case "/":
			return floatVal(a / b), nil
		case "==":
			return intVal(b2i(a == b)), nil
		case "!=":
			return intVal(b2i(a != b)), nil
		case "<":
			return intVal(b2i(a < b)), nil
		case "<=":
			return intVal(b2i(a <= b)), nil
		case ">":
			return intVal(b2i(a > b)), nil
		case ">=":
			return intVal(b2i(a >= b)), nil
		}
		return evalVal{}, errAt(e.line, "operator %q not defined for float", e.op)
	}
	a, b := l.i, r.i
	switch e.op {
	case "+":
		return intVal(a + b), nil
	case "-":
		return intVal(a - b), nil
	case "*":
		return intVal(a * b), nil
	case "/":
		if b == 0 {
			return evalVal{}, fmt.Errorf("minc: line %d: division by zero", e.line)
		}
		return intVal(a / b), nil
	case "%":
		if b == 0 {
			return evalVal{}, fmt.Errorf("minc: line %d: remainder by zero", e.line)
		}
		return intVal(a % b), nil
	case "==":
		return intVal(b2i(a == b)), nil
	case "!=":
		return intVal(b2i(a != b)), nil
	case "<":
		return intVal(b2i(a < b)), nil
	case "<=":
		return intVal(b2i(a <= b)), nil
	case ">":
		return intVal(b2i(a > b)), nil
	case ">=":
		return intVal(b2i(a >= b)), nil
	}
	return evalVal{}, errAt(e.line, "unsupported operator %q", e.op)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
