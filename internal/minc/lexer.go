package minc

import (
	"fmt"
	"strings"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokPunct // operators and delimiters
)

// token is one lexed token.
type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.text)
}

// punct lists multi-character operators first so maximal munch works.
var puncts = []string{
	"&&", "||", "==", "!=", "<=", ">=",
	"+", "-", "*", "/", "%", "<", ">", "=", "!",
	"(", ")", "{", "}", "[", "]", ";", ",",
}

// lex tokenises MinC source. Comments run from // to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			j := i + 1
			for j < len(src) && (isIdentChar(src[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], line})
			i = j
		case c >= '0' && c <= '9':
			j := i
			isFloat := false
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				if src[j] == '.' || src[j] == 'e' || src[j] == 'E' {
					isFloat = true
				}
				j++
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind, src[i:j], line})
			i = j
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{tokPunct, p, line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("minc: line %d: unexpected character %q", line, c)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// isIdentStart must stay consistent with isIdentChar: a byte that starts
// an identifier but cannot continue one would make the scan loop emit an
// empty token without advancing. (Non-ASCII bytes land in the punct arm,
// which rejects them with a position.)
func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
