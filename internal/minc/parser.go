package minc

import (
	"fmt"
	"strconv"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func parse(toks []token) (*file, error) {
	p := &parser{toks: toks}
	f := &file{}
	sawMain := false
	for !p.at(tokEOF, "") {
		switch {
		case p.at(tokIdent, "global"):
			g, err := p.global()
			if err != nil {
				return nil, err
			}
			f.globals = append(f.globals, g)
		case p.at(tokIdent, "func"):
			if sawMain {
				return nil, p.errf("only one function (main) is supported")
			}
			body, err := p.mainFunc()
			if err != nil {
				return nil, err
			}
			f.body = body
			sawMain = true
		default:
			return nil, p.errf("expected 'global' or 'func', got %s", p.cur())
		}
	}
	if !sawMain {
		return nil, fmt.Errorf("minc: no func main")
	}
	return f, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) line() int  { return p.cur().line }
func (p *parser) advance()   { p.pos++ }

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(text string) bool {
	if p.cur().text == text && p.cur().kind != tokEOF {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, got %s", text, p.cur())
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("minc: line %d: %s", p.line(), fmt.Sprintf(format, args...))
}

// global := "global" type IDENT ("[" INT "]")? ("=" number)? ";"
func (p *parser) global() (*global, error) {
	line := p.line()
	p.advance() // global
	ty, err := p.typeName()
	if err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	g := &global{name: name, ty: ty, line: line}
	if p.accept("[") {
		if p.cur().kind != tokInt {
			return nil, p.errf("array size must be an integer literal")
		}
		n, err := strconv.Atoi(p.cur().text)
		if err != nil || n <= 0 {
			return nil, p.errf("bad array size %q", p.cur().text)
		}
		g.size = n
		p.advance()
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if p.accept("=") {
		if g.size > 0 {
			return nil, p.errf("array globals cannot have initialisers")
		}
		neg := p.accept("-")
		t := p.cur()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil || (t.kind != tokInt && t.kind != tokFloat) {
			return nil, p.errf("bad initialiser %s", t)
		}
		p.advance()
		if neg {
			v = -v
		}
		g.init, g.hasInit = v, true
	}
	return g, p.expect(";")
}

// mainFunc := "func" "main" "(" ")" block
func (p *parser) mainFunc() ([]stmt, error) {
	p.advance() // func
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if name != "main" {
		return nil, p.errf("only func main is supported, got %q", name)
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return p.block()
}

func (p *parser) typeName() (typ, error) {
	switch {
	case p.accept("int"):
		return typInt, nil
	case p.accept("float"):
		return typFloat, nil
	}
	return 0, p.errf("expected a type (int or float), got %s", p.cur())
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected an identifier, got %s", t)
	}
	p.advance()
	return t.text, nil
}

// block := "{" stmt* "}"
func (p *parser) block() ([]stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []stmt
	for !p.accept("}") {
		if p.at(tokEOF, "") {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// intrinsic statements callable as bare statements; qsend/qsendf take one
// argument, the others none.
var stmtIntrinsics = map[string]int{
	"fork": 0, "chgpri": 0, "kill": 0, "halt": 0,
	"qmap": 0, "qmapf": 0, "qunmap": 0,
	"qsend": 1, "qsendf": 1,
}

func (p *parser) stmt() (stmt, error) {
	line := p.line()
	switch {
	case p.at(tokIdent, "int") || p.at(tokIdent, "float"):
		s, err := p.declNoSemi()
		if err != nil {
			return nil, err
		}
		return s, p.expect(";")
	case p.at(tokIdent, "if"):
		return p.ifStmt()
	case p.at(tokIdent, "while"):
		p.advance()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &whileStmt{cond: cond, body: body, line: line}, nil
	case p.at(tokIdent, "for"):
		return p.forStmt()
	case p.at(tokIdent, "break"):
		p.advance()
		return &breakStmt{line: line}, p.expect(";")
	case p.at(tokIdent, "continue"):
		p.advance()
		return &continueStmt{line: line}, p.expect(";")
	case p.cur().kind == tokIdent && isStmtIntrinsic(p.cur().text):
		name := p.cur().text
		arity := stmtIntrinsics[name]
		p.advance()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		st := &callStmt{name: name, line: line}
		if arity == 1 {
			arg, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.arg = arg
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return st, p.expect(";")
	case p.cur().kind == tokIdent:
		s, err := p.assignNoSemi()
		if err != nil {
			return nil, err
		}
		return s, p.expect(";")
	}
	return nil, p.errf("expected a statement, got %s", p.cur())
}

// declNoSemi := type IDENT "=" expr
func (p *parser) declNoSemi() (stmt, error) {
	line := p.line()
	ty, err := p.typeName()
	if err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	init, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &declStmt{name: name, ty: ty, init: init, line: line}, nil
}

// assignNoSemi := IDENT ("[" expr "]")? "=" expr
func (p *parser) assignNoSemi() (stmt, error) {
	line := p.line()
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	var index expr
	if p.accept("[") {
		if index, err = p.expr(); err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	value, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &assignStmt{name: name, index: index, value: value, line: line}, nil
}

func (p *parser) ifStmt() (stmt, error) {
	line := p.line()
	p.advance() // if
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	var els []stmt
	if p.accept("else") {
		if p.at(tokIdent, "if") {
			s, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			els = []stmt{s}
		} else if els, err = p.block(); err != nil {
			return nil, err
		}
	}
	return &ifStmt{cond: cond, then: then, els: els, line: line}, nil
}

func (p *parser) forStmt() (stmt, error) {
	line := p.line()
	p.advance() // for
	if err := p.expect("("); err != nil {
		return nil, err
	}
	st := &forStmt{line: line}
	var err error
	if !p.accept(";") {
		if p.at(tokIdent, "int") || p.at(tokIdent, "float") {
			st.init, err = p.declNoSemi()
		} else {
			st.init, err = p.assignNoSemi()
		}
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if !p.accept(";") {
		if st.cond, err = p.expr(); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if !p.at(tokPunct, ")") {
		if st.post, err = p.assignNoSemi(); err != nil {
			return nil, err
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if st.body, err = p.block(); err != nil {
		return nil, err
	}
	return st, nil
}

// Expression grammar, lowest precedence first:
//   or   := and ("||" and)*
//   and  := cmp ("&&" cmp)*
//   cmp  := add (("=="|"!="|"<"|"<="|">"|">=") add)?
//   add  := mul (("+"|"-") mul)*
//   mul  := unary (("*"|"/"|"%") unary)*
//   unary := ("-"|"!") unary | primary
//   primary := literal | call | IDENT ("[" expr "]")? | "(" expr ")"

func (p *parser) expr() (expr, error) { return p.orExpr() }

func (p *parser) orExpr() (expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "||") {
		line := p.line()
		p.advance()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: "||", l: l, r: r, line: line}
	}
	return l, nil
}

func (p *parser) andExpr() (expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "&&") {
		line := p.line()
		p.advance()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: "&&", l: l, r: r, line: line}
	}
	return l, nil
}

var cmpOps = map[string]bool{"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) cmpExpr() (expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokPunct && cmpOps[p.cur().text] {
		op := p.cur().text
		line := p.line()
		p.advance()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &binExpr{op: op, l: l, r: r, line: line}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "+") || p.at(tokPunct, "-") {
		op := p.cur().text
		line := p.line()
		p.advance()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: op, l: l, r: r, line: line}
	}
	return l, nil
}

func (p *parser) mulExpr() (expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "*") || p.at(tokPunct, "/") || p.at(tokPunct, "%") {
		op := p.cur().text
		line := p.line()
		p.advance()
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: op, l: l, r: r, line: line}
	}
	return l, nil
}

func (p *parser) unaryExpr() (expr, error) {
	if p.at(tokPunct, "-") || p.at(tokPunct, "!") {
		op := p.cur().text
		line := p.line()
		p.advance()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &unExpr{op: op, x: x, line: line}, nil
	}
	return p.primary()
}

func isStmtIntrinsic(name string) bool {
	_, ok := stmtIntrinsics[name]
	return ok
}

// intrinsic expressions and their arities
var exprIntrinsics = map[string]int{
	"tid": 0, "nthreads": 0, "sqrt": 1, "abs": 1, "float": 1, "int": 1,
	"qrecv": 0, "qrecvf": 0,
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	line := t.line
	switch {
	case t.kind == tokInt:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer literal %q", t.text)
		}
		p.advance()
		return &intLit{val: v, line: line}, nil
	case t.kind == tokFloat:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad float literal %q", t.text)
		}
		p.advance()
		return &floatLit{val: v, line: line}, nil
	case t.kind == tokPunct && t.text == "(":
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	case t.kind == tokIdent:
		name := t.text
		p.advance()
		if arity, ok := exprIntrinsics[name]; ok && p.at(tokPunct, "(") {
			p.advance()
			var args []expr
			for !p.accept(")") {
				if len(args) > 0 {
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			if len(args) != arity {
				return nil, p.errf("%s takes %d argument(s), got %d", name, arity, len(args))
			}
			return &callExpr{name: name, args: args, line: line}, nil
		}
		if p.accept("[") {
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			return &indexExpr{name: name, index: idx, line: line}, nil
		}
		return &varRef{name: name, line: line}, nil
	}
	return nil, p.errf("expected an expression, got %s", t)
}
