package minc

import (
	"fmt"
	"strings"
)

// Register conventions of the generated code:
//
//	r1, r2        address scratch
//	r4  .. r13    integer locals (at most 10)
//	r14 .. r25    integer expression temporaries
//	f4  .. f13    float locals (at most 10)
//	f14 .. f25    float expression temporaries
//
// Globals live in the data section starting at word 8; __nthreads is the
// first global and is written by SetThreads.
const (
	intLocalBase = 4
	fpLocalBase  = 4
	maxLocals    = 10
	intTempBase  = 14
	fpTempBase   = 14
	maxTemps     = 12
	dataBase     = 8
)

type local struct {
	ty  typ
	reg int
}

type loopLabels struct {
	brk, cont string
}

type gen struct {
	b       strings.Builder
	globals map[string]*global
	scopes  []map[string]*local // innermost last
	nInt    int
	nFP     int
	intSP   int // temp stack pointers
	fpSP    int
	nLabel  int
	loops   []loopLabels
	fconsts map[string]float64
	forder  []string // float-constant emission order
}

// generate emits the assembly for a parsed file. The body is generated
// first (collecting interned float constants), then the data section is
// prepended; the assembler's two passes resolve the forward references.
func generate(f *file) (string, error) {
	g := &gen{
		globals: map[string]*global{},
		scopes:  []map[string]*local{{}},
		fconsts: map[string]float64{},
	}
	for _, gl := range f.globals {
		if _, dup := g.globals[gl.name]; dup || gl.name == "__nthreads" {
			return "", fmt.Errorf("minc: line %d: duplicate global %q", gl.line, gl.name)
		}
		g.globals[gl.name] = gl
	}

	for _, s := range f.body {
		if err := g.stmt(s); err != nil {
			return "", err
		}
	}
	g.emit("\thalt")
	body := g.b.String()

	var out strings.Builder
	out.WriteString("\t.data\n")
	fmt.Fprintf(&out, "\t.org %d\n", dataBase)
	out.WriteString("__nthreads: .word 1\n")
	for _, gl := range f.globals {
		switch {
		case gl.size > 0:
			fmt.Fprintf(&out, "%s: .space %d\n", gl.name, gl.size)
		case gl.ty == typFloat:
			fmt.Fprintf(&out, "%s: .float %g\n", gl.name, gl.init)
		default:
			fmt.Fprintf(&out, "%s: .word %d\n", gl.name, int64(gl.init))
		}
	}
	for _, name := range g.forder {
		fmt.Fprintf(&out, "%s: .float %g\n", name, g.fconsts[name])
	}
	out.WriteString("\t.text\n")
	out.WriteString(body)
	return out.String(), nil
}

func (g *gen) emit(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *gen) label() string {
	g.nLabel++
	return fmt.Sprintf("_L%d", g.nLabel)
}

func errAt(line int, format string, args ...any) error {
	return fmt.Errorf("minc: line %d: %s", line, fmt.Sprintf(format, args...))
}

// Temp register allocation (stack discipline).
func (g *gen) allocTemp(t typ, line int) (string, error) {
	if t == typFloat {
		if g.fpSP >= maxTemps {
			return "", errAt(line, "float expression too complex (out of temporaries)")
		}
		g.fpSP++
		return fmt.Sprintf("f%d", fpTempBase+g.fpSP-1), nil
	}
	if g.intSP >= maxTemps {
		return "", errAt(line, "integer expression too complex (out of temporaries)")
	}
	g.intSP++
	return fmt.Sprintf("r%d", intTempBase+g.intSP-1), nil
}

func (g *gen) freeTemp(reg string) {
	switch reg[0] {
	case 'f':
		g.fpSP--
	case 'r':
		g.intSP--
	}
}

// Scope management: each block gets a scope; leaving it releases the
// register slots its locals occupied.
func (g *gen) pushScope() { g.scopes = append(g.scopes, map[string]*local{}) }

func (g *gen) popScope() {
	top := g.scopes[len(g.scopes)-1]
	for _, l := range top {
		if l.ty == typFloat {
			g.nFP--
		} else {
			g.nInt--
		}
	}
	g.scopes = g.scopes[:len(g.scopes)-1]
}

// lookupLocal resolves a name through the scope stack, innermost first.
func (g *gen) lookupLocal(name string) (*local, bool) {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if l, ok := g.scopes[i][name]; ok {
			return l, true
		}
	}
	return nil, false
}

// value is an evaluated expression: a register holding it and its type.
type value struct {
	reg string
	ty  typ
}

// Statements.

func (g *gen) stmts(list []stmt) error {
	for _, s := range list {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) stmt(s stmt) error {
	switch s := s.(type) {
	case *declStmt:
		return g.decl(s)
	case *assignStmt:
		return g.assign(s)
	case *ifStmt:
		return g.ifStmt(s)
	case *whileStmt:
		return g.whileStmt(s)
	case *forStmt:
		return g.forStmt(s)
	case *breakStmt:
		if len(g.loops) == 0 {
			return errAt(s.line, "break outside a loop")
		}
		g.emit("\tj %s", g.loops[len(g.loops)-1].brk)
		return nil
	case *continueStmt:
		if len(g.loops) == 0 {
			return errAt(s.line, "continue outside a loop")
		}
		g.emit("\tj %s", g.loops[len(g.loops)-1].cont)
		return nil
	case *callStmt:
		switch s.name {
		case "fork":
			g.emit("\tffork")
		case "chgpri":
			g.emit("\tchgpri")
		case "kill":
			g.emit("\tkill")
		case "halt":
			g.emit("\thalt")
		case "qmap":
			// Integer queue registers: r26 receives, r27 sends (§2.3.1).
			g.emit("\tqen r26, r27")
		case "qmapf":
			g.emit("\tqenf f26, f27")
		case "qunmap":
			g.emit("\tqdis")
		case "qsend", "qsendf":
			want := typInt
			if s.name == "qsendf" {
				want = typFloat
			}
			v, err := g.exprAs(s.arg, want)
			if err != nil {
				return err
			}
			if want == typFloat {
				g.emit("\tfmov f27, %s", v.reg)
			} else {
				g.emit("\tmov r27, %s", v.reg)
			}
			g.freeTemp(v.reg)
		}
		return nil
	}
	return errAt(s.stmtLine(), "unsupported statement")
}

func (g *gen) decl(s *declStmt) error {
	cur := g.scopes[len(g.scopes)-1]
	if _, dup := cur[s.name]; dup {
		return errAt(s.line, "duplicate local %q in this scope", s.name)
	}
	if _, isGlobal := g.globals[s.name]; isGlobal {
		return errAt(s.line, "local %q shadows a global", s.name)
	}
	var reg int
	if s.ty == typFloat {
		if g.nFP >= maxLocals {
			return errAt(s.line, "too many float locals (max %d)", maxLocals)
		}
		reg = fpLocalBase + g.nFP
		g.nFP++
	} else {
		if g.nInt >= maxLocals {
			return errAt(s.line, "too many int locals (max %d)", maxLocals)
		}
		reg = intLocalBase + g.nInt
		g.nInt++
	}
	cur[s.name] = &local{ty: s.ty, reg: reg}
	v, err := g.exprAs(s.init, s.ty)
	if err != nil {
		return err
	}
	g.moveInto(g.localReg(s.name), s.ty, v)
	g.freeTemp(v.reg)
	return nil
}

func (g *gen) localReg(name string) string {
	l, _ := g.lookupLocal(name)
	if l.ty == typFloat {
		return fmt.Sprintf("f%d", l.reg)
	}
	return fmt.Sprintf("r%d", l.reg)
}

// moveInto copies a value into a destination register of the given type.
func (g *gen) moveInto(dst string, ty typ, v value) {
	if ty == typFloat {
		g.emit("\tfmov %s, %s", dst, v.reg)
	} else {
		g.emit("\tmov %s, %s", dst, v.reg)
	}
}

func (g *gen) assign(s *assignStmt) error {
	// Local scalar.
	if l, ok := g.lookupLocal(s.name); ok {
		if s.index != nil {
			return errAt(s.line, "%q is a scalar local, not an array", s.name)
		}
		v, err := g.exprAs(s.value, l.ty)
		if err != nil {
			return err
		}
		g.moveInto(g.localReg(s.name), l.ty, v)
		g.freeTemp(v.reg)
		return nil
	}
	gl, ok := g.globals[s.name]
	if !ok {
		return errAt(s.line, "undefined variable %q", s.name)
	}
	if (gl.size > 0) != (s.index != nil) {
		if gl.size > 0 {
			return errAt(s.line, "array %q needs an index", s.name)
		}
		return errAt(s.line, "%q is a scalar, not an array", s.name)
	}
	v, err := g.exprAs(s.value, gl.ty)
	if err != nil {
		return err
	}
	store := "sw"
	if gl.ty == typFloat {
		store = "fsw"
	}
	if s.index == nil {
		g.emit("\tla r1, %s", s.name)
		g.emit("\t%s %s, 0(r1)", store, v.reg)
	} else {
		idx, err := g.exprAs(s.index, typInt)
		if err != nil {
			return err
		}
		g.emit("\tla r1, %s", s.name)
		g.emit("\tadd r1, r1, %s", idx.reg)
		g.emit("\t%s %s, 0(r1)", store, v.reg)
		g.freeTemp(idx.reg)
	}
	g.freeTemp(v.reg)
	return nil
}

func (g *gen) ifStmt(s *ifStmt) error {
	cond, err := g.exprAs(s.cond, typInt)
	if err != nil {
		return err
	}
	lEnd := g.label()
	lElse := lEnd
	if len(s.els) > 0 {
		lElse = g.label()
	}
	g.emit("\tbeqz %s, %s", cond.reg, lElse)
	g.freeTemp(cond.reg)
	g.pushScope()
	err = g.stmts(s.then)
	g.popScope()
	if err != nil {
		return err
	}
	if len(s.els) > 0 {
		g.emit("\tj %s", lEnd)
		g.emit("%s:", lElse)
		g.pushScope()
		err = g.stmts(s.els)
		g.popScope()
		if err != nil {
			return err
		}
	}
	g.emit("%s:", lEnd)
	return nil
}

func (g *gen) whileStmt(s *whileStmt) error {
	lCond, lEnd := g.label(), g.label()
	g.emit("%s:", lCond)
	cond, err := g.exprAs(s.cond, typInt)
	if err != nil {
		return err
	}
	g.emit("\tbeqz %s, %s", cond.reg, lEnd)
	g.freeTemp(cond.reg)
	g.loops = append(g.loops, loopLabels{brk: lEnd, cont: lCond})
	g.pushScope()
	err = g.stmts(s.body)
	g.popScope()
	g.loops = g.loops[:len(g.loops)-1]
	if err != nil {
		return err
	}
	g.emit("\tj %s", lCond)
	g.emit("%s:", lEnd)
	return nil
}

func (g *gen) forStmt(s *forStmt) error {
	// The init declaration lives in the loop's own scope.
	g.pushScope()
	defer g.popScope()
	if s.init != nil {
		if err := g.stmt(s.init); err != nil {
			return err
		}
	}
	lCond, lPost, lEnd := g.label(), g.label(), g.label()
	g.emit("%s:", lCond)
	if s.cond != nil {
		cond, err := g.exprAs(s.cond, typInt)
		if err != nil {
			return err
		}
		g.emit("\tbeqz %s, %s", cond.reg, lEnd)
		g.freeTemp(cond.reg)
	}
	g.loops = append(g.loops, loopLabels{brk: lEnd, cont: lPost})
	g.pushScope()
	err := g.stmts(s.body)
	g.popScope()
	g.loops = g.loops[:len(g.loops)-1]
	if err != nil {
		return err
	}
	g.emit("%s:", lPost)
	if s.post != nil {
		if err := g.stmt(s.post); err != nil {
			return err
		}
	}
	g.emit("\tj %s", lCond)
	g.emit("%s:", lEnd)
	return nil
}

// Expressions.

// exprAs evaluates e and converts the result to the wanted type.
func (g *gen) exprAs(e expr, want typ) (value, error) {
	v, err := g.expr(e)
	if err != nil {
		return value{}, err
	}
	return g.convert(v, want, e.exprLine())
}

// convert coerces v to the wanted type, re-homing it into a fresh temp of
// that class when the class changes.
func (g *gen) convert(v value, want typ, line int) (value, error) {
	if v.ty == want {
		return v, nil
	}
	dst, err := g.allocTemp(want, line)
	if err != nil {
		return value{}, err
	}
	if want == typFloat {
		g.emit("\titof %s, %s", dst, v.reg)
	} else {
		g.emit("\tftoi %s, %s", dst, v.reg)
	}
	g.freeTemp(v.reg)
	// The freed temp and the new one are in different register classes, so
	// the stack discipline stays consistent per class.
	return value{reg: dst, ty: want}, nil
}

func (g *gen) expr(e expr) (value, error) {
	switch e := e.(type) {
	case *intLit:
		reg, err := g.allocTemp(typInt, e.line)
		if err != nil {
			return value{}, err
		}
		g.emit("\tli %s, %d", reg, e.val)
		return value{reg, typInt}, nil

	case *floatLit:
		// Materialise float constants through the data section.
		name := g.floatConst(e.val)
		reg, err := g.allocTemp(typFloat, e.line)
		if err != nil {
			return value{}, err
		}
		g.emit("\tla r1, %s", name)
		g.emit("\tflw %s, 0(r1)", reg)
		return value{reg, typFloat}, nil

	case *varRef:
		if l, ok := g.lookupLocal(e.name); ok {
			reg, err := g.allocTemp(l.ty, e.line)
			if err != nil {
				return value{}, err
			}
			g.moveInto(reg, l.ty, value{g.localReg(e.name), l.ty})
			return value{reg, l.ty}, nil
		}
		gl, ok := g.globals[e.name]
		if !ok {
			return value{}, errAt(e.line, "undefined variable %q", e.name)
		}
		if gl.size > 0 {
			return value{}, errAt(e.line, "array %q needs an index", e.name)
		}
		reg, err := g.allocTemp(gl.ty, e.line)
		if err != nil {
			return value{}, err
		}
		load := "lw"
		if gl.ty == typFloat {
			load = "flw"
		}
		g.emit("\tla r1, %s", e.name)
		g.emit("\t%s %s, 0(r1)", load, reg)
		return value{reg, gl.ty}, nil

	case *indexExpr:
		gl, ok := g.globals[e.name]
		if !ok {
			return value{}, errAt(e.line, "undefined array %q", e.name)
		}
		if gl.size == 0 {
			return value{}, errAt(e.line, "%q is a scalar, not an array", e.name)
		}
		idx, err := g.exprAs(e.index, typInt)
		if err != nil {
			return value{}, err
		}
		reg, err := g.allocTemp(gl.ty, e.line)
		if err != nil {
			return value{}, err
		}
		load := "lw"
		if gl.ty == typFloat {
			load = "flw"
		}
		g.emit("\tla r1, %s", e.name)
		g.emit("\tadd r1, r1, %s", idx.reg)
		g.emit("\t%s %s, 0(r1)", load, reg)
		g.freeTemp(reg) // reorder frees so stack discipline holds
		g.freeTemp(idx.reg)
		reg2, _ := g.allocTemp(gl.ty, e.line)
		if reg2 != reg {
			g.moveInto(reg2, gl.ty, value{reg, gl.ty})
		}
		return value{reg2, gl.ty}, nil

	case *unExpr:
		return g.unary(e)

	case *binExpr:
		return g.binary(e)

	case *callExpr:
		return g.call(e)
	}
	return value{}, errAt(e.exprLine(), "unsupported expression")
}

func (g *gen) unary(e *unExpr) (value, error) {
	v, err := g.expr(e.x)
	if err != nil {
		return value{}, err
	}
	switch e.op {
	case "-":
		if v.ty == typFloat {
			g.emit("\tfneg %s, %s", v.reg, v.reg)
		} else {
			g.emit("\tneg %s, %s", v.reg, v.reg)
		}
		return v, nil
	case "!":
		if v.ty != typInt {
			return value{}, errAt(e.line, "! needs an integer operand")
		}
		g.emit("\tseq %s, %s, r0", v.reg, v.reg)
		return v, nil
	}
	return value{}, errAt(e.line, "unsupported unary operator %q", e.op)
}

func (g *gen) binary(e *binExpr) (value, error) {
	l, err := g.expr(e.l)
	if err != nil {
		return value{}, err
	}
	r, err := g.expr(e.r)
	if err != nil {
		return value{}, err
	}

	// Logical operators work on integer truth values.
	if e.op == "&&" || e.op == "||" {
		if l.ty != typInt || r.ty != typInt {
			return value{}, errAt(e.line, "%s needs integer operands", e.op)
		}
		// Normalise to 0/1, then combine (no short-circuit: operands are
		// side-effect free by construction).
		g.emit("\tsne %s, %s, r0", l.reg, l.reg)
		g.emit("\tsne %s, %s, r0", r.reg, r.reg)
		if e.op == "&&" {
			g.emit("\tand %s, %s, %s", l.reg, l.reg, r.reg)
		} else {
			g.emit("\tor %s, %s, %s", l.reg, l.reg, r.reg)
		}
		g.freeTemp(r.reg)
		return l, nil
	}

	// Unify numeric types: float wins.
	ty := typInt
	if l.ty == typFloat || r.ty == typFloat {
		ty = typFloat
		if l, err = g.convert(l, typFloat, e.line); err != nil {
			return value{}, err
		}
		if r, err = g.convert(r, typFloat, e.line); err != nil {
			return value{}, err
		}
	}

	if cmpOps[e.op] {
		return g.compare(e, l, r, ty)
	}

	if ty == typFloat {
		op := map[string]string{"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}[e.op]
		if op == "" {
			return value{}, errAt(e.line, "operator %q not defined for float", e.op)
		}
		g.emit("\t%s %s, %s, %s", op, l.reg, l.reg, r.reg)
	} else {
		op := map[string]string{"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem"}[e.op]
		if op == "" {
			return value{}, errAt(e.line, "unsupported operator %q", e.op)
		}
		g.emit("\t%s %s, %s, %s", op, l.reg, l.reg, r.reg)
	}
	g.freeTemp(r.reg)
	return l, nil
}

// compare emits a comparison producing an integer 0/1.
func (g *gen) compare(e *binExpr, l, r value, ty typ) (value, error) {
	if ty == typInt {
		switch e.op {
		case "==":
			g.emit("\tseq %s, %s, %s", l.reg, l.reg, r.reg)
		case "!=":
			g.emit("\tsne %s, %s, %s", l.reg, l.reg, r.reg)
		case "<":
			g.emit("\tslt %s, %s, %s", l.reg, l.reg, r.reg)
		case ">":
			g.emit("\tslt %s, %s, %s", l.reg, r.reg, l.reg)
		case ">=":
			g.emit("\tsge %s, %s, %s", l.reg, l.reg, r.reg)
		case "<=":
			g.emit("\tsge %s, %s, %s", l.reg, r.reg, l.reg)
		}
		g.freeTemp(r.reg)
		return l, nil
	}
	out, err := g.allocTemp(typInt, e.line)
	if err != nil {
		return value{}, err
	}
	switch e.op {
	case "==":
		g.emit("\tfeq %s, %s, %s", out, l.reg, r.reg)
	case "!=":
		g.emit("\tfeq %s, %s, %s", out, l.reg, r.reg)
		g.emit("\txori %s, %s, 1", out, out)
	case "<":
		g.emit("\tflt %s, %s, %s", out, l.reg, r.reg)
	case ">":
		g.emit("\tflt %s, %s, %s", out, r.reg, l.reg)
	case "<=":
		g.emit("\tfle %s, %s, %s", out, l.reg, r.reg)
	case ">=":
		g.emit("\tfle %s, %s, %s", out, r.reg, l.reg)
	}
	// Free the float operands and re-home the int result so the temp
	// stacks stay balanced (out was allocated above the operands).
	g.freeTemp(out)
	g.freeTemp(r.reg)
	g.freeTemp(l.reg)
	res, _ := g.allocTemp(typInt, e.line)
	if res != out {
		g.emit("\tmov %s, %s", res, out)
	}
	return value{res, typInt}, nil
}

func (g *gen) call(e *callExpr) (value, error) {
	switch e.name {
	case "tid":
		reg, err := g.allocTemp(typInt, e.line)
		if err != nil {
			return value{}, err
		}
		g.emit("\ttid %s", reg)
		return value{reg, typInt}, nil
	case "nthreads":
		reg, err := g.allocTemp(typInt, e.line)
		if err != nil {
			return value{}, err
		}
		g.emit("\tlw %s, __nthreads", reg)
		return value{reg, typInt}, nil
	case "sqrt":
		v, err := g.exprAs(e.args[0], typFloat)
		if err != nil {
			return value{}, err
		}
		g.emit("\tfsqrt %s, %s", v.reg, v.reg)
		return v, nil
	case "abs":
		v, err := g.exprAs(e.args[0], typFloat)
		if err != nil {
			return value{}, err
		}
		g.emit("\tfabs %s, %s", v.reg, v.reg)
		return v, nil
	case "float":
		return g.exprAs(e.args[0], typFloat)
	case "int":
		return g.exprAs(e.args[0], typInt)
	case "qrecv":
		reg, err := g.allocTemp(typInt, e.line)
		if err != nil {
			return value{}, err
		}
		g.emit("\tmov %s, r26", reg)
		return value{reg, typInt}, nil
	case "qrecvf":
		reg, err := g.allocTemp(typFloat, e.line)
		if err != nil {
			return value{}, err
		}
		g.emit("\tfmov %s, f26", reg)
		return value{reg, typFloat}, nil
	}
	return value{}, errAt(e.line, "unknown function %q", e.name)
}

// floatConst interns a float literal in the data section.
func (g *gen) floatConst(v float64) string {
	for _, n := range g.forder {
		if g.fconsts[n] == v {
			return n
		}
	}
	name := fmt.Sprintf("__fc%d", len(g.forder))
	g.fconsts[name] = v
	g.forder = append(g.forder, name)
	return name
}
