package hostobs

import (
	"sync"
	"time"

	"hirata/internal/sweep"
)

// CellSpan is one completed sweep cell on a worker's timeline.
type CellSpan struct {
	Worker  int    `json:"worker"`
	Cell    int    `json:"cell"`
	Pending int    `json:"pending"` // cells still unfinished when this one completed
	StartNs uint64 `json:"start_ns"`
	DurNs   uint64 `json:"dur_ns"`
	Failed  bool   `json:"failed,omitempty"`
}

// SweepRecorder implements sweep.Telemetry: it records per-worker cell
// timelines and the shrinking pending-cell count across every sweep routed
// through hirata.SetSweepTelemetry, bounded drop-oldest like the obs event
// ring. One recorder may span several sweeps (a whole hirata-bench run).
type SweepRecorder struct {
	mu        sync.Mutex
	epoch     time.Time
	cells     []CellSpan // circular once full
	next      int
	total     uint64
	busyNanos uint64
	workers   int // highest worker id seen + 1
}

var _ sweep.Telemetry = (*SweepRecorder)(nil)

// sweepCellCap bounds retained cell spans (a full -explore grid is 1152
// cells plus re-simulations; 8192 keeps every realistic run intact).
const sweepCellCap = 8192

// NewSweepRecorder builds an empty recorder anchored at the current time.
func NewSweepRecorder() *SweepRecorder {
	return &SweepRecorder{epoch: time.Now(), cells: make([]CellSpan, 0, sweepCellCap)}
}

// CellDone records one finished cell.
func (r *SweepRecorder) CellDone(worker, cell, pending int, start, end time.Time, err error) {
	span := CellSpan{
		Worker:  worker,
		Cell:    cell,
		Pending: pending,
		DurNs:   uint64(end.Sub(start)),
		Failed:  err != nil,
	}
	if start.After(r.epoch) {
		span.StartNs = uint64(start.Sub(r.epoch))
	}
	r.mu.Lock()
	r.total++
	r.busyNanos += span.DurNs
	if worker+1 > r.workers {
		r.workers = worker + 1
	}
	if len(r.cells) < cap(r.cells) {
		r.cells = append(r.cells, span)
	} else if cap(r.cells) > 0 {
		r.cells[r.next] = span
		r.next = (r.next + 1) % cap(r.cells)
	}
	r.mu.Unlock()
}

// Cells returns the retained spans in completion order plus the totals:
// cells completed, worker count, and summed busy nanoseconds.
func (r *SweepRecorder) Cells() (spans []CellSpan, total uint64, workers int, busyNanos uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	spans = make([]CellSpan, 0, len(r.cells))
	if len(r.cells) == cap(r.cells) && cap(r.cells) > 0 {
		spans = append(spans, r.cells[r.next:]...)
		spans = append(spans, r.cells[:r.next]...)
	} else {
		spans = append(spans, r.cells...)
	}
	return spans, r.total, r.workers, r.busyNanos
}
