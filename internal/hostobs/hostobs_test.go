package hostobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"testing"
	"time"

	"hirata/internal/asm"
	"hirata/internal/buildinfo"
	"hirata/internal/core"
	"hirata/internal/sweep"
)

func TestMain(m *testing.M) {
	// Pin the build identity: the /hostmetrics golden embeds
	// hirata_build_info (see internal/obs/testmain_test.go).
	buildinfo.SetForTest(&buildinfo.Info{
		Revision:  "0000000000000000",
		Dirty:     false,
		GoVersion: "go0.0-test",
	})
	os.Exit(m.Run())
}

// loopSrc keeps the pipeline busy for a few thousand cycles (same shape as
// internal/core's alloc test workload).
const loopSrc = `
	li   r1, 800
	li   r2, 1
loop:	mul  r2, r2, r1
	addi r1, r1, -1
	bnez r1, loop
	halt
`

func runProfiled(t *testing.T, opt Options) (*Profiler, core.Result) {
	t.Helper()
	return runProfiledCfg(t, opt, core.Config{ThreadSlots: 2, StandbyStations: true})
}

func runProfiledCfg(t *testing.T, opt Options, cfg core.Config) (*Profiler, core.Result) {
	t.Helper()
	prog := asm.MustAssemble(loopSrc)
	m, err := prog.NewMemory(64)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(cfg, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	prof := New(opt)
	p.SetHostProbe(prof)
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	return prof, res
}

func TestProfilerObservesRun(t *testing.T) {
	prof, res := runProfiled(t, Options{SampleEvery: 1})
	pp := prof.Profile()
	if pp.Steps == 0 || pp.SampledSteps != pp.Steps {
		t.Fatalf("SampleEvery=1 must sample every step: sampled %d of %d", pp.SampledSteps, pp.Steps)
	}
	if pp.RunCycles != res.Cycles {
		t.Errorf("RunEnd cycles %d != Result.Cycles %d", pp.RunCycles, res.Cycles)
	}
	if pp.SampledNanos == 0 {
		t.Error("no phase time recorded")
	}
	// Every stepCycle runs all eight in-step phases; their ns must sum to
	// the total minus the skip machinery.
	var inStep uint64
	for ph := core.HostPhase(0); ph < core.HostPhaseSkip; ph++ {
		inStep += pp.Phases[ph].Nanos
	}
	if inStep == 0 {
		t.Error("in-step phases recorded no time")
	}
	if s := pp.Format(); len(s) == 0 || !bytes.Contains([]byte(s), []byte("issue-select")) {
		t.Errorf("Format missing phase rows:\n%s", s)
	}
}

func TestOpportunityReportTwoCores(t *testing.T) {
	// Legacy scan core: the full per-cycle scans waste a substantial
	// fraction of their visits on this single-thread countdown.
	legacyProf, _ := runProfiledCfg(t, Options{SampleEvery: 1},
		core.Config{ThreadSlots: 2, StandbyStations: true, DisableEventCore: true})
	legacy := legacyProf.Opportunity()
	if legacy.SampledSteps == 0 || legacy.TotalScans == 0 {
		t.Fatalf("empty legacy report: %+v", legacy)
	}
	if legacy.WastedFrac <= 0 || legacy.WastedFrac >= 1 {
		t.Errorf("legacy wasted fraction %v outside (0,1): a scanning core must waste some visits and use others", legacy.WastedFrac)
	}

	// Event core: the dirty sets admit far fewer visits, so the hit rate
	// must beat the legacy core's on the same workload.
	eventProf, _ := runProfiled(t, Options{SampleEvery: 1})
	event := eventProf.Opportunity()
	if event.SampledSteps == 0 || event.TotalScans == 0 {
		t.Fatalf("empty event report: %+v", event)
	}
	if event.HitRate <= legacy.HitRate {
		t.Errorf("event-core hit rate %.3f not above legacy %.3f", event.HitRate, legacy.HitRate)
	}
	if event.TotalScans >= legacy.TotalScans {
		t.Errorf("event core made %d visits, legacy %d: dirty sets harvested nothing", event.TotalScans, legacy.TotalScans)
	}
	for _, rep := range []OpportunityReport{legacy, event} {
		for _, r := range rep.Rows {
			if r.Touches > r.Scans {
				t.Errorf("structure %s: hits %d > visits %d", r.Name, r.Touches, r.Scans)
			}
			if want := 1 - r.HitRate; r.Scans > 0 && (r.WastedFrac-want) > 1e-12 {
				t.Errorf("structure %s: wasted %v != 1-hit %v", r.Name, r.WastedFrac, want)
			}
		}
	}

	h := Harvest(legacy, event)
	if h.HarvestedFrac <= 0 || h.HarvestedFrac >= 1 {
		t.Errorf("harvested fraction %v outside (0,1)", h.HarvestedFrac)
	}
	if h.RemainingWaste != event.WastedFrac {
		t.Errorf("remaining waste %v != event wasted fraction %v", h.RemainingWaste, event.WastedFrac)
	}
	if s := h.Format(); !bytes.Contains([]byte(s), []byte("harvested")) {
		t.Errorf("Harvest Format missing the comparison:\n%s", s)
	}
	if s := event.Format(); !bytes.Contains([]byte(s), []byte("dirty-set")) {
		t.Errorf("Format missing the dirty-set framing:\n%s", s)
	}
}

func TestProfiledRunIsResultIdentical(t *testing.T) {
	prog := asm.MustAssemble(loopSrc)
	run := func(attach bool) core.Result {
		m, err := prog.NewMemory(64)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.New(core.Config{ThreadSlots: 2, StandbyStations: true}, prog.Text, m)
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			p.SetHostProbe(New(Options{SampleEvery: 3}))
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, profiled := run(false), run(true)
	pj, _ := json.Marshal(plain)
	qj, _ := json.Marshal(profiled)
	if !bytes.Equal(pj, qj) {
		t.Errorf("profiled run diverged:\nplain:    %s\nprofiled: %s", pj, qj)
	}
}

func TestSamplingInterval(t *testing.T) {
	prof, _ := runProfiled(t, Options{SampleEvery: 8})
	pp := prof.Profile()
	want := (pp.Steps + 7) / 8
	if pp.SampledSteps != want {
		t.Errorf("sampled %d of %d steps at 1/8; want %d", pp.SampledSteps, pp.Steps, want)
	}
}

func TestRingBounded(t *testing.T) {
	prof, _ := runProfiled(t, Options{SampleEvery: 1, TraceCap: 16})
	samples, _ := prof.Samples()
	if len(samples) != 16 {
		t.Fatalf("ring retained %d samples, cap 16", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Cycle <= samples[i-1].Cycle {
			t.Fatalf("ring out of order at %d: %d after %d", i, samples[i].Cycle, samples[i-1].Cycle)
		}
	}
}

func TestSkipJumpAccounting(t *testing.T) {
	p := New(Options{})
	p.SkipJump(10, 50)
	p.SkipJump(60, 62)
	pp := p.Profile()
	if pp.SkipJumps != 2 || pp.SkippedCycles != 39+1 {
		t.Errorf("skip totals = %d jumps / %d cycles; want 2 / 40", pp.SkipJumps, pp.SkippedCycles)
	}
}

func TestSweepRecorder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rec := NewSweepRecorder()
		res, err := sweep.MapObserved(10, workers, func(i int) (int, error) {
			time.Sleep(time.Microsecond)
			return i * i, nil
		}, rec)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if r != i*i {
				t.Fatalf("workers=%d: result[%d]=%d", workers, i, r)
			}
		}
		spans, total, w, busy := rec.Cells()
		if total != 10 || len(spans) != 10 {
			t.Fatalf("workers=%d: recorded %d/%d cells", workers, len(spans), total)
		}
		if w < 1 || w > workers {
			t.Fatalf("workers=%d: recorder saw %d workers", workers, w)
		}
		if busy == 0 {
			t.Errorf("workers=%d: zero busy time", workers)
		}
		seen := map[int]bool{}
		for _, c := range spans {
			if c.Pending < 0 || c.Pending > 9 || c.Failed {
				t.Fatalf("bad span %+v", c)
			}
			seen[c.Cell] = true
		}
		if len(seen) != 10 {
			t.Fatalf("workers=%d: spans cover %d distinct cells", workers, len(seen))
		}
	}
	// Telemetry must still see cells on the error path.
	rec := NewSweepRecorder()
	boom := errors.New("boom")
	_, err := sweep.MapObserved(3, 1, func(i int) (int, error) {
		if i == 1 {
			return 0, boom
		}
		return i, nil
	}, rec)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	spans, _, _, _ := rec.Cells()
	if len(spans) != 2 || !spans[1].Failed {
		t.Fatalf("error-path spans: %+v", spans)
	}
}

func TestWriteHostTraceValidJSON(t *testing.T) {
	prof, _ := runProfiled(t, Options{SampleEvery: 4, TraceCap: 64})
	rec := NewSweepRecorder()
	if _, err := sweep.MapObserved(6, 2, func(i int) (int, error) { return i, nil }, rec); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHostTrace(&buf, prof, rec); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("host trace is not valid JSON: %v", err)
	}
	pids := map[float64]bool{}
	phases := map[string]bool{}
	for _, e := range doc.TraceEvents {
		pids[e["pid"].(float64)] = true
		if e["ph"] == "X" && e["pid"].(float64) == hostLoopPID {
			phases[e["name"].(string)] = true
		}
	}
	if !pids[hostLoopPID] || !pids[sweepPID] {
		t.Errorf("trace lacks expected tracks: pids %v", pids)
	}
	if !phases["issue-select"] {
		t.Errorf("no issue-select phase slices in trace: %v", phases)
	}
}
