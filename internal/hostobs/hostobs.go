// Package hostobs is the simulator observing itself: host-side
// self-observability for the cycle loop (internal/core), the sweep engine
// (internal/sweep) and the benchmark harness. Where internal/obs explains
// the *simulated* machine, hostobs explains the *simulator* — which phase
// of stepCycle the wall-clock goes to, what fraction of per-cycle structure
// scans touch state that actually changed (the opportunity ROADMAP item 2's
// event-driven "dirty-set" core would harvest), and how sweep workers fill
// their timelines.
//
// The Profiler implements core.HostProbe with the nil-observer discipline:
// detached, the cycle loop pays one nil check per step; attached, only
// every SampleEvery-th step is timed, so the enabled overhead stays within
// a few percent (BenchmarkSimulatorThroughputSelfProfile pins ≤5%).
// Attaching a Profiler does not disable quiescent-cycle skipping and does
// not perturb simulation results — a profiled run is result-identical to an
// unprofiled one (TestSelfProfileDifferential).
package hostobs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hirata/internal/core"
)

// DefaultSampleEvery is the default sampling interval: one in every 128
// stepCycle invocations is timed and touch-censused. A sampled step pays
// nine clock reads (one per phase boundary); the event-driven core stepped
// cycles fast enough that the old 1/32 default no longer fit inside the
// documented 5% overhead budget on hosts with slow clock sources.
const DefaultSampleEvery = 128

// DefaultTraceCap bounds the per-step sample ring retained for the host
// Chrome trace (drop-oldest, like the obs event ring).
const DefaultTraceCap = 4096

// Options configures a Profiler. The zero value picks the defaults.
type Options struct {
	// SampleEvery times one in every N steps (default DefaultSampleEvery;
	// 1 samples every step — useful in tests, too hot for benchmarks).
	SampleEvery uint64
	// TraceCap bounds retained per-step samples (default DefaultTraceCap).
	TraceCap int
}

// StepSample is one sampled step retained for the host trace: where it sat
// on the host clock, how long each phase took, and its touch census.
type StepSample struct {
	Cycle   uint64
	StartNs uint64 // host ns since the profiler was created
	// PhaseNs holds per-phase durations. HostPhaseSkip is always zero in
	// per-step samples (the skip machinery runs between steps and is
	// charged to the aggregate only).
	PhaseNs [core.NumHostPhases]uint64
	Touch   core.TouchSample
}

// SkipEvent records one quiescent-cycle fast-forward for the host trace.
type SkipEvent struct {
	From, To uint64 // simulated cycles
	AtNs     uint64 // host ns since profiler creation
}

// TouchTotals aggregates the touch census over all sampled steps. Visits
// count loop bodies that ran past the O(1) dirty-set filter; hits count
// visits that performed or recorded work (see core.TouchSample). On the
// event core hits/visits is the dirty-set hit rate; on the legacy scan core
// 1 − hits/visits is the scan waste the event core eliminates.
type TouchTotals struct {
	SlotVisits  uint64 `json:"slot_visits"`
	SlotHits    uint64 `json:"slot_hits"`
	UnitVisits  uint64 `json:"unit_visits"`
	UnitHits    uint64 `json:"unit_hits"`
	QueueVisits uint64 `json:"queue_visits"`
	QueueHits   uint64 `json:"queue_hits"`
	FrameVisits uint64 `json:"frame_visits"`
	FrameHits   uint64 `json:"frame_hits"`
	FetchVisits uint64 `json:"fetch_visits"`
	FetchHits   uint64 `json:"fetch_hits"`
	Issues      uint64 `json:"issues"`
	Retires     uint64 `json:"retires"`
	Binds       uint64 `json:"binds"`
}

func (t *TouchTotals) add(s core.TouchSample) {
	t.SlotVisits += s.SlotVisits
	t.SlotHits += s.SlotHits
	t.UnitVisits += s.UnitVisits
	t.UnitHits += s.UnitHits
	t.QueueVisits += s.QueueVisits
	t.QueueHits += s.QueueHits
	t.FrameVisits += s.FrameVisits
	t.FrameHits += s.FrameHits
	t.FetchVisits += s.FetchVisits
	t.FetchHits += s.FetchHits
	t.Issues += s.Issues
	t.Retires += s.Retires
	t.Binds += s.Binds
}

// Profiler implements core.HostProbe: sampled wall-time phase attribution
// plus structure-touch accounting, safe for concurrent reads (the
// /hostmetrics handler scrapes while the simulation loop writes).
type Profiler struct {
	opt   Options
	epoch time.Time

	steps       atomic.Uint64 // every stepCycle, sampled or not
	untilSample uint64        // countdown to the next sampled step (sim thread only)

	// cur is the in-flight sampled step, written only by the simulation
	// loop between StepStart and StepEnd (single-threaded); folded into the
	// locked aggregates at StepEnd.
	cur struct {
		t0    time.Time
		mark  time.Time
		phase [core.NumHostPhases]uint64
	}

	mu           sync.Mutex
	sampledSteps uint64
	phaseNanos   [core.NumHostPhases]uint64
	touch        TouchTotals
	ring         []StepSample // circular, cap = opt.TraceCap
	ringNext     int          // next write position once len == cap
	skipJumps    uint64
	skippedCyc   uint64
	skips        []SkipEvent // circular, bounded like ring
	skipsNext    int
	runs         uint64
	runCycles    uint64
	runSteps     uint64
}

var _ core.HostProbe = (*Profiler)(nil)

// New builds a Profiler. The zero Options picks DefaultSampleEvery and
// DefaultTraceCap. All ring storage is preallocated here so the probe never
// allocates on the cycle loop — sampled or not (the alloc-free test covers
// both paths).
func New(opt Options) *Profiler {
	if opt.SampleEvery == 0 {
		opt.SampleEvery = DefaultSampleEvery
	}
	if opt.TraceCap == 0 {
		opt.TraceCap = DefaultTraceCap
	}
	return &Profiler{
		opt:   opt,
		epoch: time.Now(),
		ring:  make([]StepSample, 0, opt.TraceCap),
		skips: make([]SkipEvent, 0, 256),
	}
}

// StepStart elects whether to sample this step. The first step is always
// sampled so short runs still produce a profile. This runs on every
// simulated cycle, so the fast path is a plain-store counter bump and a
// countdown — no atomic read-modify-write, no division. StepStart has a
// single caller goroutine (the cycle loop); the atomic store publishes the
// count to concurrent Profile() readers.
func (p *Profiler) StepStart(cycle uint64) bool {
	p.steps.Store(p.steps.Load() + 1)
	if p.untilSample > 1 {
		p.untilSample--
		return false
	}
	p.untilSample = p.opt.SampleEvery
	now := time.Now()
	p.cur.t0 = now
	p.cur.mark = now
	p.cur.phase = [core.NumHostPhases]uint64{}
	return true
}

// PhaseEnd charges the time since the previous mark to one phase.
// HostPhaseSkip arrives after StepEnd (the skip machinery runs between
// steps) and goes straight to the locked aggregate.
func (p *Profiler) PhaseEnd(ph core.HostPhase) {
	now := time.Now()
	d := uint64(now.Sub(p.cur.mark))
	p.cur.mark = now
	if ph == core.HostPhaseSkip {
		p.mu.Lock()
		p.phaseNanos[ph] += d
		p.mu.Unlock()
		return
	}
	p.cur.phase[ph] += d
}

// StepEnd folds the sampled step into the aggregates and the trace ring.
func (p *Profiler) StepEnd(t core.TouchSample) {
	s := StepSample{
		Cycle:   t.Cycle,
		StartNs: uint64(p.cur.t0.Sub(p.epoch)),
		PhaseNs: p.cur.phase,
		Touch:   t,
	}
	p.mu.Lock()
	p.sampledSteps++
	for i, d := range p.cur.phase {
		p.phaseNanos[i] += d
	}
	p.touch.add(t)
	if len(p.ring) < cap(p.ring) {
		p.ring = append(p.ring, s)
	} else if cap(p.ring) > 0 {
		p.ring[p.ringNext] = s
		p.ringNext = (p.ringNext + 1) % cap(p.ring)
	}
	p.mu.Unlock()
}

// SkipJump records one quiescent-cycle fast-forward.
func (p *Profiler) SkipJump(from, to uint64) {
	e := SkipEvent{From: from, To: to, AtNs: uint64(time.Since(p.epoch))}
	p.mu.Lock()
	p.skipJumps++
	p.skippedCyc += to - from - 1
	if len(p.skips) < cap(p.skips) {
		p.skips = append(p.skips, e)
	} else if cap(p.skips) > 0 {
		p.skips[p.skipsNext] = e
		p.skipsNext = (p.skipsNext + 1) % cap(p.skips)
	}
	p.mu.Unlock()
}

// RunEnd records the completed run's totals. A Profiler may observe several
// runs (e.g. warmup + measured); totals accumulate.
func (p *Profiler) RunEnd(cycles, steps uint64) {
	p.mu.Lock()
	p.runs++
	p.runCycles += cycles
	p.runSteps += steps
	p.mu.Unlock()
}

// PhaseTime is one row of a PhaseProfile.
type PhaseTime struct {
	Name      string  `json:"name"`
	Nanos     uint64  `json:"nanos"`
	Fraction  float64 `json:"fraction"` // of total sampled time
	NsPerStep float64 `json:"ns_per_sampled_step"`
}

// PhaseProfile is the aggregated cycle-loop phase attribution.
type PhaseProfile struct {
	SampleEvery  uint64 `json:"sample_every"`
	Steps        uint64 `json:"steps"` // stepCycle invocations observed
	SampledSteps uint64 `json:"sampled_steps"`
	RunCycles    uint64 `json:"run_cycles"` // simulated cycles (all runs)
	// SteppedCycles counts cycles actually simulated by stepCycle in
	// completed runs; SkippedCycles counts cycles jumped by the event
	// horizon. RunCycles = SteppedCycles + SkippedCycles for completed
	// runs, so the two fields split "cycle simulated" from "cycle jumped".
	SteppedCycles   uint64      `json:"stepped_cycles"`
	SkipJumps       uint64      `json:"skip_jumps"`
	SkippedCycles   uint64      `json:"skipped_cycles"`
	Phases          []PhaseTime `json:"phases"`
	SampledNanos    uint64      `json:"sampled_nanos"`   // Σ phase nanos
	EstTotalNanos   uint64      `json:"est_total_nanos"` // scaled by Steps/SampledSteps
	NsPerStep       float64     `json:"ns_per_sampled_step"`
	SimCyclesPerSec float64     `json:"sim_cycles_per_sec"` // RunCycles over estimated loop time
}

// Profile snapshots the phase attribution.
func (p *Profiler) Profile() PhaseProfile {
	p.mu.Lock()
	defer p.mu.Unlock()
	pp := PhaseProfile{
		SampleEvery:   p.opt.SampleEvery,
		Steps:         p.steps.Load(),
		SampledSteps:  p.sampledSteps,
		RunCycles:     p.runCycles,
		SteppedCycles: p.runSteps,
		SkipJumps:     p.skipJumps,
		SkippedCycles: p.skippedCyc,
	}
	var total uint64
	for _, d := range p.phaseNanos {
		total += d
	}
	pp.SampledNanos = total
	for ph := core.HostPhase(0); ph < core.NumHostPhases; ph++ {
		row := PhaseTime{Name: ph.String(), Nanos: p.phaseNanos[ph]}
		if total > 0 {
			row.Fraction = float64(row.Nanos) / float64(total)
		}
		if p.sampledSteps > 0 {
			row.NsPerStep = float64(row.Nanos) / float64(p.sampledSteps)
		}
		pp.Phases = append(pp.Phases, row)
	}
	if p.sampledSteps > 0 {
		pp.NsPerStep = float64(total) / float64(p.sampledSteps)
		pp.EstTotalNanos = uint64(float64(total) * float64(pp.Steps) / float64(p.sampledSteps))
	}
	if pp.EstTotalNanos > 0 && pp.RunCycles > 0 {
		pp.SimCyclesPerSec = float64(pp.RunCycles) / (float64(pp.EstTotalNanos) / 1e9)
	}
	return pp
}

// Format renders the profile as a human-readable table, phases sorted by
// time spent.
func (pp PhaseProfile) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "host cycle-loop phase profile (1/%d sampling: %d of %d steps)\n",
		pp.SampleEvery, pp.SampledSteps, pp.Steps)
	fmt.Fprintf(&b, "  simulated cycles %d: %d stepped, %d jumped by event horizon (%d jumps)\n",
		pp.RunCycles, pp.SteppedCycles, pp.SkippedCycles, pp.SkipJumps)
	if pp.NsPerStep > 0 {
		fmt.Fprintf(&b, "  %.0f ns/sampled step; est. loop time %.3f ms; %.0f sim-cycles/s\n",
			pp.NsPerStep, float64(pp.EstTotalNanos)/1e6, pp.SimCyclesPerSec)
	}
	fmt.Fprintf(&b, "  %-14s %12s %7s %12s\n", "phase", "ns", "%", "ns/step")
	rows := append([]PhaseTime(nil), pp.Phases...)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Nanos > rows[j].Nanos })
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s %12d %6.1f%% %12.1f\n", r.Name, r.Nanos, 100*r.Fraction, r.NsPerStep)
	}
	return b.String()
}

// Totals snapshots the touch-census aggregate.
func (p *Profiler) Totals() (TouchTotals, uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.touch, p.sampledSteps
}

// Samples returns the retained step samples in chronological order and the
// retained skip events.
func (p *Profiler) Samples() ([]StepSample, []SkipEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]StepSample, 0, len(p.ring))
	if len(p.ring) == cap(p.ring) && cap(p.ring) > 0 {
		out = append(out, p.ring[p.ringNext:]...)
		out = append(out, p.ring[:p.ringNext]...)
	} else {
		out = append(out, p.ring...)
	}
	sk := make([]SkipEvent, 0, len(p.skips))
	if len(p.skips) == cap(p.skips) && cap(p.skips) > 0 {
		sk = append(sk, p.skips[p.skipsNext:]...)
		sk = append(sk, p.skips[:p.skipsNext]...)
	} else {
		sk = append(sk, p.skips...)
	}
	return out, sk
}

// WriteJSON emits the phase profile and opportunity report as one JSON
// document (the -self-profile-json artifact).
func (p *Profiler) WriteJSON(w io.Writer) error {
	type doc struct {
		Profile     PhaseProfile      `json:"phase_profile"`
		Opportunity OpportunityReport `json:"opportunity"`
	}
	return writeJSON(w, doc{Profile: p.Profile(), Opportunity: p.Opportunity()})
}

// ProfileDigest returns the sha256 hex of the profiler's JSON export — the
// content address a run record (internal/runledger) stores to tie a host
// profile artifact to the simulation it measured. Host timings vary run to
// run, so the digest identifies one captured artifact, not the run inputs.
func (p *Profiler) ProfileDigest() (string, error) {
	h := sha256.New()
	if err := p.WriteJSON(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
