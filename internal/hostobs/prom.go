package hostobs

import (
	"fmt"
	"io"

	"hirata/internal/core"
	"hirata/internal/obs"
)

// Export bundles the host-side sources behind one /hostmetrics exposition
// (obs.HostSource). Either field may be nil; the build-info gauge is always
// present so a scrape of a half-configured run still identifies the binary.
type Export struct {
	Prof  *Profiler
	Sweep *SweepRecorder
}

// WriteHostPrometheus writes the Prometheus text exposition of the
// simulator's own execution: build identity, cycle-loop phase nanoseconds,
// the structure-touch census with per-structure wasted-scan fractions, skip
// statistics and sweep telemetry. Naming follows the /metrics conventions
// (hirata_ namespace, counters end in _total; promlint-checked by
// TestHostPrometheusExpositionLint).
func (e Export) WriteHostPrometheus(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	if werr := obs.WriteBuildInfo(w); werr != nil {
		return werr
	}
	if e.Prof != nil {
		writeProfilerProm(p, e.Prof)
	}
	if e.Sweep != nil {
		writeSweepProm(p, e.Sweep)
	}
	return err
}

func writeProfilerProm(p func(string, ...any), prof *Profiler) {
	pp := prof.Profile()
	p("# HELP hirata_host_steps_total Cycle-loop steps executed (stepCycle invocations).\n" +
		"# TYPE hirata_host_steps_total counter\n")
	p("hirata_host_steps_total %d\n", pp.Steps)
	p("# HELP hirata_host_sampled_steps_total Steps sampled for phase timing and touch census.\n" +
		"# TYPE hirata_host_sampled_steps_total counter\n")
	p("hirata_host_sampled_steps_total %d\n", pp.SampledSteps)
	p("# HELP hirata_host_sim_cycles_total Simulated cycles completed by profiled runs.\n" +
		"# TYPE hirata_host_sim_cycles_total counter\n")
	p("hirata_host_sim_cycles_total %d\n", pp.RunCycles)
	p("# HELP hirata_host_stepped_cycles_total Cycles actually simulated by stepCycle (completed runs).\n" +
		"# TYPE hirata_host_stepped_cycles_total counter\n")
	p("hirata_host_stepped_cycles_total %d\n", pp.SteppedCycles)
	p("# HELP hirata_host_skip_jumps_total Event-horizon fast-forwards taken.\n" +
		"# TYPE hirata_host_skip_jumps_total counter\n")
	p("hirata_host_skip_jumps_total %d\n", pp.SkipJumps)
	p("# HELP hirata_host_skipped_cycles_total Simulated cycles jumped by the event horizon.\n" +
		"# TYPE hirata_host_skipped_cycles_total counter\n")
	p("hirata_host_skipped_cycles_total %d\n", pp.SkippedCycles)
	p("# HELP hirata_host_phase_nanoseconds_total Sampled wall time per cycle-loop phase.\n" +
		"# TYPE hirata_host_phase_nanoseconds_total counter\n")
	for ph := core.HostPhase(0); ph < core.NumHostPhases; ph++ {
		p("hirata_host_phase_nanoseconds_total{phase=%q} %d\n", ph.String(), pp.Phases[ph].Nanos)
	}

	rep := prof.Opportunity()
	p("# HELP hirata_host_structure_scans_total Structure visits: loop bodies run past the dirty-set filter (sampled steps).\n" +
		"# TYPE hirata_host_structure_scans_total counter\n")
	for _, r := range rep.Rows {
		p("hirata_host_structure_scans_total{structure=%q} %d\n", r.Name, r.Scans)
	}
	p("# HELP hirata_host_structure_touches_total Structure hits: visits that performed or recorded work (sampled steps).\n" +
		"# TYPE hirata_host_structure_touches_total counter\n")
	for _, r := range rep.Rows {
		p("hirata_host_structure_touches_total{structure=%q} %d\n", r.Name, r.Touches)
	}
	p("# HELP hirata_host_wasted_scan_fraction Fraction of visits that did no work (legacy core: waste the dirty sets eliminate; event core: waste remaining).\n" +
		"# TYPE hirata_host_wasted_scan_fraction gauge\n")
	for _, r := range rep.Rows {
		p("hirata_host_wasted_scan_fraction{structure=%q} %g\n", r.Name, r.WastedFrac)
	}
	p("hirata_host_wasted_scan_fraction{structure=\"all\"} %g\n", rep.WastedFrac)
}

func writeSweepProm(p func(string, ...any), rec *SweepRecorder) {
	_, total, workers, busy := rec.Cells()
	p("# HELP hirata_host_sweep_cells_total Sweep cells completed.\n" +
		"# TYPE hirata_host_sweep_cells_total counter\n")
	p("hirata_host_sweep_cells_total %d\n", total)
	p("# HELP hirata_host_sweep_busy_nanoseconds_total Summed cell execution time across workers.\n" +
		"# TYPE hirata_host_sweep_busy_nanoseconds_total counter\n")
	p("hirata_host_sweep_busy_nanoseconds_total %d\n", busy)
	p("# HELP hirata_host_sweep_workers Distinct sweep workers observed.\n" +
		"# TYPE hirata_host_sweep_workers gauge\n")
	p("hirata_host_sweep_workers %d\n", workers)
}

// WriteHostPrometheus lets a bare Profiler serve /hostmetrics directly
// (hirata-sim attaches no sweep recorder).
func (p *Profiler) WriteHostPrometheus(w io.Writer) error {
	return Export{Prof: p}.WriteHostPrometheus(w)
}
