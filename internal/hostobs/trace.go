package hostobs

import (
	"io"

	"hirata/internal/core"
	"hirata/internal/obs"
)

// Host Chrome-trace layout (obs.TraceWriter over the same streaming
// encoder as the pipeline traces; one trace microsecond = one host
// microsecond):
//
//	pid 1  "host cycle loop"   — tid 0: per-sampled-step phase slices;
//	                             skip-jump instants; ns/step + scans/step
//	                             counters
//	pid 2  "sweep workers"     — tid = worker id: one slice per cell;
//	                             pending-cells counter
const (
	hostLoopPID = 1
	sweepPID    = 2
	hostLoopCat = "hostloop"
	sweepCat    = "sweep"
	hostLoopTID = 0
)

// WriteHostTrace renders the profiler's sampled steps and the sweep
// recorder's worker timelines as one Chrome Trace Event JSON document
// (load in ui.perfetto.dev). Either argument may be nil.
func WriteHostTrace(w io.Writer, p *Profiler, rec *SweepRecorder) error {
	tw := obs.NewTraceWriter(w)
	if p != nil {
		writeLoopTrack(tw, p)
	}
	if rec != nil {
		writeSweepTrack(tw, rec)
	}
	return tw.Close()
}

func writeLoopTrack(tw *obs.TraceWriter, p *Profiler) {
	tw.ProcessName(hostLoopPID, "host cycle loop (sampled)")
	tw.ThreadName(hostLoopPID, hostLoopTID, "stepCycle phases")
	samples, skips := p.Samples()
	for _, s := range samples {
		ts := s.StartNs / 1000
		off := uint64(0)
		for ph := core.HostPhase(0); ph < core.NumHostPhases; ph++ {
			d := s.PhaseNs[ph]
			if d == 0 {
				continue
			}
			// Sub-microsecond phases still get a 1µs-wide slice (TraceWriter
			// widens zero durations); offsets accumulate in ns for fidelity.
			tw.Slice(hostLoopPID, hostLoopTID, ph.String(), hostLoopCat,
				ts+off/1000, d/1000, map[string]any{"cycle": s.Cycle, "ns": d})
			off += d
		}
		total := uint64(0)
		for _, d := range s.PhaseNs {
			total += d
		}
		tw.Counter(hostLoopPID, hostLoopTID, "step ns", ts, map[string]any{"ns": total})
		tw.Counter(hostLoopPID, hostLoopTID, "running slots", ts,
			map[string]any{"slots": s.Touch.RunningSlots})
	}
	for _, sk := range skips {
		tw.Instant(hostLoopPID, hostLoopTID, "skip jump", sk.AtNs/1000, "p",
			map[string]any{"from_cycle": sk.From, "to_cycle": sk.To, "skipped": sk.To - sk.From - 1})
	}
}

func writeSweepTrack(tw *obs.TraceWriter, rec *SweepRecorder) {
	spans, _, workers, _ := rec.Cells()
	tw.ProcessName(sweepPID, "sweep workers")
	for w := 0; w < workers; w++ {
		tw.ThreadName(sweepPID, w, "worker")
	}
	for _, c := range spans {
		name := "cell"
		tw.Slice(sweepPID, c.Worker, name, sweepCat, c.StartNs/1000, c.DurNs/1000,
			map[string]any{"cell": c.Cell, "pending": c.Pending, "failed": c.Failed})
		tw.Counter(sweepPID, 0, "cells pending", (c.StartNs+c.DurNs)/1000,
			map[string]any{"pending": c.Pending})
	}
}
