package hostobs

// Promlint-style checks on the /hostmetrics exposition, mirroring
// internal/obs's TestPrometheusExpositionLint: HELP/TYPE pairing, hirata_
// namespace, counters end in _total and gauges do not. Host-side values are
// wall-clock timings, so the golden pins names, labels and help text with
// every sample value normalised to V (regenerate with -update).

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"hirata/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite golden files")

var hostSample = regexp.MustCompile(`^([a-z_]+)(\{[^}]*\})? [-+0-9.eE]+$`)

func TestHostPrometheusExpositionLint(t *testing.T) {
	prof, _ := runProfiled(t, Options{SampleEvery: 1})
	rec := NewSweepRecorder()
	if _, err := sweep.MapObserved(4, 2, func(i int) (int, error) { return i, nil }, rec); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := (Export{Prof: prof, Sweep: rec}).WriteHostPrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	type meta struct{ help, typ string }
	metas := map[string]meta{}
	var current string
	var normalized []string
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(fields) != 2 || fields[1] == "" {
				t.Errorf("line %d: HELP without text: %q", i+1, line)
				continue
			}
			current = fields[0]
			m := metas[current]
			m.help = fields[1]
			metas[current] = m
			normalized = append(normalized, line)
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Errorf("line %d: malformed TYPE: %q", i+1, line)
				continue
			}
			if fields[0] != current {
				t.Errorf("line %d: TYPE %s does not follow its HELP (current %s)", i+1, fields[0], current)
			}
			if fields[1] != "counter" && fields[1] != "gauge" {
				t.Errorf("line %d: unknown metric type %q", i+1, fields[1])
			}
			m := metas[fields[0]]
			m.typ = fields[1]
			metas[fields[0]] = m
			normalized = append(normalized, line)
		case line == "":
			t.Errorf("line %d: blank line in exposition", i+1)
		default:
			match := hostSample.FindStringSubmatch(line)
			if match == nil {
				t.Errorf("line %d: unparsable sample: %q", i+1, line)
				continue
			}
			name := match[1]
			m, ok := metas[name]
			if !ok || m.help == "" || m.typ == "" {
				t.Errorf("line %d: sample %s has no preceding # HELP/# TYPE pair", i+1, name)
				continue
			}
			if !strings.HasPrefix(name, "hirata_") {
				t.Errorf("line %d: metric %s outside the hirata_ namespace", i+1, name)
			}
			switch m.typ {
			case "counter":
				if !strings.HasSuffix(name, "_total") {
					t.Errorf("line %d: counter %s does not end in _total", i+1, name)
				}
			case "gauge":
				if strings.HasSuffix(name, "_total") {
					t.Errorf("line %d: gauge %s ends in _total", i+1, name)
				}
			}
			normalized = append(normalized, name+match[2]+" V")
		}
	}
	for _, want := range []string{
		"hirata_build_info",
		"hirata_host_phase_nanoseconds_total",
		"hirata_host_structure_scans_total",
		"hirata_host_wasted_scan_fraction",
		"hirata_host_sweep_cells_total",
	} {
		if _, ok := metas[want]; !ok {
			t.Errorf("exposition lacks %s", want)
		}
	}

	got := []byte(strings.Join(normalized, "\n") + "\n")
	golden := filepath.Join("testdata", "host_metrics.golden.prom")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("normalised exposition differs from %s (run with -update to regenerate);\ngot:\n%s", golden, got)
	}
}
