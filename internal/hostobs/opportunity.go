package hostobs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// The dirty-set opportunity report: ROADMAP item 2 proposes replacing the
// cycle loop's per-cycle structure scans with event-driven "dirty" sets —
// only touch slots/units/queues/frames whose state can actually change this
// cycle. The touch census measures, per workload, how much of today's scan
// work that refactor would eliminate: every scanned-but-unchanged entry is
// a wasted visit an event-driven core never makes.

// StructureRow is the scan-vs-change census of one per-cycle structure.
type StructureRow struct {
	Name       string  `json:"name"`
	Scans      uint64  `json:"scans"`   // entries visited by per-cycle loops
	Touches    uint64  `json:"touches"` // entries whose state changed
	WastedFrac float64 `json:"wasted_fraction"`
}

// OpportunityReport aggregates the census over all sampled steps.
type OpportunityReport struct {
	SampledSteps uint64         `json:"sampled_steps"`
	Rows         []StructureRow `json:"structures"`
	TotalScans   uint64         `json:"total_scans"`
	TotalTouches uint64         `json:"total_touches"`
	// WastedFrac is the headline: the fraction of all structure visits an
	// event-driven dirty-set core would not perform.
	WastedFrac float64 `json:"wasted_fraction"`
	// ScansPerStep contextualizes against loop cost.
	ScansPerStep float64 `json:"scans_per_sampled_step"`
}

// row builds one StructureRow, clamping touches to scans (touch events can
// outnumber visits for event-indexed structures; the waste metric is about
// visits that found nothing).
func row(name string, scans, touches uint64) StructureRow {
	r := StructureRow{Name: name, Scans: scans, Touches: touches}
	if touches > scans {
		r.Touches = scans
	}
	if scans > 0 {
		r.WastedFrac = 1 - float64(r.Touches)/float64(scans)
	}
	return r
}

// Opportunity computes the dirty-set opportunity report from the touch
// aggregate.
func (p *Profiler) Opportunity() OpportunityReport {
	t, steps := p.Totals()
	rep := OpportunityReport{SampledSteps: steps}
	rep.Rows = []StructureRow{
		row("thread slots", t.SlotScans, t.SlotsActive),
		row("functional units", t.UnitScans, t.UnitSelections),
		row("queue registers", t.QueueScans, t.QueueMoves),
		row("context frames", t.FrameScans, t.FrameWakes),
		row("fetch units", t.FetcherScans, t.FetcherEvents),
	}
	for _, r := range rep.Rows {
		rep.TotalScans += r.Scans
		rep.TotalTouches += r.Touches
	}
	if rep.TotalScans > 0 {
		rep.WastedFrac = 1 - float64(rep.TotalTouches)/float64(rep.TotalScans)
	}
	if steps > 0 {
		rep.ScansPerStep = float64(rep.TotalScans) / float64(steps)
	}
	return rep
}

// Format renders the report as a table with the headline fraction.
func (r OpportunityReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dirty-set opportunity report (%d sampled steps)\n", r.SampledSteps)
	fmt.Fprintf(&b, "  %-18s %12s %12s %8s\n", "structure", "scans", "changed", "wasted")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-18s %12d %12d %7.1f%%\n", row.Name, row.Scans, row.Touches, 100*row.WastedFrac)
	}
	fmt.Fprintf(&b, "  %-18s %12d %12d %7.1f%%\n", "TOTAL", r.TotalScans, r.TotalTouches, 100*r.WastedFrac)
	fmt.Fprintf(&b, "  %.1f structure visits per executed cycle; an event-driven dirty-set core\n"+
		"  (ROADMAP item 2) would eliminate ~%.0f%% of them on this workload.\n",
		r.ScansPerStep, 100*r.WastedFrac)
	return b.String()
}

// writeJSON marshals v indented to w.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
