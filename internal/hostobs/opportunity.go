package hostobs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// The dirty-set opportunity report. The cycle loop's per-cycle structure
// work is now event-driven (internal/core's dirty-set core): each phase
// visits only the entries its dirty set admits. The touch census measures,
// per workload, how selective those sets are — a *visit* is a loop body run
// past the O(1) filter, a *hit* is a visit that performed or recorded work.
// On the event core 1 − hits/visits is the *remaining* waste; on the legacy
// scan core (Config.DisableEventCore) the same census measures the waste
// the refactor *harvested*. Harvest() packages the two runs side by side.

// StructureRow is the visit-vs-hit census of one per-cycle structure.
// Scans/Touches keep their historical JSON names (they now carry visit and
// hit counts); HitRate is Touches/Scans, the dirty-set hit rate.
type StructureRow struct {
	Name       string  `json:"name"`
	Scans      uint64  `json:"scans"`   // visits: loop bodies run past the dirty filter
	Touches    uint64  `json:"touches"` // hits: visits that performed or recorded work
	WastedFrac float64 `json:"wasted_fraction"`
	HitRate    float64 `json:"hit_rate"`
}

// OpportunityReport aggregates the census over all sampled steps.
type OpportunityReport struct {
	SampledSteps uint64         `json:"sampled_steps"`
	Rows         []StructureRow `json:"structures"`
	TotalScans   uint64         `json:"total_scans"`
	TotalTouches uint64         `json:"total_touches"`
	// WastedFrac is the headline: the fraction of structure visits that did
	// no work. On the event core this is the waste its dirty sets still
	// admit; on the legacy scan core it is the waste they would eliminate.
	WastedFrac float64 `json:"wasted_fraction"`
	// HitRate = 1 − WastedFrac, the dirty-set hit rate.
	HitRate float64 `json:"hit_rate"`
	// ScansPerStep contextualizes against loop cost.
	ScansPerStep float64 `json:"scans_per_sampled_step"`
}

// row builds one StructureRow, clamping hits to visits (hit events can
// outnumber visits for event-indexed structures; the waste metric is about
// visits that found nothing).
func row(name string, visits, hits uint64) StructureRow {
	r := StructureRow{Name: name, Scans: visits, Touches: hits}
	if hits > visits {
		r.Touches = visits
	}
	if visits > 0 {
		r.HitRate = float64(r.Touches) / float64(visits)
		r.WastedFrac = 1 - r.HitRate
	}
	return r
}

// Opportunity computes the dirty-set opportunity report from the touch
// aggregate.
func (p *Profiler) Opportunity() OpportunityReport {
	t, steps := p.Totals()
	rep := OpportunityReport{SampledSteps: steps}
	rep.Rows = []StructureRow{
		row("thread slots", t.SlotVisits, t.SlotHits),
		row("functional units", t.UnitVisits, t.UnitHits),
		row("queue registers", t.QueueVisits, t.QueueHits),
		row("context frames", t.FrameVisits, t.FrameHits),
		row("fetch units", t.FetchVisits, t.FetchHits),
	}
	for _, r := range rep.Rows {
		rep.TotalScans += r.Scans
		rep.TotalTouches += r.Touches
	}
	if rep.TotalScans > 0 {
		rep.HitRate = float64(rep.TotalTouches) / float64(rep.TotalScans)
		rep.WastedFrac = 1 - rep.HitRate
	}
	if steps > 0 {
		rep.ScansPerStep = float64(rep.TotalScans) / float64(steps)
	}
	return rep
}

// Format renders the report as a table with the headline fractions.
func (r OpportunityReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dirty-set census (%d sampled steps)\n", r.SampledSteps)
	fmt.Fprintf(&b, "  %-18s %12s %12s %8s %8s\n", "structure", "visits", "hits", "hit", "wasted")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-18s %12d %12d %7.1f%% %7.1f%%\n",
			row.Name, row.Scans, row.Touches, 100*row.HitRate, 100*row.WastedFrac)
	}
	fmt.Fprintf(&b, "  %-18s %12d %12d %7.1f%% %7.1f%%\n",
		"TOTAL", r.TotalScans, r.TotalTouches, 100*r.HitRate, 100*r.WastedFrac)
	fmt.Fprintf(&b, "  %.1f structure visits per executed cycle; %.1f%% of them did work\n"+
		"  (on the legacy scan core the wasted column is what the event-driven\n"+
		"  dirty-set core eliminates; on the event core it is what remains).\n",
		r.ScansPerStep, 100*r.HitRate)
	return b.String()
}

// HarvestReport compares the touch census of a legacy scan-core run against
// an event-core run of the same workload: how much scan waste the dirty-set
// refactor harvested, and how much remains.
type HarvestReport struct {
	Legacy OpportunityReport `json:"legacy"`
	Event  OpportunityReport `json:"event"`
	// HarvestedFrac is the fraction of legacy visits the event core never
	// makes (1 − event visits / legacy visits, clamped at 0).
	HarvestedFrac float64 `json:"harvested_fraction"`
	// RemainingWaste is the event core's own wasted fraction — visits its
	// dirty sets admitted that did no work.
	RemainingWaste float64 `json:"remaining_waste"`
}

// Harvest builds the harvested-vs-remaining comparison from two
// OpportunityReports of the same workload.
func Harvest(legacy, event OpportunityReport) HarvestReport {
	h := HarvestReport{Legacy: legacy, Event: event, RemainingWaste: event.WastedFrac}
	if legacy.TotalScans > 0 && event.TotalScans < legacy.TotalScans {
		h.HarvestedFrac = 1 - float64(event.TotalScans)/float64(legacy.TotalScans)
	}
	return h
}

// Format renders the comparison.
func (h HarvestReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dirty-set harvest: legacy scan core vs event core\n")
	fmt.Fprintf(&b, "  legacy: %d visits, %.1f%% wasted\n", h.Legacy.TotalScans, 100*h.Legacy.WastedFrac)
	fmt.Fprintf(&b, "  event:  %d visits, %.1f%% wasted\n", h.Event.TotalScans, 100*h.Event.WastedFrac)
	fmt.Fprintf(&b, "  harvested %.1f%% of legacy visits; remaining waste %.1f%%\n",
		100*h.HarvestedFrac, 100*h.RemainingWaste)
	return b.String()
}

// writeJSON marshals v indented to w.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
