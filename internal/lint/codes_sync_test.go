package lint

import (
	"testing"

	"hirata/internal/asm"
)

// TestKnownLintCodesInSync pins asm.KnownLintCodes — the table the
// assembler validates `.lint allow` arguments against — to this package's
// diagnostic catalogue. The table is duplicated in asm because the import
// points the other way (lint imports asm); this test is the lock that
// keeps the copies identical when a code is added to either side.
func TestKnownLintCodesInSync(t *testing.T) {
	catalogue := allCodes()
	for _, c := range catalogue {
		if !asm.KnownLintCodes[string(c)] {
			t.Errorf("asm.KnownLintCodes is missing %s (%s)", c, c.Name())
		}
		if ruleHelp[c] == "" {
			t.Errorf("ruleHelp is missing %s (%s)", c, c.Name())
		}
	}
	if got, want := len(asm.KnownLintCodes), len(catalogue); got != want {
		t.Errorf("asm.KnownLintCodes has %d codes, the lint catalogue has %d", got, want)
	}
	if got, want := len(codeNames), len(catalogue); got != want {
		t.Errorf("codeNames has %d codes, allCodes returns %d", got, want)
	}
}
