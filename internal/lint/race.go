package lint

// This file drives the cross-thread analysis (Config.InterThread): it runs
// the per-context fixpoints, folds provably read-only data words into
// constants (iterating until the folded run is self-consistent), and
// reports L010 (data race), L011 (out-of-range access), L012 (type-confused
// word access), L013 (dead store), and L014 (statically decided branch).

import (
	"math/bits"
	"sort"
	"strings"

	"hirata/internal/asm"
)

// isThreadCountSym reports whether a data label holds the thread count:
// the MinC runtime's __nthreads, or the workload convention gthreads /
// gthreadsXX. The runner initialises these to the configured thread-slot
// count, so the analysis reads them as that constant (and never folds them
// from the static image, where they hold a placeholder).
func isThreadCountSym(name string) bool {
	return name == "__nthreads" || name == "nthreads" || strings.HasPrefix(name, "gthreads")
}

func (a *analysis) runInterThread() {
	if len(a.text) == 0 || a.g == nil || len(a.g.blocks) == 0 {
		return
	}
	ia := &interAnalysis{a: a, prog: a.prog, memWords: a.cfg.MemWords}
	ia.threads = int64(a.cfg.threadSlots())
	if n := int64(len(a.cfg.entries())); n > ia.threads {
		ia.threads = n
	}
	ia.threadCountAddrs = map[int64]bool{}
	if ia.prog != nil {
		for name, v := range ia.prog.Symbols {
			if isThreadCountSym(name) && v >= 0 {
				ia.threadCountAddrs[v] = true
			}
		}
	}
	ia.computeSolo()
	ia.computePostKill()
	ia.computeQueueCounts()

	// Constant-folding loop, optimistic SCCP-style: assume every eligible
	// data word keeps its initial value, run, then evict any word some
	// store can reach and re-run. A fixpoint map is self-justifying: the
	// run that assumed it produced store windows disjoint from it, so by
	// induction over any concrete execution the folded words never
	// change. The optimistic start matters — begun empty, unclamped loop
	// bounds make every store look unbounded, which would permanently
	// poison the map (the loop bounds themselves live in data words).
	ia.constMap = map[int64]int64{}
	if ia.prog != nil {
		ia.constMap = ia.initialConstMap()
	}
	for round := 0; ; round++ {
		ia.runAll()
		if ia.gaveUp {
			return // out of budget: report nothing rather than guess
		}
		if ia.prog == nil {
			break // text-only mode: no data image to fold
		}
		next := ia.shrinkConstMap()
		if constMapsEqual(next, ia.constMap) {
			break
		}
		if round >= 5 {
			ia.constMap = map[int64]int64{}
			ia.runAll()
			if ia.gaveUp {
				return
			}
			break
		}
		ia.constMap = next
	}

	ia.checkRaces()
	ia.checkAddresses()
	ia.checkBranches()
	if ia.a.cfg.Deadlock {
		ia.checkSpins()
	}
}

// runAll runs fixpoint and replay for every context under the current
// constant map, resetting all per-run observations.
func (ia *interAnalysis) runAll() {
	ia.accesses, ia.storeAddrs = nil, nil
	ia.brMask = map[int]int{}
	ia.qUncertain = [2]bool{}
	ia.thresholds = map[int64]bool{}
	budget := visitCap
	for ci, e := range ia.a.cfg.entries() {
		if e < 0 || e >= len(ia.a.text) {
			continue
		}
		ic := ia.runCtx(ci, e, &budget)
		if ia.gaveUp {
			return
		}
		ia.replay(ic)
	}
}

// initialConstMap maps every fold-eligible data word to its initial-image
// value: the optimistic assumption the folding loop starts from.
func (ia *interAnalysis) initialConstMap() map[int64]int64 {
	p := ia.prog
	image := make(map[int64]int64, len(p.Data))
	for _, w := range p.Data {
		image[w.Addr] = int64(w.Val)
	}
	out := map[int64]int64{}
	for addr := int64(0); addr < p.DataEnd; addr++ {
		if ia.threadCountAddrs[addr] {
			continue
		}
		if p.WordType(addr) == asm.WordFloat {
			continue // FP bit patterns are not useful integer constants
		}
		out[addr] = image[addr] // absent words (.space) are zero
	}
	return out
}

// shrinkConstMap returns the current map minus every word some store in
// the just-finished run can reach.
func (ia *interAnalysis) shrinkConstMap() map[int64]int64 {
	stored := func(addr int64) bool {
		for _, s := range ia.storeAddrs {
			if s.bot {
				continue
			}
			if s.member(addr) {
				return true
			}
		}
		return false
	}
	out := make(map[int64]int64, len(ia.constMap))
	for addr, v := range ia.constMap {
		if !stored(addr) {
			out[addr] = v
		}
	}
	return out
}

func constMapsEqual(a, b map[int64]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

func boundedVal(v aval) bool {
	return !v.bot && v.lo > aNegInf && v.hi < aPosInf
}

// foldAccess folds an access's tid term using the thread bound at the
// access clipped to the real thread-slot range.
func (ia *interAnalysis) foldAccess(ac access) aval {
	tr := tidRange{max64(ac.tid.lo, 0), min64(ac.tid.hi, ia.threads-1)}
	if tr.lo > tr.hi {
		return botVal()
	}
	return ac.addr.foldTid(tr)
}

// setsOverlap reports whether two tid-free abstract address sets can share
// a concrete address. Exact for two pure arithmetic progressions (CRT);
// interval + residue-window approximate otherwise.
func setsOverlap(x, y aval) bool {
	if x.bot || y.bot {
		return false
	}
	if x.lo == x.hi {
		return y.member(x.lo)
	}
	if y.lo == y.hi {
		return x.member(y.lo)
	}
	lo, hi := max64(x.lo, y.lo), min64(x.hi, y.hi)
	if lo > hi {
		return false
	}
	g := gcd64(x.m, y.m)
	if g > 1 {
		r1, r2 := pmod(x.res, g), pmod(y.res, g)
		if pmod(r2-r1, g) > x.resW && pmod(r1-r2, g) > y.resW {
			return false // residue windows cannot meet modulo g
		}
	}
	if x.resW == 0 && y.resW == 0 && x.m > 1 && y.m > 1 {
		return progressionsMeet(x, y, lo, hi)
	}
	return true
}

// progressionsMeet solves v = x.res (mod x.m), v = y.res (mod y.m),
// lo <= v <= hi exactly via the Chinese remainder theorem.
func progressionsMeet(x, y aval, lo, hi int64) bool {
	g, p, _ := egcd(x.m, y.m)
	if pmod(y.res-x.res, g) != 0 {
		return false
	}
	if x.m/g > aPosInf/y.m {
		return true // lcm overflows the domain: stay conservative
	}
	l := x.m / g * y.m
	m2g := y.m / g
	t0 := mulMod(pmod((y.res-x.res)/g, m2g), pmod(p, m2g), m2g)
	v0 := x.res + x.m*t0 // in [0, lcm): the canonical solution
	first := lo + pmod(v0-lo, l)
	return first <= hi
}

// mulMod computes (a*b) mod m without overflow, for a,b >= 0, m > 0.
func mulMod(a, b, m int64) int64 {
	if m == 1 {
		return 0
	}
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	_, rem := bits.Div64(hi%uint64(m), lo, uint64(m))
	return int64(rem)
}

// checkRaces reports L010 for unordered cross-thread access pairs on
// overlapping addresses with at least one plain store.
func (ia *interAnalysis) checkRaces() {
	if ia.threads < 2 {
		return
	}
	type pairKey struct{ a, b int }
	seen := map[pairKey]bool{}
	for i := 0; i < len(ia.accesses); i++ {
		for j := i; j < len(ia.accesses); j++ {
			A, B := ia.accesses[i], ia.accesses[j]
			if !A.store && !B.store {
				continue
			}
			if A.prio || B.prio {
				// Priority stores are the architecture's ordered-store
				// escape hatch: they interlock until the issuing slot
				// holds the highest priority.
				continue
			}
			if A.solo || B.solo || A.postKill || B.postKill {
				continue
			}
			k := pairKey{min64i(A.pc, B.pc), max64i(A.pc, B.pc)}
			if seen[k] {
				continue
			}
			if t1, t2, ok := ia.racePair(A, B, i == j); ok {
				seen[k] = true
				at, oth, tAt, tOth := A, B, t1, t2
				if B.pc > A.pc {
					at, oth, tAt, tOth = B, A, t2, t1
				}
				kind := func(st bool) string {
					if st {
						return "store"
					}
					return "load"
				}
				ia.a.reportf(CodeDataRace, at.pc,
					"possible data race: this %s (thread %d) and the %s at pc %d (thread %d) can access the same address with no ordering between them",
					kind(at.store), tAt, kind(oth.store), oth.pc, tOth)
			}
		}
	}
}

// racePair searches for a concrete thread-id pair under which the two
// accesses overlap with no happens-before edge.
func (ia *interAnalysis) racePair(A, B access, same bool) (int64, int64, bool) {
	t1lo, t1hi := max64(A.tid.lo, 0), min64(A.tid.hi, ia.threads-1)
	t2lo, t2hi := max64(B.tid.lo, 0), min64(B.tid.hi, ia.threads-1)
	for t1 := t1lo; t1 <= t1hi; t1++ {
		for t2 := t2lo; t2 <= t2hi; t2++ {
			if t1 == t2 || (same && t2 <= t1) {
				continue
			}
			av := A.addr.substTid(t1)
			bv := B.addr.substTid(t2)
			if ia.prog == nil && (!boundedVal(av) || !boundedVal(bv)) {
				// Text-only mode has no data image to bound addresses;
				// require a bounded witness to keep the check useful.
				continue
			}
			if !setsOverlap(av, bv) {
				continue
			}
			if ia.hbQueue(A, B, t1, t2) || ia.hbQueue(B, A, t2, t1) {
				continue
			}
			return t1, t2, true
		}
	}
	return 0, 0, false
}

// checkAddresses reports L011 (out of range), L012 (type-confused access)
// and L013 (dead store) from the collected access sets.
func (ia *interAnalysis) checkAddresses() {
	reported := map[int]bool{}
	for _, ac := range ia.accesses {
		folded := ia.foldAccess(ac)
		if folded.bot || reported[ac.pc] {
			continue
		}
		switch {
		case folded.hi < 0:
			reported[ac.pc] = true
			ia.a.reportf(CodeOOBAccess, ac.pc,
				"effective address is always negative (range [%d, %d])", folded.lo, folded.hi)
			continue
		case ia.memWords > 0 && folded.lo >= ia.memWords:
			reported[ac.pc] = true
			ia.a.reportf(CodeOOBAccess, ac.pc,
				"effective address range [%d, %d] lies entirely beyond the %d-word memory", folded.lo, folded.hi, ia.memWords)
			continue
		}
		if ia.checkTyped(ac, folded) {
			reported[ac.pc] = true
			continue
		}
		if ia.checkDeadStore(ac, folded) {
			reported[ac.pc] = true
		}
	}
}

// checkTyped reports L012 when every address an access can touch holds a
// word of the opposite static type (.word vs .float).
func (ia *interAnalysis) checkTyped(ac access, folded aval) bool {
	p := ia.prog
	if p == nil || len(p.WordTypes) == 0 || !boundedVal(folded) || folded.hi-folded.lo > 8192 {
		return false
	}
	want := asm.WordInt
	if ac.fp {
		want = asm.WordFloat
	}
	found := false
	n := 0
	for x := folded.lo; x <= folded.hi; x++ {
		if !folded.member(x) {
			continue
		}
		if n++; n > 4096 {
			return false
		}
		cls := p.WordType(x)
		if cls == asm.WordUnknown || cls == want {
			return false
		}
		found = true
	}
	if !found {
		return false
	}
	have, acc := "float (.float)", "integer"
	if ac.fp {
		have, acc = "integer (.word)", "FP"
	}
	ia.a.reportf(CodeTypedAccess, ac.pc,
		"every address this %s access can touch (range [%d, %d]) holds a %s word", acc, folded.lo, folded.hi, have)
	return true
}

// checkDeadStore reports L013 for a plain store whose address set no load
// in the whole program can observe and that lies outside every labelled
// data object (labelled data is the program's declared output surface).
func (ia *interAnalysis) checkDeadStore(ac access, folded aval) bool {
	if ia.prog == nil || !ac.store || ac.prio || !boundedVal(folded) {
		return false
	}
	for _, o := range ia.accesses {
		if o.store {
			continue
		}
		if setsOverlap(folded, ia.foldAccess(o)) {
			return false
		}
	}
	for _, sym := range ia.prog.DataSyms {
		if sym.Size <= 0 {
			continue
		}
		if setsOverlap(folded, aval{lo: sym.Addr, hi: sym.Addr + sym.Size - 1, m: 1}) {
			return false
		}
	}
	ia.a.reportf(CodeDeadStore, ac.pc,
		"dead store: no load can observe address range [%d, %d] and it lies outside every labelled data object", folded.lo, folded.hi)
	return true
}

// checkBranches reports L014 for conditional branches whose outcome is the
// same, and statically known, in every context that reaches them.
func (ia *interAnalysis) checkBranches() {
	pcs := make([]int, 0, len(ia.brMask))
	for pc := range ia.brMask {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	for _, pc := range pcs {
		switch ia.brMask[pc] {
		case 2:
			ia.a.reportf(CodeConstBranch, pc,
				"branch condition is statically always true: the branch is always taken")
		case 1:
			ia.a.reportf(CodeConstBranch, pc,
				"branch condition is statically always false: the branch never fires")
		}
	}
}

func min64i(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max64i(a, b int) int {
	if a > b {
		return a
	}
	return b
}
