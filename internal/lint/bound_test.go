package lint_test

import (
	"strings"
	"testing"

	"hirata/internal/asm"
	"hirata/internal/isa"
	"hirata/internal/lint"
)

func mustAssemble(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func scalarMachine() lint.Machine {
	return lint.Machine{ThreadSlots: 1, IssueWidth: 1}
}

// TestBoundsHalt: a bare halt is decoded at cycle 4 and nothing else
// constrains it, so every component bound is the startup floor.
func TestBoundsHalt(t *testing.T) {
	p := mustAssemble(t, "\thalt\n")
	b := lint.ComputeBounds(p.Text, nil, scalarMachine())
	if b.Bound != 4 {
		t.Fatalf("bound = %d, want 4 (startup floor)", b.Bound)
	}
	if b.Unbounded || b.KillReachable || b.MustFork {
		t.Fatalf("unexpected flags: %+v", b)
	}
}

// TestBoundsDependenceChain: a RAW chain through the integer multiplier
// must pay the producer's result latency plus the dependent-decode cycle.
func TestBoundsDependenceChain(t *testing.T) {
	p := mustAssemble(t, `
	li r1, 3
	mul r2, r1, r1
	mul r3, r2, r2
	halt
`)
	b := lint.ComputeBounds(p.Text, nil, scalarMachine())
	// li (an ADDI) -> mul: ALU result latency + 1; mul -> mul: IntMul
	// result latency + 1. The exact value is pinned so regressions in the
	// edge model surface here.
	want := int64(4 + (isa.ADDI.ResultLatency() + 1) + (isa.MUL.ResultLatency() + 1))
	if b.DepBound != want {
		t.Fatalf("dependence bound = %d, want %d", b.DepBound, want)
	}
	if b.Bound != want {
		t.Fatalf("bound = %d, want %d (dependence-limited)", b.Bound, want)
	}
}

// TestBoundsResourceLimited: independent loads queue on the single
// load/store unit (issue latency 2), so the resource bound dominates the
// dependence bound.
func TestBoundsResourceLimited(t *testing.T) {
	p := mustAssemble(t, `
	lw r1, 0(r0)
	lw r2, 1(r0)
	lw r3, 2(r0)
	lw r4, 3(r0)
	halt
`)
	b := lint.ComputeBounds(p.Text, nil, scalarMachine())
	want := int64(4 + 4*isa.LW.IssueLatency()) // 4 loads x issue latency / 1 unit
	if b.ResourceBound != want {
		t.Fatalf("resource bound = %d, want %d", b.ResourceBound, want)
	}
	if b.Bound != want {
		t.Fatalf("bound = %d, want %d (resource-limited)", b.Bound, want)
	}
	// Doubling the load/store units halves the class cycles.
	m := scalarMachine()
	m.Units[isa.UnitLoadStore] = 2
	b2 := lint.ComputeBounds(p.Text, nil, m)
	if b2.ResourceBound >= b.ResourceBound {
		t.Fatalf("resource bound with 2 LS units = %d, want < %d", b2.ResourceBound, b.ResourceBound)
	}
}

// TestBoundsCheapestPath: with a two-way branch the bound must follow the
// cheaper side — the expensive arm cannot raise a lower bound.
func TestBoundsCheapestPath(t *testing.T) {
	p := mustAssemble(t, `
	li r1, 1
	beqz r1, done
	mul r2, r1, r1
	mul r3, r2, r2
	mul r4, r3, r3
done:
	halt
`)
	b := lint.ComputeBounds(p.Text, nil, scalarMachine())
	// The cheap path is li; beqz -> halt: no mul latency may appear.
	if b.Bound >= int64(4+isa.MUL.ResultLatency()) {
		t.Fatalf("bound = %d follows the expensive arm", b.Bound)
	}
	if len(b.Threads) != 1 || b.Threads[0].Count != 3 {
		t.Fatalf("cheapest-path count = %+v, want 3 (li, beqz, halt)", b.Threads)
	}
}

// TestBoundsUnbounded: a loop with no reachable halt can never retire.
func TestBoundsUnbounded(t *testing.T) {
	p := mustAssemble(t, "loop:\n\tj loop\n")
	b := lint.ComputeBounds(p.Text, nil, scalarMachine())
	if !b.Unbounded {
		t.Fatal("expected Unbounded for a haltless loop")
	}
	if b.Bound < int64(1)<<59 {
		t.Fatalf("unbounded bound = %d, want saturated", b.Bound)
	}
}

// TestBoundsKillFloor: with a reachable kill only the last survivor
// provably runs to completion, so the combined bound drops to the
// cheapest thread, not the sum.
func TestBoundsKillFloor(t *testing.T) {
	src := `
	mul r2, r1, r1
	mul r3, r2, r2
	kill
	halt
`
	p := mustAssemble(t, src)
	b := lint.ComputeBounds(p.Text, []int{0, 3}, lint.Machine{ThreadSlots: 2, IssueWidth: 1})
	if !b.KillReachable {
		t.Fatal("kill not marked reachable")
	}
	// Entry at pc 3 is a bare halt; the floor must be its cost, 4.
	if b.DepBound != 4 {
		t.Fatalf("kill-floor dependence bound = %d, want 4", b.DepBound)
	}
}

// TestBoundsMustFork: when every terminating path of the entry crosses a
// ffork, the children's demand counts toward the whole-program census.
func TestBoundsMustFork(t *testing.T) {
	src := `
	ffork
	tid r1
	beqz r1, parent
	lw r2, 0(r0)
	halt
parent:
	lw r3, 1(r0)
	halt
`
	p := mustAssemble(t, src)
	b := lint.ComputeBounds(p.Text, []int{0}, lint.Machine{ThreadSlots: 4, IssueWidth: 1})
	if !b.MustFork {
		t.Fatal("must-fork not detected")
	}
	// Entry census >= 5 (ffork tid beqz lw halt on the cheap arm) plus 3
	// forked children at >= 4 each.
	if b.TotalCount < 5+3*4 {
		t.Fatalf("census = %d, want >= 17 with 3 forked children", b.TotalCount)
	}
}

// TestBoundsIssueWidth: a wider decoder relaxes the per-thread count
// term; the bound must not increase with width.
func TestBoundsIssueWidth(t *testing.T) {
	p := mustAssemble(t, `
	li r1, 1
	li r2, 2
	li r3, 3
	li r4, 4
	li r5, 5
	li r6, 6
	li r7, 7
	halt
`)
	m1 := scalarMachine()
	m2 := scalarMachine()
	m2.IssueWidth = 4
	b1 := lint.ComputeBounds(p.Text, nil, m1)
	b2 := lint.ComputeBounds(p.Text, nil, m2)
	if b2.Bound > b1.Bound {
		t.Fatalf("wider issue raised the bound: %d -> %d", b1.Bound, b2.Bound)
	}
	if b1.Threads[0].CountCycles != 7 {
		t.Fatalf("scalar count cycles = %d, want 7", b1.Threads[0].CountCycles)
	}
}

// TestBoundsQueueRegsSkipped: queue-mapped registers communicate through
// the FIFOs, so apparent RAW chains through them must not inflate the
// dependence span.
func TestBoundsQueueRegsSkipped(t *testing.T) {
	src := `
	qen r20, r21
	mul r21, r1, r1
	add r2, r20, r20
	halt
`
	p := mustAssemble(t, src)
	b := lint.ComputeBounds(p.Text, nil, scalarMachine())
	// Without the skip, mul(r21) -> read would chain the multiplier
	// latency; with it, only the shallow remainder is left.
	if b.DepBound >= int64(4+isa.MUL.ResultLatency()+1) {
		t.Fatalf("dependence bound = %d; queue registers not skipped", b.DepBound)
	}
}

// TestBoundsFormat smoke-tests the CPI-stack report rendering.
func TestBoundsFormat(t *testing.T) {
	p := mustAssemble(t, "\tlw r1, 0(r0)\n\tadd r2, r1, r1\n\thalt\n")
	b := lint.ComputeBounds(p.Text, nil, scalarMachine())
	out := b.Format()
	for _, want := range []string{"static lower bound", "dependence bound", "census", "class"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}
