package lint

import "encoding/json"

// FileFinding pairs a diagnostic with the file it was found in. It is the
// element type of hirata-lint's -json output and of SARIF conversion.
type FileFinding struct {
	File string     `json:"file"`
	Diag Diagnostic `json:"diag"`
}

// ruleHelp gives each code the one-line description embedded in SARIF
// rule metadata. The full catalogue lives in docs/LINT.md.
var ruleHelp = map[Code]string{
	CodeUninitRead:    "A register is read on some path before any instruction defines it.",
	CodeBadTarget:     "A branch, jump, or fork continuation targets an instruction outside the text section.",
	CodeSplitLI:       "A control transfer lands between a lih and the addi completing its li expansion.",
	CodeUnreachable:   "A basic block can never execute from any entry point.",
	CodeQueueProtocol: "A queue-register ring protocol violation (write to read side, read of write side, or stray qdis).",
	CodeQueueDeadlock: "A statically guaranteed queue-register deadlock.",
	CodeThreadControl: "Misuse of the thread-control instructions (ffork in a loop, bad setmode operand, unreachable kill).",
	CodeNoHalt:        "An execution path runs past the end of the text section without halt.",
	CodeReadonlyWrite: "An instruction names the hardwired-zero register r0 as its destination.",
	CodeDataRace:      "Two threads can access an overlapping address range, at least one writing, with no happens-before ordering.",
	CodeOOBAccess:     "A load or store whose effective-address range lies entirely outside data memory.",
	CodeTypedAccess:   "An integer access aimed entirely at float words, or an FP access aimed entirely at integer words.",
	CodeDeadStore:     "A store no load can observe that also lies outside every labelled data object.",
	CodeConstBranch:   "A conditional branch whose outcome the value analysis decides identically for every thread.",

	CodeQueueRingDeadlock: "A queue-register read whose producer slot on the ring provably never pushes (missing sends or a cyclic cross-thread wait).",
	CodeQueueOverflow:     "A queue-register write toward a consumer slot that provably never pops, once the depth-bounded FIFO must be full.",
	CodeUnboundedSpin:     "A wait loop whose exit condition polls memory no store in the program can reach; no thread can release it.",
}

// sarifLog and friends model the slice of SARIF 2.1.0 this tool emits:
// one run, one rule per diagnostic code, one result per finding.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool      sarifTool            `json:"tool"`
	Artifacts []sarifArtifactEntry `json:"artifacts,omitempty"`
	Results   []sarifResult        `json:"results"`
}

// sarifArtifactEntry is one run-level artifact: a file the run analysed,
// listed whether or not anything was found in it.
type sarifArtifactEntry struct {
	Location sarifArtifact `json:"location"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	Name             string    `json:"name"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI   string `json:"uri"`
	Index *int   `json:"index,omitempty"` // into the run's artifacts array
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

// MarshalSARIF renders findings as a SARIF 2.1.0 log, the interchange
// format consumed by code-scanning services. The artifact list is derived
// from the findings; use MarshalSARIFFiles to also list analysed files
// that came up clean.
func MarshalSARIF(findings []FileFinding) ([]byte, error) {
	var files []string
	seen := map[string]bool{}
	for _, f := range findings {
		if !seen[f.File] {
			seen[f.File] = true
			files = append(files, f.File)
		}
	}
	return MarshalSARIFFiles(files, findings)
}

// MarshalSARIFFiles renders one SARIF 2.1.0 run covering all the given
// files: every analysed file appears as a run-level artifact entry (clean
// files included, so code scanning knows they were covered), and each
// result references its file by artifact index. Every catalogued code is
// listed as a rule whether or not it fired, so rule metadata stays stable
// across runs.
func MarshalSARIFFiles(files []string, findings []FileFinding) ([]byte, error) {
	rules := make([]sarifRule, 0, len(ruleHelp))
	for _, c := range allCodes() {
		rules = append(rules, sarifRule{
			ID:               string(c),
			Name:             c.Name(),
			ShortDescription: sarifText{Text: ruleHelp[c]},
		})
	}
	artifacts := make([]sarifArtifactEntry, 0, len(files))
	index := map[string]int{}
	addFile := func(uri string) int {
		if i, ok := index[uri]; ok {
			return i
		}
		i := len(artifacts)
		index[uri] = i
		artifacts = append(artifacts, sarifArtifactEntry{Location: sarifArtifact{URI: uri}})
		return i
	}
	for _, f := range files {
		addFile(f)
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		idx := addFile(f.File)
		loc := sarifLocation{PhysicalLocation: sarifPhysical{
			ArtifactLocation: sarifArtifact{URI: f.File, Index: &idx},
		}}
		if f.Diag.Line > 0 {
			loc.PhysicalLocation.Region = &sarifRegion{StartLine: f.Diag.Line}
		}
		results = append(results, sarifResult{
			RuleID:    string(f.Diag.Code),
			Level:     "warning",
			Message:   sarifText{Text: f.Diag.String()},
			Locations: []sarifLocation{loc},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:      sarifTool{Driver: sarifDriver{Name: "hirata-lint", Rules: rules}},
			Artifacts: artifacts,
			Results:   results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

// allCodes returns the catalogue in numeric order.
func allCodes() []Code {
	return []Code{
		CodeUninitRead, CodeBadTarget, CodeSplitLI, CodeUnreachable,
		CodeQueueProtocol, CodeQueueDeadlock, CodeThreadControl,
		CodeNoHalt, CodeReadonlyWrite, CodeDataRace, CodeOOBAccess,
		CodeTypedAccess, CodeDeadStore, CodeConstBranch,
		CodeQueueRingDeadlock, CodeQueueOverflow, CodeUnboundedSpin,
	}
}
