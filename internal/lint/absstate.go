package lint

// This file defines the abstract machine state of the cross-thread
// analysis and its transfer function: one aval per integer register, the
// queue-mapping state, a bound on the thread identifier, recorded compare
// predicates (so a branch on `slt` refines the compared registers), and a
// register-difference matrix. The difference matrix is the small
// relational component: strength-reduced loops advance pointers in
// lockstep with a separate counter, and only the known difference
// `pointer - counter` lets the counter's loop bound carry over to the
// pointer's address range.

import (
	"hirata/internal/isa"
)

// predicate records that a register currently holds the boolean result of
// a compare instruction over operands that have not been redefined since.
type predicate struct {
	op       isa.Opcode // SLT, SLTI, SEQ, SNE or SGE; NOP = none
	rs1, rs2 isa.Reg
	imm      int64
	useImm   bool
}

// unknownDiff marks a register-difference entry with no information.
const unknownDiff = int64(-1) << 62

// astate is the abstract state at one program point. It is built from
// comparable arrays so fixpoint change detection is plain ==.
type astate struct {
	bot   bool
	regs  [32]aval // integer registers; FP values are not tracked
	q     qstate
	tid   tidRange
	preds [32]predicate
	// dv[i][j], when not unknownDiff, is the exact difference
	// regs[i] - regs[j] between the two registers' concrete values.
	dv [32][32]int64
	// rel[i][j], when its k is non-zero, is an exact scaled relation
	// regs[i] = k*regs[j] + d between concrete values. It captures
	// what dv's unit differences cannot: a pointer advanced in
	// lockstep with a counter (p += 4; i += 1), where only the
	// counter is compared against a loop limit. Facts are fitted at
	// join points from constant pairs (two points determine the
	// line) and dropped as soon as a join fails to confirm them.
	rel [32][32]affRel
}

// affRel is one affine fact regs[i] = k*regs[j] + d. k == 0 means no
// relation (the zero value).
type affRel struct {
	k int64
	d int64
}

const (
	relKMax = 1 << 20 // scale factors stay small (shifts, strides)
	relCMax = 1 << 40 // constants involved stay well clear of overflow
)

// relHolds reports whether st provably satisfies regs[i] = k*regs[j] + d,
// which requires both sides to be known constants.
func relHolds(st *astate, i, j int, rel affRel) bool {
	c, ok := st.regs[i].isConst()
	s, ok2 := st.regs[j].isConst()
	if !ok || !ok2 || s > relCMax || s < -relCMax || c > relCMax || c < -relCMax {
		return false
	}
	return c == rel.k*s+rel.d
}

// fitRel discovers regs[i] = k*regs[j] + d at a join where both sides
// hold i and j as constants differing across the join: two points
// determine the line, and later joins keep the relation only while it
// stays true.
func fitRel(a, b *astate, i, j int) affRel {
	ca, aok := a.regs[i].isConst()
	cb, bok := b.regs[i].isConst()
	if !aok || !bok || ca == cb || ca > relCMax || ca < -relCMax || cb > relCMax || cb < -relCMax {
		return affRel{}
	}
	sa, ok1 := a.regs[j].isConst()
	sb, ok2 := b.regs[j].isConst()
	if !ok1 || !ok2 || sa == sb || sa > relCMax || sa < -relCMax || sb > relCMax || sb < -relCMax {
		return affRel{}
	}
	num, den := ca-cb, sa-sb
	if num%den != 0 {
		return affRel{}
	}
	k := num / den
	if k == 0 || k > relKMax || k < -relKMax {
		return affRel{}
	}
	return affRel{k: k, d: ca - k*sa}
}

// joinRel keeps an affine fact across a join only when both sides
// provably satisfy it: equal facts, or a constant side on the line.
func joinRel(a, b *astate, i, j int) affRel {
	ra, rb := a.rel[i][j], b.rel[i][j]
	switch {
	case ra.k == 0 && rb.k == 0:
		return fitRel(a, b, i, j)
	case ra == rb:
		return ra
	case ra.k != 0 && relHolds(b, i, j, ra):
		return ra
	case rb.k != 0 && relHolds(a, i, j, rb):
		return rb
	}
	return affRel{}
}

// relTighten narrows an unbounded interval through any of the
// register's affine relations to a bounded source.
func relTighten(st *astate, r isa.Reg, v aval) aval {
	if v.bot || v.tc != 0 {
		return v
	}
	if v.lo > aNegInf && v.hi < aPosInf {
		return v
	}
	for j := 1; j < 32; j++ {
		rel := st.rel[r][j]
		if rel.k == 0 {
			continue
		}
		s := st.regs[j]
		if s.bot || s.tc != 0 || s.lo <= aNegInf || s.hi >= aPosInf {
			continue
		}
		lo := satAdd(satMul(rel.k, s.lo), rel.d)
		hi := satAdd(satMul(rel.k, s.hi), rel.d)
		if lo > hi {
			lo, hi = hi, lo
		}
		v.lo, v.hi = max64(v.lo, lo), min64(v.hi, hi)
	}
	return v.norm()
}

func botState() astate { return astate{bot: true} }

// freshRegsState is the state of a just-started thread: all registers
// zeroed by hardware (so every difference is exactly 0), no mappings.
func freshRegsState(tid tidRange) astate {
	var st astate
	for r := range st.regs {
		st.regs[r] = constVal(0)
	}
	st.q = unmappedQ()
	st.tid = tid
	return st
}

func joinState(a, b astate) astate {
	if a.bot {
		return b
	}
	if b.bot {
		return a
	}
	var out astate
	out.q = a.q.meet(b.q)
	out.tid = tidRange{min64(a.tid.lo, b.tid.lo), max64(a.tid.hi, b.tid.hi)}
	for r := 0; r < 32; r++ {
		out.regs[r] = joinVal(a.regs[r], b.regs[r], a.tid, b.tid)
		if a.preds[r] == b.preds[r] {
			out.preds[r] = a.preds[r]
		}
		for j := 0; j < 32; j++ {
			if a.dv[r][j] == b.dv[r][j] {
				out.dv[r][j] = a.dv[r][j]
			} else {
				out.dv[r][j] = unknownDiff
			}
			if j != r {
				out.rel[r][j] = joinRel(&a, &b, r, j)
			}
		}
	}
	return out
}

// widenState widens any interval bound that is still moving: first to the
// nearest comparison threshold (a constant some compare or branch in this
// run tested against — the candidate loop bounds), then to infinity. The
// threshold stop is what lets `bne counter, limit`-guarded loops settle at
// the limit, where the not-equal refinement can hold them. The other
// components (congruences, differences, predicates, tid bounds, queue
// state) live in finite-height lattices and converge on their own.
func (ic *interCtx) widenState(old, next astate) astate {
	if old.bot || next.bot {
		return next
	}
	for r := range next.regs {
		nv, ov := next.regs[r], old.regs[r]
		if nv.bot || ov.bot {
			continue
		}
		if nv.lo < ov.lo {
			nv.lo = ic.ia.widenLo(nv.lo)
		}
		if nv.hi > ov.hi {
			nv.hi = ic.ia.widenHi(nv.hi)
		}
		next.regs[r] = nv.norm()
	}
	// Widening is per-register, but the relational facts are exact: a
	// register widened to infinity while its loop partner settled at a
	// threshold (pointer vs counter) gets its bound back from the
	// difference matrix or an affine fact. This is a narrowing step and
	// cannot undo termination: the derived bound follows the partner's,
	// which the thresholds stabilise.
	for r := range next.regs {
		nv := dvTighten(&next, r)
		nv = relTighten(&next, isa.Reg(r), nv)
		next.regs[r] = nv
	}
	return next
}

// dvTighten narrows an unbounded interval through any exact difference
// to a bounded register with the same tid coefficient.
func dvTighten(st *astate, r int) aval {
	v := st.regs[r]
	if v.bot || (v.lo > aNegInf && v.hi < aPosInf) {
		return v
	}
	for j := 0; j < 32; j++ {
		d := st.dv[r][j]
		if j == r || d == unknownDiff {
			continue
		}
		w := st.regs[j]
		if w.bot || w.tc != v.tc {
			continue
		}
		if w.lo > aNegInf {
			v.lo = max64(v.lo, satAdd(w.lo, d))
		}
		if w.hi < aPosInf {
			v.hi = min64(v.hi, satAdd(w.hi, d))
		}
	}
	return v.norm()
}

// srcIsQueuePop reports whether reading r pops the incoming queue (or may,
// when the mapping state is unknown) instead of reading the register file.
func (ic *interCtx) srcIsQueuePop(st *astate, r isa.Reg) bool {
	if r.IsFP() {
		return st.q.inFP == qUnknown || (st.q.inFP != isa.NoReg && r == st.q.inFP)
	}
	if st.q.inInt == qUnknown {
		return ic.ia.a.qReadRegs.has(r)
	}
	return st.q.inInt != isa.NoReg && r == st.q.inInt
}

// srcVal reads an integer source register.
func (ic *interCtx) srcVal(st *astate, r isa.Reg) aval {
	if r == isa.R0 {
		return constVal(0)
	}
	if !r.Valid() || r.IsFP() {
		return topVal()
	}
	if ic.srcIsQueuePop(st, r) {
		return topVal() // the value came from another thread's queue push
	}
	return relTighten(st, r, st.regs[r])
}

// clearRegDeps invalidates predicates that mention d as an operand.
func clearRegDeps(st *astate, d isa.Reg) {
	st.preds[d] = predicate{}
	for r := range st.preds {
		p := &st.preds[r]
		if p.op != isa.NOP && (p.rs1 == d || (!p.useImm && p.rs2 == d)) {
			*p = predicate{}
		}
	}
}

// write sets integer destination d to v, respecting queue-write diversion
// and clearing all relational facts about d.
func (ic *interCtx) write(st *astate, d isa.Reg, v aval) {
	if !d.Valid() || d == isa.R0 || d.IsFP() {
		return
	}
	if st.q.outInt == qUnknown {
		v = topVal() // the write may or may not be diverted to the FIFO
	} else if st.q.outInt != isa.NoReg && d == st.q.outInt {
		return // diverted into the outgoing FIFO; register file untouched
	}
	st.regs[d] = v.norm()
	i := int(d)
	for j := 0; j < 32; j++ {
		st.dv[i][j], st.dv[j][i] = unknownDiff, unknownDiff
		st.rel[i][j], st.rel[j][i] = affRel{}, affRel{}
	}
	st.dv[i][i] = 0
	clearRegDeps(st, d)
}

// writeRel is write for d = s + c, additionally recording the difference
// relation (and its one-level closure through s's known differences).
func (ic *interCtx) writeRel(st *astate, d, s isa.Reg, c int64, v aval) {
	if !d.Valid() || d == isa.R0 || d.IsFP() {
		return
	}
	if st.q.outInt != isa.NoReg { // mapped or unknown: no reliable relation
		ic.write(st, d, v)
		return
	}
	if s.Valid() && !s.IsFP() && ic.srcIsQueuePop(st, s) {
		// d holds popped data + c, unrelated to the register file's s.
		ic.write(st, d, v)
		return
	}
	if d == s {
		// In-place increment: every known difference shifts by c,
		// and so does every affine fact touching d.
		st.regs[d] = v.norm()
		i := int(d)
		for j := 0; j < 32; j++ {
			if j == i {
				continue
			}
			if st.dv[i][j] != unknownDiff {
				st.dv[i][j] += c
			}
			if st.dv[j][i] != unknownDiff {
				st.dv[j][i] -= c
			}
			// rj = k*d_old + rd  becomes  rj = k*d_new + (rd - k*c),
			// and d_new = k*rj + (rd + c).
			if r := st.rel[j][i]; r.k != 0 {
				st.rel[j][i] = shiftRel(r, -satMul(r.k, c))
			}
			st.rel[i][j] = shiftRel(st.rel[i][j], c)
		}
		clearRegDeps(st, d)
		return
	}
	ic.write(st, d, v)
	if !s.Valid() || s.IsFP() {
		return
	}
	i, k := int(d), int(s)
	st.dv[i][k], st.dv[k][i] = c, -c
	for j := 0; j < 32; j++ {
		if j == i || j == k {
			continue
		}
		if st.dv[k][j] != unknownDiff {
			st.dv[i][j] = st.dv[k][j] + c
			st.dv[j][i] = -st.dv[i][j]
		}
	}
	// d = s + c composes with every affine fact about s.
	for j := 0; j < 32; j++ {
		if j == i || j == k {
			continue
		}
		st.rel[i][j] = shiftRel(st.rel[k][j], c)
	}
	st.rel[i][k] = affRel{k: 1, d: c}
}

// shiftRel adds c to a relation's constant term, dropping the fact if
// there is none or the term leaves the safe range.
func shiftRel(r affRel, c int64) affRel {
	if r.k == 0 {
		return affRel{}
	}
	r.d += c
	if r.d > relCMax || r.d < -relCMax {
		return affRel{}
	}
	return r
}

// writeScaled is write for d = s * k (k a positive constant),
// additionally recording the scaled relation so a later bound on s
// transfers to d.
func (ic *interCtx) writeScaled(st *astate, d, s isa.Reg, k int64, v aval) {
	ic.write(st, d, v)
	if st.q.outInt != isa.NoReg { // mapped or unknown: write may be diverted
		return
	}
	if !d.Valid() || d == isa.R0 || d.IsFP() || d == s {
		return
	}
	if !s.Valid() || s.IsFP() || s == isa.R0 || ic.srcIsQueuePop(st, s) {
		return
	}
	if k <= 0 || k > relKMax {
		return
	}
	st.rel[d][s] = affRel{k: k}
}

// clampOffset intersects the offset interval of register r with [lo, hi].
// When prop is set, the refinement propagates one level through known
// register differences to registers with the same tid coefficient.
func (st *astate) clampOffset(r isa.Reg, lo, hi int64, prop bool) {
	if st.bot {
		return
	}
	if r == isa.R0 {
		if lo > 0 || hi < 0 {
			*st = botState()
		}
		return
	}
	if !r.Valid() || r.IsFP() {
		return
	}
	v := st.regs[r]
	if v.bot {
		return
	}
	nl, nh := max64(v.lo, lo), min64(v.hi, hi)
	if nl == v.lo && nh == v.hi && !prop {
		// No change and no propagation to do. With prop set we still
		// walk the difference matrix: the bound can be fresh
		// information for a related register even when r itself was
		// already this tight (e.g. after widening only widened the
		// related register).
		return
	}
	v.lo, v.hi = nl, nh
	v = v.norm()
	if v.bot {
		*st = botState()
		return
	}
	st.regs[r] = v
	if !prop {
		return
	}
	for j := 0; j < 32; j++ {
		d := st.dv[j][r]
		if j == int(r) || d == unknownDiff || st.regs[j].tc != v.tc {
			continue
		}
		st.clampOffset(isa.Reg(j), satAdd(lo, d), satAdd(hi, d), false)
		if st.bot {
			return
		}
	}
}

// clampTid intersects the state's thread-identifier bound.
func (st *astate) clampTid(lo, hi int64) {
	if st.bot {
		return
	}
	nl, nh := max64(st.tid.lo, lo), min64(st.tid.hi, hi)
	if nl > nh {
		*st = botState()
		return
	}
	st.tid = tidRange{nl, nh}
}

// cmpKind is the comparison asserted along a refined CFG edge.
type cmpKind uint8

const (
	ckLT cmpKind = iota // x < y
	ckLE                // x <= y
	ckEQ                // x == y
	ckNE                // x != y
)

// isTidPure reports whether v is exactly tid + c.
func isTidPure(v aval) (c int64, ok bool) {
	if !v.bot && v.tc == 1 && v.lo == v.hi {
		return v.lo, true
	}
	return 0, false
}

// floorDiv and ceilDiv round a/b down resp. up (Go's / truncates).
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

// affineBounds returns the concrete value range of v (tc*tid + offset)
// under the state's tid bound.
func affineBounds(v aval, tr tidRange) (lo, hi int64) {
	a, b := satMul(v.tc, tr.lo), satMul(v.tc, tr.hi)
	if a > b {
		a, b = b, a
	}
	return satAdd(v.lo, a), satAdd(v.hi, b)
}

// clampAffineLE refines st under tc*tid + offset(r) <= bound, narrowing
// both the offset interval and the tid range.
func (st *astate) clampAffineLE(r isa.Reg, v aval, bound int64) {
	if st.bot || v.bot {
		return
	}
	tlo, thi := satMul(v.tc, st.tid.lo), satMul(v.tc, st.tid.hi)
	st.clampOffset(r, aNegInf, satAdd(bound, -min64(tlo, thi)), true)
	if st.bot || v.lo <= aNegInf || bound >= aPosInf {
		return
	}
	switch {
	case v.tc > 0:
		st.clampTid(st.tid.lo, floorDiv(bound-v.lo, v.tc))
	case v.tc < 0:
		st.clampTid(ceilDiv(bound-v.lo, v.tc), st.tid.hi)
	}
}

// clampAffineGE refines st under tc*tid + offset(r) >= bound.
func (st *astate) clampAffineGE(r isa.Reg, v aval, bound int64) {
	if st.bot || v.bot {
		return
	}
	tlo, thi := satMul(v.tc, st.tid.lo), satMul(v.tc, st.tid.hi)
	st.clampOffset(r, satAdd(bound, -max64(tlo, thi)), aPosInf, true)
	if st.bot || v.hi >= aPosInf || bound <= aNegInf {
		return
	}
	switch {
	case v.tc > 0:
		st.clampTid(ceilDiv(bound-v.hi, v.tc), st.tid.hi)
	case v.tc < 0:
		st.clampTid(st.tid.lo, floorDiv(bound-v.hi, v.tc))
	}
}

// assertCmp refines st under the assumption value(x) <kind> value(y).
// rx/ry are the registers to refine (isa.NoReg for constants).
func (ic *interCtx) assertCmp(st *astate, kind cmpKind, rx isa.Reg, vx aval, ry isa.Reg, vy aval) {
	if st.bot || vx.bot || vy.bot {
		return
	}
	switch {
	case vx.tc == vy.tc:
		// Equal tid terms cancel: the relation holds between offsets.
		switch kind {
		case ckLT:
			if vx.lo >= vy.hi {
				*st = botState()
				return
			}
			st.clampOffset(rx, aNegInf, satAdd(vy.hi, -1), true)
			st.clampOffset(ry, satAdd(vx.lo, 1), aPosInf, true)
		case ckLE:
			if vx.lo > vy.hi {
				*st = botState()
				return
			}
			st.clampOffset(rx, aNegInf, vy.hi, true)
			st.clampOffset(ry, vx.lo, aPosInf, true)
		case ckEQ:
			if vx.lo > vy.hi || vy.lo > vx.hi {
				*st = botState()
				return
			}
			st.clampOffset(rx, vy.lo, vy.hi, true)
			st.clampOffset(ry, vx.lo, vx.hi, true)
		case ckNE:
			if vx.lo == vx.hi && vy.lo == vy.hi && vx.lo == vy.lo {
				*st = botState()
				return
			}
			if c := vy.lo; vy.lo == vy.hi {
				if vx.lo == c {
					st.clampOffset(rx, c+1, aPosInf, true)
				} else if vx.hi == c {
					st.clampOffset(rx, aNegInf, c-1, true)
				}
			}
			if c := vx.lo; vx.lo == vx.hi {
				if vy.lo == c {
					st.clampOffset(ry, c+1, aPosInf, true)
				} else if vy.hi == c {
					st.clampOffset(ry, aNegInf, c-1, true)
				}
			}
		}
	case vy.tc == 0:
		// An affine value(x) = tc*tid + offset against a tid-free y.
		xlo, xhi := affineBounds(vx, st.tid)
		switch kind {
		case ckLT:
			if xlo >= vy.hi {
				*st = botState()
				return
			}
			st.clampAffineLE(rx, vx, satAdd(vy.hi, -1))
			st.clampOffset(ry, satAdd(xlo, 1), aPosInf, true)
		case ckLE:
			if xlo > vy.hi {
				*st = botState()
				return
			}
			st.clampAffineLE(rx, vx, vy.hi)
			st.clampOffset(ry, xlo, aPosInf, true)
		case ckEQ:
			if xlo > vy.hi || vy.lo > xhi {
				*st = botState()
				return
			}
			st.clampAffineLE(rx, vx, vy.hi)
			st.clampAffineGE(rx, vx, vy.lo)
			if !st.bot {
				st.clampOffset(ry, xlo, xhi, true)
			}
		case ckNE:
			c, ok := isTidPure(vx)
			if ok && vy.lo == vy.hi {
				t := vy.lo - c
				if st.tid.lo == t {
					st.clampTid(t+1, st.tid.hi)
				} else if st.tid.hi == t {
					st.clampTid(st.tid.lo, t-1)
				}
			}
		}
	case vx.tc == 0:
		// A tid-free x against an affine value(y) = tc*tid + offset.
		ylo, yhi := affineBounds(vy, st.tid)
		switch kind {
		case ckLT:
			if vx.lo >= yhi {
				*st = botState()
				return
			}
			st.clampAffineGE(ry, vy, satAdd(vx.lo, 1))
			st.clampOffset(rx, aNegInf, satAdd(yhi, -1), true)
		case ckLE:
			if vx.lo > yhi {
				*st = botState()
				return
			}
			st.clampAffineGE(ry, vy, vx.lo)
			st.clampOffset(rx, aNegInf, yhi, true)
		case ckEQ:
			if vx.lo > yhi || ylo > vx.hi {
				*st = botState()
				return
			}
			st.clampAffineLE(ry, vy, vx.hi)
			st.clampAffineGE(ry, vy, vx.lo)
			if !st.bot {
				st.clampOffset(rx, ylo, yhi, true)
			}
		case ckNE:
			c, ok := isTidPure(vy)
			if ok && vx.lo == vx.hi {
				t := vx.lo - c
				if st.tid.lo == t {
					st.clampTid(t+1, st.tid.hi)
				} else if st.tid.hi == t {
					st.clampTid(st.tid.lo, t-1)
				}
			}
		}
	}
}

// applyPred re-asserts the compare recorded for register r, given whether
// the compare's condition held (r was nonzero) or failed (r was zero).
func (ic *interCtx) applyPred(st *astate, r isa.Reg, holds bool) {
	if st.bot || !r.Valid() || r.IsFP() || r == isa.R0 {
		return
	}
	p := st.preds[r]
	if p.op == isa.NOP {
		return
	}
	vx := ic.srcVal(st, p.rs1)
	ry := p.rs2
	var vy aval
	if p.useImm {
		ry, vy = isa.NoReg, constVal(p.imm)
	} else {
		vy = ic.srcVal(st, ry)
	}
	switch p.op {
	case isa.SLT, isa.SLTI:
		if holds {
			ic.assertCmp(st, ckLT, p.rs1, vx, ry, vy)
		} else {
			ic.assertCmp(st, ckLE, ry, vy, p.rs1, vx)
		}
	case isa.SGE:
		if holds {
			ic.assertCmp(st, ckLE, ry, vy, p.rs1, vx)
		} else {
			ic.assertCmp(st, ckLT, p.rs1, vx, ry, vy)
		}
	case isa.SEQ:
		k := ckEQ
		if !holds {
			k = ckNE
		}
		ic.assertCmp(st, k, p.rs1, vx, ry, vy)
	case isa.SNE:
		k := ckNE
		if !holds {
			k = ckEQ
		}
		ic.assertCmp(st, k, p.rs1, vx, ry, vy)
	}
}

// refine narrows st along one outcome of a conditional branch.
func (ic *interCtx) refine(st *astate, in isa.Instruction, taken bool) {
	if st.bot {
		return
	}
	v1 := ic.srcVal(st, in.Rs1)
	switch in.Op {
	case isa.BEQZ, isa.BNEZ:
		zero := (in.Op == isa.BEQZ) == taken
		if zero {
			ic.assertCmp(st, ckEQ, in.Rs1, v1, isa.NoReg, constVal(0))
			ic.applyPred(st, in.Rs1, false)
		} else {
			ic.assertCmp(st, ckNE, in.Rs1, v1, isa.NoReg, constVal(0))
			ic.applyPred(st, in.Rs1, true)
		}
	case isa.BLTZ:
		if taken {
			ic.assertCmp(st, ckLE, in.Rs1, v1, isa.NoReg, constVal(-1))
		} else {
			ic.assertCmp(st, ckLE, isa.NoReg, constVal(0), in.Rs1, v1)
		}
	case isa.BGEZ:
		if taken {
			ic.assertCmp(st, ckLE, isa.NoReg, constVal(0), in.Rs1, v1)
		} else {
			ic.assertCmp(st, ckLE, in.Rs1, v1, isa.NoReg, constVal(-1))
		}
	case isa.BEQ, isa.BNE:
		v2 := ic.srcVal(st, in.Rs2)
		eq := (in.Op == isa.BEQ) == taken
		if eq {
			ic.assertCmp(st, ckEQ, in.Rs1, v1, in.Rs2, v2)
		} else {
			ic.assertCmp(st, ckNE, in.Rs1, v1, in.Rs2, v2)
		}
	}
}

// cmpEval abstractly evaluates a compare over a and b (SLT/SLTI share SLT).
func cmpEval(op isa.Opcode, a, b aval, tr tidRange) aval {
	if a.bot || b.bot {
		return botVal()
	}
	if a.tc != b.tc {
		a, b = a.foldTid(tr), b.foldTid(tr)
	}
	lt := -1 // a < b: 1 always, 0 never, -1 unknown
	switch {
	case a.hi < b.lo:
		lt = 1
	case a.lo >= b.hi:
		lt = 0
	}
	eq := -1 // a == b: 1 always, 0 never, -1 unknown
	switch {
	case a.lo == a.hi && b.lo == b.hi && a.lo == b.lo:
		eq = 1
	case a.hi < b.lo || b.hi < a.lo:
		eq = 0
	case a.lo == a.hi && !offsetView(b).member(a.lo):
		eq = 0
	case b.lo == b.hi && !offsetView(a).member(b.lo):
		eq = 0
	}
	bool01 := func(v int) aval {
		if v < 0 {
			return aval{lo: 0, hi: 1, m: 1}
		}
		return constVal(int64(v))
	}
	switch op {
	case isa.SLT, isa.SLTI:
		return bool01(lt)
	case isa.SGE:
		if lt < 0 {
			return bool01(-1)
		}
		return bool01(1 - lt)
	case isa.SEQ:
		return bool01(eq)
	case isa.SNE:
		if eq < 0 {
			return bool01(-1)
		}
		return bool01(1 - eq)
	}
	return aval{lo: 0, hi: 1, m: 1}
}

// offsetView strips the tid coefficient for membership tests where equal
// tid terms have already cancelled.
func offsetView(v aval) aval {
	v.tc = 0
	return v
}

// branchOutcome decides a conditional branch under st: 1 always taken,
// 0 never taken, -1 undecidable.
func (ic *interCtx) branchOutcome(st *astate, in isa.Instruction) int {
	v1 := ic.srcVal(st, in.Rs1)
	var r aval
	switch in.Op {
	case isa.BEQZ:
		r = cmpEval(isa.SEQ, v1, constVal(0), st.tid)
	case isa.BNEZ:
		r = cmpEval(isa.SNE, v1, constVal(0), st.tid)
	case isa.BLTZ:
		r = cmpEval(isa.SLT, v1, constVal(0), st.tid)
	case isa.BGEZ:
		r = cmpEval(isa.SGE, v1, constVal(0), st.tid)
	case isa.BEQ:
		r = cmpEval(isa.SEQ, v1, ic.srcVal(st, in.Rs2), st.tid)
	case isa.BNE:
		r = cmpEval(isa.SNE, v1, ic.srcVal(st, in.Rs2), st.tid)
	default:
		return -1
	}
	if c, ok := r.isConst(); ok {
		return int(c)
	}
	return -1
}

// step advances st across the instruction at pc.
func (ic *interCtx) step(st *astate, pc int) {
	if st.bot {
		return
	}
	in := ic.ia.a.text[pc]
	imm := int64(in.Imm)
	switch in.Op {
	case isa.ADD:
		a, b := ic.srcVal(st, in.Rs1), ic.srcVal(st, in.Rs2)
		v := addVals(a, b)
		if c, ok := b.isConst(); ok {
			ic.writeRel(st, in.Rd, in.Rs1, c, v)
		} else if c, ok := a.isConst(); ok {
			ic.writeRel(st, in.Rd, in.Rs2, c, v)
		} else {
			ic.write(st, in.Rd, v)
		}
	case isa.SUB:
		a, b := ic.srcVal(st, in.Rs1), ic.srcVal(st, in.Rs2)
		v := subVals(a, b)
		if c, ok := b.isConst(); ok {
			ic.writeRel(st, in.Rd, in.Rs1, -c, v)
		} else {
			ic.write(st, in.Rd, v)
		}
	case isa.ADDI:
		ic.writeRel(st, in.Rd, in.Rs1, imm, addVals(ic.srcVal(st, in.Rs1), constVal(imm)))
	case isa.LIH:
		ic.write(st, in.Rd, constVal(imm<<14))
	case isa.AND, isa.OR, isa.XOR:
		a, b := ic.srcVal(st, in.Rs1), ic.srcVal(st, in.Rs2)
		v := topVal()
		ca, aok := a.isConst()
		cb, bok := b.isConst()
		switch {
		case aok && bok:
			switch in.Op {
			case isa.AND:
				v = constVal(ca & cb)
			case isa.OR:
				v = constVal(ca | cb)
			case isa.XOR:
				v = constVal(ca ^ cb)
			}
		case in.Op == isa.AND && a.tc == 0 && b.tc == 0 && a.lo >= 0 && b.lo >= 0:
			v = aval{lo: 0, hi: min64(a.hi, b.hi), m: 1}.norm()
		}
		ic.write(st, in.Rd, v)
	case isa.ANDI:
		v := topVal()
		a := ic.srcVal(st, in.Rs1)
		if c, ok := a.isConst(); ok {
			v = constVal(c & imm)
		} else if imm >= 0 {
			v = aval{lo: 0, hi: imm, m: 1}.norm()
		}
		ic.write(st, in.Rd, v)
	case isa.ORI, isa.XORI:
		v := topVal()
		if c, ok := ic.srcVal(st, in.Rs1).isConst(); ok {
			if in.Op == isa.ORI {
				v = constVal(c | imm)
			} else {
				v = constVal(c ^ imm)
			}
		}
		ic.write(st, in.Rd, v)
	case isa.SLT, isa.SEQ, isa.SNE, isa.SGE:
		a, b := ic.srcVal(st, in.Rs1), ic.srcVal(st, in.Rs2)
		ic.ia.noteCmp(a)
		ic.ia.noteCmp(b)
		pin := in
		pin.Rs1 = aliasReg(st, pin.Rs1, pin.Rd)
		pin.Rs2 = aliasReg(st, pin.Rs2, pin.Rd)
		ic.write(st, in.Rd, cmpEval(in.Op, a, b, st.tid))
		ic.recordPred(st, pin, false)
	case isa.SLTI:
		a := ic.srcVal(st, in.Rs1)
		ic.ia.noteCmp(a)
		ic.ia.noteCmp(constVal(imm))
		pin := in
		pin.Rs1 = aliasReg(st, pin.Rs1, pin.Rd)
		ic.write(st, in.Rd, cmpEval(isa.SLT, a, constVal(imm), st.tid))
		ic.recordPred(st, pin, true)
	case isa.SLL, isa.SRL, isa.SRA:
		a, b := ic.srcVal(st, in.Rs1), ic.srcVal(st, in.Rs2)
		v := topVal()
		if sh, ok := b.isConst(); ok {
			v = shiftVal(in.Op, a, sh)
		}
		ic.write(st, in.Rd, v)
	case isa.SLLI:
		v := shiftVal(isa.SLL, ic.srcVal(st, in.Rs1), imm)
		if imm > 0 && imm < 63 {
			ic.writeScaled(st, in.Rd, in.Rs1, 1<<uint(imm), v)
		} else {
			ic.write(st, in.Rd, v)
		}
	case isa.SRLI:
		ic.write(st, in.Rd, shiftVal(isa.SRL, ic.srcVal(st, in.Rs1), imm))
	case isa.SRAI:
		ic.write(st, in.Rd, shiftVal(isa.SRA, ic.srcVal(st, in.Rs1), imm))
	case isa.MUL:
		a, b := ic.srcVal(st, in.Rs1), ic.srcVal(st, in.Rs2)
		if c, ok := b.isConst(); ok {
			ic.writeScaled(st, in.Rd, in.Rs1, c, mulConst(a, c))
		} else if c, ok := a.isConst(); ok {
			ic.writeScaled(st, in.Rd, in.Rs2, c, mulConst(b, c))
		} else if a.tc == 0 && b.tc == 0 && a.lo >= 0 && b.lo >= 0 {
			ic.write(st, in.Rd, aval{lo: satMul(a.lo, b.lo), hi: satMul(a.hi, b.hi), m: 1}.norm())
		} else {
			ic.write(st, in.Rd, topVal())
		}
	case isa.DIV:
		v := topVal()
		if c, ok := ic.srcVal(st, in.Rs2).isConst(); ok && c > 0 {
			v = divConst(ic.srcVal(st, in.Rs1).foldTid(st.tid), c)
		}
		ic.write(st, in.Rd, v)
	case isa.REM:
		v := topVal()
		if c, ok := ic.srcVal(st, in.Rs2).isConst(); ok && c > 0 {
			v = remConst(ic.srcVal(st, in.Rs1).foldTid(st.tid), c)
		}
		ic.write(st, in.Rd, v)
	case isa.FEQ, isa.FLT, isa.FLE:
		ic.write(st, in.Rd, aval{lo: 0, hi: 1, m: 1})
	case isa.FTOI:
		ic.write(st, in.Rd, topVal())
	case isa.LW:
		addr := addVals(ic.srcVal(st, in.Rs1), constVal(imm))
		ic.write(st, in.Rd, ic.ia.loadVal(addr))
	case isa.JAL:
		ic.write(st, in.Rd, constVal(int64(pc)+1))
	case isa.TID:
		ic.write(st, in.Rd, aval{tc: 1, m: 1})
	case isa.QEN:
		st.q.inInt, st.q.outInt = in.Rs1, in.Rs2
	case isa.QENF:
		st.q.inFP, st.q.outFP = in.Rs1, in.Rs2
	case isa.BEQ, isa.BNE:
		ic.ia.noteCmp(ic.srcVal(st, in.Rs1))
		ic.ia.noteCmp(ic.srcVal(st, in.Rs2))
	case isa.BEQZ, isa.BNEZ, isa.BLTZ, isa.BGEZ:
		ic.ia.noteCmp(constVal(0))
	case isa.QDIS:
		st.q = unmappedQ()
	}
}

// aliasReg returns r unless it equals avoid, in which case it returns
// another register holding exactly the same value (a zero entry in the
// difference matrix) or NoReg. Compare instructions that overwrite their
// own operand (slt r14, r14, r15 — the compiler's accumulator idiom) use
// this to record the predicate against the surviving copy; the caller
// must resolve aliases before the write clears the destination's facts.
func aliasReg(st *astate, r, avoid isa.Reg) isa.Reg {
	if r != avoid || !r.Valid() || r.IsFP() {
		return r
	}
	for j := range st.regs {
		if isa.Reg(j) != avoid && st.dv[r][j] == 0 {
			return isa.Reg(j)
		}
	}
	return isa.NoReg
}

// recordPred remembers the compare at in for later branch refinement,
// unless an operand's value came through the queue (popped data is not the
// register file's value) or the destination overlaps an operand.
func (ic *interCtx) recordPred(st *astate, in isa.Instruction, useImm bool) {
	d := in.Rd
	if st.bot || !d.Valid() || d == isa.R0 || d.IsFP() {
		return
	}
	if st.q.outInt != isa.NoReg { // write may be diverted
		return
	}
	if !in.Rs1.Valid() || (!useImm && !in.Rs2.Valid()) {
		return // operand destroyed by the write with no surviving alias
	}
	if d == in.Rs1 || (!useImm && d == in.Rs2) {
		return
	}
	if ic.srcIsQueuePop(st, in.Rs1) || (!useImm && ic.srcIsQueuePop(st, in.Rs2)) {
		return
	}
	op := in.Op
	if op == isa.SLTI {
		op = isa.SLT
	}
	st.preds[d] = predicate{op: op, rs1: in.Rs1, rs2: in.Rs2, imm: int64(in.Imm), useImm: useImm}
}

// shiftVal evaluates a shift by a known amount.
func shiftVal(op isa.Opcode, a aval, sh int64) aval {
	if a.bot {
		return a
	}
	if sh < 0 || sh > 62 {
		return topVal()
	}
	switch op {
	case isa.SLL:
		if sh >= 43 {
			return topVal()
		}
		return mulConst(a, int64(1)<<uint(sh))
	case isa.SRA, isa.SRL:
		if op == isa.SRL && a.lo < 0 {
			return topVal() // unsigned reinterpretation of a negative value
		}
		if a.tc != 0 {
			return topVal()
		}
		out := aval{lo: a.lo, hi: a.hi, m: 1}
		if out.lo > aNegInf {
			out.lo = a.lo >> uint(sh)
		}
		if out.hi < aPosInf {
			out.hi = a.hi >> uint(sh)
		}
		return out.norm()
	}
	return topVal()
}

// edgeState transforms a block's out-state across one CFG edge. last is
// the source block's final instruction (for branch refinement).
func (ic *interCtx) edgeState(out astate, e edge, last isa.Instruction) astate {
	if out.bot {
		return out
	}
	switch e.kind {
	case edgeFork:
		// The continuation runs in the forking thread and in every child;
		// children start with zeroed banks and any tid in [0, T-1].
		child := freshRegsState(tidRange{0, ic.ia.threads - 1})
		return joinState(out, child)
	case edgeReturn:
		ns := out
		for r := 1; r < 32; r++ {
			ns.regs[r] = topVal()
		}
		ns.regs[0] = constVal(0)
		for i := 0; i < 32; i++ {
			for j := 0; j < 32; j++ {
				ns.dv[i][j] = unknownDiff
			}
			ns.dv[i][i] = 0
			ns.preds[i] = predicate{}
			ns.rel[i] = [32]affRel{}
		}
		ns.q = unknownQ()
		return ns
	}
	if e.br != brNone && last.Op.IsConditionalBranch() {
		ns := out
		ic.refine(&ns, last, e.br == brTaken)
		return ns
	}
	return out
}
