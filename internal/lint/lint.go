// Package lint statically verifies assembled hirata programs before they
// run on the simulator. It builds a control-flow graph per thread entry
// point, runs a must-defined register and queue-mapping dataflow to
// fixpoint, and reports protocol violations (queue-register ring misuse,
// uninitialised reads, unreachable code, bad branch targets, guaranteed
// queue deadlocks, thread-control misuse) as positioned diagnostics.
// With Config.InterThread it additionally runs a whole-program abstract
// interpretation across all thread entries — value ranges with a
// congruence (stride) component and a symbolic thread-id term, plus a
// happens-before relation from fork/kill structure and the queue-register
// ring — reporting data races, address-safety violations, dead stores,
// and statically decided branches (L010..L014).
//
// The diagnostic catalogue (L001..L014) is documented in docs/LINT.md.
package lint

import (
	"fmt"

	"hirata/internal/asm"
	"hirata/internal/isa"
)

// Config tunes the analysis.
type Config struct {
	// Entries are the thread-start PCs (RunMT's startPCs). Empty means a
	// single thread starting at PC 0.
	Entries []int
	// QueueDepth is the simulated queue-register FIFO depth, used by the
	// deadlock check. Zero means the simulator default of 1.
	QueueDepth int
	// InterThread enables the cross-thread abstract interpretation
	// (value ranges, happens-before, diagnostics L010..L014).
	InterThread bool
	// Deadlock enables the queue-protocol deadlock verification (L015,
	// L016) and — together with InterThread — the unbounded-spin check
	// (L017). See deadlock.go.
	Deadlock bool
	// ThreadSlots is the number of logical processors the machine runs
	// (how many threads ffork spawns). Zero means the simulator default
	// of 4. A program can override it with `.lint slots N`.
	ThreadSlots int
	// MemWords is the data-memory size in words for the out-of-range
	// check (L011). Zero means unknown: only provably negative addresses
	// are flagged.
	MemWords int64
	// Allow suppresses the listed diagnostic codes. Programs can extend
	// it with `.lint allow CODE...` directives.
	Allow []Code
}

func (c Config) entries() []int {
	if len(c.Entries) == 0 {
		return []int{0}
	}
	return c.Entries
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 1
	}
	return c.QueueDepth
}

func (c Config) threadSlots() int {
	if c.ThreadSlots <= 0 {
		return 4
	}
	return c.ThreadSlots
}

// analysis carries the shared state of one Analyze run.
type analysis struct {
	text  []isa.Instruction
	lines func(pc int) int // nil when no source map is available
	cfg   Config
	g     *cfg
	prog  *asm.Program // nil for AnalyzeText (no data image / symbols)

	// qReadRegs holds every register named as the read side of any
	// qen/qenf in the program; uninitialised-read reports are suppressed
	// for them (a pop supplies the value).
	qReadRegs regset

	queueReads  []queueUse
	queueWrites []queueUse

	diags []Diagnostic
}

// Analyze verifies an assembled program with default configuration.
func Analyze(p *asm.Program) []Diagnostic {
	return AnalyzeProgram(p, Config{})
}

// AnalyzeProgram verifies an assembled program, attaching source lines from
// the program's line map to each diagnostic. The program's own `.lint`
// directives are honoured: `.lint slots N` sets ThreadSlots when the
// config leaves it unset, and `.lint allow CODE...` extends Allow.
func AnalyzeProgram(p *asm.Program, cfg Config) []Diagnostic {
	if cfg.ThreadSlots == 0 && p.LintSlots > 0 {
		cfg.ThreadSlots = p.LintSlots
	}
	for _, c := range p.LintAllow {
		cfg.Allow = append(cfg.Allow, Code(c))
	}
	a := &analysis{text: p.Text, lines: p.Line, cfg: cfg, prog: p}
	return a.run()
}

// AnalyzeText verifies a bare instruction sequence (no source positions).
func AnalyzeText(text []isa.Instruction, cfg Config) []Diagnostic {
	a := &analysis{text: text, cfg: cfg}
	return a.run()
}

func (a *analysis) run() []Diagnostic {
	if len(a.text) == 0 {
		return nil
	}
	for _, in := range a.text {
		switch in.Op {
		case isa.QEN, isa.QENF:
			if in.Rs1.Valid() {
				a.qReadRegs |= regbit(in.Rs1)
			}
		}
	}
	a.checkEntries()
	a.g = buildCFG(a.text, a.cfg.entries())
	a.g.markReachable()

	a.checkTargets()
	a.checkUnreachable()
	a.runDataflow()
	a.checkQueueBalance()
	a.checkThreadControl()
	a.checkFallOff()
	if a.cfg.Deadlock {
		a.runDeadlock()
	}
	if a.cfg.InterThread {
		a.runInterThread()
	}

	if len(a.cfg.Allow) > 0 {
		allowed := make(map[Code]bool, len(a.cfg.Allow))
		for _, c := range a.cfg.Allow {
			allowed[c] = true
		}
		kept := a.diags[:0]
		for _, d := range a.diags {
			if !allowed[d.Code] {
				kept = append(kept, d)
			}
		}
		a.diags = kept
	}
	sortDiags(a.diags)
	return a.diags
}

func (a *analysis) reportf(code Code, pc int, format string, args ...any) {
	d := Diagnostic{Code: code, Name: code.Name(), PC: pc, Msg: fmt.Sprintf(format, args...)}
	if pc >= 0 && pc < len(a.text) {
		d.Ins = a.text[pc].String()
		if a.lines != nil {
			d.Line = a.lines(pc)
		}
	}
	a.diags = append(a.diags, d)
}

// checkEntries flags thread entry points outside the text section.
func (a *analysis) checkEntries() {
	for _, e := range a.cfg.entries() {
		if e < 0 || e >= len(a.text) {
			a.reportf(CodeBadTarget, -1,
				"thread entry point %d is outside the text section [0, %d)", e, len(a.text))
		}
	}
}

// checkTargets flags control transfers whose static target is outside the
// text section (L002) and transfers landing between the two halves of an
// expanded li (L003).
func (a *analysis) checkTargets() {
	n := int64(len(a.text))
	splitsLI := func(t int64) bool {
		if t <= 0 || t >= n {
			return false
		}
		mid, prev := a.text[t], a.text[t-1]
		return mid.Op == isa.ADDI && mid.Rd == mid.Rs1 &&
			prev.Op == isa.LIH && prev.Rd == mid.Rd
	}
	for pc, in := range a.text {
		var target int64
		var isTransfer bool
		if t, ok := controlTarget(in); ok {
			target, isTransfer = t, true
			if t < 0 || t >= n {
				a.reportf(CodeBadTarget, pc,
					"%s targets instruction %d, outside the text section [0, %d)", in.Op, t, n)
			}
		}
		if in.Op == isa.FFORK {
			target, isTransfer = int64(pc)+1, true
			if target >= n {
				a.reportf(CodeBadTarget, pc,
					"ffork at the last instruction: forked children would start at %d, outside the text section", target)
			}
		}
		if isTransfer && splitsLI(target) {
			a.reportf(CodeSplitLI, pc,
				"%s lands between `lih` and its completing `addi` (instruction %d), executing half of an expanded li", in.Op, target)
		}
	}
}

// checkUnreachable flags basic blocks no entry point can reach, skipping
// blocks that consist only of nop/halt padding (compilers emit a trailing
// halt after infinite loops).
func (a *analysis) checkUnreachable() {
	for _, b := range a.g.blocks {
		if b.reachable {
			continue
		}
		padding := true
		for pc := b.start; pc < b.end; pc++ {
			if op := a.text[pc].Op; op != isa.NOP && op != isa.HALT {
				padding = false
				break
			}
		}
		if !padding {
			a.reportf(CodeUnreachable, b.start,
				"instructions %d..%d are unreachable from every thread entry point", b.start, b.end-1)
		}
	}
}

// reaches reports whether execution can flow from block `from` to block
// `to` through one or more edges.
func (g *cfg) reaches(from, to int) bool {
	seen := make([]bool, len(g.blocks))
	stack := []int{}
	for _, e := range g.blocks[from].succs {
		if !seen[e.to] {
			seen[e.to] = true
			stack = append(stack, e.to)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		for _, e := range g.blocks[n].succs {
			if !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return false
}

// checkQueueBalance flags statically guaranteed queue deadlocks (L006).
// It only runs for single-threaded programs (one entry, no ffork): with
// multiple threads the ring connects different slots' register banks, and
// produce/consume matching is a cross-thread property this analysis cannot
// see. Reads with no reachable producer interlock the decode stage forever;
// writes with no consumer fill the depth-bounded FIFO and stall.
func (a *analysis) checkQueueBalance() {
	if a.g.hasFork || len(a.cfg.entries()) != 1 {
		return
	}
	for _, fp := range []bool{false, true} {
		class := "integer"
		if fp {
			class = "FP"
		}
		var reads, writes []queueUse
		for _, u := range a.queueReads {
			if u.fp == fp {
				reads = append(reads, u)
			}
		}
		for _, u := range a.queueWrites {
			if u.fp == fp {
				writes = append(writes, u)
			}
		}
		switch {
		case len(reads) > 0 && len(writes) == 0:
			for _, u := range reads {
				a.reportf(CodeQueueDeadlock, u.pc,
					"%s queue-register read has no producer anywhere in this single-threaded program; the decode unit interlocks forever", class)
			}
		case len(writes) > 0 && len(reads) == 0:
			depth := a.cfg.queueDepth()
			for _, u := range writes {
				bi := a.g.blockAt[u.pc]
				prior := 0
				for _, w := range writes {
					wb := a.g.blockAt[w.pc]
					if (wb == bi && w.pc < u.pc) || (wb != bi && a.g.reaches(wb, bi)) {
						prior++
					}
				}
				if a.g.inCycle(bi) || prior >= depth {
					a.reportf(CodeQueueDeadlock, u.pc,
						"%s queue-register write has no consumer; the depth-%d FIFO fills and this write stalls forever", class, depth)
				}
			}
		}
	}
}

// checkThreadControl flags ffork inside a loop (forked children re-execute
// the fork) and kill in a program that can never have more than one thread.
func (a *analysis) checkThreadControl() {
	singleThreaded := !a.g.hasFork && len(a.cfg.entries()) == 1
	for pc, in := range a.text {
		bi := a.g.blockAt[pc]
		if !a.g.blocks[bi].reachable {
			continue
		}
		switch in.Op {
		case isa.FFORK:
			if a.g.inCycle(bi) {
				a.reportf(CodeThreadControl, pc,
					"ffork lies on a control-flow cycle: forked children reach the ffork again and re-fork")
			}
		case isa.KILL:
			if singleThreaded {
				a.reportf(CodeThreadControl, pc,
					"kill in a single-threaded program (no ffork, one entry point) terminates the only thread; use halt")
			}
		}
	}
}

// checkFallOff flags execution paths that run past the end of the text
// section without halting (L008): the slot never retires and the
// simulation spins until MaxCycles.
func (a *analysis) checkFallOff() {
	for _, b := range a.g.blocks {
		if !b.reachable || b.end != len(a.text) {
			continue
		}
		last := a.text[b.end-1]
		fallsOff := !endsStream(last.Op)
		if last.Op == isa.JAL && !a.g.hasJR {
			// The call never returns; the fall-through past the end is
			// unreachable.
			fallsOff = false
		}
		if fallsOff {
			a.reportf(CodeNoHalt, b.end-1,
				"execution can run past the end of the text section without halt; the thread slot never retires")
		}
	}
}
