package lint

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Code identifies one diagnostic kind. Codes are stable across releases;
// docs/LINT.md catalogues every code with a minimal triggering example.
type Code string

// The diagnostic catalogue.
const (
	// CodeUninitRead: a register is read on some path before any
	// instruction defines it. Registers physically reset to zero, so the
	// program is deterministic — but reading a never-written register is
	// almost always a forgotten initialisation or a value that only the
	// forking thread (not the forked children) computed.
	CodeUninitRead Code = "L001"
	// CodeBadTarget: a branch, jump, or fast-fork continuation targets an
	// instruction index outside the text section.
	CodeBadTarget Code = "L002"
	// CodeSplitLI: a control transfer lands between a `lih` and the
	// `addi` that completes its `li` expansion, executing half of a
	// constant load.
	CodeSplitLI Code = "L003"
	// CodeUnreachable: a basic block can never execute from any entry
	// point (dead code; usually a mislabelled branch).
	CodeUnreachable Code = "L004"
	// CodeQueueProtocol: a queue-register ring protocol violation — a
	// write to the read-mapped register (the value is diverted to the
	// register file and can never be read back while the mapping is
	// active), a read of the write-mapped register (returns the stale
	// register-file value, not queue data), or `qdis` with no active
	// mapping.
	CodeQueueProtocol Code = "L005"
	// CodeQueueDeadlock: a statically guaranteed queue deadlock — in a
	// single-threaded program, a queue-register read with no reachable
	// producer interlocks the decode unit forever, and unmatched
	// queue-register writes fill the FIFO and stall.
	CodeQueueDeadlock Code = "L006"
	// CodeThreadControl: misuse of the thread-control instructions —
	// `ffork` inside a loop (forked children re-execute the fork),
	// `setmode` with an operand other than 0 or 1, or `kill` in a
	// program that can never have more than one thread.
	CodeThreadControl Code = "L007"
	// CodeNoHalt: an execution path runs past the end of the text
	// section without `halt`; the thread slot never retires and the
	// simulation spins until MaxCycles.
	CodeNoHalt Code = "L008"
	// CodeReadonlyWrite: an instruction names r0 — the hardwired-zero
	// register — as its destination; the result is silently discarded.
	CodeReadonlyWrite Code = "L009"
	// CodeDataRace: two threads can access an overlapping address range
	// with at least one plain store and no happens-before ordering
	// (ffork/kill structure, priority stores, or a queue-register
	// produce/consume chain). Cross-thread analysis (Config.InterThread).
	CodeDataRace Code = "L010"
	// CodeOOBAccess: a load or store whose effective-address range lies
	// entirely outside the data memory (negative, or beyond the
	// configured memory size). Cross-thread analysis.
	CodeOOBAccess Code = "L011"
	// CodeTypedAccess: an integer access (lw/sw/swp) whose whole address
	// range holds .float words, or an FP access (flw/fsw/fswp) aimed
	// entirely at .word data — the word-level analogue of a misaligned
	// access on a byte-addressed machine. Cross-thread analysis.
	CodeTypedAccess Code = "L012"
	// CodeDeadStore: a store whose address range no load in the program
	// can observe and which lies outside every labelled data object
	// (labelled data is the declared output surface). Cross-thread
	// analysis.
	CodeDeadStore Code = "L013"
	// CodeConstBranch: a conditional branch whose outcome the value
	// analysis decides identically for every thread and context —
	// usually a degenerate workload or a forgotten initialisation.
	// Cross-thread analysis.
	CodeConstBranch Code = "L014"
	// CodeQueueRingDeadlock: a queue-register read whose producer slot on
	// the ring provably never pushes — either no reachable send, or a
	// cyclic cross-thread wait where every slot reads before writing.
	// The blocked read interlocks the decode stage forever. Deadlock
	// analysis (Config.Deadlock).
	CodeQueueRingDeadlock Code = "L015"
	// CodeQueueOverflow: a queue-register write toward a consumer slot
	// that provably never pops, at a point where the depth-bounded FIFO
	// must already be full (depth earlier writes on some path, or the
	// write lies on a cycle). The push stalls forever. Deadlock analysis.
	CodeQueueOverflow Code = "L016"
	// CodeUnboundedSpin: a wait loop whose every exit condition is
	// invariant across iterations and polls memory no store in the whole
	// program can reach — no thread can ever release the spin. Deadlock
	// analysis (requires Config.InterThread).
	CodeUnboundedSpin Code = "L017"
)

// codeNames maps each code to its short slug.
var codeNames = map[Code]string{
	CodeUninitRead:    "uninit-read",
	CodeBadTarget:     "bad-target",
	CodeSplitLI:       "split-li",
	CodeUnreachable:   "unreachable",
	CodeQueueProtocol: "queue-protocol",
	CodeQueueDeadlock: "queue-deadlock",
	CodeThreadControl: "thread-control",
	CodeNoHalt:        "no-halt",
	CodeReadonlyWrite: "readonly-write",
	CodeDataRace:      "data-race",
	CodeOOBAccess:     "oob-access",
	CodeTypedAccess:   "typed-access",
	CodeDeadStore:     "dead-store",
	CodeConstBranch:   "const-branch",

	CodeQueueRingDeadlock: "queue-ring-deadlock",
	CodeQueueOverflow:     "queue-overflow",
	CodeUnboundedSpin:     "unbounded-spin",
}

// Name returns the code's short slug ("uninit-read").
func (c Code) Name() string {
	if n, ok := codeNames[c]; ok {
		return n
	}
	return string(c)
}

// Diagnostic is one finding of the static verifier.
type Diagnostic struct {
	Code Code   `json:"code"`
	Name string `json:"name"`           // short slug of Code
	PC   int    `json:"pc"`             // instruction index; -1 = whole program
	Line int    `json:"line,omitempty"` // 1-based source line, 0 unknown
	Ins  string `json:"ins,omitempty"`  // disassembly of the instruction at PC
	Msg  string `json:"msg"`
}

// String renders "L001 (uninit-read) at pc 5 [line 12: add r1, r2, r3]: ...".
func (d Diagnostic) String() string {
	pos := ""
	switch {
	case d.PC >= 0 && d.Line > 0:
		pos = fmt.Sprintf(" at pc %d (line %d: %s)", d.PC, d.Line, d.Ins)
	case d.PC >= 0:
		pos = fmt.Sprintf(" at pc %d (%s)", d.PC, d.Ins)
	}
	return fmt.Sprintf("%s (%s)%s: %s", d.Code, d.Code.Name(), pos, d.Msg)
}

// MarshalJSONList renders diagnostics as a JSON array (for -json output).
func MarshalJSONList(ds []Diagnostic) ([]byte, error) {
	if ds == nil {
		ds = []Diagnostic{}
	}
	return json.MarshalIndent(ds, "", "  ")
}

// sortDiags orders findings by position, then code.
func sortDiags(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].PC != ds[j].PC {
			return ds[i].PC < ds[j].PC
		}
		return ds[i].Code < ds[j].Code
	})
}
