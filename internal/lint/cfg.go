package lint

import (
	"hirata/internal/isa"
)

// edgeKind distinguishes how dataflow state crosses a CFG edge.
type edgeKind uint8

const (
	edgeNormal edgeKind = iota // fall-through or resolved branch
	edgeFork                   // ffork continuation: children start fresh
	edgeReturn                 // jal fall-through via a matching jr (call returns)
)

// brEdge marks which outcome of a conditional branch an edge represents,
// so the abstract interpreter can refine values along it.
type brEdge uint8

const (
	brNone  brEdge = iota // not a conditional-branch edge
	brTaken               // the branch condition held
	brFall                // the branch condition failed (fall-through)
)

// edge is one directed CFG edge between basic blocks.
type edge struct {
	to   int
	kind edgeKind
	br   brEdge
}

// block is one basic block: the half-open instruction range [start, end).
type block struct {
	start, end int
	succs      []edge
	reachable  bool

	// dataflow fixpoint state (see dataflow.go)
	inDefs regset
	inQ    qstate
	seeded bool // an entry block whose initial state is fixed
}

// cfg is the control-flow graph of one program text.
type cfg struct {
	text    []isa.Instruction
	blocks  []*block
	blockAt []int // pc -> index of containing block
	entries []int // block indices of thread entry points (seeded fresh)
	hasJR   bool
	hasFork bool
}

// endsStream reports whether op unconditionally ends or redirects the
// instruction stream (no fall-through successor).
func endsStream(op isa.Opcode) bool {
	return op == isa.J || op == isa.JR || op == isa.HALT
}

// controlTarget returns the static target of a control transfer, if any.
// SETMODE shares FmtJ but is not a transfer.
func controlTarget(in isa.Instruction) (int64, bool) {
	if in.Op.IsBranch() && in.Op != isa.JR {
		return int64(in.Imm), true
	}
	return 0, false
}

// buildCFG splits the text into basic blocks and wires successor edges.
// Out-of-range targets produce no edge (reported separately by the target
// checks) so the dataflow never indexes outside the text.
func buildCFG(text []isa.Instruction, entries []int) *cfg {
	g := &cfg{text: text, blockAt: make([]int, len(text))}
	if len(text) == 0 {
		return g
	}

	// Pass 1: leaders.
	leader := make([]bool, len(text)+1)
	leader[0] = true
	for _, e := range entries {
		if e >= 0 && e < len(text) {
			leader[e] = true
		}
	}
	for pc, in := range text {
		if t, ok := controlTarget(in); ok && t >= 0 && t < int64(len(text)) {
			leader[t] = true
		}
		switch {
		case in.Op.IsBranch() || in.Op == isa.HALT:
			if pc+1 < len(text) {
				leader[pc+1] = true
			}
		case in.Op == isa.FFORK:
			g.hasFork = true
			if pc+1 < len(text) {
				leader[pc+1] = true
			}
		}
		if in.Op == isa.JR {
			g.hasJR = true
		}
	}

	// Pass 2: blocks.
	start := 0
	for pc := 1; pc <= len(text); pc++ {
		if pc == len(text) || leader[pc] {
			b := &block{start: start, end: pc}
			for i := start; i < pc; i++ {
				g.blockAt[i] = len(g.blocks)
			}
			g.blocks = append(g.blocks, b)
			start = pc
		}
	}

	// Pass 3: edges.
	for bi, b := range g.blocks {
		last := g.text[b.end-1]
		addEdge := func(toPC int64, kind edgeKind, br brEdge) {
			if toPC >= 0 && toPC < int64(len(text)) {
				g.blocks[bi].succs = append(g.blocks[bi].succs, edge{to: g.blockAt[toPC], kind: kind, br: br})
			}
		}
		switch {
		case last.Op == isa.HALT || last.Op == isa.JR:
			// stream ends (jr is treated as a return)
		case last.Op == isa.J:
			addEdge(int64(last.Imm), edgeNormal, brNone)
		case last.Op == isa.JAL:
			addEdge(int64(last.Imm), edgeNormal, brNone)
			if g.hasJR {
				// The callee returns: the fall-through resumes with
				// unknown (conservatively all-defined) register state.
				addEdge(int64(b.end), edgeReturn, brNone)
			}
		case last.Op.IsConditionalBranch():
			addEdge(int64(last.Imm), edgeNormal, brTaken)
			addEdge(int64(b.end), edgeNormal, brFall)
		case last.Op == isa.FFORK:
			addEdge(int64(b.end), edgeFork, brNone)
		default:
			addEdge(int64(b.end), edgeNormal, brNone)
		}
	}

	for _, e := range entries {
		if e >= 0 && e < len(text) {
			bi := g.blockAt[e]
			g.blocks[bi].seeded = true
			g.entries = append(g.entries, bi)
		}
	}
	return g
}

// markReachable flood-fills reachability from the entry blocks.
func (g *cfg) markReachable() {
	var stack []int
	for _, bi := range g.entries {
		if !g.blocks[bi].reachable {
			g.blocks[bi].reachable = true
			stack = append(stack, bi)
		}
	}
	for len(stack) > 0 {
		bi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.blocks[bi].succs {
			if !g.blocks[e.to].reachable {
				g.blocks[e.to].reachable = true
				stack = append(stack, e.to)
			}
		}
	}
}

// inCycle reports whether block bi can reach itself through one or more
// edges (the block lies on a CFG cycle).
func (g *cfg) inCycle(bi int) bool {
	seen := make([]bool, len(g.blocks))
	var stack []int
	for _, e := range g.blocks[bi].succs {
		if !seen[e.to] {
			seen[e.to] = true
			stack = append(stack, e.to)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == bi {
			return true
		}
		for _, e := range g.blocks[n].succs {
			if !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return false
}
