package lint

// This file runs the per-context abstract-interpretation fixpoint and
// derives the happens-before facts the race check needs: which accesses
// run while only one thread exists (before any ffork), which run after
// every other thread is provably dead (a must-executed kill), and which
// cross-thread access pairs are ordered by the queue-register ring.
//
// The queue argument: the ring connects slot t's outgoing FIFO to slot
// (t+1) mod T. If access A in thread t1 executes before t1's push number
// K+1 (i.e. at most K pushes precede A on every path), and access B in
// thread t2 = t1+1 executes after t2's pop number K+1 on every path, then
// B's (K+1)-th pop returned data from t1's (K+1)-th push, which FIFO order
// places after A. Hence A happens-before B.

import (
	"hirata/internal/asm"
	"hirata/internal/isa"
)

const (
	widenAfter = 12      // block updates before interval widening kicks in
	visitCap   = 50000   // total fixpoint visits before the analysis gives up
	hbInf      = 1 << 30 // saturated "unbounded pushes" counter value
)

// access is one memory access observed during the reporting replay, with
// its abstract address (tid term intact) and concurrency context.
type access struct {
	pc       int
	ctx      int
	store    bool
	prio     bool // swp/fswp: priority-ordered store, exempt from L010
	fp       bool
	addr     aval
	tid      tidRange
	solo     bool // runs before any ffork in a single-entry program
	postKill bool // runs after a must-executed kill (no ffork since)
}

// interAnalysis is the shared state of one cross-thread analysis run.
type interAnalysis struct {
	a        *analysis
	prog     *asm.Program // nil in text-only (StrictVerify) mode
	threads  int64
	memWords int64

	constMap         map[int64]int64 // read-only data words folded as constants
	threadCountAddrs map[int64]bool  // data words holding the thread count

	accesses   []access
	storeAddrs []aval         // tid-folded store address sets, for const folding
	brMask     map[int]int    // per conditional-branch pc: 1 fall, 2 taken, 4 undecided
	qUncertain [2]bool        // queue mapping went unknown: disable HB per class
	gaveUp     bool           // fixpoint budget exhausted: suppress all reports
	thresholds map[int64]bool // constants compared against: widening stops

	soloBlocks []bool
	killedIn   []bool // must-killed (and not re-forked) at block entry

	// maxPush[class][ctx][pc] / minPop[class][ctx][pc]: queue operation
	// counts on paths from the context's entry to pc (before executing pc).
	maxPush, minPop [2][][]int
}

// interCtx is the fixpoint state of one thread entry (context).
type interCtx struct {
	ia  *interAnalysis
	ctx int
	in  []astate // per-block in-state; bot = not reached in this context
}

// runCtx computes the per-block fixpoint for one entry.
func (ia *interAnalysis) runCtx(ctxIdx, entryPC int, budget *int) *interCtx {
	g := ia.a.g
	ic := &interCtx{ia: ia, ctx: ctxIdx, in: make([]astate, len(g.blocks))}
	for i := range ic.in {
		ic.in[i] = botState()
	}
	eb := g.blockAt[entryPC]
	ic.in[eb] = freshRegsState(tidRange{int64(ctxIdx), int64(ctxIdx)})
	updates := make([]int, len(g.blocks))
	inWork := make([]bool, len(g.blocks))
	work := []int{eb}
	inWork[eb] = true
	for len(work) > 0 {
		if *budget <= 0 {
			ia.gaveUp = true
			return ic
		}
		*budget--
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		st := ic.in[bi]
		if st.bot {
			continue
		}
		for pc := g.blocks[bi].start; pc < g.blocks[bi].end; pc++ {
			ic.step(&st, pc)
		}
		last := ia.a.text[g.blocks[bi].end-1]
		for _, e := range g.blocks[bi].succs {
			ns := ic.edgeState(st, e, last)
			if ns.bot {
				continue
			}
			merged := joinState(ic.in[e.to], ns)
			if updates[e.to] >= widenAfter {
				merged = ic.widenState(ic.in[e.to], merged)
			}
			if merged != ic.in[e.to] {
				ic.in[e.to] = merged
				updates[e.to]++
				if !inWork[e.to] {
					work = append(work, e.to)
					inWork[e.to] = true
				}
			}
		}
	}
	return ic
}

// replay walks every reached block once with its final in-state, recording
// memory accesses, store address sets, branch decidability, and whether
// the queue-mapping state ever went unknown.
func (ia *interAnalysis) replay(ic *interCtx) {
	g := ia.a.g
	for bi, b := range g.blocks {
		st := ic.in[bi]
		if st.bot {
			continue
		}
		killed := ia.killedIn[bi]
		for pc := b.start; pc < b.end; pc++ {
			in := ia.a.text[pc]
			if st.q.inInt == qUnknown || st.q.outInt == qUnknown {
				ia.qUncertain[0] = true
			}
			if st.q.inFP == qUnknown || st.q.outFP == qUnknown {
				ia.qUncertain[1] = true
			}
			switch in.Op {
			case isa.KILL:
				killed = true
			case isa.FFORK:
				killed = false
			}
			if in.Op.IsMem() {
				addr := addVals(ic.srcVal(&st, in.Rs1), constVal(int64(in.Imm)))
				ia.accesses = append(ia.accesses, access{
					pc:       pc,
					ctx:      ic.ctx,
					store:    in.Op.IsStore(),
					prio:     in.Op == isa.SWP || in.Op == isa.FSWP,
					fp:       in.Op == isa.FLW || in.Op == isa.FSW || in.Op == isa.FSWP,
					addr:     addr,
					tid:      st.tid,
					solo:     ia.soloBlocks[bi],
					postKill: killed,
				})
				if in.Op.IsStore() {
					ia.storeAddrs = append(ia.storeAddrs, addr.foldTid(st.tid))
				}
			}
			if in.Op.IsConditionalBranch() {
				m := 4
				switch ic.branchOutcome(&st, in) {
				case 0:
					m = 1
				case 1:
					m = 2
				}
				ia.brMask[pc] |= m
			}
			ic.step(&st, pc)
		}
	}
}

// computeSolo marks blocks that can only execute while a single thread
// exists: single entry, and not reachable from any ffork continuation.
func (ia *interAnalysis) computeSolo() {
	g := ia.a.g
	ia.soloBlocks = make([]bool, len(g.blocks))
	if len(ia.a.cfg.entries()) != 1 {
		return // other entries run concurrently from cycle 0
	}
	if !g.hasFork {
		for i := range ia.soloBlocks {
			ia.soloBlocks[i] = true
		}
		return
	}
	reached := make([]bool, len(g.blocks))
	var stack []int
	for _, b := range g.blocks {
		for _, e := range b.succs {
			if e.kind == edgeFork && !reached[e.to] {
				reached[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	for len(stack) > 0 {
		bi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.blocks[bi].succs {
			if !reached[e.to] {
				reached[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	for i := range ia.soloBlocks {
		ia.soloBlocks[i] = !reached[i]
	}
}

// computePostKill runs a forward must-dataflow: a block is "killed" on
// entry when every path to it executed a kill with no ffork afterwards.
func (ia *interAnalysis) computePostKill() {
	g := ia.a.g
	ia.killedIn = make([]bool, len(g.blocks))
	blockOut := func(bi int, in bool) bool {
		v := in
		for pc := g.blocks[bi].start; pc < g.blocks[bi].end; pc++ {
			switch ia.a.text[pc].Op {
			case isa.KILL:
				v = true
			case isa.FFORK:
				v = false
			}
		}
		return v
	}
	type pedge struct {
		from int
		kind edgeKind
	}
	preds := make([][]pedge, len(g.blocks))
	for bi, b := range g.blocks {
		for _, e := range b.succs {
			preds[e.to] = append(preds[e.to], pedge{bi, e.kind})
		}
	}
	// Optimistic start (true), lowered to fixpoint; entries start false.
	killed := make([]bool, len(g.blocks))
	for i := range killed {
		killed[i] = true
	}
	for _, bi := range g.entries {
		killed[bi] = false
	}
	for changed := true; changed; {
		changed = false
		for bi := range g.blocks {
			if !g.blocks[bi].reachable {
				continue
			}
			in := killed[bi]
			seeded := g.blocks[bi].seeded
			v := !seeded && len(preds[bi]) > 0
			for _, p := range preds[bi] {
				if !g.blocks[p.from].reachable {
					continue
				}
				if p.kind != edgeNormal || !blockOut(p.from, killed[p.from]) {
					v = false
					break
				}
			}
			if seeded {
				v = false
			}
			if v != in {
				killed[bi] = v
				changed = true
			}
		}
	}
	for bi := range killed {
		ia.killedIn[bi] = killed[bi] && g.blocks[bi].reachable
	}
}

// computeQueueCounts builds the per-context push/pop counters used by the
// queue happens-before rule. class 0 = integer ring, class 1 = FP ring.
func (ia *interAnalysis) computeQueueCounts() {
	entries := ia.a.cfg.entries()
	isPush := make([][2]bool, len(ia.a.text))
	isPop := make([][2]bool, len(ia.a.text))
	for _, u := range ia.a.queueWrites {
		isPush[u.pc][classOf(u.fp)] = true
	}
	for _, u := range ia.a.queueReads {
		isPop[u.pc][classOf(u.fp)] = true
	}
	for class := 0; class < 2; class++ {
		ia.maxPush[class] = make([][]int, len(entries))
		ia.minPop[class] = make([][]int, len(entries))
		for ci, e := range entries {
			ia.maxPush[class][ci] = ia.countFlow(e, isPush[:], class, true)
			ia.minPop[class][ci] = ia.countFlow(e, isPop[:], class, false)
		}
	}
}

// noteCmp records a constant comparison operand as a widening threshold
// (with its neighbours, so <, <=, and != guards all find a stop).
func (ia *interAnalysis) noteCmp(v aval) {
	if c, ok := v.isConst(); ok && c > aNegInf+1 && c < aPosInf-1 {
		ia.thresholds[c-1] = true
		ia.thresholds[c] = true
		ia.thresholds[c+1] = true
	}
}

// widenLo picks the widening target for a still-falling lower bound: the
// largest threshold at or below it, else -inf.
func (ia *interAnalysis) widenLo(l int64) int64 {
	best := aNegInf
	for t := range ia.thresholds {
		if t <= l && t > best {
			best = t
		}
	}
	return best
}

// widenHi picks the widening target for a still-rising upper bound: the
// smallest threshold at or above it, else +inf.
func (ia *interAnalysis) widenHi(h int64) int64 {
	best := aPosInf
	for t := range ia.thresholds {
		if t >= h && t < best {
			best = t
		}
	}
	return best
}

func classOf(fp bool) int {
	if fp {
		return 1
	}
	return 0
}

// countFlow computes, for every pc, the max (wantMax) or min number of
// marked instructions executed on paths from entry to just before pc.
// Unreached pcs get hbInf for min and 0 for max (they never execute, so
// any value is vacuously sound; the race check only consults executed pcs).
func (ia *interAnalysis) countFlow(entryPC int, marked [][2]bool, class int, wantMax bool) []int {
	g := ia.a.g
	blockCount := func(bi int) int {
		n := 0
		for pc := g.blocks[bi].start; pc < g.blocks[bi].end; pc++ {
			if marked[pc][class] {
				n++
			}
		}
		return n
	}
	unset := -1
	in := make([]int, len(g.blocks))
	for i := range in {
		in[i] = unset
	}
	eb := -1
	if entryPC >= 0 && entryPC < len(ia.a.text) {
		eb = g.blockAt[entryPC]
		in[eb] = 0
	}
	updates := make([]int, len(g.blocks))
	inWork := make([]bool, len(g.blocks))
	var work []int
	if eb >= 0 {
		work = append(work, eb)
		inWork[eb] = true
	}
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		out := in[bi] + blockCount(bi)
		if out > hbInf {
			out = hbInf
		}
		for _, e := range g.blocks[bi].succs {
			contrib := out
			if e.kind == edgeFork {
				contrib = 0 // children start with empty FIFO history
			}
			if e.kind == edgeReturn {
				// The callee may have pushed/popped arbitrarily.
				if wantMax {
					contrib = hbInf
				} else {
					contrib = 0
				}
			}
			cur := in[e.to]
			next := cur
			switch {
			case cur == unset:
				next = contrib
			case wantMax && contrib > cur:
				next = contrib
			case !wantMax && contrib < cur:
				next = contrib
			}
			if next != cur {
				updates[e.to]++
				if wantMax && updates[e.to] > 4*len(g.blocks)+8 {
					next = hbInf // a push on a cycle: unbounded
				}
				in[e.to] = next
				if !inWork[e.to] {
					work = append(work, e.to)
					inWork[e.to] = true
				}
			}
		}
	}
	// Per-pc values from block in-values.
	out := make([]int, len(ia.a.text))
	for pc := range out {
		if wantMax {
			out[pc] = 0
		} else {
			out[pc] = hbInf
		}
	}
	for bi, b := range g.blocks {
		if in[bi] == unset {
			continue
		}
		n := in[bi]
		for pc := b.start; pc < b.end; pc++ {
			out[pc] = n
			if marked[pc][class] {
				n++
				if n > hbInf {
					n = hbInf
				}
			}
		}
	}
	return out
}

// hbQueue reports whether the queue ring orders access a (in thread t1)
// before access b (in thread t2 = t1+1 mod T).
func (ia *interAnalysis) hbQueue(a, b access, t1, t2 int64) bool {
	if (t1+1)%ia.threads != t2 {
		return false
	}
	for class := 0; class < 2; class++ {
		if ia.qUncertain[class] {
			continue
		}
		k := ia.maxPush[class][a.ctx][a.pc]
		if k >= hbInf {
			continue
		}
		if ia.minPop[class][b.ctx][b.pc] >= k+1 {
			return true
		}
	}
	return false
}

// loadVal abstracts a load from the given address set: thread-count words
// read as the configured thread count, folded read-only words read as
// their initial image value, everything else is unknown.
func (ia *interAnalysis) loadVal(addr aval) aval {
	if c, ok := addr.isConst(); ok {
		if ia.threadCountAddrs[c] {
			return constVal(ia.threads)
		}
		if v, ok := ia.constMap[c]; ok {
			return constVal(v)
		}
	}
	return topVal()
}
