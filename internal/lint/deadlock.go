package lint

// Queue-protocol deadlock verification (Config.Deadlock): L015, L016 and
// L017 (docs/LINT.md).
//
// The queue-register ring connects slot s's outgoing FIFO to slot
// (s+1) mod T's incoming side, so slot s's reads are satisfied only by
// pushes from slot (s-1+T) mod T. runDeadlock assigns each slot the set
// of start points it may execute (its entry, plus every fast-fork
// continuation) and solves a may-push fixpoint around the ring:
//
//	mayPush[s] = writeFirst[s] OR (reachesWrite[s] AND mayPush[s-1])
//
// A slot may push either because some path reaches a queue write with no
// read before it (it needs no input), or because it can reach a write
// after reads that its own producer may satisfy. The fixpoint starts
// all-false and only adds facts, so NOT mayPush[p] is a proof that slot p
// never completes a push — every first read in its consumer then blocks
// the decode stage forever (L015). This uniformly covers the missing-
// producer case and cyclic cross-thread waits (every slot reads before
// writing: the fixpoint stays all-false around the ring).
//
// L016 is the converse: a slot pushing toward a consumer that provably
// never pops. FIFO capacity is queueDepth words, so a write preceded by
// depth earlier writes (or lying on a cycle) eventually stalls forever.
//
// L017 (checkSpins, run from the cross-thread analysis so it can reuse
// the folded address sets) flags wait loops that poll memory no store in
// the whole program can reach: the loop's exit conditions are invariant
// across iterations, so once entered with a non-exiting value the thread
// spins until MaxCycles.

import (
	"hirata/internal/isa"
)

// slotRing holds the per-slot facts of one queue class (integer or FP).
type slotRing struct {
	known      []bool  // slot has at least one start context
	writeFirst []bool  // may reach a write with no earlier queue op
	reachWrite []bool  // may reach a write at all
	hasRead    []bool  // may reach a read
	firstReads [][]int // read pcs reachable with no earlier read
	mayPush    []bool  // ring fixpoint result
	writePCs   [][]int // write pcs reachable from the slot's starts
	starts     [][]int // block indices the slot may start at
}

// runDeadlock performs the L015/L016 ring analysis. It only applies to
// multi-thread shapes; the single-entry no-fork case is covered by the
// simpler whole-text balance check (L006).
func (a *analysis) runDeadlock() {
	if a.g == nil || len(a.g.blocks) == 0 {
		return
	}
	entries := a.cfg.entries()
	if !a.g.hasFork && len(entries) <= 1 {
		return
	}
	T := a.cfg.threadSlots()
	if len(entries) > T {
		T = len(entries)
	}
	if T < 2 {
		return
	}
	// A reachable kill may reap a blocked thread, so "blocks forever" is
	// no longer provable; workers legitimately wait on queues until a
	// master kills them.
	for pc, in := range a.text {
		if in.Op == isa.KILL && a.g.blocks[a.g.blockAt[pc]].reachable {
			return
		}
	}

	starts := a.slotStarts(T)
	for class := 0; class < 2; class++ {
		if a.queueStateUncertain(class) {
			continue // imprecise mapping: pushes may be invisible, no proofs
		}
		a.checkRing(class, T, starts)
	}
}

// slotStarts assigns each slot the block indices it may begin executing
// at: entry i runs on slot i, and every reachable ffork continuation may
// land on any slot.
func (a *analysis) slotStarts(T int) [][]int {
	starts := make([][]int, T)
	for i, e := range a.cfg.entries() {
		if i < T && e >= 0 && e < len(a.text) {
			starts[i] = append(starts[i], a.g.blockAt[e])
		}
	}
	if a.g.hasFork {
		for _, b := range a.g.blocks {
			if !b.reachable || a.text[b.end-1].Op != isa.FFORK {
				continue
			}
			for _, e := range b.succs {
				if e.kind != edgeFork {
					continue
				}
				for s := 0; s < T; s++ {
					dup := false
					for _, have := range starts[s] {
						if have == e.to {
							dup = true
							break
						}
					}
					if !dup {
						starts[s] = append(starts[s], e.to)
					}
				}
			}
		}
	}
	return starts
}

// queueStateUncertain reports whether any reachable block's queue-mapping
// in-state is unknown for the class; queue reads/writes under an unknown
// mapping are not collected, so no never-pushes proof is possible.
func (a *analysis) queueStateUncertain(class int) bool {
	for _, b := range a.g.blocks {
		if !b.reachable {
			continue
		}
		if class == 0 && (b.inQ.inInt == qUnknown || b.inQ.outInt == qUnknown) {
			return true
		}
		if class == 1 && (b.inQ.inFP == qUnknown || b.inQ.outFP == qUnknown) {
			return true
		}
	}
	return false
}

// checkRing computes the per-slot facts and the mayPush fixpoint for one
// queue class and reports L015/L016.
func (a *analysis) checkRing(class, T int, starts [][]int) {
	isRead := make([]bool, len(a.text))
	isWrite := make([]bool, len(a.text))
	any := false
	for _, u := range a.queueReads {
		if classOf(u.fp) == class {
			isRead[u.pc] = true
			any = true
		}
	}
	for _, u := range a.queueWrites {
		if classOf(u.fp) == class {
			isWrite[u.pc] = true
			any = true
		}
	}
	if !any {
		return
	}

	r := slotRing{
		known:      make([]bool, T),
		writeFirst: make([]bool, T),
		reachWrite: make([]bool, T),
		hasRead:    make([]bool, T),
		firstReads: make([][]int, T),
		mayPush:    make([]bool, T),
		writePCs:   make([][]int, T),
		starts:     starts,
	}
	for s := 0; s < T; s++ {
		if len(starts[s]) == 0 {
			// The slot never runs a thread we can see. Treat it as able to
			// do anything so its neighbours are never falsely flagged.
			r.writeFirst[s], r.reachWrite[s], r.hasRead[s] = true, true, true
			continue
		}
		r.known[s] = true
		a.scanSlot(&r, s, isRead, isWrite)
	}

	// Ring fixpoint, least solution from all-false.
	for changed := true; changed; {
		changed = false
		for s := 0; s < T; s++ {
			v := r.writeFirst[s] || (r.reachWrite[s] && r.mayPush[(s-1+T)%T])
			if v && !r.mayPush[s] {
				r.mayPush[s] = true
				changed = true
			}
		}
	}

	className := "integer"
	if class == 1 {
		className = "FP"
	}

	// L015: first reads whose producer provably never pushes.
	for s := 0; s < T; s++ {
		if !r.known[s] {
			continue
		}
		p := (s - 1 + T) % T
		if r.mayPush[p] {
			continue
		}
		for _, pc := range r.firstReads[s] {
			a.reportf(CodeQueueRingDeadlock, pc,
				"%s queue-register read in thread slot %d can never be satisfied: producer slot %d never pushes onto the connecting FIFO (ring deadlock)",
				className, s, p)
		}
	}

	// L016: writes toward a consumer that provably never pops, once the
	// depth-bounded FIFO must be full.
	depth := a.cfg.queueDepth()
	for s := 0; s < T; s++ {
		if !r.known[s] {
			continue
		}
		c := (s + 1) % T
		if r.hasRead[c] {
			continue
		}
		prior := a.maxWritesBefore(starts[s], isWrite, depth)
		for _, pc := range r.writePCs[s] {
			bi := a.g.blockAt[pc]
			if prior[pc] >= depth || a.g.inCycle(bi) {
				a.reportf(CodeQueueOverflow, pc,
					"%s queue-register write in thread slot %d overflows: consumer slot %d never pops, and the depth-%d FIFO fills",
					className, s, c, depth)
			}
		}
	}
}

// scanSlot fills the per-slot facts by traversing the CFG from the slot's
// start blocks. The first-op walk stops at the first queue operation on a
// path: a write there proves writeFirst, a read is recorded as a blocking
// point (later operations on that path are secondary).
func (a *analysis) scanSlot(r *slotRing, s int, isRead, isWrite []bool) {
	g := a.g
	firstOp := func(bi int) (pc int, write, ok bool) {
		for pc := g.blocks[bi].start; pc < g.blocks[bi].end; pc++ {
			if isWrite[pc] {
				return pc, true, true
			}
			if isRead[pc] {
				return pc, false, true
			}
		}
		return 0, false, false
	}

	// Plain reachability for reachWrite / hasRead / writePCs.
	seen := make([]bool, len(g.blocks))
	stack := append([]int{}, r.starts[s]...)
	for _, bi := range stack {
		seen[bi] = true
	}
	for len(stack) > 0 {
		bi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for pc := g.blocks[bi].start; pc < g.blocks[bi].end; pc++ {
			if isWrite[pc] {
				r.reachWrite[s] = true
				r.writePCs[s] = append(r.writePCs[s], pc)
			}
			if isRead[pc] {
				r.hasRead[s] = true
			}
		}
		for _, e := range g.blocks[bi].succs {
			if !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}

	// First-op walk.
	seenF := make([]bool, len(g.blocks))
	stack = append(stack[:0], r.starts[s]...)
	for _, bi := range stack {
		seenF[bi] = true
	}
	firstReadSet := map[int]bool{}
	for len(stack) > 0 {
		bi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if pc, write, ok := firstOp(bi); ok {
			if write {
				r.writeFirst[s] = true
			} else {
				firstReadSet[pc] = true
			}
			continue
		}
		for _, e := range g.blocks[bi].succs {
			if !seenF[e.to] {
				seenF[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	for pc := range firstReadSet {
		r.firstReads[s] = append(r.firstReads[s], pc)
	}
	sortInts(r.firstReads[s])
}

// maxWritesBefore computes, per pc, the maximum number of marked writes
// executed before pc on any path from the given start blocks, saturated
// at cap+1 (values beyond the FIFO depth are all equivalent). Fork edges
// reset the count (children start with an empty FIFO); return edges pass
// the caller's count through, under-approximating the callee's pushes —
// sound for flagging. Unreached pcs report -1.
func (a *analysis) maxWritesBefore(startBlocks []int, isWrite []bool, cap int) []int {
	g := a.g
	sat := cap + 1
	in := make([]int, len(g.blocks))
	for i := range in {
		in[i] = -1
	}
	var work []int
	for _, bi := range startBlocks {
		if in[bi] < 0 {
			in[bi] = 0
			work = append(work, bi)
		}
	}
	blockCount := func(bi int) int {
		n := 0
		for pc := g.blocks[bi].start; pc < g.blocks[bi].end; pc++ {
			if isWrite[pc] {
				n++
			}
		}
		return n
	}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		out := in[bi] + blockCount(bi)
		if out > sat {
			out = sat
		}
		for _, e := range g.blocks[bi].succs {
			contrib := out
			if e.kind == edgeFork {
				contrib = 0
			}
			if contrib > in[e.to] {
				in[e.to] = contrib
				work = append(work, e.to)
			}
		}
	}
	out := make([]int, len(a.text))
	for pc := range out {
		out[pc] = -1
	}
	for bi, b := range g.blocks {
		if in[bi] < 0 {
			continue
		}
		n := in[bi]
		for pc := b.start; pc < b.end; pc++ {
			out[pc] = n
			if isWrite[pc] {
				if n++; n > sat {
					n = sat
				}
			}
		}
	}
	return out
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// --- L017: unbounded spin ---

// checkSpins flags wait loops whose every exit condition is invariant
// across iterations and depends on at least one load from memory no store
// in the whole program can reach. It runs from the cross-thread analysis
// (after the constant-folding fixpoint) so it can consult the folded
// address sets and the per-branch decidability mask.
func (ia *interAnalysis) checkSpins() {
	if ia.gaveUp {
		return
	}
	g := ia.a.g
	for _, scc := range sccBlocks(g) {
		ia.checkSpinSCC(scc)
	}
}

// sccBlocks returns the nontrivial strongly connected components of the
// reachable CFG (size > 1, or a single block with a self edge), excluding
// fork edges: a forked child's start is a fresh thread, not a back edge.
func sccBlocks(g *cfg) [][]int {
	n := len(g.blocks)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var sccs [][]int
	next := 0

	type frame struct{ v, ei int }
	var dfs func(root int)
	dfs = func(root int) {
		frames := []frame{{root, 0}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			advanced := false
			for f.ei < len(g.blocks[v].succs) {
				e := g.blocks[v].succs[f.ei]
				f.ei++
				if e.kind == edgeFork {
					continue
				}
				w := e.to
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
					advanced = true
					break
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				selfLoop := false
				if len(comp) == 1 {
					for _, e := range g.blocks[comp[0]].succs {
						if e.kind != edgeFork && e.to == comp[0] {
							selfLoop = true
						}
					}
				}
				if (len(comp) > 1 || selfLoop) && g.blocks[comp[0]].reachable {
					sccs = append(sccs, comp)
				}
			}
		}
	}
	for bi := range g.blocks {
		if g.blocks[bi].reachable && index[bi] == -1 {
			dfs(bi)
		}
	}
	return sccs
}

// checkSpinSCC analyses one loop (SCC) for the unbounded-spin pattern.
func (ia *interAnalysis) checkSpinSCC(scc []int) {
	g := ia.a.g
	inSCC := map[int]bool{}
	for _, bi := range scc {
		inSCC[bi] = true
	}

	// Structural gates: the loop must exit only through conditional
	// branches (calls and forks inside make invariance unprovable), and
	// must not fork or kill.
	type exitBr struct {
		pc          int
		takenLeaves bool
		fallLeaves  bool
	}
	var exits []exitBr
	for _, bi := range scc {
		for pc := g.blocks[bi].start; pc < g.blocks[bi].end; pc++ {
			switch ia.a.text[pc].Op {
			case isa.FFORK, isa.KILL, isa.JAL, isa.JR, isa.QDIS:
				return
			}
		}
		last := ia.a.text[g.blocks[bi].end-1]
		var eb exitBr
		leaves := false
		for _, e := range g.blocks[bi].succs {
			if e.kind == edgeFork {
				continue
			}
			if !inSCC[e.to] {
				leaves = true
				switch e.br {
				case brTaken:
					eb.takenLeaves = true
				case brFall:
					eb.fallLeaves = true
				}
			}
		}
		if !leaves {
			continue
		}
		if !last.Op.IsConditionalBranch() {
			return // leaves through something we cannot reason about
		}
		eb.pc = g.blocks[bi].end - 1
		exits = append(exits, eb)
	}
	if len(exits) == 0 {
		return // intentional infinite loop: no exit to wait for
	}

	inv := ia.invariantRegs(scc, inSCC)

	// Every exit condition must be invariant, and none may already be
	// statically decided to exit (then the loop terminates immediately
	// and is not a spin).
	var condRegs []isa.Reg
	var srcBuf []isa.Reg
	for _, eb := range exits {
		in := ia.a.text[eb.pc]
		srcBuf = in.Sources(srcBuf[:0])
		for _, r := range srcBuf {
			if !r.Valid() || (r.IsInt() && r.Index() == 0) {
				continue
			}
			if !inv.has(r) {
				return
			}
			condRegs = append(condRegs, r)
		}
		switch mask := ia.brMask[eb.pc]; {
		case mask == 2 && eb.takenLeaves:
			return // always taken, and taken exits
		case mask == 1 && eb.fallLeaves:
			return // always falls through, and the fall-through exits
		}
	}

	// The backward slice of the exit conditions (within the loop) must
	// contain at least one poll load: a load from memory no store in the
	// whole program overlaps. Without one this is a constant-condition
	// loop, not a wait.
	slice := regset(0)
	for _, r := range condRegs {
		slice |= regbit(r)
	}
	for changed := true; changed; {
		changed = false
		for _, bi := range scc {
			for pc := g.blocks[bi].start; pc < g.blocks[bi].end; pc++ {
				in := ia.a.text[pc]
				d := in.Dest()
				if !d.Valid() || !slice.has(d) {
					continue
				}
				srcBuf = in.Sources(srcBuf[:0])
				for _, r := range srcBuf {
					if r.Valid() && !slice.has(r) {
						slice |= regbit(r)
						changed = true
					}
				}
			}
		}
	}
	pollPC := -1
	for _, bi := range scc {
		for pc := g.blocks[bi].start; pc < g.blocks[bi].end; pc++ {
			in := ia.a.text[pc]
			if in.Op.IsLoad() && in.Dest().Valid() && slice.has(in.Dest()) && ia.loadNeverStored(pc) {
				pollPC = pc
			}
		}
	}
	if pollPC < 0 {
		return
	}

	for _, eb := range exits {
		ia.a.reportf(CodeUnboundedSpin, eb.pc,
			"wait loop can spin forever: its exit condition polls memory (load at pc %d) that no store in the program ever writes, so no thread can release it",
			pollPC)
	}
}

// invariantRegs computes the registers provably invariant across loop
// iterations, as a least fixpoint from a well-founded seed: registers
// with no definition inside the loop (and not queue-read-mapped, since a
// pop renews those at every read). A register with definitions joins only
// when every definition is justified by already-invariant inputs — a pure
// computation over invariant sources, or a load through an invariant base
// from never-stored memory. Self-justification (i = i + 1) is impossible:
// the definition's own destination is not invariant when examined.
func (ia *interAnalysis) invariantRegs(scc []int, inSCC map[int]bool) regset {
	g := ia.a.g
	defs := map[isa.Reg][]int{}
	for _, bi := range scc {
		for pc := g.blocks[bi].start; pc < g.blocks[bi].end; pc++ {
			if d := ia.a.text[pc].Dest(); d.Valid() {
				defs[d] = append(defs[d], pc)
			}
		}
	}
	inv := regset(0)
	var r isa.Reg
	for r = 0; r < 64; r++ {
		if !r.Valid() {
			continue
		}
		if len(defs[r]) == 0 && !ia.a.qReadRegs.has(r) {
			inv |= regbit(r)
		}
	}

	var srcBuf []isa.Reg
	justified := func(pc int) bool {
		in := ia.a.text[pc]
		switch {
		case in.Op.IsLoad():
			base := in.Rs1
			baseInv := !base.Valid() || (base.IsInt() && base.Index() == 0) || inv.has(base)
			return baseInv && ia.loadNeverStored(pc)
		case in.Op.IsMem() || in.Op.IsBranch():
			return false
		case in.Op == isa.QEN || in.Op == isa.QENF:
			return false
		case in.Op == isa.TID:
			return true // constant within a thread
		default:
			srcBuf = in.Sources(srcBuf[:0])
			for _, s := range srcBuf {
				if !s.Valid() || (s.IsInt() && s.Index() == 0) {
					continue
				}
				if !inv.has(s) {
					return false
				}
			}
			return true
		}
	}
	for changed := true; changed; {
		changed = false
		for r, pcs := range defs {
			if inv.has(r) || ia.a.qReadRegs.has(r) {
				continue
			}
			ok := true
			for _, pc := range pcs {
				if !justified(pc) {
					ok = false
					break
				}
			}
			if ok {
				inv |= regbit(r)
				changed = true
			}
		}
	}
	return inv
}

// loadNeverStored reports whether the load at pc was observed by the
// cross-thread analysis and its every possible address is disjoint from
// every store in the program. An unobserved pc (unreached in the abstract
// run) yields false: no proof.
func (ia *interAnalysis) loadNeverStored(pc int) bool {
	seen := false
	for _, ac := range ia.accesses {
		if ac.pc != pc || ac.store {
			continue
		}
		seen = true
		la := ia.foldAccess(ac)
		if la.bot {
			continue
		}
		for _, st := range ia.accesses {
			if !st.store {
				continue
			}
			if setsOverlap(la, ia.foldAccess(st)) {
				return false
			}
		}
	}
	return seen
}
