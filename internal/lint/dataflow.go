package lint

import (
	"hirata/internal/isa"
)

// regset is a must-be-defined register bitset: bit r set means every path
// to this point wrote register r (integer registers occupy bits 0..31, FP
// registers bits 32..63, matching isa.Reg values).
type regset uint64

const allDefined = ^regset(0)

func regbit(r isa.Reg) regset { return regset(1) << uint(r) }

func (s regset) has(r isa.Reg) bool { return s&regbit(r) != 0 }

// freshDefs is the register state of a just-started thread: only the
// hardwired-zero register counts as initialised.
func freshDefs() regset { return regbit(isa.R0) }

// qUnknown marks a queue-mapping slot whose value differs between
// converging paths; all queue-specific checks are suppressed under it.
const qUnknown isa.Reg = 254

// qstate tracks the active queue-register mappings (set by qen/qenf,
// cleared by qdis) as a forward dataflow value. isa.NoReg means "known
// unmapped"; qUnknown means "conflicting paths".
type qstate struct {
	top           bool // no information yet (identity for meet)
	inInt, outInt isa.Reg
	inFP, outFP   isa.Reg
}

func unmappedQ() qstate {
	return qstate{inInt: isa.NoReg, outInt: isa.NoReg, inFP: isa.NoReg, outFP: isa.NoReg}
}

func unknownQ() qstate {
	return qstate{inInt: qUnknown, outInt: qUnknown, inFP: qUnknown, outFP: qUnknown}
}

func meetReg(a, b isa.Reg) isa.Reg {
	if a == b {
		return a
	}
	return qUnknown
}

func (q qstate) meet(o qstate) qstate {
	if q.top {
		return o
	}
	if o.top {
		return q
	}
	return qstate{
		inInt: meetReg(q.inInt, o.inInt), outInt: meetReg(q.outInt, o.outInt),
		inFP: meetReg(q.inFP, o.inFP), outFP: meetReg(q.outFP, o.outFP),
	}
}

// state is the combined dataflow value at one program point.
type state struct {
	defs regset
	q    qstate
}

// transform applies an edge's state transformation.
func (st state) transform(kind edgeKind) state {
	switch kind {
	case edgeFork:
		// Forked children start with a fresh register bank and no queue
		// mappings; the continuation state is the meet of the forker and
		// its children, which is the children's fresh state.
		return state{defs: freshDefs(), q: unmappedQ()}
	case edgeReturn:
		// Returning from a call: the callee may have written anything, so
		// everything counts as defined and mappings are unknown.
		return state{defs: allDefined, q: unknownQ()}
	}
	return st
}

// queueUse records one executed queue-register access, for the whole-
// program produce/consume balance checks.
type queueUse struct {
	pc int
	fp bool
}

// stepper runs the transfer function for one instruction, optionally
// reporting per-instruction diagnostics through the analysis.
type stepper struct {
	a      *analysis
	report bool
	srcBuf []isa.Reg
}

// step advances st across the instruction at pc.
func (sp *stepper) step(st *state, pc int) {
	in := sp.a.text[pc]
	known := func(r isa.Reg) bool { return r != qUnknown }

	// Source operands.
	srcs := in.Sources(sp.srcBuf[:0])
	sp.srcBuf = srcs[:0]
	for _, r := range srcs {
		switch {
		case r == isa.R0 || !r.Valid():
			// hardwired zero / unused slot
		case known(st.q.inInt) && r == st.q.inInt, known(st.q.inFP) && r == st.q.inFP:
			// queue pop: always "defined" (the interlock supplies data)
			if sp.report {
				sp.a.queueReads = append(sp.a.queueReads, queueUse{pc: pc, fp: r.IsFP()})
			}
		case known(st.q.outInt) && r == st.q.outInt, known(st.q.outFP) && r == st.q.outFP:
			if sp.report {
				sp.a.reportf(CodeQueueProtocol, pc,
					"read of write-mapped queue register %s returns the stale register-file value, not queue data", r)
			}
		case sp.a.qReadRegs.has(r):
			// This register is read-mapped by some qen/qenf in the
			// program; suppress uninitialised-read reports for it even
			// where the mapping state is imprecise.
		case !st.defs.has(r):
			if sp.report {
				sp.a.reportf(CodeUninitRead, pc,
					"register %s may be read before any instruction writes it (threads start with zeroed banks, but this is almost always a missing initialisation)", r)
			}
		}
	}

	// Destination.
	if d := in.Dest(); d.Valid() {
		switch {
		case d == isa.R0:
			if sp.report {
				sp.a.reportf(CodeReadonlyWrite, pc,
					"r0 is hardwired to zero; the result of %s is silently discarded", in.Op)
			}
		case known(st.q.inInt) && d == st.q.inInt, known(st.q.inFP) && d == st.q.inFP:
			if sp.report {
				sp.a.reportf(CodeQueueProtocol, pc,
					"write to read-mapped queue register %s goes to the register file, where reads cannot see it while the mapping is active", d)
			}
			st.defs |= regbit(d)
		case known(st.q.outInt) && d == st.q.outInt, known(st.q.outFP) && d == st.q.outFP:
			// The write is diverted into the outgoing FIFO; the
			// architectural register is untouched.
			if sp.report {
				sp.a.queueWrites = append(sp.a.queueWrites, queueUse{pc: pc, fp: d.IsFP()})
			}
		default:
			st.defs |= regbit(d)
		}
	}

	// Queue-mapping and mode effects.
	switch in.Op {
	case isa.QEN:
		st.q.inInt, st.q.outInt = in.Rs1, in.Rs2
	case isa.QENF:
		st.q.inFP, st.q.outFP = in.Rs1, in.Rs2
	case isa.QDIS:
		if sp.report && !st.q.top &&
			st.q.inInt == isa.NoReg && st.q.outInt == isa.NoReg &&
			st.q.inFP == isa.NoReg && st.q.outFP == isa.NoReg {
			sp.a.reportf(CodeQueueProtocol, pc, "qdis with no active queue-register mapping")
		}
		st.q = unmappedQ()
	case isa.SETMODE:
		if sp.report && in.Imm != 0 && in.Imm != 1 {
			sp.a.reportf(CodeThreadControl, pc,
				"setmode operand %d is neither 0 (implicit rotation) nor 1 (explicit rotation)", in.Imm)
		}
	}
}

// runDataflow computes the per-block fixpoint, then replays each reachable
// block once with reporting enabled.
func (a *analysis) runDataflow() {
	g := a.g
	if len(g.blocks) == 0 {
		return
	}

	// Initialise: entry blocks start fresh; everything else starts at top
	// and is lowered by meets.
	for _, b := range g.blocks {
		b.inDefs = allDefined
		b.inQ = qstate{top: true}
	}
	entryState := state{defs: freshDefs(), q: unmappedQ()}
	for _, bi := range g.entries {
		g.blocks[bi].inDefs = entryState.defs
		g.blocks[bi].inQ = entryState.q
	}

	// Precompute predecessors with edge kinds.
	type pred struct {
		from int
		kind edgeKind
	}
	preds := make([][]pred, len(g.blocks))
	for bi, b := range g.blocks {
		for _, e := range b.succs {
			preds[e.to] = append(preds[e.to], pred{from: bi, kind: e.kind})
		}
	}

	sp := &stepper{a: a, srcBuf: make([]isa.Reg, 0, 4)}
	outState := func(bi int) state {
		st := state{defs: g.blocks[bi].inDefs, q: g.blocks[bi].inQ}
		for pc := g.blocks[bi].start; pc < g.blocks[bi].end; pc++ {
			sp.step(&st, pc)
		}
		return st
	}

	// Chaotic iteration to fixpoint.
	inWork := make([]bool, len(g.blocks))
	var work []int
	for bi := range g.blocks {
		if g.blocks[bi].reachable {
			work = append(work, bi)
			inWork[bi] = true
		}
	}
	for iter := 0; len(work) > 0 && iter < 64*len(g.blocks)+64; iter++ {
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		b := g.blocks[bi]

		in := state{defs: allDefined, q: qstate{top: true}}
		if b.seeded {
			in = entryState
		}
		for _, p := range preds[bi] {
			if !g.blocks[p.from].reachable {
				continue
			}
			ps := outState(p.from).transform(p.kind)
			in.defs &= ps.defs
			in.q = in.q.meet(ps.q)
		}
		if in.defs != b.inDefs || in.q != b.inQ {
			b.inDefs, b.inQ = in.defs, in.q
			for _, e := range b.succs {
				if !inWork[e.to] && g.blocks[e.to].reachable {
					work = append(work, e.to)
					inWork[e.to] = true
				}
			}
		}
	}

	// Reporting pass: one replay per reachable block with the final
	// in-state.
	sp.report = true
	for _, b := range g.blocks {
		if !b.reachable {
			continue
		}
		st := state{defs: b.inDefs, q: b.inQ}
		for pc := b.start; pc < b.end; pc++ {
			sp.step(&st, pc)
		}
	}
}
