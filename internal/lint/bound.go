package lint

// Static lower bounds on execution cycles (docs/LINT.md, "Static
// performance bounds"). The analysis walks the whole-program CFG and
// combines two families of bounds, both provable without simulating:
//
//   - a dependence bound: per basic block, the longest latency-weighted
//     path through the block's dependence DAG (sched.DepSpan), summed
//     along the cheapest CFG path from a thread start to a halt. In-order
//     decode makes per-block spans additive along any executed path, and
//     taking the cheapest path keeps the result a lower bound for every
//     real execution.
//   - a resource bound: the paper's U = N·L/T inverted. Each functional-
//     unit class must absorb at least the issue-latency demand of the
//     cheapest path of every thread that provably runs, and a class with
//     k units absorbs at most k cycles of demand per cycle.
//
// Both are combined with the decode-bandwidth bound (ThreadSlots ×
// IssueWidth decodes per cycle, optionally capped by MaxIssuePerCycle)
// on top of the fixed pipeline-fill startup. The reported Bound is the
// maximum of the three — a certificate that no execution of the program
// on that machine shape finishes in fewer cycles. The differential test
// bound_validation_test.go asserts Bound <= measured cycles across every
// example, paper workload, and fuzz-corpus program.

import (
	"fmt"
	"sort"
	"strings"

	"hirata/internal/isa"
	"hirata/internal/sched"
)

// Machine is the hardware shape the bound is computed against: the subset
// of core.Config that static analysis can see. hirata.StaticBounds fills
// it from a resolved core.Config (Config.Effective / Config.UnitCount).
type Machine struct {
	// ThreadSlots is S, the number of logical processors.
	ThreadSlots int
	// IssueWidth is D, the per-slot superscalar decode width.
	IssueWidth int
	// Units holds the functional-unit count per isa.UnitClass
	// (Units[isa.UnitIntALU] etc.; index 0, UnitNone, is unused).
	Units [isa.NumUnitClasses + 1]int
	// MaxIssuePerCycle caps total decode issues per cycle (0 = unbounded).
	MaxIssuePerCycle int
}

func (m Machine) normalized() Machine {
	if m.ThreadSlots <= 0 {
		m.ThreadSlots = 1
	}
	if m.IssueWidth <= 0 {
		m.IssueWidth = 1
	}
	for c := 1; c <= isa.NumUnitClasses; c++ {
		if m.Units[c] <= 0 {
			m.Units[c] = 1
		}
	}
	return m
}

const (
	// startupCycles is the pipeline-fill floor: IF1 IF2 D1 D2 put the
	// first decode completion no earlier than cycle 4 (a bare `halt`
	// measures 5 cycles on the simulator), and every bound rides on it.
	startupCycles = 4
	// boundInf marks an unreachable exit: the thread never retires.
	boundInf = int64(1) << 60
)

// ThreadBound is the per-start lower bound: one entry point, or one
// fast-fork continuation (the start PC of forked children).
type ThreadBound struct {
	Start       int   `json:"start"`       // start PC
	Forked      bool  `json:"forked"`      // a ffork continuation, not an entry
	Count       int64 `json:"count"`       // cheapest-path instruction count
	DepCycles   int64 `json:"depCycles"`   // cheapest-path dependence span
	CountCycles int64 `json:"countCycles"` // ceil(Count/IssueWidth) - 1
	Cycles      int64 `json:"cycles"`      // startup + max(dep, count)
	Unbounded   bool  `json:"unbounded"`   // no halt reachable from Start
}

// ClassBound is one row of the static CPI stack: the whole-program
// minimum demand on a functional-unit class.
type ClassBound struct {
	Class  isa.UnitClass `json:"-"`
	Name   string        `json:"class"`
	Count  int64         `json:"count"`  // minimum instruction census
	Demand int64         `json:"demand"` // minimum issue-cycle demand
	Units  int           `json:"units"`
	Cycles int64         `json:"cycles"` // ceil(Demand/Units)
}

// Bounds is the full static lower-bound report.
type Bounds struct {
	Machine Machine       `json:"machine"`
	Threads []ThreadBound `json:"threads"`
	Classes []ClassBound  `json:"classes"`

	// TotalCount is the minimum whole-program instruction census
	// (decode events) every execution must pay for.
	TotalCount int64 `json:"totalCount"`
	// DepBound, ResourceBound and IssueBound are the three component
	// lower bounds in cycles, each including the startup floor.
	DepBound      int64 `json:"depBound"`
	ResourceBound int64 `json:"resourceBound"`
	IssueBound    int64 `json:"issueBound"`
	// Bound is the final certificate: max of the three components.
	Bound int64 `json:"bound"`

	// Unbounded: some thread that provably runs can never reach a halt,
	// so no finite execution exists and Bound saturates.
	Unbounded bool `json:"unbounded"`
	// KillReachable weakens the combination to the last-surviving-thread
	// floor: a reachable kill may terminate every other thread early.
	KillReachable bool `json:"killReachable"`
	// MustFork: every terminating path of some entry passes a ffork, so
	// the ThreadSlots-1 forked children provably run and their demand
	// counts toward the resource bound.
	MustFork bool `json:"mustFork"`
}

// blockWeights carries the per-block costs the shortest-path runs consume.
type blockWeights struct {
	span   []int64                         // dependence span (sched.DepSpan)
	count  []int64                         // instruction count
	demand [isa.NumUnitClasses + 1][]int64 // per-class issue-latency sum
}

// ComputeBounds computes static lower bounds on execution cycles for an
// instruction text on a machine shape. entries are the thread start PCs
// (nil means a single thread at PC 0), matching hirata.RunMT's startPCs.
func ComputeBounds(text []isa.Instruction, entries []int, m Machine) Bounds {
	m = m.normalized()
	b := Bounds{Machine: m}
	if len(text) == 0 {
		return b
	}
	if len(entries) == 0 {
		entries = []int{0}
	}
	var starts []int
	for _, e := range entries {
		if e >= 0 && e < len(text) {
			starts = append(starts, e)
		}
	}
	if len(starts) == 0 {
		return b
	}
	g := buildCFG(text, starts)
	g.markReachable()

	// Queue-mapped registers communicate through the inter-slot FIFOs,
	// not the register file; dependence edges through them are dropped.
	var qRegs regset
	for _, in := range text {
		switch in.Op {
		case isa.QEN, isa.QENF:
			if in.Rs1.Valid() {
				qRegs |= regbit(in.Rs1)
			}
			if in.Rs2.Valid() {
				qRegs |= regbit(in.Rs2)
			}
		}
	}
	skip := func(r isa.Reg) bool { return qRegs.has(r) }

	w := blockWeights{
		span:  make([]int64, len(g.blocks)),
		count: make([]int64, len(g.blocks)),
	}
	for c := 1; c <= isa.NumUnitClasses; c++ {
		w.demand[c] = make([]int64, len(g.blocks))
	}
	killReachable := false
	exits := make([]bool, len(g.blocks))
	for bi, blk := range g.blocks {
		frag := text[blk.start:blk.end]
		w.span[bi] = int64(sched.DepSpan(frag, m.IssueWidth, skip))
		w.count[bi] = int64(len(frag))
		// Per-class demand comes from the shared census (sched.CensusOf)
		// so this resource bound and internal/model's characterizer count
		// functional-unit time identically.
		census := sched.CensusOf(frag)
		for c := 1; c <= isa.NumUnitClasses; c++ {
			w.demand[c][bi] = census[c].Demand
		}
		for _, in := range frag {
			if in.Op == isa.KILL && blk.reachable {
				killReachable = true
			}
		}
		exits[bi] = text[blk.end-1].Op == isa.HALT
	}
	b.KillReachable = killReachable

	// Per-start bounds: entry blocks, plus every reachable ffork
	// continuation (the start of forked children).
	entryBlocks := make([]int, 0, len(starts))
	for _, e := range starts {
		entryBlocks = append(entryBlocks, g.blockAt[e])
	}
	var forkBlocks []int
	seenFork := map[int]bool{}
	for bi, blk := range g.blocks {
		if !blk.reachable || text[blk.end-1].Op != isa.FFORK {
			continue
		}
		for _, e := range blk.succs {
			if e.kind == edgeFork && !seenFork[e.to] {
				seenFork[e.to] = true
				forkBlocks = append(forkBlocks, e.to)
			}
		}
		_ = bi
	}

	threadBound := func(start int, forked bool) ThreadBound {
		tb := ThreadBound{Start: g.blocks[start].start, Forked: forked}
		dep := minPathToExit(g, start, w.span, exits)
		cnt := minPathToExit(g, start, w.count, exits)
		if dep < 0 || cnt < 0 {
			tb.Unbounded = true
			tb.Cycles = boundInf
			return tb
		}
		tb.DepCycles = dep
		tb.Count = cnt
		tb.CountCycles = ceilDiv(cnt, int64(m.IssueWidth)) - 1
		if tb.CountCycles < 0 {
			tb.CountCycles = 0
		}
		tb.Cycles = startupCycles + max64(tb.DepCycles, tb.CountCycles)
		return tb
	}
	for _, eb := range entryBlocks {
		b.Threads = append(b.Threads, threadBound(eb, false))
	}
	for _, fb := range forkBlocks {
		b.Threads = append(b.Threads, threadBound(fb, true))
	}

	// Dependence bound. Without a reachable kill, every entry thread must
	// run from its entry to a halt, so the slowest entry's floor holds.
	// With a kill, only the eventual killer provably runs to completion,
	// and it may have started anywhere: take the min over all starts.
	if killReachable {
		b.DepBound = boundInf
		for _, tb := range b.Threads {
			if tb.Cycles < b.DepBound {
				b.DepBound = tb.Cycles
			}
		}
		b.Unbounded = b.DepBound >= boundInf
	} else {
		for i, tb := range b.Threads {
			if tb.Forked {
				continue
			}
			if tb.Cycles > b.DepBound {
				b.DepBound = tb.Cycles
			}
			b.Unbounded = b.Unbounded || tb.Unbounded
			_ = i
		}
	}
	if b.Unbounded {
		b.DepBound = boundInf
	}

	// MustFork: some entry's every terminating path crosses a fork edge,
	// so the children provably run (they must retire for the program to
	// end when no kill can reap them).
	if !killReachable && len(forkBlocks) > 0 {
		for _, eb := range entryBlocks {
			if minPathToExitNoFork(g, eb, w.count, exits) < 0 &&
				minPathToExit(g, eb, w.count, exits) >= 0 {
				b.MustFork = true
				break
			}
		}
	}

	// Whole-program census and per-class demand: sum of the cheapest
	// paths of every thread that provably runs.
	combine := func(weight []int64) int64 {
		if killReachable {
			// Last-survivor floor: the cheapest possible single thread.
			best := int64(-1)
			all := append(append([]int{}, entryBlocks...), forkBlocks...)
			for _, s := range all {
				if v := minPathToExit(g, s, weight, exits); v >= 0 && (best < 0 || v < best) {
					best = v
				}
			}
			if best < 0 {
				return 0
			}
			return best
		}
		total := int64(0)
		for _, eb := range entryBlocks {
			if v := minPathToExit(g, eb, weight, exits); v >= 0 {
				total += v
			}
		}
		if b.MustFork && m.ThreadSlots > 1 {
			best := int64(-1)
			for _, fb := range forkBlocks {
				if v := minPathToExit(g, fb, weight, exits); v >= 0 && (best < 0 || v < best) {
					best = v
				}
			}
			if best > 0 {
				total += int64(m.ThreadSlots-1) * best
			}
		}
		return total
	}

	b.TotalCount = combine(w.count)
	fuCount := int64(0)
	for c := isa.UnitClass(1); int(c) <= isa.NumUnitClasses; c++ {
		cb := ClassBound{
			Class:  c,
			Name:   c.String(),
			Count:  combine(classCountWeights(g, text, c)),
			Demand: combine(w.demand[c]),
			Units:  m.Units[c],
		}
		cb.Cycles = ceilDiv(cb.Demand, int64(cb.Units))
		fuCount += cb.Count
		b.Classes = append(b.Classes, cb)
	}

	resource := int64(0)
	for _, cb := range b.Classes {
		if cb.Cycles > resource {
			resource = cb.Cycles
		}
	}
	b.ResourceBound = startupCycles + resource

	issue := ceilDiv(b.TotalCount, int64(m.ThreadSlots*m.IssueWidth)) - 1
	if m.MaxIssuePerCycle > 0 {
		// The cap applies to at least the functional-unit instructions,
		// a subset of all decodes, so this stays a lower bound.
		if v := ceilDiv(fuCount, int64(m.MaxIssuePerCycle)) - 1; v > issue {
			issue = v
		}
	}
	if issue < 0 {
		issue = 0
	}
	b.IssueBound = startupCycles + issue

	b.Bound = max64(b.DepBound, max64(b.ResourceBound, b.IssueBound))
	if b.Unbounded {
		b.Bound = boundInf
	}
	return b
}

// classCountWeights builds the per-block instruction count restricted to
// one functional-unit class (for the census rows of the CPI stack), using
// the same shared census as the demand weights.
func classCountWeights(g *cfg, text []isa.Instruction, c isa.UnitClass) []int64 {
	w := make([]int64, len(g.blocks))
	for bi, blk := range g.blocks {
		w[bi] = sched.CensusOf(text[blk.start:blk.end])[c].Count
	}
	return w
}

// minPathToExit returns the minimum sum of block weights over any CFG
// path from start to a halt-terminated block (weights of both endpoints
// included), or -1 when no exit is reachable. Dijkstra over non-negative
// node weights.
func minPathToExit(g *cfg, start int, weight []int64, exits []bool) int64 {
	return minPath(g, start, weight, exits, false)
}

// minPathToExitNoFork is minPathToExit with fork edges removed, for the
// must-fork test: a start that loses all exits without fork edges must
// fork on every terminating path.
func minPathToExitNoFork(g *cfg, start int, weight []int64, exits []bool) int64 {
	return minPath(g, start, weight, exits, true)
}

func minPath(g *cfg, start int, weight []int64, exits []bool, skipFork bool) int64 {
	const unseen = int64(-1)
	dist := make([]int64, len(g.blocks))
	done := make([]bool, len(g.blocks))
	for i := range dist {
		dist[i] = unseen
	}
	dist[start] = weight[start]
	h := &blockHeap{}
	h.push(start, dist[start])
	for h.len() > 0 {
		bi, d := h.pop()
		if done[bi] {
			continue
		}
		done[bi] = true
		if exits[bi] {
			return d
		}
		for _, e := range g.blocks[bi].succs {
			if skipFork && e.kind == edgeFork {
				continue
			}
			nd := d + weight[e.to]
			if dist[e.to] == unseen || nd < dist[e.to] {
				dist[e.to] = nd
				h.push(e.to, nd)
			}
		}
	}
	return -1
}

// blockHeap is a minimal binary min-heap of (block, distance) pairs.
type blockHeap struct {
	bi []int
	d  []int64
}

func (h *blockHeap) len() int { return len(h.bi) }

func (h *blockHeap) push(bi int, d int64) {
	h.bi = append(h.bi, bi)
	h.d = append(h.d, d)
	i := len(h.bi) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.d[p] <= h.d[i] {
			break
		}
		h.bi[p], h.bi[i] = h.bi[i], h.bi[p]
		h.d[p], h.d[i] = h.d[i], h.d[p]
		i = p
	}
}

func (h *blockHeap) pop() (int, int64) {
	bi, d := h.bi[0], h.d[0]
	last := len(h.bi) - 1
	h.bi[0], h.d[0] = h.bi[last], h.d[last]
	h.bi, h.d = h.bi[:last], h.d[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h.bi) && h.d[l] < h.d[s] {
			s = l
		}
		if r < len(h.bi) && h.d[r] < h.d[s] {
			s = r
		}
		if s == i {
			break
		}
		h.bi[s], h.bi[i] = h.bi[i], h.bi[s]
		h.d[s], h.d[i] = h.d[i], h.d[s]
		i = s
	}
	return bi, d
}

// Format renders the bounds as a static CPI-stack-style report.
func (b Bounds) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "static lower bound: %s cycles (machine: %d slots x width %d)\n",
		boundStr(b.Bound), b.Machine.ThreadSlots, b.Machine.IssueWidth)
	fmt.Fprintf(&sb, "  dependence bound: %s  resource bound: %s  issue bound: %s\n",
		boundStr(b.DepBound), boundStr(b.ResourceBound), boundStr(b.IssueBound))
	flags := []string{}
	if b.KillReachable {
		flags = append(flags, "kill reachable: last-survivor floor")
	}
	if b.MustFork {
		flags = append(flags, fmt.Sprintf("must-fork: %d children counted", b.Machine.ThreadSlots-1))
	}
	if b.Unbounded {
		flags = append(flags, "unbounded: some thread never reaches halt")
	}
	if len(flags) > 0 {
		fmt.Fprintf(&sb, "  %s\n", strings.Join(flags, "; "))
	}
	threads := append([]ThreadBound(nil), b.Threads...)
	sort.SliceStable(threads, func(i, j int) bool { return threads[i].Start < threads[j].Start })
	for _, t := range threads {
		kind := "entry"
		if t.Forked {
			kind = "fork child"
		}
		if t.Unbounded {
			fmt.Fprintf(&sb, "  thread %-10s pc %-5d unbounded (no reachable halt)\n", kind, t.Start)
			continue
		}
		fmt.Fprintf(&sb, "  thread %-10s pc %-5d >= %d cycles (dep %d, count %d/%d-wide)\n",
			kind, t.Start, t.Cycles, t.DepCycles, t.Count, b.Machine.IssueWidth)
	}
	fmt.Fprintf(&sb, "  instruction census (minimum): %d total\n", b.TotalCount)
	fmt.Fprintf(&sb, "  %-10s %8s %8s %6s %8s\n", "class", "count", "demand", "units", "cycles")
	for _, cb := range b.Classes {
		if cb.Count == 0 && cb.Demand == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  %-10s %8d %8d %6d %8d\n", cb.Name, cb.Count, cb.Demand, cb.Units, cb.Cycles)
	}
	return sb.String()
}

func boundStr(v int64) string {
	if v >= boundInf {
		return "unbounded"
	}
	return fmt.Sprintf("%d", v)
}
