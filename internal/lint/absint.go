package lint

// This file implements the numeric abstract domain of the cross-thread
// analysis (docs/LINT.md, "Abstract domains and happens-before"). An
// abstract value describes a set of int64 values as
//
//	{ tc*tid + x : lo <= x <= hi, (x - res) mod m in [0, resW] }
//
// i.e. an interval combined with a congruence (a wrapped residue window
// modulo m) plus an optional symbolic multiple of the thread identifier.
// The tid term is what lets one analysis pass describe all forked threads
// at once: `tid*8 + base` is a different concrete address per thread, and
// two such sets for distinct tids can be proven disjoint.
//
// Bounds saturate at +/-aInfMag, far beyond any realistic data address but
// small enough that sums never overflow int64.

const (
	aInfMag = int64(1) << 42
	aNegInf = -aInfMag
	aPosInf = aInfMag
)

// aval is one abstract value. The zero value is the constant 0.
type aval struct {
	bot    bool  // empty set (infeasible path)
	tc     int64 // coefficient of the thread identifier
	lo, hi int64 // interval bounds of the offset part (saturating)
	m      int64 // congruence modulus (>= 1; 1 = no congruence info)
	res    int64 // window start residue, in [0, m)
	resW   int64 // window width: residues res..res+resW (mod m)
}

func topVal() aval { return aval{lo: aNegInf, hi: aPosInf, m: 1} }
func botVal() aval { return aval{bot: true} }
func constVal(c int64) aval {
	if c <= aNegInf || c >= aPosInf {
		return topVal()
	}
	return aval{lo: c, hi: c, m: 1}
}

func (v aval) isTop() bool {
	return !v.bot && v.tc == 0 && v.lo == aNegInf && v.hi == aPosInf && v.m <= 1
}

// isConst reports whether v is a single known constant (no tid term).
func (v aval) isConst() (int64, bool) {
	if !v.bot && v.tc == 0 && v.lo == v.hi {
		return v.lo, true
	}
	return 0, false
}

func pmod(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// egcd returns g = gcd(a,b) and x,y with a*x + b*y = g. Inputs must be > 0.
func egcd(a, b int64) (g, x, y int64) {
	if b == 0 {
		return a, 1, 0
	}
	g, x1, y1 := egcd(b, a%b)
	return g, y1, x1 - (a/b)*y1
}

func clampInf(v int64) int64 {
	if v < aNegInf {
		return aNegInf
	}
	if v > aPosInf {
		return aPosInf
	}
	return v
}

func satAdd(a, b int64) int64 { return clampInf(a + b) }

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	neg := (a < 0) != (b < 0)
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > aPosInf/b {
		if neg {
			return aNegInf
		}
		return aPosInf
	}
	if neg {
		return -a * b
	}
	return a * b
}

// norm canonicalises v: modulus sanity, window collapse, singleton
// collapse, and snapping finite bounds to the nearest congruence member
// (which is what makes interval/congruence disjointness proofs exact for
// strided array accesses).
func (v aval) norm() aval {
	if v.bot {
		return botVal()
	}
	v.lo, v.hi = clampInf(v.lo), clampInf(v.hi)
	if v.m < 1 {
		v.m = 1
	}
	if v.resW < 0 {
		v.resW = 0
	}
	if v.resW >= v.m-1 {
		v.m, v.res, v.resW = 1, 0, 0
	}
	v.res = pmod(v.res, v.m)
	if v.m > 1 {
		if v.lo > aNegInf {
			if d := pmod(v.lo-v.res, v.m); d > v.resW {
				v.lo += v.m - d // snap up to the window start
			}
		}
		if v.hi < aPosInf {
			if d := pmod(v.hi-v.res, v.m); d > v.resW {
				v.hi -= d - v.resW // snap down to the window end
			}
		}
	}
	if v.lo > v.hi {
		return botVal()
	}
	if v.lo == v.hi {
		v.m, v.res, v.resW = 1, 0, 0
	}
	return v
}

// member reports whether concrete x (with tid already folded/substituted,
// so only for tc==0 values) lies in v.
func (v aval) member(x int64) bool {
	if v.bot || x < v.lo || x > v.hi {
		return false
	}
	return pmod(x-v.res, v.m) <= v.resW
}

// tidRange is a state's bound on the thread identifier.
type tidRange struct{ lo, hi int64 }

// foldTid removes the tid term by adding tc*[tr.lo, tr.hi] into the
// interval, weakening the congruence to the part the tid term preserves.
func (v aval) foldTid(tr tidRange) aval {
	if v.bot || v.tc == 0 {
		return v
	}
	a, b := satMul(v.tc, tr.lo), satMul(v.tc, tr.hi)
	if a > b {
		a, b = b, a
	}
	v.lo, v.hi = satAdd(v.lo, a), satAdd(v.hi, b)
	if g := gcd64(v.m, v.tc); g > 1 {
		// tc is a multiple of g, so residues mod g are unchanged.
		v.m, v.res = g, pmod(v.res, g)
	} else {
		v.m, v.res, v.resW = 1, 0, 0
	}
	v.tc = 0
	return v.norm()
}

// substTid substitutes the concrete thread id t for the tid term.
func (v aval) substTid(t int64) aval {
	if v.bot || v.tc == 0 {
		return v
	}
	c := satMul(v.tc, t)
	v.lo, v.hi = satAdd(v.lo, c), satAdd(v.hi, c)
	v.res = pmod(v.res+c, v.m)
	v.tc = 0
	return v.norm()
}

// windowIn expresses all offset values of v as one wrapped residue window
// modulo m, when that is possible without losing members.
func (v aval) windowIn(m int64) (res, resW int64, ok bool) {
	switch {
	case v.lo == v.hi:
		return pmod(v.lo, m), 0, true
	case v.m%m == 0:
		return pmod(v.res, m), v.resW, true
	case v.lo > aNegInf && v.hi < aPosInf && v.hi-v.lo < m:
		return pmod(v.lo, m), v.hi - v.lo, true
	}
	return 0, 0, false
}

// windowHull returns the smaller wrapped window (mod m) covering both
// [r1, r1+w1] and [r2, r2+w2].
func windowHull(m, r1, w1, r2, w2 int64) (res, resW int64) {
	c1 := w1
	if d := pmod(r2-r1, m) + w2; d > c1 {
		c1 = d
	}
	c2 := w2
	if d := pmod(r1-r2, m) + w1; d > c2 {
		c2 = d
	}
	if c1 <= c2 {
		return r1, c1
	}
	return r2, c2
}

// joinVal computes the least upper bound of a and b. The tid ranges of the
// states each value came from are needed to fold mismatched tid terms.
func joinVal(a, b aval, ta, tb tidRange) aval {
	if a.bot {
		return b
	}
	if b.bot {
		return a
	}
	if a.tc != b.tc {
		a, b = a.foldTid(ta), b.foldTid(tb)
		if a.bot {
			return b
		}
		if b.bot {
			return a
		}
	}
	out := aval{tc: a.tc}
	out.lo, out.hi = min64(a.lo, b.lo), max64(a.hi, b.hi)
	switch {
	case a.lo == a.hi && b.lo == b.hi:
		// Two constants: their join is an exact arithmetic progression.
		// This is how loop strides are discovered (base joined with
		// base+stride gives modulus stride).
		d := a.lo - b.lo
		if d < 0 {
			d = -d
		}
		if d == 0 {
			return a
		}
		out.m, out.res, out.resW = d, pmod(a.lo, d), 0
	case a.lo == a.hi:
		r, w := windowHull(b.m, pmod(a.lo, b.m), 0, b.res, b.resW)
		out.m, out.res, out.resW = b.m, r, w
	case b.lo == b.hi:
		r, w := windowHull(a.m, a.res, a.resW, pmod(b.lo, a.m), 0)
		out.m, out.res, out.resW = a.m, r, w
	default:
		g := gcd64(a.m, b.m)
		if g > 1 {
			r, w := windowHull(g, pmod(a.res, g), a.resW, pmod(b.res, g), b.resW)
			out.m, out.res, out.resW = g, r, w
		} else {
			out.m = 1
		}
	}
	return out.norm()
}

// addVals computes a + b.
func addVals(a, b aval) aval {
	if a.bot || b.bot {
		return botVal()
	}
	out := aval{tc: a.tc + b.tc, lo: satAdd(a.lo, b.lo), hi: satAdd(a.hi, b.hi), m: 1}
	// Congruence of the sum: try folding one operand into the other's
	// modulus (exact when possible), falling back to the gcd.
	type cand struct{ m, res, resW int64 }
	var cs []cand
	if b.m > 1 {
		if r, w, ok := a.windowIn(b.m); ok {
			cs = append(cs, cand{b.m, pmod(r+b.res, b.m), w + b.resW})
		}
	}
	if a.m > 1 {
		if r, w, ok := b.windowIn(a.m); ok {
			cs = append(cs, cand{a.m, pmod(r+a.res, a.m), w + a.resW})
		}
	}
	if g := gcd64(a.m, b.m); g > 1 {
		cs = append(cs, cand{g, pmod(a.res+b.res, g), a.resW + b.resW})
	}
	for _, c := range cs {
		if c.resW < c.m-1 && c.m > out.m {
			out.m, out.res, out.resW = c.m, c.res, c.resW
		}
	}
	return out.norm()
}

// negVal computes -a.
func negVal(a aval) aval {
	if a.bot {
		return a
	}
	out := aval{tc: -a.tc, lo: -a.hi, hi: -a.lo, m: a.m, resW: a.resW}
	out.res = pmod(-(a.res + a.resW), a.m)
	return out.norm()
}

func subVals(a, b aval) aval { return addVals(a, negVal(b)) }

// mulConst computes a * k.
func mulConst(a aval, k int64) aval {
	if a.bot {
		return a
	}
	switch k {
	case 0:
		return constVal(0)
	case 1:
		return a
	}
	if k < 0 {
		return negVal(mulConst(a, -k))
	}
	out := aval{m: 1}
	if a.tc != 0 {
		tc := satMul(a.tc, k)
		if tc <= aNegInf || tc >= aPosInf {
			return topVal()
		}
		out.tc = tc
	}
	out.lo, out.hi = satMul(a.lo, k), satMul(a.hi, k)
	m, res, resW := satMul(a.m, k), satMul(a.res, k), satMul(a.resW, k)
	if m < aPosInf && res < aPosInf && resW < aPosInf {
		out.m, out.res, out.resW = m, pmod(res, m), resW
	} else {
		// Every product is a multiple of k.
		out.m, out.res, out.resW = k, 0, 0
	}
	return out.norm()
}

// divConst computes a / k (Go truncating division) for k > 0, tc == 0.
func divConst(a aval, k int64) aval {
	if a.bot {
		return a
	}
	if a.tc != 0 || k <= 0 {
		return topVal()
	}
	out := aval{lo: a.lo, hi: a.hi, m: 1}
	if out.lo > aNegInf {
		out.lo = a.lo / k
	}
	if out.hi < aPosInf {
		out.hi = a.hi / k
	}
	return out.norm()
}

// remConst computes a % k (Go sign-follows-dividend) for k > 0, tc == 0.
func remConst(a aval, k int64) aval {
	if a.bot {
		return a
	}
	if a.tc != 0 || k <= 0 {
		return topVal()
	}
	if a.lo >= 0 && a.resW == 0 && a.m%k == 0 {
		return constVal(pmod(a.res, k))
	}
	out := aval{lo: 0, hi: k - 1, m: 1}
	if a.lo < 0 {
		out.lo = -(k - 1)
	}
	out.lo, out.hi = max64(out.lo, a.lo), min64(out.hi, a.hi)
	return out.norm()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
