package lint_test

import (
	"testing"

	"hirata/internal/asm"
	"hirata/internal/lint"
)

// dlCfg is the baseline configuration of the deadlock tests: two thread
// slots so ring arithmetic stays readable.
func dlCfg(entries ...int) lint.Config {
	return lint.Config{Entries: entries, ThreadSlots: 2, Deadlock: true}
}

func runLint(t *testing.T, src string, cfg lint.Config) []lint.Diagnostic {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return lint.AnalyzeProgram(p, cfg)
}

func codesAt(ds []lint.Diagnostic, code lint.Code) []int {
	var pcs []int
	for _, d := range ds {
		if d.Code == code {
			pcs = append(pcs, d.PC)
		}
	}
	return pcs
}

// TestRingDeadlockNoProducer: slot 0 pops from its in-queue, but its ring
// producer (slot 1) never pushes anything.
func TestRingDeadlockNoProducer(t *testing.T) {
	src := "\tqen r20, r21\n" + // pc 0
		"\tadd r1, r20, r0\n" + // pc 1: pop — blocks forever
		"\thalt\n" + // pc 2
		"\thalt\n" // pc 3: slot 1 entry, no queue use
	ds := runLint(t, src, dlCfg(0, 3))
	if pcs := codesAt(ds, lint.CodeQueueRingDeadlock); len(pcs) != 1 || pcs[0] != 1 {
		t.Fatalf("L015 pcs = %v, want [1]\nall: %v", pcs, ds)
	}
}

// TestRingDeadlockCyclicWait: both slots read before writing — the ring
// fixpoint proves neither can ever push, and both first reads are flagged.
func TestRingDeadlockCyclicWait(t *testing.T) {
	src := "\tqen r20, r21\n" + // pc 0: slot 0
		"\tadd r1, r20, r0\n" + // pc 1: pop before any push
		"\tadd r21, r1, r0\n" + // pc 2: push (too late)
		"\thalt\n" + // pc 3
		"\tqen r20, r21\n" + // pc 4: slot 1
		"\tadd r1, r20, r0\n" + // pc 5: pop before any push
		"\tadd r21, r1, r0\n" + // pc 6: push (too late)
		"\thalt\n" // pc 7
	ds := runLint(t, src, dlCfg(0, 4))
	pcs := codesAt(ds, lint.CodeQueueRingDeadlock)
	if len(pcs) != 2 || pcs[0] != 1 || pcs[1] != 5 {
		t.Fatalf("L015 pcs = %v, want [1 5]\nall: %v", pcs, ds)
	}
}

// TestRingDeadlockCleanPipeline: slot 0 pushes before it pops, so both
// slots make progress; the ring fixpoint clears everything.
func TestRingDeadlockCleanPipeline(t *testing.T) {
	src := "\tqen r20, r21\n" + // slot 0: producer
		"\tadd r21, r0, r0\n" + // push first
		"\tadd r1, r20, r0\n" + // then pop the reply
		"\thalt\n" +
		"\tqen r20, r21\n" + // pc 4: slot 1: relay
		"\tadd r1, r20, r0\n" + // pop
		"\tadd r21, r1, r0\n" + // push back
		"\thalt\n"
	ds := runLint(t, src, dlCfg(0, 4))
	for _, code := range []lint.Code{lint.CodeQueueRingDeadlock, lint.CodeQueueOverflow} {
		if pcs := codesAt(ds, code); len(pcs) != 0 {
			t.Fatalf("%s pcs = %v, want none\nall: %v", code, pcs, ds)
		}
	}
}

// TestQueueOverflow: slot 0 pushes twice toward slot 1, which never pops;
// with the default depth-1 FIFO the second push must stall forever.
func TestQueueOverflow(t *testing.T) {
	src := "\tqen r20, r21\n" + // pc 0
		"\tadd r21, r0, r0\n" + // pc 1: push 1 (fills the FIFO)
		"\tadd r21, r0, r0\n" + // pc 2: push 2 (stalls forever)
		"\thalt\n" + // pc 3
		"\thalt\n" // pc 4: slot 1, never pops
	ds := runLint(t, src, dlCfg(0, 4))
	if pcs := codesAt(ds, lint.CodeQueueOverflow); len(pcs) != 1 || pcs[0] != 2 {
		t.Fatalf("L016 pcs = %v, want [2]\nall: %v", pcs, ds)
	}
}

// TestQueueOverflowLoop: a push on a control-flow cycle toward a
// non-popping consumer is flagged regardless of static count.
func TestQueueOverflowLoop(t *testing.T) {
	src := "\tqen r20, r21\n" + // pc 0
		"loop:\tadd r21, r0, r0\n" + // pc 1: push in a loop
		"\tj loop\n" + // pc 2
		"\thalt\n" + // pc 3: slot 1
		"" // (slot 0 never halts; L008 does not apply to loops)
	ds := runLint(t, src, dlCfg(0, 3))
	if pcs := codesAt(ds, lint.CodeQueueOverflow); len(pcs) != 1 || pcs[0] != 1 {
		t.Fatalf("L016 pcs = %v, want [1]\nall: %v", pcs, ds)
	}
}

// TestRingDeadlockKillSuppresses: a reachable kill may reap the blocked
// reader, so the forever-block proof no longer holds and nothing is
// reported.
func TestRingDeadlockKillSuppresses(t *testing.T) {
	src := "\tqen r20, r21\n" +
		"\tadd r1, r20, r0\n" + // pop with a dead producer…
		"\thalt\n" +
		"\tkill\n" + // …but slot 1 kills everyone
		"\thalt\n"
	ds := runLint(t, src, dlCfg(0, 3))
	if pcs := codesAt(ds, lint.CodeQueueRingDeadlock); len(pcs) != 0 {
		t.Fatalf("L015 pcs = %v, want none (kill reachable)\nall: %v", pcs, ds)
	}
}

// spinCfg enables the spin check: L017 needs the cross-thread value
// analysis for its folded address sets.
func spinCfg(entries ...int) lint.Config {
	return lint.Config{Entries: entries, ThreadSlots: 2, Deadlock: true, InterThread: true}
}

// TestUnboundedSpin: a wait loop polling a word no store in the program
// ever writes can never be released.
func TestUnboundedSpin(t *testing.T) {
	src := "\t.data\n" +
		"\t.org 10\n" +
		"flag:\t.word 0\n" +
		"\t.text\n" +
		"loop:\tlw r1, 10(r0)\n" + // pc 0: poll
		"\tbeqz r1, loop\n" + // pc 1: spin while zero — nobody sets it
		"\thalt\n" // pc 2
	ds := runLint(t, src, spinCfg(0))
	if pcs := codesAt(ds, lint.CodeUnboundedSpin); len(pcs) != 1 || pcs[0] != 1 {
		t.Fatalf("L017 pcs = %v, want [1]\nall: %v", pcs, ds)
	}
}

// TestUnboundedSpinReleasedByStore: the same loop with a second thread
// that stores the flag is a legitimate wait and must stay clean.
func TestUnboundedSpinReleasedByStore(t *testing.T) {
	src := "\t.data\n" +
		"\t.org 10\n" +
		"flag:\t.word 0\n" +
		"\t.text\n" +
		"loop:\tlw r1, 10(r0)\n" + // pc 0
		"\tbeqz r1, loop\n" + // pc 1
		"\thalt\n" + // pc 2
		"\tli r2, 1\n" + // pc 3: slot 1 releases the spin
		"\tsw r2, 10(r0)\n" + // pc 4
		"\thalt\n" // pc 5
	ds := runLint(t, src, spinCfg(0, 3))
	if pcs := codesAt(ds, lint.CodeUnboundedSpin); len(pcs) != 0 {
		t.Fatalf("L017 pcs = %v, want none (a store releases the wait)\nall: %v", pcs, ds)
	}
}

// TestCountedLoopNotSpin: a plain counted loop must not be mistaken for a
// spin — the counter is defined inside the loop, so it is not invariant.
func TestCountedLoopNotSpin(t *testing.T) {
	src := "\tli r1, 10\n" + // pc 0
		"loop:\taddi r1, r1, -1\n" + // pc 1
		"\tbnez r1, loop\n" + // pc 2
		"\thalt\n" // pc 3
	ds := runLint(t, src, spinCfg(0))
	if pcs := codesAt(ds, lint.CodeUnboundedSpin); len(pcs) != 0 {
		t.Fatalf("L017 pcs = %v, want none (counted loop)\nall: %v", pcs, ds)
	}
}

// TestLoadBoundedLoopNotSpin: a loop whose exit depends on a load with an
// in-loop varying address (walking a list) is not invariant either.
func TestLoadBoundedLoopNotSpin(t *testing.T) {
	src := "\t.data\n" +
		"\t.org 10\n" +
		"list:\t.word 11, 12, 0\n" +
		"\t.text\n" +
		"\tli r1, 10\n" + // pc 0
		"loop:\tlw r1, 0(r1)\n" + // pc 1: next pointer
		"\tbnez r1, loop\n" + // pc 2
		"\thalt\n" // pc 3
	ds := runLint(t, src, spinCfg(0))
	if pcs := codesAt(ds, lint.CodeUnboundedSpin); len(pcs) != 0 {
		t.Fatalf("L017 pcs = %v, want none (varying load address)\nall: %v", pcs, ds)
	}
}

// TestDeadlockAllowDirective: `.lint allow L015` suppresses the ring
// deadlock like any other code.
func TestDeadlockAllowDirective(t *testing.T) {
	src := "\t.lint allow L015\n" +
		"\tqen r20, r21\n" +
		"\tadd r1, r20, r0\n" +
		"\thalt\n" +
		"\thalt\n"
	ds := runLint(t, src, dlCfg(0, 3))
	if pcs := codesAt(ds, lint.CodeQueueRingDeadlock); len(pcs) != 0 {
		t.Fatalf("L015 pcs = %v, want none (allowed)\nall: %v", pcs, ds)
	}
}
