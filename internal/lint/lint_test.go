package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hirata/internal/asm"
	"hirata/internal/lint"
)

// diagAt reports whether ds contains a diagnostic with the given code at
// the given pc.
func diagAt(ds []lint.Diagnostic, code lint.Code, pc int) bool {
	for _, d := range ds {
		if d.Code == code && d.PC == pc {
			return true
		}
	}
	return false
}

// TestDiagnosticsFixtures holds one known-bad program per diagnostic code
// and asserts the exact position (pc and 1-based source line) of each
// finding.
func TestDiagnosticsFixtures(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		code    lint.Code
		pc      int
		line    int
		extraOK []lint.Code // other codes allowed to co-fire
	}{
		{
			name: "uninit-read",
			src: "\taddi r1, r0, 1\n" +
				"\tadd  r3, r1, r2\n" + // r2 never written
				"\thalt\n",
			code: lint.CodeUninitRead, pc: 1, line: 2,
		},
		{
			name: "uninit-read-fp",
			src: "\tfadd f3, f1, f2\n" + // f1, f2 never written
				"\thalt\n",
			code: lint.CodeUninitRead, pc: 0, line: 1,
		},
		{
			name: "bad-target-data-label",
			src: "\t.data\n" +
				"\t.org 100\n" +
				"v:\t.word 1\n" +
				"\t.text\n" +
				"\tj v\n" + // jumps to data address 100, text has 2 instructions
				"\thalt\n",
			code: lint.CodeBadTarget, pc: 0, line: 5,
		},
		{
			name: "bad-target-ffork-at-end",
			src: "\tnop\n" +
				"\tffork\n", // children would start past the end
			code: lint.CodeBadTarget, pc: 1, line: 2,
			extraOK: []lint.Code{lint.CodeNoHalt},
		},
		{
			name: "split-li",
			src: "\t.equ MID 1\n" +
				"\tli r1, 100000\n" + // expands to lih(0) + addi(1)
				"\tj MID\n" +
				"\thalt\n",
			code: lint.CodeSplitLI, pc: 2, line: 3,
		},
		{
			name: "unreachable",
			src: "\tj end\n" +
				"\tadd r1, r0, r0\n" + // skipped forever
				"end:\thalt\n",
			code: lint.CodeUnreachable, pc: 1, line: 2,
		},
		{
			name: "queue-write-to-read-mapped",
			src: "\tqen r20, r21\n" +
				"\tmov r20, r0\n" + // write lands in the register file, not the queue
				"\tmov r1, r20\n" +
				"\thalt\n",
			code: lint.CodeQueueProtocol, pc: 1, line: 2,
			extraOK: []lint.Code{lint.CodeQueueDeadlock},
		},
		{
			name: "queue-read-of-write-mapped",
			src: "\tqen r20, r21\n" +
				"\tmov r1, r21\n" + // reads the stale register file
				"\thalt\n",
			code: lint.CodeQueueProtocol, pc: 1, line: 2,
		},
		{
			name: "qdis-without-mapping",
			src: "\tqdis\n" +
				"\thalt\n",
			code: lint.CodeQueueProtocol, pc: 0, line: 1,
		},
		{
			name: "queue-read-no-producer",
			src: "\tqen r20, r21\n" +
				"\tmov r1, r20\n" + // pops forever, nothing pushes
				"\thalt\n",
			code: lint.CodeQueueDeadlock, pc: 1, line: 2,
		},
		{
			name: "queue-write-no-consumer-loop",
			src: "\tqen r20, r21\n" +
				"loop:\tmov r21, r0\n" + // pushes in a loop, nothing pops
				"\tj loop\n",
			code: lint.CodeQueueDeadlock, pc: 1, line: 2,
		},
		{
			name: "setmode-bad-operand",
			src: "\tsetmode 3\n" +
				"\thalt\n",
			code: lint.CodeThreadControl, pc: 0, line: 1,
		},
		{
			name: "kill-single-threaded",
			src: "\tkill\n" +
				"\thalt\n",
			code: lint.CodeThreadControl, pc: 0, line: 1,
			extraOK: []lint.Code{lint.CodeUnreachable},
		},
		{
			name: "ffork-in-loop",
			src: "loop:\tffork\n" +
				"\tj loop\n",
			code: lint.CodeThreadControl, pc: 0, line: 1,
		},
		{
			name: "no-halt",
			src:  "\taddi r1, r0, 1\n",
			code: lint.CodeNoHalt, pc: 0, line: 1,
		},
		{
			name: "readonly-write",
			src: "\taddi r0, r0, 5\n" +
				"\thalt\n",
			code: lint.CodeReadonlyWrite, pc: 0, line: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := asm.Assemble(tc.src)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			ds := lint.Analyze(p)
			if !diagAt(ds, tc.code, tc.pc) {
				t.Fatalf("want %s at pc %d, got: %v", tc.code, tc.pc, ds)
			}
			allowed := map[lint.Code]bool{tc.code: true}
			for _, c := range tc.extraOK {
				allowed[c] = true
			}
			for _, d := range ds {
				if !allowed[d.Code] {
					t.Errorf("unexpected extra diagnostic: %v", d)
				}
				if d.Code == tc.code && d.PC == tc.pc && d.Line != tc.line {
					t.Errorf("diagnostic line = %d, want %d (%v)", d.Line, tc.line, d)
				}
			}
		})
	}
}

// TestCleanPrograms holds minimal programs that exercise each feature
// correctly and must produce zero findings.
func TestCleanPrograms(t *testing.T) {
	cases := map[string]string{
		"basic-loop": "\tli r1, 10\n" +
			"\tli r2, 0\n" +
			"loop:\tadd r2, r2, r1\n" +
			"\taddi r1, r1, -1\n" +
			"\tbnez r1, loop\n" +
			"\thalt\n",
		"call-return": "\tli r1, 3\n" +
			"\tcall fn\n" +
			"\tmov r2, r1\n" +
			"\thalt\n" +
			"fn:\taddi r1, r1, 1\n" +
			"\tret\n",
		"fork-queue-ring": "\tffork\n" +
			"\ttid r1\n" +
			"\tqen r20, r21\n" +
			"\tmov r21, r1\n" + // push my tid to the next slot
			"\tmov r2, r20\n" + // pop the previous slot's tid
			"\tqdis\n" +
			"\thalt\n",
		"fork-kill": "\tffork\n" +
			"\ttid r1\n" +
			"\tbeqz r1, primary\n" +
			"\tkill\n" +
			"primary:\thalt\n",
		"setmode-both": "\tsetmode 1\n" +
			"\tsetmode 0\n" +
			"\thalt\n",
		"infinite-loop-with-dead-halt": "loop:\tnop\n" +
			"\tj loop\n" +
			"\thalt\n", // compiler-style trailing halt is not flagged
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			p, err := asm.Assemble(src)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			if ds := lint.Analyze(p); len(ds) != 0 {
				t.Fatalf("expected clean, got: %v", ds)
			}
		})
	}
}

// TestExamplesLintClean requires every shipped example program to verify
// with zero findings.
func TestExamplesLintClean(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "programs", "*.s"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example programs found")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			p, err := asm.Assemble(string(src))
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			for _, d := range lint.Analyze(p) {
				t.Errorf("%s: %v", filepath.Base(path), d)
			}
		})
	}
}

// TestDiagnosticString pins the human-readable rendering.
func TestDiagnosticString(t *testing.T) {
	p := asm.MustAssemble("\tadd r3, r1, r2\n\thalt\n")
	ds := lint.Analyze(p)
	if len(ds) == 0 {
		t.Fatal("expected findings")
	}
	s := ds[0].String()
	for _, want := range []string{"L001", "uninit-read", "pc 0", "line 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	js, err := lint.MarshalJSONList(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), `"code": "L001"`) {
		t.Errorf("JSON output missing code: %s", js)
	}
}

// TestAnalyzeTextEntries checks multi-entry analysis and bad entries.
func TestAnalyzeTextEntries(t *testing.T) {
	p := asm.MustAssemble("\thalt\n\thalt\n")
	ds := lint.AnalyzeProgram(p, lint.Config{Entries: []int{0, 1}})
	if len(ds) != 0 {
		t.Fatalf("two-entry program should be clean, got %v", ds)
	}
	ds = lint.AnalyzeProgram(p, lint.Config{Entries: []int{5}})
	if !diagAt(ds, lint.CodeBadTarget, -1) {
		t.Fatalf("out-of-range entry not flagged: %v", ds)
	}
}
