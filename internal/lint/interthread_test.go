package lint_test

import (
	"testing"

	"hirata/internal/asm"
	"hirata/internal/lint"
)

// interCfg is the baseline configuration of the cross-thread tests: two
// thread slots so tid enumeration stays small and fixtures stay readable.
func interCfg(entries ...int) lint.Config {
	return lint.Config{Entries: entries, ThreadSlots: 2, InterThread: true}
}

// TestInterThreadFixtures holds one minimal bad program per cross-thread
// diagnostic (L010..L014) and asserts the exact pc and source line.
func TestInterThreadFixtures(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		cfg     lint.Config
		code    lint.Code
		pc      int
		line    int
		extraOK []lint.Code
	}{
		{
			// Two entries, both plain-store to the labelled word at 10,
			// nothing orders them. The report lands on the later pc.
			name: "data-race-two-entries",
			src: "\t.data\n" +
				"\t.org 10\n" +
				"out:\t.word 0\n" +
				"\t.text\n" +
				"\tli r1, 5\n" + // pc 0
				"\tsw r1, 10(r0)\n" + // pc 1
				"\thalt\n" + // pc 2
				"\tli r1, 7\n" + // pc 3: second entry
				"\tsw r1, 10(r0)\n" + // pc 4
				"\thalt\n", // pc 5
			cfg:  interCfg(0, 3),
			code: lint.CodeDataRace, pc: 4, line: 9,
		},
		{
			// ffork clones the pc; every thread stores to the same word.
			name: "data-race-ffork",
			src: "\t.data\n" +
				"\t.org 10\n" +
				"out:\t.word 0\n" +
				"\t.text\n" +
				"\tffork\n" + // pc 0
				"\tli r1, 5\n" + // pc 1
				"\tsw r1, 10(r0)\n" + // pc 2
				"\thalt\n", // pc 3
			cfg:  interCfg(0),
			code: lint.CodeDataRace, pc: 2, line: 7,
		},
		{
			name: "oob-negative-address",
			src: "\tli r1, 1\n" +
				"\tsw r1, -5(r0)\n" +
				"\thalt\n",
			cfg:  interCfg(0),
			code: lint.CodeOOBAccess, pc: 1, line: 2,
		},
		{
			name: "oob-beyond-memory",
			src: "\tli r1, 1\n" +
				"\tsw r1, 500(r0)\n" +
				"\thalt\n",
			cfg: func() lint.Config {
				c := interCfg(0)
				c.MemWords = 64
				return c
			}(),
			code: lint.CodeOOBAccess, pc: 1, line: 2,
		},
		{
			// Integer load aimed at a .float word.
			name: "typed-int-load-of-float",
			src: "\t.data\n" +
				"v:\t.float 1.5\n" +
				"\t.text\n" +
				"\tlw r1, v\n" +
				"\thalt\n",
			cfg:  interCfg(0),
			code: lint.CodeTypedAccess, pc: 0, line: 4,
		},
		{
			// FP store aimed at a .word slot.
			name: "typed-fp-store-to-word",
			src: "\t.data\n" +
				"v:\t.word 3\n" +
				"\t.text\n" +
				"\tflw f1, v\n" +
				"\tfsw f1, v\n" +
				"\thalt\n",
			cfg:  interCfg(0),
			code: lint.CodeTypedAccess, pc: 0, line: 4,
			extraOK: []lint.Code{lint.CodeTypedAccess},
		},
		{
			// Store to an unlabelled word no load ever reads.
			name: "dead-store",
			src: "\tli r1, 1\n" +
				"\tsw r1, 50(r0)\n" +
				"\thalt\n",
			cfg:  interCfg(0),
			code: lint.CodeDeadStore, pc: 1, line: 2,
		},
		{
			// beqz on a register holding constant 0: always taken.
			name: "const-branch-always-taken",
			src: "\tli r1, 0\n" +
				"\tbeqz r1, end\n" +
				"\taddi r2, r0, 1\n" +
				"end:\thalt\n",
			cfg:  interCfg(0),
			code: lint.CodeConstBranch, pc: 1, line: 2,
		},
		{
			// bltz on a provably non-negative value: never fires.
			name: "const-branch-never-fires",
			src: "\tli r1, 3\n" +
				"loop:\tbltz r1, bad\n" +
				"\taddi r1, r1, -1\n" +
				"\tbnez r1, loop\n" +
				"\thalt\n" +
				"bad:\thalt\n",
			cfg:  interCfg(0),
			code: lint.CodeConstBranch, pc: 1, line: 2,
			extraOK: []lint.Code{lint.CodeUnreachable},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := asm.Assemble(tc.src)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			ds := lint.AnalyzeProgram(p, tc.cfg)
			found := false
			allowed := map[lint.Code]bool{tc.code: true}
			for _, c := range tc.extraOK {
				allowed[c] = true
			}
			for _, d := range ds {
				if d.Code == tc.code && d.PC == tc.pc {
					found = true
					if d.Line != tc.line {
						t.Errorf("diagnostic line = %d, want %d (%v)", d.Line, tc.line, d)
					}
				} else if !allowed[d.Code] {
					t.Errorf("unexpected extra diagnostic: %v", d)
				}
			}
			if !found {
				t.Fatalf("want %s at pc %d, got: %v", tc.code, tc.pc, ds)
			}
		})
	}
}

// TestInterThreadClean holds programs that exercise the same features
// correctly and must produce zero cross-thread findings.
func TestInterThreadClean(t *testing.T) {
	cases := []struct {
		name string
		src  string
		cfg  lint.Config
	}{
		{
			// Each thread stores to its own word: tid-strided addresses
			// for distinct thread ids never overlap.
			name: "tid-strided-stores",
			src: "\t.data\n" +
				"\t.org 20\n" +
				"out:\t.word 0, 0\n" +
				"\t.text\n" +
				"\tffork\n" +
				"\ttid r1\n" +
				"\tsw r1, 20(r1)\n" +
				"\thalt\n",
			cfg: interCfg(0),
		},
		{
			// Same race as the bad fixture, but ordered through the
			// queue-register ring: thread 0 stores then pushes; thread 1
			// pops (receiving push #1) and only then stores.
			name: "queue-synchronised-producer-consumer",
			src: "\t.data\n" +
				"\t.org 10\n" +
				"out:\t.word 0\n" +
				"\t.text\n" +
				"\tqen r20, r21\n" + // pc 0: thread 0
				"\tli r1, 5\n" + // pc 1
				"\tsw r1, 10(r0)\n" + // pc 2: before push #1
				"\tmov r21, r0\n" + // pc 3: push #1
				"\tqdis\n" + // pc 4
				"\thalt\n" + // pc 5
				"\tqen r20, r21\n" + // pc 6: thread 1
				"\tmov r2, r20\n" + // pc 7: pop #1
				"\tli r1, 7\n" + // pc 8
				"\tsw r1, 10(r0)\n" + // pc 9: after pop #1
				"\tqdis\n" + // pc 10
				"\thalt\n", // pc 11
			cfg: interCfg(0, 6),
		},
		{
			// Priority stores are the ordered-store escape hatch; two
			// threads swp-ing the same word is not reported.
			name: "priority-stores-exempt",
			src: "\t.data\n" +
				"\t.org 10\n" +
				"out:\t.word 0\n" +
				"\t.text\n" +
				"\tffork\n" +
				"\ttid r1\n" +
				"\tswp r1, 10(r0)\n" +
				"\thalt\n",
			cfg: interCfg(0),
		},
		{
			// The store before ffork runs while only one thread exists;
			// the loads after it are ordered by the fork edge.
			name: "store-before-fork",
			src: "\t.data\n" +
				"\t.org 10\n" +
				"n:\t.word 0\n" +
				"\t.text\n" +
				"\tli r1, 8\n" +
				"\tsw r1, 10(r0)\n" +
				"\tffork\n" +
				"\tlw r2, 10(r0)\n" +
				"\thalt\n",
			cfg: interCfg(0),
		},
		{
			// In-range, correctly typed, loaded-back store; a loop branch
			// whose outcome varies. Nothing to report.
			name: "in-range-typed-live",
			src: "\t.data\n" +
				"v:\t.word 3\n" +
				"w:\t.float 1.5\n" +
				"\t.text\n" +
				"\tlw r1, v\n" +
				"\tflw f1, w\n" +
				"\tfsw f1, w\n" +
				"\tli r2, 4\n" +
				"loop:\tsw r2, v\n" +
				"\tlw r1, v\n" +
				"\taddi r2, r2, -1\n" +
				"\tbnez r2, loop\n" +
				"\thalt\n",
			cfg: func() lint.Config {
				c := interCfg(0)
				c.MemWords = 64
				return c
			}(),
		},
		{
			// `.lint allow L010` suppresses the race report from inside
			// the program source.
			name: "lint-allow-directive",
			src: "\t.lint allow L010\n" +
				"\t.data\n" +
				"\t.org 10\n" +
				"out:\t.word 0\n" +
				"\t.text\n" +
				"\tffork\n" +
				"\tli r1, 5\n" +
				"\tsw r1, 10(r0)\n" +
				"\thalt\n",
			cfg: interCfg(0),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := asm.Assemble(tc.src)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			if ds := lint.AnalyzeProgram(p, tc.cfg); len(ds) != 0 {
				t.Fatalf("expected clean, got: %v", ds)
			}
		})
	}
}

// TestInterThreadTextOnly checks the text-only (StrictVerify) path: no
// data image, races still found when both addresses have bounded witnesses.
func TestInterThreadTextOnly(t *testing.T) {
	src := "\tli r1, 5\n" +
		"\tsw r1, 10(r0)\n" +
		"\thalt\n" +
		"\tli r1, 7\n" +
		"\tsw r1, 10(r0)\n" +
		"\thalt\n"
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	ds := lint.AnalyzeText(p.Text, interCfg(0, 3))
	if !diagAt(ds, lint.CodeDataRace, 4) {
		t.Fatalf("want %s at pc 4, got: %v", lint.CodeDataRace, ds)
	}
	for _, d := range ds {
		if d.Code == lint.CodeDeadStore {
			t.Errorf("dead-store must not fire in text-only mode (no data image): %v", d)
		}
	}
}
