// Package runledger is the cross-run observability substrate: an
// append-only, content-addressed store of completed simulation runs.
//
// Every record is keyed twice:
//
//   - the run key identifies the *inputs*: hash(program bytes, initial
//     memory image, start PCs, canonical machine configuration). The
//     simulator is deterministic — the differential suites prove the event
//     core, the legacy scan core, quiescent skipping and observed runs all
//     produce bit-identical Results — so the run key is a correct cache
//     key: equal keys imply equal outputs. ROADMAP item 1's result cache
//     keys on exactly this.
//   - the content hash identifies the *record*: hash of the canonical
//     serialized payload (inputs + result metrics + cycle stack + optional
//     exact CPI stack, static bounds and host-profile digest). Re-recording
//     the same run in the same mode reproduces the content hash byte for
//     byte; the determinism guard in the root test suite asserts this on
//     both cycle cores.
//
// On top of the store, diff.go attributes the cycle delta between two runs
// exactly across CPI-stack buckets and per-class utilization (the paper's
// U = N·L/T), and regress.go walks a ledger or a BENCH_history.jsonl file
// flagging significant shifts. cmd/hirata-report is the CLI; the /runs
// endpoints of internal/obs serve a live ledger.
package runledger

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"hirata/internal/buildinfo"
	"hirata/internal/core"
	"hirata/internal/isa"
	"hirata/internal/mem"
)

// Format versions. Bump recordFormat when the payload schema changes and
// keyFormat when anything hashed into the run key (including the canonical
// config encoding, see internal/core/canonical.go) changes meaning.
const (
	recordFormat = "hirata-runrecord-v1"
	keyFormat    = "hirata-run-key-v1"
)

// ProgramRef is the content identity of the simulated instruction text.
type ProgramRef struct {
	Words    int    `json:"words"`
	Encoding string `json:"encoding"` // "binary-v1" (isa.EncodeProgram) or "govalue-v1" fallback
	Digest   string `json:"digest"`   // sha256 hex of the encoded program
}

// WorkloadRef pins the workload instantiation: the initial data-memory
// image and the thread start PCs. Together with the program text this is
// the complete input of an execution-driven simulation.
type WorkloadRef struct {
	MemWords      int64   `json:"mem_words"`
	MemDigest     string  `json:"mem_digest"` // sha256 hex of the pre-run image
	RemoteBase    int64   `json:"remote_base"`
	RemoteLatency int     `json:"remote_latency"`
	StartPCs      []int64 `json:"start_pcs"`
}

// ConfigRef is the canonical machine configuration (core.Config
// CanonicalLines) plus its digest.
type ConfigRef struct {
	Digest string   `json:"digest"` // sha256 hex of the canonical encoding
	Lines  []string `json:"lines"`
}

// UnitRef is one functional unit's end-of-run statistics.
type UnitRef struct {
	Class       string `json:"class"`
	Index       int    `json:"index"`
	Invocations uint64 `json:"invocations"`
	BusyCycles  uint64 `json:"busy_cycles"`
}

// SlotRef is one thread slot's end-of-run statistics. Stalls is indexed by
// core.StallReason (StallNone first, always zero), so a grown stall reason
// widens the array instead of vanishing.
type SlotRef struct {
	Issued   uint64   `json:"issued"`
	Branches uint64   `json:"branches"`
	Stalls   []uint64 `json:"stalls"`
}

// ResultRef is the payload's copy of core.Result — integers only, so the
// serialization is trivially byte-stable.
type ResultRef struct {
	Cycles       uint64    `json:"cycles"`
	Instructions uint64    `json:"instructions"`
	Switches     uint64    `json:"switches"`
	Forks        uint64    `json:"forks"`
	Kills        uint64    `json:"kills"`
	Units        []UnitRef `json:"units"`
	Slots        []SlotRef `json:"slots"`
}

// CycleStack is a per-slot cycle budget: Slots[s][b] cycles of slot s in
// bucket Buckets[b], with every row summing exactly to the run's cycle
// count. Two stacks appear in a record: the stall-derived stack (always
// present, computed purely from core.Result so it is identical across
// every run mode) and the optional exact CPI stack from an attached
// internal/obs collector.
type CycleStack struct {
	Buckets []string  `json:"buckets"`
	Slots   [][]int64 `json:"slots"`
}

// BoundsRef summarises the static lower-bound certificate
// (lint.ComputeBounds) for the recorded program on the recorded machine.
type BoundsRef struct {
	DepBound      int64 `json:"dep_bound"`
	ResourceBound int64 `json:"resource_bound"`
	IssueBound    int64 `json:"issue_bound"`
	Bound         int64 `json:"bound"`
	Unbounded     bool  `json:"unbounded"`
}

// RunRecord is one completed simulation, canonically serializable. Field
// order is the serialization order; every field is either an integer, a
// string, or a fixed-order composite, so json.Marshal of the struct is
// byte-stable.
type RunRecord struct {
	Format            string      `json:"format"`
	Key               string      `json:"key"`
	Tag               string      `json:"tag,omitempty"` // human label; not part of the run key
	Revision          string      `json:"revision"`
	Program           ProgramRef  `json:"program"`
	Workload          WorkloadRef `json:"workload"`
	Config            ConfigRef   `json:"config"`
	Result            ResultRef   `json:"result"`
	Stack             CycleStack  `json:"stack"`
	ExactCPI          *CycleStack `json:"exact_cpi,omitempty"`
	Bounds            *BoundsRef  `json:"bounds,omitempty"`
	HostProfileDigest string      `json:"host_profile_digest,omitempty"`
}

// Canonical serializes the record to its canonical bytes; the content hash
// is the sha256 of exactly these bytes.
func (r *RunRecord) Canonical() ([]byte, error) { return json.Marshal(r) }

// ContentHash returns the sha256 hex of the canonical serialization.
func (r *RunRecord) ContentHash() (string, error) {
	b, err := r.Canonical()
	if err != nil {
		return "", err
	}
	return digestBytes(b), nil
}

// digestBytes is the ledger's content-address function: sha256 hex.
func digestBytes(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// DigestBytes exposes the content-address function for sibling artifacts
// (e.g. the host-profile digest a record may carry).
func DigestBytes(b []byte) string { return digestBytes(b) }

// stallBucketNames names the stall-derived stack's buckets, aligned with
// the internal/obs CPI-stack vocabulary: index i+1 is core.StallReason(i+1)
// and the final "active-or-unbound" bucket is the exact residual (cycles
// the slot issued, drained, or sat unbound — the Result statistics cannot
// split those further; the exact_cpi stack can).
var stallBucketNames = []string{
	"data-dep", "standby-full", "queue-empty", "queue-full",
	"priority-lost", "fetch-empty", "active-or-unbound",
}

// deriveStack builds the stall-derived cycle stack from a Result. For each
// slot the buckets sum exactly to res.Cycles by construction: the residual
// bucket is cycles minus the slot's stall counters (each slot stalls for at
// most one reason per cycle, so the residual is non-negative).
func deriveStack(res core.Result) CycleStack {
	st := CycleStack{Buckets: stallBucketNames, Slots: make([][]int64, len(res.Slots))}
	for i, s := range res.Slots {
		row := make([]int64, len(stallBucketNames))
		var stalled int64
		for r := core.StallReason(1); int(r) < core.NumStallReasons; r++ {
			row[int(r)-1] = int64(s.Stalls[r])
			stalled += int64(s.Stalls[r])
		}
		row[len(row)-1] = int64(res.Cycles) - stalled
		st.Slots[i] = row
	}
	return st
}

// Pending captures a run's input identity. It must be built *before* the
// simulation starts — the run mutates the memory image the key hashes.
type Pending struct {
	key      string
	program  ProgramRef
	workload WorkloadRef
	config   ConfigRef
}

// Begin digests the inputs of a run about to start: the instruction text,
// the initial memory image, the start PCs, and the canonical configuration.
func Begin(cfg core.Config, text []isa.Instruction, m *mem.Memory, startPCs []int64) *Pending {
	p := &Pending{}

	p.program.Words = len(text)
	if bin, err := isa.EncodeProgram(text); err == nil {
		p.program.Encoding = "binary-v1"
		p.program.Digest = digestBytes(bin)
	} else {
		// Unencodable (synthetic) instructions: fall back to the printed Go
		// value, which is still a deterministic function of the text.
		p.program.Encoding = "govalue-v1"
		p.program.Digest = digestBytes([]byte(fmt.Sprintf("%#v", text)))
	}

	p.workload.StartPCs = normalizePCs(startPCs)
	if m != nil {
		p.workload.MemWords = m.Size()
		p.workload.RemoteBase = m.RemoteBase()
		if p.workload.RemoteBase >= 0 {
			p.workload.RemoteLatency = m.RemoteLatency()
		}
		h := sha256.New()
		_ = m.WriteImage(h) // hash.Hash writes cannot fail
		p.workload.MemDigest = hex.EncodeToString(h.Sum(nil))
	}

	canon := cfg.CanonicalConfig()
	p.config.Digest = digestBytes([]byte(canon))
	p.config.Lines = cfg.CanonicalLines()

	var b strings.Builder
	b.WriteString(keyFormat)
	b.WriteString("\nprogram=")
	b.WriteString(p.program.Digest)
	b.WriteString("\nmemwords=")
	b.WriteString(strconv.FormatInt(p.workload.MemWords, 10))
	b.WriteString("\nmem=")
	b.WriteString(p.workload.MemDigest)
	fmt.Fprintf(&b, "\nremote=%d/%d", p.workload.RemoteBase, p.workload.RemoteLatency)
	b.WriteString("\npcs=")
	for i, pc := range p.workload.StartPCs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(pc, 10))
	}
	b.WriteString("\nconfig:\n")
	b.WriteString(canon)
	p.key = digestBytes([]byte(b.String()))
	return p
}

// normalizePCs resolves the runner's "no PCs means one thread at 0"
// convention so both spellings key identically.
func normalizePCs(pcs []int64) []int64 {
	if len(pcs) == 0 {
		return []int64{0}
	}
	out := make([]int64, len(pcs))
	copy(out, pcs)
	return out
}

// Key returns the run key (input identity hash).
func (p *Pending) Key() string { return p.key }

// Finish assembles the RunRecord for a completed run. Optional sections
// (ExactCPI, Bounds, HostProfileDigest) may be attached to the returned
// record before it is appended to a ledger; the content hash is computed at
// append time over whatever the record then holds.
func (p *Pending) Finish(res core.Result, tag string) *RunRecord {
	rec := &RunRecord{
		Format:   recordFormat,
		Key:      p.key,
		Tag:      tag,
		Revision: buildinfo.Get().ShortRevision(),
		Program:  p.program,
		Workload: p.workload,
		Config:   p.config,
		Result: ResultRef{
			Cycles:       res.Cycles,
			Instructions: res.Instructions,
			Switches:     res.Switches,
			Forks:        res.Forks,
			Kills:        res.Kills,
		},
		Stack: deriveStack(res),
	}
	for _, u := range res.Units {
		rec.Result.Units = append(rec.Result.Units, UnitRef{
			Class:       u.Class.String(),
			Index:       u.Index,
			Invocations: u.Invocations,
			BusyCycles:  u.BusyCycles,
		})
	}
	for _, s := range res.Slots {
		stalls := make([]uint64, core.NumStallReasons)
		for r := 0; r < core.NumStallReasons; r++ {
			stalls[r] = s.Stalls[r]
		}
		rec.Result.Slots = append(rec.Result.Slots, SlotRef{
			Issued:   s.Issued,
			Branches: s.Branches,
			Stalls:   stalls,
		})
	}
	return rec
}

// SetExactCPI attaches the exact per-slot CPI stack of an observed run.
// The caller (normally the hirata facade, converting an obs.CPIStack)
// guarantees each slot row sums to the run's cycle count.
func (r *RunRecord) SetExactCPI(buckets []string, slots [][]int64) {
	r.ExactCPI = &CycleStack{Buckets: buckets, Slots: slots}
}

// SetBounds attaches the static lower-bound certificate.
func (r *RunRecord) SetBounds(dep, resource, issue, bound int64, unbounded bool) {
	r.Bounds = &BoundsRef{
		DepBound:      dep,
		ResourceBound: resource,
		IssueBound:    issue,
		Bound:         bound,
		Unbounded:     unbounded,
	}
}

// ShortKey abbreviates a run key or content hash for display.
func ShortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}

// IPC returns the record's instructions per cycle (display only; never
// serialized).
func (r *RunRecord) IPC() float64 {
	if r.Result.Cycles == 0 {
		return 0
	}
	return float64(r.Result.Instructions) / float64(r.Result.Cycles)
}

// slotCount returns the recorded machine's thread-slot count.
func (r *RunRecord) slotCount() int { return len(r.Result.Slots) }

// stack returns the preferred attribution stack: the exact CPI stack when
// present, else the stall-derived stack.
func (r *RunRecord) stack() (CycleStack, bool) {
	if r.ExactCPI != nil {
		return *r.ExactCPI, true
	}
	return r.Stack, false
}
