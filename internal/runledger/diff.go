package runledger

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// BucketDelta attributes part of the cycle delta between two runs to one
// CPI-stack bucket. Units are slot-cycles: summing a run's stack over all
// slots and buckets gives exactly S·T (slots × cycles), so the bucket
// deltas of a diff sum exactly to S_B·T_B − S_A·T_A — every cycle of the
// difference is accounted for, none twice.
type BucketDelta struct {
	Name  string `json:"name"`
	A     int64  `json:"a"`
	B     int64  `json:"b"`
	Delta int64  `json:"delta"`
}

// ClassDelta compares one functional-unit class between two runs: unit
// count, total busy cycles, and the paper's utilization U = N·L/T
// (BusyCycles accumulates N·L), averaged over the class's units.
type ClassDelta struct {
	Class  string  `json:"class"`
	UnitsA int     `json:"units_a"`
	UnitsB int     `json:"units_b"`
	BusyA  uint64  `json:"busy_a"`
	BusyB  uint64  `json:"busy_b"`
	UtilA  float64 `json:"util_a"`
	UtilB  float64 `json:"util_b"`
}

// ConfigDelta is one canonical-config field whose value differs.
type ConfigDelta struct {
	Name string `json:"name"`
	A    string `json:"a"`
	B    string `json:"b"`
}

// Diff is the exact attribution of the difference between two recorded
// runs.
type Diff struct {
	HashA string `json:"hash_a"`
	HashB string `json:"hash_b"`
	KeyA  string `json:"key_a"`
	KeyB  string `json:"key_b"`
	TagA  string `json:"tag_a,omitempty"`
	TagB  string `json:"tag_b,omitempty"`

	CyclesA        uint64 `json:"cycles_a"`
	CyclesB        uint64 `json:"cycles_b"`
	SlotsA         int    `json:"slots_a"`
	SlotsB         int    `json:"slots_b"`
	InstructionsA  uint64 `json:"instructions_a"`
	InstructionsB  uint64 `json:"instructions_b"`
	SwitchesA      uint64 `json:"switches_a"`
	SwitchesB      uint64 `json:"switches_b"`
	CycleDelta     int64  `json:"cycle_delta"`      // T_B − T_A
	SlotCycleDelta int64  `json:"slot_cycle_delta"` // S_B·T_B − S_A·T_A == Σ bucket deltas

	// StackKind names the attribution source: "exact-cpi" when both records
	// carry an observed CPI stack, else "stall-derived" (always available).
	StackKind string        `json:"stack_kind"`
	Buckets   []BucketDelta `json:"buckets"`
	Config    []ConfigDelta `json:"config"`
	Classes   []ClassDelta  `json:"classes"`
}

// bucketTotals sums a stack over slots into per-bucket slot-cycle totals,
// preserving bucket order.
func bucketTotals(st CycleStack) (names []string, totals map[string]int64) {
	totals = make(map[string]int64, len(st.Buckets))
	for _, row := range st.Slots {
		for b, v := range row {
			if b < len(st.Buckets) {
				totals[st.Buckets[b]] += v
			}
		}
	}
	return st.Buckets, totals
}

// Compute builds the exact diff from run a to run b.
func Compute(a, b *RunRecord) (*Diff, error) {
	hashA, err := a.ContentHash()
	if err != nil {
		return nil, err
	}
	hashB, err := b.ContentHash()
	if err != nil {
		return nil, err
	}
	d := &Diff{
		HashA: hashA, HashB: hashB,
		KeyA: a.Key, KeyB: b.Key,
		TagA: a.Tag, TagB: b.Tag,
		CyclesA: a.Result.Cycles, CyclesB: b.Result.Cycles,
		SlotsA: a.slotCount(), SlotsB: b.slotCount(),
		InstructionsA: a.Result.Instructions, InstructionsB: b.Result.Instructions,
		SwitchesA: a.Result.Switches, SwitchesB: b.Result.Switches,
		CycleDelta:     int64(b.Result.Cycles) - int64(a.Result.Cycles),
		SlotCycleDelta: int64(b.slotCount())*int64(b.Result.Cycles) - int64(a.slotCount())*int64(a.Result.Cycles),
	}

	// Attribution stack: exact CPI only when both sides have it — mixing an
	// exact stack with a stall-derived one would compare different bucket
	// vocabularies and break the exactness invariant.
	stackA, exactA := a.stack()
	stackB, exactB := b.stack()
	if exactA && exactB {
		d.StackKind = "exact-cpi"
	} else {
		d.StackKind = "stall-derived"
		stackA, stackB = a.Stack, b.Stack
	}

	namesA, totalsA := bucketTotals(stackA)
	namesB, totalsB := bucketTotals(stackB)
	order := append([]string{}, namesB...)
	for _, n := range namesA {
		if _, ok := totalsB[n]; !ok {
			order = append(order, n)
		}
	}
	var sum int64
	for _, n := range order {
		bd := BucketDelta{Name: n, A: totalsA[n], B: totalsB[n]}
		bd.Delta = bd.B - bd.A
		sum += bd.Delta
		d.Buckets = append(d.Buckets, bd)
	}
	if sum != d.SlotCycleDelta {
		return nil, fmt.Errorf("runledger: diff attribution is inexact: bucket deltas sum to %d slot-cycles, total delta is %d (corrupt stack?)", sum, d.SlotCycleDelta)
	}

	d.Config = diffConfig(a.Config.Lines, b.Config.Lines)
	d.Classes = diffClasses(a, b)
	return d, nil
}

// diffConfig pairs canonical "name=value" lines by field name and reports
// the fields whose values differ.
func diffConfig(linesA, linesB []string) []ConfigDelta {
	parse := func(lines []string) (map[string]string, []string) {
		m := make(map[string]string, len(lines))
		order := make([]string, 0, len(lines))
		for _, ln := range lines {
			name, val, ok := strings.Cut(ln, "=")
			if !ok {
				continue
			}
			m[name] = val
			order = append(order, name)
		}
		return m, order
	}
	ma, _ := parse(linesA)
	mb, orderB := parse(linesB)
	var out []ConfigDelta
	for _, name := range orderB {
		if ma[name] != mb[name] {
			out = append(out, ConfigDelta{Name: name, A: ma[name], B: mb[name]})
		}
	}
	for name, val := range ma {
		if _, ok := mb[name]; !ok {
			out = append(out, ConfigDelta{Name: name, A: val})
		}
	}
	return out
}

// diffClasses aggregates per-unit statistics to per-class utilization and
// pairs the classes of both runs.
func diffClasses(a, b *RunRecord) []ClassDelta {
	type agg struct {
		units int
		busy  uint64
	}
	collect := func(r *RunRecord) (map[string]agg, []string) {
		m := map[string]agg{}
		var order []string
		for _, u := range r.Result.Units {
			if _, ok := m[u.Class]; !ok {
				order = append(order, u.Class)
			}
			e := m[u.Class]
			e.units++
			e.busy += u.BusyCycles
			m[u.Class] = e
		}
		return m, order
	}
	util := func(e agg, cycles uint64) float64 {
		if e.units == 0 || cycles == 0 {
			return 0
		}
		return float64(e.busy) / (float64(e.units) * float64(cycles))
	}
	ma, orderA := collect(a)
	mb, orderB := collect(b)
	order := append([]string{}, orderB...)
	for _, c := range orderA {
		if _, ok := mb[c]; !ok {
			order = append(order, c)
		}
	}
	var out []ClassDelta
	for _, c := range order {
		ea, eb := ma[c], mb[c]
		out = append(out, ClassDelta{
			Class:  c,
			UnitsA: ea.units, UnitsB: eb.units,
			BusyA: ea.busy, BusyB: eb.busy,
			UtilA: util(ea, a.Result.Cycles), UtilB: util(eb, b.Result.Cycles),
		})
	}
	return out
}

// Format renders the diff for a terminal.
func (d *Diff) Format() string {
	var b strings.Builder
	label := func(tag, key string) string {
		if tag != "" {
			return fmt.Sprintf("%s (%s)", tag, ShortKey(key))
		}
		return ShortKey(key)
	}
	fmt.Fprintf(&b, "diff %s -> %s\n", label(d.TagA, d.KeyA), label(d.TagB, d.KeyB))
	fmt.Fprintf(&b, "  cycles: %d -> %d (%+d)   slots: %d -> %d   instructions: %d -> %d\n",
		d.CyclesA, d.CyclesB, d.CycleDelta, d.SlotsA, d.SlotsB, d.InstructionsA, d.InstructionsB)
	if d.CyclesA > 0 && d.CyclesB > 0 {
		fmt.Fprintf(&b, "  IPC: %.4f -> %.4f\n",
			float64(d.InstructionsA)/float64(d.CyclesA), float64(d.InstructionsB)/float64(d.CyclesB))
	}
	if len(d.Config) > 0 {
		b.WriteString("  config:\n")
		for _, c := range d.Config {
			fmt.Fprintf(&b, "    %-20s %s -> %s\n", c.Name, orDash(c.A), orDash(c.B))
		}
	}
	fmt.Fprintf(&b, "  cycle accounting (%s, slot-cycles; deltas sum to %+d = S_B*T_B - S_A*T_A):\n",
		d.StackKind, d.SlotCycleDelta)
	for _, bk := range d.Buckets {
		if bk.A == 0 && bk.B == 0 {
			continue
		}
		fmt.Fprintf(&b, "    %-18s %12d -> %12d  (%+d)\n", bk.Name, bk.A, bk.B, bk.Delta)
	}
	if len(d.Classes) > 0 {
		b.WriteString("  unit utilization (U = N*L/T):\n")
		for _, c := range d.Classes {
			if c.BusyA == 0 && c.BusyB == 0 {
				continue
			}
			fmt.Fprintf(&b, "    %-12s units %d -> %d   U %.3f -> %.3f  (%+.3f)\n",
				c.Class, c.UnitsA, c.UnitsB, c.UtilA, c.UtilB, c.UtilB-c.UtilA)
		}
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// WriteJSON writes the diff as indented JSON.
func (d *Diff) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
