package runledger

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Shift is one detected cycle-count change between two consecutive records
// of the same lineage in a ledger, with its CPI-stack attribution.
type Shift struct {
	Lineage    string        `json:"lineage"` // record tag, or the run key when untagged
	FromHash   string        `json:"from_hash"`
	ToHash     string        `json:"to_hash"`
	FromRev    string        `json:"from_rev"`
	ToRev      string        `json:"to_rev"`
	CyclesFrom uint64        `json:"cycles_from"`
	CyclesTo   uint64        `json:"cycles_to"`
	Delta      int64         `json:"delta"`
	RelDelta   float64       `json:"rel_delta"`
	Buckets    []BucketDelta `json:"buckets"` // nonzero attribution, largest |delta| first
}

// Regress walks a ledger's entries in append order and flags every pair of
// consecutive same-lineage records whose cycle counts differ by more than
// tol (relative, e.g. 0 flags any change). Lineage is the record tag when
// set — re-recording a tagged configuration across revisions builds its
// trajectory — else the run key, in which case any shift is by construction
// a determinism violation or a simulator-semantics change, since the key
// pins all inputs.
func Regress(entries []Entry, tol float64) []Shift {
	prev := map[string]Entry{}
	var shifts []Shift
	for _, e := range entries {
		lineage := e.Record.Tag
		if lineage == "" {
			lineage = e.Record.Key
		}
		p, ok := prev[lineage]
		prev[lineage] = e
		if !ok {
			continue
		}
		from, to := p.Record.Result.Cycles, e.Record.Result.Cycles
		if from == 0 {
			continue
		}
		rel := (float64(to) - float64(from)) / float64(from)
		if rel == 0 || abs(rel) <= tol {
			continue
		}
		s := Shift{
			Lineage:    lineage,
			FromHash:   p.Hash,
			ToHash:     e.Hash,
			FromRev:    p.Record.Revision,
			ToRev:      e.Record.Revision,
			CyclesFrom: from,
			CyclesTo:   to,
			Delta:      int64(to) - int64(from),
			RelDelta:   rel,
		}
		if d, err := Compute(p.Record, e.Record); err == nil {
			for _, b := range d.Buckets {
				if b.Delta != 0 {
					s.Buckets = append(s.Buckets, b)
				}
			}
			sort.SliceStable(s.Buckets, func(i, j int) bool {
				return abs64(s.Buckets[i].Delta) > abs64(s.Buckets[j].Delta)
			})
		}
		shifts = append(shifts, s)
	}
	return shifts
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// WriteShifts renders ledger regression shifts for a terminal.
func WriteShifts(w io.Writer, shifts []Shift) {
	for _, s := range shifts {
		fmt.Fprintf(w, "%s: cycles %d -> %d (%+d, %+.2f%%)  [%s @ %s -> %s @ %s]\n",
			s.Lineage, s.CyclesFrom, s.CyclesTo, s.Delta, s.RelDelta*100,
			ShortKey(s.FromHash), s.FromRev, ShortKey(s.ToHash), s.ToRev)
		for i, b := range s.Buckets {
			if i == 4 {
				fmt.Fprintf(w, "    ... %d more bucket(s)\n", len(s.Buckets)-i)
				break
			}
			fmt.Fprintf(w, "    %-18s %+d slot-cycles\n", b.Name, b.Delta)
		}
	}
}

// FormatShiftSummary is the one-line verdict for CI logs.
func FormatShiftSummary(shifts []Shift) string {
	if len(shifts) == 0 {
		return "runledger: no cycle-count shifts"
	}
	lineages := map[string]bool{}
	for _, s := range shifts {
		lineages[s.Lineage] = true
	}
	names := make([]string, 0, len(lineages))
	for l := range lineages {
		names = append(names, ShortKey(l))
	}
	sort.Strings(names)
	return fmt.Sprintf("runledger: %d cycle-count shift(s) across %s", len(shifts), strings.Join(names, ", "))
}
