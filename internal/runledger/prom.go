package runledger

import (
	"encoding/json"
	"fmt"
	"io"
)

// runSummary is one row of the /runs index: enough to pick a record without
// fetching its full payload.
type runSummary struct {
	Hash         string `json:"hash"`
	Key          string `json:"key"`
	Tag          string `json:"tag,omitempty"`
	Revision     string `json:"revision"`
	Slots        int    `json:"slots"`
	Cycles       uint64 `json:"cycles"`
	Instructions uint64 `json:"instructions"`
	ExactCPI     bool   `json:"exact_cpi"`
	Bounds       bool   `json:"bounds"`
}

// WriteRunsIndex writes the JSON index served at /runs: ledger stats plus
// one summary row per record in append order. Implements obs.RunsSource.
func (l *Ledger) WriteRunsIndex(w io.Writer) error {
	entries := l.Entries()
	st := l.Stats()
	doc := struct {
		Records int          `json:"records"`
		Keys    int          `json:"keys"`
		Bytes   int64        `json:"bytes"`
		Runs    []runSummary `json:"runs"`
	}{Records: st.Records, Keys: st.Keys, Bytes: st.Bytes, Runs: make([]runSummary, 0, len(entries))}
	for _, e := range entries {
		doc.Runs = append(doc.Runs, runSummary{
			Hash:         e.Hash,
			Key:          e.Record.Key,
			Tag:          e.Record.Tag,
			Revision:     e.Record.Revision,
			Slots:        e.Record.slotCount(),
			Cycles:       e.Record.Result.Cycles,
			Instructions: e.Record.Result.Instructions,
			ExactCPI:     e.Record.ExactCPI != nil,
			Bounds:       e.Record.Bounds != nil,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// RunJSON resolves a selector (hash or run-key prefix) and returns the
// record's stored envelope — content hash plus canonical payload — as
// indented JSON. Implements obs.RunsSource; /runs/<sel> serves this.
func (l *Ledger) RunJSON(sel string) ([]byte, bool) {
	e, err := l.Find(sel)
	if err != nil {
		return nil, false
	}
	payload, err := e.Record.Canonical()
	if err != nil {
		return nil, false
	}
	doc := struct {
		Hash   string          `json:"hash"`
		Record json.RawMessage `json:"record"`
	}{Hash: e.Hash, Record: payload}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, false
	}
	return append(out, '\n'), true
}

// WriteRunsPrometheus appends the ledger's gauges and counters in
// Prometheus text exposition format; the obs /metrics handler concatenates
// this after the simulation metrics. Implements obs.RunsSource.
func (l *Ledger) WriteRunsPrometheus(w io.Writer) error {
	st := l.Stats()
	_, err := fmt.Fprintf(w,
		"# HELP hirata_runledger_records Content-distinct run records currently stored in the attached ledger.\n"+
			"# TYPE hirata_runledger_records gauge\n"+
			"hirata_runledger_records %d\n"+
			"# HELP hirata_runledger_keys Distinct run keys (input identities) in the attached ledger.\n"+
			"# TYPE hirata_runledger_keys gauge\n"+
			"hirata_runledger_keys %d\n"+
			"# HELP hirata_runledger_bytes Total canonical payload bytes stored in the attached ledger.\n"+
			"# TYPE hirata_runledger_bytes gauge\n"+
			"hirata_runledger_bytes %d\n"+
			"# HELP hirata_runledger_appends_total Append calls against the ledger in this process.\n"+
			"# TYPE hirata_runledger_appends_total counter\n"+
			"hirata_runledger_appends_total %d\n"+
			"# HELP hirata_runledger_dedup_hits_total Appends that found their content hash already stored.\n"+
			"# TYPE hirata_runledger_dedup_hits_total counter\n"+
			"hirata_runledger_dedup_hits_total %d\n"+
			"# HELP hirata_runledger_loaded_total Records loaded and hash-verified from the backing file at open.\n"+
			"# TYPE hirata_runledger_loaded_total counter\n"+
			"hirata_runledger_loaded_total %d\n",
		st.Records, st.Keys, st.Bytes, st.Appends, st.DedupHits, st.LoadedTotal)
	return err
}
