package runledger

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"hirata/internal/core"
)

func TestRegressLedger(t *testing.T) {
	l := NewMemory()
	append3 := func(tag string, cycles ...uint64) {
		for i, c := range cycles {
			rec := synthRecord(t, tag, core.Config{ThreadSlots: 2}, c)
			// Distinct revisions keep the shift report meaningful.
			rec.Revision = fmt.Sprintf("rev%d", i)
			if _, _, err := l.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	append3("steady", 1000, 1000, 1000)
	append3("shifting", 1000, 1000, 1100)

	shifts := Regress(l.Entries(), 0)
	if len(shifts) != 1 {
		t.Fatalf("Regress found %d shift(s), want 1: %+v", len(shifts), shifts)
	}
	s := shifts[0]
	if s.Lineage != "shifting" || s.Delta != 100 || s.CyclesFrom != 1000 || s.CyclesTo != 1100 {
		t.Fatalf("shift = %+v", s)
	}
	if len(s.Buckets) == 0 {
		t.Fatal("shift carries no bucket attribution")
	}
	var sum int64
	for _, b := range s.Buckets {
		sum += b.Delta
	}
	if want := int64(2 * 100); sum != want { // 2 slots × 100 extra cycles
		t.Fatalf("attribution sums to %d slot-cycles, want %d", sum, want)
	}

	// Tolerance suppresses a 10% move at 15% tolerance.
	if got := Regress(l.Entries(), 0.15); len(got) != 0 {
		t.Fatalf("Regress(tol=0.15) found %d shift(s), want 0", len(got))
	}

	var buf strings.Builder
	WriteShifts(&buf, shifts)
	if !strings.Contains(buf.String(), "shifting") || !strings.Contains(buf.String(), "+100") {
		t.Errorf("WriteShifts output unexpected:\n%s", buf.String())
	}
	if sum := FormatShiftSummary(shifts); !strings.Contains(sum, "1 cycle-count shift") {
		t.Errorf("FormatShiftSummary = %q", sum)
	}
	if sum := FormatShiftSummary(nil); !strings.Contains(sum, "no cycle-count shifts") {
		t.Errorf("FormatShiftSummary(nil) = %q", sum)
	}
}

// historyJSON builds a history row with one sim-cycles/s metric and an
// optional phase profile.
func historyRowFor(rev string, cyc float64, phases map[string]float64) HistoryRow {
	row := HistoryRow{
		Time:            "2026-01-01T00:00:00Z",
		Revision:        rev,
		GoVersion:       "go1.24",
		OS:              "linux",
		Arch:            "amd64",
		CPUs:            8,
		Benchmarks:      map[string]float64{"BenchmarkRayTrace": 1e6},
		SimCyclesPerSec: map[string]float64{"BenchmarkRayTrace": cyc},
	}
	if phases != nil {
		type phase struct {
			Name     string  `json:"name"`
			Fraction float64 `json:"fraction"`
		}
		doc := struct {
			Phases []phase `json:"phases"`
		}{}
		for _, n := range []string{"issue", "execute", "retire"} {
			if f, ok := phases[n]; ok {
				doc.Phases = append(doc.Phases, phase{n, f})
			}
		}
		js, _ := json.Marshal(doc)
		row.PhaseProfile = js
	}
	return row
}

func TestRegressHistory(t *testing.T) {
	steady := map[string]float64{"issue": 0.30, "execute": 0.50, "retire": 0.20}
	slow := map[string]float64{"issue": 0.55, "execute": 0.30, "retire": 0.15}
	rows := []HistoryRow{
		historyRowFor("r1", 1.00e7, steady),
		historyRowFor("r2", 1.01e7, steady),
		historyRowFor("r3", 0.99e7, steady),
		historyRowFor("r4", 1.00e7, steady),
		historyRowFor("r5", 0.70e7, slow), // 30% drop
	}
	shifts := RegressHistory(rows, HistoryOptions{})
	if len(shifts) != 1 {
		t.Fatalf("RegressHistory found %d shift(s), want 1: %+v", len(shifts), shifts)
	}
	s := shifts[0]
	if s.Revision != "r5" || s.RelDelta > -0.25 {
		t.Fatalf("shift = %+v", s)
	}
	if len(s.Phases) == 0 || s.Phases[0].Name != "issue" {
		t.Fatalf("phase attribution = %+v, want issue first (largest move)", s.Phases)
	}

	// Noise inside the significance thresholds is not flagged.
	noisy := []HistoryRow{
		historyRowFor("r1", 1.00e7, nil),
		historyRowFor("r2", 1.02e7, nil),
		historyRowFor("r3", 0.98e7, nil),
		historyRowFor("r4", 1.01e7, nil),
	}
	if got := RegressHistory(noisy, HistoryOptions{}); len(got) != 0 {
		t.Fatalf("noise flagged: %+v", got)
	}

	// Host classes never cross-compare: a slower container is not a shift.
	other := historyRowFor("r6", 0.5e7, nil)
	other.CPUs = 2
	if got := RegressHistory(append(noisy, other), HistoryOptions{}); len(got) != 0 {
		t.Fatalf("cross-host-class comparison flagged: %+v", got)
	}

	var buf strings.Builder
	WriteHistoryShifts(&buf, shifts)
	if !strings.Contains(buf.String(), "drop") || !strings.Contains(buf.String(), "issue") {
		t.Errorf("WriteHistoryShifts output unexpected:\n%s", buf.String())
	}
}
