package runledger

import (
	"strings"
	"testing"

	"hirata/internal/core"
)

// TestDiffExactness: bucket deltas must sum exactly to S_B·T_B − S_A·T_A,
// across equal and unequal slot counts.
func TestDiffExactness(t *testing.T) {
	cases := []struct {
		name       string
		cfgA, cfgB core.Config
		cycA, cycB uint64
	}{
		{"same-slots", core.Config{ThreadSlots: 2}, core.Config{ThreadSlots: 2, LoadStoreUnits: 2}, 1000, 1200},
		{"more-slots", core.Config{ThreadSlots: 2}, core.Config{ThreadSlots: 8}, 1000, 400},
		{"improvement", core.Config{ThreadSlots: 4}, core.Config{ThreadSlots: 4, StandbyStations: true}, 900, 700},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := synthRecord(t, "A", tc.cfgA, tc.cycA)
			b := synthRecord(t, "B", tc.cfgB, tc.cycB)
			d, err := Compute(a, b)
			if err != nil {
				t.Fatal(err)
			}
			var sum int64
			for _, bk := range d.Buckets {
				sum += bk.Delta
			}
			slotsA := int64(tc.cfgA.Effective().ThreadSlots)
			slotsB := int64(tc.cfgB.Effective().ThreadSlots)
			want := slotsB*int64(tc.cycB) - slotsA*int64(tc.cycA)
			if sum != want || d.SlotCycleDelta != want {
				t.Fatalf("bucket deltas sum to %d, SlotCycleDelta %d, want %d", sum, d.SlotCycleDelta, want)
			}
			if d.CycleDelta != int64(tc.cycB)-int64(tc.cycA) {
				t.Fatalf("CycleDelta = %d", d.CycleDelta)
			}
			if d.StackKind != "stall-derived" {
				t.Fatalf("StackKind = %q", d.StackKind)
			}
		})
	}
}

// TestDiffExactCPIPreferred: when both records carry exact CPI stacks the
// diff attributes over them, still exactly.
func TestDiffExactCPIPreferred(t *testing.T) {
	a := synthRecord(t, "A", core.Config{ThreadSlots: 2}, 100)
	b := synthRecord(t, "B", core.Config{ThreadSlots: 2, LoadStoreUnits: 2}, 80)
	buckets := []string{"issued", "data-dep", "idle"}
	a.SetExactCPI(buckets, [][]int64{{40, 30, 30}, {50, 25, 25}})
	b.SetExactCPI(buckets, [][]int64{{45, 15, 20}, {40, 20, 20}})
	d, err := Compute(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.StackKind != "exact-cpi" {
		t.Fatalf("StackKind = %q, want exact-cpi", d.StackKind)
	}
	var sum int64
	for _, bk := range d.Buckets {
		sum += bk.Delta
	}
	if want := int64(2*80 - 2*100); sum != want {
		t.Fatalf("exact-CPI deltas sum to %d, want %d", sum, want)
	}

	// One-sided exact CPI falls back to the stall-derived stacks.
	c := synthRecord(t, "C", core.Config{ThreadSlots: 2}, 90)
	d2, err := Compute(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if d2.StackKind != "stall-derived" {
		t.Fatalf("one-sided exact CPI: StackKind = %q", d2.StackKind)
	}
}

// TestDiffCorruptStackRejected: a stack that does not cover its run's
// cycles must fail the exactness invariant, not silently misattribute.
func TestDiffCorruptStackRejected(t *testing.T) {
	a := synthRecord(t, "A", core.Config{ThreadSlots: 2}, 100)
	b := synthRecord(t, "B", core.Config{ThreadSlots: 2, LoadStoreUnits: 2}, 120)
	b.Stack.Slots[0][0] += 5 // row no longer sums to cycles
	if _, err := Compute(a, b); err == nil || !strings.Contains(err.Error(), "inexact") {
		t.Fatalf("Compute(corrupt) = %v, want inexactness error", err)
	}
}

// TestDiffConfigAndClasses: the config delta names exactly the changed
// canonical fields, and utilization follows U = busy/(units·T).
func TestDiffConfigAndClasses(t *testing.T) {
	a := synthRecord(t, "A", core.Config{ThreadSlots: 8}, 1000)
	b := synthRecord(t, "B", core.Config{ThreadSlots: 8, LoadStoreUnits: 2, StandbyStations: true}, 800)
	d, err := Compute(a, b)
	if err != nil {
		t.Fatal(err)
	}
	changed := map[string]bool{}
	for _, c := range d.Config {
		changed[c.Name] = true
	}
	if !changed["LoadStoreUnits"] || !changed["StandbyStations"] || len(changed) != 2 {
		t.Errorf("config delta = %v, want exactly {LoadStoreUnits, StandbyStations}", d.Config)
	}

	var alu *ClassDelta
	for i := range d.Classes {
		if d.Classes[i].Class == "IntALU" {
			alu = &d.Classes[i]
		}
	}
	if alu == nil {
		t.Fatal("no IntALU class delta")
	}
	// synthRecord gives IntALU busy = cycles/2 over one unit: U = 0.5.
	if alu.UtilA != 0.5 || alu.UtilB != 0.5 {
		t.Errorf("IntALU U = %.3f -> %.3f, want 0.5 -> 0.5", alu.UtilA, alu.UtilB)
	}

	out := d.Format()
	for _, want := range []string{"LoadStoreUnits", "cycle accounting", "unit utilization", "data-dep"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() lacks %q:\n%s", want, out)
		}
	}
}
