package runledger

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hirata/internal/core"
	"hirata/internal/isa"
	"hirata/internal/mem"
)

// synthRecord fabricates a record from a synthetic Result: slots slots, the
// given cycle count, a fixed stall pattern scaled per slot so derived
// stacks are nontrivial. cfg mutators keep run keys distinct when needed.
func synthRecord(t *testing.T, tag string, cfg core.Config, cycles uint64) *RunRecord {
	t.Helper()
	m := mem.NewMemory(16)
	m.SetInt(0, 42)
	pend := Begin(cfg, []isa.Instruction{isa.Nop(), isa.Nop()}, m, nil)
	eff := cfg.Effective()
	slots := make([]core.SlotStat, eff.ThreadSlots)
	for s := range slots {
		st := core.SlotStat{Issued: cycles / 4}
		st.Stalls[core.StallData] = cycles / 8
		st.Stalls[core.StallEmpty] = uint64(s) * 2
		slots[s] = st
	}
	res := core.Result{
		Cycles:       cycles,
		Instructions: cycles / 2,
		Switches:     3,
		Units: []core.UnitStat{
			{Class: isa.UnitIntALU, Index: 0, Invocations: cycles / 2, BusyCycles: cycles / 2},
			{Class: isa.UnitLoadStore, Index: 0, Invocations: cycles / 8, BusyCycles: cycles / 4},
		},
		Slots: slots,
	}
	return pend.Finish(res, tag)
}

func TestLedgerAppendOpenVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.ledger")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recA := synthRecord(t, "a", core.Config{ThreadSlots: 2}, 1000)
	recB := synthRecord(t, "b", core.Config{ThreadSlots: 4}, 2000)
	hashA, dup, err := l.Append(recA)
	if err != nil || dup {
		t.Fatalf("Append A: hash=%s dup=%v err=%v", hashA, dup, err)
	}
	if _, dup, _ := l.Append(recB); dup {
		t.Fatal("Append B reported dup")
	}
	// Identical content dedups without growing the store or the file.
	if h, dup, err := l.Append(synthRecord(t, "a", core.Config{ThreadSlots: 2}, 1000)); err != nil || !dup || h != hashA {
		t.Fatalf("duplicate Append: hash=%s dup=%v err=%v (want %s, true)", h, dup, err, hashA)
	}
	st := l.Stats()
	if st.Records != 2 || st.Keys != 2 || st.Appends != 3 || st.DedupHits != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Reopen: hash-verified load reproduces the store.
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 2 {
		t.Fatalf("reopened ledger has %d records, want 2", l2.Len())
	}
	got, err := l2.Find(hashA[:10])
	if err != nil {
		t.Fatal(err)
	}
	if got.Record.Tag != "a" || got.Record.Result.Cycles != 1000 {
		t.Fatalf("reloaded record = tag %q cycles %d", got.Record.Tag, got.Record.Result.Cycles)
	}
	wantHash, err := got.Record.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	if wantHash != hashA {
		t.Fatalf("reloaded record re-hashes to %s, stored %s", wantHash, hashA)
	}

	// A flipped payload byte fails verification at open.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := strings.Replace(string(data), `"cycles":1000`, `"cycles":1001`, 1)
	if corrupt == string(data) {
		t.Fatal("corruption target not found in ledger file")
	}
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("Open(corrupt) = %v, want content hash mismatch", err)
	}
}

func TestLedgerFindSelectors(t *testing.T) {
	l := NewMemory()
	recA := synthRecord(t, "a", core.Config{ThreadSlots: 2}, 1000)
	recB := synthRecord(t, "", core.Config{ThreadSlots: 2}, 1000)
	recB.HostProfileDigest = "deadbeef" // same key as A, different content
	if _, _, err := l.Append(recA); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(recB); err != nil {
		t.Fatal(err)
	}
	if recA.Key != recB.Key {
		t.Fatal("same inputs produced different run keys")
	}

	// A key prefix spanning both records is one identity; the newest wins.
	e, err := l.Find(recA.Key[:12])
	if err != nil {
		t.Fatal(err)
	}
	if e.Record.HostProfileDigest != "deadbeef" {
		t.Error("key-prefix Find did not return the newest record of the key")
	}

	// Full hash resolves the older record precisely.
	hashA, _ := recA.ContentHash()
	e, err = l.Find(hashA)
	if err != nil {
		t.Fatal(err)
	}
	if e.Record.Tag != "a" {
		t.Errorf("hash Find returned tag %q", e.Record.Tag)
	}

	if _, err := l.Find("zzzz"); err == nil {
		t.Error("Find of absent selector succeeded")
	}
	if _, err := l.Find(""); err == nil {
		t.Error("Find of empty selector succeeded")
	}

	// A selector spanning two distinct run keys is ambiguous.
	recC := synthRecord(t, "c", core.Config{ThreadSlots: 8}, 500)
	if _, _, err := l.Append(recC); err != nil {
		t.Fatal(err)
	}
	common := commonPrefix(recA.Key, recC.Key)
	if common != "" {
		if _, err := l.Find(common); err == nil || !strings.Contains(err.Error(), "ambiguous") {
			t.Errorf("Find(%q) = %v, want ambiguity error", common, err)
		}
	}
}

func commonPrefix(a, b string) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	return a[:i]
}

// TestRecordByteStability: Begin/Finish over identical inputs must produce
// byte-identical canonical records (and therefore equal content hashes) —
// the foundation of both dedup and the cache-correctness argument.
func TestRecordByteStability(t *testing.T) {
	mk := func() *RunRecord {
		return synthRecord(t, "stable", core.Config{ThreadSlots: 2, StandbyStations: true}, 4096)
	}
	a, b := mk(), mk()
	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(ca) != string(cb) {
		t.Fatalf("identical runs serialized differently:\n%s\nvs\n%s", ca, cb)
	}
}

// TestRunKeySensitivity: the run key must move with every input and ignore
// the result-neutral knobs and the tag.
func TestRunKeySensitivity(t *testing.T) {
	text := []isa.Instruction{isa.Nop(), isa.Nop()}
	base := func() *Pending {
		return Begin(core.Config{ThreadSlots: 2}, text, mem.NewMemory(16), nil)
	}
	key := base().Key()
	if base().Key() != key {
		t.Fatal("run key is not deterministic")
	}

	// Config change moves the key.
	if Begin(core.Config{ThreadSlots: 4}, text, mem.NewMemory(16), nil).Key() == key {
		t.Error("config change did not move the run key")
	}
	// Result-neutral knob does not.
	neutral := core.Config{ThreadSlots: 2, DisableEventCore: true, MaxCycles: 999}
	if Begin(neutral, text, mem.NewMemory(16), nil).Key() != key {
		t.Error("result-neutral knobs moved the run key")
	}
	// Program change moves the key.
	if Begin(core.Config{ThreadSlots: 2}, []isa.Instruction{isa.Nop()}, mem.NewMemory(16), nil).Key() == key {
		t.Error("program change did not move the run key")
	}
	// Memory image change moves the key.
	m := mem.NewMemory(16)
	m.SetInt(3, 7)
	if Begin(core.Config{ThreadSlots: 2}, text, m, nil).Key() == key {
		t.Error("memory image change did not move the run key")
	}
	// Remote region parameters move the key.
	if Begin(core.Config{ThreadSlots: 2}, text, mem.NewMemoryWithRemote(16, 8, 50), nil).Key() == key {
		t.Error("remote region did not move the run key")
	}
	// Start PCs move the key; the implicit single thread at 0 does not.
	if Begin(core.Config{ThreadSlots: 2}, text, mem.NewMemory(16), []int64{0, 1}).Key() == key {
		t.Error("start PCs did not move the run key")
	}
	if Begin(core.Config{ThreadSlots: 2}, text, mem.NewMemory(16), []int64{0}).Key() != key {
		t.Error("explicit [0] and implicit start PCs keyed differently")
	}
	// The tag is presentation, not identity.
	p := base()
	if p.Finish(core.Result{Cycles: 1}, "tagged").Key != key {
		t.Error("tag leaked into the run key")
	}
}

// TestDerivedStackSumsToCycles: every slot row of the stall-derived stack
// must sum exactly to the run's cycle count — the property diff exactness
// rests on.
func TestDerivedStackSumsToCycles(t *testing.T) {
	rec := synthRecord(t, "", core.Config{ThreadSlots: 4}, 777)
	for s, row := range rec.Stack.Slots {
		var sum int64
		for _, v := range row {
			sum += v
		}
		if sum != int64(rec.Result.Cycles) {
			t.Errorf("slot %d stack sums to %d, want %d", s, sum, rec.Result.Cycles)
		}
	}
	if len(rec.Stack.Buckets) != len(stallBucketNames) {
		t.Errorf("stack has %d buckets, want %d", len(rec.Stack.Buckets), len(stallBucketNames))
	}
}
