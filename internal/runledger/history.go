package runledger

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// HistoryRow mirrors one line of tools/benchdiff's BENCH_history.jsonl: a
// bench run pinned to a time, revision and host, carrying best-of-N ns/op
// and sim-cycles/s per benchmark plus, optionally, the cycle-loop phase
// profile embedded by `benchdiff -history -phases`.
type HistoryRow struct {
	Time            string             `json:"time"`
	Revision        string             `json:"revision"`
	Dirty           bool               `json:"dirty,omitempty"`
	GoVersion       string             `json:"go"`
	OS              string             `json:"os"`
	Arch            string             `json:"arch"`
	CPUs            int                `json:"cpus"`
	Benchmarks      map[string]float64 `json:"benchmarks"`
	SimCyclesPerSec map[string]float64 `json:"sim_cycles_per_s,omitempty"`
	PhaseProfile    json.RawMessage    `json:"phase_profile,omitempty"`
}

// HostClass is the comparability key of a history row: rows measured by
// different toolchains or on different hardware classes are never compared.
func (r HistoryRow) HostClass() string {
	return fmt.Sprintf("%s/%s/%s/cpus=%d", r.GoVersion, r.OS, r.Arch, r.CPUs)
}

// ReadHistory parses a BENCH_history.jsonl file, skipping blank lines.
func ReadHistory(path string) ([]HistoryRow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows []HistoryRow
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var row HistoryRow
		if err := json.Unmarshal([]byte(text), &row); err != nil {
			return nil, fmt.Errorf("runledger: %s:%d: %w", path, line, err)
		}
		rows = append(rows, row)
	}
	return rows, sc.Err()
}

// PhaseDelta is one cycle-loop phase whose share of host time moved between
// the windowed baseline and the flagged row.
type PhaseDelta struct {
	Name string  `json:"name"`
	From float64 `json:"from"` // fraction of host time, baseline row
	To   float64 `json:"to"`   // fraction of host time, flagged row
}

// HistoryShift is one statistically significant throughput shift in a
// bench history.
type HistoryShift struct {
	Name      string       `json:"name"` // benchmark name
	HostClass string       `json:"host_class"`
	Time      string       `json:"time"`
	Revision  string       `json:"revision"`
	Value     float64      `json:"value"` // sim-cycles/s of the flagged row
	Mean      float64      `json:"mean"`  // trailing-window mean
	Sigma     float64      `json:"sigma"` // trailing-window stddev
	RelDelta  float64      `json:"rel_delta"`
	Window    int          `json:"window"` // rows actually in the window
	Phases    []PhaseDelta `json:"phases,omitempty"`
}

// HistoryOptions tunes RegressHistory. The zero value means: window of 5,
// 2σ significance, 5% minimum relative excursion.
type HistoryOptions struct {
	Window int     // trailing rows per comparison (default 5)
	Sigma  float64 // flag beyond Sigma standard deviations (default 2)
	MinRel float64 // and beyond this relative excursion (default 0.05)
}

func (o HistoryOptions) withDefaults() HistoryOptions {
	if o.Window <= 0 {
		o.Window = 5
	}
	if o.Sigma <= 0 {
		o.Sigma = 2
	}
	if o.MinRel <= 0 {
		o.MinRel = 0.05
	}
	return o
}

// RegressHistory flags statistically significant sim-cycles/s shifts: for
// each benchmark within each host class, every row is tested against the
// mean and standard deviation of up to Window preceding rows, and flagged
// when its excursion exceeds both Sigma standard deviations and MinRel of
// the mean. Both directions are reported (a silent speedup usually means
// the workload changed, which is worth knowing too). When the flagged row
// and its window carry cycle-loop phase profiles, the phases whose share of
// host time moved most are attached as attribution.
func RegressHistory(rows []HistoryRow, opt HistoryOptions) []HistoryShift {
	opt = opt.withDefaults()
	byClass := map[string][]int{}
	var classes []string
	for i, r := range rows {
		c := r.HostClass()
		if _, ok := byClass[c]; !ok {
			classes = append(classes, c)
		}
		byClass[c] = append(byClass[c], i)
	}

	var shifts []HistoryShift
	for _, class := range classes {
		idx := byClass[class]
		names := map[string]bool{}
		for _, i := range idx {
			for n := range rows[i].SimCyclesPerSec {
				names[n] = true
			}
		}
		sorted := make([]string, 0, len(names))
		for n := range names {
			sorted = append(sorted, n)
		}
		sort.Strings(sorted)
		for _, name := range sorted {
			type point struct {
				row   int
				value float64
			}
			var series []point
			for _, i := range idx {
				if v, ok := rows[i].SimCyclesPerSec[name]; ok && v > 0 {
					series = append(series, point{i, v})
				}
			}
			for i := 1; i < len(series); i++ {
				lo := i - opt.Window
				if lo < 0 {
					lo = 0
				}
				window := series[lo:i]
				var sum float64
				for _, p := range window {
					sum += p.value
				}
				mean := sum / float64(len(window))
				var varsum float64
				for _, p := range window {
					varsum += (p.value - mean) * (p.value - mean)
				}
				sigma := math.Sqrt(varsum / float64(len(window)))
				v := series[i].value
				rel := v/mean - 1
				// A one-row window has σ=0; the MinRel threshold alone decides.
				if abs(rel) <= opt.MinRel || (sigma > 0 && abs(v-mean) <= opt.Sigma*sigma) {
					continue
				}
				row := rows[series[i].row]
				shifts = append(shifts, HistoryShift{
					Name:      name,
					HostClass: class,
					Time:      row.Time,
					Revision:  row.Revision,
					Value:     v,
					Mean:      mean,
					Sigma:     sigma,
					RelDelta:  rel,
					Window:    len(window),
					Phases:    phaseAttribution(rows[window[len(window)-1].row], row),
				})
			}
		}
	}
	return shifts
}

// phaseAttribution compares the cycle-loop phase profiles of two history
// rows and returns the phases whose share of host time moved by more than
// two percentage points, largest movement first.
func phaseAttribution(from, to HistoryRow) []PhaseDelta {
	fp, tp := parsePhases(from.PhaseProfile), parsePhases(to.PhaseProfile)
	if fp == nil || tp == nil {
		return nil
	}
	names := map[string]bool{}
	var order []string
	add := func(m map[string]float64) {
		ks := make([]string, 0, len(m))
		for k := range m {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			if !names[k] {
				names[k] = true
				order = append(order, k)
			}
		}
	}
	add(fp)
	add(tp)
	var out []PhaseDelta
	for _, n := range order {
		if abs(tp[n]-fp[n]) > 0.02 {
			out = append(out, PhaseDelta{Name: n, From: fp[n], To: tp[n]})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return abs(out[i].To-out[i].From) > abs(out[j].To-out[j].From)
	})
	return out
}

// parsePhases extracts name → fraction-of-host-time from an embedded
// hostobs phase profile.
func parsePhases(raw json.RawMessage) map[string]float64 {
	if len(raw) == 0 {
		return nil
	}
	var doc struct {
		Phases []struct {
			Name     string  `json:"name"`
			Fraction float64 `json:"fraction"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil || len(doc.Phases) == 0 {
		return nil
	}
	m := make(map[string]float64, len(doc.Phases))
	for _, p := range doc.Phases {
		m[p.Name] = p.Fraction
	}
	return m
}

// WriteHistoryShifts renders history regression shifts for a terminal.
func WriteHistoryShifts(w io.Writer, shifts []HistoryShift) {
	for _, s := range shifts {
		direction := "drop"
		if s.RelDelta > 0 {
			direction = "rise"
		}
		fmt.Fprintf(w, "%s @ %s (%s): %.0f sim-cycles/s vs window mean %.0f (%+.1f%%, %d-row window, sigma %.0f) — %s\n",
			s.Name, s.Revision, s.Time, s.Value, s.Mean, s.RelDelta*100, s.Window, s.Sigma, direction)
		for _, p := range s.Phases {
			fmt.Fprintf(w, "    phase %-18s %.1f%% -> %.1f%% of host time\n", p.Name, p.From*100, p.To*100)
		}
	}
}
