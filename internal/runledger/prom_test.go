package runledger

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"hirata/internal/buildinfo"
	"hirata/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files")

var promSample = regexp.MustCompile(`^([a-z_]+)(\{[^}]*\})? [-+0-9.eE]+$`)

// TestRunsPrometheusLint applies the repo's promlint conventions to the
// ledger exposition: HELP/TYPE pair before every sample, counters end in
// _total, gauges do not, everything in the hirata_ namespace — and pins the
// exposition with a golden (regenerate with -update).
func TestRunsPrometheusLint(t *testing.T) {
	buildinfo.SetForTest(&buildinfo.Info{Revision: "feedcafe0123deadbeef", GoVersion: "go1.0-test"})
	defer buildinfo.SetForTest(nil)

	l := NewMemory()
	for i, cycles := range []uint64{1000, 2000, 1000} {
		cfg := core.Config{ThreadSlots: 2 + 2*(i%2)}
		if _, _, err := l.Append(synthRecord(t, "lint", cfg, cycles)); err != nil {
			t.Fatal(err)
		}
	}
	// One duplicate to exercise the dedup counter.
	if _, dup, err := l.Append(synthRecord(t, "lint", core.Config{ThreadSlots: 2}, 1000)); err != nil || !dup {
		t.Fatalf("dedup append: dup=%v err=%v", dup, err)
	}

	var buf bytes.Buffer
	if err := l.WriteRunsPrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	type meta struct{ help, typ string }
	metas := map[string]meta{}
	var current string
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(fields) != 2 || fields[1] == "" {
				t.Errorf("line %d: HELP without text: %q", i+1, line)
				continue
			}
			current = fields[0]
			m := metas[current]
			m.help = fields[1]
			metas[current] = m
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Errorf("line %d: malformed TYPE: %q", i+1, line)
				continue
			}
			if fields[0] != current {
				t.Errorf("line %d: TYPE %s does not follow its HELP (current %s)", i+1, fields[0], current)
			}
			if fields[1] != "counter" && fields[1] != "gauge" {
				t.Errorf("line %d: unknown metric type %q", i+1, fields[1])
			}
			m := metas[fields[0]]
			m.typ = fields[1]
			metas[fields[0]] = m
		case line == "":
			t.Errorf("line %d: blank line in exposition", i+1)
		default:
			match := promSample.FindStringSubmatch(line)
			if match == nil {
				t.Errorf("line %d: unparsable sample: %q", i+1, line)
				continue
			}
			name := match[1]
			m, ok := metas[name]
			if !ok || m.help == "" || m.typ == "" {
				t.Errorf("line %d: sample %s has no preceding # HELP/# TYPE pair", i+1, name)
				continue
			}
			if !strings.HasPrefix(name, "hirata_runledger_") {
				t.Errorf("line %d: metric %s outside the hirata_runledger_ namespace", i+1, name)
			}
			switch m.typ {
			case "counter":
				if !strings.HasSuffix(name, "_total") {
					t.Errorf("line %d: counter %s does not end in _total", i+1, name)
				}
			case "gauge":
				if strings.HasSuffix(name, "_total") {
					t.Errorf("line %d: gauge %s ends in _total", i+1, name)
				}
			}
		}
	}
	for _, want := range []string{
		"hirata_runledger_records", "hirata_runledger_keys", "hirata_runledger_bytes",
		"hirata_runledger_appends_total", "hirata_runledger_dedup_hits_total", "hirata_runledger_loaded_total",
	} {
		if _, ok := metas[want]; !ok {
			t.Errorf("exposition lacks %s", want)
		}
	}

	golden := filepath.Join("testdata", "runledger_metrics.golden.prom")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from %s (run with -update to regenerate);\ngot:\n%s", golden, buf.String())
	}
}

// TestRunsIndexAndFetch covers the obs.RunsSource JSON surfaces.
func TestRunsIndexAndFetch(t *testing.T) {
	l := NewMemory()
	rec := synthRecord(t, "idx", core.Config{ThreadSlots: 2}, 1000)
	hash, _, err := l.Append(rec)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := l.WriteRunsIndex(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Records int `json:"records"`
		Runs    []struct {
			Hash string `json:"hash"`
			Key  string `json:"key"`
			Tag  string `json:"tag"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Records != 1 || len(doc.Runs) != 1 || doc.Runs[0].Hash != hash || doc.Runs[0].Tag != "idx" {
		t.Fatalf("index = %+v", doc)
	}

	body, ok := l.RunJSON(hash[:10])
	if !ok {
		t.Fatal("RunJSON(prefix) not found")
	}
	var env struct {
		Hash   string          `json:"hash"`
		Record json.RawMessage `json:"record"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	// The endpoint pretty-prints; compacting recovers the canonical bytes
	// the content hash is defined over.
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.Record); err != nil {
		t.Fatal(err)
	}
	if env.Hash != hash || DigestBytes(compact.Bytes()) != hash {
		t.Fatal("served envelope does not hash-verify")
	}
	if _, ok := l.RunJSON("nope"); ok {
		t.Fatal("RunJSON of absent selector succeeded")
	}
}
