package runledger

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// envelope is one ledger line: the content hash plus the record's canonical
// bytes, exactly as hashed. Keeping the raw bytes (rather than re-marshaling
// a decoded struct) makes hash verification on load independent of any
// future serialization drift.
type envelope struct {
	Hash   string          `json:"hash"`
	Record json.RawMessage `json:"record"`
}

// Entry is one stored record with its content address.
type Entry struct {
	Hash   string
	Record *RunRecord
	Bytes  int // canonical payload size
}

// Stats summarises a ledger for the observability endpoints.
type Stats struct {
	Records     int    // stored records (content-distinct)
	Keys        int    // distinct run keys
	Bytes       int64  // total canonical payload bytes
	Appends     uint64 // Append calls this process
	DedupHits   uint64 // Append calls that found the content hash already stored
	LoadedTotal uint64 // records loaded from disk at Open
}

// Ledger is an append-only run store. With a backing path every accepted
// record is durably appended as one JSONL envelope line; without one
// (NewMemory) the ledger is an in-process store, which the HTTP endpoints
// and tests use. All methods are safe for concurrent use.
type Ledger struct {
	mu      sync.Mutex
	path    string
	entries []Entry
	byHash  map[string]int
	stats   Stats
}

// NewMemory returns an in-memory ledger.
func NewMemory() *Ledger {
	return &Ledger{byHash: make(map[string]int)}
}

// Open opens (creating if absent) the ledger file at path and loads and
// verifies every existing record: each line's payload must hash to its
// stored content address, so silent corruption or hand-editing is detected
// at open time rather than surfacing as a wrong diff later.
func Open(path string) (*Ledger, error) {
	l := NewMemory()
	l.path = path
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return l, nil
	}
	if err != nil {
		return nil, fmt.Errorf("runledger: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var env envelope
		if err := json.Unmarshal([]byte(text), &env); err != nil {
			return nil, fmt.Errorf("runledger: %s:%d: %w", path, line, err)
		}
		if got := digestBytes(env.Record); got != env.Hash {
			return nil, fmt.Errorf("runledger: %s:%d: content hash mismatch: stored %s, payload hashes to %s",
				path, line, ShortKey(env.Hash), ShortKey(got))
		}
		var rec RunRecord
		if err := json.Unmarshal(env.Record, &rec); err != nil {
			return nil, fmt.Errorf("runledger: %s:%d: %w", path, line, err)
		}
		if _, dup := l.byHash[env.Hash]; dup {
			continue
		}
		l.byHash[env.Hash] = len(l.entries)
		l.entries = append(l.entries, Entry{Hash: env.Hash, Record: &rec, Bytes: len(env.Record)})
		l.stats.Bytes += int64(len(env.Record))
		l.stats.LoadedTotal++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("runledger: %s: %w", path, err)
	}
	return l, nil
}

// Append stores rec, content-addressed by the hash of its canonical bytes.
// A record whose content hash is already present is not stored again
// (dup=true); a new record is appended to the backing file, if any, before
// it becomes visible. The returned hash is the record's content address
// either way.
func (l *Ledger) Append(rec *RunRecord) (hash string, dup bool, err error) {
	payload, err := rec.Canonical()
	if err != nil {
		return "", false, fmt.Errorf("runledger: %w", err)
	}
	hash = digestBytes(payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Appends++
	if _, ok := l.byHash[hash]; ok {
		l.stats.DedupHits++
		return hash, true, nil
	}
	if l.path != "" {
		env, err := json.Marshal(envelope{Hash: hash, Record: payload})
		if err != nil {
			return "", false, fmt.Errorf("runledger: %w", err)
		}
		f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return "", false, fmt.Errorf("runledger: %w", err)
		}
		_, werr := f.Write(append(env, '\n'))
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return "", false, fmt.Errorf("runledger: %w", werr)
		}
	}
	// Store a defensive copy: callers may keep mutating their record.
	var stored RunRecord
	if err := json.Unmarshal(payload, &stored); err != nil {
		return "", false, fmt.Errorf("runledger: %w", err)
	}
	l.byHash[hash] = len(l.entries)
	l.entries = append(l.entries, Entry{Hash: hash, Record: &stored, Bytes: len(payload)})
	l.stats.Bytes += int64(len(payload))
	return hash, false, nil
}

// Len returns the number of stored (content-distinct) records.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Entries returns the stored records in append order.
func (l *Ledger) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Last returns the most recent n entries (fewer if the ledger is shorter),
// oldest first.
func (l *Ledger) Last(n int) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > len(l.entries) {
		n = len(l.entries)
	}
	out := make([]Entry, n)
	copy(out, l.entries[len(l.entries)-n:])
	return out
}

// Find resolves a selector to a stored entry. A selector is a prefix (or
// the whole) of a content hash or of a run key; when several records share
// a matching run key the most recently appended wins. Ambiguity across
// *distinct* hashes/keys is an error.
func (l *Ledger) Find(sel string) (Entry, error) {
	if sel == "" {
		return Entry{}, fmt.Errorf("runledger: empty run selector")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// Identity of a match: the content hash when the selector matched the
	// hash, else the run key. Several records sharing one run key (same run,
	// different optional sections) are one identity — the newest wins — but
	// a selector spanning two distinct identities is ambiguous.
	var match Entry
	found := false
	identities := map[string]bool{}
	for i := len(l.entries) - 1; i >= 0; i-- {
		e := l.entries[i]
		switch {
		case strings.HasPrefix(e.Hash, sel):
			identities[e.Hash] = true
		case strings.HasPrefix(e.Record.Key, sel):
			identities[e.Record.Key] = true
		default:
			continue
		}
		if !found {
			match, found = e, true
		}
	}
	if !found {
		return Entry{}, fmt.Errorf("runledger: no record matches %q", sel)
	}
	if len(identities) > 1 {
		ids := make([]string, 0, len(identities))
		for id := range identities {
			ids = append(ids, ShortKey(id))
		}
		sort.Strings(ids)
		return Entry{}, fmt.Errorf("runledger: selector %q is ambiguous (matches %s)", sel, strings.Join(ids, ", "))
	}
	return match, nil
}

// Stats returns a snapshot of the ledger's counters.
func (l *Ledger) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Records = len(l.entries)
	keys := map[string]bool{}
	for _, e := range l.entries {
		keys[e.Record.Key] = true
	}
	s.Keys = len(keys)
	return s
}

// Path returns the backing file path ("" for an in-memory ledger).
func (l *Ledger) Path() string { return l.path }
