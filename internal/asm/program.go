// Package asm implements a two-pass assembler and a disassembler for the
// processor's ISA. Assembly programs drive every workload in this
// repository: the synthetic ray-tracing kernel, Livermore Kernel 1 and the
// linked-list while loop are all written in this language (the paper used a
// commercial RISC compiler; a small assembler is the from-scratch
// equivalent substrate).
//
// Syntax overview:
//
//	; comment        # comment        // comment
//	.text            switch to the text section (default)
//	.data            switch to the data section
//	.org  ADDR       set the data location counter
//	.word V ...      emit integer words
//	.float V ...     emit float64 words
//	.space N         reserve N zeroed words
//	.equ NAME V      define a constant
//	label:           define a label (text: instruction index; data: address)
//
//	add   r1, r2, r3
//	addi  r1, r0, -7
//	lw    r4, 8(r2)      flw f1, x(r0)      sw r5, 0(r2)
//	beq   r1, r2, loop   bnez r1, done      j exit
//	li    r1, 123456     la r2, table       mov r3, r1      (pseudo)
//	call  fn             ret                subi r1, r2, 4  (pseudo)
//
// Immediates may be decimal or 0x-hex literals, .equ constants, labels, or
// label+offset / label-offset expressions.
package asm

import (
	"fmt"
	"sort"

	"hirata/internal/isa"
	"hirata/internal/mem"
)

// DataWord is one initialised word of the data image.
type DataWord struct {
	Addr int64
	Val  uint64
}

// WordClass records which directive emitted a data word, giving the word a
// static type: .word words hold integers, .float words hold float64 bit
// patterns, and .space words (or addresses outside the image) are untyped.
type WordClass uint8

// Word classes.
const (
	WordUnknown WordClass = iota
	WordInt
	WordFloat
)

// DataSym is one data-section label with the extent of the object it
// names: Size words, up to the next data label or the end of the image.
type DataSym struct {
	Name string
	Addr int64
	Size int64
}

// Program is the output of the assembler: the instruction text, the
// initialised data image, and the resolved symbol table.
type Program struct {
	Text    []isa.Instruction
	Data    []DataWord
	Symbols map[string]int64
	DataEnd int64 // first word address beyond all data (for sizing memory)
	// Lines maps each Text index to the 1-based source line of the
	// statement that emitted it (0 when unknown, e.g. hand-built
	// programs). Lint diagnostics and the disassembler use it to point
	// back at the offending source line.
	Lines []int
	// DataSyms lists the data-section labels in address order with the
	// extent of each labelled object; the verifier's dead-store check
	// treats labelled words as the program's declared output surface.
	DataSyms []DataSym
	// WordTypes records the WordClass of every .word/.float address.
	// Addresses absent from the map (.space or untyped) are WordUnknown.
	WordTypes map[int64]WordClass
	// LintAllow holds diagnostic codes suppressed by `.lint allow` in the
	// source; LintSlots is the thread-slot count declared by `.lint slots`
	// (0 = unspecified). See docs/LINT.md.
	LintAllow []string
	LintSlots int
}

// WordType returns the static type of the data word at addr.
func (p *Program) WordType(addr int64) WordClass {
	return p.WordTypes[addr]
}

// Line returns the 1-based source line of instruction pc, or 0 when the
// program carries no line information.
func (p *Program) Line(pc int) int {
	if pc < 0 || pc >= len(p.Lines) {
		return 0
	}
	return p.Lines[pc]
}

// InitMemory writes the program's data image into m.
func (p *Program) InitMemory(m *mem.Memory) error {
	for _, w := range p.Data {
		if err := m.Store(w.Addr, w.Val); err != nil {
			return fmt.Errorf("asm: initialising data at %d: %w", w.Addr, err)
		}
	}
	return nil
}

// NewMemory allocates a memory just large enough for the data image (with
// the given amount of extra headroom in words) and initialises it.
func (p *Program) NewMemory(headroom int64) (*mem.Memory, error) {
	size := p.DataEnd + headroom
	if size < 1 {
		size = 1
	}
	m := mem.NewMemory(int(size))
	if err := p.InitMemory(m); err != nil {
		return nil, err
	}
	return m, nil
}

// Symbol looks up a label or .equ constant.
func (p *Program) Symbol(name string) (int64, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}

// MustSymbol looks up a symbol and panics if it is undefined; intended for
// workload and test setup code where absence is a programming error.
func (p *Program) MustSymbol(name string) int64 {
	v, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("asm: undefined symbol %q", name))
	}
	return v
}

// resolveDataExtents sorts DataSyms by address and gives each labelled
// object its extent: up to the next data label, or to the end of the image.
func (p *Program) resolveDataExtents() {
	sort.Slice(p.DataSyms, func(i, j int) bool { return p.DataSyms[i].Addr < p.DataSyms[j].Addr })
	for i := range p.DataSyms {
		end := p.DataEnd
		if i+1 < len(p.DataSyms) {
			end = p.DataSyms[i+1].Addr
		}
		if end < p.DataSyms[i].Addr {
			end = p.DataSyms[i].Addr
		}
		p.DataSyms[i].Size = end - p.DataSyms[i].Addr
	}
}

// sortData orders the data image by address and checks for overlaps.
func (p *Program) sortData() error {
	sort.Slice(p.Data, func(i, j int) bool { return p.Data[i].Addr < p.Data[j].Addr })
	for i := 1; i < len(p.Data); i++ {
		if p.Data[i].Addr == p.Data[i-1].Addr {
			return fmt.Errorf("asm: duplicate data at address %d", p.Data[i].Addr)
		}
	}
	return nil
}
