package asm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exampleSources returns every .s program shipped under examples/programs.
func exampleSources(t *testing.T) map[string]string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "programs", "*.s"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example .s programs found")
	}
	out := make(map[string]string, len(paths))
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = string(src)
	}
	return out
}

// TestExamplesRoundTrip assembles every shipped example, disassembles the
// text, re-assembles the disassembly, and requires a semantically identical
// instruction sequence (asm -> disasm -> asm).
func TestExamplesRoundTrip(t *testing.T) {
	for name, src := range exampleSources(t) {
		t.Run(name, func(t *testing.T) {
			p, err := Assemble(src)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			dis := Disassemble(p.Text)
			p2, err := Assemble(dis)
			if err != nil {
				t.Fatalf("re-assemble disassembly: %v\n%s", err, dis)
			}
			if len(p2.Text) != len(p.Text) {
				t.Fatalf("round trip length %d != %d", len(p2.Text), len(p.Text))
			}
			for i := range p.Text {
				if !p.Text[i].Same(p2.Text[i]) {
					t.Errorf("instruction %d: %v != %v", i, p.Text[i], p2.Text[i])
				}
			}
		})
	}
}

// TestDisassembleProgramRoundTrip round-trips text and data image together.
func TestDisassembleProgramRoundTrip(t *testing.T) {
	src := `
	.data
	.org 8
n:	.word 20
tab:	.word 1, 2, 3
	.org 100
x:	.float 2.5
	.text
	lw   r1, n
loop:	beqz r1, done
	addi r1, r1, -1
	j    loop
done:	halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Assemble(DisassembleProgram(p))
	if err != nil {
		t.Fatalf("re-assemble: %v\n%s", err, DisassembleProgram(p))
	}
	if len(p2.Text) != len(p.Text) {
		t.Fatalf("text length %d != %d", len(p2.Text), len(p.Text))
	}
	for i := range p.Text {
		if !p.Text[i].Same(p2.Text[i]) {
			t.Errorf("instruction %d: %v != %v", i, p.Text[i], p2.Text[i])
		}
	}
	if len(p2.Data) != len(p.Data) {
		t.Fatalf("data length %d != %d", len(p2.Data), len(p.Data))
	}
	for i := range p.Data {
		if p.Data[i] != p2.Data[i] {
			t.Errorf("data %d: %+v != %+v", i, p.Data[i], p2.Data[i])
		}
	}
}

// TestDisassembleLabels checks that branch targets come out symbolic.
func TestDisassembleLabels(t *testing.T) {
	p := MustAssemble("start:\taddi r1, r0, 3\nloop:\taddi r1, r1, -1\n\tbnez r1, loop\n\thalt\n")
	dis := Disassemble(p.Text)
	if !strings.Contains(dis, "L1:") || !strings.Contains(dis, "bnez r1, L1") {
		t.Fatalf("expected symbolic branch target L1 in:\n%s", dis)
	}
	if got := sortedTargets(p.Text); len(got) != 1 || got[0] != 1 {
		t.Fatalf("targets = %v, want [1]", got)
	}
}

// TestProgramLines checks the source-line map used by lint diagnostics.
func TestProgramLines(t *testing.T) {
	p := MustAssemble("\tnop\n\tli r1, 100000\n\thalt\n")
	want := []int{1, 2, 2, 3} // li expands to two instructions on line 2
	if len(p.Lines) != len(want) {
		t.Fatalf("Lines = %v, want %v", p.Lines, want)
	}
	for i, w := range want {
		if p.Lines[i] != w {
			t.Fatalf("Lines = %v, want %v", p.Lines, want)
		}
	}
	if p.Line(1) != 2 || p.Line(99) != 0 {
		t.Fatalf("Line lookups wrong: %d %d", p.Line(1), p.Line(99))
	}
}
