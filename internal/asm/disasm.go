package asm

import (
	"fmt"
	"sort"
	"strings"

	"hirata/internal/isa"
)

// Disassemble renders a program's text section as assembly source that
// re-assembles to the same instruction sequence. Branch, jump and fork
// targets inside the text get synthetic `L<pc>` labels and branch operands
// reference them symbolically; every line carries its word address as a
// trailing comment. Pseudo-instructions are not reconstructed — the output
// uses real opcodes only — so the round trip is Text-exact rather than
// source-exact.
func Disassemble(text []isa.Instruction) string {
	labels := collectTargets(text)
	var b strings.Builder
	for i, in := range text {
		if _, ok := labels[int64(i)]; ok {
			fmt.Fprintf(&b, "%s:\n", labelName(int64(i)))
		}
		fmt.Fprintf(&b, "\t%-28s ; %d\n", formatIns(in, labels), i)
	}
	return b.String()
}

// DisassembleProgram renders the whole program: the data image as .org/.word
// directives followed by the text section. The output round-trips through
// Assemble to an identical Text and Data image.
func DisassembleProgram(p *Program) string {
	var b strings.Builder
	if len(p.Data) > 0 {
		b.WriteString("\t.data\n")
		// Data is sorted by address (sortData); group contiguous runs.
		for i := 0; i < len(p.Data); {
			run := 1
			for i+run < len(p.Data) && p.Data[i+run].Addr == p.Data[i].Addr+int64(run) {
				run++
			}
			fmt.Fprintf(&b, "\t.org %d\n", p.Data[i].Addr)
			for k := 0; k < run; k++ {
				fmt.Fprintf(&b, "\t.word 0x%x\n", p.Data[i+k].Val)
			}
			i += run
		}
	}
	b.WriteString("\t.text\n")
	b.WriteString(Disassemble(p.Text))
	return b.String()
}

// collectTargets returns the set of in-range control-transfer targets.
func collectTargets(text []isa.Instruction) map[int64]bool {
	labels := make(map[int64]bool)
	add := func(t int64) {
		if t >= 0 && t < int64(len(text)) {
			labels[t] = true
		}
	}
	for i, in := range text {
		switch {
		case in.Op.IsBranch() && in.Op != isa.JR:
			add(int64(in.Imm))
		case in.Op == isa.FFORK:
			add(int64(i) + 1)
		}
	}
	return labels
}

func labelName(pc int64) string { return fmt.Sprintf("L%d", pc) }

// target renders a control-transfer target symbolically when labelled.
func target(imm int32, labels map[int64]bool) string {
	if labels[int64(imm)] {
		return labelName(int64(imm))
	}
	return fmt.Sprintf("%d", imm)
}

// formatIns renders one instruction in re-assemblable syntax.
func formatIns(in isa.Instruction, labels map[int64]bool) string {
	op := in.Op.String()
	switch in.Op.Fmt() {
	case isa.FmtR:
		return fmt.Sprintf("%s %s, %s, %s", op, in.Rd, in.Rs1, in.Rs2)
	case isa.FmtR2:
		return fmt.Sprintf("%s %s, %s", op, in.Rd, in.Rs1)
	case isa.FmtI:
		return fmt.Sprintf("%s %s, %s, %d", op, in.Rd, in.Rs1, in.Imm)
	case isa.FmtLI:
		return fmt.Sprintf("%s %s, %d", op, in.Rd, in.Imm)
	case isa.FmtLd:
		return fmt.Sprintf("%s %s, %d(%s)", op, in.Rd, in.Imm, in.Rs1)
	case isa.FmtSt:
		return fmt.Sprintf("%s %s, %d(%s)", op, in.Rs2, in.Imm, in.Rs1)
	case isa.FmtB:
		if in.Op == isa.BEQ || in.Op == isa.BNE {
			return fmt.Sprintf("%s %s, %s, %s", op, in.Rs1, in.Rs2, target(in.Imm, labels))
		}
		return fmt.Sprintf("%s %s, %s", op, in.Rs1, target(in.Imm, labels))
	case isa.FmtJ:
		if in.Op == isa.JAL {
			return fmt.Sprintf("%s %s, %s", op, in.Rd, target(in.Imm, labels))
		}
		if in.Op == isa.SETMODE {
			return fmt.Sprintf("%s %d", op, in.Imm)
		}
		return fmt.Sprintf("%s %s", op, target(in.Imm, labels))
	case isa.FmtJR:
		return fmt.Sprintf("%s %s", op, in.Rs1)
	case isa.FmtQ:
		return fmt.Sprintf("%s %s, %s", op, in.Rs1, in.Rs2)
	case isa.FmtTID:
		return fmt.Sprintf("%s %s", op, in.Rd)
	}
	return op
}

// SourceContext formats "file:line" style position info for diagnostics:
// the instruction's disassembly plus, when the program has line data, the
// source line it came from.
func SourceContext(p *Program, pc int) string {
	if pc < 0 || pc >= len(p.Text) {
		return fmt.Sprintf("pc %d (out of range)", pc)
	}
	s := fmt.Sprintf("pc %d: %s", pc, p.Text[pc])
	if ln := p.Line(pc); ln > 0 {
		s = fmt.Sprintf("line %d, %s", ln, s)
	}
	return s
}

// sortedTargets is a small helper for tests: the ascending label addresses.
func sortedTargets(text []isa.Instruction) []int64 {
	m := collectTargets(text)
	out := make([]int64, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
