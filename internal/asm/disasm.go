package asm

import (
	"fmt"
	"strings"

	"hirata/internal/isa"
)

// Disassemble renders a program's text section as assembly source, one
// instruction per line, prefixed with its word address. The output
// round-trips through Assemble up to pseudo-instruction expansion (the
// disassembler emits only real opcodes).
func Disassemble(text []isa.Instruction) string {
	var b strings.Builder
	for i, in := range text {
		fmt.Fprintf(&b, "%6d:  %s\n", i, in)
	}
	return b.String()
}
