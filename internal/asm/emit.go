package asm

import (
	"strings"

	"hirata/internal/isa"
)

// emit expands one statement into machine instructions.
func (a *assembler) emit(st stmt) ([]isa.Instruction, error) {
	switch st.mnem {
	case "li", "la":
		return a.emitLI(st)
	case "mov":
		rd, rs, err := a.twoRegs(st)
		if err != nil {
			return nil, err
		}
		if rd.IsFP() || rs.IsFP() {
			return nil, a.errf(st.line, "mov works on integer registers (use fmov)")
		}
		return []isa.Instruction{{Op: isa.ADD, Rd: rd, Rs1: rs, Rs2: isa.R0}}, nil
	case "neg":
		rd, rs, err := a.twoRegs(st)
		if err != nil {
			return nil, err
		}
		return []isa.Instruction{{Op: isa.SUB, Rd: rd, Rs1: isa.R0, Rs2: rs}}, nil
	case "subi":
		if len(st.ops) != 3 {
			return nil, a.errf(st.line, "subi needs 3 operands")
		}
		rd, err := a.reg(st.line, st.ops[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(st.line, st.ops[1])
		if err != nil {
			return nil, err
		}
		imm, err := a.eval(st.line, st.ops[2])
		if err != nil {
			return nil, err
		}
		return []isa.Instruction{{Op: isa.ADDI, Rd: rd, Rs1: rs, Imm: int32(-imm)}}, nil
	case "ret":
		if len(st.ops) != 0 {
			return nil, a.errf(st.line, "ret takes no operands")
		}
		return []isa.Instruction{{Op: isa.JR, Rs1: isa.R31, Rd: isa.NoReg, Rs2: isa.NoReg}}, nil
	case "call":
		if len(st.ops) != 1 {
			return nil, a.errf(st.line, "call needs a target")
		}
		imm, err := a.eval(st.line, st.ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Instruction{{Op: isa.JAL, Rd: isa.R31, Rs1: isa.NoReg, Rs2: isa.NoReg, Imm: int32(imm)}}, nil
	case "b":
		if len(st.ops) != 1 {
			return nil, a.errf(st.line, "b needs a target")
		}
		imm, err := a.eval(st.line, st.ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Instruction{{Op: isa.J, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: isa.NoReg, Imm: int32(imm)}}, nil
	}

	op, ok := isa.OpcodeByName(st.mnem)
	if !ok {
		return nil, a.errf(st.line, "unknown mnemonic %q", st.mnem)
	}
	in := isa.Instruction{Op: op, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: isa.NoReg}
	need := func(n int) error {
		if len(st.ops) != n {
			return a.errf(st.line, "%s needs %d operands, got %d", st.mnem, n, len(st.ops))
		}
		return nil
	}
	var err error
	switch op.Fmt() {
	case isa.FmtR:
		if err = need(3); err != nil {
			return nil, err
		}
		if in.Rd, err = a.reg(st.line, st.ops[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = a.reg(st.line, st.ops[1]); err != nil {
			return nil, err
		}
		if in.Rs2, err = a.reg(st.line, st.ops[2]); err != nil {
			return nil, err
		}
	case isa.FmtR2:
		if err = need(2); err != nil {
			return nil, err
		}
		if in.Rd, err = a.reg(st.line, st.ops[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = a.reg(st.line, st.ops[1]); err != nil {
			return nil, err
		}
	case isa.FmtI:
		if err = need(3); err != nil {
			return nil, err
		}
		if in.Rd, err = a.reg(st.line, st.ops[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = a.reg(st.line, st.ops[1]); err != nil {
			return nil, err
		}
		if in.Imm, err = a.imm(st.line, st.ops[2]); err != nil {
			return nil, err
		}
	case isa.FmtLI:
		if err = need(2); err != nil {
			return nil, err
		}
		if in.Rd, err = a.reg(st.line, st.ops[0]); err != nil {
			return nil, err
		}
		if in.Imm, err = a.imm(st.line, st.ops[1]); err != nil {
			return nil, err
		}
	case isa.FmtLd:
		if err = need(2); err != nil {
			return nil, err
		}
		if in.Rd, err = a.reg(st.line, st.ops[0]); err != nil {
			return nil, err
		}
		if in.Imm, in.Rs1, err = a.memOperand(st.line, st.ops[1]); err != nil {
			return nil, err
		}
	case isa.FmtSt:
		if err = need(2); err != nil {
			return nil, err
		}
		if in.Rs2, err = a.reg(st.line, st.ops[0]); err != nil {
			return nil, err
		}
		if in.Imm, in.Rs1, err = a.memOperand(st.line, st.ops[1]); err != nil {
			return nil, err
		}
	case isa.FmtB:
		twoRegs := op == isa.BEQ || op == isa.BNE
		n := 2
		if twoRegs {
			n = 3
		}
		if err = need(n); err != nil {
			return nil, err
		}
		if in.Rs1, err = a.reg(st.line, st.ops[0]); err != nil {
			return nil, err
		}
		rest := st.ops[1]
		if twoRegs {
			if in.Rs2, err = a.reg(st.line, st.ops[1]); err != nil {
				return nil, err
			}
			rest = st.ops[2]
		}
		if in.Imm, err = a.imm(st.line, rest); err != nil {
			return nil, err
		}
	case isa.FmtJ:
		if op == isa.JAL {
			if err = need(2); err != nil {
				return nil, err
			}
			if in.Rd, err = a.reg(st.line, st.ops[0]); err != nil {
				return nil, err
			}
			if in.Imm, err = a.imm(st.line, st.ops[1]); err != nil {
				return nil, err
			}
		} else {
			if err = need(1); err != nil {
				return nil, err
			}
			if in.Imm, err = a.imm(st.line, st.ops[0]); err != nil {
				return nil, err
			}
		}
	case isa.FmtJR:
		if err = need(1); err != nil {
			return nil, err
		}
		if in.Rs1, err = a.reg(st.line, st.ops[0]); err != nil {
			return nil, err
		}
	case isa.FmtQ:
		if err = need(2); err != nil {
			return nil, err
		}
		if in.Rs1, err = a.reg(st.line, st.ops[0]); err != nil {
			return nil, err
		}
		if in.Rs2, err = a.reg(st.line, st.ops[1]); err != nil {
			return nil, err
		}
	case isa.FmtTID:
		if err = need(1); err != nil {
			return nil, err
		}
		if in.Rd, err = a.reg(st.line, st.ops[0]); err != nil {
			return nil, err
		}
	case isa.FmtN:
		if err = need(0); err != nil {
			return nil, err
		}
	}
	if err := in.Validate(); err != nil {
		return nil, a.errf(st.line, "%v", err)
	}
	return []isa.Instruction{in}, nil
}

// emitLI expands li/la into addi or lih+addi.
func (a *assembler) emitLI(st stmt) ([]isa.Instruction, error) {
	rd, err := a.reg(st.line, st.ops[0])
	if err != nil {
		return nil, err
	}
	if rd.IsFP() {
		return nil, a.errf(st.line, "%s needs an integer destination", st.mnem)
	}
	v, err := a.eval(st.line, st.ops[1])
	if err != nil {
		return nil, err
	}
	if st.size == 1 {
		if !fitsImm14(v) {
			return nil, a.errf(st.line, "internal: li value %d no longer fits", v)
		}
		return []isa.Instruction{{Op: isa.ADDI, Rd: rd, Rs1: isa.R0, Rs2: isa.NoReg, Imm: int32(v)}}, nil
	}
	hi, lo, ok := liParts(v)
	if !ok {
		return nil, a.errf(st.line, "%s value %d out of range", st.mnem, v)
	}
	return []isa.Instruction{
		{Op: isa.LIH, Rd: rd, Rs1: isa.NoReg, Rs2: isa.NoReg, Imm: int32(hi)},
		{Op: isa.ADDI, Rd: rd, Rs1: rd, Rs2: isa.NoReg, Imm: int32(lo)},
	}, nil
}

// reg parses a register operand.
func (a *assembler) reg(line int, s string) (isa.Reg, error) {
	r, err := isa.ParseReg(strings.TrimSpace(s))
	if err != nil {
		return isa.NoReg, a.errf(line, "%v", err)
	}
	return r, nil
}

// imm resolves an immediate expression into an int32.
func (a *assembler) imm(line int, s string) (int32, error) {
	v, err := a.eval(line, s)
	if err != nil {
		return 0, err
	}
	if v < -(1<<31) || v >= 1<<31 {
		return 0, a.errf(line, "immediate %d does not fit in 32 bits", v)
	}
	return int32(v), nil
}

// memOperand parses "imm(reg)", "(reg)", or a bare address expression
// (implying base r0).
func (a *assembler) memOperand(line int, s string) (int32, isa.Reg, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 {
		imm, err := a.imm(line, s)
		return imm, isa.R0, err
	}
	if !strings.HasSuffix(s, ")") {
		return 0, isa.NoReg, a.errf(line, "malformed memory operand %q", s)
	}
	base, err := a.reg(line, s[open+1:len(s)-1])
	if err != nil {
		return 0, isa.NoReg, err
	}
	var imm int32
	if open > 0 {
		if imm, err = a.imm(line, s[:open]); err != nil {
			return 0, isa.NoReg, err
		}
	}
	return imm, base, nil
}

// twoRegs parses a two-register pseudo statement.
func (a *assembler) twoRegs(st stmt) (rd, rs isa.Reg, err error) {
	if len(st.ops) != 2 {
		return isa.NoReg, isa.NoReg, a.errf(st.line, "%s needs 2 operands", st.mnem)
	}
	if rd, err = a.reg(st.line, st.ops[0]); err != nil {
		return
	}
	rs, err = a.reg(st.line, st.ops[1])
	return
}
