package asm

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"hirata/internal/exec"
	"hirata/internal/isa"
	"hirata/internal/mem"
)

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble(`
		; sum the first 10 integers
	start:	addi r1, r0, 10
		addi r2, r0, 0
	loop:	add  r2, r2, r1
		addi r1, r1, -1
		bnez r1, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) != 6 {
		t.Fatalf("text length = %d, want 6", len(p.Text))
	}
	if p.MustSymbol("start") != 0 || p.MustSymbol("loop") != 2 {
		t.Fatalf("labels wrong: start=%d loop=%d", p.MustSymbol("start"), p.MustSymbol("loop"))
	}
	if p.Text[4].Op != isa.BNEZ || p.Text[4].Imm != 2 {
		t.Fatalf("branch = %v, want bnez r1, 2", p.Text[4])
	}
	ip := exec.NewInterp(p.Text, mem.NewMemory(16))
	if err := ip.Run(); err != nil {
		t.Fatal(err)
	}
	if got := ip.Regs.ReadInt(isa.R2); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestAssembleDataSection(t *testing.T) {
	p, err := Assemble(`
		.data
		.org 100
	vec:	.word 1, 2, 3
	fvec:	.float 1.5, -2.5
	buf:	.space 4
	after:	.word 0xff
		.equ STRIDE 8
		.text
		la r1, vec
		lw r2, 1(r1)
		flw f1, fvec
		flw f2, fvec+1
		li r3, STRIDE
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.MustSymbol("vec") != 100 || p.MustSymbol("fvec") != 103 {
		t.Fatalf("data labels wrong: vec=%d fvec=%d", p.MustSymbol("vec"), p.MustSymbol("fvec"))
	}
	if p.MustSymbol("buf") != 105 || p.MustSymbol("after") != 109 {
		t.Fatalf(".space layout wrong: buf=%d after=%d", p.MustSymbol("buf"), p.MustSymbol("after"))
	}
	if p.DataEnd != 110 {
		t.Fatalf("DataEnd = %d, want 110", p.DataEnd)
	}
	m, err := p.NewMemory(8)
	if err != nil {
		t.Fatal(err)
	}
	if m.IntAt(101) != 2 || m.IntAt(109) != 0xff {
		t.Fatal("data image wrong")
	}
	if m.FloatAt(104) != -2.5 {
		t.Fatalf("float data = %g, want -2.5", m.FloatAt(104))
	}
	ip := exec.NewInterp(p.Text, m)
	if err := ip.Run(); err != nil {
		t.Fatal(err)
	}
	if got := ip.Regs.ReadInt(isa.R2); got != 2 {
		t.Errorf("r2 = %d, want 2", got)
	}
	if got := ip.Regs.ReadFP(isa.F1); got != 1.5 {
		t.Errorf("f1 = %g, want 1.5", got)
	}
	if got := ip.Regs.ReadFP(isa.F2); got != -2.5 {
		t.Errorf("f2 = %g, want -2.5", got)
	}
	if got := ip.Regs.ReadInt(isa.R3); got != 8 {
		t.Errorf("r3 = %d, want 8", got)
	}
}

func TestPseudoInstructions(t *testing.T) {
	p, err := Assemble(`
		li   r1, 100000       ; needs lih+addi
		li   r2, -5           ; single addi
		mov  r3, r1
		neg  r4, r2
		subi r5, r1, 1
		call fn
		j    end
	fn:	ret
	end:	halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	ip := exec.NewInterp(p.Text, mem.NewMemory(16))
	if err := ip.Run(); err != nil {
		t.Fatal(err)
	}
	checks := map[isa.Reg]int64{
		isa.R1: 100000, isa.R2: -5, isa.R3: 100000, isa.R4: 5, isa.R5: 99999,
	}
	for r, v := range checks {
		if got := ip.Regs.ReadInt(r); got != v {
			t.Errorf("%s = %d, want %d", r, got, v)
		}
	}
}

// Property: li materialises arbitrary values in range.
func TestLIProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		v := rng.Int63n(1<<26) - 1<<25
		p, err := Assemble("li r1, " + itoa(v) + "\nhalt\n")
		if err != nil {
			t.Logf("li %d: %v", v, err)
			return false
		}
		ip := exec.NewInterp(p.Text, mem.NewMemory(4))
		if err := ip.Run(); err != nil {
			return false
		}
		return ip.Regs.ReadInt(isa.R1) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func TestMemOperandForms(t *testing.T) {
	p, err := Assemble(`
		.data
		.org 10
	x:	.word 7
		.text
		li  r1, 10
		lw  r2, (r1)
		lw  r3, 0(r1)
		lw  r4, x
		lw  r5, x+0
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMemory(8)
	if err != nil {
		t.Fatal(err)
	}
	ip := exec.NewInterp(p.Text, m)
	if err := ip.Run(); err != nil {
		t.Fatal(err)
	}
	for _, r := range []isa.Reg{isa.R2, isa.R3, isa.R4, isa.R5} {
		if got := ip.Regs.ReadInt(r); got != 7 {
			t.Errorf("%s = %d, want 7", r, got)
		}
	}
}

func TestMultithreadMnemonics(t *testing.T) {
	p, err := Assemble(`
		ffork
		tid r1
		qen r30, r31
		qenf f30, f31
		qdis
		chgpri
		setmode 1
		swp r1, 0(r2)
		fswp f1, 0(r2)
		kill
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := []isa.Opcode{isa.FFORK, isa.TID, isa.QEN, isa.QENF, isa.QDIS,
		isa.CHGPRI, isa.SETMODE, isa.SWP, isa.FSWP, isa.KILL, isa.HALT}
	for i, op := range want {
		if p.Text[i].Op != op {
			t.Errorf("instruction %d = %s, want %s", i, p.Text[i].Op, op)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":            "frobnicate r1, r2\n",
		"bad register":                "add r1, r2, r99\n",
		"missing operand":             "add r1, r2\n",
		"undefined symbol":            "j nowhere\n",
		"duplicate label":             "x: nop\nx: nop\n",
		"text data mix":               ".data\nadd r1, r2, r3\n",
		"bad directive":               ".bogus 3\n",
		"equ malformed":               ".equ ONLYNAME\n",
		"word outside data":           ".word 3\n",
		"imm overflow":                "addi r1, r0, 100000\n",
		"li overflow":                 "li r1, 999999999999\n",
		"bad label char":              "1bad: nop\n",
		"duplicate data":              ".data\n.org 5\n.word 1\n.org 5\n.word 2\n",
		"malformed mem":               "lw r1, 3(r2\n",
		"fp li":                       "li f1, 3\n",
		"mov on fp":                   "mov f1, f2\n",
		"beq missing target":          "beq r1, r2\n",
		"bad org":                     ".org -5\n",
		"bad space":                   ".data\n.space x\n",
		"instr after colonless label": "foo bar: nop\n",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: assembled without error:\n%s", name, src)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
		addi r1, r0, 5
		fadd f1, f2, f3
		lw   r2, 8(r1)
		fsw  f1, -4(r1)
		beq  r1, r2, 0
		jal  r31, 2
		tid  r7
		halt
	`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	dis := Disassemble(p.Text)
	// The disassembly is directly re-assemblable.
	p2, err := Assemble(dis)
	if err != nil {
		t.Fatalf("re-assembling disassembly: %v\n%s", err, dis)
	}
	if len(p2.Text) != len(p.Text) {
		t.Fatalf("round trip length %d != %d", len(p2.Text), len(p.Text))
	}
	for i := range p.Text {
		if !p.Text[i].Same(p2.Text[i]) {
			t.Errorf("instruction %d: %v != %v", i, p.Text[i], p2.Text[i])
		}
	}
}

func TestMultipleLabelsSameLine(t *testing.T) {
	p, err := Assemble("a: b: c: nop\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"a", "b", "c"} {
		if p.MustSymbol(s) != 0 {
			t.Errorf("label %s = %d, want 0", s, p.MustSymbol(s))
		}
	}
}

func TestCommentStyles(t *testing.T) {
	p, err := Assemble(`
		nop ; semicolon
		nop # hash
		nop // slashes
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) != 3 {
		t.Fatalf("text length = %d, want 3", len(p.Text))
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("bogus r1\n")
}

func TestSymbolLookup(t *testing.T) {
	p := MustAssemble(".equ X 7\nnop\nhalt\n")
	if v, ok := p.Symbol("X"); !ok || v != 7 {
		t.Errorf("Symbol(X) = %d, %v", v, ok)
	}
	if _, ok := p.Symbol("missing"); ok {
		t.Error("Symbol(missing) found")
	}
}

func TestPseudoOperandErrors(t *testing.T) {
	cases := []string{
		"mov r1\n",          // wrong arity
		"neg r1\n",          // wrong arity
		"subi r1, r2\n",     // wrong arity
		"ret r1\n",          // ret takes none
		"call\n",            // call needs a target
		"b\n",               // b needs a target
		"li r1\n",           // li needs a value
		"la f1, 3\n",        // la needs int dest
		"jal r31\n",         // jal needs target too
		"tid\n",             // tid needs a register
		"qen r1\n",          // qen needs two
		"setmode\n",         // setmode needs a mode
		"lw r1, 4(r2), 5\n", // too many operands
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("assembled without error: %q", src)
		}
	}
}

func TestLintDirectives(t *testing.T) {
	p, err := Assemble(`
	.lint slots 8
	.lint allow L010 L014
	.lint allow L013
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.LintSlots != 8 {
		t.Errorf("LintSlots = %d, want 8", p.LintSlots)
	}
	want := []string{"L010", "L014", "L013"}
	if len(p.LintAllow) != len(want) {
		t.Fatalf("LintAllow = %v, want %v", p.LintAllow, want)
	}
	for i, w := range want {
		if p.LintAllow[i] != w {
			t.Errorf("LintAllow[%d] = %q, want %q", i, p.LintAllow[i], w)
		}
	}

	for _, bad := range []string{
		"\t.lint\n\thalt\n",
		"\t.lint slots\n\thalt\n",
		"\t.lint slots zero\n\thalt\n",
		"\t.lint slots 0\n\thalt\n",
		"\t.lint frobnicate L010\n\thalt\n",
		"\t.lint allow L099\n\thalt\n",     // no such code
		"\t.lint allow l010\n\thalt\n",     // case-sensitive
		"\t.lint allow L010 bad\n\thalt\n", // one bad code poisons the line
	} {
		if _, err := Assemble(bad); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", bad)
		}
	}
}

// TestLintAllowUnknownCodePositioned: a typo'd suppression fails at
// assembly time with the offending line and code in the message.
func TestLintAllowUnknownCodePositioned(t *testing.T) {
	_, err := Assemble("\thalt\n\t.lint allow L042\n")
	if err == nil {
		t.Fatal("Assemble succeeded, want unknown-code error")
	}
	msg := err.Error()
	for _, want := range []string{"line 2", `"L042"`} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %s", msg, want)
		}
	}
}

func TestWordTypes(t *testing.T) {
	p, err := Assemble(`
	.data
	.org 10
i:	.word 1, 2
f:	.float 1.5
s:	.space 3
	.text
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	wants := []struct {
		addr int64
		cls  WordClass
	}{
		{10, WordInt}, {11, WordInt}, {12, WordFloat},
		{13, WordUnknown}, // .space words carry no static type
		{99, WordUnknown}, // never declared
	}
	for _, w := range wants {
		if got := p.WordType(w.addr); got != w.cls {
			t.Errorf("WordType(%d) = %v, want %v", w.addr, got, w.cls)
		}
	}
}
