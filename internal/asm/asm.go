package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"hirata/internal/isa"
)

// Assemble translates assembly source into a Program. Errors identify the
// 1-based source line.
func Assemble(src string) (*Program, error) {
	a := &assembler{
		prog:    &Program{Symbols: make(map[string]int64)},
		section: sectText,
	}
	if err := a.pass1(src); err != nil {
		return nil, err
	}
	if err := a.pass2(); err != nil {
		return nil, err
	}
	if err := a.prog.sortData(); err != nil {
		return nil, err
	}
	a.prog.resolveDataExtents()
	return a.prog, nil
}

// MustAssemble is Assemble for programs embedded in tests and workload
// generators, where a syntax error is a bug.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type section uint8

const (
	sectText section = iota
	sectData
)

// stmt is one parsed instruction statement awaiting pass-2 resolution.
type stmt struct {
	line  int
	mnem  string
	ops   []string
	index int // text index of the first emitted instruction
	size  int // number of instructions this statement expands to
}

// dataSlot is one .word/.float operand awaiting pass-2 expression resolution.
type dataSlot struct {
	line  int
	addr  int64
	expr  string
	float bool
}

type assembler struct {
	prog    *Program
	section section
	loc     int64 // data location counter
	stmts   []stmt
	slots   []dataSlot
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return fmt.Errorf("asm: line %d: %s", line, fmt.Sprintf(format, args...))
}

// pass1 parses lines, assigns label values, expands directive data, and
// computes the size of every instruction statement.
func (a *assembler) pass1(src string) error {
	textIndex := 0
	for num, raw := range strings.Split(src, "\n") {
		line := num + 1
		s := stripComment(raw)
		// Peel off any leading labels.
		for {
			s = strings.TrimSpace(s)
			colon := strings.Index(s, ":")
			if colon < 0 || strings.ContainsAny(s[:colon], " \t") {
				break
			}
			name := s[:colon]
			if !validSymbol(name) {
				return a.errf(line, "invalid label %q", name)
			}
			if _, dup := a.prog.Symbols[name]; dup {
				return a.errf(line, "duplicate symbol %q", name)
			}
			if a.section == sectText {
				a.prog.Symbols[name] = int64(textIndex)
			} else {
				a.prog.Symbols[name] = a.loc
				a.prog.DataSyms = append(a.prog.DataSyms, DataSym{Name: name, Addr: a.loc})
			}
			s = s[colon+1:]
		}
		if s == "" {
			continue
		}
		mnem, rest := splitMnemonic(s)
		if strings.HasPrefix(mnem, ".") {
			if err := a.directive(line, mnem, rest); err != nil {
				return err
			}
			continue
		}
		if a.section != sectText {
			return a.errf(line, "instruction %q in data section", mnem)
		}
		st := stmt{line: line, mnem: mnem, ops: splitOperands(rest), index: textIndex}
		size, err := a.stmtSize(st)
		if err != nil {
			return err
		}
		st.size = size
		textIndex += size
		a.stmts = append(a.stmts, st)
	}
	return nil
}

// directive handles one assembler directive during pass 1.
func (a *assembler) directive(line int, mnem, rest string) error {
	switch mnem {
	case ".text":
		a.section = sectText
	case ".data":
		a.section = sectData
	case ".org":
		v, err := strconv.ParseInt(strings.TrimSpace(rest), 0, 64)
		if err != nil || v < 0 {
			return a.errf(line, ".org needs a non-negative integer, got %q", rest)
		}
		a.loc = v
		a.section = sectData
	case ".space":
		if a.section != sectData {
			return a.errf(line, ".space outside data section")
		}
		n, err := strconv.ParseInt(strings.TrimSpace(rest), 0, 64)
		if err != nil || n < 0 {
			return a.errf(line, ".space needs a non-negative integer, got %q", rest)
		}
		a.loc += n
		a.bumpDataEnd()
	case ".word", ".float":
		if a.section != sectData {
			return a.errf(line, "%s outside data section", mnem)
		}
		fields := splitOperands(rest)
		if len(fields) == 0 {
			return a.errf(line, "%s needs at least one value", mnem)
		}
		class := WordInt
		if mnem == ".float" {
			class = WordFloat
		}
		if a.prog.WordTypes == nil {
			a.prog.WordTypes = make(map[int64]WordClass)
		}
		for _, f := range fields {
			a.slots = append(a.slots, dataSlot{line: line, addr: a.loc, expr: f, float: mnem == ".float"})
			a.prog.WordTypes[a.loc] = class
			a.loc++
		}
		a.bumpDataEnd()
	case ".equ":
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return a.errf(line, ".equ needs NAME VALUE")
		}
		if !validSymbol(fields[0]) {
			return a.errf(line, "invalid .equ name %q", fields[0])
		}
		if _, dup := a.prog.Symbols[fields[0]]; dup {
			return a.errf(line, "duplicate symbol %q", fields[0])
		}
		v, err := strconv.ParseInt(fields[1], 0, 64)
		if err != nil {
			return a.errf(line, ".equ value %q is not an integer", fields[1])
		}
		a.prog.Symbols[fields[0]] = v
	case ".lint":
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return a.errf(line, ".lint needs `allow CODE...` or `slots N`")
		}
		switch fields[0] {
		case "allow":
			for _, c := range fields[1:] {
				if !KnownLintCodes[c] {
					return a.errf(line, ".lint allow: unknown diagnostic code %q (known: L001..L017)", c)
				}
			}
			a.prog.LintAllow = append(a.prog.LintAllow, fields[1:]...)
		case "slots":
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 {
				return a.errf(line, ".lint slots needs a positive integer, got %q", fields[1])
			}
			a.prog.LintSlots = n
		default:
			return a.errf(line, "unknown .lint directive %q", fields[0])
		}
	default:
		return a.errf(line, "unknown directive %s", mnem)
	}
	return nil
}

func (a *assembler) bumpDataEnd() {
	if a.loc > a.prog.DataEnd {
		a.prog.DataEnd = a.loc
	}
}

// stmtSize returns how many machine instructions a statement expands to.
// The answer must not depend on symbol values (labels are unresolved in
// pass 1), so li/la use a purely syntactic rule: a literal that fits the
// signed 14-bit immediate costs one instruction, everything else two.
func (a *assembler) stmtSize(st stmt) (int, error) {
	switch st.mnem {
	case "li", "la":
		if len(st.ops) != 2 {
			return 0, a.errf(st.line, "%s needs 2 operands", st.mnem)
		}
		if v, err := strconv.ParseInt(st.ops[1], 0, 64); err == nil && fitsImm14(v) {
			return 1, nil
		}
		return 2, nil
	case "mov", "neg", "subi", "ret", "call", "b":
		return 1, nil
	default:
		if _, ok := isa.OpcodeByName(st.mnem); !ok {
			return 0, a.errf(st.line, "unknown mnemonic %q", st.mnem)
		}
		return 1, nil
	}
}

// pass2 resolves operands and emits instructions and data words.
func (a *assembler) pass2() error {
	for _, sl := range a.slots {
		var val uint64
		if sl.float {
			f, err := strconv.ParseFloat(sl.expr, 64)
			if err != nil {
				return a.errf(sl.line, ".float value %q: %v", sl.expr, err)
			}
			val = math.Float64bits(f)
		} else {
			v, err := a.eval(sl.line, sl.expr)
			if err != nil {
				return err
			}
			val = uint64(v)
		}
		a.prog.Data = append(a.prog.Data, DataWord{Addr: sl.addr, Val: val})
	}
	for _, st := range a.stmts {
		ins, err := a.emit(st)
		if err != nil {
			return err
		}
		if len(ins) != st.size {
			return a.errf(st.line, "internal: statement size changed between passes (%d != %d)", len(ins), st.size)
		}
		a.prog.Text = append(a.prog.Text, ins...)
		for range ins {
			a.prog.Lines = append(a.prog.Lines, st.line)
		}
	}
	for i, in := range a.prog.Text {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("asm: instruction %d (%s): %w", i, in, err)
		}
	}
	return nil
}

// eval resolves an integer expression: LITERAL, SYM, SYM+LIT or SYM-LIT.
func (a *assembler) eval(line int, expr string) (int64, error) {
	expr = strings.TrimSpace(expr)
	if v, err := strconv.ParseInt(expr, 0, 64); err == nil {
		return v, nil
	}
	// Find a +/- splitting symbol and offset (skip a leading sign).
	for i := 1; i < len(expr); i++ {
		if expr[i] == '+' || expr[i] == '-' {
			base, err := a.eval(line, expr[:i])
			if err != nil {
				return 0, err
			}
			off, err := strconv.ParseInt(expr[i+1:], 0, 64)
			if err != nil {
				return 0, a.errf(line, "bad offset in expression %q", expr)
			}
			if expr[i] == '-' {
				off = -off
			}
			return base + off, nil
		}
	}
	if v, ok := a.prog.Symbols[expr]; ok {
		return v, nil
	}
	return 0, a.errf(line, "undefined symbol %q", expr)
}

func fitsImm14(v int64) bool { return v >= -8192 && v <= 8191 }

// liParts splits v for a lih+addi expansion: v == hi<<14 + lo with lo in
// the signed 14-bit range.
func liParts(v int64) (hi, lo int64, ok bool) {
	hi = (v + 8192) >> 14
	lo = v - hi<<14
	// lih's own immediate is signed 14-bit, bounding v to about ±2^27.
	if !fitsImm14(hi) || !fitsImm14(lo) {
		return 0, 0, false
	}
	return hi, lo, true
}
