package asm

// KnownLintCodes is the catalogue of diagnostic codes the static verifier
// (internal/lint) can emit. The assembler validates `.lint allow`
// arguments against it so a typo'd suppression fails at assembly time
// instead of silently suppressing nothing. The table lives here because
// the dependency points the other way — lint imports asm — and lint's
// TestKnownLintCodesInSync keeps the two catalogues identical.
var KnownLintCodes = map[string]bool{
	"L001": true, // uninit-read
	"L002": true, // bad-target
	"L003": true, // split-li
	"L004": true, // unreachable
	"L005": true, // queue-protocol
	"L006": true, // queue-deadlock
	"L007": true, // thread-control
	"L008": true, // no-halt
	"L009": true, // readonly-write
	"L010": true, // data-race
	"L011": true, // oob-access
	"L012": true, // typed-access
	"L013": true, // dead-store
	"L014": true, // const-branch
	"L015": true, // queue-ring-deadlock
	"L016": true, // queue-overflow
	"L017": true, // unbounded-spin
}
