package asm

import "strings"

// stripComment removes ';', '#' and '//' comments from a source line.
func stripComment(s string) string {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ';', '#':
			return s[:i]
		case '/':
			if i+1 < len(s) && s[i+1] == '/' {
				return s[:i]
			}
		}
	}
	return s
}

// splitMnemonic separates the mnemonic from the operand text.
func splitMnemonic(s string) (mnem, rest string) {
	s = strings.TrimSpace(s)
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return strings.ToLower(s[:i]), s[i+1:]
	}
	return strings.ToLower(s), ""
}

// splitOperands splits a comma-separated operand list, trimming whitespace
// and dropping empty fields.
func splitOperands(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

// validSymbol reports whether s is a legal label or .equ name: a letter or
// underscore followed by letters, digits, underscores or dots.
func validSymbol(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9', c == '.':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
