package sched

import (
	"testing"

	"hirata/internal/isa"
)

// TestMemoryDisambiguation: accesses off the same unmodified base with
// different displacements carry no ordering edges, so a critical-path load
// can hoist above an independent store.
func TestMemoryDisambiguation(t *testing.T) {
	block := []isa.Instruction{
		{Op: isa.SW, Rs1: isa.R1, Rs2: isa.R2, Rd: isa.NoReg, Imm: 4},
		{Op: isa.LW, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.NoReg, Imm: 5},
		{Op: isa.MUL, Rd: isa.R4, Rs1: isa.R3, Rs2: isa.R3},
		{Op: isa.ADD, Rd: isa.R5, Rs1: isa.R4, Rs2: isa.R4},
	}
	out, err := Schedule(block, StrategyA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Op != isa.LW {
		t.Errorf("load not hoisted above the disjoint store: first = %v", out[0])
	}
}

// TestMemoryAliasKeepsOrder: same displacement -> must stay ordered.
func TestMemoryAliasKeepsOrder(t *testing.T) {
	block := []isa.Instruction{
		{Op: isa.SW, Rs1: isa.R1, Rs2: isa.R2, Rd: isa.NoReg, Imm: 4},
		{Op: isa.LW, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.NoReg, Imm: 4},
		{Op: isa.MUL, Rd: isa.R4, Rs1: isa.R3, Rs2: isa.R3},
	}
	out, err := Schedule(block, StrategyA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	swPos, lwPos := -1, -1
	for i, in := range out {
		switch in.Op {
		case isa.SW:
			swPos = i
		case isa.LW:
			lwPos = i
		}
	}
	if swPos > lwPos {
		t.Errorf("aliasing load hoisted above store: sw at %d, lw at %d", swPos, lwPos)
	}
}

// TestBaseRedefinitionBlocksDisambiguation: rewriting the base register
// between two accesses forbids treating them as disjoint.
func TestBaseRedefinitionBlocksDisambiguation(t *testing.T) {
	block := []isa.Instruction{
		{Op: isa.SW, Rs1: isa.R1, Rs2: isa.R2, Rd: isa.NoReg, Imm: 4},
		{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R1, Rs2: isa.NoReg, Imm: 1},
		{Op: isa.LW, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.NoReg, Imm: 3}, // may alias old R1+4
		{Op: isa.MUL, Rd: isa.R4, Rs1: isa.R3, Rs2: isa.R3},
	}
	out, err := Schedule(block, StrategyA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	swPos, lwPos := -1, -1
	for i, in := range out {
		switch in.Op {
		case isa.SW:
			swPos = i
		case isa.LW:
			lwPos = i
		}
	}
	if swPos > lwPos {
		t.Errorf("load with redefined base hoisted above store: sw %d, lw %d", swPos, lwPos)
	}
	// The WAR/RAW chain through r1 would also keep the order; make the
	// intent explicit by checking the store-load pair directly as above.
}

// TestStoreStoreDisjointReorder: two stores to provably different words
// may reorder (the higher-priority one first).
func TestStoreStoreDisjoint(t *testing.T) {
	block := []isa.Instruction{
		{Op: isa.SW, Rs1: isa.R1, Rs2: isa.R2, Rd: isa.NoReg, Imm: 0},
		{Op: isa.SW, Rs1: isa.R1, Rs2: isa.R3, Rd: isa.NoReg, Imm: 1},
	}
	nodes, err := buildDAG(block)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes[0].succs) != 0 {
		t.Errorf("disjoint stores carry ordering edges: %v", nodes[0].succs)
	}

	alias := []isa.Instruction{
		{Op: isa.SW, Rs1: isa.R1, Rs2: isa.R2, Rd: isa.NoReg, Imm: 0},
		{Op: isa.SW, Rs1: isa.R1, Rs2: isa.R3, Rd: isa.NoReg, Imm: 0},
	}
	nodes, err = buildDAG(alias)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes[0].succs) == 0 {
		t.Error("aliasing stores lost their ordering edge")
	}
}
