package sched

import (
	"testing"

	"hirata/internal/isa"
)

// TestCensusMatchesISATables locks CensusOf to the ISA latency tables:
// for every opcode, a one-instruction fragment must report exactly the
// opcode's unit class and issue latency. The static resource bound
// (internal/lint) and the analytic performance model (internal/model)
// both consume CensusOf, so this test is what keeps the two passes'
// per-class accounting from drifting.
func TestCensusMatchesISATables(t *testing.T) {
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		ins := isa.Instruction{Op: op}
		c := CensusOf([]isa.Instruction{ins})
		u := op.Unit()
		for cls := 0; cls <= isa.NumUnitClasses; cls++ {
			want := ClassDemand{}
			if cls == int(u) && u != isa.UnitNone {
				want = ClassDemand{Count: 1, Demand: int64(op.IssueLatency())}
			}
			if c[cls] != want {
				t.Errorf("%v: census[%v] = %+v, want %+v", op, isa.UnitClass(cls), c[cls], want)
			}
		}
	}
}

// TestCensusAdditive checks that the census of a concatenation is the sum
// of the parts — the property the lower-bound pass relies on when it sums
// per-block censuses along CFG paths.
func TestCensusAdditive(t *testing.T) {
	a := []isa.Instruction{{Op: isa.ADD}, {Op: isa.LW}, {Op: isa.FMUL}}
	b := []isa.Instruction{{Op: isa.FDIV}, {Op: isa.SW}, {Op: isa.NOP}, {Op: isa.BEQZ}}
	sum := CensusOf(a)
	sum.Add(CensusOf(b))
	whole := CensusOf(append(append([]isa.Instruction{}, a...), b...))
	if sum != whole {
		t.Fatalf("census not additive: parts %+v, whole %+v", sum, whole)
	}
	tot := whole.Total()
	// ADD, LW, FMUL, FDIV, SW dispatch to units; NOP and BEQZ do not.
	if tot.Count != 5 {
		t.Fatalf("total count = %d, want 5", tot.Count)
	}
	wantDemand := int64(isa.ADD.IssueLatency() + isa.LW.IssueLatency() +
		isa.FMUL.IssueLatency() + isa.FDIV.IssueLatency() + isa.SW.IssueLatency())
	if tot.Demand != wantDemand {
		t.Fatalf("total demand = %d, want %d", tot.Demand, wantDemand)
	}
}
