// Package sched implements the paper's static code scheduling techniques
// for loop bodies (§2.3.2):
//
//   - Strategy A: plain list scheduling by critical-path priority. It
//     reorders a basic block to shorten one thread's processing time,
//     ignoring resource conflicts — the right choice when the control
//     sequence is unpredictable (the paper's computer-graphics case).
//   - Strategy B: list scheduling extended with a resource reservation
//     table and a standby table. When every dependence-free instruction at
//     an issuing cycle has a resource conflict, a software pipeliner would
//     emit a NOP; strategy B instead issues an instruction into a free
//     standby station (marking the standby table) and uses the reservation
//     table to know when it will actually execute.
//
// Schedulers take a branch-free basic block and return a semantics-
// preserving permutation of it: every reordering respects the dependence
// DAG, which tests verify by differential execution.
package sched

import (
	"fmt"

	"hirata/internal/isa"
)

// node is one instruction in the dependence DAG.
type node struct {
	idx      int // position in the original block
	ins      isa.Instruction
	succs    []edge
	npreds   int
	priority int // critical-path length to any sink
}

// edge is a dependence with a minimum decode-to-decode distance.
type edge struct {
	to  int
	lat int
}

// depOpts tunes the dependence-edge model for the DAG's two consumers:
// the list schedulers (exact machine model of one basic block) and the
// static lower-bound analysis (provable minimum decode distances over
// arbitrary fragments, including control-flow instructions).
type depOpts struct {
	rawExtra     int  // added to the producer's result latency on RAW edges
	ordLat       int  // WAR/WAW and memory-ordering edge latency
	allowControl bool // tolerate branches and decode-unit instructions
	// skip excludes registers from dependence edges; the bound analysis
	// passes the queue-mapped registers, whose reads and writes go through
	// the inter-slot FIFOs rather than the register file.
	skip func(isa.Reg) bool
}

// buildDAG constructs the dependence DAG of a basic block.
//
// Dependences: RAW (latency = producer result latency + 1, the machine's
// dependent-decode distance), WAR and WAW (latency 1, ordering only), and
// conservative memory ordering (stores are barriers against all other
// memory operations; loads may reorder among themselves).
func buildDAG(block []isa.Instruction) ([]*node, error) {
	return buildDAGOpts(block, depOpts{rawExtra: 1, ordLat: 1})
}

// DepSpan returns the minimum number of cycles the machine's dependences
// force between decoding the first and the last instruction of a
// straight-line fragment: the longest latency-weighted path through the
// fragment's dependence DAG. Unlike the schedulers it tolerates control
// flow and decode-unit instructions, so it applies to any basic block of
// a whole-program CFG; internal/lint's static cycle bound sums it along
// shortest CFG paths.
//
// The edge model is chosen so the result is a sound lower bound: RAW
// edges carry the producer's result latency (plus one, the dependent-
// decode distance, when issueWidth is 1), and ordering edges (WAR, WAW,
// conservative memory ordering) carry 1 cycle at issue width 1 — in-order
// decode retires at most one instruction per cycle — and 0 beyond.
func DepSpan(frag []isa.Instruction, issueWidth int, skip func(isa.Reg) bool) int {
	o := depOpts{rawExtra: 1, ordLat: 1, allowControl: true, skip: skip}
	if issueWidth > 1 {
		// A wider decoder may retire a dependent pair closer together;
		// only the raw result latency is provable.
		o.rawExtra, o.ordLat = 0, 0
	}
	nodes, err := buildDAGOpts(frag, o)
	if err != nil {
		return 0 // unreachable with allowControl set; stay conservative
	}
	span := 0
	for _, n := range nodes {
		if n.priority > span {
			span = n.priority
		}
	}
	return span
}

// buildDAGOpts is the shared DAG-construction core behind buildDAG and
// DepSpan.
func buildDAGOpts(block []isa.Instruction, o depOpts) ([]*node, error) {
	nodes := make([]*node, len(block))
	for i, in := range block {
		if !o.allowControl && (in.Op.IsBranch() || in.Op.Unit() == isa.UnitNone && in.Op != isa.NOP) {
			return nil, fmt.Errorf("sched: instruction %d (%s) is control flow; schedule basic blocks only", i, in.Op)
		}
		nodes[i] = &node{idx: i, ins: in}
	}
	skip := func(r isa.Reg) bool { return o.skip != nil && o.skip(r) }
	addEdge := func(from, to, lat int) {
		for _, e := range nodes[from].succs {
			if e.to == to {
				if lat > e.lat {
					// keep the max latency for duplicate edges
					for k := range nodes[from].succs {
						if nodes[from].succs[k].to == to && nodes[from].succs[k].lat < lat {
							nodes[from].succs[k].lat = lat
						}
					}
				}
				return
			}
		}
		nodes[from].succs = append(nodes[from].succs, edge{to: to, lat: lat})
		nodes[to].npreds++
	}

	lastWrite := map[isa.Reg]int{}
	lastReads := map[isa.Reg][]int{}
	var priorLoads, priorStores []int // all earlier memory operations

	// Memory disambiguation: two accesses provably refer to different
	// words when they use the same base register with the same value
	// (no intervening redefinition) and different displacements; such
	// pairs need no ordering edge.
	baseVersion := map[isa.Reg]int{}
	type memRef struct {
		base    isa.Reg
		version int
		imm     int32
	}
	refs := make([]memRef, len(block))
	disjoint := func(a, b int) bool {
		ra, rb := refs[a], refs[b]
		return ra.base == rb.base && ra.version == rb.version && ra.imm != rb.imm
	}

	var srcs []isa.Reg
	for i, in := range block {
		srcs = srcs[:0]
		srcs = in.Sources(srcs)
		for _, r := range srcs {
			if !r.Valid() || (r.IsInt() && r.Index() == 0) || skip(r) {
				continue
			}
			if w, ok := lastWrite[r]; ok {
				addEdge(w, i, block[w].Op.ResultLatency()+o.rawExtra) // RAW
			}
			lastReads[r] = append(lastReads[r], i)
		}
		if d := in.Dest(); d.Valid() && !(d.IsInt() && d.Index() == 0) && !skip(d) {
			if w, ok := lastWrite[d]; ok {
				addEdge(w, i, o.ordLat) // WAW
			}
			for _, rd := range lastReads[d] {
				if rd != i {
					addEdge(rd, i, o.ordLat) // WAR
				}
			}
			lastWrite[d] = i
			delete(lastReads, d)
			baseVersion[d]++
		}
		if in.Op.IsMem() {
			refs[i] = memRef{base: in.Rs1, version: baseVersion[in.Rs1], imm: in.Imm}
			if in.Op.IsStore() {
				// A store orders against every earlier access it may alias.
				for _, m := range priorLoads {
					if !disjoint(m, i) {
						addEdge(m, i, o.ordLat)
					}
				}
				for _, m := range priorStores {
					if !disjoint(m, i) {
						addEdge(m, i, o.ordLat)
					}
				}
				priorStores = append(priorStores, i)
			} else {
				// A load orders against earlier possibly-aliasing stores.
				for _, s := range priorStores {
					if !disjoint(s, i) {
						addEdge(s, i, o.ordLat)
					}
				}
				priorLoads = append(priorLoads, i)
			}
		}
	}

	// Critical-path priorities, computed in reverse topological order
	// (original order is topological since edges point forward).
	for i := len(nodes) - 1; i >= 0; i-- {
		best := 0
		for _, e := range nodes[i].succs {
			if v := nodes[e.to].priority + e.lat; v > best {
				best = v
			}
		}
		nodes[i].priority = best
	}
	return nodes, nil
}
