// Package sched implements the paper's static code scheduling techniques
// for loop bodies (§2.3.2):
//
//   - Strategy A: plain list scheduling by critical-path priority. It
//     reorders a basic block to shorten one thread's processing time,
//     ignoring resource conflicts — the right choice when the control
//     sequence is unpredictable (the paper's computer-graphics case).
//   - Strategy B: list scheduling extended with a resource reservation
//     table and a standby table. When every dependence-free instruction at
//     an issuing cycle has a resource conflict, a software pipeliner would
//     emit a NOP; strategy B instead issues an instruction into a free
//     standby station (marking the standby table) and uses the reservation
//     table to know when it will actually execute.
//
// Schedulers take a branch-free basic block and return a semantics-
// preserving permutation of it: every reordering respects the dependence
// DAG, which tests verify by differential execution.
package sched

import (
	"fmt"

	"hirata/internal/isa"
)

// node is one instruction in the dependence DAG.
type node struct {
	idx      int // position in the original block
	ins      isa.Instruction
	succs    []edge
	npreds   int
	priority int // critical-path length to any sink
}

// edge is a dependence with a minimum decode-to-decode distance.
type edge struct {
	to  int
	lat int
}

// buildDAG constructs the dependence DAG of a basic block.
//
// Dependences: RAW (latency = producer result latency + 1, the machine's
// dependent-decode distance), WAR and WAW (latency 1, ordering only), and
// conservative memory ordering (stores are barriers against all other
// memory operations; loads may reorder among themselves).
func buildDAG(block []isa.Instruction) ([]*node, error) {
	nodes := make([]*node, len(block))
	for i, in := range block {
		if in.Op.IsBranch() || in.Op.Unit() == isa.UnitNone && in.Op != isa.NOP {
			return nil, fmt.Errorf("sched: instruction %d (%s) is control flow; schedule basic blocks only", i, in.Op)
		}
		nodes[i] = &node{idx: i, ins: in}
	}
	addEdge := func(from, to, lat int) {
		for _, e := range nodes[from].succs {
			if e.to == to {
				if lat > e.lat {
					// keep the max latency for duplicate edges
					for k := range nodes[from].succs {
						if nodes[from].succs[k].to == to && nodes[from].succs[k].lat < lat {
							nodes[from].succs[k].lat = lat
						}
					}
				}
				return
			}
		}
		nodes[from].succs = append(nodes[from].succs, edge{to: to, lat: lat})
		nodes[to].npreds++
	}

	lastWrite := map[isa.Reg]int{}
	lastReads := map[isa.Reg][]int{}
	var priorLoads, priorStores []int // all earlier memory operations

	// Memory disambiguation: two accesses provably refer to different
	// words when they use the same base register with the same value
	// (no intervening redefinition) and different displacements; such
	// pairs need no ordering edge.
	baseVersion := map[isa.Reg]int{}
	type memRef struct {
		base    isa.Reg
		version int
		imm     int32
	}
	refs := make([]memRef, len(block))
	disjoint := func(a, b int) bool {
		ra, rb := refs[a], refs[b]
		return ra.base == rb.base && ra.version == rb.version && ra.imm != rb.imm
	}

	var srcs []isa.Reg
	for i, in := range block {
		srcs = srcs[:0]
		srcs = in.Sources(srcs)
		for _, r := range srcs {
			if !r.Valid() || (r.IsInt() && r.Index() == 0) {
				continue
			}
			if w, ok := lastWrite[r]; ok {
				addEdge(w, i, block[w].Op.ResultLatency()+1) // RAW
			}
			lastReads[r] = append(lastReads[r], i)
		}
		if d := in.Dest(); d.Valid() && !(d.IsInt() && d.Index() == 0) {
			if w, ok := lastWrite[d]; ok {
				addEdge(w, i, 1) // WAW
			}
			for _, rd := range lastReads[d] {
				if rd != i {
					addEdge(rd, i, 1) // WAR
				}
			}
			lastWrite[d] = i
			delete(lastReads, d)
			baseVersion[d]++
		}
		if in.Op.IsMem() {
			refs[i] = memRef{base: in.Rs1, version: baseVersion[in.Rs1], imm: in.Imm}
			if in.Op.IsStore() {
				// A store orders against every earlier access it may alias.
				for _, m := range priorLoads {
					if !disjoint(m, i) {
						addEdge(m, i, 1)
					}
				}
				for _, m := range priorStores {
					if !disjoint(m, i) {
						addEdge(m, i, 1)
					}
				}
				priorStores = append(priorStores, i)
			} else {
				// A load orders against earlier possibly-aliasing stores.
				for _, s := range priorStores {
					if !disjoint(s, i) {
						addEdge(s, i, 1)
					}
				}
				priorLoads = append(priorLoads, i)
			}
		}
	}

	// Critical-path priorities, computed in reverse topological order
	// (original order is topological since edges point forward).
	for i := len(nodes) - 1; i >= 0; i-- {
		best := 0
		for _, e := range nodes[i].succs {
			if v := nodes[e.to].priority + e.lat; v > best {
				best = v
			}
		}
		nodes[i].priority = best
	}
	return nodes, nil
}
