package sched

import "hirata/internal/isa"

// ClassDemand is one functional-unit class's share of an instruction
// fragment: how many instructions dispatch to the class and how many
// issue cycles they occupy it for (the N and N·L of the paper's
// U = N·L/T utilization law).
type ClassDemand struct {
	Count  int64 // instructions dispatched to the class
	Demand int64 // issue-cycle demand: sum of per-instruction issue latencies
}

// Census is the per-class demand census of an instruction fragment,
// indexed by isa.UnitClass (index 0, UnitNone, stays zero: decode-executed
// instructions occupy no functional unit).
//
// This is the single source of truth for "how much functional-unit time
// does this code need": the static lower-bound analysis
// (internal/lint.ComputeBounds) sums it along cheapest CFG paths to prove
// a resource bound, and the analytic performance model (internal/model)
// scales it by observed execution counts to predict utilization. Both
// passes call CensusOf so their per-class accounting cannot drift; the
// sync test census_test.go locks the census to the ISA latency tables.
type Census [isa.NumUnitClasses + 1]ClassDemand

// CensusOf computes the per-class demand census of an instruction
// fragment.
func CensusOf(frag []isa.Instruction) Census {
	var c Census
	for _, in := range frag {
		u := in.Op.Unit()
		if u == isa.UnitNone {
			continue
		}
		c[u].Count++
		c[u].Demand += int64(in.Op.IssueLatency())
	}
	return c
}

// Add accumulates another census into this one.
func (c *Census) Add(o Census) {
	for i := range c {
		c[i].Count += o[i].Count
		c[i].Demand += o[i].Demand
	}
}

// Total returns the fragment-wide instruction count and issue-cycle demand
// summed over every functional-unit class.
func (c Census) Total() ClassDemand {
	var t ClassDemand
	for _, d := range c {
		t.Count += d.Count
		t.Demand += d.Demand
	}
	return t
}
