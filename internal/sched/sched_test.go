package sched

import (
	"math/rand"
	"testing"

	"hirata/internal/exec"
	"hirata/internal/isa"
	"hirata/internal/mem"
	"hirata/internal/risc"
)

// lk1Body is a naive (dependence-chained) rendering of Livermore Kernel 1:
// x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]), with f10=q f11=r f12=t and
// r1=&x[k], r2=&y[k], r3=&z[k].
func lk1Body() []isa.Instruction {
	return []isa.Instruction{
		{Op: isa.FLW, Rd: isa.F1, Rs1: isa.R3, Imm: 10},
		{Op: isa.FMUL, Rd: isa.F2, Rs1: isa.F11, Rs2: isa.F1},
		{Op: isa.FLW, Rd: isa.F3, Rs1: isa.R3, Imm: 11},
		{Op: isa.FMUL, Rd: isa.F4, Rs1: isa.F12, Rs2: isa.F3},
		{Op: isa.FADD, Rd: isa.F5, Rs1: isa.F2, Rs2: isa.F4},
		{Op: isa.FLW, Rd: isa.F6, Rs1: isa.R2, Imm: 0},
		{Op: isa.FMUL, Rd: isa.F7, Rs1: isa.F6, Rs2: isa.F5},
		{Op: isa.FADD, Rd: isa.F8, Rs1: isa.F10, Rs2: isa.F7},
		{Op: isa.FSW, Rs1: isa.R1, Rs2: isa.F8, Imm: 0},
		{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R1, Imm: 1},
		{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R2, Imm: 1},
		{Op: isa.ADDI, Rd: isa.R3, Rs1: isa.R3, Imm: 1},
	}
}

// setupLK1 builds a memory with y and z arrays and base registers.
func setupLK1() *mem.Memory {
	m := mem.NewMemory(512)
	for i := int64(0); i < 64; i++ {
		m.SetFloat(100+i, float64(i)*0.5)  // y
		m.SetFloat(200+i, float64(i)*0.25) // z
	}
	return m
}

// runBlock executes a block (plus halt) on the interpreter with LK1 state.
func runBlock(t *testing.T, block []isa.Instruction) (*exec.Interp, *mem.Memory) {
	t.Helper()
	m := setupLK1()
	prog := append(append([]isa.Instruction{}, block...), isa.Instruction{Op: isa.HALT})
	ip := exec.NewInterp(prog, m)
	ip.Regs.WriteInt(isa.R1, 300)
	ip.Regs.WriteInt(isa.R2, 100)
	ip.Regs.WriteInt(isa.R3, 200)
	ip.Regs.WriteFP(isa.F10, 1.5) // q
	ip.Regs.WriteFP(isa.F11, 2.0) // r
	ip.Regs.WriteFP(isa.F12, 3.0) // t
	if err := ip.Run(); err != nil {
		t.Fatal(err)
	}
	return ip, m
}

func TestSchedulePreservesLK1Semantics(t *testing.T) {
	_, m0 := runBlock(t, lk1Body())
	for _, strat := range []Strategy{None, StrategyA, StrategyB} {
		out, err := Schedule(lk1Body(), strat, Options{Threads: 4})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if len(out) != len(lk1Body()) {
			t.Fatalf("%v: length changed: %d != %d", strat, len(out), len(lk1Body()))
		}
		_, m := runBlock(t, out)
		if m.FloatAt(300) != m0.FloatAt(300) {
			t.Errorf("%v: x[0] = %g, want %g", strat, m.FloatAt(300), m0.FloatAt(300))
		}
	}
}

func TestStrategyAShortensLK1(t *testing.T) {
	// On the baseline RISC machine, strategy A's reordering must beat the
	// naive dependence-chained order.
	run := func(block []isa.Instruction) uint64 {
		m := setupLK1()
		var prog []isa.Instruction
		// set up registers via code so the RISC model can run it
		prog = append(prog,
			isa.Instruction{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R0, Imm: 300},
			isa.Instruction{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R0, Imm: 100},
			isa.Instruction{Op: isa.ADDI, Rd: isa.R3, Rs1: isa.R0, Imm: 200},
		)
		start := len(prog)
		for k := 0; k < 20; k++ { // 20 iterations, unrolled bodies
			prog = append(prog, block...)
		}
		_ = start
		prog = append(prog, isa.Instruction{Op: isa.HALT})
		mc, err := risc.New(risc.Config{}, prog, m)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	naive := run(lk1Body())
	schedA, err := Schedule(lk1Body(), StrategyA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt := run(schedA)
	if opt >= naive {
		t.Errorf("strategy A not faster: %d >= %d cycles", opt, naive)
	}
	t.Logf("naive=%d strategyA=%d (%.1f%% better)", naive, opt, 100*float64(naive-opt)/float64(naive))
}

func TestScheduleRejectsControlFlow(t *testing.T) {
	block := []isa.Instruction{
		{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R0, Imm: 1},
		{Op: isa.BNEZ, Rs1: isa.R1, Imm: 0},
	}
	if _, err := Schedule(block, StrategyA, Options{}); err == nil {
		t.Error("branch accepted in basic block")
	}
	block2 := []isa.Instruction{{Op: isa.CHGPRI}}
	if _, err := Schedule(block2, StrategyB, Options{}); err == nil {
		t.Error("chgpri accepted in basic block")
	}
}

func TestScheduleDeterministic(t *testing.T) {
	for _, strat := range []Strategy{StrategyA, StrategyB} {
		a, err := Schedule(lk1Body(), strat, Options{Threads: 8})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Schedule(lk1Body(), strat, Options{Threads: 8})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if !a[i].Same(b[i]) {
				t.Fatalf("%v: nondeterministic at %d: %v != %v", strat, i, a[i], b[i])
			}
		}
	}
}

// randBlock generates a random dependence-rich branch-free block.
func randBlock(rng *rand.Rand, n int) []isa.Instruction {
	ops := []isa.Opcode{isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR, isa.SLL, isa.SRA}
	var block []isa.Instruction
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0: // load
			block = append(block, isa.Instruction{
				Op: isa.LW, Rd: isa.IntReg(rng.Intn(12) + 1), Rs1: isa.R0,
				Imm: int32(rng.Intn(32) + 64),
			})
		case 1: // store
			block = append(block, isa.Instruction{
				Op: isa.SW, Rs1: isa.R0, Rs2: isa.IntReg(rng.Intn(12) + 1),
				Imm: int32(rng.Intn(32) + 64),
			})
		case 2: // immediate
			block = append(block, isa.Instruction{
				Op: isa.ADDI, Rd: isa.IntReg(rng.Intn(12) + 1), Rs1: isa.IntReg(rng.Intn(12) + 1),
				Imm: int32(rng.Intn(100) - 50),
			})
		default:
			op := ops[rng.Intn(len(ops))]
			block = append(block, isa.Instruction{
				Op: op, Rd: isa.IntReg(rng.Intn(12) + 1),
				Rs1: isa.IntReg(rng.Intn(12) + 1), Rs2: isa.IntReg(rng.Intn(12) + 1),
			})
		}
	}
	return block
}

// TestSchedulePreservesSemanticsProperty: differential execution of random
// blocks, original vs scheduled, must agree on all registers and memory.
func TestSchedulePreservesSemanticsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		block := randBlock(rng, 6+rng.Intn(25))
		run := func(b []isa.Instruction) (*exec.Interp, *mem.Memory) {
			m := mem.NewMemory(128)
			for i := int64(64); i < 96; i++ {
				m.SetInt(i, i*3)
			}
			prog := append(append([]isa.Instruction{}, b...), isa.Instruction{Op: isa.HALT})
			ip := exec.NewInterp(prog, m)
			for r := 1; r <= 12; r++ {
				ip.Regs.WriteInt(isa.IntReg(r), int64(r*7))
			}
			if err := ip.Run(); err != nil {
				t.Fatal(err)
			}
			return ip, m
		}
		ip0, m0 := run(block)
		for _, strat := range []Strategy{StrategyA, StrategyB} {
			out, err := Schedule(block, strat, Options{Threads: 1 + rng.Intn(8)})
			if err != nil {
				t.Fatal(err)
			}
			ip1, m1 := run(out)
			for r := 1; r <= 12; r++ {
				reg := isa.IntReg(r)
				if ip0.Regs.ReadInt(reg) != ip1.Regs.ReadInt(reg) {
					t.Fatalf("trial %d %v: %s differs: %d != %d\norig: %v\nsched: %v",
						trial, strat, reg, ip0.Regs.ReadInt(reg), ip1.Regs.ReadInt(reg), block, out)
				}
			}
			for a := int64(64); a < 96; a++ {
				if m0.IntAt(a) != m1.IntAt(a) {
					t.Fatalf("trial %d %v: mem[%d] differs: %d != %d",
						trial, strat, a, m0.IntAt(a), m1.IntAt(a))
				}
			}
		}
	}
}

// TestScheduleIsPermutation: output is always a permutation of the input.
func TestScheduleIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		block := randBlock(rng, 4+rng.Intn(20))
		for _, strat := range []Strategy{StrategyA, StrategyB} {
			out, err := Schedule(block, strat, Options{Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != len(block) {
				t.Fatalf("length %d != %d", len(out), len(block))
			}
			count := map[isa.Instruction]int{}
			for _, in := range block {
				count[in]++
			}
			for _, in := range out {
				count[in]--
			}
			for in, c := range count {
				if c != 0 {
					t.Fatalf("%v: not a permutation: %v count %d", strat, in, c)
				}
			}
		}
	}
}
