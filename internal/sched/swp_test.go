package sched

import (
	"math/rand"
	"testing"

	"hirata/internal/exec"
	"hirata/internal/isa"
	"hirata/internal/mem"
)

func stripNops(in []isa.Instruction) []isa.Instruction {
	var out []isa.Instruction
	for _, i := range in {
		if i.Op != isa.NOP {
			out = append(out, i)
		}
	}
	return out
}

func TestSWPEmitsNopsUnderSharing(t *testing.T) {
	// With eight threads sharing one load/store unit, a load-heavy block
	// must force the software pipeliner to pad with NOPs.
	var block []isa.Instruction
	for i := 0; i < 6; i++ {
		block = append(block, isa.Instruction{
			Op: isa.LW, Rd: isa.IntReg(i + 1), Rs1: isa.R0, Imm: int32(64 + i),
		})
	}
	out, err := Schedule(block, StrategySWP, Options{Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) <= len(block) {
		t.Errorf("software pipelining emitted no NOPs: %d <= %d", len(out), len(block))
	}
	body := stripNops(out)
	if len(body) != len(block) {
		t.Fatalf("lost instructions: %d != %d", len(body), len(block))
	}
	// Strategy B on the same block must not pad.
	outB, err := Schedule(block, StrategyB, Options{Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(outB) != len(block) {
		t.Errorf("strategy B padded with NOPs: %d != %d", len(outB), len(block))
	}
}

func TestSWPSemanticsProperty(t *testing.T) {
	// NOP-stripped SWP output must be a dependence-respecting permutation:
	// check by differential execution like the other strategies.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		block := randBlock(rng, 5+rng.Intn(20))
		out, err := Schedule(block, StrategySWP, Options{Threads: 1 + rng.Intn(8)})
		if err != nil {
			t.Fatal(err)
		}
		ip0, m0 := runRandBlock(t, block)
		ip1, m1 := runRandBlock(t, out)
		for r := 1; r <= 12; r++ {
			reg := isa.IntReg(r)
			if ip0.Regs.ReadInt(reg) != ip1.Regs.ReadInt(reg) {
				t.Fatalf("trial %d: %s differs", trial, reg)
			}
		}
		for a := int64(64); a < 96; a++ {
			if m0.IntAt(a) != m1.IntAt(a) {
				t.Fatalf("trial %d: mem[%d] differs", trial, a)
			}
		}
	}
}

// runRandBlock executes a block under the same initial state the random
// scheduling property tests use.
func runRandBlock(t *testing.T, b []isa.Instruction) (*exec.Interp, *mem.Memory) {
	t.Helper()
	m := mem.NewMemory(128)
	for i := int64(64); i < 96; i++ {
		m.SetInt(i, i*3)
	}
	prog := append(append([]isa.Instruction{}, b...), isa.Instruction{Op: isa.HALT})
	ip := exec.NewInterp(prog, m)
	for r := 1; r <= 12; r++ {
		ip.Regs.WriteInt(isa.IntReg(r), int64(r*7))
	}
	if err := ip.Run(); err != nil {
		t.Fatal(err)
	}
	return ip, m
}

func TestStrategyStrings(t *testing.T) {
	want := map[Strategy]string{
		None:         "non-optimized",
		StrategyA:    "strategy A",
		StrategyB:    "strategy B",
		StrategySWP:  "software pipelining",
		Strategy(99): "unknown",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("Strategy(%d).String() = %q, want %q", s, s.String(), w)
		}
	}
}
