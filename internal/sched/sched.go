package sched

import (
	"sort"

	"hirata/internal/isa"
)

// Strategy selects a scheduling algorithm.
type Strategy uint8

// Scheduling strategies of §3.4.
const (
	// None returns the block unchanged (the paper's "non-optimized").
	None Strategy = iota
	// StrategyA is simple list scheduling by critical-path priority.
	StrategyA
	// StrategyB adds the resource reservation table and the standby table.
	StrategyB
	// StrategySWP is the software-pipelining contrast the paper draws in
	// §2.3.2: like strategy B it consults the resource reservation table,
	// but when every dependence-free instruction has a resource conflict
	// it emits a NOP instead of using a standby station. On this machine
	// the NOP occupies a decode slot, which is exactly the cost strategy
	// B's standby table avoids.
	StrategySWP
)

// String names the strategy as in the paper's Table 4.
func (s Strategy) String() string {
	switch s {
	case None:
		return "non-optimized"
	case StrategyA:
		return "strategy A"
	case StrategyB:
		return "strategy B"
	case StrategySWP:
		return "software pipelining"
	}
	return "unknown"
}

// Options tunes strategy B's resource model.
type Options struct {
	// Threads is the number of thread slots that will execute the
	// scheduled loop in parallel; the reservation table charges each
	// functional-unit use that many issue slots, modelling the unit being
	// shared by that many identical instruction streams.
	Threads int
	// LoadStoreUnits mirrors the machine configuration.
	LoadStoreUnits int
}

func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.LoadStoreUnits <= 0 {
		o.LoadStoreUnits = 1
	}
	return o
}

// Schedule reorders a branch-free basic block according to the strategy.
// The result is a permutation of block that respects all dependences.
func Schedule(block []isa.Instruction, strategy Strategy, opts Options) ([]isa.Instruction, error) {
	nodes, err := buildDAG(block)
	if err != nil {
		return nil, err
	}
	if strategy == None || len(block) < 2 {
		out := make([]isa.Instruction, len(block))
		copy(out, block)
		return out, nil
	}
	opts = opts.withDefaults()
	switch strategy {
	case StrategyA:
		return listSchedule(nodes, nil, false), nil
	case StrategyB:
		return listSchedule(nodes, newReservationTable(opts), false), nil
	case StrategySWP:
		return listSchedule(nodes, newReservationTable(opts), true), nil
	}
	return nil, errUnknownStrategy(strategy)
}

type errUnknownStrategy Strategy

func (e errUnknownStrategy) Error() string { return "sched: unknown strategy" }

// reservationTable tracks functional-unit occupancy (strategy B). Each use
// of a unit reserves Threads × issue-latency cycles, approximating the unit
// being time-shared by every thread slot executing this same loop.
type reservationTable struct {
	opts     Options
	nextFree [isa.NumUnitClasses + 1][]int
	standby  [isa.NumUnitClasses + 1]int // cycle the standby station frees
}

func newReservationTable(opts Options) *reservationTable {
	rt := &reservationTable{opts: opts}
	for cls := 1; cls <= isa.NumUnitClasses; cls++ {
		n := 1
		if isa.UnitClass(cls) == isa.UnitLoadStore {
			n = opts.LoadStoreUnits
		}
		rt.nextFree[cls] = make([]int, n)
	}
	return rt
}

// earliestUnit returns the soonest cycle any unit of the class is free and
// that unit's index.
func (rt *reservationTable) earliestUnit(cls isa.UnitClass) (int, int) {
	best, bestIdx := rt.nextFree[cls][0], 0
	for i, v := range rt.nextFree[cls] {
		if v < best {
			best, bestIdx = v, i
		}
	}
	return best, bestIdx
}

// place reserves a unit for an instruction whose thread issues it at cycle
// issueAt, and returns the cycle execution actually begins.
func (rt *reservationTable) place(op isa.Opcode, issueAt int) int {
	cls := op.Unit()
	free, idx := rt.earliestUnit(cls)
	start := issueAt + 1 // schedule stage
	if free > start {
		start = free
	}
	rt.nextFree[cls][idx] = start + op.IssueLatency()*rt.opts.Threads
	return start
}

// conflictAt reports whether issuing op at the cycle would find every unit
// of its class busy (a resource conflict).
func (rt *reservationTable) conflictAt(op isa.Opcode, issueAt int) bool {
	free, _ := rt.earliestUnit(op.Unit())
	return free > issueAt+1
}

// standbyFree reports whether the standby table entry for the class is
// unmarked at the cycle.
func (rt *reservationTable) standbyFree(op isa.Opcode, cycle int) bool {
	return rt.standby[op.Unit()] <= cycle
}

// markStandby records that an instruction occupies the class's standby
// station until the unit accepts it.
func (rt *reservationTable) markStandby(op isa.Opcode, until int) {
	rt.standby[op.Unit()] = until
}

// listSchedule is the greedy scheduler shared by the strategies. With a
// nil reservation table it is strategy A; with one it is strategy B, or —
// when emitNOPs is set — the software-pipelining contrast, which fills
// conflicted issue cycles with NOPs instead of standby stations.
func listSchedule(nodes []*node, rt *reservationTable, emitNOPs bool) []isa.Instruction {
	n := len(nodes)
	earliest := make([]int, n) // earliest issue cycle by data dependences
	npreds := make([]int, n)
	for i, nd := range nodes {
		npreds[i] = nd.npreds
	}
	scheduled := make([]bool, n)
	var order []isa.Instruction

	ready := make([]int, 0, n)
	for i := range nodes {
		if npreds[i] == 0 {
			ready = append(ready, i)
		}
	}

	scheduledCount := 0
	cycle := 0
	for scheduledCount < n {
		// Candidates whose data dependences are satisfied this cycle,
		// highest priority first (ties broken by original order for
		// determinism).
		cands := cands(nodes, ready, earliest, cycle)
		var pick = -1
		if rt == nil {
			if len(cands) > 0 {
				pick = cands[0]
			}
		} else {
			// Strategy B: prefer a conflict-free candidate; otherwise use
			// a free standby station rather than stalling.
			for _, c := range cands {
				if !rt.conflictAt(nodes[c].ins.Op, cycle) {
					pick = c
					break
				}
			}
			if pick < 0 {
				if emitNOPs && len(cands) > 0 {
					// Dependence-free work exists but every unit is busy:
					// a software pipeliner stalls the issue slot with a NOP.
					order = append(order, isa.Nop())
					cycle++
					continue
				}
				for _, c := range cands {
					if rt.standbyFree(nodes[c].ins.Op, cycle) {
						pick = c
						break
					}
				}
			}
		}
		if pick < 0 {
			cycle++
			continue
		}

		nd := nodes[pick]
		execStart := cycle + 1
		if rt != nil {
			wasConflict := rt.conflictAt(nd.ins.Op, cycle)
			execStart = rt.place(nd.ins.Op, cycle)
			if wasConflict {
				rt.markStandby(nd.ins.Op, execStart)
			}
		}
		order = append(order, nd.ins)
		scheduledCount++
		scheduled[pick] = true
		ready = removeInt(ready, pick)
		for _, e := range nd.succs {
			// Successor may issue once the producer's result arrives; the
			// edge latency is decode-to-decode assuming immediate
			// execution, shifted if the producer waited for a unit.
			start := cycle + e.lat + (execStart - (cycle + 1))
			if start > earliest[e.to] {
				earliest[e.to] = start
			}
			npreds[e.to]--
			if npreds[e.to] == 0 {
				ready = append(ready, e.to)
			}
		}
		cycle++
	}
	return order
}

// cands filters and priority-sorts the ready list for one cycle.
func cands(nodes []*node, ready []int, earliest []int, cycle int) []int {
	var out []int
	for _, i := range ready {
		if earliest[i] <= cycle {
			out = append(out, i)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		pa, pb := nodes[out[a]].priority, nodes[out[b]].priority
		if pa != pb {
			return pa > pb
		}
		return nodes[out[a]].idx < nodes[out[b]].idx
	})
	return out
}

func removeInt(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}
