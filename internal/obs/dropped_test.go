package obs

// The dropped-event counter must be exact and surfaced on every exposition
// path: Prometheus, the JSON metrics, the CPI-stack document, and the
// profile report header — and the ring-replay analyses must refuse
// (CritPath) while the incremental ones stay exact (CPI accounting).

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hirata/internal/core"
	"hirata/internal/isa"
)

func TestRingOverflowCountsDrops(t *testing.T) {
	c := NewCollector(core.Config{ThreadSlots: 1}, Options{RingCapacity: 8})
	ins := isa.Instruction{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R0, Imm: 1}
	const issues = 20
	for i := 0; i < issues; i++ {
		c.Issue(uint64(i), 0, int64(i%4), ins)
	}
	const wantDropped = issues - 8
	if got := c.Dropped(); got != wantDropped {
		t.Fatalf("Dropped() = %d, want %d (20 events into an 8-slot ring)", got, wantDropped)
	}
	if got := len(c.Events()); got != 8 {
		t.Errorf("ring holds %d events, want its capacity 8", got)
	}

	var prom bytes.Buffer
	if err := c.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "hirata_events_dropped_total 12") {
		t.Error("/metrics does not report the dropped-event count")
	}

	var mj bytes.Buffer
	if err := c.WriteMetricsJSON(&mj); err != nil {
		t.Fatal(err)
	}
	var mdoc struct {
		Dropped uint64 `json:"events_dropped"`
	}
	if err := json.Unmarshal(mj.Bytes(), &mdoc); err != nil {
		t.Fatal(err)
	}
	if mdoc.Dropped != wantDropped {
		t.Errorf("/metrics.json events_dropped = %d, want %d", mdoc.Dropped, wantDropped)
	}

	if st := c.CPIStack(); st.Dropped != wantDropped {
		t.Errorf("CPIStack.Dropped = %d, want %d", st.Dropped, wantDropped)
	}

	p := c.Profile()
	if p.Dropped != wantDropped {
		t.Errorf("Profile.Dropped = %d, want %d", p.Dropped, wantDropped)
	}
	if p.TotalIssues != issues {
		t.Errorf("profile counted %d issues, want %d: aggregation must not lose dropped events", p.TotalIssues, issues)
	}
	var rep bytes.Buffer
	if err := p.WriteAnnotated(&rep, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "dropped 12 events") {
		t.Errorf("profile report header does not warn about drops:\n%s", rep.String())
	}
}
