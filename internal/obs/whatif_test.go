package obs

// What-if estimation invariants on the fib example. The bound-vs-actual
// validation against real re-runs with a changed core.Config lives at the
// repo root (whatif_validation_test.go) where the ray-trace workload is
// importable.

import (
	"strings"
	"testing"

	"hirata/internal/isa"
)

func TestParseScenario(t *testing.T) {
	cases := []struct {
		in   string
		kind string
		unit isa.UnitClass
	}{
		{"+1 alu", "unit", isa.UnitIntALU},
		{"ALU", "unit", isa.UnitIntALU},
		{"+1 ls", "unit", isa.UnitLoadStore},
		{"loadstore", "unit", isa.UnitLoadStore},
		{"load-store", "unit", isa.UnitLoadStore},
		{"+1 fpadd", "unit", isa.UnitFPAdd},
		{"+1 shifter", "unit", isa.UnitShifter},
		{"+1 slot", "slot", isa.UnitNone},
		{"thread_slot", "slot", isa.UnitNone},
		{"+1 standby", "standby", isa.UnitNone},
	}
	for _, c := range cases {
		sc, err := ParseScenario(c.in)
		if err != nil {
			t.Errorf("ParseScenario(%q): %v", c.in, err)
			continue
		}
		if sc.Kind != c.kind || sc.Unit != c.unit {
			t.Errorf("ParseScenario(%q) = {%s %v}, want {%s %v}", c.in, sc.Kind, sc.Unit, c.kind, c.unit)
		}
		if sc.Label == "" {
			t.Errorf("ParseScenario(%q) has no label", c.in)
		}
	}
	if _, err := ParseScenario("+1 warp"); err == nil {
		t.Error("ParseScenario accepted an unknown scenario")
	}
}

func TestWhatIfBoundsFib(t *testing.T) {
	c, res, _ := runFib(t, Options{})
	ests, err := c.WhatIfAll("+1 alu, +1 ls, +1 slot, +1 standby")
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 4 {
		t.Fatalf("got %d estimates, want 4", len(ests))
	}
	for _, e := range ests {
		if e.Baseline != res.Cycles {
			t.Errorf("%s: baseline %d, run took %d", e.Scenario, e.Baseline, res.Cycles)
		}
		if e.Low > e.High || e.High != e.Baseline {
			t.Errorf("%s: bounds [%d, %d] malformed for baseline %d", e.Scenario, e.Low, e.High, e.Baseline)
		}
		if e.GainBound < 0 || e.GainBound > 1 {
			t.Errorf("%s: gain bound %g outside [0, 1]", e.Scenario, e.GainBound)
		}
		if e.Note == "" {
			t.Errorf("%s: estimate has no explanatory note", e.Scenario)
		}
	}
	out := FormatEstimates(ests)
	for _, want := range []string{"+1 IntALU", "+1 LoadStore", "+1 thread slot", "+1 standby depth"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted estimates missing %q:\n%s", want, out)
		}
	}
}

func TestWhatIfRefusesDroppedEvents(t *testing.T) {
	c, _, _ := runFib(t, Options{RingCapacity: 32})
	if _, err := c.WhatIf(Scenario{Kind: "unit", Unit: isa.UnitIntALU, Label: "+1 IntALU"}); err == nil {
		t.Error("unit what-if accepted a ring that dropped events")
	}
	// The slot scenario uses only the exact incremental accounting and must
	// still answer.
	if _, err := c.WhatIf(Scenario{Kind: "slot", Label: "+1 thread slot"}); err != nil {
		t.Errorf("slot what-if refused despite not needing the ring: %v", err)
	}
}

func TestWhatIfAllRejectsUnknown(t *testing.T) {
	c, _, _ := runFib(t, Options{})
	if _, err := c.WhatIfAll("+1 alu, +1 warp"); err == nil {
		t.Error("WhatIfAll accepted an unknown scenario in the list")
	}
}
