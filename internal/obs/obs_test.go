package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hirata/internal/asm"
	"hirata/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files")

const fibPath = "../../examples/programs/fib.s"

// runFib executes examples/programs/fib.s on a 2-slot machine with a
// collector attached and returns everything the tests inspect.
func runFib(t *testing.T, opt Options) (*Collector, core.Result, *asm.Program) {
	t.Helper()
	src, err := os.ReadFile(fibPath)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMemory(64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{ThreadSlots: 2, StandbyStations: true}
	p, err := core.New(cfg, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(cfg, opt)
	p.Observe(c)
	if err := p.StartThread(0); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	c.Finalize(res)
	return c, res, prog
}

// TestPerfettoGoldenFib pins the Chrome Trace Event export for the fib
// example: byte-stable across runs, schema-valid (every event carries
// ph/ts/pid/tid), one named track per functional unit and per slot, and a
// profile that attributes every issued instruction to a source line.
func TestPerfettoGoldenFib(t *testing.T) {
	opt := Options{MetricsInterval: 64}
	c, res, prog := runFib(t, opt)
	var out bytes.Buffer
	if err := c.WriteChromeTrace(&out); err != nil {
		t.Fatal(err)
	}

	// Determinism: a second full simulation produces the same bytes.
	c2, _, _ := runFib(t, opt)
	var out2 bytes.Buffer
	if err := c2.WriteChromeTrace(&out2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), out2.Bytes()) {
		t.Error("trace export is not deterministic across identical runs")
	}

	golden := filepath.Join("testdata", "fib_trace.golden.json")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to regenerate)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("trace differs from %s (run `go test ./internal/obs -update` after intentional timing changes)", golden)
	}

	// Schema validity.
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	for i, e := range doc.TraceEvents {
		for _, key := range []string{"ph", "ts", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				t.Fatalf("event %d lacks required field %q: %v", i, key, e)
			}
		}
	}

	// Track coverage: a named track per functional unit and per slot.
	unitTracks := map[string]bool{}
	slotTracks := map[string]bool{}
	for _, e := range doc.TraceEvents {
		var name, kind string
		json.Unmarshal(e["name"], &kind)
		if kind != "process_name" && kind != "thread_name" {
			continue
		}
		var args struct {
			Name string `json:"name"`
		}
		json.Unmarshal(e["args"], &args)
		name = args.Name
		var pid int
		json.Unmarshal(e["pid"], &pid)
		switch {
		case pid == unitsPID && kind == "thread_name":
			unitTracks[name] = true
		case pid >= slotPIDBase && kind == "process_name":
			slotTracks[name] = true
		}
	}
	if len(unitTracks) != len(c.Units()) {
		t.Errorf("unit tracks = %d, want one per functional unit (%d): %v", len(unitTracks), len(c.Units()), unitTracks)
	}
	if len(slotTracks) != c.Slots() {
		t.Errorf("slot tracks = %d, want %d: %v", len(slotTracks), c.Slots(), slotTracks)
	}

	// Profile attribution: every issued instruction maps to a source line.
	p := c.Profile()
	if p.TotalIssues != res.Instructions {
		t.Errorf("profile issues = %d, want Result.Instructions = %d", p.TotalIssues, res.Instructions)
	}
	attr := p.AttributedIssues(prog)
	if 100*attr < 95*res.Instructions {
		t.Errorf("source-line attribution %d/%d below 95%%", attr, res.Instructions)
	}
	var report bytes.Buffer
	if err := p.WriteAnnotated(&report, prog); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "hotspot profile") {
		t.Errorf("unexpected report header:\n%s", report.String())
	}
}

func TestPrometheusExposition(t *testing.T) {
	c, res, _ := runFib(t, Options{MetricsInterval: 50})
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		fmt.Sprintf("hirata_cycles %d\n", res.Cycles),
		fmt.Sprintf("hirata_instructions_total %d\n", res.Instructions),
		`hirata_unit_utilization_percent{unit="IntALU[0]"}`,
		`hirata_stall_cycles_total{slot="0",reason="empty"}`,
		"hirata_slots_bound 0\n", // run finished: every slot unbound
		"hirata_events_dropped_total 0\n",
		"hirata_interval_ipc",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
}

func TestMetricsJSONAndIntervals(t *testing.T) {
	c, res, _ := runFib(t, Options{MetricsInterval: 50})
	var buf bytes.Buffer
	if err := c.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Cycles       uint64   `json:"cycles"`
		Instructions uint64   `json:"instructions"`
		Samples      []Sample `json:"samples"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Cycles != res.Cycles || doc.Instructions != res.Instructions {
		t.Errorf("JSON totals %d/%d != result %d/%d", doc.Cycles, doc.Instructions, res.Cycles, res.Instructions)
	}
	// The closed intervals partition the run: their issue counts sum to the
	// instruction total (Finalize closes the trailing partial interval).
	var issued uint64
	for i, s := range doc.Samples {
		if s.EndCycle <= s.StartCycle {
			t.Errorf("sample %d: empty interval [%d,%d)", i, s.StartCycle, s.EndCycle)
		}
		issued += s.Issued
	}
	if issued != res.Instructions {
		t.Errorf("interval issues sum to %d, want %d", issued, res.Instructions)
	}
	var table bytes.Buffer
	if err := c.WriteIntervalTable(&table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "top stall") {
		t.Errorf("unexpected interval table:\n%s", table.String())
	}
}

// TestRingDropOldest: a tiny ring keeps the newest events, counts the
// drops, and still exports structurally valid JSON.
func TestRingDropOldest(t *testing.T) {
	c, _, _ := runFib(t, Options{RingCapacity: 32})
	if c.Dropped() == 0 {
		t.Fatal("expected drops from a 32-event ring")
	}
	evs := c.Events()
	if len(evs) != 32 {
		t.Fatalf("ring holds %d events, want 32", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Fatalf("ring not chronological at %d: %d < %d", i, evs[i].Cycle, evs[i-1].Cycle)
		}
	}
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("truncated-ring trace invalid: %v", err)
	}
	if !strings.Contains(buf.String(), "ring dropped") {
		t.Error("trace does not mark the dropped prefix")
	}
}

func TestCollectorTotalsMatchResult(t *testing.T) {
	c, res, _ := runFib(t, Options{})
	tot := c.TotalsSnapshot()
	if tot.Issues != res.Instructions {
		t.Errorf("Issues = %d, want %d", tot.Issues, res.Instructions)
	}
	if tot.Completes != tot.Selects {
		t.Errorf("Completes %d != Selects %d", tot.Completes, tot.Selects)
	}
	// Unit invocation totals mirror the simulator's own UnitStats.
	for _, us := range res.Units {
		ord := -1
		for o, u := range c.Units() {
			if u.Class == us.Class && u.Index == us.Index {
				ord = o
			}
		}
		if ord < 0 {
			t.Fatalf("unit %v[%d] missing from collector", us.Class, us.Index)
		}
		if tot.UnitInvocs[ord] != us.Invocations {
			t.Errorf("%v[%d]: invocations %d != simulator's %d", us.Class, us.Index, tot.UnitInvocs[ord], us.Invocations)
		}
	}
	// Stall totals mirror the simulator's per-slot stall counters.
	for s, ss := range res.Slots {
		for r, n := range ss.Stalls {
			if tot.SlotStalls[s][r] != n {
				t.Errorf("slot %d reason %v: %d != %d", s, core.StallReason(r), tot.SlotStalls[s][r], n)
			}
		}
	}
}

func TestAssignLanes(t *testing.T) {
	spans := []slotSpan{
		{start: 0, end: 10, slotID: 0},
		{start: 2, end: 5, slotID: 0},   // overlaps span 0 → lane 1
		{start: 5, end: 8, slotID: 0},   // overlaps span 0 only → reuses lane 1
		{start: 10, end: 12, slotID: 0}, // lane 0 free again
		{start: 0, end: 3, slotID: 1},
	}
	counts := assignLanes(spans, 2)
	if counts[0] != 2 || counts[1] != 1 {
		t.Errorf("lane counts = %v, want [2 1]", counts)
	}
	wantLanes := []int{0, 1, 1, 0, 0}
	for i, sp := range spans {
		if sp.lane != wantLanes[i] {
			t.Errorf("span %d lane = %d, want %d", i, sp.lane, wantLanes[i])
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	c, _, prog := runFib(t, Options{MetricsInterval: 50})
	srv := httptest.NewServer(Handler(c, prog))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	if code, body, ct := get("/metrics"); code != 200 || !strings.Contains(body, "hirata_ipc") || !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics: code %d, content-type %q", code, ct)
	}
	if code, body, _ := get("/metrics.json"); code != 200 || !json.Valid([]byte(body)) {
		t.Errorf("/metrics.json: code %d, valid JSON %v", code, json.Valid([]byte(body)))
	}
	if code, body, _ := get("/trace.json"); code != 200 || !json.Valid([]byte(body)) {
		t.Errorf("/trace.json: code %d, valid JSON %v", code, json.Valid([]byte(body)))
	}
	if code, body, _ := get("/profile"); code != 200 || !strings.Contains(body, "hotspot profile") {
		t.Errorf("/profile: code %d", code)
	}
	if code, body, _ := get("/"); code != 200 || !strings.Contains(body, "/trace.json") {
		t.Errorf("index: code %d", code)
	}
	if code, _, _ := get("/nope"); code != 404 {
		t.Errorf("unknown path: code %d, want 404", code)
	}
	if code, _, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline: code %d", code)
	}
}

// TestObserveComposesWithTracer: the collector rides alongside a TextTracer
// through the composing Processor.Observe and both see the full stream.
func TestObserveComposesWithTracer(t *testing.T) {
	src, err := os.ReadFile(fibPath)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMemory(64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{ThreadSlots: 1}
	p, err := core.New(cfg, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(cfg, Options{})
	var text bytes.Buffer
	p.Observe(c)
	p.Observe(&core.TextTracer{W: &text})
	if err := p.StartThread(0); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	c.Finalize(res)
	if c.TotalsSnapshot().Issues != res.Instructions {
		t.Errorf("collector issues %d != %d", c.TotalsSnapshot().Issues, res.Instructions)
	}
	issueLines := 0
	for _, line := range strings.Split(text.String(), "\n") {
		if strings.Contains(line, "issue ") {
			issueLines++
		}
	}
	if uint64(issueLines) != res.Instructions {
		t.Errorf("tracer printed %d issue lines, want %d", issueLines, res.Instructions)
	}
}
