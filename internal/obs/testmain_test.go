package obs

import (
	"os"
	"testing"

	"hirata/internal/buildinfo"
)

// TestMain pins the build identity for the whole package: the Prometheus
// goldens contain the hirata_build_info gauge, whose real values (VCS
// revision, toolchain version, dirty flag) change with every commit and Go
// release. Tests exercise the exposition shape; provenance accuracy is
// buildinfo's own test's problem.
func TestMain(m *testing.M) {
	buildinfo.SetForTest(&buildinfo.Info{
		Revision:  "0000000000000000",
		Dirty:     false,
		GoVersion: "go0.0-test",
	})
	os.Exit(m.Run())
}
