package obs

// Race-hardening: every HTTP endpoint must serve consistent snapshots
// while a live simulation writes the collector. Run under -race (the CI
// race step covers this package); the test drives a long-running loop and
// hammers the JSON endpoints concurrently with the run.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"hirata/internal/asm"
	"hirata/internal/core"
)

const liveLoopSrc = `
	.text
	li   r1, 8000
loop:	addi r2, r1, 7
	addi r1, r1, -1
	bnez r1, loop
	halt
`

func TestHTTPEndpointsDuringLiveRun(t *testing.T) {
	prog, err := asm.Assemble(liveLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMemory(64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{ThreadSlots: 2, StandbyStations: true}
	p, err := core.New(cfg, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(cfg, Options{MetricsInterval: 64})
	p.Observe(c)
	if err := p.StartThread(0); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(Handler(c, prog))
	defer srv.Close()

	runDone := make(chan error, 1)
	go func() {
		res, err := p.Run()
		if err == nil {
			c.Finalize(res)
		}
		runDone <- err
	}()

	paths := []string{"/metrics", "/metrics.json", "/trace.json", "/cpistack.json", "/critpath.json", "/profile"}
	var wg sync.WaitGroup
	errs := make(chan error, len(paths)*8)
	for _, path := range paths {
		for k := 0; k < 8; k++ {
			wg.Add(1)
			go func(path string) {
				defer wg.Done()
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				// /critpath.json may legitimately refuse (503) if the ring
				// dropped events; everything else must answer 200.
				if resp.StatusCode != http.StatusOK &&
					!(path == "/critpath.json" && resp.StatusCode == http.StatusServiceUnavailable) {
					body, _ := io.ReadAll(resp.Body)
					t.Errorf("GET %s during live run: %d: %s", path, resp.StatusCode, body)
					return
				}
				if _, err := io.ReadAll(resp.Body); err != nil {
					errs <- err
				}
			}(path)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}

	// After the run: the accounting must still be exact.
	st := c.CPIStack()
	for _, s := range st.Slots {
		if got := s.Total(); got != st.Cycles {
			t.Errorf("post-run slot %d buckets sum to %d, want %d", s.Slot, got, st.Cycles)
		}
	}
}
