// Dynamic critical-path extraction in the style of last-arriving-edge
// analysis (Fields et al.): replay the collector's event ring into a
// dependence graph over dynamic instructions, keep for every node only the
// latest-releasing ("binding") incoming edge, and walk the chain back from
// the last-completing instruction. The cycles of the resulting path are
// then decomposed by what each node was waiting for:
//
//	exec      result latency of the instructions on the path
//	frontend  in-order fetch/decode serialization (program-order edges)
//	data      scoreboard interlocks on register values
//	queue     queue-register communication between ring neighbours
//	standby   waiting for the slot's standby station to free
//	unit[c]   schedule-unit arbitration / functional-unit occupancy of
//	          class c (the what-if "+1 <unit>" input)
//
// Edges model the machine's issue rules: program order within a slot
// (in-order decode), register last-writer per context frame, queue
// producer FIFOs per ring link (reserved in issue order, like the
// hardware), functional-unit occupancy per unit instance, and standby
// occupancy per (slot, class). The binding parent is the max of the
// candidate release times, data > queue > standby > program on ties.
//
// The graph is rebuilt from the bounded ring, so the analysis refuses to
// run when the ring dropped events (unlike the CPI accounting, which is
// incremental and exact).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"hirata/internal/asm"
	"hirata/internal/isa"
)

// EdgeKind classifies why a dynamic instruction could not start earlier.
type EdgeKind uint8

// Edge kinds; EdgeNone marks a path root.
const (
	EdgeNone EdgeKind = iota
	EdgeProgram
	EdgeData
	EdgeQueue
	EdgeUnit
	EdgeStandby
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeNone:
		return "root"
	case EdgeProgram:
		return "program"
	case EdgeData:
		return "data"
	case EdgeQueue:
		return "queue"
	case EdgeUnit:
		return "unit"
	case EdgeStandby:
		return "standby"
	}
	return "unknown"
}

// critNode is one dynamic instruction in the reconstructed graph.
type critNode struct {
	pc            int64
	slot          int16
	cls           isa.UnitClass
	issueLat      uint8
	selected      bool
	issue         uint64
	selectC       uint64
	ready         uint64 // result visible (issue+1 for decode-executed)
	parent        int32  // binding edge source, -1 = root
	parentRelease uint64
	edge          EdgeKind
}

// CritBreakdown decomposes the critical path's cycles by cause.
type CritBreakdown struct {
	Exec     uint64            `json:"exec"`
	Frontend uint64            `json:"frontend"`
	Data     uint64            `json:"data"`
	Queue    uint64            `json:"queue"`
	Standby  uint64            `json:"standby"`
	Unit     map[string]uint64 `json:"unit,omitempty"` // by unit-class name
}

// total sums every component.
func (b CritBreakdown) total() uint64 {
	t := b.Exec + b.Frontend + b.Data + b.Queue + b.Standby
	for _, v := range b.Unit {
		t += v
	}
	return t
}

// CritPC attributes path cycles to one static instruction.
type CritPC struct {
	PC     int64  `json:"pc"`
	Line   int    `json:"line,omitempty"` // 1-based source line (0 = unknown)
	Ins    string `json:"ins"`
	Count  int    `json:"count"` // dynamic occurrences on the path
	Cycles uint64 `json:"cycles"`
}

// CritStep is one dynamic instruction on the path, in execution order.
type CritStep struct {
	Slot   int    `json:"slot"`
	PC     int64  `json:"pc"`
	Ins    string `json:"ins"`
	Issue  uint64 `json:"issue"`
	Select uint64 `json:"select,omitempty"`
	Ready  uint64 `json:"ready"`
	Edge   string `json:"edge"`   // how this step was bound to its parent
	Cycles uint64 `json:"cycles"` // chronological charge up to this step's ready
}

// CritPath is the result of the critical-path analysis.
type CritPath struct {
	Cycles     uint64        `json:"cycles"`      // run length
	PathCycles uint64        `json:"path_cycles"` // Σ step charges (= last ready − root start)
	PathLen    int           `json:"path_len"`    // dynamic instructions on the path
	GraphNodes int           `json:"graph_nodes"` // dynamic instructions reconstructed
	Coverage   float64       `json:"coverage"`    // PathCycles / Cycles
	Breakdown  CritBreakdown `json:"breakdown"`
	PCs        []CritPC      `json:"pcs"`   // by path cycles, heaviest first
	Steps      []CritStep    `json:"steps"` // execution order
}

// critBuilder is the replay state while folding the event stream into the
// graph.
type critBuilder struct {
	nodes []critNode
	slots int

	frame     []int     // per slot: bound context frame
	prev      []int32   // per slot: last issued node
	pending   [][]int32 // per slot: issued, not yet selected (FIFO)
	lastClass [][]int32 // per slot, per class: last issued node of the class
	qin       []isa.Reg // per slot: queue-mapped registers
	qout      []isa.Reg
	qinf      []isa.Reg
	qoutf     []isa.Reg

	writers  map[int64]int32 // (frame, reg) → last writer node
	unitLast map[int]int32   // unit ordinal → last occupant node
	qfifo    map[int][]int32 // (consumer slot × 2 + fp) → producer nodes
	insName  map[int64]string
	srcs     []isa.Reg // scratch
}

func newCritBuilder(slots int) *critBuilder {
	b := &critBuilder{
		slots:     slots,
		frame:     make([]int, slots),
		prev:      make([]int32, slots),
		pending:   make([][]int32, slots),
		lastClass: make([][]int32, slots),
		qin:       make([]isa.Reg, slots),
		qout:      make([]isa.Reg, slots),
		qinf:      make([]isa.Reg, slots),
		qoutf:     make([]isa.Reg, slots),
		writers:   make(map[int64]int32),
		unitLast:  make(map[int]int32),
		qfifo:     make(map[int][]int32),
		insName:   make(map[int64]string),
	}
	for s := 0; s < slots; s++ {
		b.frame[s] = s
		b.prev[s] = -1
		b.lastClass[s] = make([]int32, int(isa.UnitLoadStore)+1)
		for c := range b.lastClass[s] {
			b.lastClass[s][c] = -1
		}
		b.qin[s], b.qout[s] = isa.NoReg, isa.NoReg
		b.qinf[s], b.qoutf[s] = isa.NoReg, isa.NoReg
	}
	return b
}

// regKey keys the last-writer map by (context frame, architectural reg).
func regKey(frame int, r isa.Reg) int64 { return int64(frame)<<8 | int64(r) }

// consider offers a candidate binding edge for the node under construction.
func (n *critNode) consider(parent int32, release uint64, kind EdgeKind) {
	if parent < 0 {
		return
	}
	if release > n.parentRelease || (release == n.parentRelease && edgeRank(kind) > edgeRank(n.edge)) {
		n.parent = parent
		n.parentRelease = release
		n.edge = kind
	}
}

// edgeRank breaks release-time ties: true dependences beat structural
// hazards beat program order.
func edgeRank(k EdgeKind) int {
	switch k {
	case EdgeData:
		return 5
	case EdgeQueue:
		return 4
	case EdgeUnit:
		return 3
	case EdgeStandby:
		return 2
	case EdgeProgram:
		return 1
	}
	return 0
}

// issue folds one Issue event into the graph.
func (b *critBuilder) issue(e Event) {
	s := int(e.Slot)
	if s < 0 || s >= b.slots {
		return
	}
	id := int32(len(b.nodes))
	n := critNode{
		pc:       e.PC,
		slot:     e.Slot,
		cls:      e.Ins.Op.Unit(),
		issueLat: uint8(e.Ins.Op.IssueLatency()),
		issue:    e.Cycle,
		ready:    e.Cycle + 1, // decode-executed default; Select overrides
		parent:   -1,
		edge:     EdgeNone,
	}
	if _, ok := b.insName[e.PC]; !ok {
		b.insName[e.PC] = e.Ins.String()
	}
	// Program order: in-order decode within the slot.
	if p := b.prev[s]; p >= 0 {
		n.consider(p, b.nodes[p].issue, EdgeProgram)
	}
	// Data: last writer of each source register in the slot's frame, or a
	// queue pop when the register is queue-mapped. Queue-mapped sources
	// read the ring link, not the register file.
	b.srcs = e.Ins.Sources(b.srcs[:0])
	frame := b.frame[s]
	for _, r := range b.srcs {
		if !r.Valid() {
			continue
		}
		if r == b.qin[s] || r == b.qinf[s] {
			fp := r == b.qinf[s]
			key := s<<1 | boolBit(fp)
			if q := b.qfifo[key]; len(q) > 0 {
				p := q[0]
				b.qfifo[key] = q[1:]
				n.consider(p, b.nodes[p].ready, EdgeQueue)
			}
			continue
		}
		if p, ok := b.writers[regKey(frame, r)]; ok {
			n.consider(p, b.nodes[p].ready, EdgeData)
		}
	}
	// Standby occupancy: the previous same-class instruction from this slot
	// must leave the standby station (be selected) before this one can
	// occupy it. Only instructions that use a functional unit pass through
	// standby.
	if n.cls != isa.UnitNone {
		if p := b.lastClass[s][n.cls]; p >= 0 {
			rel := b.nodes[p].issue
			if b.nodes[p].selected {
				rel = b.nodes[p].selectC
			}
			n.consider(p, rel, EdgeStandby)
		}
		b.lastClass[s][n.cls] = id
	}
	// WAW: writing a register the frame already has in flight serializes
	// behind the earlier writer's completion (scoreboard write interlock).
	if d := e.Ins.Dest(); d.Valid() {
		if d == b.qout[s] || d == b.qoutf[s] {
			// Queue write: reserve a producer entry for the ring successor,
			// FIFO like the hardware's reserve-at-decode.
			fp := d == b.qoutf[s]
			key := ((s+1)%b.slots)<<1 | boolBit(fp)
			b.qfifo[key] = append(b.qfifo[key], id)
		} else {
			if p, ok := b.writers[regKey(frame, d)]; ok {
				n.consider(p, b.nodes[p].ready, EdgeData)
			}
			b.writers[regKey(frame, d)] = id
		}
	}
	// Queue mapping instructions take effect at issue.
	switch e.Ins.Op {
	case isa.QEN:
		b.qin[s], b.qout[s] = e.Ins.Rs1, e.Ins.Rs2
	case isa.QENF:
		b.qinf[s], b.qoutf[s] = e.Ins.Rs1, e.Ins.Rs2
	case isa.QDIS:
		b.qin[s], b.qout[s] = isa.NoReg, isa.NoReg
		b.qinf[s], b.qoutf[s] = isa.NoReg, isa.NoReg
	}
	b.nodes = append(b.nodes, n)
	b.prev[s] = id
	if n.cls != isa.UnitNone {
		b.pending[s] = append(b.pending[s], id)
	}
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// selectEvent folds one Select event: stamp timing and offer the
// functional-unit occupancy edge.
func (b *critBuilder) selectEvent(e Event, ord int) {
	s := int(e.Slot)
	if s < 0 || s >= b.slots {
		return
	}
	q := b.pending[s]
	for i, id := range q {
		if b.nodes[id].pc == e.PC {
			n := &b.nodes[id]
			n.selected = true
			n.selectC = e.Cycle
			if e.ReadyAt > e.Cycle {
				n.ready = e.ReadyAt
			} else {
				n.ready = e.Cycle + 1
			}
			if ord >= 0 {
				if p, ok := b.unitLast[ord]; ok && p != id {
					// The unit frees one cycle after its occupant's last
					// busy cycle: select + issue latency.
					free := b.nodes[p].selectC + uint64(issueLatOf(b.nodes[p]))
					n.consider(p, free, EdgeUnit)
				}
				b.unitLast[ord] = id
			}
			b.pending[s] = append(q[:i], q[i+1:]...)
			return
		}
	}
}

// issueLatOf returns the node's functional-unit occupancy in cycles.
func issueLatOf(n critNode) int {
	if n.issueLat > 0 {
		return int(n.issueLat)
	}
	return 1
}

// threadEnd resets the slot's per-thread decode state. A kill also clears
// the queue ring, like core.kill.
func (b *critBuilder) threadEnd(e Event) {
	s := int(e.Slot)
	if s < 0 || s >= b.slots {
		return
	}
	b.pending[s] = b.pending[s][:0]
	for c := range b.lastClass[s] {
		b.lastClass[s][c] = -1
	}
	b.qin[s], b.qout[s] = isa.NoReg, isa.NoReg
	b.qinf[s], b.qoutf[s] = isa.NoReg, isa.NoReg
	if e.Killed {
		for k := range b.qfifo {
			delete(b.qfifo, k)
		}
	}
}

// CritPath reconstructs the dynamic dependence graph from the event ring
// and extracts the critical path. It refuses to run on a truncated window:
// with dropped events the graph would silently miss edges and the "path"
// would be fiction.
func (c *Collector) CritPath() (CritPath, error) {
	c.mu.Lock()
	events := c.eventsLocked()
	dropped := c.dropped
	slots := c.slots
	cycles := c.cyclesLocked()
	c.mu.Unlock()

	if dropped > 0 {
		return CritPath{}, fmt.Errorf("obs: critical-path analysis refused: the event ring dropped %d events (raise Options.RingCapacity beyond %d)", dropped, len(events))
	}
	b := newCritBuilder(slots)
	for _, e := range events {
		switch e.Kind {
		case KindIssue:
			b.issue(e)
		case KindSelect:
			b.selectEvent(e, c.ordinal(e.Unit, int(e.UnitIndex)))
		case KindBind:
			if s := int(e.Slot); s >= 0 && s < slots {
				b.frame[s] = int(e.Frame)
			}
		case KindThreadEnd:
			b.threadEnd(e)
		}
	}
	cp := CritPath{Cycles: cycles, GraphNodes: len(b.nodes)}
	if len(b.nodes) == 0 {
		return cp, nil
	}
	// The path ends at the last-completing instruction.
	end := 0
	for i, n := range b.nodes {
		if n.ready > b.nodes[end].ready {
			end = i
		}
	}
	cp.Breakdown.Unit = map[string]uint64{}
	var path []int32
	for id := int32(end); id >= 0; id = b.nodes[id].parent {
		path = append(path, id)
	}
	// Reverse to execution order and decompose each node's charge.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	perPC := map[int64]*CritPC{}
	// The path's charges partition [root issue, end ready] chronologically.
	// Each node's window runs from a cursor to the release point of the edge
	// into its successor (its own ready for the end node) and splits into
	//   decode wait  [cursor, issue]      → the binding in-edge's bucket
	//   grant wait   [issue, select]      → Unit[class] (arbitration)
	//   tail         [select, release]    → Unit[class] when the successor
	//                waited on this node's unit occupancy, else exec
	// so a saturated unit chain — where each link's release is the previous
	// occupant's select + issue latency — attributes its whole span to the
	// unit, which is exactly the what-if "+1 <unit>" input. Clamping to the
	// cursor keeps the charges an exact partition of the path's wall clock.
	cursor := b.nodes[path[0]].issue
	for idx, id := range path {
		n := b.nodes[id]
		target := n.ready
		outEdge := EdgeNone
		if idx+1 < len(path) {
			next := b.nodes[path[idx+1]]
			target = next.parentRelease
			outEdge = next.edge
		}
		var exec, grant, front, occupy uint64
		if target > cursor {
			issueP := n.issue
			if issueP < cursor {
				issueP = cursor
			} else if issueP > target {
				issueP = target
			}
			front = issueP - cursor
			selP := issueP
			if n.selected {
				selP = n.selectC
				if selP < issueP {
					selP = issueP
				} else if selP > target {
					selP = target
				}
			}
			grant = selP - issueP
			if outEdge == EdgeUnit {
				occupy = target - selP
			} else {
				exec = target - selP
			}
			cursor = target
		}
		charge := exec + grant + front + occupy
		cp.PathCycles += charge
		cp.Breakdown.Exec += exec
		if grant+occupy > 0 {
			cp.Breakdown.Unit[n.cls.String()] += grant + occupy
		}
		switch n.edge {
		case EdgeData:
			cp.Breakdown.Data += front
		case EdgeQueue:
			cp.Breakdown.Queue += front
		case EdgeStandby:
			cp.Breakdown.Standby += front
		case EdgeUnit:
			cp.Breakdown.Unit[n.cls.String()] += front
		default:
			cp.Breakdown.Frontend += front
		}
		st := perPC[n.pc]
		if st == nil {
			st = &CritPC{PC: n.pc, Ins: b.insName[n.pc]}
			perPC[n.pc] = st
		}
		st.Count++
		st.Cycles += charge
		step := CritStep{
			Slot: int(n.slot), PC: n.pc, Ins: b.insName[n.pc],
			Issue: n.issue, Ready: n.ready, Edge: n.edge.String(), Cycles: charge,
		}
		if n.selected {
			step.Select = n.selectC
		}
		cp.Steps = append(cp.Steps, step)
	}
	cp.PathLen = len(path)
	if cycles > 0 {
		cp.Coverage = float64(cp.PathCycles) / float64(cycles)
	}
	for _, st := range perPC {
		cp.PCs = append(cp.PCs, *st)
	}
	sort.Slice(cp.PCs, func(i, j int) bool {
		if cp.PCs[i].Cycles != cp.PCs[j].Cycles {
			return cp.PCs[i].Cycles > cp.PCs[j].Cycles
		}
		return cp.PCs[i].PC < cp.PCs[j].PC
	})
	return cp, nil
}

// Annotate fills source lines from the assembled program (optional).
func (cp *CritPath) Annotate(prog *asm.Program) {
	if prog == nil {
		return
	}
	for i := range cp.PCs {
		cp.PCs[i].Line = prog.Line(int(cp.PCs[i].PC))
	}
}

// WriteJSON writes the analysis as one JSON document.
func (cp CritPath) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cp)
}

// WriteText renders a human-readable report: the breakdown, then the
// heaviest static instructions on the path.
func (cp CritPath) WriteText(w io.Writer, prog *asm.Program) error {
	cp.Annotate(prog)
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("critical path: %d of %d cycles (%.1f%%), %d of %d dynamic instructions\n",
		cp.PathCycles, cp.Cycles, 100*cp.Coverage, cp.PathLen, cp.GraphNodes)
	bd := cp.Breakdown
	pctOf := func(v uint64) float64 {
		if t := bd.total(); t > 0 {
			return 100 * float64(v) / float64(t)
		}
		return 0
	}
	p("  exec %d (%.1f%%)  frontend %d (%.1f%%)  data %d (%.1f%%)  queue %d (%.1f%%)  standby %d (%.1f%%)\n",
		bd.Exec, pctOf(bd.Exec), bd.Frontend, pctOf(bd.Frontend), bd.Data, pctOf(bd.Data),
		bd.Queue, pctOf(bd.Queue), bd.Standby, pctOf(bd.Standby))
	unitNames := make([]string, 0, len(bd.Unit))
	for name := range bd.Unit {
		unitNames = append(unitNames, name)
	}
	sort.Strings(unitNames)
	for _, name := range unitNames {
		p("  unit %-10s %d (%.1f%%)\n", name, bd.Unit[name], pctOf(bd.Unit[name]))
	}
	limit := len(cp.PCs)
	if limit > 20 {
		limit = 20
	}
	if limit > 0 {
		p("hottest path instructions:\n")
	}
	for _, st := range cp.PCs[:limit] {
		loc := ""
		if st.Line > 0 {
			loc = fmt.Sprintf(" (line %d)", st.Line)
		}
		p("  pc %4d ×%-5d %6d cycles  %s%s\n", st.PC, st.Count, st.Cycles, st.Ins, loc)
	}
	return err
}
