// Package obs is the simulator's observability layer: it turns the
// microarchitectural event stream of core.Observer into artifacts a
// systems engineer can actually look at.
//
//   - Collector records events into a bounded ring buffer and aggregates
//     a per-PC hotspot profile plus per-interval time-series metrics, all
//     behind one mutex so a live HTTP server can read while a run writes.
//   - WriteChromeTrace exports the ring as Chrome Trace Event JSON — one
//     track group per thread slot and per functional unit — loadable
//     directly in ui.perfetto.dev or chrome://tracing.
//   - Profile/WriteAnnotated render a perf-annotate-style disassembly
//     report attributing issues, busy cycles and stalls to static
//     instructions via the assembler's source-line map.
//   - WritePrometheus/WriteMetricsJSON expose totals and the interval
//     time series in Prometheus text format and JSON.
//   - Handler serves the whole surface (plus net/http/pprof) over HTTP
//     while a long simulation executes.
//
// The paper's entire evaluation (§3) is built on unit utilization
// U = N·L/T and stall attribution; this package exposes the same
// quantities as time series instead of end-of-run aggregates. See
// docs/OBSERVABILITY.md for the event model and format references.
package obs

import (
	"fmt"
	"math/bits"
	"sync"

	"hirata/internal/core"
	"hirata/internal/isa"
)

// Kind enumerates the collected event kinds, mirroring core.Observer.
type Kind uint8

// Event kinds.
const (
	KindIssue Kind = iota
	KindSelect
	KindComplete
	KindStall
	KindRedirect
	KindBind
	KindTrap
	KindRotate
	KindThreadEnd
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case KindIssue:
		return "issue"
	case KindSelect:
		return "select"
	case KindComplete:
		return "complete"
	case KindStall:
		return "stall"
	case KindRedirect:
		return "redirect"
	case KindBind:
		return "bind"
	case KindTrap:
		return "trap"
	case KindRotate:
		return "rotate"
	case KindThreadEnd:
		return "thread-end"
	}
	return "unknown"
}

// Event is one recorded pipeline event. Which fields are meaningful
// depends on Kind; Cycle and Slot are always set (Slot is -1 for the
// machine-global rotate event).
type Event struct {
	Kind      Kind
	Unit      isa.UnitClass    // Select/Complete
	UnitIndex uint8            // Select/Complete
	Reason    core.StallReason // Stall
	Killed    bool             // ThreadEnd
	Slot      int16
	Frame     int16 // Bind/Trap/ThreadEnd
	Cycle     uint64
	PC        int64  // Issue/Select/Complete/Stall/Redirect (-1 = none)
	ReadyAt   uint64 // Select: cycle the result becomes visible
	Aux       int64  // Bind: thread id; Trap: remote address; Rotate: new head slot
	Ins       isa.Instruction
}

// Options configure a Collector.
type Options struct {
	// RingCapacity bounds the event ring buffer; older events are dropped
	// once it fills (Dropped counts them). Default 1<<20 events.
	RingCapacity int
	// MetricsInterval closes one metrics Sample every N cycles. 0 disables
	// interval sampling (totals are always kept).
	MetricsInterval int
	// KeepStallEvents records raw stall events in the ring. Stalls are
	// always aggregated into the profile and interval metrics; the raw
	// events dominate ring space on stall-heavy runs, so by default only
	// the aggregates keep them.
	KeepStallEvents bool
}

// UnitInfo describes one functional-unit instance and its stable ordinal
// (the tid of its timeline track and the index of its metrics series).
type UnitInfo struct {
	Class isa.UnitClass
	Index int
	Name  string // e.g. "IntALU[0]"
}

// Totals aggregates a whole run.
type Totals struct {
	Issues     uint64
	Selects    uint64
	Completes  uint64
	StallCount uint64     // stall cycles summed over slots
	UnitBusy   []uint64   // by unit ordinal: Σ issue latency
	UnitInvocs []uint64   // by unit ordinal
	SlotIssued []uint64   // by slot
	SlotStalls [][]uint64 // [slot][reason]
}

// PCStat attributes activity to one static instruction.
type PCStat struct {
	PC            int64
	Ins           isa.Instruction
	Issues        uint64
	Selects       uint64
	BusyCycles    uint64 // Σ issue latency of selections
	LatencyCycles uint64 // Σ (readyAt − select cycle): result latency incl. misses
	StallCycles   uint64 // decode stall cycles charged while this pc headed the window
	Completes     uint64
}

// Sample is one closed metrics interval [StartCycle, EndCycle).
type Sample struct {
	StartCycle uint64   `json:"start_cycle"`
	EndCycle   uint64   `json:"end_cycle"`
	Issued     uint64   `json:"issued"`
	IPC        float64  `json:"ipc"`
	UnitBusy   []uint64 `json:"unit_busy"`   // by unit ordinal
	Stalls     []uint64 `json:"stalls"`      // by core.StallReason
	SlotsBound int      `json:"slots_bound"` // at interval close
}

// Collector is a core.Observer that records and aggregates a run. Attach
// with Processor.Observe (it composes with other observers), then export
// with WriteChromeTrace, Profile, WritePrometheus, or serve live via
// Handler. All methods are safe for concurrent use.
type Collector struct {
	mu    sync.Mutex
	opt   Options
	slots int
	units []UnitInfo
	// unitOrd maps (class, index) to the ordinal in units.
	unitOrd [int(isa.UnitLoadStore) + 1][]int

	ring    []Event
	head    int // next write position once the ring is full
	full    bool
	dropped uint64

	totals    Totals
	profile   map[int64]*PCStat
	lastCycle uint64
	bound     uint64 // bitset of bound slots (ThreadSlots ≤ 64)

	interval  Sample // accumulating current interval (when MetricsInterval > 0)
	samples   []Sample
	finalized bool
	final     core.Result

	// acct is the per-slot cycle-accounting state behind CPIStack
	// (account.go): which cycles issued at least one instruction, and how
	// long each slot sat unbound (and why).
	acct []slotAccount
}

// slotAccount tracks one slot's CPI-stack inputs incrementally, so the
// accounting costs O(1) per event instead of a ring replay (the ring may
// have dropped events; the accounting never does).
type slotAccount struct {
	issueCycles uint64 // distinct cycles with ≥1 issue from this slot
	lastIssue   uint64
	haveIssue   bool
	lastStall   uint64
	haveStall   bool
	bound       bool
	gapStart    uint64 // cycle the slot became unbound (or 0 at reset)
	gapRemote   bool   // gap opened by a data-absence trap, not a thread end
	remoteWait  uint64 // closed-gap cycles waiting on a remote access
	idle        uint64 // closed-gap cycles with no thread to run
}

// closeGap charges an open unbound gap ending at cycle.
func (a *slotAccount) closeGap(cycle uint64) {
	if a.bound || cycle <= a.gapStart {
		return
	}
	if a.gapRemote {
		a.remoteWait += cycle - a.gapStart
	} else {
		a.idle += cycle - a.gapStart
	}
}

// unbind opens a gap at cycle. A HALT issues (and a kill can land after a
// stall) on the unbind cycle itself; that cycle is already accounted, so
// the gap starts one later. A data-absence trap consumes its cycle with no
// issue or stall event, so there the gap covers the trap cycle too.
func (a *slotAccount) unbind(cycle uint64, remote bool) {
	a.bound = false
	a.gapStart = cycle
	if (a.haveIssue && a.lastIssue == cycle) || (a.haveStall && a.lastStall == cycle) {
		a.gapStart = cycle + 1
	}
	a.gapRemote = remote
}

// NewCollector builds a collector for a machine of the given shape. Only
// ThreadSlots and the unit census (LoadStoreUnits + ExtraUnits) are read
// from cfg (they size the slot and functional-unit track sets); zero values
// default like core does.
func NewCollector(cfg core.Config, opt Options) *Collector {
	if opt.RingCapacity <= 0 {
		opt.RingCapacity = 1 << 20
	}
	slots := cfg.ThreadSlots
	if slots <= 0 {
		slots = 1
	}
	c := &Collector{opt: opt, slots: slots, profile: make(map[int64]*PCStat)}
	for cls := isa.UnitClass(1); int(cls) <= isa.NumUnitClasses; cls++ {
		n := cfg.UnitCount(cls)
		for i := 0; i < n; i++ {
			c.unitOrd[cls] = append(c.unitOrd[cls], len(c.units))
			c.units = append(c.units, UnitInfo{Class: cls, Index: i, Name: unitName(cls, i)})
		}
	}
	c.totals.UnitBusy = make([]uint64, len(c.units))
	c.totals.UnitInvocs = make([]uint64, len(c.units))
	c.totals.SlotIssued = make([]uint64, slots)
	c.totals.SlotStalls = make([][]uint64, slots)
	for i := range c.totals.SlotStalls {
		c.totals.SlotStalls[i] = make([]uint64, core.NumStallReasons)
	}
	c.acct = make([]slotAccount, slots)
	c.interval = c.newSample(0)
	return c
}

func unitName(cls isa.UnitClass, idx int) string {
	return fmt.Sprintf("%s[%d]", cls, idx)
}

// Units lists the functional-unit instances in ordinal order.
func (c *Collector) Units() []UnitInfo { return c.units }

// Slots returns the thread-slot count the collector was built for.
func (c *Collector) Slots() int { return c.slots }

// ordinal maps a (class, index) pair to the unit's stable ordinal.
func (c *Collector) ordinal(cls isa.UnitClass, idx int) int {
	if int(cls) >= len(c.unitOrd) || idx < 0 || idx >= len(c.unitOrd[cls]) {
		return -1
	}
	return c.unitOrd[cls][idx]
}

func (c *Collector) newSample(start uint64) Sample {
	return Sample{
		StartCycle: start,
		UnitBusy:   make([]uint64, len(c.units)),
		Stalls:     make([]uint64, core.NumStallReasons),
	}
}

// advance rolls the interval sampler forward to cycle, closing any
// intervals the event stream has passed. Call with c.mu held.
func (c *Collector) advance(cycle uint64) {
	if cycle > c.lastCycle {
		c.lastCycle = cycle
	}
	n := uint64(c.opt.MetricsInterval)
	if n == 0 {
		return
	}
	for cycle >= c.interval.StartCycle+n {
		c.closeInterval(c.interval.StartCycle + n)
	}
}

// closeInterval finalises the accumulating sample at end. Call with c.mu
// held; end must be > the sample's start.
func (c *Collector) closeInterval(end uint64) {
	s := c.interval
	s.EndCycle = end
	s.IPC = float64(s.Issued) / float64(end-s.StartCycle)
	s.SlotsBound = bits.OnesCount64(c.bound)
	c.samples = append(c.samples, s)
	c.interval = c.newSample(end)
}

// push records an event in the ring buffer. Call with c.mu held.
func (c *Collector) push(e Event) {
	if !c.full && len(c.ring) < c.opt.RingCapacity {
		c.ring = append(c.ring, e)
		if len(c.ring) == c.opt.RingCapacity {
			c.full = true
		}
		return
	}
	c.full = true
	c.ring[c.head] = e
	c.head = (c.head + 1) % len(c.ring)
	c.dropped++
}

// pcStat returns (creating if needed) the profile row for pc. Call with
// c.mu held.
func (c *Collector) pcStat(pc int64) *PCStat {
	st := c.profile[pc]
	if st == nil {
		st = &PCStat{PC: pc}
		c.profile[pc] = st
	}
	return st
}

// Issue implements core.Observer.
func (c *Collector) Issue(cycle uint64, slot int, pc int64, ins isa.Instruction) {
	c.mu.Lock()
	c.advance(cycle)
	c.totals.Issues++
	if slot >= 0 && slot < len(c.totals.SlotIssued) {
		c.totals.SlotIssued[slot]++
		a := &c.acct[slot]
		if !a.haveIssue || a.lastIssue != cycle {
			a.issueCycles++
			a.lastIssue = cycle
			a.haveIssue = true
		}
	}
	c.interval.Issued++
	st := c.pcStat(pc)
	st.Ins = ins
	st.Issues++
	c.push(Event{Kind: KindIssue, Cycle: cycle, Slot: int16(slot), PC: pc, Ins: ins})
	c.mu.Unlock()
}

// Select implements core.Observer.
func (c *Collector) Select(cycle uint64, slot int, pc int64, ins isa.Instruction, unit isa.UnitClass, unitIndex int, readyAt uint64) {
	c.mu.Lock()
	c.advance(cycle)
	c.totals.Selects++
	lat := uint64(ins.Op.IssueLatency())
	if ord := c.ordinal(unit, unitIndex); ord >= 0 {
		c.totals.UnitBusy[ord] += lat
		c.totals.UnitInvocs[ord]++
		c.interval.UnitBusy[ord] += lat
	}
	st := c.pcStat(pc)
	st.Ins = ins
	st.Selects++
	st.BusyCycles += lat
	if readyAt > cycle {
		st.LatencyCycles += readyAt - cycle
	}
	c.push(Event{Kind: KindSelect, Cycle: cycle, Slot: int16(slot), PC: pc, Ins: ins,
		Unit: unit, UnitIndex: uint8(unitIndex), ReadyAt: readyAt})
	c.mu.Unlock()
}

// Complete implements core.Observer.
func (c *Collector) Complete(cycle uint64, slot int, pc int64, ins isa.Instruction, unit isa.UnitClass, unitIndex int) {
	c.mu.Lock()
	c.advance(cycle)
	c.totals.Completes++
	c.pcStat(pc).Completes++
	c.push(Event{Kind: KindComplete, Cycle: cycle, Slot: int16(slot), PC: pc, Ins: ins,
		Unit: unit, UnitIndex: uint8(unitIndex)})
	c.mu.Unlock()
}

// Stall implements core.Observer.
func (c *Collector) Stall(cycle uint64, slot int, pc int64, reason core.StallReason) {
	c.mu.Lock()
	c.advance(cycle)
	c.totals.StallCount++
	if slot >= 0 && slot < len(c.totals.SlotStalls) && int(reason) < len(c.totals.SlotStalls[slot]) {
		c.totals.SlotStalls[slot][reason]++
		a := &c.acct[slot]
		a.lastStall = cycle
		a.haveStall = true
	}
	if int(reason) < len(c.interval.Stalls) {
		c.interval.Stalls[reason]++
	}
	if pc >= 0 {
		// Attribute the stall to the instruction heading the window.
		c.pcStat(pc).StallCycles++
	}
	if c.opt.KeepStallEvents {
		c.push(Event{Kind: KindStall, Cycle: cycle, Slot: int16(slot), PC: pc, Reason: reason})
	}
	c.mu.Unlock()
}

// Redirect implements core.Observer.
func (c *Collector) Redirect(cycle uint64, slot int, pc int64) {
	c.mu.Lock()
	c.advance(cycle)
	c.push(Event{Kind: KindRedirect, Cycle: cycle, Slot: int16(slot), PC: pc})
	c.mu.Unlock()
}

// Bind implements core.Observer.
func (c *Collector) Bind(cycle uint64, slot, frame int, tid int64) {
	c.mu.Lock()
	c.advance(cycle)
	if slot >= 0 && slot < 64 {
		c.bound |= 1 << uint(slot)
	}
	if slot >= 0 && slot < len(c.acct) {
		a := &c.acct[slot]
		a.closeGap(cycle)
		a.bound = true
	}
	c.push(Event{Kind: KindBind, Cycle: cycle, Slot: int16(slot), Frame: int16(frame), Aux: tid, PC: -1})
	c.mu.Unlock()
}

// Trap implements core.Observer.
func (c *Collector) Trap(cycle uint64, slot, frame int, addr int64) {
	c.mu.Lock()
	c.advance(cycle)
	if slot >= 0 && slot < 64 {
		c.bound &^= 1 << uint(slot)
	}
	if slot >= 0 && slot < len(c.acct) && c.acct[slot].bound {
		c.acct[slot].unbind(cycle, true)
	}
	c.push(Event{Kind: KindTrap, Cycle: cycle, Slot: int16(slot), Frame: int16(frame), Aux: addr, PC: -1})
	c.mu.Unlock()
}

// Rotate implements core.Observer.
func (c *Collector) Rotate(cycle uint64, prio []int) {
	head := -1
	if len(prio) > 0 {
		head = prio[0]
	}
	c.mu.Lock()
	c.advance(cycle)
	c.push(Event{Kind: KindRotate, Cycle: cycle, Slot: -1, Aux: int64(head), PC: -1})
	c.mu.Unlock()
}

// ThreadEnd implements core.Observer.
func (c *Collector) ThreadEnd(cycle uint64, slot, frame int, killed bool) {
	c.mu.Lock()
	c.advance(cycle)
	if slot >= 0 && slot < 64 {
		c.bound &^= 1 << uint(slot)
	}
	if slot >= 0 && slot < len(c.acct) && c.acct[slot].bound {
		c.acct[slot].unbind(cycle, false)
	}
	c.push(Event{Kind: KindThreadEnd, Cycle: cycle, Slot: int16(slot), Frame: int16(frame), Killed: killed, PC: -1})
	c.mu.Unlock()
}

// Finalize records the run's Result and closes the trailing metrics
// interval at the final cycle count. Optional, but makes /metrics and the
// profile report exact instead of last-event-bounded.
func (c *Collector) Finalize(res core.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.finalized = true
	c.final = res
	if res.Cycles > c.lastCycle {
		c.lastCycle = res.Cycles
	}
	if c.opt.MetricsInterval > 0 && c.interval.Issued > 0 && res.Cycles > c.interval.StartCycle {
		c.closeInterval(res.Cycles)
	}
}

// Cycles returns the run length: the Finalize result's cycle count, or the
// last observed event cycle + 1 while the run is still in flight.
func (c *Collector) Cycles() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cyclesLocked()
}

func (c *Collector) cyclesLocked() uint64 {
	if c.finalized {
		return c.final.Cycles
	}
	if c.totals.Issues == 0 && c.lastCycle == 0 {
		return 0
	}
	return c.lastCycle + 1
}

// Dropped reports how many events fell out of the ring buffer.
func (c *Collector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Events returns a chronological copy of the ring buffer.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.eventsLocked()
}

func (c *Collector) eventsLocked() []Event {
	out := make([]Event, 0, len(c.ring))
	if c.full {
		out = append(out, c.ring[c.head:]...)
		out = append(out, c.ring[:c.head]...)
	} else {
		out = append(out, c.ring...)
	}
	return out
}

// Samples returns a copy of the closed metrics intervals.
func (c *Collector) Samples() []Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Sample, len(c.samples))
	copy(out, c.samples)
	return out
}

// TotalsSnapshot returns a deep copy of the run totals.
func (c *Collector) TotalsSnapshot() Totals {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalsLocked()
}

// totalsLocked deep-copies the run totals. The slices must be copied, not
// aliased: a caller that unlocks before rendering would otherwise race
// with a live run's observer callbacks.
func (c *Collector) totalsLocked() Totals {
	t := c.totals
	t.UnitBusy = append([]uint64(nil), c.totals.UnitBusy...)
	t.UnitInvocs = append([]uint64(nil), c.totals.UnitInvocs...)
	t.SlotIssued = append([]uint64(nil), c.totals.SlotIssued...)
	t.SlotStalls = make([][]uint64, len(c.totals.SlotStalls))
	for i, row := range c.totals.SlotStalls {
		t.SlotStalls[i] = append([]uint64(nil), row...)
	}
	return t
}
