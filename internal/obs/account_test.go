package obs

// Cycle-accounting invariants: the CPI stack must account for every
// (slot, cycle) of the run exactly — buckets per slot sum to the cycle
// count — and the exports (folded stacks, JSON, table, Prometheus) must
// agree with each other and never mention the StallNone pseudo-reason.

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hirata/internal/core"
)

func TestCPIStackSumsToRunLength(t *testing.T) {
	c, res, _ := runFib(t, Options{})
	st := c.CPIStack()
	if st.Cycles != res.Cycles {
		t.Fatalf("CPIStack.Cycles = %d, Result.Cycles = %d", st.Cycles, res.Cycles)
	}
	if len(st.Slots) != 2 {
		t.Fatalf("expected 2 slots, got %d", len(st.Slots))
	}
	for _, s := range st.Slots {
		if got := s.Total(); got != st.Cycles {
			t.Errorf("slot %d buckets sum to %d, want %d: %+v", s.Slot, got, st.Cycles, s.Cycles)
		}
	}
	m := st.Machine()
	if got, want := m.Total(), st.Cycles*uint64(len(st.Slots)); got != want {
		t.Errorf("machine total = %d, want slots×cycles = %d", got, want)
	}
	// fib runs one thread: slot 0 issues, slot 1 never binds and is idle
	// for the whole run.
	if st.Slots[0].Cycles[CPIIssued] == 0 {
		t.Error("slot 0 has no issued cycles")
	}
	if got := st.Slots[1].Cycles[CPIIdle]; got != st.Cycles {
		t.Errorf("slot 1 idle = %d, want the whole run %d", got, st.Cycles)
	}
	if m.Issued != res.Instructions {
		t.Errorf("machine issued %d instructions, Result says %d", m.Issued, res.Instructions)
	}
}

var foldedLine = regexp.MustCompile(`^slot\d+(;[a-z-]+)+ \d+$`)

func TestCPIFoldedFormat(t *testing.T) {
	c, res, _ := runFib(t, Options{})
	var buf bytes.Buffer
	if err := c.CPIStack().WriteCPIFolded(&buf); err != nil {
		t.Fatal(err)
	}
	var total uint64
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty folded output")
	}
	for _, line := range lines {
		if !foldedLine.MatchString(line) {
			t.Fatalf("folded line %q does not match the collapsed-stack grammar", line)
		}
		n, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if want := res.Cycles * 2; total != want {
		t.Errorf("folded stacks sum to %d, want slots×cycles = %d", total, want)
	}
}

func TestCPIJSONAndTable(t *testing.T) {
	c, _, _ := runFib(t, Options{})
	st := c.CPIStack()
	var buf bytes.Buffer
	if err := st.WriteCPIJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Cycles  uint64              `json:"cycles"`
		Dropped uint64              `json:"events_dropped"`
		Machine map[string]uint64   `json:"machine"`
		Slots   []map[string]uint64 `json:"slots"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Cycles != st.Cycles || len(doc.Slots) != len(st.Slots) {
		t.Errorf("JSON doc (%d cycles, %d slots) disagrees with stack (%d, %d)",
			doc.Cycles, len(doc.Slots), st.Cycles, len(st.Slots))
	}
	for b := CPIBucket(0); b < NumCPIBuckets; b++ {
		if _, ok := doc.Machine[b.String()]; !ok {
			t.Errorf("machine JSON lacks bucket %q", b)
		}
	}
	if _, ok := doc.Machine["none"]; ok {
		t.Error("machine JSON contains a \"none\" bucket")
	}
	var tbl bytes.Buffer
	if err := st.WriteCPITable(&tbl); err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "cycle accounting") || !strings.Contains(out, "issued") {
		t.Errorf("table output missing expected headers:\n%s", out)
	}
	if strings.Contains(out, "none") {
		t.Errorf("table output mentions the StallNone pseudo-bucket:\n%s", out)
	}
}

// The stall-reason → bucket map must cover every real reason exactly once
// and reject StallNone (the satellite fix: exporters iterating
// StallReason(0..NumStallReasons) must skip it).
func TestCPIBucketForStallCoversAllReasons(t *testing.T) {
	seen := map[CPIBucket]core.StallReason{}
	for r := core.StallReason(0); int(r) < core.NumStallReasons; r++ {
		b, ok := cpiBucketForStall(r)
		if r == core.StallNone {
			if ok {
				t.Fatal("StallNone mapped to a CPI bucket")
			}
			continue
		}
		if !ok {
			t.Errorf("stall reason %v has no CPI bucket", r)
			continue
		}
		if prev, dup := seen[b]; dup {
			t.Errorf("bucket %v claimed by both %v and %v", b, prev, r)
		}
		seen[b] = r
	}
}
