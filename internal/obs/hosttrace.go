package obs

import (
	"bufio"
	"io"
)

// TraceWriter is the exported face of the Chrome Trace Event encoder behind
// WriteChromeTrace, for callers that lay out their own tracks — notably
// internal/hostobs, which renders the simulator's *host-side* execution
// (cycle-loop phase slices, sweep-worker timelines) with the same streaming
// byte-stable machinery the simulated-machine traces use. One trace-time
// microsecond is whatever the caller says it is; hostobs uses host
// microseconds where the pipeline traces use simulated cycles.
type TraceWriter struct {
	bw  *bufio.Writer
	enc *traceEncoder
}

// NewTraceWriter starts a Chrome Trace Event JSON document on w. Call Close
// to finish it; the document is invalid until then.
func NewTraceWriter(w io.Writer) *TraceWriter {
	bw := bufio.NewWriter(w)
	enc := &traceEncoder{w: bw}
	enc.begin()
	return &TraceWriter{bw: bw, enc: enc}
}

// ProcessName names a pid's track group.
func (t *TraceWriter) ProcessName(pid int, name string) {
	t.enc.meta("process_name", pid, 0, name)
}

// ThreadName names one tid track within a pid.
func (t *TraceWriter) ThreadName(pid, tid int, name string) {
	t.enc.meta("thread_name", pid, tid, name)
}

// Slice emits a complete ("X") slice. A zero duration is widened to 1 so
// the slice stays visible.
func (t *TraceWriter) Slice(pid, tid int, name, cat string, ts, dur uint64, args map[string]any) {
	if dur == 0 {
		dur = 1
	}
	t.enc.event(traceEvent{Name: name, Cat: cat, Ph: "X", TS: ts, Dur: dur, Pid: pid, Tid: tid, Args: args})
}

// Instant emits an instant ("i") event. Scope is "t" (thread), "p"
// (process) or "g" (global).
func (t *TraceWriter) Instant(pid, tid int, name string, ts uint64, scope string, args map[string]any) {
	t.enc.event(traceEvent{Name: name, Ph: "i", TS: ts, Pid: pid, Tid: tid, S: scope, Args: args})
}

// Counter emits a counter ("C") sample; args maps series name to value.
func (t *TraceWriter) Counter(pid, tid int, name string, ts uint64, args map[string]any) {
	t.enc.event(traceEvent{Name: name, Ph: "C", TS: ts, Pid: pid, Tid: tid, Args: args})
}

// Close terminates the traceEvents array and flushes. The writer must not
// be used afterwards.
func (t *TraceWriter) Close() error {
	t.enc.end()
	if t.enc.err != nil {
		return t.enc.err
	}
	return t.bw.Flush()
}
