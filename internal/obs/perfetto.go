package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome Trace Event export. The format is the JSON "trace event" schema
// consumed by ui.perfetto.dev and chrome://tracing: an object with a
// traceEvents array whose members carry ph (phase), ts (microseconds),
// pid, tid and phase-specific fields. One simulated cycle maps to one
// microsecond of trace time.
//
// Track layout:
//
//	pid 1          "machine"           — rotate instants + IPC / slots-bound
//	                                     counters from the interval sampler
//	pid 2          "functional units"  — tid = unit ordinal; complete ("X")
//	                                     slices span the issue-latency
//	                                     occupancy of each selection
//	pid 100+slot   "slot N"            — instruction lifetime slices from
//	                                     issue to result-ready, lane-packed
//	                                     across tids so overlapping
//	                                     lifetimes never cross on a track;
//	                                     redirect/trap/bind/end instants
//
// Within one slot, instruction lifetimes overlap (that is the point of
// standby stations), and crossing "X" slices on a single track render
// badly; assignLanes packs them into the minimal set of non-overlapping
// lanes instead.
const (
	machinePID    = 1
	unitsPID      = 2
	slotPIDBase   = 100
	machineTID    = 0
	instrumentCat = "pipeline"
)

// traceEvent is one Chrome Trace Event. Field order is fixed, so the
// output is byte-stable for golden tests.
type traceEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// slotSpan is one instruction lifetime on a slot track.
type slotSpan struct {
	start, end uint64
	name       string
	pc         int64
	unit       string // empty until selected
	slotID     int
	lane       int
}

// WriteChromeTrace exports the collector's ring buffer as Chrome Trace
// Event JSON, viewable directly in ui.perfetto.dev. Dropped ring events
// truncate the timeline's beginning, never its structure.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	c.mu.Lock()
	events := c.eventsLocked()
	samples := make([]Sample, len(c.samples))
	copy(samples, c.samples)
	units := c.units
	slots := c.slots
	dropped := c.dropped
	c.mu.Unlock()

	bw := bufio.NewWriter(w)
	enc := &traceEncoder{w: bw}
	enc.begin()

	// Track-naming metadata.
	enc.meta("process_name", machinePID, machineTID, "machine")
	enc.meta("thread_name", machinePID, machineTID, "scheduler")
	enc.meta("process_name", unitsPID, 0, "functional units")
	for ord, u := range units {
		enc.meta("thread_name", unitsPID, ord, u.Name)
	}
	spans, instants := buildSlotSpans(events)
	lanes := assignLanes(spans, slots)
	for s := 0; s < slots; s++ {
		enc.meta("process_name", slotPIDBase+s, 0, fmt.Sprintf("slot %d", s))
		n := lanes[s]
		if n == 0 {
			n = 1
		}
		for l := 0; l < n; l++ {
			enc.meta("thread_name", slotPIDBase+s, l, fmt.Sprintf("slot %d issue lane %d", s, l))
		}
	}
	if dropped > 0 {
		enc.event(traceEvent{Name: fmt.Sprintf("ring dropped %d events", dropped), Ph: "i",
			TS: 0, Pid: machinePID, Tid: machineTID, S: "g"})
	}

	// Functional-unit occupancy slices (select → select + issue latency).
	for _, e := range events {
		if e.Kind != KindSelect {
			continue
		}
		ord := c.ordinal(e.Unit, int(e.UnitIndex))
		if ord < 0 {
			continue
		}
		dur := uint64(e.Ins.Op.IssueLatency())
		if dur == 0 {
			dur = 1
		}
		enc.event(traceEvent{Name: e.Ins.String(), Cat: instrumentCat, Ph: "X",
			TS: e.Cycle, Dur: dur, Pid: unitsPID, Tid: ord,
			Args: map[string]any{"pc": e.PC, "slot": e.Slot, "ready_at": e.ReadyAt}})
	}

	// Slot instruction-lifetime slices.
	for _, sp := range spans {
		args := map[string]any{"pc": sp.pc}
		if sp.unit != "" {
			args["unit"] = sp.unit
		}
		dur := sp.end - sp.start
		if dur == 0 {
			dur = 1
		}
		enc.event(traceEvent{Name: sp.name, Cat: instrumentCat, Ph: "X",
			TS: sp.start, Dur: dur, Pid: slotPIDBase + sp.slotID, Tid: sp.lane, Args: args})
	}

	// Instant events: redirects, traps, binds, thread ends, rotations.
	for _, e := range instants {
		enc.event(e)
	}

	// Counters from the interval sampler.
	for _, s := range samples {
		enc.event(traceEvent{Name: "IPC", Ph: "C", TS: s.StartCycle, Pid: machinePID, Tid: machineTID,
			Args: map[string]any{"ipc": s.IPC}})
		enc.event(traceEvent{Name: "slots bound", Ph: "C", TS: s.StartCycle, Pid: machinePID, Tid: machineTID,
			Args: map[string]any{"bound": s.SlotsBound}})
	}

	enc.end()
	if enc.err != nil {
		return enc.err
	}
	return bw.Flush()
}

// buildSlotSpans correlates Issue events with the Select that commits them
// and returns one lifetime span per issued instruction, plus the instant
// events rendered on slot and machine tracks. Decode-executed instructions
// (branches, thread control) never select; their span covers the single
// decode cycle.
func buildSlotSpans(events []Event) ([]slotSpan, []traceEvent) {
	var spans []slotSpan
	var instants []traceEvent
	// pending[slot] holds indexes into spans of issued-but-unselected
	// instructions, FIFO per pc.
	pending := map[int][]int{}
	for _, e := range events {
		switch e.Kind {
		case KindIssue:
			spans = append(spans, slotSpan{
				start: e.Cycle, end: e.Cycle + 1,
				name: e.Ins.String(), pc: e.PC, slotID: int(e.Slot),
			})
			pending[int(e.Slot)] = append(pending[int(e.Slot)], len(spans)-1)
		case KindSelect:
			q := pending[int(e.Slot)]
			for i, idx := range q {
				if spans[idx].pc == e.PC {
					end := e.ReadyAt
					if end <= spans[idx].start {
						end = spans[idx].start + 1
					}
					spans[idx].end = end
					spans[idx].unit = unitName(e.Unit, int(e.UnitIndex))
					pending[int(e.Slot)] = append(q[:i], q[i+1:]...)
					break
				}
			}
		case KindRedirect:
			instants = append(instants, traceEvent{Name: fmt.Sprintf("redirect→%d", e.PC), Ph: "i",
				TS: e.Cycle, Pid: slotPIDBase + int(e.Slot), Tid: 0, S: "t"})
		case KindTrap:
			instants = append(instants, traceEvent{Name: fmt.Sprintf("trap frame=%d addr=%d", e.Frame, e.Aux), Ph: "i",
				TS: e.Cycle, Pid: slotPIDBase + int(e.Slot), Tid: 0, S: "p"})
		case KindBind:
			instants = append(instants, traceEvent{Name: fmt.Sprintf("bind frame=%d tid=%d", e.Frame, e.Aux), Ph: "i",
				TS: e.Cycle, Pid: slotPIDBase + int(e.Slot), Tid: 0, S: "t"})
		case KindThreadEnd:
			how := "halt"
			if e.Killed {
				how = "killed"
			}
			instants = append(instants, traceEvent{Name: fmt.Sprintf("end frame=%d (%s)", e.Frame, how), Ph: "i",
				TS: e.Cycle, Pid: slotPIDBase + int(e.Slot), Tid: 0, S: "t"})
		case KindRotate:
			instants = append(instants, traceEvent{Name: fmt.Sprintf("rotate head=slot%d", e.Aux), Ph: "i",
				TS: e.Cycle, Pid: machinePID, Tid: machineTID, S: "p"})
		case KindStall:
			instants = append(instants, traceEvent{Name: "stall " + e.Reason.String(), Ph: "i",
				TS: e.Cycle, Pid: slotPIDBase + int(e.Slot), Tid: 0, S: "t"})
		}
	}
	return spans, instants
}

// assignLanes packs each slot's spans into the minimal number of
// non-overlapping lanes (greedy interval partitioning; spans arrive sorted
// by start cycle because the ring is chronological). Returns the lane
// count per slot.
func assignLanes(spans []slotSpan, slots int) []int {
	laneEnds := make([][]uint64, slots)
	counts := make([]int, slots)
	for i := range spans {
		s := spans[i].slotID
		if s < 0 || s >= slots {
			continue
		}
		lane := -1
		for l, end := range laneEnds[s] {
			if end <= spans[i].start {
				lane = l
				break
			}
		}
		if lane == -1 {
			laneEnds[s] = append(laneEnds[s], 0)
			lane = len(laneEnds[s]) - 1
		}
		laneEnds[s][lane] = spans[i].end
		spans[i].lane = lane
		if lane+1 > counts[s] {
			counts[s] = lane + 1
		}
	}
	return counts
}

// traceEncoder streams the traceEvents array without buffering the whole
// trace in memory.
type traceEncoder struct {
	w     io.Writer
	first bool
	err   error
}

func (e *traceEncoder) begin() {
	e.first = true
	_, e.err = io.WriteString(e.w, `{"traceEvents":[`)
}

func (e *traceEncoder) event(ev traceEvent) {
	if e.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		e.err = err
		return
	}
	if !e.first {
		if _, e.err = io.WriteString(e.w, ","); e.err != nil {
			return
		}
	}
	e.first = false
	_, e.err = e.w.Write(b)
}

func (e *traceEncoder) meta(name string, pid, tid int, value string) {
	e.event(traceEvent{Name: name, Ph: "M", TS: 0, Pid: pid, Tid: tid,
		Args: map[string]any{"name": value}})
}

func (e *traceEncoder) end() {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, `]}`)
}
