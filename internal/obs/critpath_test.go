package obs

// Critical-path invariants on the fib example: the reconstructed graph
// covers every issued instruction, the path is non-empty and bounded by
// the run length, the breakdown decomposes the path cycles exactly, and
// the analysis refuses to run on a truncated event ring.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCritPathFib(t *testing.T) {
	c, res, prog := runFib(t, Options{})
	cp, err := c.CritPath()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Cycles != res.Cycles {
		t.Errorf("CritPath.Cycles = %d, Result.Cycles = %d", cp.Cycles, res.Cycles)
	}
	if got, want := uint64(cp.GraphNodes), res.Instructions; got != want {
		t.Errorf("graph has %d nodes, run issued %d instructions", got, want)
	}
	if cp.PathCycles == 0 || cp.PathCycles > cp.Cycles {
		t.Errorf("path cycles %d outside (0, %d]", cp.PathCycles, cp.Cycles)
	}
	if cp.PathLen == 0 || cp.PathLen > cp.GraphNodes {
		t.Errorf("path length %d outside (0, %d]", cp.PathLen, cp.GraphNodes)
	}
	if got := cp.Breakdown.total(); got != cp.PathCycles {
		t.Errorf("breakdown sums to %d, path has %d cycles", got, cp.PathCycles)
	}
	var pcSum uint64
	for _, st := range cp.PCs {
		pcSum += st.Cycles
	}
	if pcSum != cp.PathCycles {
		t.Errorf("per-PC attribution sums to %d, path has %d cycles", pcSum, cp.PathCycles)
	}
	if len(cp.Steps) != cp.PathLen {
		t.Errorf("%d steps for a path of %d instructions", len(cp.Steps), cp.PathLen)
	}
	var stepSum uint64
	for i, s := range cp.Steps {
		stepSum += s.Cycles
		if i > 0 && s.Issue < cp.Steps[i-1].Issue {
			t.Errorf("step %d issued at %d, before its predecessor at %d", i, s.Issue, cp.Steps[i-1].Issue)
		}
	}
	if stepSum != cp.PathCycles {
		t.Errorf("step charges sum to %d, path has %d cycles", stepSum, cp.PathCycles)
	}
	// fib is data-dependence bound: the path must charge data cycles.
	if cp.Breakdown.Data == 0 {
		t.Error("fib critical path charges no data-dependence cycles")
	}

	// The renderers must agree with the analysis.
	var jbuf bytes.Buffer
	if err := cp.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		PathCycles uint64 `json:"path_cycles"`
		GraphNodes int    `json:"graph_nodes"`
	}
	if err := json.Unmarshal(jbuf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.PathCycles != cp.PathCycles || doc.GraphNodes != cp.GraphNodes {
		t.Errorf("JSON doc (%d, %d) disagrees with analysis (%d, %d)",
			doc.PathCycles, doc.GraphNodes, cp.PathCycles, cp.GraphNodes)
	}
	var tbuf bytes.Buffer
	if err := cp.WriteText(&tbuf, prog); err != nil {
		t.Fatal(err)
	}
	out := tbuf.String()
	if !strings.Contains(out, "critical path:") || !strings.Contains(out, "line ") {
		t.Errorf("text report missing headers or source annotation:\n%s", out)
	}
}

func TestCritPathDeterministic(t *testing.T) {
	c1, _, _ := runFib(t, Options{})
	c2, _, _ := runFib(t, Options{})
	cp1, err := c1.CritPath()
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := c2.CritPath()
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(cp1)
	j2, _ := json.Marshal(cp2)
	if !bytes.Equal(j1, j2) {
		t.Error("critical path differs across identical runs")
	}
}

func TestCritPathRefusesDroppedEvents(t *testing.T) {
	c, _, _ := runFib(t, Options{RingCapacity: 32})
	if c.Dropped() == 0 {
		t.Fatal("fib with a 32-event ring did not overflow; the test needs drops")
	}
	if _, err := c.CritPath(); err == nil {
		t.Fatal("CritPath accepted a ring that dropped events")
	} else if !strings.Contains(err.Error(), "RingCapacity") {
		t.Errorf("refusal error does not mention the remedy: %v", err)
	}
}
