// Cycle accounting: classify every (thread slot, cycle) of a run into a
// hierarchical CPI stack. The paper argues about where cycles go (§3,
// Tables 3-5) via end-of-run utilization; this pass gives the same budget
// per slot-cycle, exactly — for every slot, the buckets sum to the run's
// cycle count:
//
//	issued                     ≥1 instruction left decode this cycle
//	stalled/data-dep           scoreboard interlock (StallData)
//	stalled/standby-full       standby station occupied (StallStandby)
//	stalled/queue/queue-empty  queue register had no word (StallQueueEmpty)
//	stalled/queue/queue-full   queue register full on write (StallQueueFull)
//	stalled/priority-lost      lost schedule-unit arbitration (StallPriority)
//	stalled/fetch-empty        instruction queue buffer empty (StallEmpty)
//	unbound/remote-wait        slot drained by a data-absence trap
//	unbound/idle               no runnable thread bound to the slot
//	other                      residual (e.g. MaxIssuePerCycle budget cuts,
//	                           drain cycles after HALT enters decode)
//
// The accounting is computed incrementally from the event stream (never
// from the bounded ring), so it is exact even when the ring dropped
// events.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"hirata/internal/core"
)

// CPIBucket indexes one leaf of the CPI stack.
type CPIBucket int

// CPI stack leaves, in exposition order.
const (
	CPIIssued CPIBucket = iota
	CPIDataDep
	CPIStandbyFull
	CPIQueueEmpty
	CPIQueueFull
	CPIPriorityLost
	CPIFetchEmpty
	CPIRemoteWait
	CPIIdle
	CPIOther
	NumCPIBuckets
)

// String names the bucket leaf (stable: used as the Prometheus label).
func (b CPIBucket) String() string {
	switch b {
	case CPIIssued:
		return "issued"
	case CPIDataDep:
		return "data-dep"
	case CPIStandbyFull:
		return "standby-full"
	case CPIQueueEmpty:
		return "queue-empty"
	case CPIQueueFull:
		return "queue-full"
	case CPIPriorityLost:
		return "priority-lost"
	case CPIFetchEmpty:
		return "fetch-empty"
	case CPIRemoteWait:
		return "remote-wait"
	case CPIIdle:
		return "idle"
	case CPIOther:
		return "other"
	}
	return "unknown"
}

// Path is the bucket's position in the hierarchy, leaf last — the folded
// stack frames of the flamegraph export.
func (b CPIBucket) Path() []string {
	switch b {
	case CPIIssued, CPIOther:
		return []string{b.String()}
	case CPIQueueEmpty, CPIQueueFull:
		return []string{"stalled", "queue", b.String()}
	case CPIRemoteWait, CPIIdle:
		return []string{"unbound", b.String()}
	default:
		return []string{"stalled", b.String()}
	}
}

// cpiBucketForStall maps a decode stall reason onto its CPI leaf.
// StallNone is not a stall and has no bucket (ok=false).
func cpiBucketForStall(r core.StallReason) (CPIBucket, bool) {
	switch r {
	case core.StallData:
		return CPIDataDep, true
	case core.StallStandby:
		return CPIStandbyFull, true
	case core.StallQueueEmpty:
		return CPIQueueEmpty, true
	case core.StallQueueFull:
		return CPIQueueFull, true
	case core.StallPriority:
		return CPIPriorityLost, true
	case core.StallEmpty:
		return CPIFetchEmpty, true
	}
	return 0, false
}

// SlotCPI is one slot's cycle budget.
type SlotCPI struct {
	Slot    int // -1 = whole machine
	Cycles  [NumCPIBuckets]uint64
	Issued  uint64 // instructions issued (can exceed Cycles[CPIIssued] with IssueWidth > 1)
	Unbound uint64 // convenience: remote-wait + idle
}

// Total sums the budget; per construction it equals the run's cycle count
// (times ThreadSlots for the machine aggregate).
func (s SlotCPI) Total() uint64 {
	var t uint64
	for _, v := range s.Cycles {
		t += v
	}
	return t
}

// CPIStack is the run's full cycle-accounting result.
type CPIStack struct {
	Cycles  uint64 // run length in cycles
	Dropped uint64 // ring drops (the accounting itself is exact regardless)
	Slots   []SlotCPI
}

// Machine aggregates all slots (Slot = -1).
func (st CPIStack) Machine() SlotCPI {
	m := SlotCPI{Slot: -1}
	for _, s := range st.Slots {
		for b, v := range s.Cycles {
			m.Cycles[b] += v
		}
		m.Issued += s.Issued
		m.Unbound += s.Unbound
	}
	return m
}

// CPIStack snapshots the cycle accounting. Safe during a live run; the
// residual "other" bucket absorbs the not-yet-finalized tail.
func (c *Collector) CPIStack() CPIStack {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cpiStackLocked()
}

// cpiStackLocked builds the stack. Call with c.mu held.
func (c *Collector) cpiStackLocked() CPIStack {
	t := c.cyclesLocked()
	st := CPIStack{Cycles: t, Dropped: c.dropped, Slots: make([]SlotCPI, c.slots)}
	for i := range st.Slots {
		s := &st.Slots[i]
		s.Slot = i
		a := c.acct[i] // copy; close any open gap against the snapshot end
		a.closeGap(t)
		s.Cycles[CPIIssued] = a.issueCycles
		s.Cycles[CPIRemoteWait] = a.remoteWait
		s.Cycles[CPIIdle] = a.idle
		if i < len(c.totals.SlotStalls) {
			for r := core.StallReason(0); int(r) < core.NumStallReasons; r++ {
				if r == core.StallNone {
					continue
				}
				if b, ok := cpiBucketForStall(r); ok {
					s.Cycles[b] += c.totals.SlotStalls[i][r]
				}
			}
		}
		if i < len(c.totals.SlotIssued) {
			s.Issued = c.totals.SlotIssued[i]
		}
		s.Unbound = s.Cycles[CPIRemoteWait] + s.Cycles[CPIIdle]
		// Residual: slot-cycles no event classified (issue-budget cuts,
		// post-HALT drain). Clamped — a mid-cycle snapshot can transiently
		// overcount the open gap.
		sum := s.Total()
		if t > sum {
			s.Cycles[CPIOther] = t - sum
		}
	}
	return st
}

// WriteCPIFolded writes the stack in collapsed/folded format — one
// "slotN;frame;...;leaf count" line per non-zero bucket — the input format
// of flamegraph.pl and speedscope.
func (st CPIStack) WriteCPIFolded(w io.Writer) error {
	for _, s := range st.Slots {
		for b := CPIBucket(0); b < NumCPIBuckets; b++ {
			v := s.Cycles[b]
			if v == 0 {
				continue
			}
			frames := append([]string{fmt.Sprintf("slot%d", s.Slot)}, b.Path()...)
			if _, err := fmt.Fprintf(w, "%s %d\n", strings.Join(frames, ";"), v); err != nil {
				return err
			}
		}
	}
	return nil
}

// cpiJSON is the JSON document of WriteCPIJSON and /cpistack.json.
type cpiJSON struct {
	Cycles  uint64              `json:"cycles"`
	Dropped uint64              `json:"events_dropped"`
	Machine map[string]uint64   `json:"machine"`
	Slots   []map[string]uint64 `json:"slots"`
}

func (st CPIStack) jsonDoc() cpiJSON {
	row := func(s SlotCPI) map[string]uint64 {
		m := make(map[string]uint64, int(NumCPIBuckets)+2)
		for b := CPIBucket(0); b < NumCPIBuckets; b++ {
			m[b.String()] = s.Cycles[b]
		}
		m["instructions"] = s.Issued
		if s.Slot >= 0 {
			m["slot"] = uint64(s.Slot)
		}
		return m
	}
	doc := cpiJSON{Cycles: st.Cycles, Dropped: st.Dropped, Machine: row(st.Machine())}
	for _, s := range st.Slots {
		doc.Slots = append(doc.Slots, row(s))
	}
	return doc
}

// WriteCPIJSON writes the stack as one JSON document.
func (st CPIStack) WriteCPIJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(st.jsonDoc())
}

// WriteCPITable renders the stack as an aligned table, slots as rows and
// buckets as percentage columns, with the machine aggregate last.
func (st CPIStack) WriteCPITable(w io.Writer) error {
	if st.Dropped > 0 {
		fmt.Fprintf(w, "note: event ring dropped %d events; accounting is exact (computed from aggregates), timeline views are truncated\n", st.Dropped)
	}
	fmt.Fprintf(w, "cycle accounting over %d cycles\n", st.Cycles)
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "slot\tcycles\t")
	for b := CPIBucket(0); b < NumCPIBuckets; b++ {
		fmt.Fprintf(tw, "%s\t", b)
	}
	fmt.Fprint(tw, "cpi\t\n")
	pct := func(v, total uint64) string {
		if total == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(v)/float64(total))
	}
	row := func(name string, s SlotCPI, cycles uint64) {
		fmt.Fprintf(tw, "%s\t%d\t", name, cycles)
		for b := CPIBucket(0); b < NumCPIBuckets; b++ {
			fmt.Fprintf(tw, "%s\t", pct(s.Cycles[b], s.Total()))
		}
		if s.Issued > 0 {
			fmt.Fprintf(tw, "%.2f\t\n", float64(s.Total())/float64(s.Issued))
		} else {
			fmt.Fprint(tw, "-\t\n")
		}
	}
	for _, s := range st.Slots {
		row(fmt.Sprintf("%d", s.Slot), s, st.Cycles)
	}
	row("all", st.Machine(), st.Cycles)
	return tw.Flush()
}

// TopBuckets returns the machine-level buckets sorted by weight, heaviest
// first — the "where do cycles go" answer in one slice.
func (st CPIStack) TopBuckets() []CPIBucket {
	m := st.Machine()
	order := make([]CPIBucket, 0, NumCPIBuckets)
	for b := CPIBucket(0); b < NumCPIBuckets; b++ {
		order = append(order, b)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return m.Cycles[order[i]] > m.Cycles[order[j]]
	})
	return order
}
