package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"

	"hirata/internal/buildinfo"
	"hirata/internal/core"
)

// writeBuildInfo emits the hirata_build_info identity gauge through a
// p(format, args...) error-latch printer. The same gauge opens /metrics and
// /hostmetrics so every scrape records which binary produced it.
func writeBuildInfo(p func(format string, args ...any)) {
	bi := buildinfo.Get()
	p("# HELP hirata_build_info Build identity of the simulator binary (value is always 1).\n"+
		"# TYPE hirata_build_info gauge\n"+
		"hirata_build_info{revision=%q,goversion=%q,dirty=%q} 1\n",
		bi.ShortRevision(), bi.GoVersion, fmt.Sprintf("%t", bi.Dirty))
}

// WriteBuildInfo writes the hirata_build_info gauge alone; internal/hostobs
// reuses it so /hostmetrics carries the identical identity line.
func WriteBuildInfo(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	writeBuildInfo(p)
	return err
}

// Prometheus text-format exposition. Metric names follow the
// <namespace>_<name>_<unit> convention with the "hirata_" namespace; see
// docs/OBSERVABILITY.md for the catalogue.

// WritePrometheus writes the run totals (and latest-interval gauges when
// interval sampling is on) in Prometheus text exposition format.
func (c *Collector) WritePrometheus(w io.Writer) error {
	c.mu.Lock()
	cycles := c.cyclesLocked()
	t := c.totalsLocked()
	units := c.units
	samples := make([]Sample, len(c.samples))
	copy(samples, c.samples)
	dropped := c.dropped
	bound := c.bound
	cpi := c.cpiStackLocked()
	c.mu.Unlock()

	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	writeBuildInfo(p)
	p("# HELP hirata_cycles Simulated cycles elapsed (T).\n# TYPE hirata_cycles gauge\nhirata_cycles %d\n", cycles)
	p("# HELP hirata_instructions_total Instructions issued from decode units.\n# TYPE hirata_instructions_total counter\nhirata_instructions_total %d\n", t.Issues)
	ipc := 0.0
	if cycles > 0 {
		ipc = float64(t.Issues) / float64(cycles)
	}
	p("# HELP hirata_ipc Instructions per cycle over the whole run.\n# TYPE hirata_ipc gauge\nhirata_ipc %g\n", ipc)
	p("# HELP hirata_unit_busy_cycles_total Functional-unit occupancy (N x issue latency).\n# TYPE hirata_unit_busy_cycles_total counter\n")
	for ord, u := range units {
		p("hirata_unit_busy_cycles_total{unit=%q} %d\n", u.Name, t.UnitBusy[ord])
	}
	p("# HELP hirata_unit_invocations_total Instructions executed per functional unit (N).\n# TYPE hirata_unit_invocations_total counter\n")
	for ord, u := range units {
		p("hirata_unit_invocations_total{unit=%q} %d\n", u.Name, t.UnitInvocs[ord])
	}
	p("# HELP hirata_unit_utilization_percent The paper's U = N*L/T * 100%%.\n# TYPE hirata_unit_utilization_percent gauge\n")
	for ord, u := range units {
		util := 0.0
		if cycles > 0 {
			util = 100 * float64(t.UnitBusy[ord]) / float64(cycles)
		}
		p("hirata_unit_utilization_percent{unit=%q} %g\n", u.Name, util)
	}
	p("# HELP hirata_slot_issued_total Instructions issued per thread slot.\n# TYPE hirata_slot_issued_total counter\n")
	for s, n := range t.SlotIssued {
		p("hirata_slot_issued_total{slot=\"%d\"} %d\n", s, n)
	}
	p("# HELP hirata_stall_cycles_total Decode stall cycles by slot and reason.\n# TYPE hirata_stall_cycles_total counter\n")
	for s, row := range t.SlotStalls {
		for r, n := range row {
			reason := core.StallReason(r)
			if reason == core.StallNone {
				continue
			}
			p("hirata_stall_cycles_total{slot=\"%d\",reason=%q} %d\n", s, reason.String(), n)
		}
	}
	p("# HELP hirata_cpi_slot_cycles_total Slot-cycle accounting by CPI-stack bucket (account.go; buckets per slot sum to hirata_cycles).\n# TYPE hirata_cpi_slot_cycles_total counter\n")
	for _, s := range cpi.Slots {
		for b := CPIBucket(0); b < NumCPIBuckets; b++ {
			p("hirata_cpi_slot_cycles_total{slot=\"%d\",bucket=%q} %d\n", s.Slot, b.String(), s.Cycles[b])
		}
	}
	p("# HELP hirata_cpi_machine_fraction Fraction of all slot-cycles in each CPI-stack bucket.\n# TYPE hirata_cpi_machine_fraction gauge\n")
	machine := cpi.Machine()
	if total := machine.Total(); total > 0 {
		for b := CPIBucket(0); b < NumCPIBuckets; b++ {
			p("hirata_cpi_machine_fraction{bucket=%q} %g\n", b.String(), float64(machine.Cycles[b])/float64(total))
		}
	}
	p("# HELP hirata_slots_bound Thread slots currently bound to a context frame.\n# TYPE hirata_slots_bound gauge\nhirata_slots_bound %d\n", bits.OnesCount64(bound))
	p("# HELP hirata_events_dropped_total Events dropped from the bounded ring buffer.\n# TYPE hirata_events_dropped_total counter\nhirata_events_dropped_total %d\n", dropped)
	p("# HELP hirata_metrics_samples Closed interval-metrics samples.\n# TYPE hirata_metrics_samples gauge\nhirata_metrics_samples %d\n", len(samples))
	if n := len(samples); n > 0 {
		last := samples[n-1]
		p("# HELP hirata_interval_ipc IPC of the most recent closed metrics interval.\n# TYPE hirata_interval_ipc gauge\nhirata_interval_ipc %g\n", last.IPC)
	}
	return err
}

// sampleJSON is Sample's wire form: stall counts keyed by reason name with
// the meaningless StallNone slot (and zero counts) omitted, instead of an
// array positionally indexed by core.StallReason.
type sampleJSON struct {
	StartCycle uint64            `json:"start_cycle"`
	EndCycle   uint64            `json:"end_cycle"`
	Issued     uint64            `json:"issued"`
	IPC        float64           `json:"ipc"`
	UnitBusy   []uint64          `json:"unit_busy"`
	Stalls     map[string]uint64 `json:"stalls,omitempty"`
	SlotsBound int               `json:"slots_bound"`
}

// MarshalJSON implements json.Marshaler.
func (s Sample) MarshalJSON() ([]byte, error) {
	doc := sampleJSON{
		StartCycle: s.StartCycle,
		EndCycle:   s.EndCycle,
		Issued:     s.Issued,
		IPC:        s.IPC,
		UnitBusy:   s.UnitBusy,
		SlotsBound: s.SlotsBound,
	}
	for r, n := range s.Stalls {
		if reason := core.StallReason(r); reason != core.StallNone && n > 0 {
			if doc.Stalls == nil {
				doc.Stalls = make(map[string]uint64)
			}
			doc.Stalls[reason.String()] = n
		}
	}
	return json.Marshal(doc)
}

// UnmarshalJSON implements json.Unmarshaler (the inverse of MarshalJSON).
func (s *Sample) UnmarshalJSON(b []byte) error {
	var doc sampleJSON
	if err := json.Unmarshal(b, &doc); err != nil {
		return err
	}
	*s = Sample{
		StartCycle: doc.StartCycle,
		EndCycle:   doc.EndCycle,
		Issued:     doc.Issued,
		IPC:        doc.IPC,
		UnitBusy:   doc.UnitBusy,
		Stalls:     make([]uint64, core.NumStallReasons),
		SlotsBound: doc.SlotsBound,
	}
	for name, n := range doc.Stalls {
		for r := core.StallReason(0); int(r) < core.NumStallReasons; r++ {
			if r.String() == name {
				s.Stalls[r] = n
			}
		}
	}
	return nil
}

// metricsJSON is the JSON exposition document.
type metricsJSON struct {
	Cycles       uint64           `json:"cycles"`
	Instructions uint64           `json:"instructions"`
	IPC          float64          `json:"ipc"`
	Units        []unitMetricJSON `json:"units"`
	Slots        []slotMetricJSON `json:"slots"`
	Dropped      uint64           `json:"events_dropped"`
	Interval     int              `json:"metrics_interval"`
	Samples      []Sample         `json:"samples,omitempty"`
}

type unitMetricJSON struct {
	Name        string  `json:"name"`
	Invocations uint64  `json:"invocations"`
	BusyCycles  uint64  `json:"busy_cycles"`
	Utilization float64 `json:"utilization_percent"`
}

type slotMetricJSON struct {
	Slot   int               `json:"slot"`
	Issued uint64            `json:"issued"`
	Stalls map[string]uint64 `json:"stalls"`
}

// WriteMetricsJSON writes the totals and the interval time series as JSON.
func (c *Collector) WriteMetricsJSON(w io.Writer) error {
	c.mu.Lock()
	cycles := c.cyclesLocked()
	t := c.totalsLocked()
	units := c.units
	samples := make([]Sample, len(c.samples))
	copy(samples, c.samples)
	dropped := c.dropped
	interval := c.opt.MetricsInterval
	c.mu.Unlock()

	doc := metricsJSON{
		Cycles:       cycles,
		Instructions: t.Issues,
		Dropped:      dropped,
		Interval:     interval,
		Samples:      samples,
	}
	if cycles > 0 {
		doc.IPC = float64(t.Issues) / float64(cycles)
	}
	for ord, u := range units {
		um := unitMetricJSON{Name: u.Name, Invocations: t.UnitInvocs[ord], BusyCycles: t.UnitBusy[ord]}
		if cycles > 0 {
			um.Utilization = 100 * float64(t.UnitBusy[ord]) / float64(cycles)
		}
		doc.Units = append(doc.Units, um)
	}
	for s := range t.SlotIssued {
		sm := slotMetricJSON{Slot: s, Issued: t.SlotIssued[s], Stalls: map[string]uint64{}}
		for r, n := range t.SlotStalls[s] {
			if reason := core.StallReason(r); reason != core.StallNone && n > 0 {
				sm.Stalls[reason.String()] = n
			}
		}
		doc.Slots = append(doc.Slots, sm)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteIntervalTable renders the interval time series as a readable table:
// one row per closed sample with IPC, aggregate unit busy%, occupancy and
// the dominant stall reason.
func (c *Collector) WriteIntervalTable(w io.Writer) error {
	samples := c.Samples()
	units := c.Units()
	if len(samples) == 0 {
		_, err := fmt.Fprintln(w, "no interval samples (set a metrics interval)")
		return err
	}
	if _, err := fmt.Fprintf(w, "%13s %8s %8s %6s %6s  %s\n", "cycles", "issued", "ipc", "busy%", "bound", "top stall"); err != nil {
		return err
	}
	for _, s := range samples {
		var busy uint64
		for _, b := range s.UnitBusy {
			busy += b
		}
		busyPct := 0.0
		if span := s.EndCycle - s.StartCycle; span > 0 && len(units) > 0 {
			busyPct = 100 * float64(busy) / float64(span*uint64(len(units)))
		}
		top, topN := "-", uint64(0)
		for r, n := range s.Stalls {
			if n > topN && core.StallReason(r) != core.StallNone {
				top, topN = core.StallReason(r).String(), n
			}
		}
		topCol := "-"
		if topN > 0 {
			topCol = fmt.Sprintf("%s (%d)", top, topN)
		}
		if _, err := fmt.Fprintf(w, "%6d-%6d %8d %8.3f %6.1f %6d  %s\n",
			s.StartCycle, s.EndCycle, s.Issued, s.IPC, busyPct, s.SlotsBound, topCol); err != nil {
			return err
		}
	}
	return nil
}
