package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"strings"

	"hirata/internal/asm"
)

// HostSource is the host-side self-observability exposition attached to
// /hostmetrics: implemented by internal/hostobs (phase-profile nanoseconds,
// structure-touch counters, sweep telemetry). Defined here as a one-method
// interface so obs does not import hostobs.
type HostSource interface {
	WriteHostPrometheus(w io.Writer) error
}

// RunsSource is the cross-run observability surface attached to /runs:
// implemented by internal/runledger's Ledger. Defined here so obs does not
// import runledger.
type RunsSource interface {
	// WriteRunsIndex writes the JSON index of recorded runs (/runs).
	WriteRunsIndex(w io.Writer) error
	// RunJSON resolves a run selector (content-hash or run-key prefix) to
	// the record's JSON envelope; ok=false means no unambiguous match.
	RunJSON(sel string) ([]byte, bool)
	// WriteRunsPrometheus appends the ledger's metrics to /metrics.
	WriteRunsPrometheus(w io.Writer) error
}

// Handler returns the live observability surface for a running (or
// finished) simulation:
//
//	/            index
//	/metrics     Prometheus text exposition (totals + latest interval)
//	/metrics.json totals and the interval time series as JSON
//	/trace.json  Chrome Trace Event JSON of the ring buffer (Perfetto)
//	/profile     per-PC hotspot report (annotated disassembly)
//	/hostmetrics Prometheus exposition of the simulator's own execution
//	/debug/pprof/... the standard Go profiler endpoints
//
// prog supplies the profiler's source-line map and may be nil. The
// collector is written by the simulation loop concurrently; every handler
// works from a consistent snapshot.
func Handler(c *Collector, prog *asm.Program) http.Handler {
	return HandlerWithHost(c, prog, nil)
}

// HandlerWithHost is Handler with a host-side self-observability source for
// /hostmetrics. A nil host serves 503 on that endpoint (the run was started
// without -self-profile).
func HandlerWithHost(c *Collector, prog *asm.Program, host HostSource) http.Handler {
	return HandlerWithSources(c, prog, host, nil)
}

// HandlerWithSources is Handler with both optional sources: a HostSource
// for /hostmetrics and a RunsSource for /runs, /runs/<sel> and the
// hirata_runledger_* series appended to /metrics. Nil sources serve 503 on
// their endpoints.
func HandlerWithSources(c *Collector, prog *asm.Program, host HostSource, runs RunsSource) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "hirata simulator observability\n\n"+
			"  /metrics        Prometheus text format\n"+
			"  /metrics.json   totals + interval time series\n"+
			"  /trace.json     Chrome Trace Event JSON (load in ui.perfetto.dev)\n"+
			"  /profile        per-PC hotspot report\n"+
			"  /cpistack.json  per-slot CPI-stack cycle accounting\n"+
			"  /critpath.json  dynamic critical path with breakdown\n"+
			"  /hostmetrics    the simulator observing itself (phase profile, dirty-set counters)\n"+
			"  /runs           cross-run ledger index (with /runs/<hash-or-key-prefix>)\n"+
			"  /debug/pprof/   Go runtime profiles of the simulator itself\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := c.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if runs != nil {
			if err := runs.WriteRunsPrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := c.WriteMetricsJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="hirata-trace.json"`)
		if err := c.WriteChromeTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/profile", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := c.Profile().WriteAnnotated(w, prog); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/cpistack.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := c.CPIStack().WriteCPIJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/critpath.json", func(w http.ResponseWriter, r *http.Request) {
		cp, err := c.CritPath()
		if err != nil {
			// The ring dropped events; the analysis refuses rather than
			// serving a fictional path.
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		cp.Annotate(prog)
		w.Header().Set("Content-Type", "application/json")
		if err := cp.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/hostmetrics", func(w http.ResponseWriter, r *http.Request) {
		if host == nil {
			http.Error(w, "host self-observability not attached (run with -self-profile)",
				http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := host.WriteHostPrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/runs", func(w http.ResponseWriter, r *http.Request) {
		if runs == nil {
			http.Error(w, "run ledger not attached (run with -record)", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := runs.WriteRunsIndex(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/runs/", func(w http.ResponseWriter, r *http.Request) {
		if runs == nil {
			http.Error(w, "run ledger not attached (run with -record)", http.StatusServiceUnavailable)
			return
		}
		sel := strings.TrimPrefix(r.URL.Path, "/runs/")
		body, ok := runs.RunJSON(sel)
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	})
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// Serve listens on addr and serves Handler in a background goroutine.
// It returns once the listener is bound (so "the server is up" is
// ordered before the simulation starts) along with the bound address —
// useful with ":0" — and a shutdown function.
func Serve(addr string, c *Collector, prog *asm.Program) (bound string, shutdown func() error, err error) {
	return ServeWithHost(addr, c, prog, nil)
}

// ServeWithHost is Serve with a HostSource attached to /hostmetrics.
func ServeWithHost(addr string, c *Collector, prog *asm.Program, host HostSource) (bound string, shutdown func() error, err error) {
	return ServeWithSources(addr, c, prog, host, nil)
}

// ServeWithSources is Serve with both optional sources attached.
func ServeWithSources(addr string, c *Collector, prog *asm.Program, host HostSource, runs RunsSource) (bound string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: HandlerWithSources(c, prog, host, runs)}
	go func() {
		// Serve returns http.ErrServerClosed on shutdown; anything else is
		// reported through the server's ErrorLog default (stderr).
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), srv.Close, nil
}
