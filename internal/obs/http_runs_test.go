package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hirata/internal/core"
	"hirata/internal/isa"
	"hirata/internal/mem"
	"hirata/internal/runledger"
)

// ledgerRecord fabricates one run record for the HTTP tests.
func ledgerRecord(tag string, slots int, cycles uint64) *runledger.RunRecord {
	cfg := core.Config{ThreadSlots: slots}
	pend := runledger.Begin(cfg, []isa.Instruction{isa.Nop()}, mem.NewMemory(8), nil)
	rows := make([]core.SlotStat, slots)
	for s := range rows {
		st := core.SlotStat{Issued: cycles / 2}
		st.Stalls[core.StallData] = cycles / 4
		rows[s] = st
	}
	res := core.Result{Cycles: cycles, Instructions: cycles / 2, Slots: rows}
	return pend.Finish(res, tag)
}

func TestRunsEndpoints(t *testing.T) {
	c, _, prog := runFib(t, Options{})
	led := runledger.NewMemory()
	recA := ledgerRecord("a", 2, 1000)
	recB := ledgerRecord("b", 4, 2000)
	hashA, _, err := led.Append(recA)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := led.Append(recB); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(HandlerWithSources(c, prog, nil, led))
	defer srv.Close()

	// Index lists both records.
	resp, err := http.Get(srv.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	var index struct {
		Records int `json:"records"`
		Runs    []struct {
			Hash string `json:"hash"`
			Tag  string `json:"tag"`
		} `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&index); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || index.Records != 2 || len(index.Runs) != 2 {
		t.Fatalf("GET /runs: status %d, index %+v", resp.StatusCode, index)
	}

	// Fetch by content-hash prefix round-trips the record.
	resp, err = http.Get(srv.URL + "/runs/" + hashA[:12])
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Hash   string `json:"hash"`
		Record struct {
			Tag    string `json:"tag"`
			Result struct {
				Cycles uint64 `json:"cycles"`
			} `json:"result"`
		} `json:"record"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || env.Hash != hashA || env.Record.Tag != "a" || env.Record.Result.Cycles != 1000 {
		t.Fatalf("GET /runs/%s: status %d, envelope %+v", hashA[:12], resp.StatusCode, env)
	}

	// Unknown selector is a 404, not an error page.
	resp, err = http.Get(srv.URL + "/runs/zzzz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /runs/zzzz: status %d, want 404", resp.StatusCode)
	}

	// /metrics carries the ledger series after the simulation series.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if !strings.Contains(body, "hirata_cpi_slot_cycles_total") {
		t.Error("/metrics lost the simulation series")
	}
	if !strings.Contains(body, "hirata_runledger_records 2") {
		t.Errorf("/metrics lacks the ledger series:\n%s", tail(body))
	}
}

func TestRunsEndpointsDetached(t *testing.T) {
	c, _, prog := runFib(t, Options{})
	srv := httptest.NewServer(HandlerWithSources(c, prog, nil, nil))
	defer srv.Close()
	for _, path := range []string{"/runs", "/runs/abc"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s without a ledger: status %d, want 503", path, resp.StatusCode)
		}
	}
	// A detached ledger must not break /metrics.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); strings.Contains(body, "hirata_runledger_") {
		t.Error("/metrics exposes ledger series without a ledger")
	}
}

// TestRunsConcurrentRecordWhileServing appends records while clients read
// the index, individual runs and /metrics; meaningful under -race.
func TestRunsConcurrentRecordWhileServing(t *testing.T) {
	c, _, prog := runFib(t, Options{})
	led := runledger.NewMemory()
	srv := httptest.NewServer(HandlerWithSources(c, prog, nil, led))
	defer srv.Close()

	const writers, readers, perWriter = 4, 4, 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := ledgerRecord(fmt.Sprintf("w%d-%d", w, i), 2, uint64(100+10*w+i))
				if _, _, err := led.Append(rec); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				for _, path := range []string{"/runs", "/runs/ffff", "/metrics"} {
					resp, err := http.Get(srv.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()

	if got := led.Len(); got != writers*perWriter {
		t.Fatalf("ledger holds %d records after concurrent writes, want %d", got, writers*perWriter)
	}
	resp, err := http.Get(srv.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	var index struct {
		Records int `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&index); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if index.Records != writers*perWriter {
		t.Fatalf("/runs reports %d records, want %d", index.Records, writers*perWriter)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := io.Copy(&b, resp.Body); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func tail(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) > 12 {
		lines = lines[len(lines)-12:]
	}
	return strings.Join(lines, "\n")
}
