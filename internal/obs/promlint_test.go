package obs

// Promlint-style checks on the Prometheus text exposition: every sample
// preceded by matching # HELP and # TYPE lines, counter names end in
// _total and gauges do not, label order stable across runs, no
// reason="none" pseudo-labels, and the hirata_cpi_* series present. A
// golden file pins the entire exposition for the fib example (regenerate
// with -update).

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var promSample = regexp.MustCompile(`^([a-z_]+)(\{[^}]*\})? [-+0-9.eE]+$`)

func TestPrometheusExpositionLint(t *testing.T) {
	c, _, _ := runFib(t, Options{MetricsInterval: 64})
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	type meta struct{ help, typ string }
	metas := map[string]meta{}
	var current string
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(fields) != 2 || fields[1] == "" {
				t.Errorf("line %d: HELP without text: %q", i+1, line)
				continue
			}
			current = fields[0]
			m := metas[current]
			m.help = fields[1]
			metas[current] = m
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Errorf("line %d: malformed TYPE: %q", i+1, line)
				continue
			}
			if fields[0] != current {
				t.Errorf("line %d: TYPE %s does not follow its HELP (current %s)", i+1, fields[0], current)
			}
			if fields[1] != "counter" && fields[1] != "gauge" {
				t.Errorf("line %d: unknown metric type %q", i+1, fields[1])
			}
			m := metas[fields[0]]
			m.typ = fields[1]
			metas[fields[0]] = m
		case line == "":
			t.Errorf("line %d: blank line in exposition", i+1)
		default:
			match := promSample.FindStringSubmatch(line)
			if match == nil {
				t.Errorf("line %d: unparsable sample: %q", i+1, line)
				continue
			}
			name := match[1]
			m, ok := metas[name]
			if !ok || m.help == "" || m.typ == "" {
				t.Errorf("line %d: sample %s has no preceding # HELP/# TYPE pair", i+1, name)
				continue
			}
			if !strings.HasPrefix(name, "hirata_") {
				t.Errorf("line %d: metric %s outside the hirata_ namespace", i+1, name)
			}
			switch m.typ {
			case "counter":
				if !strings.HasSuffix(name, "_total") {
					t.Errorf("line %d: counter %s does not end in _total", i+1, name)
				}
			case "gauge":
				if strings.HasSuffix(name, "_total") {
					t.Errorf("line %d: gauge %s ends in _total", i+1, name)
				}
			}
			if strings.Contains(match[2], `"none"`) {
				t.Errorf("line %d: sample carries the StallNone pseudo-label: %q", i+1, line)
			}
		}
	}
	for _, want := range []string{"hirata_cpi_slot_cycles_total", "hirata_cpi_machine_fraction", "hirata_events_dropped_total"} {
		if _, ok := metas[want]; !ok {
			t.Errorf("exposition lacks %s", want)
		}
	}

	// Stable output (label order included): a second identical run must
	// produce identical bytes.
	c2, _, _ := runFib(t, Options{MetricsInterval: 64})
	var buf2 bytes.Buffer
	if err := c2.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("Prometheus exposition is not byte-stable across identical runs")
	}

	golden := filepath.Join("testdata", "fib_metrics.golden.prom")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from %s (run with -update to regenerate);\ngot:\n%s", golden, diffHead(buf.Bytes(), want))
	}
}

// diffHead returns the first differing line pair for a readable failure.
func diffHead(got, want []byte) string {
	g := strings.Split(string(got), "\n")
	w := strings.Split(string(want), "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("length differs: got %d lines, want %d", len(g), len(w))
}
