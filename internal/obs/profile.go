package obs

import (
	"fmt"
	"io"
	"sort"

	"hirata/internal/asm"
)

// Profile is a snapshot of the per-PC hotspot attribution: how often each
// static instruction issued, how long it kept functional units busy, and
// how many decode-stall cycles it caused while heading the D2 window.
type Profile struct {
	PCs []PCStat // sorted by PC
	// TotalIssues is Σ PCs.Issues; with the collector attached for the
	// whole run it equals Result.Instructions.
	TotalIssues uint64
	TotalBusy   uint64
	TotalStalls uint64
	// Dropped counts ring-buffer drops. The profile itself aggregates
	// incrementally and stays exact; the field surfaces that event-replay
	// views (Chrome trace, critical path) of the same run are truncated.
	Dropped uint64
}

// Profile snapshots the collector's per-PC attribution.
func (c *Collector) Profile() Profile {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := Profile{PCs: make([]PCStat, 0, len(c.profile)), Dropped: c.dropped}
	for _, st := range c.profile {
		p.PCs = append(p.PCs, *st)
		p.TotalIssues += st.Issues
		p.TotalBusy += st.BusyCycles
		p.TotalStalls += st.StallCycles
	}
	sort.Slice(p.PCs, func(i, j int) bool { return p.PCs[i].PC < p.PCs[j].PC })
	return p
}

// AttributedIssues returns how many issued instructions map to a known
// source line of prog (the acceptance metric for source-level
// attribution). With a nil program it counts every profiled pc.
func (p Profile) AttributedIssues(prog *asm.Program) uint64 {
	var n uint64
	for _, st := range p.PCs {
		if prog == nil || prog.Line(int(st.PC)) > 0 {
			n += st.Issues
		}
	}
	return n
}

// WriteAnnotated renders the profile as a perf-annotate-style report: the
// static program in pc order, each instruction annotated with its share of
// dynamic issues, functional-unit busy cycles, average result latency and
// attributed stall cycles. prog supplies the source-line map and may be
// nil (trace-driven replays profile by stream position instead of pc).
func (p Profile) WriteAnnotated(w io.Writer, prog *asm.Program) error {
	if _, err := fmt.Fprintf(w, "hotspot profile: %d issues, %d unit-busy cycles, %d stall cycles attributed\n",
		p.TotalIssues, p.TotalBusy, p.TotalStalls); err != nil {
		return err
	}
	if p.Dropped > 0 {
		if _, err := fmt.Fprintf(w, "warning: event ring dropped %d events; this profile is exact, but timeline and critical-path views are truncated\n",
			p.Dropped); err != nil {
			return err
		}
	}
	if len(p.PCs) == 0 {
		_, err := fmt.Fprintln(w, "  (no events collected)")
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s %7s %8s %8s %7s %5s %5s  %s\n",
		"issues", "issue%", "busy", "stall", "avg-lat", "line", "pc", "instruction"); err != nil {
		return err
	}
	for _, st := range p.PCs {
		pct := 0.0
		if p.TotalIssues > 0 {
			pct = 100 * float64(st.Issues) / float64(p.TotalIssues)
		}
		avgLat := "-"
		if st.Selects > 0 {
			avgLat = fmt.Sprintf("%.1f", float64(st.LatencyCycles)/float64(st.Selects))
		}
		line := "-"
		if prog != nil {
			if l := prog.Line(int(st.PC)); l > 0 {
				line = fmt.Sprintf("%d", l)
			}
		}
		marker := " "
		if pct >= 10 {
			marker = "*" // hotspot: ≥10% of dynamic issues
		}
		if _, err := fmt.Fprintf(w, "%s%7d %6.1f%% %8d %8d %7s %5s %5d  %s\n",
			marker, st.Issues, pct, st.BusyCycles, st.StallCycles, avgLat, line, st.PC, st.Ins); err != nil {
			return err
		}
	}
	return nil
}

// Hottest returns the n profile rows with the most dynamic issues,
// descending (ties broken by pc for determinism).
func (p Profile) Hottest(n int) []PCStat {
	rows := append([]PCStat(nil), p.PCs...)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Issues != rows[j].Issues {
			return rows[i].Issues > rows[j].Issues
		}
		return rows[i].PC < rows[j].PC
	})
	if n > len(rows) {
		n = len(rows)
	}
	return rows[:n]
}
