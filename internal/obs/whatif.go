// What-if bottleneck estimation: bound the cycle count of a changed
// machine from one observed run, without re-simulating. The paper's whole
// evaluation grid (§3, Tables 3-5) is what-if re-runs — "+1 load/store
// unit", "more thread slots", "deeper standby" — each a full simulation;
// this pass answers the same questions as an interval [Low, High] derived
// from the critical path and the CPI stack:
//
//   - Adding a unit of class c can at best remove the arbitration/occupancy
//     wait the path charged to c: Low = T − Breakdown.Unit[c], High = T
//     (relaxing a resource never slows the run).
//   - Deepening standby stations can at best remove the standby waits:
//     Low = T − Breakdown.Standby, High = T.
//   - Adding a thread slot can at best scale the throughput-bound portion
//     by S/(S+1): Low = T·S/(S+1), High = T (per-thread critical paths and
//     shared-unit saturation both break perfect scaling).
//
// The bounds are validated against actual re-runs with the changed
// core.Config in whatif_test.go; Config.ExtraUnits exists precisely so
// "+1 ALU" is a re-runnable configuration.
package obs

import (
	"fmt"
	"strings"

	"hirata/internal/isa"
)

// Scenario is one parsed what-if question.
type Scenario struct {
	Kind  string // "unit", "slot", or "standby"
	Unit  isa.UnitClass
	Label string // canonical form, e.g. "+1 IntALU"
}

// ParseScenario parses a what-if scenario string. Accepted forms (case-
// insensitive): "+1 alu", "+1 shifter", "+1 intmul", "+1 fpadd",
// "+1 fpmul", "+1 fpdiv", "+1 ls" (or "loadstore"), "+1 slot",
// "+1 standby".
func ParseScenario(s string) (Scenario, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	t = strings.TrimPrefix(t, "+1")
	t = strings.TrimSpace(strings.ReplaceAll(strings.ReplaceAll(t, "-", ""), "_", ""))
	switch t {
	case "slot", "threadslot", "thread slot":
		return Scenario{Kind: "slot", Label: "+1 thread slot"}, nil
	case "standby", "standbydepth", "standby depth":
		return Scenario{Kind: "standby", Label: "+1 standby depth"}, nil
	}
	classes := map[string]isa.UnitClass{
		"alu": isa.UnitIntALU, "intalu": isa.UnitIntALU,
		"shift": isa.UnitShifter, "shifter": isa.UnitShifter,
		"mul": isa.UnitIntMul, "intmul": isa.UnitIntMul,
		"fpadd": isa.UnitFPAdd,
		"fpmul": isa.UnitFPMul,
		"fpdiv": isa.UnitFPDiv,
		"ls":    isa.UnitLoadStore, "loadstore": isa.UnitLoadStore, "load/store": isa.UnitLoadStore,
	}
	if cls, ok := classes[t]; ok {
		return Scenario{Kind: "unit", Unit: cls, Label: "+1 " + cls.String()}, nil
	}
	return Scenario{}, fmt.Errorf("obs: unknown what-if scenario %q (want e.g. \"+1 alu\", \"+1 ls\", \"+1 slot\", \"+1 standby\")", s)
}

// Estimate is a bounded what-if answer for one scenario.
type Estimate struct {
	Scenario   string  `json:"scenario"`
	Baseline   uint64  `json:"baseline_cycles"`
	Low        uint64  `json:"low_cycles"`  // best case after the change
	High       uint64  `json:"high_cycles"` // worst case (no gain)
	Attributed uint64  `json:"attributed_cycles"`
	GainBound  float64 `json:"gain_bound"` // (Baseline−Low)/Baseline
	Note       string  `json:"note"`
}

// WhatIf estimates the scenario's effect on this run. Unit and standby
// scenarios need the event ring intact (they go through CritPath and
// inherit its dropped-events refusal); the slot scenario needs only the
// exact incremental accounting.
func (c *Collector) WhatIf(sc Scenario) (Estimate, error) {
	baseline := c.Cycles()
	est := Estimate{Scenario: sc.Label, Baseline: baseline, High: baseline}
	switch sc.Kind {
	case "unit", "standby":
		cp, err := c.CritPath()
		if err != nil {
			return Estimate{}, err
		}
		if sc.Kind == "unit" {
			est.Attributed = cp.Breakdown.Unit[sc.Unit.String()]
			est.Note = fmt.Sprintf("critical path charges %d cycles to %s arbitration/occupancy", est.Attributed, sc.Unit)
		} else {
			est.Attributed = cp.Breakdown.Standby
			est.Note = fmt.Sprintf("critical path charges %d cycles to standby-station occupancy", est.Attributed)
		}
		if est.Attributed > baseline {
			est.Attributed = baseline
		}
		est.Low = baseline - est.Attributed
	case "slot":
		st := c.CPIStack()
		s := uint64(len(st.Slots))
		if s == 0 {
			return Estimate{}, fmt.Errorf("obs: what-if +1 slot: no slots observed")
		}
		// Perfect-scaling floor: the same work spread over S+1 slots.
		est.Low = (baseline*s + s) / (s + 1) // ceil(T·S/(S+1))
		est.Attributed = baseline - est.Low
		m := st.Machine()
		est.Note = fmt.Sprintf("perfect-scaling floor over %d→%d slots; machine issued %.1f%% of slot-cycles",
			s, s+1, 100*float64(m.Cycles[CPIIssued])/float64(m.Total()))
	default:
		return Estimate{}, fmt.Errorf("obs: empty what-if scenario")
	}
	if baseline > 0 {
		est.GainBound = float64(baseline-est.Low) / float64(baseline)
	}
	return est, nil
}

// WhatIfAll parses and estimates a comma-separated scenario list.
func (c *Collector) WhatIfAll(list string) ([]Estimate, error) {
	var out []Estimate
	for _, part := range strings.Split(list, ",") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		sc, err := ParseScenario(part)
		if err != nil {
			return nil, err
		}
		est, err := c.WhatIf(sc)
		if err != nil {
			return nil, err
		}
		out = append(out, est)
	}
	return out, nil
}

// FormatEstimates renders estimates as an aligned text block.
func FormatEstimates(ests []Estimate) string {
	var b strings.Builder
	for _, e := range ests {
		fmt.Fprintf(&b, "what-if %-16s baseline %d cycles → [%d, %d] (≤%.1f%% faster)\n",
			e.Scenario+":", e.Baseline, e.Low, e.High, 100*e.GainBound)
		fmt.Fprintf(&b, "        %s\n", e.Note)
	}
	return b.String()
}
