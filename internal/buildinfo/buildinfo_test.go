package buildinfo

import "testing"

func TestGetDegradesGracefully(t *testing.T) {
	i := Get()
	if i.Revision == "" {
		t.Fatalf("Revision must never be empty (want a hash or %q)", "unknown")
	}
	if s := i.String(); s == "" {
		t.Fatal("String() empty")
	}
}

func TestSetForTestPins(t *testing.T) {
	SetForTest(&Info{Revision: "deadbeefcafe0123", Dirty: true, GoVersion: "go9.99"})
	defer SetForTest(nil)
	i := Get()
	if i.ShortRevision() != "deadbeefcafe" {
		t.Fatalf("ShortRevision = %q", i.ShortRevision())
	}
	if got, want := i.String(), "rev deadbeefcafe+dirty (go9.99)"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	SetForTest(nil)
	if Get().Revision == "deadbeefcafe0123" {
		t.Fatal("SetForTest(nil) did not restore the real identity")
	}
}
