// Package buildinfo surfaces the binary's own build identity — VCS
// revision, dirty flag and Go toolchain version from
// debug.ReadBuildInfo — so every exposition path (hirata_build_info on
// /metrics and /hostmetrics, the -version flag of the CLIs, and each
// BENCH_history.jsonl row) reports the same provenance for a measurement.
package buildinfo

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// Info is the build identity of the running binary.
type Info struct {
	Revision  string `json:"revision"`   // VCS revision, "unknown" when unstamped
	Dirty     bool   `json:"dirty"`      // working tree had uncommitted changes
	GoVersion string `json:"go_version"` // toolchain that built the binary
	Main      string `json:"main"`       // main module path ("" outside module builds)
}

var (
	once   sync.Once
	cached Info
	// testOverride pins the info for byte-stable goldens (SetForTest).
	testOverride *Info
	testMu       sync.RWMutex
)

// Get returns the build identity, reading debug.ReadBuildInfo once. Values
// degrade gracefully: binaries built without VCS stamping (go run from a
// non-repo directory, stripped builds) report revision "unknown".
func Get() Info {
	testMu.RLock()
	if testOverride != nil {
		defer testMu.RUnlock()
		return *testOverride
	}
	testMu.RUnlock()
	once.Do(func() {
		cached = Info{Revision: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		cached.GoVersion = bi.GoVersion
		cached.Main = bi.Main.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				cached.Revision = s.Value
			case "vcs.modified":
				cached.Dirty = s.Value == "true"
			}
		}
	})
	return cached
}

// String renders the identity for -version output: "rev abc1234 (go1.22.0)"
// with a "+dirty" suffix when the tree was modified.
func (i Info) String() string {
	rev := i.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	dirty := ""
	if i.Dirty {
		dirty = "+dirty"
	}
	return fmt.Sprintf("rev %s%s (%s)", rev, dirty, i.GoVersion)
}

// ShortRevision returns the revision truncated to 12 characters, the form
// recorded in BENCH_history.jsonl rows.
func (i Info) ShortRevision() string {
	if len(i.Revision) > 12 {
		return i.Revision[:12]
	}
	return i.Revision
}

// SetForTest pins Get to a fixed identity so goldens containing
// hirata_build_info stay byte-stable across toolchains and checkouts.
// Passing nil restores the real identity.
func SetForTest(i *Info) {
	testMu.Lock()
	testOverride = i
	testMu.Unlock()
}
