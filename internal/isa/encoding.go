package isa

import (
	"encoding/binary"
	"fmt"
)

// Word is one 32-bit encoded instruction.
type Word uint32

// Encoding layout, by format (bit 31 is the most significant):
//
//	R-like  (FmtR/R2/Q/TID/JR/N): op[31:24] rd[23:19] rs1[18:14] rs2[13:9] pad[8:0]
//	I-like  (FmtI/FmtLd):         op[31:24] rd[23:19] rs1[18:14] imm[13:0]
//	S-like  (FmtSt/FmtB):         op[31:24] rs1[23:19] rs2[18:14] imm[13:0]
//	LI/J    (FmtLI/FmtJ):         op[31:24] rd[23:19] pad[18:14] imm[13:0]
//
// Register fields store the index within the file (0..31); the register
// class (integer vs FP) is implied by the opcode. Immediates are signed
// 14-bit for arithmetic and addressing, and unsigned 14-bit absolute word
// addresses for branches and jumps.
const (
	immBits  = 14
	immMask  = 1<<immBits - 1
	immSMin  = -(1 << (immBits - 1))
	immSMax  = 1<<(immBits-1) - 1
	immUMax  = 1<<immBits - 1
	padField = 0x1F // placeholder for unused register fields
)

// immRange returns the encodable immediate range for op.
func immRange(op Opcode) (lo, hi int32) {
	switch op.Fmt() {
	case FmtB, FmtJ:
		return 0, immUMax
	default:
		return immSMin, immSMax
	}
}

// regField returns the 5-bit field value for r, or padField for NoReg.
func regField(r Reg) uint32 {
	if !r.Valid() {
		return padField
	}
	return uint32(r.Index())
}

// Encode packs the instruction into its 32-bit binary form.
func Encode(in Instruction) (Word, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	w := uint32(in.Op) << 24
	switch in.Op.Fmt() {
	case FmtR, FmtR2, FmtQ, FmtTID, FmtJR, FmtN:
		w |= regField(in.Rd) << 19
		w |= regField(in.Rs1) << 14
		w |= regField(in.Rs2) << 9
	case FmtI, FmtLd:
		w |= regField(in.Rd) << 19
		w |= regField(in.Rs1) << 14
		w |= uint32(in.Imm) & immMask
	case FmtSt, FmtB:
		w |= regField(in.Rs1) << 19
		w |= regField(in.Rs2) << 14
		w |= uint32(in.Imm) & immMask
	case FmtLI, FmtJ:
		w |= regField(in.Rd) << 19
		w |= padField << 14
		w |= uint32(in.Imm) & immMask
	default:
		return 0, fmt.Errorf("isa: cannot encode %s: unknown format", in.Op)
	}
	return Word(w), nil
}

// reg rebuilds a Reg from a 5-bit index field and its implied class.
func reg(field uint32, fp bool) Reg {
	if fp {
		return FPReg(int(field))
	}
	return IntReg(int(field))
}

// signExtImm sign-extends a 14-bit immediate field.
func signExtImm(field uint32) int32 {
	return int32(field<<(32-immBits)) >> (32 - immBits)
}

// Decode unpacks a 32-bit instruction word.
func Decode(w Word) (Instruction, error) {
	op := Opcode(w >> 24)
	if !op.Valid() {
		return Instruction{}, fmt.Errorf("isa: invalid opcode %d in word %#08x", uint8(op), uint32(w))
	}
	f1 := uint32(w) >> 19 & 0x1F
	f2 := uint32(w) >> 14 & 0x1F
	f3 := uint32(w) >> 9 & 0x1F
	immField := uint32(w) & immMask
	in := Instruction{Op: op, Rd: NoReg, Rs1: NoReg, Rs2: NoReg}
	fpOps := in.fpOperands()
	switch op.Fmt() {
	case FmtR:
		in.Rd = reg(f1, opTable[op].writesFP)
		in.Rs1 = reg(f2, fpOps)
		in.Rs2 = reg(f3, fpOps)
	case FmtR2:
		in.Rd = reg(f1, opTable[op].writesFP)
		in.Rs1 = reg(f2, fpOps)
	case FmtQ:
		fp := op == QENF
		in.Rs1 = reg(f2, fp)
		in.Rs2 = reg(f3, fp)
	case FmtTID:
		in.Rd = reg(f1, false)
	case FmtJR:
		in.Rs1 = reg(f2, false)
	case FmtN:
		// no operands
	case FmtI:
		in.Rd = reg(f1, false)
		in.Rs1 = reg(f2, false)
		in.Imm = signExtImm(immField)
	case FmtLd:
		in.Rd = reg(f1, op == FLW)
		in.Rs1 = reg(f2, false)
		in.Imm = signExtImm(immField)
	case FmtSt:
		in.Rs1 = reg(f1, false)
		in.Rs2 = reg(f2, op == FSW || op == FSWP)
		in.Imm = signExtImm(immField)
	case FmtB:
		in.Rs1 = reg(f1, false)
		if op == BEQ || op == BNE {
			in.Rs2 = reg(f2, false)
		}
		in.Imm = int32(immField)
	case FmtLI:
		in.Rd = reg(f1, false)
		in.Imm = signExtImm(immField)
	case FmtJ:
		if op == JAL {
			in.Rd = reg(f1, false)
		}
		in.Imm = int32(immField)
	default:
		return Instruction{}, fmt.Errorf("isa: cannot decode %s: unknown format", op)
	}
	if err := in.Validate(); err != nil {
		return Instruction{}, fmt.Errorf("isa: decoded invalid instruction from %#08x: %w", uint32(w), err)
	}
	return in, nil
}

// EncodeProgram encodes a sequence of instructions into binary, 4 bytes per
// instruction, big-endian.
func EncodeProgram(prog []Instruction) ([]byte, error) {
	buf := make([]byte, 0, 4*len(prog))
	for i, in := range prog {
		w, err := Encode(in)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(w))
	}
	return buf, nil
}

// DecodeProgram decodes binary produced by EncodeProgram.
func DecodeProgram(buf []byte) ([]Instruction, error) {
	if len(buf)%4 != 0 {
		return nil, fmt.Errorf("isa: program length %d is not a multiple of 4", len(buf))
	}
	prog := make([]Instruction, 0, len(buf)/4)
	for i := 0; i < len(buf); i += 4 {
		in, err := Decode(Word(binary.BigEndian.Uint32(buf[i:])))
		if err != nil {
			return nil, fmt.Errorf("isa: word %d: %w", i/4, err)
		}
		prog = append(prog, in)
	}
	return prog, nil
}
