package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegClassification(t *testing.T) {
	for i := 0; i < NumIntRegs; i++ {
		r := IntReg(i)
		if !r.IsInt() || r.IsFP() {
			t.Errorf("IntReg(%d) misclassified", i)
		}
		if r.Index() != i {
			t.Errorf("IntReg(%d).Index() = %d", i, r.Index())
		}
	}
	for i := 0; i < NumFPRegs; i++ {
		r := FPReg(i)
		if r.IsInt() || !r.IsFP() {
			t.Errorf("FPReg(%d) misclassified", i)
		}
		if r.Index() != i {
			t.Errorf("FPReg(%d).Index() = %d", i, r.Index())
		}
	}
	if NoReg.Valid() {
		t.Error("NoReg must not be Valid")
	}
}

func TestRegStringParseRoundTrip(t *testing.T) {
	for i := 0; i < NumIntRegs; i++ {
		r := IntReg(i)
		got, err := ParseReg(r.String())
		if err != nil || got != r {
			t.Errorf("ParseReg(%q) = %v, %v; want %v", r.String(), got, err, r)
		}
	}
	for i := 0; i < NumFPRegs; i++ {
		r := FPReg(i)
		got, err := ParseReg(r.String())
		if err != nil || got != r {
			t.Errorf("ParseReg(%q) = %v, %v; want %v", r.String(), got, err, r)
		}
	}
}

func TestParseRegErrors(t *testing.T) {
	for _, s := range []string{"", "r", "x3", "r32", "f32", "r-1", "rr1", "f 1"} {
		if _, err := ParseReg(s); err == nil {
			t.Errorf("ParseReg(%q) succeeded, want error", s)
		}
	}
}

func TestOpcodeTableComplete(t *testing.T) {
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		if opTable[op].name == "" {
			t.Errorf("opcode %d has no table entry", uint8(op))
		}
		if opTable[op].issueLat < 1 {
			t.Errorf("%s: issue latency %d < 1", op, opTable[op].issueLat)
		}
		if opTable[op].resultLat < 1 {
			t.Errorf("%s: result latency %d < 1", op, opTable[op].resultLat)
		}
		if opTable[op].writesInt && opTable[op].writesFP {
			t.Errorf("%s: writes both register files", op)
		}
		got, ok := OpcodeByName(op.String())
		if !ok || got != op {
			t.Errorf("OpcodeByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
}

// TestTable1Latencies pins the paper's Table 1 latency values.
func TestTable1Latencies(t *testing.T) {
	cases := []struct {
		op            Opcode
		unit          UnitClass
		issue, result int
	}{
		{ADD, UnitIntALU, 1, 2},
		{SUB, UnitIntALU, 1, 2},
		{AND, UnitIntALU, 1, 2},
		{SLT, UnitIntALU, 1, 2},
		{SLL, UnitShifter, 1, 2},
		{SRAI, UnitShifter, 1, 2},
		{MUL, UnitIntMul, 1, 6},
		{DIV, UnitIntMul, 1, 6},
		{FADD, UnitFPAdd, 1, 4},
		{FSUB, UnitFPAdd, 1, 4},
		{FLT, UnitFPAdd, 1, 4},
		{FABS, UnitFPAdd, 1, 2},
		{FNEG, UnitFPAdd, 1, 2},
		{FMUL, UnitFPMul, 1, 6},
		{FDIV, UnitFPDiv, 1, 12},
		{LW, UnitLoadStore, 2, 4},
		{SW, UnitLoadStore, 2, 2},
		{FLW, UnitLoadStore, 2, 4},
		{FSW, UnitLoadStore, 2, 2},
	}
	for _, c := range cases {
		if c.op.Unit() != c.unit {
			t.Errorf("%s: unit = %s, want %s", c.op, c.op.Unit(), c.unit)
		}
		if c.op.IssueLatency() != c.issue {
			t.Errorf("%s: issue latency = %d, want %d", c.op, c.op.IssueLatency(), c.issue)
		}
		if c.op.ResultLatency() != c.result {
			t.Errorf("%s: result latency = %d, want %d", c.op, c.op.ResultLatency(), c.result)
		}
	}
}

func TestOpcodePredicates(t *testing.T) {
	if !LW.IsLoad() || !FLW.IsLoad() || SW.IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !SW.IsStore() || !FSWP.IsStore() || LW.IsStore() {
		t.Error("IsStore misclassifies")
	}
	for _, op := range []Opcode{BEQ, BNE, BEQZ, BNEZ, BLTZ, BGEZ, J, JAL, JR} {
		if !op.IsBranch() {
			t.Errorf("%s: IsBranch = false", op)
		}
	}
	if J.IsConditionalBranch() || JR.IsConditionalBranch() || JAL.IsConditionalBranch() {
		t.Error("unconditional jumps misreported as conditional")
	}
	if !BEQ.IsConditionalBranch() || !BGEZ.IsConditionalBranch() {
		t.Error("conditional branches misreported")
	}
	for _, op := range []Opcode{CHGPRI, KILL, SWP, FSWP} {
		if !op.NeedsHighestPriority() {
			t.Errorf("%s: NeedsHighestPriority = false", op)
		}
	}
	if ADD.NeedsHighestPriority() || SW.NeedsHighestPriority() {
		t.Error("ordinary instructions flagged as priority-interlocked")
	}
}

// randInstruction builds a random valid instruction for property tests.
func randInstruction(rng *rand.Rand) Instruction {
	for {
		op := Opcode(rng.Intn(NumOpcodes))
		in := Instruction{Op: op, Rd: NoReg, Rs1: NoReg, Rs2: NoReg}
		ir := func() Reg { return IntReg(rng.Intn(NumIntRegs)) }
		fr := func() Reg { return FPReg(rng.Intn(NumFPRegs)) }
		pick := func(fp bool) Reg {
			if fp {
				return fr()
			}
			return ir()
		}
		fpOps := in.fpOperands()
		lo, hi := immRange(op)
		imm := lo + int32(rng.Int63n(int64(hi)-int64(lo)+1))
		switch op.Fmt() {
		case FmtR:
			in.Rd = pick(opTable[op].writesFP)
			in.Rs1, in.Rs2 = pick(fpOps), pick(fpOps)
		case FmtR2:
			in.Rd = pick(opTable[op].writesFP)
			in.Rs1 = pick(fpOps)
		case FmtI:
			in.Rd, in.Rs1, in.Imm = ir(), ir(), imm
		case FmtLI:
			in.Rd, in.Imm = ir(), imm
		case FmtLd:
			in.Rd = pick(op == FLW)
			in.Rs1, in.Imm = ir(), imm
		case FmtSt:
			in.Rs1 = ir()
			in.Rs2 = pick(op == FSW || op == FSWP)
			in.Imm = imm
		case FmtB:
			in.Rs1, in.Imm = ir(), imm
			if op == BEQ || op == BNE {
				in.Rs2 = ir()
			}
		case FmtJ:
			in.Imm = imm
			if op == JAL {
				in.Rd = ir()
			}
		case FmtJR:
			in.Rs1 = ir()
		case FmtQ:
			fp := op == QENF
			in.Rs1, in.Rs2 = pick(fp), pick(fp)
			if in.Rs1 == in.Rs2 {
				continue
			}
		case FmtTID:
			in.Rd = ir()
		}
		if err := in.Validate(); err != nil {
			panic("randInstruction built invalid instruction: " + err.Error())
		}
		return in
	}
}

// TestEncodeDecodeRoundTrip is the core property: Decode(Encode(x)) == x for
// every valid instruction.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		in := randInstruction(rng)
		w, err := Encode(in)
		if err != nil {
			t.Logf("Encode(%v): %v", in, err)
			return false
		}
		out, err := Decode(w)
		if err != nil {
			t.Logf("Decode(%v): %v", in, err)
			return false
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestProgramEncodeRoundTrip checks the byte-level program codec.
func TestProgramEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prog := make([]Instruction, 200)
	for i := range prog {
		prog[i] = randInstruction(rng)
	}
	buf, err := EncodeProgram(prog)
	if err != nil {
		t.Fatalf("EncodeProgram: %v", err)
	}
	if len(buf) != 4*len(prog) {
		t.Fatalf("encoded length = %d, want %d", len(buf), 4*len(prog))
	}
	out, err := DecodeProgram(buf)
	if err != nil {
		t.Fatalf("DecodeProgram: %v", err)
	}
	for i := range prog {
		if out[i] != prog[i] {
			t.Fatalf("instruction %d: got %v, want %v", i, out[i], prog[i])
		}
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	if _, err := Decode(Word(uint32(numOpcodes) << 24)); err == nil {
		t.Error("Decode accepted invalid opcode")
	}
	if _, err := Decode(Word(0xFF << 24)); err == nil {
		t.Error("Decode accepted opcode 255")
	}
	if _, err := DecodeProgram([]byte{1, 2, 3}); err == nil {
		t.Error("DecodeProgram accepted misaligned input")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Instruction{
		{Op: ADD, Rd: F1, Rs1: R1, Rs2: R2},           // wrong dest class
		{Op: ADD, Rd: R1, Rs1: F1, Rs2: R2},           // wrong source class
		{Op: FADD, Rd: R1, Rs1: F1, Rs2: F2},          // FP op writing int reg
		{Op: ADDI, Rd: R1, Rs1: R2, Imm: immSMax + 1}, // imm overflow
		{Op: BEQZ, Rs1: R1, Imm: -1},                  // negative branch target
		{Op: J, Imm: immUMax + 1},                     // jump target overflow
		{Op: LW, Rd: F1, Rs1: R1},                     // LW to FP reg
		{Op: FLW, Rd: R1, Rs1: R1},                    // FLW to int reg
		{Op: QEN, Rs1: R5, Rs2: R5},                   // identical queue maps
		{Op: QENF, Rs1: R5, Rs2: R6},                  // int regs on QENF
		{Op: ADD, Rd: NoReg, Rs1: R1, Rs2: R2},        // missing dest
		{Op: Opcode(200), Rd: R1},                     // invalid opcode
		{Op: SW, Rs1: R1, Rs2: F1},                    // FP value on SW
		{Op: FSW, Rs1: R1, Rs2: R2},                   // int value on FSW
		{Op: TID, Rd: F3},                             // TID to FP reg
		{Op: BEQ, Rs1: R1, Rs2: F1, Imm: 0},           // FP condition reg
		{Op: JR, Rs1: F1},                             // FP jump target
		{Op: SLLI, Rd: R1, Rs1: R2, Imm: immSMin - 1}, // imm underflow
		{Op: JAL, Rd: NoReg, Imm: 4},                  // missing link reg
		{Op: ITOF, Rd: R1, Rs1: R2},                   // ITOF writes FP
		{Op: FTOI, Rd: F1, Rs1: F2},                   // FTOI writes int
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("Validate(%+v) succeeded, want error", in)
		}
	}
}

func TestSourcesAndDest(t *testing.T) {
	cases := []struct {
		in   Instruction
		srcs []Reg
		dest Reg
	}{
		{Instruction{Op: ADD, Rd: R1, Rs1: R2, Rs2: R3}, []Reg{R2, R3}, R1},
		{Instruction{Op: LW, Rd: R1, Rs1: R2, Imm: 4}, []Reg{R2}, R1},
		{Instruction{Op: SW, Rs1: R2, Rs2: R3, Imm: 4}, []Reg{R2, R3}, NoReg},
		{Instruction{Op: BEQ, Rs1: R2, Rs2: R3, Imm: 4}, []Reg{R2, R3}, NoReg},
		{Instruction{Op: BEQZ, Rs1: R2, Imm: 4}, []Reg{R2}, NoReg},
		{Instruction{Op: FADD, Rd: F1, Rs1: F2, Rs2: F3}, []Reg{F2, F3}, F1},
		{Instruction{Op: FTOI, Rd: R1, Rs1: F2}, []Reg{F2}, R1},
		{Instruction{Op: JR, Rs1: R31}, []Reg{R31}, NoReg},
		{Instruction{Op: JAL, Rd: R31, Imm: 10}, nil, R31},
		{Instruction{Op: TID, Rd: R9}, nil, R9},
		{Nop(), nil, NoReg},
	}
	for _, c := range cases {
		got := c.in.Sources(nil)
		if len(got) != len(c.srcs) {
			t.Errorf("%v: sources = %v, want %v", c.in, got, c.srcs)
			continue
		}
		for i := range got {
			if got[i] != c.srcs[i] {
				t.Errorf("%v: sources = %v, want %v", c.in, got, c.srcs)
			}
		}
		if d := c.in.Dest(); d != c.dest {
			t.Errorf("%v: dest = %v, want %v", c.in, d, c.dest)
		}
	}
}

func TestInstructionString(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: ADD, Rd: R1, Rs1: R2, Rs2: R3}, "add r1, r2, r3"},
		{Instruction{Op: ADDI, Rd: R1, Rs1: R0, Imm: -7}, "addi r1, r0, -7"},
		{Instruction{Op: LW, Rd: R4, Rs1: R5, Imm: 16}, "lw r4, 16(r5)"},
		{Instruction{Op: FSW, Rs1: R5, Rs2: F6, Imm: -8}, "fsw f6, -8(r5)"},
		{Instruction{Op: BEQ, Rs1: R1, Rs2: R2, Imm: 12}, "beq r1, r2, 12"},
		{Instruction{Op: BNEZ, Rs1: R1, Imm: 3}, "bnez r1, 3"},
		{Instruction{Op: J, Imm: 100}, "j 100"},
		{Instruction{Op: JAL, Rd: R31, Imm: 100}, "jal r31, 100"},
		{Instruction{Op: FMUL, Rd: F1, Rs1: F2, Rs2: F3}, "fmul f1, f2, f3"},
		{Instruction{Op: FSQRT, Rd: F1, Rs1: F2}, "fsqrt f1, f2"},
		{Instruction{Op: QEN, Rs1: R30, Rs2: R31}, "qen r30, r31"},
		{Instruction{Op: TID, Rd: R10}, "tid r10"},
		{Instruction{Op: HALT}, "halt"},
		{Nop(), "nop"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestUnitClassString(t *testing.T) {
	names := map[UnitClass]string{
		UnitNone: "decode", UnitIntALU: "IntALU", UnitShifter: "Shifter",
		UnitIntMul: "IntMul", UnitFPAdd: "FPAdd", UnitFPMul: "FPMul",
		UnitFPDiv: "FPDiv", UnitLoadStore: "LoadStore",
	}
	for u, want := range names {
		if u.String() != want {
			t.Errorf("UnitClass(%d).String() = %q, want %q", u, u.String(), want)
		}
	}
}

// TestEncodingGolden pins exact bit patterns so the binary format stays
// stable across refactors (traces and .bin files depend on it).
func TestEncodingGolden(t *testing.T) {
	cases := []struct {
		in   Instruction
		want uint32
	}{
		// add r1, r2, r3: op=1, rd=1, rs1=2, rs2=3
		{Instruction{Op: ADD, Rd: R1, Rs1: R2, Rs2: R3}, 1<<24 | 1<<19 | 2<<14 | 3<<9},
		// addi r1, r0, -1: imm field = 0x3FFF
		{Instruction{Op: ADDI, Rd: R1, Rs1: R0, Rs2: NoReg, Imm: -1}, uint32(ADDI)<<24 | 1<<19 | 0x3FFF},
		// lw r4, 8(r5)
		{Instruction{Op: LW, Rd: R4, Rs1: R5, Rs2: NoReg, Imm: 8}, uint32(LW)<<24 | 4<<19 | 5<<14 | 8},
		// sw r3, 2(r1): rs1 in the first field, rs2 in the second
		{Instruction{Op: SW, Rs1: R1, Rs2: R3, Rd: NoReg, Imm: 2}, uint32(SW)<<24 | 1<<19 | 3<<14 | 2},
		// beqz r7, 100
		{Instruction{Op: BEQZ, Rs1: R7, Rs2: NoReg, Rd: NoReg, Imm: 100}, uint32(BEQZ)<<24 | 7<<19 | 31<<14 | 100},
		// fadd f1, f2, f3: register indices, class implied
		{Instruction{Op: FADD, Rd: F1, Rs1: F2, Rs2: F3}, uint32(FADD)<<24 | 1<<19 | 2<<14 | 3<<9},
		// halt: all register fields padded
		{Instruction{Op: HALT, Rd: NoReg, Rs1: NoReg, Rs2: NoReg}, uint32(HALT)<<24 | 31<<19 | 31<<14 | 31<<9},
	}
	for _, c := range cases {
		w, err := Encode(c.in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", c.in, err)
		}
		if uint32(w) != c.want {
			t.Errorf("Encode(%v) = %#08x, want %#08x", c.in, uint32(w), c.want)
		}
	}
}
