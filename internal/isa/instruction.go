package isa

import (
	"fmt"
	"strings"
)

// Instruction is one decoded machine instruction.
//
// Operand use depends on the opcode's Format:
//
//	FmtR    Rd = op(Rs1, Rs2)
//	FmtR2   Rd = op(Rs1)
//	FmtI    Rd = op(Rs1, Imm)
//	FmtLI   Rd = op(Imm)
//	FmtLd   Rd = mem[Rs1+Imm]
//	FmtSt   mem[Rs1+Imm] = Rs2
//	FmtB    branch on Rs1 (and Rs2 for beq/bne) to word address Imm
//	FmtJ    jump to word address Imm (Rd is the link register for jal)
//	FmtJR   jump to address in Rs1
//	FmtQ    queue mapping: Rs1 = read-mapped register, Rs2 = write-mapped
//	FmtTID  Rd = thread identifier
//	FmtN    no operands
type Instruction struct {
	Op  Opcode
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int32
}

// Nop is the canonical no-operation instruction.
func Nop() Instruction {
	return Instruction{Op: NOP, Rd: NoReg, Rs1: NoReg, Rs2: NoReg}
}

// Dest returns the destination register of the instruction, or NoReg if it
// writes no register.
func (in Instruction) Dest() Reg {
	if opTable[in.Op].writesInt || opTable[in.Op].writesFP {
		return in.Rd
	}
	return NoReg
}

// Sources appends the source registers read by the instruction to dst and
// returns the extended slice. Branch condition registers count as sources.
func (in Instruction) Sources(dst []Reg) []Reg {
	switch in.Op.Fmt() {
	case FmtR:
		dst = append(dst, in.Rs1, in.Rs2)
	case FmtR2, FmtI, FmtLd:
		dst = append(dst, in.Rs1)
	case FmtSt:
		dst = append(dst, in.Rs1, in.Rs2)
	case FmtB:
		if in.Op == BEQ || in.Op == BNE {
			dst = append(dst, in.Rs1, in.Rs2)
		} else {
			dst = append(dst, in.Rs1)
		}
	case FmtJR:
		dst = append(dst, in.Rs1)
	}
	return dst
}

// Validate checks that the instruction's operands are consistent with its
// opcode's format: register classes, immediate range, and register validity.
func (in Instruction) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %d", uint8(in.Op))
	}
	chk := func(r Reg, wantFP bool, what string) error {
		if !r.Valid() {
			return fmt.Errorf("isa: %s: missing %s register", in.Op, what)
		}
		if r.IsFP() != wantFP {
			return fmt.Errorf("isa: %s: %s register %s has wrong class", in.Op, what, r)
		}
		return nil
	}
	fpOperands := in.fpOperands()
	switch in.Op.Fmt() {
	case FmtR:
		if err := chk(in.Rd, opTable[in.Op].writesFP, "destination"); err != nil {
			return err
		}
		if err := chk(in.Rs1, fpOperands, "first source"); err != nil {
			return err
		}
		return chk(in.Rs2, fpOperands, "second source")
	case FmtR2:
		if err := chk(in.Rd, opTable[in.Op].writesFP, "destination"); err != nil {
			return err
		}
		return chk(in.Rs1, fpOperands, "source")
	case FmtI, FmtLI:
		if err := chk(in.Rd, false, "destination"); err != nil {
			return err
		}
		if in.Op.Fmt() == FmtI {
			if err := chk(in.Rs1, false, "source"); err != nil {
				return err
			}
		}
		return in.checkImm()
	case FmtLd:
		if err := chk(in.Rd, in.Op == FLW, "destination"); err != nil {
			return err
		}
		if err := chk(in.Rs1, false, "base"); err != nil {
			return err
		}
		return in.checkImm()
	case FmtSt:
		if err := chk(in.Rs2, in.Op == FSW || in.Op == FSWP, "value"); err != nil {
			return err
		}
		if err := chk(in.Rs1, false, "base"); err != nil {
			return err
		}
		return in.checkImm()
	case FmtB:
		if err := chk(in.Rs1, false, "condition"); err != nil {
			return err
		}
		if in.Op == BEQ || in.Op == BNE {
			if err := chk(in.Rs2, false, "second condition"); err != nil {
				return err
			}
		}
		return in.checkImm()
	case FmtJ:
		if in.Op == JAL {
			if err := chk(in.Rd, false, "link"); err != nil {
				return err
			}
		}
		return in.checkImm()
	case FmtJR:
		return chk(in.Rs1, false, "target")
	case FmtQ:
		wantFP := in.Op == QENF
		if err := chk(in.Rs1, wantFP, "read-mapped"); err != nil {
			return err
		}
		if err := chk(in.Rs2, wantFP, "write-mapped"); err != nil {
			return err
		}
		if in.Rs1 == in.Rs2 {
			return fmt.Errorf("isa: %s: read- and write-mapped registers must differ", in.Op)
		}
		return nil
	case FmtTID:
		return chk(in.Rd, false, "destination")
	case FmtN:
		return nil
	}
	return fmt.Errorf("isa: %s: unknown format", in.Op)
}

// Same reports whether two instructions are semantically identical:
// equal opcodes and equal values in exactly the operand fields the
// opcode's format uses. Raw struct comparison (==) is wrong for this —
// unused operand slots may legitimately differ (NoReg in one encoding, a
// stale register in another) without changing the instruction's meaning.
// Use Same instead of == everywhere outside this package; the
// tools/analyzers instcompare pass enforces that.
func (in Instruction) Same(o Instruction) bool {
	if in.Op != o.Op {
		return false
	}
	switch in.Op.Fmt() {
	case FmtR:
		return in.Rd == o.Rd && in.Rs1 == o.Rs1 && in.Rs2 == o.Rs2
	case FmtR2:
		return in.Rd == o.Rd && in.Rs1 == o.Rs1
	case FmtI:
		return in.Rd == o.Rd && in.Rs1 == o.Rs1 && in.Imm == o.Imm
	case FmtLI:
		return in.Rd == o.Rd && in.Imm == o.Imm
	case FmtLd:
		return in.Rd == o.Rd && in.Rs1 == o.Rs1 && in.Imm == o.Imm
	case FmtSt:
		return in.Rs1 == o.Rs1 && in.Rs2 == o.Rs2 && in.Imm == o.Imm
	case FmtB:
		if in.Op == BEQ || in.Op == BNE {
			return in.Rs1 == o.Rs1 && in.Rs2 == o.Rs2 && in.Imm == o.Imm
		}
		return in.Rs1 == o.Rs1 && in.Imm == o.Imm
	case FmtJ:
		if in.Op == JAL {
			return in.Rd == o.Rd && in.Imm == o.Imm
		}
		return in.Imm == o.Imm
	case FmtJR:
		return in.Rs1 == o.Rs1
	case FmtQ:
		return in.Rs1 == o.Rs1 && in.Rs2 == o.Rs2
	case FmtTID:
		return in.Rd == o.Rd
	case FmtN:
		return true
	}
	return false
}

// fpOperands reports whether the instruction's Rs operands are FP registers.
func (in Instruction) fpOperands() bool {
	switch in.Op {
	case FADD, FSUB, FEQ, FLT, FLE, FTOI, FABS, FNEG, FMOV, FMUL, FDIV, FSQRT:
		return true
	}
	return false
}

// String renders the instruction in assembly syntax.
func (in Instruction) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	switch in.Op.Fmt() {
	case FmtR:
		fmt.Fprintf(&b, " %s, %s, %s", in.Rd, in.Rs1, in.Rs2)
	case FmtR2:
		fmt.Fprintf(&b, " %s, %s", in.Rd, in.Rs1)
	case FmtI:
		fmt.Fprintf(&b, " %s, %s, %d", in.Rd, in.Rs1, in.Imm)
	case FmtLI:
		fmt.Fprintf(&b, " %s, %d", in.Rd, in.Imm)
	case FmtLd:
		fmt.Fprintf(&b, " %s, %d(%s)", in.Rd, in.Imm, in.Rs1)
	case FmtSt:
		fmt.Fprintf(&b, " %s, %d(%s)", in.Rs2, in.Imm, in.Rs1)
	case FmtB:
		if in.Op == BEQ || in.Op == BNE {
			fmt.Fprintf(&b, " %s, %s, %d", in.Rs1, in.Rs2, in.Imm)
		} else {
			fmt.Fprintf(&b, " %s, %d", in.Rs1, in.Imm)
		}
	case FmtJ:
		if in.Op == JAL {
			fmt.Fprintf(&b, " %s, %d", in.Rd, in.Imm)
		} else {
			fmt.Fprintf(&b, " %d", in.Imm)
		}
	case FmtJR:
		fmt.Fprintf(&b, " %s", in.Rs1)
	case FmtQ:
		fmt.Fprintf(&b, " %s, %s", in.Rs1, in.Rs2)
	case FmtTID:
		fmt.Fprintf(&b, " %s", in.Rd)
	case FmtN:
	}
	return b.String()
}

// checkImm validates the immediate range for the instruction's encoding.
func (in Instruction) checkImm() error {
	lo, hi := immRange(in.Op)
	if in.Imm < lo || in.Imm > hi {
		return fmt.Errorf("isa: %s: immediate %d outside encodable range [%d, %d]", in.Op, in.Imm, lo, hi)
	}
	return nil
}
