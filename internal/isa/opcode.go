package isa

import "fmt"

// UnitClass identifies a class of functional unit. Instructions are
// dispatched by the instruction schedule units to a functional unit of the
// class returned by Opcode.Unit. Branches and the special multithreading
// instructions execute inside the decode unit and have class UnitNone.
type UnitClass uint8

// Functional-unit classes of the paper's machine (Figure 2 / Table 1).
const (
	UnitNone      UnitClass = iota // executes in the decode unit
	UnitIntALU                     // integer add/subtract, logical, compare
	UnitShifter                    // barrel shifter
	UnitIntMul                     // integer multiplier (mul/div/rem)
	UnitFPAdd                      // FP adder (add/sub/compare/abs/neg/convert)
	UnitFPMul                      // FP multiplier
	UnitFPDiv                      // FP divider (div/sqrt)
	UnitLoadStore                  // load/store unit

	NumUnitClasses = int(UnitLoadStore) // count of real FU classes (UnitNone excluded)
)

// String returns the conventional name of the unit class.
func (u UnitClass) String() string {
	switch u {
	case UnitNone:
		return "decode"
	case UnitIntALU:
		return "IntALU"
	case UnitShifter:
		return "Shifter"
	case UnitIntMul:
		return "IntMul"
	case UnitFPAdd:
		return "FPAdd"
	case UnitFPMul:
		return "FPMul"
	case UnitFPDiv:
		return "FPDiv"
	case UnitLoadStore:
		return "LoadStore"
	}
	return fmt.Sprintf("UnitClass(%d)", uint8(u))
}

// Opcode enumerates every machine instruction.
type Opcode uint8

// Instruction opcodes, grouped by functional unit.
const (
	NOP Opcode = iota

	// Integer ALU (issue 1, result 2).
	ADD  // rd = rs1 + rs2
	SUB  // rd = rs1 - rs2
	AND  // rd = rs1 & rs2
	OR   // rd = rs1 | rs2
	XOR  // rd = rs1 ^ rs2
	SLT  // rd = rs1 < rs2 ? 1 : 0
	SEQ  // rd = rs1 == rs2 ? 1 : 0
	SNE  // rd = rs1 != rs2 ? 1 : 0
	SGE  // rd = rs1 >= rs2 ? 1 : 0
	ADDI // rd = rs1 + imm
	ANDI // rd = rs1 & imm
	ORI  // rd = rs1 | imm
	XORI // rd = rs1 ^ imm
	SLTI // rd = rs1 < imm ? 1 : 0
	LIH  // rd = imm << 14 (load immediate high)

	// Barrel shifter (issue 1, result 2).
	SLL  // rd = rs1 << rs2
	SRL  // rd = uint(rs1) >> rs2
	SRA  // rd = rs1 >> rs2
	SLLI // rd = rs1 << imm
	SRLI // rd = uint(rs1) >> imm
	SRAI // rd = rs1 >> imm

	// Integer multiplier (issue 1, result 6).
	MUL // rd = rs1 * rs2
	DIV // rd = rs1 / rs2
	REM // rd = rs1 % rs2

	// FP adder (issue 1, result 4; abs/neg/mov result 2).
	FADD // fd = fs1 + fs2
	FSUB // fd = fs1 - fs2
	FEQ  // rd = fs1 == fs2 ? 1 : 0  (integer destination)
	FLT  // rd = fs1 <  fs2 ? 1 : 0
	FLE  // rd = fs1 <= fs2 ? 1 : 0
	ITOF // fd = float(rs1)
	FTOI // rd = int(fs1), truncating
	FABS // fd = |fs1|
	FNEG // fd = -fs1
	FMOV // fd = fs1

	// FP multiplier (issue 1, result 6).
	FMUL // fd = fs1 * fs2

	// FP divider (issue 1, result 12).
	FDIV  // fd = fs1 / fs2
	FSQRT // fd = sqrt(fs1)

	// Load/store unit (issue 2; load result 4, store result 2).
	LW  // rd = mem[rs1 + imm]
	SW  // mem[rs1 + imm] = rs2
	FLW // fd = mem[rs1 + imm]
	FSW // mem[rs1 + imm] = fs2
	SWP // like SW, but interlocks until this thread has highest priority
	FSWP

	// Branches and jumps (executed within the decode unit).
	BEQ  // if rs1 == rs2 goto imm
	BNE  // if rs1 != rs2 goto imm
	BEQZ // if rs1 == 0 goto imm
	BNEZ // if rs1 != 0 goto imm
	BLTZ // if rs1 < 0 goto imm
	BGEZ // if rs1 >= 0 goto imm
	J    // goto imm
	JAL  // rd = pc+1; goto imm
	JR   // goto rs1

	// Special multithreading instructions (executed within the decode unit).
	HALT   // stop this logical processor
	FFORK  // start all other thread slots at pc+1 with unique TIDs
	TID    // rd = logical processor identifier
	CHGPRI // rotate thread priorities (interlocks until highest priority)
	KILL   // kill all other running threads (interlocks until highest priority)
	QEN    // map integer queue registers: reads of rs1 pop, writes of rs2 push
	QENF   // map FP queue registers likewise
	QDIS   // unmap all queue registers of this logical processor
	SETMODE

	numOpcodes
)

// NumOpcodes is the count of defined opcodes.
const NumOpcodes = int(numOpcodes)

// opInfo is the static description of one opcode.
type opInfo struct {
	name      string
	unit      UnitClass
	format    Format
	issueLat  int
	resultLat int
	writesInt bool // destination is an integer register
	writesFP  bool // destination is an FP register
}

// Format describes operand layout for encoding and assembly syntax.
type Format uint8

// Instruction formats.
const (
	FmtR   Format = iota // op rd, rs1, rs2
	FmtR2                // op rd, rs1 (unary)
	FmtI                 // op rd, rs1, imm
	FmtLI                // op rd, imm (load immediate style)
	FmtLd                // op rd, imm(rs1)
	FmtSt                // op rs2, imm(rs1)
	FmtB                 // op rs1, [rs2,] imm (branch to absolute word address)
	FmtJ                 // op imm
	FmtJR                // op rs1
	FmtN                 // op (no operands)
	FmtQ                 // op rs1, rs2 (queue-register mapping)
	FmtTID               // op rd
)

var opTable = [NumOpcodes]opInfo{
	NOP: {"nop", UnitNone, FmtN, 1, 1, false, false},

	ADD:  {"add", UnitIntALU, FmtR, 1, 2, true, false},
	SUB:  {"sub", UnitIntALU, FmtR, 1, 2, true, false},
	AND:  {"and", UnitIntALU, FmtR, 1, 2, true, false},
	OR:   {"or", UnitIntALU, FmtR, 1, 2, true, false},
	XOR:  {"xor", UnitIntALU, FmtR, 1, 2, true, false},
	SLT:  {"slt", UnitIntALU, FmtR, 1, 2, true, false},
	SEQ:  {"seq", UnitIntALU, FmtR, 1, 2, true, false},
	SNE:  {"sne", UnitIntALU, FmtR, 1, 2, true, false},
	SGE:  {"sge", UnitIntALU, FmtR, 1, 2, true, false},
	ADDI: {"addi", UnitIntALU, FmtI, 1, 2, true, false},
	ANDI: {"andi", UnitIntALU, FmtI, 1, 2, true, false},
	ORI:  {"ori", UnitIntALU, FmtI, 1, 2, true, false},
	XORI: {"xori", UnitIntALU, FmtI, 1, 2, true, false},
	SLTI: {"slti", UnitIntALU, FmtI, 1, 2, true, false},
	LIH:  {"lih", UnitIntALU, FmtLI, 1, 2, true, false},

	SLL:  {"sll", UnitShifter, FmtR, 1, 2, true, false},
	SRL:  {"srl", UnitShifter, FmtR, 1, 2, true, false},
	SRA:  {"sra", UnitShifter, FmtR, 1, 2, true, false},
	SLLI: {"slli", UnitShifter, FmtI, 1, 2, true, false},
	SRLI: {"srli", UnitShifter, FmtI, 1, 2, true, false},
	SRAI: {"srai", UnitShifter, FmtI, 1, 2, true, false},

	MUL: {"mul", UnitIntMul, FmtR, 1, 6, true, false},
	DIV: {"div", UnitIntMul, FmtR, 1, 6, true, false},
	REM: {"rem", UnitIntMul, FmtR, 1, 6, true, false},

	FADD: {"fadd", UnitFPAdd, FmtR, 1, 4, false, true},
	FSUB: {"fsub", UnitFPAdd, FmtR, 1, 4, false, true},
	FEQ:  {"feq", UnitFPAdd, FmtR, 1, 4, true, false},
	FLT:  {"flt", UnitFPAdd, FmtR, 1, 4, true, false},
	FLE:  {"fle", UnitFPAdd, FmtR, 1, 4, true, false},
	ITOF: {"itof", UnitFPAdd, FmtR2, 1, 4, false, true},
	FTOI: {"ftoi", UnitFPAdd, FmtR2, 1, 4, true, false},
	FABS: {"fabs", UnitFPAdd, FmtR2, 1, 2, false, true},
	FNEG: {"fneg", UnitFPAdd, FmtR2, 1, 2, false, true},
	FMOV: {"fmov", UnitFPAdd, FmtR2, 1, 2, false, true},

	FMUL: {"fmul", UnitFPMul, FmtR, 1, 6, false, true},

	FDIV:  {"fdiv", UnitFPDiv, FmtR, 1, 12, false, true},
	FSQRT: {"fsqrt", UnitFPDiv, FmtR2, 1, 12, false, true},

	LW:   {"lw", UnitLoadStore, FmtLd, 2, 4, true, false},
	SW:   {"sw", UnitLoadStore, FmtSt, 2, 2, false, false},
	FLW:  {"flw", UnitLoadStore, FmtLd, 2, 4, false, true},
	FSW:  {"fsw", UnitLoadStore, FmtSt, 2, 2, false, false},
	SWP:  {"swp", UnitLoadStore, FmtSt, 2, 2, false, false},
	FSWP: {"fswp", UnitLoadStore, FmtSt, 2, 2, false, false},

	BEQ:  {"beq", UnitNone, FmtB, 1, 1, false, false},
	BNE:  {"bne", UnitNone, FmtB, 1, 1, false, false},
	BEQZ: {"beqz", UnitNone, FmtB, 1, 1, false, false},
	BNEZ: {"bnez", UnitNone, FmtB, 1, 1, false, false},
	BLTZ: {"bltz", UnitNone, FmtB, 1, 1, false, false},
	BGEZ: {"bgez", UnitNone, FmtB, 1, 1, false, false},
	J:    {"j", UnitNone, FmtJ, 1, 1, false, false},
	JAL:  {"jal", UnitNone, FmtJ, 1, 1, true, false},
	JR:   {"jr", UnitNone, FmtJR, 1, 1, false, false},

	HALT:    {"halt", UnitNone, FmtN, 1, 1, false, false},
	FFORK:   {"ffork", UnitNone, FmtN, 1, 1, false, false},
	TID:     {"tid", UnitNone, FmtTID, 1, 1, true, false},
	CHGPRI:  {"chgpri", UnitNone, FmtN, 1, 1, false, false},
	KILL:    {"kill", UnitNone, FmtN, 1, 1, false, false},
	QEN:     {"qen", UnitNone, FmtQ, 1, 1, false, false},
	QENF:    {"qenf", UnitNone, FmtQ, 1, 1, false, false},
	QDIS:    {"qdis", UnitNone, FmtN, 1, 1, false, false},
	SETMODE: {"setmode", UnitNone, FmtJ, 1, 1, false, false},
}

// String returns the assembly mnemonic of the opcode.
func (op Opcode) String() string {
	if int(op) < NumOpcodes {
		return opTable[op].name
	}
	return fmt.Sprintf("Opcode(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return int(op) < NumOpcodes }

// Unit returns the functional-unit class that executes op.
func (op Opcode) Unit() UnitClass { return opTable[op].unit }

// Fmt returns the operand format of op.
func (op Opcode) Fmt() Format { return opTable[op].format }

// IssueLatency returns the number of cycles before the functional unit can
// accept another instruction of this class (Table 1, "issue" column).
func (op Opcode) IssueLatency() int { return opTable[op].issueLat }

// ResultLatency returns the number of execution cycles before the result is
// available (Table 1, "result" column).
func (op Opcode) ResultLatency() int { return opTable[op].resultLat }

// IsBranch reports whether op is a branch or jump, executed in the decode
// unit and redirecting the instruction fetch stream.
func (op Opcode) IsBranch() bool {
	switch op {
	case BEQ, BNE, BEQZ, BNEZ, BLTZ, BGEZ, J, JAL, JR:
		return true
	}
	return false
}

// IsConditionalBranch reports whether op is a conditional branch.
func (op Opcode) IsConditionalBranch() bool {
	switch op {
	case BEQ, BNE, BEQZ, BNEZ, BLTZ, BGEZ:
		return true
	}
	return false
}

// IsMem reports whether op accesses data memory.
func (op Opcode) IsMem() bool { return opTable[op].unit == UnitLoadStore }

// IsLoad reports whether op reads data memory.
func (op Opcode) IsLoad() bool { return op == LW || op == FLW }

// IsStore reports whether op writes data memory.
func (op Opcode) IsStore() bool {
	switch op {
	case SW, FSW, SWP, FSWP:
		return true
	}
	return false
}

// NeedsHighestPriority reports whether the decode unit must interlock this
// instruction until its thread slot holds the highest priority (the paper's
// change-priority, kill, and special-store instructions).
func (op Opcode) NeedsHighestPriority() bool {
	switch op {
	case CHGPRI, KILL, SWP, FSWP:
		return true
	}
	return false
}

// WritesInt reports whether op writes an integer destination register.
func (op Opcode) WritesInt() bool { return opTable[op].writesInt }

// WritesFP reports whether op writes a floating-point destination register.
func (op Opcode) WritesFP() bool { return opTable[op].writesFP }

// OpcodeByName returns the opcode with the given assembly mnemonic.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opByName[name]
	return op, ok
}

var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		m[opTable[op].name] = op
	}
	return m
}()
