// Package isa defines the instruction set architecture of the elementary
// multithreaded processor described in Hirata et al. (ISCA 1992): the
// register model, opcodes, functional-unit classes, issue/result latencies
// (Table 1 of the paper), and a 32-bit binary encoding.
//
// The ISA is a load/store RISC with 32 general-purpose integer registers and
// 32 floating-point registers per register bank. Register r0 is hardwired to
// zero. A handful of special instructions support the paper's multithreading
// model: fast-fork, change-priority, kill, priority stores, and queue-register
// mapping.
package isa

import (
	"fmt"
	"strconv"
)

// NumIntRegs and NumFPRegs give the size of each register file in a bank.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
)

// Reg identifies an architectural register. Values 0..31 name integer
// registers r0..r31; values 32..63 name floating-point registers f0..f31.
// The zero value is r0, the hardwired-zero integer register.
type Reg uint8

// Integer register names.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	R30
	R31
)

// Floating-point register names.
const (
	F0 Reg = iota + fpBase
	F1
	F2
	F3
	F4
	F5
	F6
	F7
	F8
	F9
	F10
	F11
	F12
	F13
	F14
	F15
	F16
	F17
	F18
	F19
	F20
	F21
	F22
	F23
	F24
	F25
	F26
	F27
	F28
	F29
	F30
	F31
)

const fpBase Reg = 32

// NoReg marks an unused register operand slot in an Instruction.
const NoReg Reg = 255

// IntReg returns the integer register with the given index (0..31).
func IntReg(i int) Reg {
	if i < 0 || i >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register index %d out of range", i))
	}
	return Reg(i)
}

// FPReg returns the floating-point register with the given index (0..31).
func FPReg(i int) Reg {
	if i < 0 || i >= NumFPRegs {
		panic(fmt.Sprintf("isa: fp register index %d out of range", i))
	}
	return fpBase + Reg(i)
}

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= fpBase && r != NoReg }

// IsInt reports whether r names an integer register.
func (r Reg) IsInt() bool { return r < fpBase }

// Valid reports whether r names an architectural register (not NoReg).
func (r Reg) Valid() bool { return r < 2*fpBase }

// Index returns the register's index within its file (0..31).
func (r Reg) Index() int {
	if !r.Valid() {
		panic("isa: Index on invalid register")
	}
	if r.IsFP() {
		return int(r - fpBase)
	}
	return int(r)
}

// String renders the register in assembly syntax ("r7", "f12").
func (r Reg) String() string {
	switch {
	case r == NoReg:
		return "-"
	case r.IsFP():
		return fmt.Sprintf("f%d", r.Index())
	default:
		return fmt.Sprintf("r%d", r.Index())
	}
}

// ParseReg parses an assembly register name ("r0".."r31", "f0".."f31").
func ParseReg(s string) (Reg, error) {
	if len(s) < 2 {
		return NoReg, fmt.Errorf("isa: invalid register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil {
		return NoReg, fmt.Errorf("isa: invalid register %q", s)
	}
	switch s[0] {
	case 'r', 'R':
		if n < 0 || n >= NumIntRegs {
			return NoReg, fmt.Errorf("isa: integer register %q out of range", s)
		}
		return IntReg(n), nil
	case 'f', 'F':
		if n < 0 || n >= NumFPRegs {
			return NoReg, fmt.Errorf("isa: fp register %q out of range", s)
		}
		return FPReg(n), nil
	}
	return NoReg, fmt.Errorf("isa: invalid register %q", s)
}
