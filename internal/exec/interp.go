package exec

import (
	"fmt"
	"math"

	"hirata/internal/isa"
	"hirata/internal/mem"
)

// Interp is a plain functional interpreter for single-threaded programs: no
// pipeline, no timing, one instruction per step. It serves as the golden
// reference model against which both timing simulators (internal/core and
// internal/risc) are cross-checked, and as the quick way to compute expected
// results in tests and workload generators.
//
// The multithreading opcodes are rejected (FFORK, CHGPRI, KILL, QEN, QENF,
// QDIS); SETMODE and the priority stores degrade to no-ops/plain stores, so
// single-threaded renderings of the parallel workloads still run.
type Interp struct {
	Regs RegFile
	Mem  *mem.Memory
	PC   int64

	prog    []isa.Instruction
	halted  bool
	steps   uint64
	maxStep uint64
}

// DefaultMaxSteps bounds interpreter runs to catch runaway programs.
const DefaultMaxSteps = 50_000_000

// NewInterp builds an interpreter for prog with the given data memory.
func NewInterp(prog []isa.Instruction, m *mem.Memory) *Interp {
	return &Interp{Mem: m, prog: prog, maxStep: DefaultMaxSteps}
}

// SetMaxSteps overrides the runaway-protection step bound.
func (ip *Interp) SetMaxSteps(n uint64) { ip.maxStep = n }

// interpCtx adapts Interp to the Context interface.
type interpCtx struct{ ip *Interp }

func (c interpCtx) ReadInt(r isa.Reg) int64     { return c.ip.Regs.ReadInt(r) }
func (c interpCtx) WriteInt(r isa.Reg, v int64) { c.ip.Regs.WriteInt(r, v) }
func (c interpCtx) ReadFP(r isa.Reg) float64    { return c.ip.Regs.ReadFP(r) }
func (c interpCtx) WriteFP(r isa.Reg, v float64) {
	c.ip.Regs.WriteFP(r, v)
}
func (c interpCtx) Load(addr int64) (uint64, error)  { return c.ip.Mem.Load(addr) }
func (c interpCtx) Store(addr int64, v uint64) error { return c.ip.Mem.Store(addr, v) }
func (c interpCtx) TID() int                         { return 0 }

// Step executes one instruction. It reports whether the program is still
// running.
func (ip *Interp) Step() (bool, error) {
	if ip.halted {
		return false, nil
	}
	if ip.PC < 0 || ip.PC >= int64(len(ip.prog)) {
		return false, fmt.Errorf("exec: pc %d outside program of %d instructions", ip.PC, len(ip.prog))
	}
	if ip.steps >= ip.maxStep {
		return false, fmt.Errorf("exec: exceeded %d steps at pc %d (runaway program?)", ip.maxStep, ip.PC)
	}
	ip.steps++
	in := ip.prog[ip.PC]
	switch in.Op {
	case isa.FFORK, isa.CHGPRI, isa.KILL, isa.QEN, isa.QENF, isa.QDIS:
		return false, fmt.Errorf("exec: pc %d: %s requires the multithreaded machine", ip.PC, in.Op)
	}
	out, err := Execute(in, ip.PC, interpCtx{ip})
	if err != nil {
		return false, err
	}
	switch {
	case out.Effect == EffectHalt:
		ip.halted = true
		return false, nil
	case out.Effect == EffectBranch && out.Taken:
		ip.PC = out.Target
	default:
		ip.PC++
	}
	return true, nil
}

// Run executes until HALT or error.
func (ip *Interp) Run() error {
	for {
		running, err := ip.Step()
		if err != nil {
			return err
		}
		if !running {
			return nil
		}
	}
}

// Steps returns the number of instructions executed so far.
func (ip *Interp) Steps() uint64 { return ip.steps }

// Halted reports whether the program executed HALT.
func (ip *Interp) Halted() bool { return ip.halted }

func floatBits(f float64) uint64 { return math.Float64bits(f) }
