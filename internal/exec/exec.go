// Package exec implements the architectural (functional) semantics of the
// ISA, shared by the multithreaded processor model (internal/core) and the
// base RISC model (internal/risc). Both timing simulators delegate "what
// does this instruction compute" here, so the two machines provably compute
// identical results; only *when* things happen differs.
package exec

import (
	"fmt"
	"math"

	"hirata/internal/isa"
)

// Context supplies the architectural state an instruction executes against.
// The timing models implement it: the multithreaded core intercepts
// queue-register-mapped reads/writes, the RISC model is a plain register
// file. Register r0 must always read as zero; writes to r0 are ignored
// (Context implementations get this via the RegFile helper in this package).
type Context interface {
	ReadInt(r isa.Reg) int64
	WriteInt(r isa.Reg, v int64)
	ReadFP(r isa.Reg) float64
	WriteFP(r isa.Reg, v float64)
	Load(addr int64) (uint64, error)
	Store(addr int64, v uint64) error
	TID() int
}

// Effect is a control-flow or multithreading side effect requested by an
// instruction; ordinary register-writing instructions produce EffectNone.
type Effect uint8

// Instruction effects.
const (
	EffectNone Effect = iota
	EffectBranch
	EffectHalt
	EffectFork
	EffectKill
	EffectChangePriority
	EffectQueueEnable
	EffectQueueEnableFP
	EffectQueueDisable
	EffectSetMode
)

// Outcome reports what executing one instruction did beyond register/memory
// updates (which are applied directly through the Context).
type Outcome struct {
	Effect Effect
	Target int64 // branch/jump target, valid when Effect == EffectBranch
	Taken  bool  // branch outcome, valid for (conditional) branches
	Mode   int   // SETMODE operand
}

// Execute applies the instruction's architectural semantics to ctx.
// pc is the word address of the instruction (JAL links pc+1).
func Execute(in isa.Instruction, pc int64, ctx Context) (Outcome, error) {
	switch in.Op {
	case isa.NOP, isa.HALT, isa.FFORK, isa.CHGPRI, isa.KILL, isa.QDIS, isa.QEN, isa.QENF, isa.SETMODE:
		return controlOutcome(in)

	case isa.ADD:
		ctx.WriteInt(in.Rd, ctx.ReadInt(in.Rs1)+ctx.ReadInt(in.Rs2))
	case isa.SUB:
		ctx.WriteInt(in.Rd, ctx.ReadInt(in.Rs1)-ctx.ReadInt(in.Rs2))
	case isa.AND:
		ctx.WriteInt(in.Rd, ctx.ReadInt(in.Rs1)&ctx.ReadInt(in.Rs2))
	case isa.OR:
		ctx.WriteInt(in.Rd, ctx.ReadInt(in.Rs1)|ctx.ReadInt(in.Rs2))
	case isa.XOR:
		ctx.WriteInt(in.Rd, ctx.ReadInt(in.Rs1)^ctx.ReadInt(in.Rs2))
	case isa.SLT:
		ctx.WriteInt(in.Rd, b2i(ctx.ReadInt(in.Rs1) < ctx.ReadInt(in.Rs2)))
	case isa.SEQ:
		ctx.WriteInt(in.Rd, b2i(ctx.ReadInt(in.Rs1) == ctx.ReadInt(in.Rs2)))
	case isa.SNE:
		ctx.WriteInt(in.Rd, b2i(ctx.ReadInt(in.Rs1) != ctx.ReadInt(in.Rs2)))
	case isa.SGE:
		ctx.WriteInt(in.Rd, b2i(ctx.ReadInt(in.Rs1) >= ctx.ReadInt(in.Rs2)))
	case isa.ADDI:
		ctx.WriteInt(in.Rd, ctx.ReadInt(in.Rs1)+int64(in.Imm))
	case isa.ANDI:
		ctx.WriteInt(in.Rd, ctx.ReadInt(in.Rs1)&int64(in.Imm))
	case isa.ORI:
		ctx.WriteInt(in.Rd, ctx.ReadInt(in.Rs1)|int64(in.Imm))
	case isa.XORI:
		ctx.WriteInt(in.Rd, ctx.ReadInt(in.Rs1)^int64(in.Imm))
	case isa.SLTI:
		ctx.WriteInt(in.Rd, b2i(ctx.ReadInt(in.Rs1) < int64(in.Imm)))
	case isa.LIH:
		ctx.WriteInt(in.Rd, int64(in.Imm)<<14)

	case isa.SLL:
		ctx.WriteInt(in.Rd, shiftLeft(ctx.ReadInt(in.Rs1), ctx.ReadInt(in.Rs2)))
	case isa.SRL:
		ctx.WriteInt(in.Rd, shiftRightLogical(ctx.ReadInt(in.Rs1), ctx.ReadInt(in.Rs2)))
	case isa.SRA:
		ctx.WriteInt(in.Rd, shiftRightArith(ctx.ReadInt(in.Rs1), ctx.ReadInt(in.Rs2)))
	case isa.SLLI:
		ctx.WriteInt(in.Rd, shiftLeft(ctx.ReadInt(in.Rs1), int64(in.Imm)))
	case isa.SRLI:
		ctx.WriteInt(in.Rd, shiftRightLogical(ctx.ReadInt(in.Rs1), int64(in.Imm)))
	case isa.SRAI:
		ctx.WriteInt(in.Rd, shiftRightArith(ctx.ReadInt(in.Rs1), int64(in.Imm)))

	case isa.MUL:
		ctx.WriteInt(in.Rd, ctx.ReadInt(in.Rs1)*ctx.ReadInt(in.Rs2))
	case isa.DIV:
		d := ctx.ReadInt(in.Rs2)
		if d == 0 {
			return Outcome{}, fmt.Errorf("exec: pc %d: integer division by zero", pc)
		}
		ctx.WriteInt(in.Rd, ctx.ReadInt(in.Rs1)/d)
	case isa.REM:
		d := ctx.ReadInt(in.Rs2)
		if d == 0 {
			return Outcome{}, fmt.Errorf("exec: pc %d: integer remainder by zero", pc)
		}
		ctx.WriteInt(in.Rd, ctx.ReadInt(in.Rs1)%d)

	case isa.FADD:
		ctx.WriteFP(in.Rd, ctx.ReadFP(in.Rs1)+ctx.ReadFP(in.Rs2))
	case isa.FSUB:
		ctx.WriteFP(in.Rd, ctx.ReadFP(in.Rs1)-ctx.ReadFP(in.Rs2))
	case isa.FEQ:
		ctx.WriteInt(in.Rd, b2i(ctx.ReadFP(in.Rs1) == ctx.ReadFP(in.Rs2)))
	case isa.FLT:
		ctx.WriteInt(in.Rd, b2i(ctx.ReadFP(in.Rs1) < ctx.ReadFP(in.Rs2)))
	case isa.FLE:
		ctx.WriteInt(in.Rd, b2i(ctx.ReadFP(in.Rs1) <= ctx.ReadFP(in.Rs2)))
	case isa.ITOF:
		ctx.WriteFP(in.Rd, float64(ctx.ReadInt(in.Rs1)))
	case isa.FTOI:
		ctx.WriteInt(in.Rd, int64(ctx.ReadFP(in.Rs1)))
	case isa.FABS:
		ctx.WriteFP(in.Rd, math.Abs(ctx.ReadFP(in.Rs1)))
	case isa.FNEG:
		ctx.WriteFP(in.Rd, -ctx.ReadFP(in.Rs1))
	case isa.FMOV:
		ctx.WriteFP(in.Rd, ctx.ReadFP(in.Rs1))
	case isa.FMUL:
		ctx.WriteFP(in.Rd, ctx.ReadFP(in.Rs1)*ctx.ReadFP(in.Rs2))
	case isa.FDIV:
		ctx.WriteFP(in.Rd, ctx.ReadFP(in.Rs1)/ctx.ReadFP(in.Rs2))
	case isa.FSQRT:
		ctx.WriteFP(in.Rd, math.Sqrt(ctx.ReadFP(in.Rs1)))

	case isa.LW:
		v, err := ctx.Load(ctx.ReadInt(in.Rs1) + int64(in.Imm))
		if err != nil {
			return Outcome{}, fmt.Errorf("exec: pc %d: %w", pc, err)
		}
		ctx.WriteInt(in.Rd, int64(v))
	case isa.FLW:
		v, err := ctx.Load(ctx.ReadInt(in.Rs1) + int64(in.Imm))
		if err != nil {
			return Outcome{}, fmt.Errorf("exec: pc %d: %w", pc, err)
		}
		ctx.WriteFP(in.Rd, math.Float64frombits(v))
	case isa.SW, isa.SWP:
		if err := ctx.Store(ctx.ReadInt(in.Rs1)+int64(in.Imm), uint64(ctx.ReadInt(in.Rs2))); err != nil {
			return Outcome{}, fmt.Errorf("exec: pc %d: %w", pc, err)
		}
	case isa.FSW, isa.FSWP:
		if err := ctx.Store(ctx.ReadInt(in.Rs1)+int64(in.Imm), math.Float64bits(ctx.ReadFP(in.Rs2))); err != nil {
			return Outcome{}, fmt.Errorf("exec: pc %d: %w", pc, err)
		}

	case isa.BEQ:
		return branch(in, ctx.ReadInt(in.Rs1) == ctx.ReadInt(in.Rs2)), nil
	case isa.BNE:
		return branch(in, ctx.ReadInt(in.Rs1) != ctx.ReadInt(in.Rs2)), nil
	case isa.BEQZ:
		return branch(in, ctx.ReadInt(in.Rs1) == 0), nil
	case isa.BNEZ:
		return branch(in, ctx.ReadInt(in.Rs1) != 0), nil
	case isa.BLTZ:
		return branch(in, ctx.ReadInt(in.Rs1) < 0), nil
	case isa.BGEZ:
		return branch(in, ctx.ReadInt(in.Rs1) >= 0), nil
	case isa.J:
		return Outcome{Effect: EffectBranch, Target: int64(in.Imm), Taken: true}, nil
	case isa.JAL:
		ctx.WriteInt(in.Rd, pc+1)
		return Outcome{Effect: EffectBranch, Target: int64(in.Imm), Taken: true}, nil
	case isa.JR:
		return Outcome{Effect: EffectBranch, Target: ctx.ReadInt(in.Rs1), Taken: true}, nil

	case isa.TID:
		ctx.WriteInt(in.Rd, int64(ctx.TID()))

	default:
		return Outcome{}, fmt.Errorf("exec: pc %d: unimplemented opcode %s", pc, in.Op)
	}
	return Outcome{}, nil
}

// controlOutcome maps the no-computation control opcodes to their effects.
func controlOutcome(in isa.Instruction) (Outcome, error) {
	switch in.Op {
	case isa.NOP:
		return Outcome{}, nil
	case isa.HALT:
		return Outcome{Effect: EffectHalt}, nil
	case isa.FFORK:
		return Outcome{Effect: EffectFork}, nil
	case isa.CHGPRI:
		return Outcome{Effect: EffectChangePriority}, nil
	case isa.KILL:
		return Outcome{Effect: EffectKill}, nil
	case isa.QEN:
		return Outcome{Effect: EffectQueueEnable}, nil
	case isa.QENF:
		return Outcome{Effect: EffectQueueEnableFP}, nil
	case isa.QDIS:
		return Outcome{Effect: EffectQueueDisable}, nil
	case isa.SETMODE:
		return Outcome{Effect: EffectSetMode, Mode: int(in.Imm)}, nil
	}
	return Outcome{}, fmt.Errorf("exec: %s is not a control opcode", in.Op)
}

func branch(in isa.Instruction, taken bool) Outcome {
	return Outcome{Effect: EffectBranch, Target: int64(in.Imm), Taken: taken}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Shift semantics: counts are taken modulo 64; negative counts shift zero.
func shiftLeft(v, n int64) int64 {
	if n < 0 || n > 63 {
		n &= 63
	}
	return v << uint(n)
}

func shiftRightLogical(v, n int64) int64 {
	if n < 0 || n > 63 {
		n &= 63
	}
	return int64(uint64(v) >> uint(n))
}

func shiftRightArith(v, n int64) int64 {
	if n < 0 || n > 63 {
		n &= 63
	}
	return v >> uint(n)
}
