package exec

import (
	"math"
	"testing"
	"testing/quick"

	"hirata/internal/isa"
	"hirata/internal/mem"
)

// run executes a short program on a fresh interpreter and returns it.
func run(t *testing.T, prog []isa.Instruction, setup func(*Interp)) *Interp {
	t.Helper()
	ip := NewInterp(prog, mem.NewMemory(256))
	if setup != nil {
		setup(ip)
	}
	if err := ip.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return ip
}

func TestIntegerOps(t *testing.T) {
	prog := []isa.Instruction{
		{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R0, Imm: 21},
		{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R0, Imm: -4},
		{Op: isa.ADD, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R2},  // 17
		{Op: isa.SUB, Rd: isa.R4, Rs1: isa.R1, Rs2: isa.R2},  // 25
		{Op: isa.MUL, Rd: isa.R5, Rs1: isa.R1, Rs2: isa.R2},  // -84
		{Op: isa.DIV, Rd: isa.R6, Rs1: isa.R1, Rs2: isa.R2},  // -5
		{Op: isa.REM, Rd: isa.R7, Rs1: isa.R1, Rs2: isa.R2},  // 1
		{Op: isa.SLT, Rd: isa.R8, Rs1: isa.R2, Rs2: isa.R1},  // 1
		{Op: isa.SEQ, Rd: isa.R9, Rs1: isa.R1, Rs2: isa.R1},  // 1
		{Op: isa.SNE, Rd: isa.R10, Rs1: isa.R1, Rs2: isa.R1}, // 0
		{Op: isa.SGE, Rd: isa.R11, Rs1: isa.R1, Rs2: isa.R2}, // 1
		{Op: isa.ANDI, Rd: isa.R12, Rs1: isa.R1, Imm: 7},     // 5
		{Op: isa.ORI, Rd: isa.R13, Rs1: isa.R1, Imm: 8},      // 29
		{Op: isa.XORI, Rd: isa.R14, Rs1: isa.R1, Imm: 1},     // 20
		{Op: isa.SLTI, Rd: isa.R15, Rs1: isa.R1, Imm: 22},    // 1
		{Op: isa.LIH, Rd: isa.R16, Imm: 3},                   // 3<<14
		{Op: isa.HALT},
	}
	ip := run(t, prog, nil)
	want := map[isa.Reg]int64{
		isa.R3: 17, isa.R4: 25, isa.R5: -84, isa.R6: -5, isa.R7: 1,
		isa.R8: 1, isa.R9: 1, isa.R10: 0, isa.R11: 1,
		isa.R12: 5, isa.R13: 29, isa.R14: 20, isa.R15: 1, isa.R16: 3 << 14,
	}
	for r, v := range want {
		if got := ip.Regs.ReadInt(r); got != v {
			t.Errorf("%s = %d, want %d", r, got, v)
		}
	}
}

func TestShifts(t *testing.T) {
	prog := []isa.Instruction{
		{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R0, Imm: -8},
		{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R0, Imm: 2},
		{Op: isa.SLL, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.SRA, Rd: isa.R4, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.SRL, Rd: isa.R5, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.SLLI, Rd: isa.R6, Rs1: isa.R2, Imm: 10},
		{Op: isa.SRAI, Rd: isa.R7, Rs1: isa.R1, Imm: 1},
		{Op: isa.SRLI, Rd: isa.R8, Rs1: isa.R2, Imm: 1},
		{Op: isa.HALT},
	}
	ip := run(t, prog, nil)
	checks := map[isa.Reg]int64{
		isa.R3: -32,
		isa.R4: -2,
		isa.R5: int64(uint64(0xFFFFFFFFFFFFFFF8) >> 2),
		isa.R6: 2048,
		isa.R7: -4,
		isa.R8: 1,
	}
	for r, v := range checks {
		if got := ip.Regs.ReadInt(r); got != v {
			t.Errorf("%s = %d, want %d", r, got, v)
		}
	}
}

func TestFloatOps(t *testing.T) {
	prog := []isa.Instruction{
		{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R0, Imm: 9},
		{Op: isa.ITOF, Rd: isa.F1, Rs1: isa.R1},              // 9.0
		{Op: isa.FSQRT, Rd: isa.F2, Rs1: isa.F1},             // 3.0
		{Op: isa.FADD, Rd: isa.F3, Rs1: isa.F1, Rs2: isa.F2}, // 12.0
		{Op: isa.FSUB, Rd: isa.F4, Rs1: isa.F2, Rs2: isa.F1}, // -6.0
		{Op: isa.FMUL, Rd: isa.F5, Rs1: isa.F2, Rs2: isa.F2}, // 9.0
		{Op: isa.FDIV, Rd: isa.F6, Rs1: isa.F1, Rs2: isa.F2}, // 3.0
		{Op: isa.FABS, Rd: isa.F7, Rs1: isa.F4},              // 6.0
		{Op: isa.FNEG, Rd: isa.F8, Rs1: isa.F2},              // -3.0
		{Op: isa.FMOV, Rd: isa.F9, Rs1: isa.F3},              // 12.0
		{Op: isa.FTOI, Rd: isa.R2, Rs1: isa.F3},              // 12
		{Op: isa.FLT, Rd: isa.R3, Rs1: isa.F4, Rs2: isa.F2},  // 1
		{Op: isa.FLE, Rd: isa.R4, Rs1: isa.F2, Rs2: isa.F6},  // 1
		{Op: isa.FEQ, Rd: isa.R5, Rs1: isa.F1, Rs2: isa.F5},  // 1
		{Op: isa.HALT},
	}
	ip := run(t, prog, nil)
	fchecks := map[isa.Reg]float64{
		isa.F2: 3, isa.F3: 12, isa.F4: -6, isa.F5: 9, isa.F6: 3,
		isa.F7: 6, isa.F8: -3, isa.F9: 12,
	}
	for r, v := range fchecks {
		if got := ip.Regs.ReadFP(r); got != v {
			t.Errorf("%s = %g, want %g", r, got, v)
		}
	}
	ichecks := map[isa.Reg]int64{isa.R2: 12, isa.R3: 1, isa.R4: 1, isa.R5: 1}
	for r, v := range ichecks {
		if got := ip.Regs.ReadInt(r); got != v {
			t.Errorf("%s = %d, want %d", r, got, v)
		}
	}
}

func TestLoadStore(t *testing.T) {
	prog := []isa.Instruction{
		{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R0, Imm: 100}, // base
		{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R0, Imm: 55},
		{Op: isa.SW, Rs1: isa.R1, Rs2: isa.R2, Imm: 4},
		{Op: isa.LW, Rd: isa.R3, Rs1: isa.R1, Imm: 4},
		{Op: isa.ITOF, Rd: isa.F1, Rs1: isa.R2},
		{Op: isa.FSW, Rs1: isa.R1, Rs2: isa.F1, Imm: 5},
		{Op: isa.FLW, Rd: isa.F2, Rs1: isa.R1, Imm: 5},
		{Op: isa.SWP, Rs1: isa.R1, Rs2: isa.R3, Imm: 6}, // degrades to SW here
		{Op: isa.LW, Rd: isa.R4, Rs1: isa.R1, Imm: 6},
		{Op: isa.HALT},
	}
	ip := run(t, prog, nil)
	if got := ip.Regs.ReadInt(isa.R3); got != 55 {
		t.Errorf("r3 = %d, want 55", got)
	}
	if got := ip.Regs.ReadFP(isa.F2); got != 55 {
		t.Errorf("f2 = %g, want 55", got)
	}
	if got := ip.Regs.ReadInt(isa.R4); got != 55 {
		t.Errorf("r4 = %d, want 55", got)
	}
	if got := ip.Mem.IntAt(104); got != 55 {
		t.Errorf("mem[104] = %d, want 55", got)
	}
}

func TestBranchLoop(t *testing.T) {
	// Sum 1..10 with a countdown loop.
	prog := []isa.Instruction{
		{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R0, Imm: 10}, // i = 10
		{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R0, Imm: 0},  // sum = 0
		{Op: isa.ADD, Rd: isa.R2, Rs1: isa.R2, Rs2: isa.R1},
		{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R1, Imm: -1},
		{Op: isa.BNEZ, Rs1: isa.R1, Imm: 2},
		{Op: isa.HALT},
	}
	ip := run(t, prog, nil)
	if got := ip.Regs.ReadInt(isa.R2); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestJalJr(t *testing.T) {
	// call a subroutine that doubles r1, then halt.
	prog := []isa.Instruction{
		{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R0, Imm: 5},
		{Op: isa.JAL, Rd: isa.R31, Imm: 4},
		{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R1, Imm: 1}, // after return: r2 = 11
		{Op: isa.HALT},
		{Op: isa.ADD, Rd: isa.R1, Rs1: isa.R1, Rs2: isa.R1}, // sub: r1 *= 2
		{Op: isa.JR, Rs1: isa.R31},
	}
	ip := run(t, prog, nil)
	if got := ip.Regs.ReadInt(isa.R1); got != 10 {
		t.Errorf("r1 = %d, want 10", got)
	}
	if got := ip.Regs.ReadInt(isa.R2); got != 11 {
		t.Errorf("r2 = %d, want 11", got)
	}
}

func TestR0Hardwired(t *testing.T) {
	prog := []isa.Instruction{
		{Op: isa.ADDI, Rd: isa.R0, Rs1: isa.R0, Imm: 99},
		{Op: isa.ADD, Rd: isa.R1, Rs1: isa.R0, Rs2: isa.R0},
		{Op: isa.HALT},
	}
	ip := run(t, prog, nil)
	if got := ip.Regs.ReadInt(isa.R0); got != 0 {
		t.Errorf("r0 = %d, want 0", got)
	}
	if got := ip.Regs.ReadInt(isa.R1); got != 0 {
		t.Errorf("r1 = %d, want 0", got)
	}
}

func TestDivisionByZero(t *testing.T) {
	for _, op := range []isa.Opcode{isa.DIV, isa.REM} {
		prog := []isa.Instruction{
			{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R0, Imm: 5},
			{Op: op, Rd: isa.R2, Rs1: isa.R1, Rs2: isa.R0},
			{Op: isa.HALT},
		}
		ip := NewInterp(prog, mem.NewMemory(16))
		if err := ip.Run(); err == nil {
			t.Errorf("%s by zero did not error", op)
		}
	}
}

func TestInterpRejectsMultithreadOps(t *testing.T) {
	for _, op := range []isa.Opcode{isa.FFORK, isa.CHGPRI, isa.KILL, isa.QDIS} {
		ip := NewInterp([]isa.Instruction{{Op: op}}, mem.NewMemory(16))
		if err := ip.Run(); err == nil {
			t.Errorf("%s accepted by single-threaded interpreter", op)
		}
	}
}

func TestRunawayProtection(t *testing.T) {
	ip := NewInterp([]isa.Instruction{{Op: isa.J, Imm: 0}}, mem.NewMemory(16))
	ip.SetMaxSteps(1000)
	if err := ip.Run(); err == nil {
		t.Error("infinite loop did not trip the step bound")
	}
}

func TestPCOutOfRange(t *testing.T) {
	ip := NewInterp([]isa.Instruction{{Op: isa.J, Imm: 500}}, mem.NewMemory(16))
	if err := ip.Run(); err == nil {
		t.Error("jump outside program did not error")
	}
}

// Property: ADD/SUB on the interpreter agree with Go integer arithmetic.
func TestArithAgreesWithGo(t *testing.T) {
	f := func(a, b int32) bool {
		prog := []isa.Instruction{
			{Op: isa.LIH, Rd: isa.R1, Imm: 0},
			{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R0, Imm: a % 8192},
			{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R0, Imm: b % 8192},
			{Op: isa.ADD, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R2},
			{Op: isa.SUB, Rd: isa.R4, Rs1: isa.R1, Rs2: isa.R2},
			{Op: isa.MUL, Rd: isa.R5, Rs1: isa.R1, Rs2: isa.R2},
			{Op: isa.HALT},
		}
		ip := NewInterp(prog, mem.NewMemory(16))
		if err := ip.Run(); err != nil {
			return false
		}
		x, y := int64(a%8192), int64(b%8192)
		return ip.Regs.ReadInt(isa.R3) == x+y &&
			ip.Regs.ReadInt(isa.R4) == x-y &&
			ip.Regs.ReadInt(isa.R5) == x*y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FP ops agree with Go float64 arithmetic (via memory init).
func TestFPAgreesWithGo(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		m := mem.NewMemory(16)
		m.SetFloat(0, a)
		m.SetFloat(1, b)
		prog := []isa.Instruction{
			{Op: isa.FLW, Rd: isa.F1, Rs1: isa.R0, Imm: 0},
			{Op: isa.FLW, Rd: isa.F2, Rs1: isa.R0, Imm: 1},
			{Op: isa.FADD, Rd: isa.F3, Rs1: isa.F1, Rs2: isa.F2},
			{Op: isa.FMUL, Rd: isa.F4, Rs1: isa.F1, Rs2: isa.F2},
			{Op: isa.FSUB, Rd: isa.F5, Rs1: isa.F1, Rs2: isa.F2},
			{Op: isa.HALT},
		}
		ip := NewInterp(prog, m)
		if err := ip.Run(); err != nil {
			return false
		}
		eq := func(got, want float64) bool {
			return got == want || (math.IsNaN(got) && math.IsNaN(want))
		}
		return eq(ip.Regs.ReadFP(isa.F3), a+b) &&
			eq(ip.Regs.ReadFP(isa.F4), a*b) &&
			eq(ip.Regs.ReadFP(isa.F5), a-b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegFilePanicsOnWrongClass(t *testing.T) {
	var rf RegFile
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("ReadInt(F1)", func() { rf.ReadInt(isa.F1) })
	mustPanic("WriteInt(F1)", func() { rf.WriteInt(isa.F1, 1) })
	mustPanic("ReadFP(R1)", func() { rf.ReadFP(isa.R1) })
	mustPanic("WriteFP(R1)", func() { rf.WriteFP(isa.R1, 1) })
}

func TestRegFileReadAndReset(t *testing.T) {
	var rf RegFile
	rf.WriteInt(isa.R5, -9)
	rf.WriteFP(isa.F5, 2.5)
	if int64(rf.Read(isa.R5)) != -9 {
		t.Error("Read(int) wrong")
	}
	if math.Float64frombits(rf.Read(isa.F5)) != 2.5 {
		t.Error("Read(fp) wrong")
	}
	rf.Reset()
	if rf.ReadInt(isa.R5) != 0 || rf.ReadFP(isa.F5) != 0 {
		t.Error("Reset did not clear registers")
	}
}

func TestInterpAccessors(t *testing.T) {
	prog := []isa.Instruction{
		{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R0, Imm: 1},
		{Op: isa.HALT},
	}
	ip := NewInterp(prog, mem.NewMemory(4))
	if ip.Halted() {
		t.Error("halted before running")
	}
	if err := ip.Run(); err != nil {
		t.Fatal(err)
	}
	if !ip.Halted() {
		t.Error("not halted after running")
	}
	if ip.Steps() != 2 {
		t.Errorf("Steps = %d, want 2", ip.Steps())
	}
}

func TestNegativeShiftCounts(t *testing.T) {
	prog := []isa.Instruction{
		{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R0, Imm: 8},
		{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R0, Imm: -1}, // count -1 -> masked to 63
		{Op: isa.SLL, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.SRL, Rd: isa.R4, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.SRA, Rd: isa.R5, Rs1: isa.R1, Rs2: isa.R2},
		{Op: isa.HALT},
	}
	ip := NewInterp(prog, mem.NewMemory(4))
	if err := ip.Run(); err != nil {
		t.Fatal(err)
	}
	// 8 << 63 overflows to zero in 64-bit arithmetic.
	if got := ip.Regs.ReadInt(isa.R3); got != 0 {
		t.Errorf("sll by -1 = %d, want 0 (count masked mod 64, then overflow)", got)
	}
	if got := ip.Regs.ReadInt(isa.R4); got != 0 {
		t.Errorf("srl by -1 = %d, want 0", got)
	}
	if got := ip.Regs.ReadInt(isa.R5); got != 0 {
		t.Errorf("sra of positive by -1 = %d, want 0", got)
	}
}
