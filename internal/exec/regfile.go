package exec

import (
	"fmt"

	"hirata/internal/isa"
)

// RegFile is one register bank: 32 integer and 32 floating-point registers.
// Integer register r0 is hardwired to zero. RegFile implements the register
// part of Context; timing models embed it (or wrap it to intercept
// queue-register-mapped names).
type RegFile struct {
	Int [isa.NumIntRegs]int64
	FP  [isa.NumFPRegs]float64
}

// ReadInt returns the value of integer register r.
func (f *RegFile) ReadInt(r isa.Reg) int64 {
	if !r.IsInt() {
		panic(fmt.Sprintf("exec: ReadInt(%s)", r))
	}
	return f.Int[r.Index()]
}

// WriteInt sets integer register r; writes to r0 are discarded.
func (f *RegFile) WriteInt(r isa.Reg, v int64) {
	if !r.IsInt() {
		panic(fmt.Sprintf("exec: WriteInt(%s)", r))
	}
	if r.Index() != 0 {
		f.Int[r.Index()] = v
	}
}

// ReadFP returns the value of floating-point register r.
func (f *RegFile) ReadFP(r isa.Reg) float64 {
	if !r.IsFP() {
		panic(fmt.Sprintf("exec: ReadFP(%s)", r))
	}
	return f.FP[r.Index()]
}

// WriteFP sets floating-point register r.
func (f *RegFile) WriteFP(r isa.Reg, v float64) {
	if !r.IsFP() {
		panic(fmt.Sprintf("exec: WriteFP(%s)", r))
	}
	f.FP[r.Index()] = v
}

// Read returns the register value as a raw 64-bit image, for either class.
func (f *RegFile) Read(r isa.Reg) uint64 {
	if r.IsFP() {
		return floatBits(f.ReadFP(r))
	}
	return uint64(f.ReadInt(r))
}

// Reset zeroes every register.
func (f *RegFile) Reset() {
	*f = RegFile{}
}
