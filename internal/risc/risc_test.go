package risc

import (
	"math/rand"
	"testing"

	"hirata/internal/asm"
	"hirata/internal/exec"
	"hirata/internal/isa"
	"hirata/internal/mem"
)

func runSrc(t *testing.T, cfg Config, src string) (*Machine, Result) {
	t.Helper()
	prog := asm.MustAssemble(src)
	m, err := prog.NewMemory(256)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := New(cfg, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return mc, res
}

func TestBasicProgram(t *testing.T) {
	mc, res := runSrc(t, Config{}, `
		addi r1, r0, 10
		addi r2, r0, 0
	loop:	add  r2, r2, r1
		addi r1, r1, -1
		bnez r1, loop
		halt
	`)
	if got := mc.Regs().ReadInt(isa.R2); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	if res.Instructions != 33 {
		t.Errorf("instructions = %d, want 33", res.Instructions)
	}
	if res.Branches != 10 {
		t.Errorf("branches = %d, want 10", res.Branches)
	}
}

// TestDependentDecodeDistance pins the 3-cycle dependent distance the paper
// requires of the base RISC pipeline.
func TestDependentDecodeDistance(t *testing.T) {
	prog := asm.MustAssemble(`
		addi r1, r0, 1
		addi r2, r1, 1
		addi r3, r0, 1
		halt
	`)
	m, _ := prog.NewMemory(16)
	mc, _ := New(Config{}, prog.Text, m)
	dec := map[int64]uint64{}
	mc.OnDecode = func(pc int64, cyc uint64) { dec[pc] = cyc }
	if _, err := mc.Run(); err != nil {
		t.Fatal(err)
	}
	if d := dec[1] - dec[0]; d != 3 {
		t.Errorf("dependent decode distance = %d, want 3", d)
	}
	if d := dec[2] - dec[1]; d != 1 {
		t.Errorf("independent decode distance = %d, want 1", d)
	}
}

// TestBranchDelayFour pins the paper's 4-cycle branch delay on the baseline.
func TestBranchDelayFour(t *testing.T) {
	prog := asm.MustAssemble(`
		addi r1, r0, 1
		j    next
	next:	addi r2, r0, 2
		bnez r0, never
		addi r3, r0, 3
		halt
	never:	halt
	`)
	m, _ := prog.NewMemory(16)
	mc, _ := New(Config{}, prog.Text, m)
	dec := map[int64]uint64{}
	mc.OnDecode = func(pc int64, cyc uint64) { dec[pc] = cyc }
	if _, err := mc.Run(); err != nil {
		t.Fatal(err)
	}
	if d := dec[2] - dec[1]; d != 4 {
		t.Errorf("taken branch delay = %d, want 4", d)
	}
	if d := dec[4] - dec[3]; d != 4 {
		t.Errorf("not-taken branch delay = %d, want 4", d)
	}
}

func TestLoadStoreOccupancy(t *testing.T) {
	prog := asm.MustAssemble(`
		lw r1, 100(r0)
		lw r2, 101(r0)
		halt
	`)
	m, _ := prog.NewMemory(256)
	mc, _ := New(Config{LoadStoreUnits: 1}, prog.Text, m)
	dec := map[int64]uint64{}
	mc.OnDecode = func(pc int64, cyc uint64) { dec[pc] = cyc }
	if _, err := mc.Run(); err != nil {
		t.Fatal(err)
	}
	if d := dec[1] - dec[0]; d != 2 {
		t.Errorf("back-to-back load distance = %d, want 2 (issue latency)", d)
	}
}

func TestRejectsMultithreadOps(t *testing.T) {
	for _, src := range []string{"ffork\nhalt\n", "chgpri\nhalt\n", "kill\nhalt\n", "qdis\nhalt\n"} {
		prog := asm.MustAssemble(src)
		m, _ := prog.NewMemory(16)
		mc, _ := New(Config{}, prog.Text, m)
		if _, err := mc.Run(); err == nil {
			t.Errorf("multithread op accepted: %q", src)
		}
	}
}

func TestRemoteLatencyBlocks(t *testing.T) {
	prog := asm.MustAssemble(`
		lw   r1, 100(r0)
		addi r2, r1, 1
		halt
	`)
	mkMem := func(remote bool) *mem.Memory {
		if remote {
			return mem.NewMemoryWithRemote(256, 50, 100)
		}
		return mem.NewMemory(256)
	}
	mLocal, _ := New(Config{}, prog.Text, mkMem(false))
	resLocal, err := mLocal.Run()
	if err != nil {
		t.Fatal(err)
	}
	mRemote, _ := New(Config{}, prog.Text, mkMem(true))
	resRemote, err := mRemote.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resRemote.Cycles < resLocal.Cycles+90 {
		t.Errorf("remote access added %d cycles, want about 100",
			resRemote.Cycles-resLocal.Cycles)
	}
}

func TestFiniteICacheSlowsDown(t *testing.T) {
	// A loop far larger than the icache must run slower than with a
	// perfect cache.
	src := ""
	for i := 0; i < 200; i++ {
		src += "addi r1, r1, 1\n"
	}
	src += "addi r2, r2, 1\nsubi r3, r2, 3\nbnez r3, 0\nhalt\n"
	prog := asm.MustAssemble(src)
	m, _ := prog.NewMemory(16)
	perfect, _ := New(Config{}, prog.Text, m)
	resPerfect, err := perfect.Run()
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := prog.NewMemory(16)
	small, _ := New(Config{ICache: mem.CacheConfig{Lines: 4, WordsPerLine: 4, MissPenalty: 20}}, prog.Text, m2)
	resSmall, err := small.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resSmall.Cycles <= resPerfect.Cycles {
		t.Errorf("finite icache not slower: %d <= %d", resSmall.Cycles, resPerfect.Cycles)
	}
}

// TestMatchesInterpreter cross-checks the timing machine's architectural
// results against the functional interpreter on a randomised arithmetic
// program.
func TestMatchesInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ops := []isa.Opcode{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SLT, isa.MUL, isa.SLL, isa.SRA}
	for trial := 0; trial < 30; trial++ {
		var prog []isa.Instruction
		for i := 0; i < 8; i++ {
			prog = append(prog, isa.Instruction{
				Op: isa.ADDI, Rd: isa.IntReg(i + 1), Rs1: isa.R0,
				Imm: int32(rng.Intn(2000) - 1000),
			})
		}
		for i := 0; i < 40; i++ {
			op := ops[rng.Intn(len(ops))]
			prog = append(prog, isa.Instruction{
				Op:  op,
				Rd:  isa.IntReg(rng.Intn(15) + 1),
				Rs1: isa.IntReg(rng.Intn(15) + 1),
				Rs2: isa.IntReg(rng.Intn(8) + 1),
			})
		}
		prog = append(prog, isa.Instruction{Op: isa.HALT})

		ip := exec.NewInterp(prog, mem.NewMemory(16))
		if err := ip.Run(); err != nil {
			t.Fatal(err)
		}
		mc, _ := New(Config{}, prog, mem.NewMemory(16))
		if _, err := mc.Run(); err != nil {
			t.Fatal(err)
		}
		for r := 1; r < 16; r++ {
			reg := isa.IntReg(r)
			if ip.Regs.ReadInt(reg) != mc.Regs().ReadInt(reg) {
				t.Fatalf("trial %d: %s: interp %d != risc %d",
					trial, reg, ip.Regs.ReadInt(reg), mc.Regs().ReadInt(reg))
			}
		}
	}
}

func TestFloatAndStorePath(t *testing.T) {
	prog := asm.MustAssemble(`
		.data
		.org 20
	vals:	.float 2.25, 4.0
		.text
		flw  f1, vals+0
		flw  f2, vals+1
		fmul f3, f1, f2
		fdiv f4, f3, f2
		fsqrt f5, f2
		fsw  f3, 30(r0)
		itof f6, r0
		ftoi r2, f5
		tid  r3
		sw   r2, 31(r0)
		halt
	`)
	m, err := prog.NewMemory(64)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := New(Config{LoadStoreUnits: 2}, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.FloatAt(30); got != 9.0 {
		t.Errorf("stored product = %g, want 9", got)
	}
	if got := m.IntAt(31); got != 2 {
		t.Errorf("sqrt->int = %d, want 2", got)
	}
	if got := mc.Regs().ReadInt(isa.IntReg(3)); got != 0 {
		t.Errorf("tid on risc = %d, want 0", got)
	}
	if res.IPC() <= 0 || res.CPI() <= 0 {
		t.Error("IPC/CPI not positive")
	}
	if res.IPC()*res.CPI() < 0.99 || res.IPC()*res.CPI() > 1.01 {
		t.Errorf("IPC*CPI = %g, want 1", res.IPC()*res.CPI())
	}
}

func TestRiscErrors(t *testing.T) {
	if _, err := New(Config{}, nil, mem.NewMemory(4)); err == nil {
		t.Error("empty program accepted")
	}
	// Jump outside the program.
	prog := []isa.Instruction{{Op: isa.J, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: isa.NoReg, Imm: 100}}
	mc, _ := New(Config{}, prog, mem.NewMemory(4))
	if _, err := mc.Run(); err == nil {
		t.Error("runaway pc not detected")
	}
	// Runaway cycle bound.
	loop := asm.MustAssemble("x:\tj x\n")
	mc2, _ := New(Config{MaxCycles: 500}, loop.Text, mem.NewMemory(4))
	if _, err := mc2.Run(); err == nil {
		t.Error("infinite loop not detected")
	}
}
