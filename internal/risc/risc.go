// Package risc models the paper's baseline: a conventional superpipelined
// RISC processor (Figure 3(b)) with the same functional units and latencies
// as the multithreaded machine but a single instruction stream. The paper's
// speed-up ratios are defined against sequential execution on this machine.
//
// Timing rules (calibrated to the two facts the paper states):
//
//   - An instruction that uses the result of a previous instruction with a
//     2-cycle result latency decodes 3 cycles after it ("at least three
//     cycles are required between I1 and I2"), the same distance as on the
//     multithreaded pipeline: a producer decoded at cycle d makes its
//     destination ready at d + resultLatency + 1.
//   - The instruction executed immediately after a branch decodes 4 cycles
//     after the branch ("the delay between I1 and I3 is four cycles"),
//     versus 5 on the multithreaded pipeline.
//
// There is no branch prediction and no delayed branch (§3.1).
package risc

import (
	"fmt"

	"hirata/internal/exec"
	"hirata/internal/isa"
	"hirata/internal/mem"
)

// BranchPenalty is the decode-to-decode distance after a branch.
const BranchPenalty = 4

// Config describes the baseline machine.
type Config struct {
	// LoadStoreUnits matches the multithreaded configurations (1 or 2).
	LoadStoreUnits int
	// ICache and DCache configure cache models (zero = perfect, the
	// paper's assumption).
	ICache, DCache mem.CacheConfig
	// MaxCycles aborts runaway programs.
	MaxCycles uint64
	// StrictVerify makes the top-level runners (hirata.RunRISC) refuse to
	// simulate a program the static verifier (internal/lint) finds
	// diagnostics in. The machine itself ignores this field.
	StrictVerify bool
}

func (c Config) withDefaults() Config {
	if c.LoadStoreUnits <= 0 {
		c.LoadStoreUnits = 1
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 200_000_000
	}
	return c
}

// UnitStat mirrors core.UnitStat for the baseline machine.
type UnitStat struct {
	Class       isa.UnitClass
	Index       int
	Invocations uint64
	BusyCycles  uint64
}

// Result summarises a run.
type Result struct {
	Cycles       uint64
	Instructions uint64
	Branches     uint64
	Units        []UnitStat
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// CPI returns cycles per instruction.
func (r Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// Machine is one baseline processor instance.
type Machine struct {
	cfg    Config
	prog   []isa.Instruction
	mem    *mem.Memory
	icache *mem.Cache
	dcache *mem.Cache

	regs    exec.RegFile
	readyAt [isa.NumIntRegs + isa.NumFPRegs]uint64
	units   map[isa.UnitClass][]*unit

	pc        int64
	cycle     uint64
	lastEvent uint64
	stats     Result

	// OnDecode, when set, observes every instruction's decode: (pc, cycle).
	OnDecode func(pc int64, cycle uint64)
}

type unit struct {
	class isa.UnitClass
	// nextFree is the first decode cycle at which the unit can accept
	// another instruction.
	nextFree uint64
	stat     UnitStat
}

// New builds a baseline machine for prog with data memory m.
func New(cfg Config, prog []isa.Instruction, m *mem.Memory) (*Machine, error) {
	cfg = cfg.withDefaults()
	if len(prog) == 0 {
		return nil, fmt.Errorf("risc: empty program")
	}
	mc := &Machine{
		cfg:    cfg,
		prog:   prog,
		mem:    m,
		icache: mem.NewCache(cfg.ICache),
		dcache: mem.NewCache(cfg.DCache),
		units:  make(map[isa.UnitClass][]*unit),
	}
	for cls := isa.UnitClass(1); int(cls) <= isa.NumUnitClasses; cls++ {
		n := 1
		if cls == isa.UnitLoadStore {
			n = cfg.LoadStoreUnits
		}
		for k := 0; k < n; k++ {
			mc.units[cls] = append(mc.units[cls], &unit{class: cls, stat: UnitStat{Class: cls, Index: k}})
		}
	}
	return mc, nil
}

// ctx adapts the machine to exec.Context.
type ctx struct{ m *Machine }

func (c ctx) ReadInt(r isa.Reg) int64       { return c.m.regs.ReadInt(r) }
func (c ctx) WriteInt(r isa.Reg, v int64)   { c.m.regs.WriteInt(r, v) }
func (c ctx) ReadFP(r isa.Reg) float64      { return c.m.regs.ReadFP(r) }
func (c ctx) WriteFP(r isa.Reg, v float64)  { c.m.regs.WriteFP(r, v) }
func (c ctx) Load(a int64) (uint64, error)  { return c.m.mem.Load(a) }
func (c ctx) Store(a int64, v uint64) error { return c.m.mem.Store(a, v) }
func (c ctx) TID() int                      { return 0 }

// Run executes the program to completion and returns statistics.
func (m *Machine) Run() (Result, error) {
	for {
		if m.cycle >= m.cfg.MaxCycles {
			return m.stats, fmt.Errorf("risc: exceeded %d cycles at pc %d", m.cfg.MaxCycles, m.pc)
		}
		if m.pc < 0 || m.pc >= int64(len(m.prog)) {
			return m.stats, fmt.Errorf("risc: pc %d outside program", m.pc)
		}
		in := m.prog[m.pc]
		halt, err := m.decode(in)
		if err != nil {
			return m.stats, err
		}
		if halt {
			break
		}
	}
	m.stats.Cycles = m.lastEvent + 1
	for cls := isa.UnitClass(1); int(cls) <= isa.NumUnitClasses; cls++ {
		for _, u := range m.units[cls] {
			m.stats.Units = append(m.stats.Units, u.stat)
		}
	}
	return m.stats, nil
}

// decode models the D stage of one instruction: interlock until operands,
// destination and a functional unit are available, then execute and charge
// latencies. It advances m.cycle to the decode cycle of the next
// instruction and reports whether the program halted.
func (m *Machine) decode(in isa.Instruction) (bool, error) {
	// Operand and WAW interlocks (scoreboarding).
	var srcs []isa.Reg
	srcs = in.Sources(srcs)
	for _, r := range srcs {
		m.waitFor(r)
	}
	if d := in.Dest(); d.Valid() {
		m.waitFor(d)
	}

	cls := in.Op.Unit()
	var u *unit
	if cls != isa.UnitNone {
		u = m.pickUnit(cls)
		if u.nextFree > m.cycle {
			m.cycle = u.nextFree
		}
	}

	switch in.Op {
	case isa.FFORK, isa.CHGPRI, isa.KILL, isa.QEN, isa.QENF, isa.QDIS:
		return false, fmt.Errorf("risc: pc %d: %s requires the multithreaded machine", m.pc, in.Op)
	}

	out, err := exec.Execute(in, m.pc, ctx{m})
	if err != nil {
		return false, err
	}
	m.stats.Instructions++
	m.touch(m.cycle)
	if m.OnDecode != nil {
		m.OnDecode(m.pc, m.cycle)
	}

	extra := 0
	if in.Op.IsMem() {
		addr := m.regs.ReadInt(in.Rs1) + int64(in.Imm)
		if m.mem.IsRemote(addr) {
			extra += m.mem.RemoteLatency()
		}
		extra += m.dcache.Access(addr) - mem.CacheAccessCycles
	}

	if u != nil {
		u.nextFree = m.cycle + uint64(in.Op.IssueLatency())
		u.stat.Invocations++
		u.stat.BusyCycles += uint64(in.Op.IssueLatency())
	}
	if d := in.Dest(); d.Valid() && !(d.IsInt() && d.Index() == 0) {
		ready := m.cycle + uint64(in.Op.ResultLatency()+extra) + 1
		if in.Op.Unit() == isa.UnitNone {
			ready = m.cycle + 1 // jal link is written in the decode stage
		}
		m.readyAt[sbIndex(d)] = ready
		m.touch(ready)
	}

	// Control flow and the decode cycle of the next instruction.
	switch {
	case out.Effect == exec.EffectHalt:
		return true, nil
	case out.Effect == exec.EffectBranch:
		m.stats.Branches++
		if out.Taken {
			m.pc = out.Target
		} else {
			m.pc++
		}
		m.cycle += BranchPenalty
	default:
		m.pc++
		m.cycle++
	}
	// Instruction cache misses delay the following fetch.
	if m.cfg.ICache.Lines > 0 {
		m.cycle += uint64(m.icache.Access(m.pc) - mem.CacheAccessCycles)
	}
	return false, nil
}

// waitFor advances the clock until register r is available.
func (m *Machine) waitFor(r isa.Reg) {
	if !r.Valid() || (r.IsInt() && r.Index() == 0) {
		return
	}
	if t := m.readyAt[sbIndex(r)]; t > m.cycle {
		m.cycle = t
	}
}

// pickUnit returns the unit of the class that frees up earliest.
func (m *Machine) pickUnit(cls isa.UnitClass) *unit {
	us := m.units[cls]
	best := us[0]
	for _, u := range us[1:] {
		if u.nextFree < best.nextFree {
			best = u
		}
	}
	return best
}

func (m *Machine) touch(c uint64) {
	if c > m.lastEvent {
		m.lastEvent = c
	}
}

func sbIndex(r isa.Reg) int {
	if r.IsFP() {
		return isa.NumIntRegs + r.Index()
	}
	return r.Index()
}

// Regs exposes the architectural registers after Run (for verification).
func (m *Machine) Regs() *exec.RegFile { return &m.regs }
