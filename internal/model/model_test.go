package model_test

// The model package is tested from outside through the root package: real
// workload builders and simulator runs supply the calibration anchors, so
// the tests exercise the same digest path hirata-bench -explore uses.

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"hirata"
	"hirata/internal/core"
	"hirata/internal/isa"
	"hirata/internal/model"
)

// rayWorkload builds the small ray-trace program and a runner closure that
// simulates one configuration of it.
func rayWorkload(t *testing.T) (*model.Workload, func(cfg core.Config) core.Result) {
	t.Helper()
	rt, err := hirata.BuildRayTrace(hirata.RayTraceConfig{Rays: 16, Spheres: 4})
	if err != nil {
		t.Fatal(err)
	}
	w := model.NewWorkload("raytrace", rt.Par.Text, nil)
	run := func(cfg core.Config) core.Result {
		m, err := rt.NewMemory(rt.Par, cfg.Effective().ThreadSlots)
		if err != nil {
			t.Fatal(err)
		}
		res, err := hirata.RunMT(cfg, rt.Par.Text, m)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	return w, run
}

func TestCharacterizeRayTrace(t *testing.T) {
	w, _ := rayWorkload(t)
	s := w.Static
	if s.Blocks == 0 {
		t.Fatal("no basic blocks found")
	}
	if !s.HasFork {
		t.Error("ray-trace parallel build forks workers; HasFork = false")
	}
	if s.Census.Total().Count == 0 || s.Census.Total().Demand == 0 {
		t.Errorf("empty census: %+v", s.Census.Total())
	}
	if r := s.WidthRatio(1); r != 1 {
		t.Errorf("WidthRatio(1) = %v, want 1", r)
	}
	prev := s.DepCPI(1)
	for width := 2; width <= 8; width *= 2 {
		if r := s.WidthRatio(width); r <= 0 || r > 1 {
			t.Errorf("WidthRatio(%d) = %v, want (0, 1]", width, r)
		}
		cpi := s.DepCPI(width)
		if cpi > prev {
			t.Errorf("DepCPI(%d) = %v > DepCPI at previous width %v", width, cpi, prev)
		}
		if cpi < 1/float64(width) {
			t.Errorf("DepCPI(%d) = %v below the 1/D floor", width, cpi)
		}
		prev = cpi
	}
}

func TestCharacterizeQueues(t *testing.T) {
	rc, err := hirata.BuildRecurrence(hirata.RecurrenceConfig{N: 24})
	if err != nil {
		t.Fatal(err)
	}
	s := model.Characterize(rc.Par.Text, nil)
	if !s.UsesQueues {
		t.Error("doacross recurrence build maps queue registers; UsesQueues = false")
	}
}

func TestStaticOnlyPredict(t *testing.T) {
	w, _ := rayWorkload(t)
	cfg := core.Config{ThreadSlots: 4, LoadStoreUnits: 2, StandbyStations: true}
	p := w.Predict(cfg)
	if p.Calibrated {
		t.Error("no anchors recorded, yet prediction claims calibration")
	}
	if p.Unbounded {
		t.Fatal("finite program predicted unbounded")
	}
	if p.Bound <= 0 || p.Cycles < uint64(p.Bound) {
		t.Errorf("cycles %d below certified bound %d", p.Cycles, p.Bound)
	}
	if math.IsNaN(p.Raw) || math.IsInf(p.Raw, 0) {
		t.Errorf("non-finite raw prediction %v", p.Raw)
	}
	for c := 1; c <= isa.NumUnitClasses; c++ {
		if u := p.Util[c]; u < 0 || u > 100 {
			t.Errorf("utilization[%v] = %v out of range", isa.UnitClass(c), u)
		}
	}
	if p.Speedup <= 0 {
		t.Errorf("speed-up %v, want positive", p.Speedup)
	}
}

func TestCalibratedPredictInterpolates(t *testing.T) {
	w, run := rayWorkload(t)
	for _, slots := range []int{2, 8} {
		cfg := core.Config{ThreadSlots: slots, LoadStoreUnits: 2, StandbyStations: true}
		w.AddAnchor(cfg, run(cfg))
	}
	if !w.Calibrated() {
		t.Fatal("anchors recorded but Calibrated() = false")
	}

	// The interesting claim: a thread count no anchor measured is predicted
	// close to its simulation.
	cfg := core.Config{ThreadSlots: 4, LoadStoreUnits: 2, StandbyStations: true}
	p := w.Predict(cfg)
	res := run(cfg)
	err := 100 * (float64(p.Cycles) - float64(res.Cycles)) / float64(res.Cycles)
	t.Logf("S=4 predicted %d simulated %d (%.1f%%)", p.Cycles, res.Cycles, err)
	if math.Abs(err) > 15 {
		t.Errorf("interpolated prediction off by %.1f%%, want within 15%%", err)
	}
	if p.Cycles < uint64(p.Bound) {
		t.Errorf("cycles %d below certified bound %d", p.Cycles, p.Bound)
	}
}

// TestExploreRespectsCertificates is the differential test the package doc
// promises: across the whole default design grid, every finite prediction
// must sit on or above the independently computed lint certificate.
func TestExploreRespectsCertificates(t *testing.T) {
	w, run := rayWorkload(t)
	cfg := core.Config{ThreadSlots: 4, LoadStoreUnits: 2, StandbyStations: true}
	w.AddAnchor(cfg, run(cfg))

	pts := w.Explore(model.DefaultGrid(core.Config{}))
	if len(pts) < 1000 {
		t.Fatalf("grid explored %d configs, want >= 1000", len(pts))
	}
	for _, p := range pts {
		if p.Unbounded {
			continue
		}
		cert := hirata.StaticBounds(p.Config, w.Static.Text)
		if cert.Bound != p.Bound {
			t.Fatalf("%s: prediction carries bound %d, StaticBounds says %d",
				p.Describe(), p.Bound, cert.Bound)
		}
		if p.Cycles < uint64(cert.Bound) {
			t.Fatalf("%s: predicted cycles %d below certificate %d",
				p.Describe(), p.Cycles, cert.Bound)
		}
	}
}

func TestGridConfigsDistinct(t *testing.T) {
	cfgs := model.DefaultGrid(core.Config{}).Configs()
	if len(cfgs) != 1152 {
		t.Errorf("default grid enumerates %d configs, want 1152", len(cfgs))
	}
	seen := make(map[core.Config]bool, len(cfgs))
	for _, c := range cfgs {
		if seen[c] {
			t.Fatalf("duplicate config enumerated: %+v", c)
		}
		seen[c] = true
	}
}

func TestGridNilAxesCollapse(t *testing.T) {
	base := core.Config{ThreadSlots: 3, IssueWidth: 2, LoadStoreUnits: 2}
	cfgs := model.Grid{Base: base, Slots: []int{1, 2}}.Configs()
	if len(cfgs) != 2 {
		t.Fatalf("one two-value axis enumerates %d configs, want 2", len(cfgs))
	}
	for _, c := range cfgs {
		if c.IssueWidth != 2 || c.LoadStoreUnits != 2 {
			t.Errorf("nil axis did not keep base value: %+v", c)
		}
	}
}

func TestCostMonotone(t *testing.T) {
	small := model.Cost(core.Config{ThreadSlots: 1})
	big := model.Cost(core.Config{ThreadSlots: 8, IssueWidth: 2, LoadStoreUnits: 4, StandbyStations: true, StandbyDepth: 2})
	if small <= 0 || big <= small {
		t.Errorf("cost not monotone: small %v, big %v", small, big)
	}
}

func TestParetoFrontier(t *testing.T) {
	mk := func(cost float64, cycles uint64, unbounded bool) model.Point {
		var p model.Point
		p.Cost = cost
		p.Cycles = cycles
		p.Unbounded = unbounded
		return p
	}
	pts := []model.Point{
		mk(10, 100, false),
		mk(12, 120, false), // dominated: costlier and slower
		mk(12, 80, false),
		mk(12, 90, false), // equal-cost tie: slower, dropped
		mk(20, 80, false), // dominated: same cycles at higher cost
		mk(30, 50, false),
		mk(5, 10, true), // unbounded never qualifies
	}
	front := model.Pareto(pts)
	if len(front) != 3 {
		t.Fatalf("frontier size %d, want 3: %+v", len(front), front)
	}
	for i := range front {
		if front[i].Unbounded {
			t.Fatal("unbounded point on the frontier")
		}
		if i > 0 {
			if front[i].Cost <= front[i-1].Cost {
				t.Errorf("frontier cost not ascending at %d", i)
			}
			if front[i].Cycles >= front[i-1].Cycles {
				t.Errorf("frontier cycles not descending at %d", i)
			}
		}
	}
}

func TestPredictionDescribe(t *testing.T) {
	w, _ := rayWorkload(t)
	p := w.Predict(core.Config{ThreadSlots: 2, IssueWidth: 2, LoadStoreUnits: 2, StandbyStations: true})
	line := p.Describe()
	for _, want := range []string{"S=2", "D=2", "ls=2", fmt.Sprintf("cycles=%d", p.Cycles)} {
		if !strings.Contains(line, want) {
			t.Errorf("Describe() = %q missing %q", line, want)
		}
	}
}
