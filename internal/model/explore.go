package model

import (
	"sort"

	"hirata/internal/core"
	"hirata/internal/isa"
)

// Grid is a design-space enumeration: the cartesian product of the listed
// axis values over a base configuration. Axes left nil collapse to the
// base config's value.
//
// NOTE(configfield): this is the one place in the tree that legitimately
// builds core.Config values field by field — enumeration axes must name
// the fields they sweep. The configfield analyzer exempts this package;
// when Config grows a field that should be explorable, add an axis here.
type Grid struct {
	// Base supplies every field the axes don't sweep.
	Base core.Config

	Slots         []int  // ThreadSlots
	Widths        []int  // IssueWidth
	LoadStore     []int  // LoadStoreUnits
	Standby       []bool // StandbyStations
	StandbyDepths []int  // StandbyDepth (only applied when standby is on)
	ExtraALU      []int  // ExtraUnits[isa.UnitIntALU]
	ExtraFPAdd    []int  // ExtraUnits[isa.UnitFPAdd]
	ExtraFPMul    []int  // ExtraUnits[isa.UnitFPMul]
}

// DefaultGrid spans the paper's design space and its nearby ablations:
// 8 slot counts × 3 issue widths × 4 load/store pools × standby
// {off, depth 1, depth 2} × 2 ALU pools × 2 FP-adder pools = 1152
// distinct configurations.
func DefaultGrid(base core.Config) Grid {
	return Grid{
		Base:          base,
		Slots:         []int{1, 2, 3, 4, 5, 6, 7, 8},
		Widths:        []int{1, 2, 4},
		LoadStore:     []int{1, 2, 3, 4},
		Standby:       []bool{false, true},
		StandbyDepths: []int{1, 2},
		ExtraALU:      []int{0, 1},
		ExtraFPAdd:    []int{0, 1},
	}
}

func axis[T any](vals []T, base T) []T {
	if len(vals) == 0 {
		return []T{base}
	}
	return vals
}

// Configs enumerates the grid. Standby depths beyond the first are
// skipped when standby stations are off (the depth is meaningless there),
// so every returned config is distinct.
func (g Grid) Configs() []core.Config {
	slots := axis(g.Slots, g.Base.ThreadSlots)
	widths := axis(g.Widths, g.Base.IssueWidth)
	ls := axis(g.LoadStore, g.Base.LoadStoreUnits)
	standby := axis(g.Standby, g.Base.StandbyStations)
	depths := axis(g.StandbyDepths, g.Base.StandbyDepth)
	alu := axis(g.ExtraALU, g.Base.ExtraUnits[isa.UnitIntALU])
	fpa := axis(g.ExtraFPAdd, g.Base.ExtraUnits[isa.UnitFPAdd])
	fpm := axis(g.ExtraFPMul, g.Base.ExtraUnits[isa.UnitFPMul])

	var out []core.Config
	for _, s := range slots {
		for _, d := range widths {
			for _, l := range ls {
				for _, sb := range standby {
					for di, dep := range depths {
						if !sb && di > 0 {
							continue
						}
						for _, a := range alu {
							for _, fa := range fpa {
								for _, fm := range fpm {
									cfg := g.Base
									cfg.ThreadSlots = s
									cfg.IssueWidth = d
									cfg.LoadStoreUnits = l
									cfg.StandbyStations = sb
									cfg.StandbyDepth = dep
									cfg.ExtraUnits[isa.UnitIntALU] = a
									cfg.ExtraUnits[isa.UnitFPAdd] = fa
									cfg.ExtraUnits[isa.UnitFPMul] = fm
									out = append(out, cfg)
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Cost is the hardware-cost heuristic the Pareto frontier trades cycles
// against: one unit of cost per decode datapath (S·D), per functional
// unit, and a quarter unit per standby latch (S·D·depth latches).
func Cost(cfg core.Config) float64 {
	eff := cfg.Effective()
	cost := float64(eff.ThreadSlots * eff.IssueWidth)
	for c := 1; c <= isa.NumUnitClasses; c++ {
		cost += float64(eff.UnitCount(isa.UnitClass(c)))
	}
	if eff.StandbyStations {
		depth := eff.StandbyDepth
		if depth < 1 {
			depth = 1
		}
		cost += 0.25 * float64(eff.ThreadSlots*eff.IssueWidth*depth)
	}
	return cost
}

// Point is one explored design point: a prediction plus its cost.
type Point struct {
	Prediction
	Cost float64 `json:"cost"`
}

// Explore predicts every configuration in the grid. Points are returned
// in enumeration order; unboundable configs (no finite execution) keep
// Unbounded set and predict zero cycles.
func (w *Workload) Explore(g Grid) []Point {
	cfgs := g.Configs()
	pts := make([]Point, len(cfgs))
	for i, cfg := range cfgs {
		pts[i] = Point{Prediction: w.Predict(cfg), Cost: Cost(cfg)}
	}
	return pts
}

// Pareto returns the non-dominated frontier of (cost, cycles): the points
// for which no other point is both cheaper-or-equal and faster-or-equal.
// The frontier is sorted by ascending cost (descending cycles). Unbounded
// points never make the frontier.
func Pareto(pts []Point) []Point {
	sorted := make([]Point, 0, len(pts))
	for _, p := range pts {
		if !p.Unbounded && p.Cycles > 0 {
			sorted = append(sorted, p)
		}
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Cost != sorted[j].Cost {
			return sorted[i].Cost < sorted[j].Cost
		}
		return sorted[i].Cycles < sorted[j].Cycles
	})
	var front []Point
	best := uint64(0)
	for _, p := range sorted {
		if len(front) == 0 || p.Cycles < best {
			// Equal-cost ties keep only the first (fastest) point.
			if len(front) > 0 && front[len(front)-1].Cost == p.Cost {
				continue
			}
			front = append(front, p)
			best = p.Cycles
		}
	}
	return front
}
