// Package model is the analytic performance model: a static workload
// characterizer plus a calibrated queuing predictor for the Hirata
// multithreaded processor (docs/MODEL.md).
//
// Where internal/lint.ComputeBounds proves a *certified lower bound* on
// cycles, this package aims at the *expected* cycle count, per-unit
// utilization, saturation set and speed-up of an arbitrary (slots, units,
// standby, issue-width) configuration — accurate enough to rank thousands
// of design points without simulating them (hirata-bench -explore), yet
// never below the certificate: every prediction is clamped to the
// lint.ComputeBounds bound, and a differential test enforces it.
//
// The model has two operating points:
//
//   - static only (no calibration runs): the three bound components
//     (dependence, resource, issue bandwidth) are combined with a smooth
//     maximum, so relative rankings reflect which resource saturates first.
//   - calibrated: one or more measured runs (core.Result, optionally an
//     obs CPI stack) pin the dynamic instruction count N(S), per-class
//     demand, the per-instruction data-stall and fetch-bubble rates, the
//     knee sharpness of the dependence/resource crossover, and the
//     queue-coupling saturation floor. See docs/MODEL.md for the
//     equations and the measured error against Tables 2–5.
package model

import (
	"hirata/internal/isa"
	"hirata/internal/sched"
)

// StaticProfile is what the characterizer can extract from program text
// alone: instruction mix, per-class issue-latency demand, the
// dependence-chain ILP profile at each decode width, and queue-coupling
// structure.
type StaticProfile struct {
	// Text and Entries identify the program; bounds are recomputed
	// against them for every predicted configuration.
	Text    []isa.Instruction
	Entries []int

	// Census is the whole-text per-class demand census (shared with the
	// lint resource bound through sched.CensusOf).
	Census sched.Census

	// Blocks is the number of basic blocks the text splits into.
	Blocks int

	// UsesQueues: the text maps queue registers (QEN/QENF), so threads
	// are coupled through the inter-slot FIFO ring and a doacross
	// saturation floor can apply.
	UsesQueues bool
	// HasFork / HasKill mirror the control structure lint keys on.
	HasFork bool
	HasKill bool

	// spans caches the summed per-block dependence span at each decode
	// width (spans[1] is the serial dependence height of the text).
	spans map[int]int64

	blocks []blockSpan
	qskip  func(isa.Reg) bool
}

type blockSpan struct{ start, end int }

// Characterize extracts the static profile of a program text. entries are
// the thread start PCs (empty means PC 0, matching lint.ComputeBounds).
func Characterize(text []isa.Instruction, entries []int) *StaticProfile {
	p := &StaticProfile{
		Text:    text,
		Entries: append([]int(nil), entries...),
		Census:  sched.CensusOf(text),
		spans:   make(map[int]int64),
	}

	// Queue-mapped registers communicate through the FIFOs, not the
	// register file; dependence edges through them are dropped, exactly
	// as the lint dependence bound does.
	var qregs map[isa.Reg]bool
	for _, in := range text {
		switch in.Op {
		case isa.QEN, isa.QENF:
			p.UsesQueues = true
			if qregs == nil {
				qregs = make(map[isa.Reg]bool)
			}
			if in.Rs1.Valid() {
				qregs[in.Rs1] = true
			}
			if in.Rs2.Valid() {
				qregs[in.Rs2] = true
			}
		case isa.FFORK:
			p.HasFork = true
		case isa.KILL:
			p.HasKill = true
		}
	}
	if qregs != nil {
		p.qskip = func(r isa.Reg) bool { return qregs[r] }
	}

	// Basic-block segmentation (same leader rules as the lint CFG:
	// entries, branch targets, and fall-throughs of branches, HALT and
	// FFORK start blocks). Per-block dependence spans are additive along
	// any executed path under in-order decode, so their text-wide sum is
	// the width-dependent ILP profile the model scales by.
	if len(text) == 0 {
		return p
	}
	leader := make([]bool, len(text)+1)
	leader[0], leader[len(text)] = true, true
	for _, e := range entries {
		if e >= 0 && e < len(text) {
			leader[e] = true
		}
	}
	for pc, in := range text {
		if in.Op.IsBranch() && in.Op != isa.JR {
			if t := int(in.Imm); t >= 0 && t < len(text) {
				leader[t] = true
			}
		}
		if in.Op.IsBranch() || in.Op == isa.HALT || in.Op == isa.FFORK {
			if pc+1 < len(text) {
				leader[pc+1] = true
			}
		}
	}
	start := 0
	for pc := 1; pc <= len(text); pc++ {
		if leader[pc] {
			p.blocks = append(p.blocks, blockSpan{start, pc})
			start = pc
		}
	}
	p.Blocks = len(p.blocks)
	return p
}

// span returns the summed per-block dependence span of the text at the
// given decode width (memoized).
func (p *StaticProfile) span(width int) int64 {
	if width < 1 {
		width = 1
	}
	if s, ok := p.spans[width]; ok {
		return s
	}
	var sum int64
	for _, b := range p.blocks {
		sum += int64(sched.DepSpan(p.Text[b.start:b.end], width, p.qskip))
	}
	p.spans[width] = sum
	return sum
}

// WidthRatio estimates how much of the width-1 dependence cost survives at
// decode width D: the ratio of summed block spans. 1.0 at D = 1, shrinking
// toward the critical-path floor as D grows. Used to extrapolate the
// calibrated data-dependence CPI to widths no anchor run measured.
func (p *StaticProfile) WidthRatio(width int) float64 {
	base := p.span(1)
	if base == 0 {
		return 1
	}
	return float64(p.span(width)) / float64(base)
}

// DepCPI is the static dependence-limited CPI of the text at a decode
// width: span cycles per dispatched instruction. It seeds the uncalibrated
// model's data-dependence term.
func (p *StaticProfile) DepCPI(width int) float64 {
	n := p.Census.Total().Count
	if n == 0 {
		return 1
	}
	cpi := float64(p.span(width)) / float64(n)
	if cpi < 1/float64(width) {
		cpi = 1 / float64(width)
	}
	return cpi
}
