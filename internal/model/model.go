package model

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"hirata/internal/core"
	"hirata/internal/isa"
	"hirata/internal/lint"
	"hirata/internal/obs"
)

const (
	// startupCycles mirrors lint's pipeline-fill floor (IF1 IF2 D1 D2).
	startupCycles = 4
	// defaultKnee is the crossover sharpness used when no anchor shows a
	// measurable overshoot above its max component: a sharp (max-like)
	// combination. Calibration lowers it when runs show dependence and
	// resource limits interfering.
	defaultKnee = kneeMax
	kneeMin     = 1.05
	kneeMax     = 64.0
	// satUtil is the utilization (percent) above which a unit class is
	// reported as saturated.
	satUtil = 90.0
	// floorStallFrac: when queue-empty/full stalls exceed this fraction of
	// an anchor run's slot-cycles, the run is treated as sitting on the
	// doacross coupling floor and its cycle count becomes a saturation
	// floor for larger machines.
	floorStallFrac = 0.25
	// standbyOffPenalty inflates the contention overshoot when the config
	// has no standby stations (decode blocks until a unit accepts), and
	// standbyDepthGain discounts it per extra station of depth.
	standbyOffPenalty = 1.10
	standbyDepthGain  = 0.25
)

// Anchor is one measured calibration run: a configuration, its simulated
// result, and optionally the machine row of an obs CPI stack, which pins
// the issue-cycle count exactly at issue widths above 1.
type Anchor struct {
	Config core.Config
	Result core.Result
	CPI    *obs.SlotCPI
}

// Workload is a characterized program plus its calibration state. Zero or
// more anchor runs refine the static profile into a calibrated predictor;
// all fitted parameters are re-derived lazily when anchors change.
//
// Anchors do not have to execute the workload's exact text: for workload
// families whose text varies with the thread count (the Livermore builds),
// anchors from sibling configurations pin the family's stall rates and the
// linear N(S) trend while bounds still come from this workload's own text.
type Workload struct {
	Name   string
	Static *StaticProfile

	anchors []Anchor

	mu       sync.Mutex
	fitted   *fit
	boundsMu sync.Mutex
	bounds   map[lint.Machine]lint.Bounds
}

// fit is the calibrated parameter set derived from the anchors.
type fit struct {
	calibrated bool

	// nA + nB·S: dynamic instruction count as a function of thread count.
	nA, nB float64
	// demand[c] = a + b·S: per-class issue-cycle demand trend.
	demA, demB [isa.NumUnitClasses + 1]float64

	// widthCPI maps each anchored issue width to the measured
	// dependence-limited CPI (issue cycles + data stalls per instruction).
	widthCPI map[int]float64
	// fetchCPI is the per-instruction fetch-bubble + priority-stall rate.
	fetchCPI float64

	// knee is the fitted dependence/resource crossover sharpness.
	knee float64
	// floor is the doacross coupling floor in cycles (0 = none observed).
	floor float64

	// base caches the 1-slot single-issue reference prediction for the
	// speed-up column.
	baseCycles float64
}

// NewWorkload characterizes text and returns an uncalibrated workload.
func NewWorkload(name string, text []isa.Instruction, entries []int) *Workload {
	return &Workload{Name: name, Static: Characterize(text, entries)}
}

// AddAnchor records a measured run for calibration.
func (w *Workload) AddAnchor(cfg core.Config, res core.Result) {
	w.addAnchor(Anchor{Config: cfg, Result: res})
}

// AddAnchorCPI records a measured run together with the machine row of its
// CPI stack (obs.CPIStack.Machine()), which replaces the estimated
// issue-cycle count with the exact one.
func (w *Workload) AddAnchorCPI(cfg core.Config, res core.Result, cpi obs.SlotCPI) {
	w.addAnchor(Anchor{Config: cfg, Result: res, CPI: &cpi})
}

func (w *Workload) addAnchor(a Anchor) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.anchors = append(w.anchors, a)
	w.fitted = nil
}

// Anchors returns the calibration runs recorded so far.
func (w *Workload) Anchors() []Anchor {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Anchor(nil), w.anchors...)
}

// Calibrated reports whether at least one anchor run refines the model.
func (w *Workload) Calibrated() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.anchors) > 0
}

// Bounds returns the lint certificate for this workload's text on the
// given configuration, memoized per machine shape.
func (w *Workload) Bounds(cfg core.Config) lint.Bounds {
	m := machineFor(cfg)
	w.boundsMu.Lock()
	defer w.boundsMu.Unlock()
	if w.bounds == nil {
		w.bounds = make(map[lint.Machine]lint.Bounds)
	}
	if b, ok := w.bounds[m]; ok {
		return b
	}
	b := lint.ComputeBounds(w.Static.Text, w.Static.Entries, m)
	w.bounds[m] = b
	return b
}

// machineFor maps a resolved core.Config onto the static analyses'
// machine shape (the same mapping as hirata.StaticBounds; replicated here
// because the model package sits below the root package).
func machineFor(cfg core.Config) lint.Machine {
	eff := cfg.Effective()
	m := lint.Machine{
		ThreadSlots:      eff.ThreadSlots,
		IssueWidth:       eff.IssueWidth,
		MaxIssuePerCycle: eff.MaxIssuePerCycle,
	}
	for u := isa.UnitClass(1); int(u) <= isa.NumUnitClasses; u++ {
		m.Units[u] = eff.UnitCount(u)
	}
	return m
}

// anchorStats is the per-anchor digest the fit works from.
type anchorStats struct {
	slots, width   int
	cycles         float64
	n              float64 // instructions issued
	demand         [isa.NumUnitClasses + 1]float64
	depCPI         float64 // (issue cycles + data stalls) / N
	fetchCPI       float64 // (fetch-empty + priority stalls) / N
	queueStallFrac float64 // queue stalls / (S · T)
}

func digestAnchor(a Anchor) (anchorStats, bool) {
	eff := a.Config.Effective()
	st := anchorStats{
		slots:  eff.ThreadSlots,
		width:  eff.IssueWidth,
		cycles: float64(a.Result.Cycles),
		n:      float64(a.Result.Instructions),
	}
	if st.n <= 0 || st.cycles <= 0 {
		return st, false
	}
	var data, fetch, queue, total float64
	for _, s := range a.Result.Slots {
		data += float64(s.Stalls[core.StallData])
		fetch += float64(s.Stalls[core.StallEmpty] + s.Stalls[core.StallPriority])
		queue += float64(s.Stalls[core.StallQueueEmpty] + s.Stalls[core.StallQueueFull])
		for _, v := range s.Stalls {
			total += float64(v)
		}
	}
	for _, u := range a.Result.Units {
		st.demand[u.Class] += float64(u.BusyCycles)
	}

	// Issue cycles: exact from the CPI stack when present; at width 1
	// every issued instruction spends exactly one decode cycle; at wider
	// decode, estimate from the slot-time identity T·S = issued + stalls
	// + idle, assuming negligible idle (anchor runs keep all slots busy),
	// clamped to the feasible [N/D, N] band.
	issueCycles := st.n
	if a.CPI != nil {
		issueCycles = float64(a.CPI.Cycles[obs.CPIIssued])
	} else if st.width > 1 {
		issueCycles = st.cycles*float64(st.slots) - total
		if lo := st.n / float64(st.width); issueCycles < lo {
			issueCycles = lo
		}
		if issueCycles > st.n {
			issueCycles = st.n
		}
	}
	st.depCPI = (issueCycles + data) / st.n
	st.fetchCPI = fetch / st.n
	st.queueStallFrac = queue / (st.cycles * float64(st.slots))
	return st, true
}

// linfit least-squares fits y = a + b·x; a lone point (or identical xs)
// degenerates to the mean with zero slope.
func linfit(xs, ys []float64) (a, b float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n, 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b
}

func (w *Workload) fit() *fit {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fitted != nil {
		return w.fitted
	}
	f := &fit{widthCPI: make(map[int]float64), knee: defaultKnee}
	w.fitted = f

	var digests []anchorStats
	for _, a := range w.anchors {
		if d, ok := digestAnchor(a); ok {
			digests = append(digests, d)
		}
	}
	if len(digests) == 0 {
		return f
	}
	f.calibrated = true

	// N(S) and per-class demand trends across thread counts.
	var xs, ys []float64
	for _, d := range digests {
		xs = append(xs, float64(d.slots))
		ys = append(ys, d.n)
	}
	f.nA, f.nB = linfit(xs, ys)
	for c := 1; c <= isa.NumUnitClasses; c++ {
		ys = ys[:0]
		for _, d := range digests {
			ys = append(ys, d.demand[c])
		}
		f.demA[c], f.demB[c] = linfit(xs, ys)
	}

	// Per-width dependence CPI and the fetch-bubble rate: averaged over
	// the anchors measuring each width.
	widthSum, widthCnt := map[int]float64{}, map[int]int{}
	var fetchSum float64
	for _, d := range digests {
		widthSum[d.width] += d.depCPI
		widthCnt[d.width]++
		fetchSum += d.fetchCPI
	}
	for wd, s := range widthSum {
		f.widthCPI[wd] = s / float64(widthCnt[wd])
	}
	f.fetchCPI = fetchSum / float64(len(digests))

	// Coupling floor: any anchor dominated by queue-register stalls is
	// sitting on the doacross ring's serial limit; the smallest such
	// cycle count is a floor no larger machine can beat.
	if w.Static.UsesQueues {
		for _, d := range digests {
			if d.queueStallFrac >= floorStallFrac {
				if f.floor == 0 || d.cycles < f.floor {
					f.floor = d.cycles
				}
			}
		}
	}

	// Knee sharpness: pick the p minimizing the worst relative error
	// across the anchors. A soft knee (small p) models dependence and
	// resource limits interfering (cycles overshoot the max component);
	// a sharp knee (large p) models them overlapping cleanly. Fitting
	// minimax over every anchor keeps one contended anchor from softening
	// the knee so far that it inflates anchors where a single component
	// dominates. Anchors riding the coupling floor are excluded: their
	// excess is the doacross ring's serial limit, which the floor term
	// models, not dependence/resource interference.
	type kneeObs struct{ dep, res, eta, measured float64 }
	var kobs []kneeObs
	for i, d := range digests {
		if d.queueStallFrac >= floorStallFrac {
			continue
		}
		c := w.componentsLocked(f, d.slots, d.width, machineFromAnchor(w.anchors[i]))
		kobs = append(kobs, kneeObs{
			dep: c.dep, res: c.res,
			eta:      contentionEta(w.anchors[i].Config.Effective()),
			measured: d.cycles,
		})
	}
	if len(kobs) > 0 {
		worstAt := func(p float64) float64 {
			worst := 0.0
			for _, o := range kobs {
				maxc := math.Max(o.dep, o.res)
				t := maxc + o.eta*(pnorm(o.dep, o.res, p)-maxc)
				if e := math.Abs(t-o.measured) / o.measured; e > worst {
					worst = e
				}
			}
			return worst
		}
		const steps = 120
		bestP, bestErr := kneeMax, worstAt(kneeMax)
		ratio := math.Pow(kneeMax/kneeMin, 1.0/steps)
		for p := kneeMin; p < kneeMax; p *= ratio {
			if e := worstAt(p); e < bestErr {
				bestP, bestErr = p, e
			}
		}
		f.knee = bestP
	}

	// Reference point for the speed-up column: the same workload on one
	// thread slot, single issue, base units.
	f.baseCycles = 0
	return f
}

func machineFromAnchor(a Anchor) lint.Machine { return machineFor(a.Config) }

// components holds the analytic time components for one configuration.
type components struct {
	n               float64 // predicted dynamic instruction count
	dep, res, issue float64
	demand          [isa.NumUnitClasses + 1]float64
	resClass        isa.UnitClass
}

func (c components) maxComponent() float64 {
	return math.Max(c.dep, math.Max(c.res, c.issue))
}

// componentsLocked computes the calibrated time components for a machine
// shape. Caller holds w.mu (or f is fully built).
func (w *Workload) componentsLocked(f *fit, slots, width int, m lint.Machine) components {
	var c components
	c.n = f.nA + f.nB*float64(slots)
	if c.n < 1 {
		c.n = 1
	}
	perThread := c.n / float64(slots)

	// Dependence / pipeline component: per-thread instructions times the
	// per-instruction decode + data-stall + fetch-bubble cost.
	c.dep = startupCycles + perThread*(w.widthDepCPI(f, width)+f.fetchCPI)

	// Resource component: the most loaded unit class at its service rate.
	c.res = startupCycles
	for cls := 1; cls <= isa.NumUnitClasses; cls++ {
		dem := f.demA[cls] + f.demB[cls]*float64(slots)
		if dem < 0 {
			dem = 0
		}
		c.demand[cls] = dem
		units := m.Units[cls]
		if units < 1 {
			units = 1
		}
		if t := startupCycles + dem/float64(units); t > c.res {
			c.res, c.resClass = t, isa.UnitClass(cls)
		}
	}

	// Issue-bandwidth component: S·D decodes per cycle, optionally capped
	// by the machine-wide issue limit.
	c.issue = startupCycles + c.n/float64(slots*width)
	if m.MaxIssuePerCycle > 0 {
		if t := startupCycles + c.n/float64(m.MaxIssuePerCycle); t > c.issue {
			c.issue = t
		}
	}
	return c
}

// widthDepCPI returns the calibrated dependence CPI at an issue width,
// interpolating between anchored widths on the 1−1/D axis and
// extrapolating beyond them with the static span ratio.
func (w *Workload) widthDepCPI(f *fit, width int) float64 {
	if v, ok := f.widthCPI[width]; ok {
		return v
	}
	widths := make([]int, 0, len(f.widthCPI))
	for d := range f.widthCPI {
		widths = append(widths, d)
	}
	sort.Ints(widths)
	x := func(d int) float64 { return 1 - 1/float64(d) }
	clamp := func(v float64) float64 {
		if lo := 1 / float64(width); v < lo {
			return lo
		}
		return v
	}
	// Between two anchored widths: linear interpolation.
	for i := 0; i+1 < len(widths); i++ {
		lo, hi := widths[i], widths[i+1]
		if lo < width && width < hi {
			t := (x(width) - x(lo)) / (x(hi) - x(lo))
			return clamp(f.widthCPI[lo] + t*(f.widthCPI[hi]-f.widthCPI[lo]))
		}
	}
	// Outside the anchored range: scale the nearest anchored point by the
	// static dependence-span ratio.
	near := widths[0]
	if width > widths[len(widths)-1] {
		near = widths[len(widths)-1]
	}
	rs := w.Static.WidthRatio(near)
	if rs == 0 {
		return clamp(f.widthCPI[near])
	}
	return clamp(f.widthCPI[near] * w.Static.WidthRatio(width) / rs)
}

// contentionEta scales the knee overshoot by the config's ability to
// absorb contention: standby stations hide unit-busy backpressure, deeper
// stations hide more, and no stations at all cost a little extra.
func contentionEta(eff core.Config) float64 {
	if !eff.StandbyStations {
		return standbyOffPenalty
	}
	depth := eff.StandbyDepth
	if depth < 1 {
		depth = 1
	}
	eta := 1 / (1 + standbyDepthGain*float64(depth-1))
	if eta < 0.5 {
		eta = 0.5
	}
	return eta
}

// pnorm is the smooth maximum (x^p + y^p)^(1/p), computed in log space to
// stay finite for large components.
func pnorm(x, y, p float64) float64 {
	if x <= 0 {
		return y
	}
	if y <= 0 {
		return x
	}
	m := math.Max(x, y)
	return m * math.Pow(math.Pow(x/m, p)+math.Pow(y/m, p), 1/p)
}

// Prediction is the model's output for one configuration.
type Prediction struct {
	Config  core.Config  `json:"config"`
	Machine lint.Machine `json:"machine"`

	// Cycles is the final prediction, clamped to Bound.
	Cycles uint64 `json:"cycles"`
	// Raw is the unclamped model output in cycles.
	Raw float64 `json:"raw"`
	// Bound is the lint.ComputeBounds certificate (lower bound).
	Bound int64 `json:"bound"`
	// Clamped: Raw fell below the certificate and was raised to it.
	Clamped bool `json:"clamped,omitempty"`
	// Unbounded: the static analysis proves no finite execution exists.
	Unbounded bool `json:"unbounded,omitempty"`
	// Calibrated: anchors refined the static model.
	Calibrated bool `json:"calibrated"`

	// Instructions is the predicted dynamic instruction count.
	Instructions float64 `json:"instructions"`
	// DepTime, ResTime, IssueTime are the component times; Knee is their
	// smooth combination before clamping, Floor the doacross coupling
	// floor when one applies.
	DepTime   float64 `json:"depTime"`
	ResTime   float64 `json:"resTime"`
	IssueTime float64 `json:"issueTime"`
	Knee      float64 `json:"knee"`
	Floor     float64 `json:"floor,omitempty"`

	// Util is the predicted utilization percentage per unit class
	// (U = N·L/T over the class's units); Saturated lists classes above
	// the 90% saturation threshold, most loaded first.
	Util      [isa.NumUnitClasses + 1]float64 `json:"util"`
	Saturated []isa.UnitClass                 `json:"saturated,omitempty"`

	// Speedup is predicted cycles of the 1-slot single-issue base-unit
	// reference divided by this prediction's cycles.
	Speedup float64 `json:"speedup"`
}

// Predict runs the analytic model for one configuration.
func (w *Workload) Predict(cfg core.Config) Prediction {
	p := w.predict(cfg)
	if base := w.baseline(); base > 0 && p.Cycles > 0 && !p.Unbounded {
		p.Speedup = base / float64(p.Cycles)
	}
	return p
}

// baseline computes (once) the reference cycles for the speed-up column.
func (w *Workload) baseline() float64 {
	f := w.fit()
	w.mu.Lock()
	cached := f.baseCycles
	w.mu.Unlock()
	if cached != 0 {
		return cached
	}
	ref := w.predict(core.Config{ThreadSlots: 1, IssueWidth: 1, LoadStoreUnits: 1})
	v := float64(ref.Cycles)
	if ref.Unbounded {
		v = -1
	}
	w.mu.Lock()
	f.baseCycles = v
	w.mu.Unlock()
	return v
}

func (w *Workload) predict(cfg core.Config) Prediction {
	eff := cfg.Effective()
	m := machineFor(eff)
	b := w.Bounds(eff)
	p := Prediction{Config: cfg, Machine: m, Bound: b.Bound, Unbounded: b.Unbounded}
	if b.Unbounded {
		return p
	}

	f := w.fit()
	p.Calibrated = f.calibrated

	var c components
	if f.calibrated {
		c = w.componentsLocked(f, m.ThreadSlots, m.IssueWidth, m)
	} else {
		// Static-only: the certificate's own components are the best
		// available estimates; the smooth max still ranks configurations
		// by which limit binds first.
		c.n = float64(b.TotalCount)
		c.dep = float64(b.DepBound)
		c.res = float64(b.ResourceBound)
		c.issue = float64(b.IssueBound)
		for _, cb := range b.Classes {
			c.demand[cb.Class] = float64(cb.Demand)
		}
	}
	p.Instructions = c.n
	p.DepTime, p.ResTime, p.IssueTime = c.dep, c.res, c.issue

	maxc := math.Max(c.dep, c.res)
	knee := maxc + contentionEta(eff)*(pnorm(c.dep, c.res, f.knee)-maxc)
	p.Knee = knee

	t := math.Max(knee, c.issue)
	if f.calibrated && f.floor > 0 && w.Static.UsesQueues {
		p.Floor = f.floor
		t = math.Max(t, f.floor)
	}
	if t < startupCycles+1 {
		t = startupCycles + 1
	}
	p.Raw = t

	p.Cycles = uint64(math.Ceil(t))
	if b.Bound > 0 && p.Cycles < uint64(b.Bound) {
		p.Cycles = uint64(b.Bound)
		p.Clamped = true
	}

	// Utilization per class at the predicted cycle count.
	total := float64(p.Cycles)
	for cls := 1; cls <= isa.NumUnitClasses; cls++ {
		units := m.Units[cls]
		if units < 1 {
			units = 1
		}
		if total > 0 {
			u := 100 * c.demand[cls] / (float64(units) * total)
			if u > 100 {
				u = 100
			}
			p.Util[cls] = u
		}
	}
	type su struct {
		c isa.UnitClass
		u float64
	}
	var sats []su
	for cls := 1; cls <= isa.NumUnitClasses; cls++ {
		if p.Util[cls] >= satUtil {
			sats = append(sats, su{isa.UnitClass(cls), p.Util[cls]})
		}
	}
	sort.Slice(sats, func(i, j int) bool { return sats[i].u > sats[j].u })
	for _, s := range sats {
		p.Saturated = append(p.Saturated, s.c)
	}
	return p
}

// Format renders the prediction as a multi-line report (hirata-lint
// -model): predicted cycles, the component times, and the per-class
// utilization with saturated classes marked.
func (p Prediction) Format() string {
	var b []byte
	add := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	mode := "static-only"
	if p.Calibrated {
		mode = "calibrated"
	}
	add("analytic model (%s): S=%d D=%d\n", mode, p.Machine.ThreadSlots, p.Machine.IssueWidth)
	if p.Unbounded {
		add("  unbounded: no finite execution exists (see -bound)\n")
		return string(b)
	}
	add("  predicted cycles: %d (certified lower bound %d", p.Cycles, p.Bound)
	if p.Clamped {
		add(", clamped to bound")
	}
	add(")\n")
	add("  components: dependence %.0f, resource %.0f, issue %.0f", p.DepTime, p.ResTime, p.IssueTime)
	if p.Floor > 0 {
		add(", queue-coupling floor %.0f", p.Floor)
	}
	add("\n")
	add("  predicted instructions: %.0f, speed-up vs 1-slot base: %.2f\n", p.Instructions, p.Speedup)
	add("  utilization:")
	for cls := 1; cls <= isa.NumUnitClasses; cls++ {
		mark := ""
		if p.Util[cls] >= satUtil {
			mark = "*"
		}
		add(" %s=%.0f%%%s", isa.UnitClass(cls), p.Util[cls], mark)
	}
	add("\n")
	if len(p.Saturated) > 0 {
		add("  saturated (>=%.0f%%):", satUtil)
		for _, c := range p.Saturated {
			add(" %s", c)
		}
		add("\n")
	}
	return string(b)
}

// Describe summarizes a prediction on one line (the -explore report row).
func (p Prediction) Describe() string {
	eff := p.Config.Effective()
	sb := "off"
	if eff.StandbyStations {
		sb = fmt.Sprintf("d%d", eff.StandbyDepth)
	}
	sat := ""
	for i, c := range p.Saturated {
		if i > 0 {
			sat += ","
		}
		sat += c.String()
	}
	if sat == "" {
		sat = "-"
	}
	return fmt.Sprintf("S=%d D=%d ls=%d alu=%d fpa=%d sb=%-3s cycles=%-8d bound=%-8d speedup=%5.2f sat=%s",
		eff.ThreadSlots, eff.IssueWidth, eff.UnitCount(isa.UnitLoadStore),
		eff.UnitCount(isa.UnitIntALU), eff.UnitCount(isa.UnitFPAdd), sb,
		p.Cycles, p.Bound, p.Speedup, sat)
}
