package core

import (
	"strings"
	"testing"

	"hirata/internal/asm"
	"hirata/internal/isa"
	"hirata/internal/mem"
)

func TestTextTracerEvents(t *testing.T) {
	prog := asm.MustAssemble(`
		ffork
		tid  r1
		addi r2, r1, 1
		mul  r3, r2, r2
		bnez r1, other
		sw   r3, 100(r0)
		halt
	other:	sw   r3, 101(r0)
		halt
	`)
	m, _ := prog.NewMemory(128)
	p, err := New(Config{ThreadSlots: 2, StandbyStations: true, RotationInterval: 4}, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.StartThread(0); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	p.Observe(&TextTracer{W: &buf})
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"issue", "select", "redirect", "bind", "rotate", "end", "IntALU", "IntMul", "halt",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, firstLines(out, 20))
		}
	}
	// Order sanity: the first bind precedes the first issue.
	if strings.Index(out, "bind") > strings.Index(out, "issue") {
		t.Error("bind event did not precede the first issue")
	}
}

func TestTracerTrapEvent(t *testing.T) {
	prog := asm.MustAssemble(`
		lw   r1, 1000(r0)
		addi r2, r1, 1
		halt
	`)
	m := mem.NewMemoryWithRemote(2048, 1000, 100)
	m.SetInt(1000, 5)
	p, err := New(Config{ThreadSlots: 1, ContextFrames: 2, StandbyStations: true}, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.StartThread(0); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	p.Observe(&TextTracer{W: &buf})
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trap") {
		t.Errorf("no trap event in trace:\n%s", firstLines(buf.String(), 20))
	}
}

// countingObserver tallies events per callback, for composition tests.
type countingObserver struct {
	issues, selects, completes, stalls, redirects, binds, traps, rotates, ends int
}

func (c *countingObserver) Issue(uint64, int, int64, isa.Instruction) { c.issues++ }
func (c *countingObserver) Select(uint64, int, int64, isa.Instruction, isa.UnitClass, int, uint64) {
	c.selects++
}
func (c *countingObserver) Complete(uint64, int, int64, isa.Instruction, isa.UnitClass, int) {
	c.completes++
}
func (c *countingObserver) Stall(uint64, int, int64, StallReason) { c.stalls++ }
func (c *countingObserver) Redirect(uint64, int, int64)           { c.redirects++ }
func (c *countingObserver) Bind(uint64, int, int, int64)          { c.binds++ }
func (c *countingObserver) Trap(uint64, int, int, int64)          { c.traps++ }
func (c *countingObserver) Rotate(uint64, []int)                  { c.rotates++ }
func (c *countingObserver) ThreadEnd(uint64, int, int, bool)      { c.ends++ }

// TestObserveComposes checks that repeated Observe calls fan out instead of
// replacing the previously attached observer.
func TestObserveComposes(t *testing.T) {
	prog := asm.MustAssemble(`
		addi r1, r0, 3
	loop:	addi r1, r1, -1
		bnez r1, loop
		halt
	`)
	m, _ := prog.NewMemory(64)
	p, err := New(Config{ThreadSlots: 1, StandbyStations: true}, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	var a, b countingObserver
	p.Observe(&a)
	p.Observe(&b)
	p.Observe(nil) // ignored
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("composed observers diverge: a=%+v b=%+v", a, b)
	}
	if a.issues == 0 || a.selects == 0 || a.binds == 0 || a.ends == 0 {
		t.Errorf("observer missed events: %+v", a)
	}
	if uint64(a.issues) != res.Instructions {
		t.Errorf("issues = %d, want %d", a.issues, res.Instructions)
	}
}

// TestCompleteAndStallEvents checks the write-back and stall callbacks the
// observability layer's latency/stall attribution depends on.
func TestCompleteAndStallEvents(t *testing.T) {
	// The mul chain guarantees data stalls (result latency 5) and the
	// selected instructions must all complete.
	prog := asm.MustAssemble(`
		addi r1, r0, 7
		mul  r2, r1, r1
		mul  r3, r2, r2
		add  r4, r3, r3
		sw   r4, 100(r0)
		halt
	`)
	m, _ := prog.NewMemory(128)
	p, err := New(Config{ThreadSlots: 1, StandbyStations: true}, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	var c countingObserver
	p.Observe(&c)
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.completes != c.selects {
		t.Errorf("completes = %d, selects = %d; every selected instruction must complete", c.completes, c.selects)
	}
	if c.completes == 0 {
		t.Error("no complete events")
	}
	if c.stalls == 0 {
		t.Error("no stall events despite a dependent mul chain")
	}
	var recorded uint64
	for _, s := range res.Slots {
		for _, n := range s.Stalls {
			recorded += n
		}
	}
	if uint64(c.stalls) != recorded {
		t.Errorf("stall events = %d, Result stall count = %d", c.stalls, recorded)
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
