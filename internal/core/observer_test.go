package core

import (
	"strings"
	"testing"

	"hirata/internal/asm"
	"hirata/internal/mem"
)

func TestTextTracerEvents(t *testing.T) {
	prog := asm.MustAssemble(`
		ffork
		tid  r1
		addi r2, r1, 1
		mul  r3, r2, r2
		bnez r1, other
		sw   r3, 100(r0)
		halt
	other:	sw   r3, 101(r0)
		halt
	`)
	m, _ := prog.NewMemory(128)
	p, err := New(Config{ThreadSlots: 2, StandbyStations: true, RotationInterval: 4}, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.StartThread(0); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	p.Observe(&TextTracer{W: &buf})
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"issue", "select", "redirect", "bind", "rotate", "end", "IntALU", "IntMul", "halt",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, firstLines(out, 20))
		}
	}
	// Order sanity: the first bind precedes the first issue.
	if strings.Index(out, "bind") > strings.Index(out, "issue") {
		t.Error("bind event did not precede the first issue")
	}
}

func TestTracerTrapEvent(t *testing.T) {
	prog := asm.MustAssemble(`
		lw   r1, 1000(r0)
		addi r2, r1, 1
		halt
	`)
	m := mem.NewMemoryWithRemote(2048, 1000, 100)
	m.SetInt(1000, 5)
	p, err := New(Config{ThreadSlots: 1, ContextFrames: 2, StandbyStations: true}, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.StartThread(0); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	p.Observe(&TextTracer{W: &buf})
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trap") {
		t.Errorf("no trap event in trace:\n%s", firstLines(buf.String(), 20))
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
