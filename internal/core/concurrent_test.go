package core

import (
	"strconv"
	"testing"

	"hirata/internal/asm"
	"hirata/internal/exec"
	"hirata/internal/isa"
	"hirata/internal/mem"
)

// TestConcurrentMultithreadingSwitch: with more context frames than thread
// slots, a remote-memory load triggers a data-absence trap and the slot
// switches to another ready thread, hiding the remote latency.
func TestConcurrentMultithreadingSwitch(t *testing.T) {
	// Two threads on one slot; each loads remote data then does local work.
	src := `
		.equ REMOTE 1000
		tid  r1
		slli r2, r1, 2
		addi r3, r2, REMOTE
		lw   r4, 0(r3)        ; remote load: data absence trap
		addi r5, r4, 1
		sw   r5, 100(r1)
		halt
	`
	prog := asm.MustAssemble(src)
	run := func(frames int) (Result, *mem.Memory) {
		m := mem.NewMemoryWithRemote(2048, 1000, 200)
		if err := prog.InitMemory(m); err != nil {
			t.Fatal(err)
		}
		m.SetInt(1000, 70)
		m.SetInt(1004, 80)
		p, err := New(Config{ThreadSlots: 1, ContextFrames: frames, StandbyStations: true}, prog.Text, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.StartThread(0); err != nil {
			t.Fatal(err)
		}
		if err := p.StartThread(0); err != nil {
			t.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, m
	}

	// Concurrent multithreading on: 2 frames, 1 slot.
	resC, mm := run(2)
	if got := mm.IntAt(100); got != 71 {
		t.Errorf("thread 0 result = %d, want 71", got)
	}
	if got := mm.IntAt(101); got != 81 {
		t.Errorf("thread 1 result = %d, want 81", got)
	}
	if resC.Switches == 0 {
		t.Error("no context switches with spare context frames")
	}
}

// TestContextSwitchHidesLatency: two threads with traps overlap their
// remote waits, finishing sooner than the same work run back to back.
func TestContextSwitchHidesLatency(t *testing.T) {
	src := `
		tid  r1
		slli r2, r1, 3
		addi r3, r2, 1000
		lw   r4, 0(r3)
		lw   r5, 1(r3)
		lw   r6, 2(r3)
		add  r7, r4, r5
		add  r7, r7, r6
		sw   r7, 100(r1)
		halt
	`
	prog := asm.MustAssemble(src)
	build := func(frames int, nThreads int) *Processor {
		m := mem.NewMemoryWithRemote(2048, 1000, 300)
		for i := int64(1000); i < 1040; i++ {
			m.SetInt(i, i)
		}
		p, err := New(Config{ThreadSlots: 1, ContextFrames: frames, StandbyStations: true}, prog.Text, m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nThreads; i++ {
			if err := p.StartThread(0); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}
	pSwitch := build(4, 4)
	resSwitch, err := pSwitch.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resSwitch.Switches == 0 {
		t.Fatal("expected context switches")
	}
	// Baseline: one frame per... run threads serially through one frame by
	// running four separate single-thread simulations.
	var serial uint64
	for i := 0; i < 4; i++ {
		p := build(1, 1)
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		serial += res.Cycles
	}
	if resSwitch.Cycles >= serial {
		t.Errorf("concurrent multithreading did not hide latency: %d >= %d cycles",
			resSwitch.Cycles, serial)
	}
	// Results must still be correct.
	for i := int64(0); i < 4; i++ {
		base := 1000 + 8*i
		want := base + (base + 1) + (base + 2)
		if got := pSwitch.Mem().IntAt(100 + i); got != want {
			t.Errorf("thread %d result = %d, want %d", i, got, want)
		}
	}
}

// TestExplicitRotationSuppressesSwitch: in explicit-rotation mode a remote
// load must not cause a context switch (§2.3.1).
func TestExplicitRotationSuppressesSwitch(t *testing.T) {
	src := `
		lw   r4, 1000(r0)
		addi r5, r4, 1
		halt
	`
	prog := asm.MustAssemble(src)
	m := mem.NewMemoryWithRemote(2048, 1000, 100)
	m.SetInt(1000, 7)
	p, err := New(Config{ThreadSlots: 1, ContextFrames: 2, StandbyStations: true, ExplicitRotation: true}, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.StartThread(0); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != 0 {
		t.Errorf("explicit mode took %d context switches, want 0", res.Switches)
	}
	if res.Cycles < 100 {
		t.Errorf("remote load should still pay the latency; cycles = %d", res.Cycles)
	}
}

// TestChgpriRotation: explicit-rotation mode rotates on chgpri and a thread
// waiting for the highest priority proceeds afterwards.
func TestChgpriRotation(t *testing.T) {
	// Both threads do a priority store; thread 1 must wait until thread 0
	// rotates priority to it.
	src := `
		setmode 1
		ffork
		tid  r1
		bnez r1, second
		swp  r1, 200(r0)     ; thread 0 has priority initially
		chgpri               ; hand priority to thread 1
	done0:	halt
	second:	swp  r1, 201(r0)     ; waits for priority
		halt
	`
	p, _ := runSrc(t, Config{ThreadSlots: 2, StandbyStations: true, ExplicitRotation: false}, src)
	if got := p.Mem().IntAt(200); got != 0 {
		t.Errorf("mem[200] = %d, want 0", got)
	}
	if got := p.Mem().IntAt(201); got != 1 {
		t.Errorf("mem[201] = %d, want 1", got)
	}
}

// TestImplicitRotationAvoidsStarvation: with fixed priorities a saturating
// high-priority thread could starve others; rotation bounds the wait.
func TestImplicitRotationAvoidsStarvation(t *testing.T) {
	// Both threads issue long chains of loads through one load/store unit.
	src := `
		tid  r1
		slli r2, r1, 5
	`
	for i := 0; i < 16; i++ {
		src += "\tlw r3, " + itoa(100+i) + "(r2)\n"
	}
	src += "\tsw r1, 300(r1)\n\thalt\n"
	prog := asm.MustAssemble(src)
	m, _ := prog.NewMemory(512)
	p, _ := New(Config{ThreadSlots: 2, StandbyStations: true, RotationInterval: 8}, prog.Text, m)
	if err := p.StartThread(0); err != nil {
		t.Fatal(err)
	}
	if err := p.StartThread(0); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if p.Mem().IntAt(300) != 0 || p.Mem().IntAt(301) != 1 {
		t.Error("one thread did not finish")
	}
	// Both slots should make comparable progress: neither issued count can
	// be zero and the later finisher shouldn't be starved indefinitely.
	if res.Slots[0].Issued == 0 || res.Slots[1].Issued == 0 {
		t.Errorf("starvation: issued = %d/%d", res.Slots[0].Issued, res.Slots[1].Issued)
	}
}

// TestCoreMatchesInterpreter: the full multithreaded machine with one slot
// computes the same results as the functional interpreter.
func TestCoreMatchesInterpreter(t *testing.T) {
	src := `
		.data
		.org 100
	vals:	.float 1.5, 2.25, 3.125, -4.0
	ints:	.word 3, 5, -7, 11
		.text
		li   r1, 0
		flw  f1, vals+0
		flw  f2, vals+1
		flw  f3, vals+2
		fmul f4, f1, f2
		fadd f5, f4, f3
		fsqrt f6, f5
		fsw  f6, 120(r0)
		lw   r2, ints+0
		lw   r3, ints+1
		mul  r4, r2, r3
		sw   r4, 121(r0)
	loop:	addi r1, r1, 1
		slti r5, r1, 50
		bnez r5, loop
		sw   r1, 122(r0)
		halt
	`
	prog := asm.MustAssemble(src)

	mi, _ := prog.NewMemory(256)
	ip := exec.NewInterp(prog.Text, mi)
	if err := ip.Run(); err != nil {
		t.Fatal(err)
	}

	mc, _ := prog.NewMemory(256)
	p, _ := New(Config{ThreadSlots: 1, StandbyStations: true}, prog.Text, mc)
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}

	for _, addr := range []int64{120, 121, 122} {
		a, _ := mi.Load(addr)
		b, _ := mc.Load(addr)
		if a != b {
			t.Errorf("mem[%d]: interp %#x != core %#x", addr, a, b)
		}
	}
}

// TestSuperscalarIssueWidth: a (D,1) thread slot issues independent
// instructions in parallel, beating D=1 on ILP-rich code, and computes the
// same answer.
func TestSuperscalarIssueWidth(t *testing.T) {
	// Independent work spread across different functional units, so a
	// wider slot can issue to the ALU and the shifter in the same cycle.
	src := `
		addi r20, r0, 1
	`
	for i := 0; i < 12; i++ {
		src += "\taddi r" + itoa(1+i%4) + ", r0, " + itoa(i) + "\n"
		src += "\tslli r" + itoa(5+i%4) + ", r20, " + itoa(i%8) + "\n"
	}
	src += `
		add  r10, r1, r5
		sw   r10, 100(r0)
		halt
	`
	want := int64(11 + (1 << 3)) // r1 = 11 (i=11 -> r4? see rotation), checked below
	_ = want
	var cyc [3]uint64
	var results [3]int64
	for i, width := range []int{1, 2, 4} {
		p, res := runSrc(t, Config{ThreadSlots: 1, StandbyStations: true, IssueWidth: width}, src)
		results[i] = p.Mem().IntAt(100)
		cyc[i] = res.Cycles
	}
	if results[0] != results[1] || results[1] != results[2] {
		t.Fatalf("issue width changed results: %v", results)
	}
	if cyc[1] >= cyc[0] {
		t.Errorf("width 2 not faster than width 1: %d >= %d", cyc[1], cyc[0])
	}
	if cyc[2] > cyc[1] {
		t.Errorf("width 4 slower than width 2: %d > %d", cyc[2], cyc[1])
	}
}

// TestSuperscalarRespectsDependences: WAR and RAW within the window must
// not change results.
func TestSuperscalarRespectsDependences(t *testing.T) {
	src := `
		addi r1, r0, 5
		addi r2, r1, 10    ; RAW on r1
		addi r1, r0, 99    ; WAR against previous read of r1
		add  r3, r1, r2    ; 99 + 15
		sw   r3, 100(r0)
		sw   r2, 101(r0)
		halt
	`
	for _, width := range []int{1, 2, 4, 8} {
		p, _ := runSrc(t, Config{ThreadSlots: 1, StandbyStations: true, IssueWidth: width}, src)
		if got := p.Mem().IntAt(100); got != 114 {
			t.Errorf("width %d: r3 = %d, want 114", width, got)
		}
		if got := p.Mem().IntAt(101); got != 15 {
			t.Errorf("width %d: r2 = %d, want 15", width, got)
		}
	}
}

// TestPrivateICache: per-slot fetch units must not change results and
// should not be slower than the shared fetch unit.
func TestPrivateICache(t *testing.T) {
	src := `
		ffork
		tid  r1
		addi r2, r1, 1
		mul  r3, r2, r2
		sw   r3, 100(r1)
		halt
	`
	pShared, resShared := runSrc(t, Config{ThreadSlots: 8, StandbyStations: true}, src)
	pPrivate, resPrivate := runSrc(t, Config{ThreadSlots: 8, StandbyStations: true, PrivateICache: true}, src)
	for i := int64(0); i < 8; i++ {
		want := (i + 1) * (i + 1)
		if got := pShared.Mem().IntAt(100 + i); got != want {
			t.Errorf("shared: thread %d = %d, want %d", i, got, want)
		}
		if got := pPrivate.Mem().IntAt(100 + i); got != want {
			t.Errorf("private: thread %d = %d, want %d", i, got, want)
		}
	}
	if resPrivate.Cycles > resShared.Cycles {
		t.Errorf("private icache slower than shared: %d > %d", resPrivate.Cycles, resShared.Cycles)
	}
}

// TestFSWPAndFPQueue exercise FP queue registers and FP priority stores.
func TestFPQueueRegisters(t *testing.T) {
	p, _ := runSrc(t, Config{ThreadSlots: 2, StandbyStations: true}, `
		.data
		.org 90
	seed:	.float 2.0
		.text
		ffork
		tid  r1
		bnez r1, recv
		qenf f29, f30
		flw  f1, seed
		fmul f30, f1, f1     ; send 4.0
		halt
	recv:	qenf f29, f30
		fmov f2, f29
		fsw  f2, 91(r0)
		halt
	`)
	if got := p.Mem().FloatAt(91); got != 4.0 {
		t.Errorf("fp queue transfer = %g, want 4.0", got)
	}
}

func TestRotationIntervalConfig(t *testing.T) {
	// Sanity: different rotation intervals still complete with identical
	// architectural results.
	src := `
		ffork
		tid  r1
		addi r2, r1, 3
		mul  r3, r2, r2
		sw   r3, 100(r1)
		halt
	`
	var want []int64
	for i, ivl := range []int{1, 2, 8, 64, 256} {
		p, _ := runSrc(t, Config{ThreadSlots: 4, StandbyStations: true, RotationInterval: ivl}, src)
		var got []int64
		for k := int64(0); k < 4; k++ {
			got = append(got, p.Mem().IntAt(100+k))
		}
		if i == 0 {
			want = got
			continue
		}
		for k := range got {
			if got[k] != want[k] {
				t.Errorf("interval %d changed results: %v vs %v", ivl, got, want)
				break
			}
		}
	}
}

func TestFrameAccessors(t *testing.T) {
	prog := asm.MustAssemble("tid r1\nhalt\n")
	m, _ := prog.NewMemory(16)
	p, _ := New(Config{ThreadSlots: 1}, prog.Text, m)
	if err := p.StartThread(0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	regs, tid := p.Frame(0)
	if tid != 0 {
		t.Errorf("tid = %d, want 0", tid)
	}
	if got := regs.ReadInt(isa.R1); got != 0 {
		t.Errorf("r1 = %d, want 0", got)
	}
	if p.Cycle() == 0 {
		t.Error("cycle = 0 after a run")
	}
}

// TestChgpriSkipsHaltedSlots: in explicit mode, a chgpri (or priority
// store) must not deadlock behind a finished thread that still formally
// holds the highest priority.
func TestChgpriSkipsHaltedSlots(t *testing.T) {
	// Thread 0 (highest priority) halts immediately; thread 1 then needs
	// the "highest active" priority for its swp and chgpri.
	p, _ := runSrc(t, Config{ThreadSlots: 2, StandbyStations: true, ExplicitRotation: true, MaxCycles: 50000}, `
		ffork
		tid  r1
		bnez r1, worker
		halt               ; thread 0 exits without rotating
	worker:	addi r2, r0, 7
		swp  r2, 100(r0)   ; needs highest active priority
		chgpri
		addi r3, r0, 8
		swp  r3, 101(r0)
		halt
	`)
	if got := p.Mem().IntAt(100); got != 7 {
		t.Errorf("first swp = %d, want 7", got)
	}
	if got := p.Mem().IntAt(101); got != 8 {
		t.Errorf("second swp = %d, want 8", got)
	}
}

// TestRotationChangesArbitration: with two slots contending for one
// load/store unit, priority rotation alternates which slot wins ties, so
// both make progress at similar rates.
func TestRotationChangesArbitration(t *testing.T) {
	src := `
		tid  r1
		slli r2, r1, 6
	`
	for i := 0; i < 24; i++ {
		src += "\tlw r3, " + strconv.Itoa(100+i) + "(r2)\n"
	}
	src += "\thalt\n"
	prog := mustAsm(t, src)
	m, _ := prog.NewMemory(512)
	p, _ := New(Config{ThreadSlots: 2, StandbyStations: true, LoadStoreUnits: 1, RotationInterval: 4}, prog.Text, m)
	if err := p.StartThread(0); err != nil {
		t.Fatal(err)
	}
	if err := p.StartThread(0); err != nil {
		t.Fatal(err)
	}
	wins := [2]int{}
	p.OnSelect = func(slot int, pc int64, _ uint64) { wins[slot]++ }
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	// Both slots execute the same number of loads overall; the interesting
	// property is neither starves while contending.
	if wins[0] == 0 || wins[1] == 0 {
		t.Fatalf("a slot was starved: %v", wins)
	}
	ratio := float64(wins[0]) / float64(wins[1])
	if ratio < 0.7 || ratio > 1.43 {
		t.Errorf("selection counts unbalanced: %v", wins)
	}
}
