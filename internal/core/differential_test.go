package core

import (
	"math/rand"
	"testing"

	"hirata/internal/asm"
	"hirata/internal/exec"
	"hirata/internal/isa"
	"hirata/internal/mem"
)

// genStructuredProgram emits a random but always-terminating program:
// a sequence of blocks, each a run of random arithmetic/memory
// instructions optionally wrapped in a counted loop, ending with a store
// of every live register and halt. Register r15 is reserved as the loop
// counter; memory 64..127 is the data area.
func genStructuredProgram(rng *rand.Rand) []isa.Instruction {
	var prog []isa.Instruction
	emit := func(in isa.Instruction) { prog = append(prog, in) }
	reg := func() isa.Reg { return isa.IntReg(rng.Intn(12) + 1) }
	freg := func() isa.Reg { return isa.FPReg(rng.Intn(8) + 1) }

	// Seed registers.
	for r := 1; r <= 12; r++ {
		emit(isa.Instruction{Op: isa.ADDI, Rd: isa.IntReg(r), Rs1: isa.R0, Rs2: isa.NoReg, Imm: int32(rng.Intn(200) - 100)})
	}

	blocks := 2 + rng.Intn(4)
	for b := 0; b < blocks; b++ {
		loop := rng.Intn(2) == 0
		var loopStart int
		if loop {
			emit(isa.Instruction{Op: isa.ADDI, Rd: isa.R15, Rs1: isa.R0, Rs2: isa.NoReg, Imm: int32(2 + rng.Intn(6))})
			loopStart = len(prog)
		}
		body := 3 + rng.Intn(8)
		for i := 0; i < body; i++ {
			switch rng.Intn(8) {
			case 0:
				emit(isa.Instruction{Op: isa.LW, Rd: reg(), Rs1: isa.R0, Rs2: isa.NoReg, Imm: int32(64 + rng.Intn(32))})
			case 1:
				emit(isa.Instruction{Op: isa.SW, Rs1: isa.R0, Rs2: reg(), Rd: isa.NoReg, Imm: int32(64 + rng.Intn(32))})
			case 2:
				emit(isa.Instruction{Op: isa.MUL, Rd: reg(), Rs1: reg(), Rs2: reg()})
			case 3:
				emit(isa.Instruction{Op: isa.SLLI, Rd: reg(), Rs1: reg(), Rs2: isa.NoReg, Imm: int32(rng.Intn(8))})
			case 4:
				emit(isa.Instruction{Op: isa.ITOF, Rd: freg(), Rs1: reg(), Rs2: isa.NoReg})
			case 5:
				emit(isa.Instruction{Op: isa.FADD, Rd: freg(), Rs1: freg(), Rs2: freg()})
			case 6:
				emit(isa.Instruction{Op: isa.FTOI, Rd: reg(), Rs1: freg(), Rs2: isa.NoReg})
			default:
				emit(isa.Instruction{Op: isa.ADD, Rd: reg(), Rs1: reg(), Rs2: reg()})
			}
		}
		if loop {
			emit(isa.Instruction{Op: isa.ADDI, Rd: isa.R15, Rs1: isa.R15, Rs2: isa.NoReg, Imm: -1})
			emit(isa.Instruction{Op: isa.BNEZ, Rs1: isa.R15, Rd: isa.NoReg, Rs2: isa.NoReg, Imm: int32(loopStart)})
		}
	}
	// Publish all integer registers.
	for r := 1; r <= 12; r++ {
		emit(isa.Instruction{Op: isa.SW, Rs1: isa.R0, Rs2: isa.IntReg(r), Rd: isa.NoReg, Imm: int32(100 + r)})
	}
	emit(isa.Instruction{Op: isa.HALT, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: isa.NoReg})
	return prog
}

// TestRandomProgramsMatchInterpreter is the machine-level differential
// property: for random structured programs and every interesting machine
// shape, the multithreaded processor computes exactly what the functional
// interpreter computes.
func TestRandomProgramsMatchInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	shapes := []Config{
		{ThreadSlots: 1, StandbyStations: true},
		{ThreadSlots: 1, StandbyStations: false},
		{ThreadSlots: 1, StandbyStations: true, LoadStoreUnits: 2},
		{ThreadSlots: 1, StandbyStations: true, IssueWidth: 2},
		{ThreadSlots: 1, StandbyStations: true, IssueWidth: 4},
		{ThreadSlots: 1, StandbyStations: false, IssueWidth: 2},
		{ThreadSlots: 1, StandbyStations: true, PrivateICache: true},
		{ThreadSlots: 1, StandbyStations: true, RotationInterval: 1},
	}
	for trial := 0; trial < 60; trial++ {
		prog := genStructuredProgram(rng)

		golden := mem.NewMemory(256)
		for a := int64(64); a < 128; a++ {
			golden.SetInt(a, a*17%101)
		}
		ip := exec.NewInterp(prog, golden)
		if err := ip.Run(); err != nil {
			t.Fatalf("trial %d: interp: %v", trial, err)
		}

		for si, cfg := range shapes {
			m := mem.NewMemory(256)
			for a := int64(64); a < 128; a++ {
				m.SetInt(a, a*17%101)
			}
			p, err := New(cfg, prog, m)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.StartThread(0); err != nil {
				t.Fatal(err)
			}
			if _, err := p.Run(); err != nil {
				t.Fatalf("trial %d shape %d: %v", trial, si, err)
			}
			for a := int64(64); a < 128; a++ {
				gw, _ := golden.Load(a)
				mw, _ := m.Load(a)
				if gw != mw {
					t.Fatalf("trial %d shape %d: mem[%d] = %#x, interp %#x", trial, si, a, mw, gw)
				}
			}
		}
	}
}

// TestJalJrOnCore exercises call/return through the pipeline.
func TestJalJrOnCore(t *testing.T) {
	p, _ := runSrc(t, Config{ThreadSlots: 1, StandbyStations: true}, `
		li   r1, 5
		call double
		call double
		sw   r1, 100(r0)
		halt
	double:	add r1, r1, r1
		ret
	`)
	if got := p.Mem().IntAt(100); got != 20 {
		t.Errorf("result = %d, want 20", got)
	}
}

// TestWAWInterlock: a second write to a register must wait for the first
// (scoreboard WAW interlock), keeping in-order semantics even when the
// first write has a long latency.
func TestWAWInterlock(t *testing.T) {
	prog, _ := runSrc(t, Config{ThreadSlots: 1, StandbyStations: true}, `
		li   r1, 7
		li   r2, 3
		mul  r3, r1, r2   ; 6-cycle result
		addi r3, r0, 99   ; WAW on r3
		sw   r3, 100(r0)
		halt
	`)
	if got := prog.Mem().IntAt(100); got != 99 {
		t.Errorf("r3 = %d, want 99 (WAW order violated)", got)
	}
}

// TestForkSkipsBusySlots: fast-fork only claims idle thread slots.
func TestForkSkipsBusySlots(t *testing.T) {
	// Two threads are started explicitly; a fork from thread 0 can then
	// claim only the remaining two slots. Forked threads resume after the
	// ffork instruction, so the thread id is re-read there.
	prog := `
		tid  r1
		bnez r1, worker    ; explicit thread 1 goes straight to work
		ffork
		tid  r1            ; thread 0 reads 0; forked threads read 2, 3
		bnez r1, worker
		sw   r1, 100(r0)
		halt
	worker:	addi r2, r1, 40
		sw   r2, 100(r1)
		halt
	`
	p, res := runSrc(t, Config{ThreadSlots: 4, StandbyStations: true}, prog, 0, 0)
	if res.Forks != 2 {
		t.Errorf("forks = %d, want 2 (two slots were busy)", res.Forks)
	}
	// threads 0,1 explicit; forked threads get tids 2,3 (slot ids)
	if got := p.Mem().IntAt(101); got != 41 {
		t.Errorf("explicit thread result = %d, want 41", got)
	}
	for tid := int64(2); tid <= 3; tid++ {
		if got := p.Mem().IntAt(100 + tid); got != 40+tid {
			t.Errorf("forked thread %d result = %d, want %d", tid, got, 40+tid)
		}
	}
}

// TestHaltDrainsInflight: results in flight at halt still complete, and
// the reported cycle count covers them.
func TestHaltDrainsInflight(t *testing.T) {
	_, res := runSrc(t, Config{ThreadSlots: 1, StandbyStations: true}, `
		li   r1, 9
		mul  r2, r1, r1   ; still in the multiplier when halt decodes
		halt
	`)
	// mul selected at least 1 cycle after issue + 6 result latency; the
	// total must extend past it.
	if res.Cycles < 10 {
		t.Errorf("cycles = %d, implausibly small for a drained multiply", res.Cycles)
	}
}

// TestBranchContentionExceedsFive: when several threads branch at once the
// shared fetch unit serialises the refills, making the delay exceed five
// cycles ("it could become more than five if some threads encounter
// branches at the same time", §2.1.2).
func TestBranchContentionExceedsFive(t *testing.T) {
	// Thread 0 and thread 1 run two routines whose branches resolve a
	// tunable number of cycles apart; sweeping the skew guarantees some
	// alignment where the second redirect finds the fetch unit busy.
	over := 0
	for skew := 0; skew < 5; skew++ {
		src := "\tnop\n\tnop\n\tnop\n\tj ta\nta:\taddi r2, r0, 1\n\thalt\n"
		srcB := ""
		for i := 0; i < skew; i++ {
			srcB += "\tnop\n"
		}
		srcB += "\tnop\n\tnop\n\tnop\n\tj tb\ntb:\taddi r2, r0, 1\n\thalt\n"
		prog := mustAsm(t, src+"routb:\n"+srcB)
		m, _ := prog.NewMemory(16)
		p, _ := New(Config{ThreadSlots: 2, StandbyStations: true}, prog.Text, m)
		if err := p.StartThread(0); err != nil {
			t.Fatal(err)
		}
		if err := p.StartThread(prog.MustSymbol("routb")); err != nil {
			t.Fatal(err)
		}
		branchPC := map[int]int64{}
		targetPC := map[int]int64{0: 4, 1: prog.MustSymbol("routb") + int64(skew) + 4}
		branchPC[0] = 3
		branchPC[1] = prog.MustSymbol("routb") + int64(skew) + 3
		issue := map[[2]int64]uint64{}
		p.OnIssue = func(slot int, pc int64, cyc uint64) { issue[[2]int64{int64(slot), pc}] = cyc }
		if _, err := p.Run(); err != nil {
			t.Fatal(err)
		}
		for slot := 0; slot < 2; slot++ {
			d := issue[[2]int64{int64(slot), targetPC[slot]}] - issue[[2]int64{int64(slot), branchPC[slot]}]
			if d < 5 {
				t.Errorf("skew %d slot %d: branch delay %d < 5", skew, slot, d)
			}
			if d > 5 {
				over++
			}
		}
	}
	if over == 0 {
		t.Error("no alignment produced a branch delay above 5 despite fetch contention")
	}
}

// TestStallAccounting: the per-slot stall counters attribute delays.
func TestStallAccounting(t *testing.T) {
	_, res := runSrc(t, Config{ThreadSlots: 1, StandbyStations: true}, `
		lw   r1, 100(r0)
		addi r2, r1, 1    ; data stall on the load
		halt
	`)
	if res.Slots[0].Stalls[StallData] == 0 {
		t.Error("no data stalls recorded for a load-use dependency")
	}
	if res.Slots[0].Stalls[StallEmpty] == 0 {
		t.Error("no empty-decode stalls recorded (startup + halt drain)")
	}
}

// TestResultString covers the human-readable report.
func TestResultString(t *testing.T) {
	_, res := runSrc(t, Config{ThreadSlots: 2, StandbyStations: true}, `
		ffork
		tid r1
		halt
	`)
	s := res.String()
	for _, want := range []string{"cycles=", "IntALU", "slot 0", "forks=1"} {
		if !containsStr(s, want) {
			t.Errorf("Result.String() missing %q:\n%s", want, s)
		}
	}
	for r := StallReason(0); r < numStallReasons; r++ {
		if r.String() == "" || containsStr(r.String(), "StallReason(") {
			t.Errorf("StallReason(%d) lacks a name", r)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func mustAsm(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestTraceModeBranchDelay: trace replay preserves the 5-cycle branch
// bubble.
func TestTraceModeBranchDelay(t *testing.T) {
	in := []TraceInput{
		{Ins: isa.Instruction{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R0, Rs2: isa.NoReg, Imm: 1}},
		{Ins: isa.Instruction{Op: isa.J, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: isa.NoReg, Imm: 0}},
		{Ins: isa.Instruction{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R0, Rs2: isa.NoReg, Imm: 2}},
		{Ins: isa.Instruction{Op: isa.HALT, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: isa.NoReg}},
	}
	p, err := NewTraceDriven(Config{ThreadSlots: 1, StandbyStations: true}, [][]TraceInput{in})
	if err != nil {
		t.Fatal(err)
	}
	issue := map[int64]uint64{}
	p.OnIssue = func(_ int, pc int64, cyc uint64) { issue[pc] = cyc }
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if d := issue[2] - issue[1]; d != 5 {
		t.Errorf("trace-mode branch delay = %d, want 5", d)
	}
}
