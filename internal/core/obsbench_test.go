package core_test

import (
	"testing"

	"hirata/internal/asm"
	"hirata/internal/core"
	"hirata/internal/obs"
)

// benchSrc is a mixed integer/FP loop long enough to dominate setup cost.
const benchSrc = `
	li   r1, 500
	li   r2, 3
	itof f1, r2
loop:	mul  r3, r1, r2
	itof f2, r3
	fmul f1, f1, f2
	addi r1, r1, -1
	bnez r1, loop
	halt
`

func benchRun(b *testing.B, attach func(*core.Processor) *obs.Collector) {
	b.Helper()
	prog := asm.MustAssemble(benchSrc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := prog.NewMemory(64)
		if err != nil {
			b.Fatal(err)
		}
		p, err := core.New(core.Config{ThreadSlots: 2, StandbyStations: true}, prog.Text, m)
		if err != nil {
			b.Fatal(err)
		}
		var c *obs.Collector
		if attach != nil {
			c = attach(p)
		}
		if err := p.StartThread(0); err != nil {
			b.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			b.Fatal(err)
		}
		if c != nil {
			c.Finalize(res)
		}
	}
}

// BenchmarkRunNoObserver is the baseline simulation loop: no observer, so
// the event hooks must cost one nil check and zero allocations per cycle
// (the companion assertion is TestStepCycleNoObserverAllocFree).
func BenchmarkRunNoObserver(b *testing.B) {
	benchRun(b, nil)
}

// BenchmarkRunCollector measures the full observability tax: ring-buffer
// event capture, per-PC profile and interval metrics.
func BenchmarkRunCollector(b *testing.B) {
	benchRun(b, func(p *core.Processor) *obs.Collector {
		c := obs.NewCollector(core.Config{ThreadSlots: 2}, obs.Options{MetricsInterval: 64})
		p.Observe(c)
		return c
	})
}
