package core

// fetcherFor returns the fetch unit serving a slot: slots are distributed
// round-robin over the configured fetch units (one unit serves everyone in
// the base design; PrivateICache gives each slot its own).
func (p *Processor) fetcherFor(slotID int) *fetchUnit {
	return p.fetchers[slotID%len(p.fetchers)]
}

// advanceDecodeStages moves instructions D1→D2 and buffer→D1. Each stage
// holds up to IssueWidth instructions and advances once per cycle, so an
// instruction spends one cycle in each decode stage. D1 occupants are not
// copied anywhere: the first d1n ring entries ARE stage D1, so entering D1
// is a counter increment and only the D1→D2 move materializes the dinstr.
// Slots that provably cannot move anything — nothing upstream, or both
// stages full — are filtered by O(1) state checks on both cores
// (result-neutral: the loops below would be no-ops for them).
func (p *Processor) advanceDecodeStages() {
	if p.eventCore && p.runningSlots == 0 {
		return
	}
	w := p.cfg.IssueWidth
	for _, s := range p.slots {
		if s.state != slotRunning {
			continue
		}
		p.advanceSlot(s, w)
	}
}

// advanceSlot advances one running slot's decode stages by one cycle. The
// move set is slot-local (own buffer, D1 counter, D2 window, and the
// slot's bit in the fetchable set), which is what lets decodeAndAdvance
// interleave it with issue on other slots without changing results.
func (p *Processor) advanceSlot(s *slot, w int) {
	if s.buf.len() == 0 {
		return // D1 and the buffer are both empty: nothing to move in
	}
	if len(s.d2) >= w && s.d1n >= w {
		return // no space anywhere
	}
	if p.hostSampled {
		p.touchSmp.SlotVisits++
	}
	moved := false
	for len(s.d2) < w && s.d1n > 0 {
		s.d2 = append(s.d2, s.buf.front().d)
		s.buf.popFront()
		s.d1n--
		moved = true
	}
	popped := false
	for s.d1n < w && s.buf.len() > s.d1n && s.buf.at(s.d1n).minD1 <= p.cycle {
		s.d1n++
		moved, popped = true, true
	}
	if popped {
		p.refreshFetchable(s) // buffer space opened up
	}
	if moved && p.hostSampled {
		p.touchSmp.SlotHits++
	}
}

// fetchPhase advances every instruction fetch unit: finish in-flight cache
// accesses (delivering B = S×C×D instructions into the target slot's
// instruction queue buffer) and start the next access. Branch redirects
// preempt the round-robin fill order (§2.1.1). The event core's work set
// is busy units (a timed event), pending redirects, and the fetchable
// dirty set; with all three empty the phase is a no-op.
func (p *Processor) fetchPhase() {
	if p.eventCore && p.busyFetchers == 0 && p.pendingRedirects == 0 && p.fetchable == 0 {
		return
	}
	for i, fu := range p.fetchers {
		if fu.busy {
			if p.cycle < fu.busyUntil {
				continue // timed wait, not a structure visit
			}
			if p.hostSampled {
				p.touchSmp.FetchVisits++
			}
			p.deliver(fu)
			continue // the unit restarts next cycle
		}
		if p.eventCore && len(fu.redirects) == 0 && p.fetchable&fu.slotMask == 0 {
			continue
		}
		if p.hostSampled {
			p.touchSmp.FetchVisits++
		}
		p.startFetch(i, fu)
	}
}

// deliver completes an access: instructions become readable by decode after
// the buffer-read stage, one cycle after delivery. The instructions are
// materialized here, straight into the slot's queue buffer — beginAccess
// only recorded the stream range. That is result-identical to capturing
// them at access start: streams are immutable per frame, and any frame
// rebind or flush in between bumps fetchGen, which voids the delivery.
func (p *Processor) deliver(fu *fetchUnit) {
	fu.busy = false
	p.busyFetchers--
	s := p.slots[fu.target]
	if fu.gen != s.fetchGen || s.state != slotRunning {
		return
	}
	f := p.frames[s.frame]
	minD1 := p.cycle + 1
	if p.traceMode && f.traceID >= 0 {
		recs, pre := p.traces[f.traceID], p.tracePre[f.traceID]
		for pc := fu.pc0; pc < fu.pc1; pc++ {
			s.buf.push(bufEntry{d: dinstr{pc: pc, ins: recs[pc].Ins, pre: &pre[pc], addr: recs[pc].Addr}, minD1: minD1})
		}
	} else {
		n := int(fu.pc1 - fu.pc0)
		s.buf.reserve(n)
		for i := 0; i < n; i++ {
			pc := fu.pc0 + int64(i)
			*s.buf.at(s.buf.n + i) = bufEntry{d: dinstr{pc: pc, ins: p.prog[pc], pre: &p.pre[pc]}, minD1: minD1}
		}
		s.buf.n += n
	}
	p.refreshFetchable(s)
	if p.hostSampled {
		p.touchSmp.FetchHits++
		p.touchSmp.SlotHits++
	}
	p.touch(p.cycle + 1)
}

// startFetch picks the next request for an idle fetch unit.
func (p *Processor) startFetch(fuIndex int, fu *fetchUnit) {
	// Purge stale redirects, then serve the first eligible one.
	live := fu.redirects[:0]
	for _, r := range fu.redirects {
		if p.slots[r.slot].fetchGen == r.gen && p.slots[r.slot].state == slotRunning {
			live = append(live, r)
		}
	}
	p.pendingRedirects -= len(fu.redirects) - len(live)
	fu.redirects = live
	for i, r := range fu.redirects {
		if r.earliestStart <= p.cycle {
			fu.redirects = append(fu.redirects[:i], fu.redirects[i+1:]...)
			p.pendingRedirects--
			p.beginAccess(fu, r.slot)
			return
		}
	}
	// Round-robin fill among this unit's slots with buffer space (slot
	// ids congruent to the unit index modulo the fetch-unit count).
	n := p.cfg.ThreadSlots
	units := len(p.fetchers)
	for k := 1; k <= n; k++ {
		id := (fu.rr + k) % n
		if id%units != fuIndex {
			continue
		}
		if p.eventCore && p.fetchable&slotBit(id) == 0 {
			continue // not in the dirty set: cannot want a fill
		}
		if p.hostSampled {
			p.touchSmp.SlotVisits++
		}
		if p.wantsFetch(p.slots[id]) {
			fu.rr = id
			p.beginAccess(fu, id)
			return
		}
	}
}

// wantsFetch reports whether a slot needs its queue buffer filled.
func (p *Processor) wantsFetch(s *slot) bool {
	return s.state == slotRunning && !s.fetchDone && s.buf.len()-s.d1n < s.bufCap &&
		p.cycle >= s.fetchHoldUntil
}

// beginAccess starts one instruction cache access for a slot, capturing the
// instructions it will deliver.
func (p *Processor) beginAccess(fu *fetchUnit, slotID int) {
	s := p.slots[slotID]
	space := s.bufCap - (s.buf.len() - s.d1n)
	if space > p.fetchMax {
		space = p.fetchMax
	}
	if space <= 0 || s.fetchDone {
		return
	}
	f := p.frames[s.frame]
	streamLen := p.streamLen(f)
	end := s.fetchPC + int64(space)
	if end > streamLen {
		end = streamLen
	}
	if end <= s.fetchPC {
		s.fetchDone = true
		p.refreshFetchable(s)
		return
	}
	if p.hostSampled {
		p.touchSmp.FetchHits++
	}
	lat := fu.icache.Access(s.fetchPC)
	fu.busy = true
	fu.busyUntil = p.cycle + uint64(lat) - 1
	fu.target = slotID
	fu.gen = s.fetchGen
	fu.pc0, fu.pc1 = s.fetchPC, end
	s.fetchPC = end
	if end >= streamLen {
		s.fetchDone = true
	}
	p.busyFetchers++
	// Delivery happens on a later fetchPhase invocation (the unit must be
	// observed busy-and-due), never before cycle+1 even for 1-cycle caches.
	p.pushEv(maxU(fu.busyUntil, p.cycle+1))
	p.refreshFetchable(s)
	p.touch(fu.busyUntil)
}
