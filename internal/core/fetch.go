package core

import "math"

// fetcherFor returns the fetch unit serving a slot: slots are distributed
// round-robin over the configured fetch units (one unit serves everyone in
// the base design; PrivateICache gives each slot its own).
func (p *Processor) fetcherFor(slotID int) *fetchUnit {
	return p.fetchers[slotID%len(p.fetchers)]
}

// advanceDecodeStages moves instructions D1→D2 and buffer→D1. Each stage
// holds up to IssueWidth instructions and advances once per cycle, so an
// instruction spends one cycle in each decode stage.
func (p *Processor) advanceDecodeStages() {
	w := p.cfg.IssueWidth
	if p.hostSampled {
		p.touchSmp.SlotScans += uint64(len(p.slots))
	}
	for _, s := range p.slots {
		if s.state != slotRunning {
			continue
		}
		if p.hostSampled && (len(s.d1) > 0 || len(s.buf) > 0) {
			p.hostSlotTouched(s.id)
		}
		for len(s.d2) < w && len(s.d1) > 0 {
			s.d2 = append(s.d2, s.d1[0])
			s.d1 = s.d1[:copy(s.d1, s.d1[1:])] // pop front, keep capacity
		}
		for len(s.d1) < w && len(s.buf) > 0 && s.buf[0].minD1 <= p.cycle {
			e := s.buf[0]
			s.buf = s.buf[:copy(s.buf, s.buf[1:])] // pop front, keep capacity
			s.d1 = append(s.d1, dinstr{pc: e.pc, ins: e.ins, pre: e.pre, fromARB: e.fromARB, arbSeq: e.arbSeq, addr: e.addr})
		}
	}
}

// fetchPhase advances every instruction fetch unit: finish in-flight cache
// accesses (delivering B = S×C×D instructions into the target slot's
// instruction queue buffer) and start the next access. Branch redirects
// preempt the round-robin fill order (§2.1.1).
func (p *Processor) fetchPhase() {
	if p.hostSampled {
		p.touchSmp.FetcherScans += uint64(len(p.fetchers))
	}
	for i, fu := range p.fetchers {
		if fu.busy {
			if p.cycle < fu.busyUntil {
				continue
			}
			p.deliver(fu)
			continue // the unit restarts next cycle
		}
		p.startFetch(i, fu)
	}
}

// deliver completes an access: instructions become readable by decode after
// the buffer-read stage, one cycle after delivery.
func (p *Processor) deliver(fu *fetchUnit) {
	fu.busy = false
	s := p.slots[fu.target]
	if fu.gen != s.fetchGen || s.state != slotRunning {
		fu.insns = fu.insns[:0]
		return
	}
	for _, e := range fu.insns {
		e.minD1 = p.cycle + 1
		s.buf = append(s.buf, e)
	}
	fu.insns = fu.insns[:0]
	if p.hostSampled {
		p.touchSmp.FetcherEvents++
		p.hostSlotTouched(fu.target)
	}
	p.touch(p.cycle + 1)
}

// startFetch picks the next request for an idle fetch unit.
func (p *Processor) startFetch(fuIndex int, fu *fetchUnit) {
	// Purge stale redirects, then serve the first eligible one.
	live := fu.redirects[:0]
	for _, r := range fu.redirects {
		if p.slots[r.slot].fetchGen == r.gen && p.slots[r.slot].state == slotRunning {
			live = append(live, r)
		}
	}
	fu.redirects = live
	for i, r := range fu.redirects {
		if r.earliestStart <= p.cycle {
			fu.redirects = append(fu.redirects[:i], fu.redirects[i+1:]...)
			p.beginAccess(fu, r.slot)
			return
		}
	}
	// Round-robin fill among this unit's slots with buffer space (slot
	// ids congruent to the unit index modulo the fetch-unit count).
	n := p.cfg.ThreadSlots
	units := len(p.fetchers)
	for k := 1; k <= n; k++ {
		if p.hostSampled {
			p.touchSmp.SlotScans++
		}
		id := (fu.rr + k) % n
		if id%units != fuIndex {
			continue
		}
		if p.wantsFetch(p.slots[id]) {
			fu.rr = id
			p.beginAccess(fu, id)
			return
		}
	}
}

// wantsFetch reports whether a slot needs its queue buffer filled.
func (p *Processor) wantsFetch(s *slot) bool {
	return s.state == slotRunning && !s.fetchDone && len(s.buf) < s.bufCap &&
		p.cycle >= s.fetchHoldUntil
}

// beginAccess starts one instruction cache access for a slot, capturing the
// instructions it will deliver.
func (p *Processor) beginAccess(fu *fetchUnit, slotID int) {
	s := p.slots[slotID]
	space := s.bufCap - len(s.buf)
	if space > p.fetchMax {
		space = p.fetchMax
	}
	if space <= 0 || s.fetchDone {
		return
	}
	f := p.frames[s.frame]
	streamLen := p.streamLen(f)
	end := s.fetchPC + int64(space)
	if end > streamLen {
		end = streamLen
	}
	if end <= s.fetchPC {
		s.fetchDone = true
		return
	}
	if p.hostSampled {
		p.touchSmp.FetcherEvents++
	}
	lat := fu.icache.Access(s.fetchPC)
	fu.busy = true
	fu.busyUntil = p.cycle + uint64(lat) - 1
	fu.target = slotID
	fu.gen = s.fetchGen
	fu.insns = fu.insns[:0]
	for pc := s.fetchPC; pc < end; pc++ {
		ins, addr := p.streamAt(f, pc)
		fu.insns = append(fu.insns, bufEntry{pc: pc, ins: ins, pre: p.streamMeta(f, pc), addr: addr, minD1: math.MaxUint64})
	}
	s.fetchPC = end
	if end >= streamLen {
		s.fetchDone = true
	}
	p.touch(fu.busyUntil)
}
