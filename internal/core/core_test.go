package core

import (
	"strconv"
	"testing"

	"hirata/internal/asm"
	"hirata/internal/isa"
	"hirata/internal/mem"
)

// runSrc assembles src and runs it on a processor with cfg, returning the
// processor and result.
func runSrc(t *testing.T, cfg Config, src string, startPCs ...int64) (*Processor, Result) {
	t.Helper()
	prog := asm.MustAssemble(src)
	m, err := prog.NewMemory(256)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(cfg, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range startPCs {
		if err := p.StartThread(pc); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	return p, res
}

func TestSingleThreadBasic(t *testing.T) {
	p, res := runSrc(t, Config{ThreadSlots: 1, StandbyStations: true}, `
		addi r1, r0, 10
		addi r2, r0, 0
	loop:	add  r2, r2, r1
		addi r1, r1, -1
		bnez r1, loop
		sw   r2, 100(r0)
		halt
	`)
	if got := p.Mem().IntAt(100); got != 55 {
		t.Errorf("mem[100] = %d, want 55", got)
	}
	if res.Instructions != 2+10*3+2 {
		t.Errorf("instructions = %d, want 34", res.Instructions)
	}
	if res.Cycles == 0 || res.Cycles > 500 {
		t.Errorf("cycles = %d, implausible", res.Cycles)
	}
}

// TestDependentIssueDistance pins the paper's statement that an instruction
// using a 2-cycle-latency result issues 3 cycles after its producer, and
// that independent instructions issue back to back.
func TestDependentIssueDistance(t *testing.T) {
	prog := asm.MustAssemble(`
		addi r1, r0, 1
		addi r2, r1, 1   ; depends on r1
		addi r3, r2, 1   ; depends on r2
		addi r4, r0, 1   ; independent
		halt
	`)
	m, _ := prog.NewMemory(16)
	p, err := New(Config{ThreadSlots: 1, StandbyStations: true}, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	issue := map[int64]uint64{}
	p.OnIssue = func(_ int, pc int64, cyc uint64) { issue[pc] = cyc }
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if d := issue[1] - issue[0]; d != 3 {
		t.Errorf("dependent issue distance = %d, want 3 (paper §2.1.2)", d)
	}
	if d := issue[2] - issue[1]; d != 3 {
		t.Errorf("chained dependent issue distance = %d, want 3", d)
	}
	if d := issue[3] - issue[2]; d != 1 {
		t.Errorf("independent issue distance = %d, want 1", d)
	}
}

// TestLoadUseDistance checks the 4-cycle load result latency: a consumer
// decodes 5 cycles after the load.
func TestLoadUseDistance(t *testing.T) {
	prog := asm.MustAssemble(`
		lw   r1, 100(r0)
		addi r2, r1, 1
		halt
	`)
	m, _ := prog.NewMemory(256)
	p, _ := New(Config{ThreadSlots: 1, StandbyStations: true}, prog.Text, m)
	issue := map[int64]uint64{}
	p.OnIssue = func(_ int, pc int64, cyc uint64) { issue[pc] = cyc }
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if d := issue[1] - issue[0]; d != 5 {
		t.Errorf("load-use issue distance = %d, want 5 (result latency 4 + schedule)", d)
	}
}

// TestBranchDelay pins the 5-cycle branch delay of the multithreaded
// pipeline (§2.1.2): the instruction after a branch decodes 5 cycles later.
func TestBranchDelay(t *testing.T) {
	prog := asm.MustAssemble(`
		addi r1, r0, 1
		j    next        ; taken branch
	next:	addi r2, r0, 2
		beqz r0, taken   ; taken conditional
	taken:	addi r3, r0, 3
		bnez r0, never   ; not-taken conditional
		addi r4, r0, 4
		halt
	never:	halt
	`)
	m, _ := prog.NewMemory(16)
	p, _ := New(Config{ThreadSlots: 1, StandbyStations: true}, prog.Text, m)
	issue := map[int64]uint64{}
	p.OnIssue = func(_ int, pc int64, cyc uint64) { issue[pc] = cyc }
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if d := issue[2] - issue[1]; d != 5 {
		t.Errorf("taken jump delay = %d, want 5", d)
	}
	if d := issue[4] - issue[3]; d != 5 {
		t.Errorf("taken conditional delay = %d, want 5", d)
	}
	if d := issue[6] - issue[5]; d != 5 {
		t.Errorf("not-taken conditional delay = %d, want 5 (no branch prediction)", d)
	}
}

// TestIssueRateOneInstrPerCycle: straight-line independent code issues one
// instruction per cycle per thread slot.
func TestIssueRateOneInstrPerCycle(t *testing.T) {
	src := ""
	for i := 1; i <= 20; i++ {
		src += "addi r" + itoa(i%8+1) + ", r0, 1\n"
	}
	// avoid WAW interlocks: use 8 rotating dests, each reused after 8
	// cycles, beyond the 3-cycle ALU shadow.
	src += "halt\n"
	prog := asm.MustAssemble(src)
	m, _ := prog.NewMemory(16)
	p, _ := New(Config{ThreadSlots: 1, StandbyStations: true}, prog.Text, m)
	var first, last uint64
	n := 0
	p.OnIssue = func(_ int, pc int64, cyc uint64) {
		if n == 0 {
			first = cyc
		}
		last = cyc
		n++
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 21 {
		t.Fatalf("issued %d instructions, want 21", n)
	}
	if got := last - first; got != 20 {
		t.Errorf("issue span = %d cycles for 21 instructions, want 20 (1 IPC)", got)
	}
}

func itoa(v int) string { return strconv.Itoa(v) }

// TestStandbyStationOutOfOrder reproduces the paper's example: while a
// shift waits in a standby station (shifter occupied by another thread), a
// succeeding add from the same thread reaches the ALU.
func TestStandbyStationOutOfOrder(t *testing.T) {
	// Thread 1 saturates the shifter; thread 0 issues shift then add.
	src := `
		tid  r1
		bnez r1, hog
		slli r2, r1, 3    ; will conflict with the hog thread's shifts
		addi r3, r0, 7    ; independent add, can overtake via standby
		halt
	hog:	slli r4, r1, 1
		slli r5, r1, 2
		slli r6, r1, 3
		slli r7, r1, 4
		halt
	`
	prog := asm.MustAssemble(src)
	m, _ := prog.NewMemory(16)

	run := func(standby bool) (addCycle, shiftCycle uint64) {
		p, _ := New(Config{ThreadSlots: 2, StandbyStations: standby}, prog.Text, m)
		if err := p.StartThread(0); err != nil {
			t.Fatal(err)
		}
		if err := p.StartThread(0); err != nil {
			t.Fatal(err)
		}
		sel := map[int64]uint64{}
		p.OnIssue = func(slot int, pc int64, cyc uint64) {
			if slot == 0 {
				sel[pc] = cyc
			}
		}
		if _, err := p.Run(); err != nil {
			t.Fatal(err)
		}
		return sel[3], sel[2]
	}
	addWith, _ := run(true)
	addWithout, _ := run(false)
	if addWith > addWithout {
		t.Errorf("standby stations made the add slower (%d > %d)", addWith, addWithout)
	}
}

func TestForkTidHalt(t *testing.T) {
	p, res := runSrc(t, Config{ThreadSlots: 4, StandbyStations: true}, `
		.data
		.org 50
	out:	.space 4
		.text
		ffork
		tid  r1
		addi r2, r1, 100
		sw   r2, out(r1)
		halt
	`)
	for i := int64(0); i < 4; i++ {
		if got := p.Mem().IntAt(50 + i); got != 100+i {
			t.Errorf("thread %d wrote %d, want %d", i, got, 100+i)
		}
	}
	if res.Forks != 3 {
		t.Errorf("forks = %d, want 3", res.Forks)
	}
}

func TestQueueRegistersRing(t *testing.T) {
	// Thread 0 sends 1,2,3 to thread 1 through the int queue; thread 1
	// accumulates and stores.
	p, _ := runSrc(t, Config{ThreadSlots: 2, StandbyStations: true, QueueDepth: 1}, `
		.data
		.org 60
	out:	.word 0
		.text
		ffork
		tid  r1
		bnez r1, recv
		qen  r29, r30     ; writes to r30 push to successor
		addi r30, r0, 1
		addi r30, r0, 2
		addi r30, r0, 3
		qdis
		halt
	recv:	qen  r29, r30     ; reads of r29 pop from predecessor
		add  r2, r2, r29
		add  r2, r2, r29
		add  r2, r2, r29
		sw   r2, out(r0)
		qdis
		halt
	`)
	if got := p.Mem().IntAt(60); got != 6 {
		t.Errorf("queue sum = %d, want 6", got)
	}
}

func TestQueueDepthBackpressure(t *testing.T) {
	// With depth 1 the producer must interlock between pushes; the program
	// still completes and values arrive in order.
	for _, depth := range []int{1, 2, 8} {
		p, _ := runSrc(t, Config{ThreadSlots: 2, StandbyStations: true, QueueDepth: depth}, `
		.data
		.org 80
	out:	.space 8
		.text
		ffork
		tid  r1
		bnez r1, recv
		qen  r28, r29
		addi r29, r0, 11
		addi r29, r0, 22
		addi r29, r0, 33
		addi r29, r0, 44
		halt
	recv:	qen  r28, r29
		addi r3, r0, 0
		mov  r4, r28
		sw   r4, out(r3)
		addi r3, r3, 1
		mov  r4, r28
		sw   r4, out(r3)
		addi r3, r3, 1
		mov  r4, r28
		sw   r4, out(r3)
		addi r3, r3, 1
		mov  r4, r28
		sw   r4, out(r3)
		halt
	`)
		want := []int64{11, 22, 33, 44}
		for i, w := range want {
			if got := p.Mem().IntAt(80 + int64(i)); got != w {
				t.Errorf("depth %d: out[%d] = %d, want %d", depth, i, got, w)
			}
		}
	}
}

func TestKillStopsOtherThreads(t *testing.T) {
	// Thread 0 kills the others, which loop forever otherwise.
	_, res := runSrc(t, Config{ThreadSlots: 4, StandbyStations: true, MaxCycles: 100000}, `
		ffork
		tid  r1
		beqz r1, killer
	spin:	addi r2, r2, 1
		j    spin
	killer:	addi r3, r0, 50
	wait:	addi r3, r3, -1
		bnez r3, wait
		kill
		halt
	`)
	if res.Kills != 3 {
		t.Errorf("kills = %d, want 3", res.Kills)
	}
}

func TestDeterminism(t *testing.T) {
	src := `
		ffork
		tid  r1
		slli r2, r1, 4
		addi r3, r2, 1
		mul  r4, r3, r3
		sw   r4, 100(r1)
		halt
	`
	var cycles []uint64
	for i := 0; i < 3; i++ {
		_, res := runSrc(t, Config{ThreadSlots: 4, StandbyStations: true}, src)
		cycles = append(cycles, res.Cycles)
	}
	if cycles[0] != cycles[1] || cycles[1] != cycles[2] {
		t.Errorf("non-deterministic cycle counts: %v", cycles)
	}
}

func TestLoadStoreUnitIssueLatency(t *testing.T) {
	// Back-to-back independent loads on one load/store unit issue 2 cycles
	// apart (issue latency 2).
	prog := asm.MustAssemble(`
		lw r1, 100(r0)
		lw r2, 101(r0)
		lw r3, 102(r0)
		halt
	`)
	m, _ := prog.NewMemory(256)
	p, _ := New(Config{ThreadSlots: 1, StandbyStations: true, LoadStoreUnits: 1}, prog.Text, m)
	sel := map[int64]uint64{}
	p.OnSelect = func(_ int, pc int64, cyc uint64) { sel[pc] = cyc }
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if d := sel[1] - sel[0]; d != 2 {
		t.Errorf("load schedule distance = %d, want 2 (issue latency)", d)
	}
	if d := sel[2] - sel[1]; d != 2 {
		t.Errorf("load schedule distance = %d, want 2 (issue latency)", d)
	}
}

func TestTwoLoadStoreUnits(t *testing.T) {
	// Two threads hammer memory; two load/store units should make it
	// materially faster.
	src := `
		ffork
		tid  r1
		slli r2, r1, 4
	        lw r3, 100(r2)
	        lw r4, 101(r2)
	        lw r5, 102(r2)
	        lw r6, 103(r2)
	        lw r7, 104(r2)
	        lw r8, 105(r2)
	        lw r9, 106(r2)
	        lw r10, 107(r2)
		halt
	`
	_, res1 := runSrc(t, Config{ThreadSlots: 2, StandbyStations: true, LoadStoreUnits: 1}, src)
	_, res2 := runSrc(t, Config{ThreadSlots: 2, StandbyStations: true, LoadStoreUnits: 2}, src)
	if res2.Cycles >= res1.Cycles {
		t.Errorf("two load/store units not faster: %d vs %d cycles", res2.Cycles, res1.Cycles)
	}
}

func TestResultUtilization(t *testing.T) {
	_, res := runSrc(t, Config{ThreadSlots: 1, StandbyStations: true}, `
		lw r1, 100(r0)
		lw r2, 101(r0)
		lw r3, 102(r0)
		lw r4, 103(r0)
		halt
	`)
	util, inv := res.UnitUtilization(isa.UnitLoadStore)
	if inv != 4 {
		t.Errorf("load/store invocations = %d, want 4", inv)
	}
	if util <= 0 || util > 100 {
		t.Errorf("utilization = %g, out of range", util)
	}
	b := res.BusiestUnit()
	if b.Class != isa.UnitLoadStore {
		t.Errorf("busiest unit = %s, want LoadStore", b.Class)
	}
}

func TestMaxCyclesDeadlockDetection(t *testing.T) {
	// A thread reading an empty queue with no producer deadlocks; Run must
	// return an error rather than hang.
	prog := asm.MustAssemble(`
		qen r29, r30
		add r1, r29, r29
		halt
	`)
	m, _ := prog.NewMemory(16)
	p, _ := New(Config{ThreadSlots: 2, StandbyStations: true, MaxCycles: 5000}, prog.Text, m)
	if _, err := p.Run(); err == nil {
		t.Error("deadlocked program terminated without error")
	}
}

func TestRunTwiceFails(t *testing.T) {
	prog := asm.MustAssemble("halt\n")
	m, _ := prog.NewMemory(16)
	p, _ := New(Config{ThreadSlots: 1}, prog.Text, m)
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err == nil {
		t.Error("second Run did not fail")
	}
}

func TestStartThreadValidation(t *testing.T) {
	prog := asm.MustAssemble("halt\n")
	m, _ := prog.NewMemory(16)
	p, _ := New(Config{ThreadSlots: 1, ContextFrames: 2}, prog.Text, m)
	if err := p.StartThread(99); err == nil {
		t.Error("out-of-range start pc accepted")
	}
	if err := p.StartThread(0); err != nil {
		t.Error(err)
	}
	if err := p.StartThread(0); err != nil {
		t.Error(err)
	}
	if err := p.StartThread(0); err == nil {
		t.Error("third thread accepted with 2 context frames")
	}
}

func TestNewValidation(t *testing.T) {
	m := mem.NewMemory(16)
	if _, err := New(Config{}, nil, m); err == nil {
		t.Error("empty program accepted")
	}
	if _, err := New(Config{ThreadSlots: 100}, []isa.Instruction{{Op: isa.HALT}}, m); err == nil {
		t.Error("100 thread slots accepted")
	}
}
