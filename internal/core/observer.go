package core

import (
	"fmt"
	"io"

	"hirata/internal/isa"
)

// Observer receives the machine's microarchitectural events as they
// happen. All callbacks run synchronously inside the simulation loop; a
// nil Observer costs nothing. TextTracer is the ready-made implementation;
// internal/obs builds timelines, profiles and metrics on top of it.
type Observer interface {
	// Issue: an instruction left a decode unit (stage D2).
	Issue(cycle uint64, slot int, pc int64, ins isa.Instruction)
	// Select: an instruction schedule unit assigned an instruction to a
	// functional unit; its result is ready at readyAt.
	Select(cycle uint64, slot int, pc int64, ins isa.Instruction, unit isa.UnitClass, unitIndex int, readyAt uint64)
	// Complete: a selected instruction's result latency elapsed (the cycle
	// its result becomes architecturally visible to dependents).
	Complete(cycle uint64, slot int, pc int64, ins isa.Instruction, unit isa.UnitClass, unitIndex int)
	// Stall: a decode unit issued nothing this cycle; pc is the head of
	// the D2 window (-1 when the window is empty and the stall is a fetch
	// bubble). Reasons mirror SlotStat.Stalls.
	Stall(cycle uint64, slot int, pc int64, reason StallReason)
	// Redirect: a branch flushed the slot and refetches from pc.
	Redirect(cycle uint64, slot int, pc int64)
	// Bind: a context frame was bound to a thread slot.
	Bind(cycle uint64, slot, frame int, tid int64)
	// Trap: a data-absence trap switched the thread out (remote addr).
	Trap(cycle uint64, slot, frame int, addr int64)
	// Rotate: the schedule-unit priorities rotated; prio[0] is highest.
	// The slice is owned by the processor: copy it to retain it.
	Rotate(cycle uint64, prio []int)
	// ThreadEnd: a thread halted or was killed.
	ThreadEnd(cycle uint64, slot, frame int, killed bool)
}

// Observe attaches an observer. Repeated calls compose: every attached
// observer receives every event, in attachment order (a TextTracer and a
// metrics collector can watch the same run). Call before Run; a nil
// observer is ignored.
func (p *Processor) Observe(o Observer) {
	if o == nil {
		return
	}
	switch cur := p.observer.(type) {
	case nil:
		p.observer = o
	case MultiObserver:
		p.observer = append(cur, o)
	default:
		p.observer = MultiObserver{cur, o}
	}
}

// MultiObserver fans every event out to each member, in order. The zero
// value is usable; Processor.Observe builds one automatically when more
// than one observer is attached.
type MultiObserver []Observer

func (m MultiObserver) Issue(cycle uint64, slot int, pc int64, ins isa.Instruction) {
	for _, o := range m {
		o.Issue(cycle, slot, pc, ins)
	}
}

func (m MultiObserver) Select(cycle uint64, slot int, pc int64, ins isa.Instruction, unit isa.UnitClass, unitIndex int, readyAt uint64) {
	for _, o := range m {
		o.Select(cycle, slot, pc, ins, unit, unitIndex, readyAt)
	}
}

func (m MultiObserver) Complete(cycle uint64, slot int, pc int64, ins isa.Instruction, unit isa.UnitClass, unitIndex int) {
	for _, o := range m {
		o.Complete(cycle, slot, pc, ins, unit, unitIndex)
	}
}

func (m MultiObserver) Stall(cycle uint64, slot int, pc int64, reason StallReason) {
	for _, o := range m {
		o.Stall(cycle, slot, pc, reason)
	}
}

func (m MultiObserver) Redirect(cycle uint64, slot int, pc int64) {
	for _, o := range m {
		o.Redirect(cycle, slot, pc)
	}
}

func (m MultiObserver) Bind(cycle uint64, slot, frame int, tid int64) {
	for _, o := range m {
		o.Bind(cycle, slot, frame, tid)
	}
}

func (m MultiObserver) Trap(cycle uint64, slot, frame int, addr int64) {
	for _, o := range m {
		o.Trap(cycle, slot, frame, addr)
	}
}

func (m MultiObserver) Rotate(cycle uint64, prio []int) {
	for _, o := range m {
		o.Rotate(cycle, prio)
	}
}

func (m MultiObserver) ThreadEnd(cycle uint64, slot, frame int, killed bool) {
	for _, o := range m {
		o.ThreadEnd(cycle, slot, frame, killed)
	}
}

// TextTracer is an Observer that writes one line per event, producing a
// readable cycle-by-cycle pipeline trace:
//
//	[   12] slot0  issue    pc=5    add r3, r1, r2
//	[   13] slot0  select   pc=5    IntALU[0] ready@15
//	[   17] slot1  redirect pc=9
//
// Fetch-bubble stalls (StallEmpty) are suppressed — they dominate most
// traces and carry no scheduling information; attach an obs.Collector for
// complete stall accounting.
type TextTracer struct {
	W io.Writer
}

func (t *TextTracer) Issue(cycle uint64, slot int, pc int64, ins isa.Instruction) {
	fmt.Fprintf(t.W, "[%5d] slot%-2d issue    pc=%-5d %s\n", cycle, slot, pc, ins)
}

func (t *TextTracer) Select(cycle uint64, slot int, pc int64, ins isa.Instruction, unit isa.UnitClass, idx int, readyAt uint64) {
	fmt.Fprintf(t.W, "[%5d] slot%-2d select   pc=%-5d %s[%d] ready@%d\n", cycle, slot, pc, unit, idx, readyAt)
}

func (t *TextTracer) Complete(cycle uint64, slot int, pc int64, ins isa.Instruction, unit isa.UnitClass, idx int) {
	fmt.Fprintf(t.W, "[%5d] slot%-2d complete pc=%-5d %s[%d]\n", cycle, slot, pc, unit, idx)
}

func (t *TextTracer) Stall(cycle uint64, slot int, pc int64, reason StallReason) {
	if reason == StallEmpty {
		return
	}
	fmt.Fprintf(t.W, "[%5d] slot%-2d stall    pc=%-5d %s\n", cycle, slot, pc, reason)
}

func (t *TextTracer) Redirect(cycle uint64, slot int, pc int64) {
	fmt.Fprintf(t.W, "[%5d] slot%-2d redirect pc=%d\n", cycle, slot, pc)
}

func (t *TextTracer) Bind(cycle uint64, slot, frame int, tid int64) {
	fmt.Fprintf(t.W, "[%5d] slot%-2d bind     frame=%d tid=%d\n", cycle, slot, frame, tid)
}

func (t *TextTracer) Trap(cycle uint64, slot, frame int, addr int64) {
	fmt.Fprintf(t.W, "[%5d] slot%-2d trap     frame=%d addr=%d (data absence)\n", cycle, slot, frame, addr)
}

func (t *TextTracer) Rotate(cycle uint64, prio []int) {
	fmt.Fprintf(t.W, "[%5d] ...... rotate   priorities=%v\n", cycle, prio)
}

func (t *TextTracer) ThreadEnd(cycle uint64, slot, frame int, killed bool) {
	how := "halt"
	if killed {
		how = "killed"
	}
	fmt.Fprintf(t.W, "[%5d] slot%-2d end      frame=%d (%s)\n", cycle, slot, frame, how)
}
