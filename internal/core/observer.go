package core

import (
	"fmt"
	"io"

	"hirata/internal/isa"
)

// Observer receives the machine's microarchitectural events as they
// happen. All callbacks run synchronously inside the simulation loop; a
// nil Observer costs nothing. TextTracer is the ready-made implementation.
type Observer interface {
	// Issue: an instruction left a decode unit (stage D2).
	Issue(cycle uint64, slot int, pc int64, ins isa.Instruction)
	// Select: an instruction schedule unit assigned an instruction to a
	// functional unit; its result is ready at readyAt.
	Select(cycle uint64, slot int, pc int64, ins isa.Instruction, unit isa.UnitClass, unitIndex int, readyAt uint64)
	// Redirect: a branch flushed the slot and refetches from pc.
	Redirect(cycle uint64, slot int, pc int64)
	// Bind: a context frame was bound to a thread slot.
	Bind(cycle uint64, slot, frame int, tid int64)
	// Trap: a data-absence trap switched the thread out (remote addr).
	Trap(cycle uint64, slot, frame int, addr int64)
	// Rotate: the schedule-unit priorities rotated; prio[0] is highest.
	Rotate(cycle uint64, prio []int)
	// ThreadEnd: a thread halted or was killed.
	ThreadEnd(cycle uint64, slot, frame int, killed bool)
}

// Observe attaches an observer (replacing any previous one). Call before
// Run.
func (p *Processor) Observe(o Observer) { p.observer = o }

// TextTracer is an Observer that writes one line per event, producing a
// readable cycle-by-cycle pipeline trace:
//
//	[   12] slot0  issue    pc=5    add r3, r1, r2
//	[   13] slot0  select   pc=5    IntALU[0] ready@15
//	[   17] slot1  redirect pc=9
type TextTracer struct {
	W io.Writer
}

func (t *TextTracer) Issue(cycle uint64, slot int, pc int64, ins isa.Instruction) {
	fmt.Fprintf(t.W, "[%5d] slot%-2d issue    pc=%-5d %s\n", cycle, slot, pc, ins)
}

func (t *TextTracer) Select(cycle uint64, slot int, pc int64, ins isa.Instruction, unit isa.UnitClass, idx int, readyAt uint64) {
	fmt.Fprintf(t.W, "[%5d] slot%-2d select   pc=%-5d %s[%d] ready@%d\n", cycle, slot, pc, unit, idx, readyAt)
}

func (t *TextTracer) Redirect(cycle uint64, slot int, pc int64) {
	fmt.Fprintf(t.W, "[%5d] slot%-2d redirect pc=%d\n", cycle, slot, pc)
}

func (t *TextTracer) Bind(cycle uint64, slot, frame int, tid int64) {
	fmt.Fprintf(t.W, "[%5d] slot%-2d bind     frame=%d tid=%d\n", cycle, slot, frame, tid)
}

func (t *TextTracer) Trap(cycle uint64, slot, frame int, addr int64) {
	fmt.Fprintf(t.W, "[%5d] slot%-2d trap     frame=%d addr=%d (data absence)\n", cycle, slot, frame, addr)
}

func (t *TextTracer) Rotate(cycle uint64, prio []int) {
	fmt.Fprintf(t.W, "[%5d] ...... rotate   priorities=%v\n", cycle, prio)
}

func (t *TextTracer) ThreadEnd(cycle uint64, slot, frame int, killed bool) {
	how := "halt"
	if killed {
		how = "killed"
	}
	fmt.Fprintf(t.W, "[%5d] slot%-2d end      frame=%d (%s)\n", cycle, slot, frame, how)
}
