package core

import "hirata/internal/isa"

// insMeta is per-static-instruction metadata computed once at construction
// time. The decode path inspects every D2 window entry every cycle; without
// predecoding it would re-derive operand lists and opcode properties from
// the instruction word each time (the dominant cost in issueFromSlot and
// tryIssue). One insMeta exists per program (or trace) position and is
// shared by reference through bufEntry, dinstr and inflight.
type insMeta struct {
	srcs      [2]isa.Reg // source registers (nsrc valid entries)
	nsrc      uint8
	dest      isa.Reg // destination register, NoReg if none
	class     isa.UnitClass
	issueLat  uint64
	resultLat uint64
	isMem     bool
	isLoad    bool
	control   bool // executes inside the decode unit (class == UnitNone)
	needsPrio bool // priority-interlocked (§2.3.3)
}

// srcList returns the predecoded source operand slice.
func (m *insMeta) srcList() []isa.Reg { return m.srcs[:m.nsrc] }

// buildMeta derives the metadata for one static instruction.
func buildMeta(in isa.Instruction) insMeta {
	m := insMeta{
		dest:      in.Dest(),
		class:     in.Op.Unit(),
		issueLat:  uint64(in.Op.IssueLatency()),
		resultLat: uint64(in.Op.ResultLatency()),
		isMem:     in.Op.IsMem(),
		isLoad:    in.Op.IsLoad(),
		needsPrio: in.Op.NeedsHighestPriority(),
	}
	m.control = m.class == isa.UnitNone
	srcs := in.Sources(m.srcs[:0]) // at most 2 sources for any format
	m.nsrc = uint8(len(srcs))
	return m
}

// predecode builds the metadata table for an instruction stream.
func predecode(prog []isa.Instruction) []insMeta {
	out := make([]insMeta, len(prog))
	for i, in := range prog {
		out[i] = buildMeta(in)
	}
	return out
}

// predecodeTrace builds the metadata table for a recorded trace.
func predecodeTrace(tr []TraceInput) []insMeta {
	out := make([]insMeta, len(tr))
	for i, rec := range tr {
		out[i] = buildMeta(rec.Ins)
	}
	return out
}

// streamMeta returns the predecoded metadata for one position of a frame's
// instruction stream (program text, or the frame's trace in trace mode).
func (p *Processor) streamMeta(f *contextFrame, pc int64) *insMeta {
	if p.traceMode && f.traceID >= 0 {
		return &p.tracePre[f.traceID][pc]
	}
	return &p.pre[pc]
}
