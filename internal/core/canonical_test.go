package core

import (
	"reflect"
	"testing"

	"hirata/internal/isa"
	"hirata/internal/mem"
)

// TestCanonicalConfigCovers enforces the canonical encoder's coverage
// contract by reflection: every field of Config is either encoded by
// canonicalFields or excluded (with a reason) in canonicalExcluded, and
// never both. A newly grown field that is neither fails here (and at
// vet-time via the configcanon analyzer) instead of silently aliasing run
// keys.
func TestCanonicalConfigCovers(t *testing.T) {
	encoded := map[string]bool{}
	for _, f := range canonicalFields {
		if encoded[f.name] {
			t.Errorf("canonicalFields lists %s twice", f.name)
		}
		encoded[f.name] = true
	}
	typ := reflect.TypeOf(Config{})
	fields := map[string]bool{}
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		fields[name] = true
		enc, exc := encoded[name], canonicalExcluded[name] != ""
		switch {
		case enc && exc:
			t.Errorf("Config.%s is both canonically encoded and excluded; pick one", name)
		case !enc && !exc:
			t.Errorf("Config.%s is neither in canonicalFields nor canonicalExcluded: decide whether it affects results and add it to the canonical encoding (or exclude it with a reason)", name)
		}
	}
	for name := range encoded {
		if !fields[name] {
			t.Errorf("canonicalFields names %s, which is not a Config field", name)
		}
	}
	for name := range canonicalExcluded {
		if !fields[name] {
			t.Errorf("canonicalExcluded names %s, which is not a Config field", name)
		}
	}
}

// TestCanonicalConfigGolden pins the canonical encoding byte for byte.
// Run keys hash this string: changing the encoding silently invalidates
// every recorded ledger, so a change must be deliberate (update the golden
// AND bump runledger's key format version).
func TestCanonicalConfigGolden(t *testing.T) {
	cfg := Config{
		ThreadSlots:      8,
		LoadStoreUnits:   2,
		StandbyStations:  true,
		ExplicitRotation: true,
		ContextFrames:    12,
		DCache:           mem.CacheConfig{Lines: 256, MissPenalty: 30},
		MaxIssuePerCycle: 1,
	}
	cfg.ExtraUnits[isa.UnitIntALU] = 1
	const want = "ThreadSlots=8\n" +
		"LoadStoreUnits=2\n" +
		"StandbyStations=true\n" +
		"StandbyDepth=1\n" +
		"RotationInterval=8\n" +
		"ExplicitRotation=true\n" +
		"IssueWidth=1\n" +
		"PrivateICache=false\n" +
		"FetchUnits=1\n" +
		"QueueDepth=1\n" +
		"ContextFrames=12\n" +
		"ContextSwitchCycles=4\n" +
		"ICache=lines=0,wpl=4,access=2,miss=20\n" +
		"DCache=lines=256,wpl=4,access=2,miss=30\n" +
		"MaxIssuePerCycle=1\n" +
		"ExtraUnits=IntALU=1,Shifter=0,IntMul=0,FPAdd=0,FPMul=0,FPDiv=0,LoadStore=0"
	if got := cfg.CanonicalConfig(); got != want {
		t.Errorf("canonical encoding changed:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestCanonicalConfigDefaultInsensitive: spelling a default explicitly must
// not change the machine's canonical identity.
func TestCanonicalConfigDefaultInsensitive(t *testing.T) {
	implicit := Config{ThreadSlots: 4, StandbyStations: true}
	explicit := Config{
		ThreadSlots:         4,
		LoadStoreUnits:      1,
		StandbyStations:     true,
		StandbyDepth:        1,
		RotationInterval:    DefaultRotationInterval,
		IssueWidth:          1,
		FetchUnits:          1,
		QueueDepth:          DefaultQueueDepth,
		ContextFrames:       4,
		ContextSwitchCycles: DefaultContextSwitch,
	}
	if implicit.CanonicalConfig() != explicit.CanonicalConfig() {
		t.Errorf("defaulted and explicit spellings of the same machine encode differently:\n%s\nvs\n%s",
			implicit.CanonicalConfig(), explicit.CanonicalConfig())
	}
}

// TestCanonicalConfigExcludedNeutral: the excluded knobs must not move the
// encoding.
func TestCanonicalConfigExcludedNeutral(t *testing.T) {
	base := Config{ThreadSlots: 4, StandbyStations: true}
	for name, mutate := range map[string]func(*Config){
		"MaxCycles":        func(c *Config) { c.MaxCycles = 12345 },
		"DisableCycleSkip": func(c *Config) { c.DisableCycleSkip = true },
		"DisableEventCore": func(c *Config) { c.DisableEventCore = true },
		"StrictVerify":     func(c *Config) { c.StrictVerify = true },
	} {
		variant := base
		mutate(&variant)
		if base.CanonicalConfig() != variant.CanonicalConfig() {
			t.Errorf("result-neutral flag %s changed the canonical encoding", name)
		}
	}
	if base.CanonicalConfig() == (Config{ThreadSlots: 5, StandbyStations: true}).CanonicalConfig() {
		t.Error("distinct machines share a canonical encoding")
	}
}
