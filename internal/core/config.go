// Package core implements the paper's elementary multithreaded processor:
// several thread slots (logical processors) simultaneously issue
// instructions to a shared pool of functional units.
//
// Model summary (§2 of the paper):
//
//   - Each thread slot owns an instruction queue unit and a decode unit and
//     is bound to a context frame (register bank + PC + status + access
//     requirement buffer). A shared instruction fetch unit fills the queue
//     buffers in an interleaved fashion, B = S×C words per access, where C
//     is the 2-cycle cache access time.
//   - The logical-processor pipeline is IF1 IF2 D1 D2 S EX… W. Decode is
//     in-order and checks dependences with scoreboarding; branches execute
//     inside the decode unit; issued instructions are arbitrated by per-
//     functional-unit instruction schedule units using rotating thread
//     priorities; not-selected instructions wait in depth-1 standby
//     stations, which yields out-of-order execution within a thread.
//   - Queue registers connect logical processors in a ring for doacross
//     loops; fast-fork/change-priority/kill and highest-priority-only
//     stores support the eager execution scheme for sequential loops.
//   - With more context frames than thread slots, a load that targets
//     remote memory takes a data-absence trap and the slot switches to a
//     ready context frame (concurrent multithreading, §2.1.3).
//
// The simulator is execution-driven and cycle-accurate at the level the
// paper evaluates: an instruction's architectural effects are applied when
// it leaves decode, and the schedule/execute machinery models time.
package core

import (
	"fmt"

	"hirata/internal/isa"
	"hirata/internal/mem"
)

// Default model parameters.
const (
	DefaultRotationInterval = 8 // §3.2 uses an 8-cycle rotation interval
	DefaultQueueDepth       = 1 // one full/empty bit per queue register
	DefaultMaxCycles        = 200_000_000
	DefaultContextSwitch    = 4 // cycles to rebind a context frame

	// unitClassCount indexes per-class arrays (UnitNone .. UnitLoadStore).
	unitClassCount = isa.NumUnitClasses + 1
)

// Config describes one processor instance.
type Config struct {
	// ThreadSlots is S, the number of logical processors.
	ThreadSlots int
	// LoadStoreUnits selects the paper's two functional-unit
	// configurations: 1 (seven heterogeneous units) or 2 (eight units).
	// Values above 2 are allowed for ablation studies.
	LoadStoreUnits int
	// StandbyStations enables the depth-1 standby latches between decode
	// and the instruction schedule units. Without them, a decode unit
	// blocks until its issued instruction is accepted by a functional unit.
	StandbyStations bool
	// StandbyDepth deepens the standby stations beyond the paper's single
	// latch (default 1). Deeper stations approach Tomasulo-style
	// reservation stations — an ablation quantifying what the paper's
	// deliberately cheap depth-1 design gives up.
	StandbyDepth int
	// RotationInterval is the implicit-rotation period in cycles.
	RotationInterval int
	// ExplicitRotation starts the machine in explicit-rotation mode
	// (priority rotates only on change-priority instructions). SETMODE
	// switches modes at run time either way.
	ExplicitRotation bool
	// IssueWidth is D, the superscalar issue width per thread slot (§3.3).
	// 1 reproduces the paper's preferred design.
	IssueWidth int
	// PrivateICache gives every thread slot its own instruction cache and
	// fetch unit (§3.2's variant experiment).
	PrivateICache bool
	// FetchUnits sets the number of shared instruction fetch units (and
	// caches); slots are assigned round-robin (slot mod FetchUnits).
	// Default 1, the paper's base design; "another cache and fetch unit
	// would be needed" (§2.1.1) is FetchUnits: 2. Ignored when
	// PrivateICache is set.
	FetchUnits int
	// QueueDepth is the capacity of each queue register FIFO.
	QueueDepth int
	// ContextFrames is the number of context frames; at least ThreadSlots.
	// Extra frames enable concurrent multithreading.
	ContextFrames int
	// ContextSwitchCycles is the slot rebinding time on a context switch.
	ContextSwitchCycles int
	// ICache and DCache configure the cache models (zero = perfect caches
	// with 2-cycle access, the paper's assumption).
	ICache, DCache mem.CacheConfig
	// MaxIssuePerCycle caps the total number of instructions all decode
	// units together may issue per cycle. 0 means unbounded — the paper's
	// simultaneous-issue design. 1 models the single-issue multithreaded
	// precursors the paper compares against in §4 (HEP's cycle-by-cycle
	// interleaving, Farrens & Pleszkun's competing streams), where multiple
	// threads share one instruction issue slot.
	MaxIssuePerCycle int
	// ExtraUnits adds functional units beyond the paper's base pool,
	// indexed by isa.UnitClass: ExtraUnits[isa.UnitIntALU] = 1 gives the
	// machine two integer ALUs. Load/store extras stack on top of
	// LoadStoreUnits. A fixed-size array keeps Config comparable, which the
	// experiment sweeps rely on. This exists for what-if validation and
	// ablations (docs/OBSERVABILITY.md); the paper's configurations leave it
	// zero.
	ExtraUnits [isa.NumUnitClasses + 1]int
	// MaxCycles aborts runaway simulations.
	MaxCycles uint64
	// DisableCycleSkip pins the simulator to cycle-by-cycle stepping even
	// through quiescent stretches (every slot idle or draining, all
	// activity waiting on a known future event). The skip is cycle-exact —
	// differential tests compare skipping runs against this reference
	// path — so the flag exists for those tests and for debugging, not for
	// correct results. Attaching an observer or the OnIssue/OnSelect hooks
	// disables skipping regardless of this flag.
	DisableCycleSkip bool
	// DisableEventCore falls back to the legacy scan-everything cycle loop:
	// every phase walks every slot/unit/queue each cycle and the quiescent
	// horizon is recomputed by structural scan instead of being read off the
	// pending-event heap. The event-driven core is cycle-exact — the
	// differential suites compare it against this reference path — so the
	// flag exists for those tests, for debugging, and as the census baseline
	// the dirty-set hit rate is measured against; not for correct results.
	DisableEventCore bool
	// StrictVerify makes the top-level runners (hirata.RunMT) refuse to
	// simulate a program the static verifier (internal/lint) finds
	// diagnostics in. The core simulator itself ignores this field.
	StrictVerify bool
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.ThreadSlots <= 0 {
		c.ThreadSlots = 1
	}
	if c.LoadStoreUnits <= 0 {
		c.LoadStoreUnits = 1
	}
	if c.RotationInterval <= 0 {
		c.RotationInterval = DefaultRotationInterval
	}
	if c.IssueWidth <= 0 {
		c.IssueWidth = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.StandbyDepth <= 0 {
		c.StandbyDepth = 1
	}
	if c.FetchUnits <= 0 {
		c.FetchUnits = 1
	}
	if c.FetchUnits > c.ThreadSlots {
		c.FetchUnits = c.ThreadSlots
	}
	if c.PrivateICache {
		c.FetchUnits = c.ThreadSlots
	}
	if c.ContextFrames < c.ThreadSlots {
		c.ContextFrames = c.ThreadSlots
	}
	if c.ContextSwitchCycles <= 0 {
		c.ContextSwitchCycles = DefaultContextSwitch
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = DefaultMaxCycles
	}
	return c
}

// validate rejects nonsensical configurations.
func (c Config) validate() error {
	if c.ThreadSlots > 64 {
		return fmt.Errorf("core: %d thread slots is above the supported maximum of 64", c.ThreadSlots)
	}
	if c.IssueWidth > 16 {
		return fmt.Errorf("core: issue width %d is above the supported maximum of 16", c.IssueWidth)
	}
	if c.LoadStoreUnits > 8 {
		return fmt.Errorf("core: %d load/store units is above the supported maximum of 8", c.LoadStoreUnits)
	}
	if c.StandbyDepth > 16 {
		return fmt.Errorf("core: standby depth %d is above the supported maximum of 16", c.StandbyDepth)
	}
	for cls := isa.UnitClass(1); int(cls) <= isa.NumUnitClasses; cls++ {
		if c.ExtraUnits[cls] < 0 {
			return fmt.Errorf("core: negative extra unit count %d for %s", c.ExtraUnits[cls], cls)
		}
		if n := c.unitCount(cls); n > 8 {
			return fmt.Errorf("core: %d %s units is above the supported maximum of 8", n, cls)
		}
	}
	return nil
}

// unitCount returns how many functional units of a class the machine has.
func (c Config) unitCount(u isa.UnitClass) int {
	if u == isa.UnitNone {
		return 0
	}
	base := 1
	if u == isa.UnitLoadStore {
		base = c.LoadStoreUnits
	}
	extra := 0
	if int(u) < len(c.ExtraUnits) && c.ExtraUnits[u] > 0 {
		extra = c.ExtraUnits[u]
	}
	return base + extra
}

// UnitCount is the exported unit census; the obs collector sizes its
// per-unit track and metrics series from it so unit ordinals line up with
// the scheduler's.
func (c Config) UnitCount(u isa.UnitClass) int {
	d := c.withDefaults()
	return d.unitCount(u)
}

// Effective returns the configuration with every unset field resolved to
// its simulator default — the shape the machine actually runs with. The
// static bound analysis reads its machine model from this.
func (c Config) Effective() Config {
	return c.withDefaults()
}
