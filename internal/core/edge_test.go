package core

import (
	"testing"

	"hirata/internal/isa"
	"hirata/internal/mem"
)

// TestSetModeSwitching flips rotation modes mid-run and completes.
func TestSetModeSwitching(t *testing.T) {
	p, _ := runSrc(t, Config{ThreadSlots: 2, StandbyStations: true}, `
		ffork
		setmode 1       ; explicit
		tid  r1
		addi r2, r1, 1
		setmode 0       ; back to implicit
		mul  r3, r2, r2
		sw   r3, 100(r1)
		halt
	`)
	if p.Mem().IntAt(100) != 1 || p.Mem().IntAt(101) != 4 {
		t.Errorf("results wrong: %d, %d", p.Mem().IntAt(100), p.Mem().IntAt(101))
	}
}

// TestQueueSelfLoop: with one thread slot the ring degenerates to a
// self-loop — a thread can pass values to itself.
func TestQueueSelfLoop(t *testing.T) {
	p, _ := runSrc(t, Config{ThreadSlots: 1, StandbyStations: true, QueueDepth: 2}, `
		qen  r20, r21
		addi r21, r0, 7  ; push to self
		addi r21, r0, 8
		mov  r1, r20     ; pop 7
		mov  r2, r20     ; pop 8
		add  r3, r1, r2
		sw   r3, 100(r0)
		halt
	`)
	if got := p.Mem().IntAt(100); got != 15 {
		t.Errorf("self-loop sum = %d, want 15", got)
	}
}

// TestQdisMidStream: after qdis, the formerly mapped registers behave as
// ordinary registers again.
func TestQdisMidStream(t *testing.T) {
	p, _ := runSrc(t, Config{ThreadSlots: 1, StandbyStations: true}, `
		qen  r20, r21
		addi r21, r0, 42 ; goes into the self-loop queue
		qdis
		addi r21, r0, 5  ; plain register write now
		addi r20, r0, 6
		add  r1, r20, r21
		sw   r1, 100(r0)
		halt
	`)
	if got := p.Mem().IntAt(100); got != 11 {
		t.Errorf("post-qdis sum = %d, want 11", got)
	}
}

// TestKillClearsQueues: a killed ring leaves no stale queue data for a
// subsequent fork.
func TestKillClearsQueues(t *testing.T) {
	p, _ := runSrc(t, Config{ThreadSlots: 2, StandbyStations: true, MaxCycles: 200000}, `
		ffork
		tid  r1
		bnez r1, victim
	; thread 0: wait for the stale push, kill the ring, fork a fresh
	; producer, and pop — the pop must yield the fresh value, not the
	; stale one.
		qen  r20, r21
		addi r3, r0, 40
	w1:	addi r3, r3, -1
		bnez r3, w1
		kill               ; clears all queue registers
		ffork              ; fresh producer on slot 1
		tid  r1
		bnez r1, producer
		mov  r5, r20       ; pop: must be 7 (stale 99 was cleared)
		sw   r5, 100(r0)
		halt
	producer:
		qen  r20, r21
		addi r21, r0, 7    ; slot 1 pushes toward slot 0
		halt
	victim:
		qen  r20, r21
		addi r21, r0, 99   ; stale value toward slot 0
	spin:	addi r4, r4, 1
		j    spin
	`)
	if got := p.Mem().IntAt(100); got != 7 {
		t.Errorf("pop after kill = %d, want 7 (stale queue entry survived the kill)", got)
	}
}

// TestForkReusesDoneFrames: after a thread halts, its slot's frame can be
// re-forked.
func TestForkReusesDoneFrames(t *testing.T) {
	p, res := runSrc(t, Config{ThreadSlots: 2, StandbyStations: true}, `
		ffork              ; claims slot 1 (frame 1)
		tid  r1
		bnez r1, second
		addi r3, r0, 90
	w:	addi r3, r3, -1
		bnez r3, w         ; wait for the forked thread to halt
		ffork              ; re-claims slot 1 with a fresh frame
		tid  r1
		bnez r1, second    ; the re-forked thread goes to work too
		halt
	second:
		tid  r2
		lw   r4, 100(r2)
		addi r4, r4, 1
		sw   r4, 100(r2)   ; increments once per life
		halt
	`)
	if res.Forks != 2 {
		t.Errorf("forks = %d, want 2 (frame reused)", res.Forks)
	}
	if got := p.Mem().IntAt(101); got != 2 {
		t.Errorf("slot-1 thread ran %d times, want 2", got)
	}
}

// TestRepeatedContextSwitches: one slot cycles through four frames, each
// trapping twice on remote loads.
func TestRepeatedContextSwitches(t *testing.T) {
	prog := mustAsm(t, `
		tid  r1
		slli r2, r1, 3
		addi r3, r2, 1000
		lw   r4, 0(r3)      ; trap 1
		lw   r5, 4(r3)      ; trap 2 (different line)
		add  r6, r4, r5
		sw   r6, 100(r1)
		halt
	`)
	m := mem.NewMemoryWithRemote(2048, 1000, 150)
	for i := int64(1000); i < 1100; i++ {
		m.SetInt(i, i)
	}
	p, err := New(Config{ThreadSlots: 1, ContextFrames: 4, StandbyStations: true}, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := p.StartThread(0); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches < 8 {
		t.Errorf("switches = %d, want >= 8 (two traps per thread)", res.Switches)
	}
	for i := int64(0); i < 4; i++ {
		base := 1000 + 8*i
		if got := m.IntAt(100 + i); got != base+(base+4) {
			t.Errorf("thread %d sum = %d, want %d", i, got, base+base+4)
		}
	}
}

// TestSuperscalarWithIssueCap: a (D=4, cap=1) machine behaves like a
// single-issue machine and still computes correctly.
func TestSuperscalarWithIssueCap(t *testing.T) {
	src := `
		addi r1, r0, 3
		slli r2, r1, 2
		addi r3, r0, 5
		slli r4, r3, 1
		add  r5, r2, r4
		sw   r5, 100(r0)
		halt
	`
	pWide, resWide := runSrc(t, Config{ThreadSlots: 1, StandbyStations: true, IssueWidth: 4}, src)
	pCap, resCap := runSrc(t, Config{ThreadSlots: 1, StandbyStations: true, IssueWidth: 4, MaxIssuePerCycle: 1}, src)
	if pWide.Mem().IntAt(100) != 22 || pCap.Mem().IntAt(100) != 22 {
		t.Fatalf("wrong results: %d, %d", pWide.Mem().IntAt(100), pCap.Mem().IntAt(100))
	}
	if resCap.Cycles < resWide.Cycles {
		t.Errorf("capped machine faster than uncapped: %d < %d", resCap.Cycles, resWide.Cycles)
	}
}

// TestNopStream: a long run of NOPs flows through at one per cycle and
// terminates.
func TestNopStream(t *testing.T) {
	src := ""
	for i := 0; i < 50; i++ {
		src += "\tnop\n"
	}
	src += "\thalt\n"
	_, res := runSrc(t, Config{ThreadSlots: 1, StandbyStations: true}, src)
	if res.Instructions != 51 {
		t.Errorf("instructions = %d, want 51", res.Instructions)
	}
	if res.Cycles > 70 {
		t.Errorf("cycles = %d for 51 nops, want about 55", res.Cycles)
	}
}

// TestEightLoadStoreUnits: the ablation allowance above the paper's two.
func TestEightLoadStoreUnits(t *testing.T) {
	src := `
		lw r1, 100(r0)
		lw r2, 101(r0)
		lw r3, 102(r0)
		lw r4, 103(r0)
		halt
	`
	_, res2 := runSrc(t, Config{ThreadSlots: 1, StandbyStations: true, LoadStoreUnits: 2}, src)
	_, res4 := runSrc(t, Config{ThreadSlots: 1, StandbyStations: true, LoadStoreUnits: 4}, src)
	if res4.Cycles > res2.Cycles {
		t.Errorf("more load/store units slower: %d > %d", res4.Cycles, res2.Cycles)
	}
	if len(res4.Units) != 6+4 {
		t.Errorf("unit stats count = %d, want 10", len(res4.Units))
	}
}

// TestRuntimeErrorsSurface: functional faults become Run errors, not
// panics, and identify the slot.
func TestRuntimeErrorsSurface(t *testing.T) {
	cases := map[string]string{
		"div by zero": `
			li  r1, 5
			div r2, r1, r0
			halt`,
		"bad address": `
			li  r1, -50
			lw  r2, 0(r1)
			halt`,
		"store out of range": `
			li  r1, 8000
			slli r1, r1, 8
			sw  r1, 0(r1)
			halt`,
	}
	for name, src := range cases {
		prog := mustAsm(t, src)
		m, _ := prog.NewMemory(64)
		p, err := New(Config{ThreadSlots: 2, StandbyStations: true}, prog.Text, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.StartThread(0); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(); err == nil {
			t.Errorf("%s: Run succeeded, want error", name)
		}
	}
}

// TestIssueCapWithManySlots: the single-issue cap arbitrates fairly enough
// that all threads finish (rotation prevents starvation).
func TestIssueCapWithManySlots(t *testing.T) {
	src := `
		ffork
		tid  r1
		addi r2, r1, 1
		mul  r3, r2, r2
		sw   r3, 100(r1)
		halt
	`
	p, _ := runSrc(t, Config{ThreadSlots: 8, StandbyStations: true, MaxIssuePerCycle: 1}, src)
	for i := int64(0); i < 8; i++ {
		want := (i + 1) * (i + 1)
		if got := p.Mem().IntAt(100 + i); got != want {
			t.Errorf("thread %d = %d, want %d", i, got, want)
		}
	}
}

// TestTraceDrivenWithCapAndWidth: trace replay composes with the
// superscalar window and the issue cap.
func TestTraceDrivenWithCapAndWidth(t *testing.T) {
	in := []TraceInput{
		{Ins: isa.Instruction{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R0, Rs2: isa.NoReg, Imm: 1}},
		{Ins: isa.Instruction{Op: isa.SLLI, Rd: isa.R2, Rs1: isa.R0, Rs2: isa.NoReg, Imm: 2}},
		{Ins: isa.Instruction{Op: isa.ADDI, Rd: isa.R3, Rs1: isa.R0, Rs2: isa.NoReg, Imm: 3}},
		{Ins: isa.Instruction{Op: isa.HALT, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: isa.NoReg}},
	}
	for _, cfg := range []Config{
		{ThreadSlots: 2, StandbyStations: true, IssueWidth: 2},
		{ThreadSlots: 2, StandbyStations: true, MaxIssuePerCycle: 1},
	} {
		p, err := NewTraceDriven(cfg, [][]TraceInput{in, in})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Instructions != 8 {
			t.Errorf("cfg %+v: instructions = %d, want 8", cfg, res.Instructions)
		}
	}
}

// TestKillReachesWaitingAndReadyFrames: kill stops threads that are
// switched out (waiting on remote data) or queued (ready, unbound).
func TestKillReachesWaitingAndReadyFrames(t *testing.T) {
	prog := mustAsm(t, `
		tid  r1
		beqz r1, killer
		lw   r2, 1000(r0)    ; remote: waits or traps
		sw   r2, 100(r1)
		halt
	killer:	addi r3, r0, 60
	w:	addi r3, r3, -1
		bnez r3, w
		kill
		halt
	`)
	m := mem.NewMemoryWithRemote(2048, 1000, 5000)
	// One slot, four frames: thread 0 is the killer; threads 1..3 trap on
	// the remote load and wait; one may still be queued as ready.
	p, err := New(Config{ThreadSlots: 2, ContextFrames: 4, StandbyStations: true, MaxCycles: 100000}, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := p.StartThread(0); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kills == 0 {
		t.Error("kill reached no threads")
	}
	// The run must terminate well before the 5000-cycle remote waits
	// would have allowed the victims to resume.
	if res.Cycles > 4000 {
		t.Errorf("cycles = %d; kill did not cut the remote waits short", res.Cycles)
	}
}

func TestConfigValidation(t *testing.T) {
	m := mem.NewMemory(4)
	prog := mustAsm(t, "halt\n").Text
	bad := []Config{
		{ThreadSlots: 1, LoadStoreUnits: 9},
		{ThreadSlots: 1, StandbyDepth: 17},
		{ThreadSlots: 1, IssueWidth: 17},
	}
	for _, cfg := range bad {
		if _, err := New(cfg, prog, m); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestStatZeroDivisors(t *testing.T) {
	var u UnitStat
	if u.Utilization(0) != 0 {
		t.Error("Utilization(0) != 0")
	}
	var r Result
	if r.IPC() != 0 {
		t.Error("IPC of empty result != 0")
	}
}

// TestFetchUnitsSweep: a branchy two-thread workload gains from a second
// fetch unit, and results never change.
func TestFetchUnitsSweep(t *testing.T) {
	src := `
		ffork
		tid  r1
		li   r2, 40
	loop:	andi r3, r2, 1
		bnez r3, odd
		addi r4, r4, 1
		j    nxt
	odd:	addi r5, r5, 1
	nxt:	addi r2, r2, -1
		bnez r2, loop
		add  r6, r4, r5
		sw   r6, 100(r1)
		halt
	`
	var prev uint64
	for i, units := range []int{1, 2, 4} {
		prog := mustAsm(t, src)
		m, _ := prog.NewMemory(256)
		p, err := New(Config{ThreadSlots: 4, StandbyStations: true, FetchUnits: units}, prog.Text, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.StartThread(0); err != nil {
			t.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		for s := int64(0); s < 4; s++ {
			if got := m.IntAt(100 + s); got != 40 {
				t.Fatalf("units=%d: thread %d sum = %d, want 40", units, s, got)
			}
		}
		// Allow small phase-alignment noise; more units must never be
		// substantially slower.
		if i > 0 && float64(res.Cycles) > float64(prev)*1.03 {
			t.Errorf("%d fetch units slower than fewer: %d > %d", units, res.Cycles, prev)
		}
		if res.Cycles < prev {
			prev = res.Cycles
		}
		if i == 0 {
			prev = res.Cycles
		}
	}
}
