package core

// Host-level self-observability hooks (the simulator observing itself, not
// the simulated machine). A HostProbe is the host-side twin of Observer:
// an optional sink wired into the cycle loop with the same nil-guard
// discipline, so the disabled path stays allocation-free and
// branch-predictable. Unlike Observer, attaching a HostProbe does NOT
// disable quiescent-cycle skipping (skip.go): the probe watches the
// simulator's phases and data-structure touches, which are defined per
// *executed* step, and it learns about skipped stretches through SkipJump —
// so a profiled run remains cycle-exact and result-identical to an
// unprofiled one.
//
// All wall-clock timing lives on the probe side (internal/hostobs), never
// here: the cycle loop only reports phase boundaries on steps the probe
// elected to sample (StepStart returned true). The hottime analyzer
// (tools/analyzers) enforces that no raw time.Now/time.Since creeps into
// this package.

// HostPhase identifies one phase of stepCycle (plus the event-horizon
// machinery that runs between steps), in execution order. The simulated
// machine's "execute" work has no phase of its own: execution is timing-only
// and is folded into issue-select (architectural effects apply at issue,
// timing at select) and completion (retirement of elapsed result latencies).
type HostPhase uint8

const (
	HostPhaseRotation     HostPhase = iota // rotatePriorities
	HostPhaseCompletion                    // retireCompletions
	HostPhaseWake                          // wakeFrames
	HostPhaseBind                          // bindSlots
	HostPhaseSelect                        // schedulePhase (instruction schedule units)
	HostPhaseIssue                         // decodePhase (decode units, stage D2)
	HostPhaseDecodeBuffer                  // advanceDecodeStages (buffer→D1→D2)
	HostPhaseFetch                         // fetchPhase (instruction fetch units)
	HostPhaseSkip                          // advanceCycle event-horizon machinery (only when it arms)
	NumHostPhases
)

var hostPhaseNames = [NumHostPhases]string{
	"rotation", "completion", "wake", "bind", "issue-select",
	"decode-issue", "decode-buffer", "fetch", "event-horizon",
}

// String returns the stable phase name used in profiles, traces and
// Prometheus labels.
func (ph HostPhase) String() string {
	if int(ph) < len(hostPhaseNames) {
		return hostPhaseNames[ph]
	}
	return "unknown"
}

// TouchSample is the structure-touch census of one sampled step. For each
// per-cycle structure it counts *visits* — loop bodies that executed past
// the O(1) dirty-set filter — and *hits* — visits that performed or
// recorded work (moving an instruction, selecting onto a unit, popping a
// queue entry, or tallying a per-cycle architectural stall: the tally is
// state the machine must record, so recording it is the visit's work).
//
// On the event-driven core (event.go) the visit count is what the dirty
// sets let through, so hits/visits is the dirty-set *hit rate*. On the
// legacy scan core (Config.DisableEventCore) the same counting sites see
// every entry the full scan walks, so 1 − hits/visits is the scan *waste*
// the event core eliminates. The two runs are directly comparable because
// the hit sites are identical in both modes.
type TouchSample struct {
	Cycle        uint64
	RunningSlots uint64 // slots in slotRunning at step start

	SlotVisits uint64 // slot loop bodies run (bind, select, issue, buffer, fetch RR)
	SlotHits   uint64 // slot visits that moved, issued, stalled-and-tallied, bound or unbound

	UnitVisits uint64 // functional units examined by schedulePhase
	UnitHits   uint64 // instructions committed to a unit

	QueueVisits uint64 // queue-register readiness/capacity checks in decode
	QueueHits   uint64 // queue entries actually popped or reserved

	FrameVisits uint64 // wait-heap entries examined by wakeFrames
	FrameHits   uint64 // frames transitioned waiting→ready

	FetchVisits uint64 // fetch units examined by fetchPhase
	FetchHits   uint64 // accesses started or delivered

	Issues  uint64 // instructions leaving a decode unit
	Retires uint64 // completions credited this step
	Binds   uint64 // frames bound to slots
}

// HostProbe observes the simulator's own execution. StepStart is called at
// the top of every stepCycle and elects whether this step is sampled; only
// sampled steps receive PhaseEnd/StepEnd callbacks. A trailing
// HostPhaseSkip PhaseEnd arrives only from steps on which the event-horizon
// machinery armed (no running slots, skipping enabled); ordinary steps end
// at HostPhaseFetch. SkipJump reports every quiescent fast-forward
// regardless of sampling. RunEnd fires once when Run returns successfully.
//
// Implementations must not retain the TouchSample beyond StepEnd and must
// not mutate processor state; internal/hostobs provides the standard one.
type HostProbe interface {
	// StepStart reports a new stepCycle at the given simulated cycle and
	// returns whether to sample it (timing + touch census).
	StepStart(cycle uint64) bool
	// PhaseEnd marks the end of one phase of a sampled step.
	PhaseEnd(ph HostPhase)
	// StepEnd delivers the touch census of a sampled step.
	StepEnd(t TouchSample)
	// SkipJump reports a quiescent-cycle fast-forward from cycle `from`
	// directly to cycle `to` (skipping to-from stepCycle invocations).
	SkipJump(from, to uint64)
	// RunEnd reports the final total-cycle count and the number of
	// stepCycle invocations actually executed.
	RunEnd(cycles, steps uint64)
}

// SetHostProbe attaches (or with nil detaches) a host-side self-profiling
// probe. Must be called before Run. Unlike Observe, the probe does not pin
// the machine to cycle-by-cycle stepping.
func (p *Processor) SetHostProbe(hp HostProbe) {
	p.hostProbe = hp
}
