package core

import (
	"testing"

	"hirata/internal/asm"
)

// allocLoopSrc keeps the pipeline busy for thousands of cycles: an integer
// countdown with a multiply so both the IntALU and IntMul see traffic.
const allocLoopSrc = `
	li   r1, 2000
	li   r2, 1
loop:	mul  r2, r2, r1
	addi r1, r1, -1
	bnez r1, loop
	halt
`

// TestStepCycleNoObserverAllocFree pins the nil-observer fast path: once
// the pipeline reaches steady state, stepping cycles must not allocate.
// The observability layer rides on this — attaching a Collector may
// allocate, but a run without one must stay as cheap as before it existed.
func TestStepCycleNoObserverAllocFree(t *testing.T) {
	prog := asm.MustAssemble(allocLoopSrc)
	m, err := prog.NewMemory(64)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{ThreadSlots: 2, StandbyStations: true}, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.StartThread(0); err != nil {
		t.Fatal(err)
	}
	p.started = true
	// Warm up past the cold-start allocations (queue growth, first frame
	// bind, event-heap capacity) before measuring. advanceCycle rather than
	// a bare p.cycle++ so the pending-event heap drains as it would in Run.
	for i := 0; i < 200; i++ {
		if err := p.stepCycle(); err != nil {
			t.Fatal(err)
		}
		p.advanceCycle()
	}
	allocs := testing.AllocsPerRun(500, func() {
		if err := p.stepCycle(); err != nil {
			t.Fatal(err)
		}
		p.advanceCycle()
	})
	if allocs > 0 {
		t.Errorf("steady-state stepCycle allocates %.1f objects/cycle with no observer; want 0", allocs)
	}
}
