package core

import (
	"testing"

	"hirata/internal/asm"
)

// TestCycleLoopDisabledHostObsAllocFree pins the nil-HostProbe fast path:
// with self-observability detached (the default for every production run),
// steady-state stepping must not allocate — the probe fields add only a
// nil check and an always-false hostSampled branch per step.
func TestCycleLoopDisabledHostObsAllocFree(t *testing.T) {
	prog := asm.MustAssemble(allocLoopSrc)
	m, err := prog.NewMemory(64)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{ThreadSlots: 2, StandbyStations: true}, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	if p.hostProbe != nil {
		t.Fatal("probe attached by default")
	}
	if err := p.StartThread(0); err != nil {
		t.Fatal(err)
	}
	p.started = true
	for i := 0; i < 200; i++ {
		if err := p.stepCycle(); err != nil {
			t.Fatal(err)
		}
		p.advanceCycle()
	}
	allocs := testing.AllocsPerRun(500, func() {
		if err := p.stepCycle(); err != nil {
			t.Fatal(err)
		}
		p.advanceCycle()
	})
	if allocs > 0 {
		t.Errorf("steady-state stepCycle allocates %.1f objects/cycle with no host probe; want 0", allocs)
	}
}

// countingProbe records the probe callback sequence without timing anything.
type countingProbe struct {
	sample    bool
	steps     uint64
	phases    []HostPhase
	samples   []TouchSample
	skipJumps int
	runEnds   int
}

func (c *countingProbe) StepStart(cycle uint64) bool {
	c.steps++
	c.phases = c.phases[:0]
	return c.sample
}
func (c *countingProbe) PhaseEnd(ph HostPhase)    { c.phases = append(c.phases, ph) }
func (c *countingProbe) StepEnd(t TouchSample)    { c.samples = append(c.samples, t) }
func (c *countingProbe) SkipJump(from, to uint64) { c.skipJumps++ }
func (c *countingProbe) RunEnd(cycles, steps uint64) {
	c.runEnds++
	if steps != c.steps {
		panic("RunEnd steps disagree with StepStart count")
	}
}

// TestHostProbePhaseOrder checks that a sampled step reports the eight
// in-step phases in pipeline order — with HostPhaseSkip appearing only on
// steps where the event-horizon machinery armed, never on ordinary steps —
// and that declining the sample suppresses PhaseEnd and StepEnd entirely
// (unsampled steps pay for neither timing nor the touch census).
func TestHostProbePhaseOrder(t *testing.T) {
	run := func(sample bool) *countingProbe {
		prog := asm.MustAssemble(allocLoopSrc)
		m, err := prog.NewMemory(64)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(Config{ThreadSlots: 2, StandbyStations: true}, prog.Text, m)
		if err != nil {
			t.Fatal(err)
		}
		cp := &countingProbe{sample: sample}
		p.SetHostProbe(cp)
		if _, err := p.Run(); err != nil {
			t.Fatal(err)
		}
		return cp
	}

	sampled := run(true)
	if sampled.runEnds != 1 || sampled.steps == 0 {
		t.Fatalf("run saw %d RunEnd over %d steps", sampled.runEnds, sampled.steps)
	}
	wantOrder := []HostPhase{
		HostPhaseRotation, HostPhaseCompletion, HostPhaseWake, HostPhaseBind,
		HostPhaseSelect, HostPhaseIssue, HostPhaseDecodeBuffer, HostPhaseFetch,
	}
	// phases holds the callbacks since the final StepStart: exactly the
	// eight in-step phases. The final step exits Run before advanceCycle, so
	// no event-horizon report may trail it — that phase is charged only on
	// steps where the horizon machinery actually armed.
	if len(sampled.phases) != len(wantOrder) {
		t.Fatalf("final step reported %d phases (%v); want %d", len(sampled.phases), sampled.phases, len(wantOrder))
	}
	for i, ph := range wantOrder {
		if sampled.phases[i] != ph {
			t.Errorf("phase %d = %s; want %s", i, sampled.phases[i], ph)
		}
	}
	if uint64(len(sampled.samples)) != sampled.steps {
		t.Errorf("StepEnd fired %d times over %d steps", len(sampled.samples), sampled.steps)
	}
	var issues, unitVisits, unitHits uint64
	for _, s := range sampled.samples {
		issues += s.Issues
		unitVisits += s.UnitVisits
		unitHits += s.UnitHits
	}
	if issues == 0 || unitVisits == 0 {
		t.Errorf("touch census empty: issues=%d unitVisits=%d", issues, unitVisits)
	}
	if unitHits > unitVisits {
		t.Errorf("unit hits %d exceed unit visits %d", unitHits, unitVisits)
	}

	declined := run(false)
	if len(declined.phases) != 0 {
		t.Errorf("declined sample still got PhaseEnd: %v", declined.phases)
	}
	if len(declined.samples) != 0 {
		t.Errorf("declined sample still got %d StepEnd callbacks", len(declined.samples))
	}
}

// TestHostProbeKeepsSkipArmed verifies attaching a probe does not disable
// quiescent-cycle fast-forwarding (unlike a Collector): the probe observes
// jumps instead of preventing them, so profiled runs stay cycle-exact.
func TestHostProbeKeepsSkipArmed(t *testing.T) {
	prog := asm.MustAssemble(allocLoopSrc)
	m, err := prog.NewMemory(64)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{ThreadSlots: 2, StandbyStations: true}, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	p.SetHostProbe(&countingProbe{})
	if !p.skipEnabled() {
		t.Error("host probe disabled cycle skipping; it must only observe")
	}
}
