package core

// Queue registers (§2.3.1) connect the logical processors in a ring: slot i
// writes to the queue read by slot (i+1) mod S. When enabled via QEN/QENF,
// reads of the mapped register pop the incoming queue and writes to the
// mapped register push to the outgoing queue. The attached full/empty bits
// serve as scoreboard bits: an empty read or full write interlocks the
// decode unit.
//
// Entries are reserved in program order when the writing instruction leaves
// decode (keeping FIFO order even with out-of-order execution through
// standby stations) and become readable when its result latency elapses.

// qentry is one slot of a queue register FIFO.
type qentry struct {
	bits    uint64
	isFloat bool
	readyAt uint64 // pendingReady until the producer is scheduled
}

// queueFIFO is one ring link (one direction, one register class).
type queueFIFO struct {
	entries []*qentry
	depth   int
}

// readyCount returns how many front entries are readable at the cycle.
func (q *queueFIFO) readyCount(cycle uint64) int {
	n := 0
	for _, e := range q.entries {
		if e.readyAt > cycle {
			break
		}
		n++
	}
	return n
}

// full reports whether a reservation would exceed capacity.
func (q *queueFIFO) full() bool { return len(q.entries) >= q.depth }

// reserve appends a pending entry; the writer fills and stamps it later.
func (q *queueFIFO) reserve() *qentry {
	e := &qentry{readyAt: pendingReady}
	q.entries = append(q.entries, e)
	return e
}

// pop removes and returns the front entry's bits.
func (q *queueFIFO) pop() uint64 {
	e := q.entries[0]
	q.entries = q.entries[1:]
	return e.bits
}

// clear empties the FIFO (used by kill).
func (q *queueFIFO) clear() { q.entries = q.entries[:0] }

// initQueues builds the ring.
func (p *Processor) initQueues() {
	p.intQueues = make([]*queueFIFO, p.cfg.ThreadSlots)
	p.fpQueues = make([]*queueFIFO, p.cfg.ThreadSlots)
	for i := range p.intQueues {
		p.intQueues[i] = &queueFIFO{depth: p.cfg.QueueDepth}
		p.fpQueues[i] = &queueFIFO{depth: p.cfg.QueueDepth}
	}
}

// inQueue returns the FIFO slot s reads from (fed by its ring predecessor).
func (p *Processor) inQueue(s int, fp bool) *queueFIFO {
	if fp {
		return p.fpQueues[s]
	}
	return p.intQueues[s]
}

// outQueue returns the FIFO slot s writes to (read by its ring successor).
func (p *Processor) outQueue(s int, fp bool) *queueFIFO {
	next := (s + 1) % p.cfg.ThreadSlots
	return p.inQueue(next, fp)
}

// clearQueues empties every ring link.
func (p *Processor) clearQueues() {
	for i := range p.intQueues {
		p.intQueues[i].clear()
		p.fpQueues[i].clear()
	}
}

// stampQueueEntry finalises a reserved entry at schedule time.
func stampQueueEntry(e *qentry, readyAt uint64) {
	if e != nil && e.readyAt == pendingReady {
		e.readyAt = readyAt
	}
}
