package core

// The event-driven core: instead of scanning every slot, functional unit,
// queue and fetch unit each cycle, the cycle loop consumes explicit work
// sets —
//
//   - a pending-event min-heap (evHeap) of future cycles at which *timed*
//     state can change: completions leaving the ring, functional units
//     going free, fetch deliveries, context-switch rebind delays, and (via
//     the separate waitHeap, which needs (when, id) ordering) remote-data
//     arrivals;
//   - per-cycle dirty sets for untimed state: classMask (slots holding an
//     issued-but-unselected instruction, per unit class) and fetchable
//     (slots whose instruction queue buffer wants a fill), maintained at
//     the mutation sites;
//   - the live counters (runningSlots, drainingSlots, readyQ length) that
//     gate whole phases off when they provably have no work.
//
// Every event push is conservative: pushing an event that turns out stale
// (the slot was killed, the unit re-busied) costs at most one extra normal
// step; *missing* an event would change results, so each push site is the
// mutation that creates the future work. The quiescent jump of skip.go is
// the degenerate case of this design — when the per-cycle dirty sets are
// empty (runningSlots == 0), the next pending event IS the horizon, so the
// old structural horizon scan survives only as the legacy fallback and
// cross-check (Config.DisableEventCore, quiescentHorizonScan).
//
// Config.DisableEventCore disables the gates and the heap-based horizon
// (the phases then re-scan everything, as the original loop did) but the
// dirty sets are still maintained; the differential suites assert both
// paths produce bit-identical results.

// pushEv schedules a future cycle at which timed state changes. No-op on
// the legacy core: the scan horizon re-derives events structurally.
//
// The pending-event set is split by distance. Events within the next 64
// cycles — the overwhelming majority: unit frees, result completions,
// fetch deliveries, rebind delays — land in evNear, a timing-wheel bitmap
// where bit k means "event at cycle+1+k"; push is one OR, and advancing
// the cycle is one shift. Only far events (remote-memory completions,
// long waits) pay for the evFar min-heap.
func (p *Processor) pushEv(when uint64) {
	if !p.eventCore {
		return
	}
	d := when - p.cycle
	if when <= p.cycle {
		d = 1 // clamp stale pushes to the horizon floor
	}
	if d <= 64 {
		p.evNear |= 1 << (d - 1)
		return
	}
	h := append(p.evFar, when)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	p.evFar = h
}

// popFar removes the earliest far event.
func (p *Processor) popFar() uint64 {
	h := p.evFar
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r, small := 2*i+1, 2*i+2, i
		if l < n && h[l] < h[small] {
			small = l
		}
		if r < n && h[r] < h[small] {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	p.evFar = h
	return top
}

// drainEv slides the near-event window forward to `limit` (the cycle the
// machine is about to occupy — p.cycle has not been updated yet) and
// discards events at or before it: those cycles are being simulated or
// jumped over, so their events are consumed. Called once per advanceCycle,
// it keeps the event set bounded: every push is dropped exactly once, here
// or by the horizon peek.
func (p *Processor) drainEv(limit uint64) {
	if d := limit - p.cycle; d >= 64 {
		p.evNear = 0
	} else {
		p.evNear >>= d
	}
	for len(p.evFar) > 0 && p.evFar[0] <= limit {
		p.popFar()
	}
}

// slotBit is the dirty-set bit of a slot (ThreadSlots ≤ 64).
func slotBit(id int) uint64 { return 1 << uint(id) }

// markIssued records slot s holding an issued-but-unselected instruction of
// class cls, making the slot visible to schedulePhase's per-class scan.
// classDirty summarizes which classes have any pending work, so the
// schedule phase skips clean classes without loading their masks.
func (p *Processor) markIssued(s *slot, cls int) {
	p.classMask[cls] |= slotBit(s.id)
	p.classDirty |= 1 << uint(cls)
}

// clearClassSlot removes a slot from one class's dirty mask, folding the
// emptiness back into the classDirty summary.
func (p *Processor) clearClassSlot(cls int, bit uint64) {
	p.classMask[cls] &^= bit
	if p.classMask[cls] == 0 {
		p.classDirty &^= 1 << uint(cls)
	}
}

// clearIssuedSlot drops a slot's standby/latch contents (thread killed),
// returning the in-flight entries to the pool and keeping the
// issuedPending counter and per-class dirty masks exact.
func (p *Processor) clearIssuedSlot(s *slot) {
	bit := slotBit(s.id)
	for cls := range s.standby {
		for _, inf := range s.standby[cls] {
			p.freeInflight(inf)
			p.issuedPending--
		}
		s.standby[cls] = s.standby[cls][:0]
		p.clearClassSlot(cls, bit)
	}
	if s.latch != nil {
		p.clearClassSlot(int(s.latch.class), bit)
		p.freeInflight(s.latch)
		s.latch = nil
		p.issuedPending--
	}
}

// refreshFetchable recomputes a slot's bit in the fetchable dirty set:
// running, stream not exhausted, buffer space available. The branch-delay
// hold (fetchHoldUntil) is deliberately not folded in — it is a short
// timed condition checked at the scan, so a held slot costs one filtered
// visit per cycle instead of an event push per redirect.
func (p *Processor) refreshFetchable(s *slot) {
	if s.state == slotRunning && !s.fetchDone && s.buf.len()-s.d1n < s.bufCap {
		p.fetchable |= slotBit(s.id)
	} else {
		p.fetchable &^= slotBit(s.id)
	}
}

// cacheHeadStall records that a slot's D2 head is blocked — on the register
// scoreboard until `until`, or on a full standby station/latch (reason
// StallStandby, until = pendingReady). While the cache holds, issueFromSlot
// tallies the reason without re-deriving it. Validity argument: the head
// dinstr cannot change while the slot is stalled (any flush clears the
// cache via flushPipeline), this slot's own scoreboard/standby/queue
// mappings only mutate when it issues, a plain register's readyAt never
// moves earlier (WAW interlock), and the one event that can lift a
// sentinel-deadline stall — selectInstr draining this slot's standby
// station or stamping its pending write — clears the cache explicitly.
// A concrete deadline needs no invalidation at all: selections of other
// registers cannot move it. Width-1 event core only: wide windows
// re-derive intra-window hazards each cycle, and the priority interlock
// (needsPrio) depends on rotation, so those never cache.
func (p *Processor) cacheHeadStall(s *slot, pre *insMeta, until uint64, reason StallReason) {
	if p.eventCore && p.cfg.IssueWidth == 1 && !pre.needsPrio {
		s.stallUntil = until
		s.stallReason = reason
	}
}

// allocInflight takes an in-flight entry from the pool. Entries cycle
// issue→select→pool, so steady-state stepping allocates nothing
// (TestStepCycleNoObserverAllocFree).
func (p *Processor) allocInflight() *inflight {
	if n := len(p.infPool); n > 0 {
		inf := p.infPool[n-1]
		p.infPool = p.infPool[:n-1]
		return inf
	}
	return new(inflight)
}

// freeInflight zeroes an entry (dropping its pre/push pointers) and
// returns it to the pool.
func (p *Processor) freeInflight(inf *inflight) {
	*inf = inflight{}
	p.infPool = append(p.infPool, inf)
}

// insRing is a slot's instruction queue buffer as a growable power-of-two
// ring. The previous []bufEntry pop-front (`buf[:copy(buf, buf[1:])]`)
// moved every remaining pointer-bearing entry one position per drained
// instruction — typedslicecopy plus write barriers were among the top
// profile entries. The ring pops by bumping an index.
type insRing struct {
	e    []bufEntry
	head int
	n    int
}

func (r *insRing) len() int { return r.n }

// reset empties the ring. Stale entries are not zeroed: the only pointer a
// bufEntry holds (dinstr.pre) targets the processor-lifetime predecode
// arrays, so a dead entry retains nothing the live processor does not.
func (r *insRing) reset() {
	r.head, r.n = 0, 0
}

// front returns the oldest entry. Callers check len() first.
func (r *insRing) front() *bufEntry { return &r.e[r.head] }

// at returns the i-th oldest entry, 0 <= i < len().
func (r *insRing) at(i int) *bufEntry { return &r.e[(r.head+i)&(len(r.e)-1)] }

// popFront drops the oldest entry without zeroing it (see reset).
func (r *insRing) popFront() {
	r.head = (r.head + 1) & (len(r.e) - 1)
	r.n--
}

// reserve grows the storage (doubling, re-linearized) until n more entries
// fit, letting bulk producers fill slots via at() without per-entry grow
// checks.
func (r *insRing) reserve(n int) {
	need := r.n + n
	if need <= len(r.e) {
		return
	}
	sz := maxInt(2*len(r.e), 8)
	for sz < need {
		sz *= 2
	}
	grown := make([]bufEntry, sz)
	for i := 0; i < r.n; i++ {
		grown[i] = r.e[(r.head+i)&(len(r.e)-1)]
	}
	r.e = grown
	r.head = 0
}

// push appends an entry, growing the storage (doubling, re-linearized) on
// demand so small runs never pay for the configured maximum capacity.
func (r *insRing) push(e bufEntry) {
	if r.n == len(r.e) {
		grown := make([]bufEntry, maxInt(2*len(r.e), 8))
		for i := 0; i < r.n; i++ {
			grown[i] = r.e[(r.head+i)&(len(r.e)-1)]
		}
		r.e = grown
		r.head = 0
	}
	r.e[(r.head+r.n)&(len(r.e)-1)] = e
	r.n++
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
