package core

import (
	"fmt"
	"strings"

	"hirata/internal/isa"
)

// StallReason classifies why a decode unit could not issue in a cycle.
type StallReason uint8

// Decode stall reasons.
const (
	StallNone       StallReason = iota
	StallData                   // scoreboard: source or destination busy
	StallStandby                // standby station (or issue latch) occupied
	StallQueueEmpty             // queue register read would underflow
	StallQueueFull              // queue register write would overflow
	StallPriority               // interlocked until highest priority
	StallEmpty                  // nothing in decode (fetch starvation, branch bubble)
	numStallReasons
)

// NumStallReasons is the number of distinct stall reasons — the length of
// SlotStat.Stalls. Metrics exporters iterate StallReason(0..NumStallReasons).
const NumStallReasons = int(numStallReasons)

// String names the stall reason.
func (r StallReason) String() string {
	switch r {
	case StallNone:
		return "none"
	case StallData:
		return "data"
	case StallStandby:
		return "standby"
	case StallQueueEmpty:
		return "queue-empty"
	case StallQueueFull:
		return "queue-full"
	case StallPriority:
		return "priority"
	case StallEmpty:
		return "empty"
	}
	return fmt.Sprintf("StallReason(%d)", uint8(r))
}

// UnitStat reports one functional unit's activity.
type UnitStat struct {
	Class       isa.UnitClass
	Index       int    // which unit of the class (two load/store units)
	Invocations uint64 // N: number of instructions executed
	BusyCycles  uint64 // N × issue latency
}

// Utilization returns the paper's U = N·L/T · 100% for a run of T cycles.
func (u UnitStat) Utilization(totalCycles uint64) float64 {
	if totalCycles == 0 {
		return 0
	}
	return 100 * float64(u.BusyCycles) / float64(totalCycles)
}

// SlotStat reports one thread slot's activity.
type SlotStat struct {
	Issued   uint64 // instructions issued from decode (including decode-executed)
	Branches uint64
	Stalls   [numStallReasons]uint64
}

// Result summarises a completed simulation.
type Result struct {
	Cycles       uint64 // total execution cycles T
	Instructions uint64 // total instructions executed
	Units        []UnitStat
	Slots        []SlotStat
	Switches     uint64 // context switches taken (concurrent multithreading)
	Forks        uint64 // threads started by fast-fork
	Kills        uint64 // threads stopped by kill
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// BusiestUnit returns the unit with the highest utilization.
func (r Result) BusiestUnit() UnitStat {
	var best UnitStat
	for _, u := range r.Units {
		if u.BusyCycles > best.BusyCycles {
			best = u
		}
	}
	return best
}

// UnitUtilization returns the utilization of the first unit of a class, plus
// aggregate invocations across all units of that class.
func (r Result) UnitUtilization(class isa.UnitClass) (maxUtil float64, totalInvocations uint64) {
	for _, u := range r.Units {
		if u.Class != class {
			continue
		}
		totalInvocations += u.Invocations
		if util := u.Utilization(r.Cycles); util > maxUtil {
			maxUtil = util
		}
	}
	return maxUtil, totalInvocations
}

// String renders a human-readable summary.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d instructions=%d ipc=%.3f\n", r.Cycles, r.Instructions, r.IPC())
	for _, u := range r.Units {
		fmt.Fprintf(&b, "  %-10s[%d] N=%-8d busy=%-8d util=%5.1f%%\n",
			u.Class, u.Index, u.Invocations, u.BusyCycles, u.Utilization(r.Cycles))
	}
	for i, s := range r.Slots {
		fmt.Fprintf(&b, "  slot %d: issued=%d branches=%d stalls[data=%d standby=%d qempty=%d qfull=%d prio=%d empty=%d]\n",
			i, s.Issued, s.Branches,
			s.Stalls[StallData], s.Stalls[StallStandby], s.Stalls[StallQueueEmpty],
			s.Stalls[StallQueueFull], s.Stalls[StallPriority], s.Stalls[StallEmpty])
	}
	if r.Switches+r.Forks+r.Kills > 0 {
		fmt.Fprintf(&b, "  switches=%d forks=%d kills=%d\n", r.Switches, r.Forks, r.Kills)
	}
	return b.String()
}
