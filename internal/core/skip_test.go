package core

// White-box tests for quiescent-cycle skipping (skip.go): the live
// finished() counters must always agree with the slow structural scan, the
// skip must actually elide work on remote-latency workloads, and rotation
// fast-forwarding must match cycle-by-cycle rotation exactly.

import (
	"reflect"
	"testing"

	"hirata/internal/asm"
	"hirata/internal/mem"
)

// remoteChaseProg is a latency-dominated kernel: chained remote loads with
// a little compute, the shape quiescent skipping targets (§2.1.3 runs).
func remoteChaseProg(t *testing.T) *asm.Program {
	t.Helper()
	return asm.MustAssemble(`
		tid  r1
		slli r2, r1, 4
		addi r3, r2, 1024     ; this thread's remote block
		li   r6, 8
	loop:	lw   r4, 0(r3)
		add  r5, r5, r4
		addi r3, r3, 1
		addi r6, r6, -1
		bnez r6, loop
		sw   r5, 100(r1)
		halt
	`)
}

func remoteChaseMem() *mem.Memory {
	m := mem.NewMemoryWithRemote(2048, 1024, 250)
	for i := int64(1024); i < 2048; i++ {
		m.SetInt(i, i%41)
	}
	return m
}

// TestFinishedMatchesScan drives the Run loop by hand and checks after
// every stepped cycle that the counter-based finished() agrees with the
// structural finishedScan(), across the machine shapes that exercise every
// counter transition: forks and kills, data-absence traps with more frames
// than slots, and plain multithreaded execution.
func TestFinishedMatchesScan(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		cfg     Config
		threads int
	}{
		{
			name: "forks",
			src: `
		ffork
		tid  r1
		sw   r1, 200(r1)
		halt
	`,
			cfg:     Config{ThreadSlots: 4, StandbyStations: true},
			threads: 1,
		},
		{
			name:    "remote-traps",
			src:     "",
			cfg:     Config{ThreadSlots: 1, ContextFrames: 4, StandbyStations: true},
			threads: 4,
		},
		{
			name: "plain",
			src: `
		tid  r1
		li   r2, 20
	loop:	addi r2, r2, -1
		bnez r2, loop
		halt
	`,
			cfg:     Config{ThreadSlots: 2, ContextFrames: 2},
			threads: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var prog *asm.Program
			var m *mem.Memory
			if tc.src == "" {
				prog = remoteChaseProg(t)
				m = remoteChaseMem()
			} else {
				prog = asm.MustAssemble(tc.src)
				m = mem.NewMemory(2048)
				if err := prog.InitMemory(m); err != nil {
					t.Fatal(err)
				}
			}
			p, err := New(tc.cfg, prog.Text, m)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < tc.threads; i++ {
				if err := p.StartThread(0); err != nil {
					t.Fatal(err)
				}
			}
			p.started = true
			for {
				if p.cycle >= p.cfg.MaxCycles {
					t.Fatalf("runaway at cycle %d", p.cycle)
				}
				if err := p.stepCycle(); err != nil {
					t.Fatal(err)
				}
				if got, want := p.finished(), p.finishedScan(); got != want {
					t.Fatalf("cycle %d: finished() = %v, finishedScan() = %v", p.cycle, got, want)
				}
				if p.finished() {
					return
				}
				p.advanceCycle()
			}
		})
	}
}

// TestSkipElidesQuiescentCycles: on the remote-latency workload the skip
// must step far fewer cycles than it simulates, while the reference path
// steps every one — and both must produce the identical Result.
func TestSkipElidesQuiescentCycles(t *testing.T) {
	prog := remoteChaseProg(t)
	run := func(disable bool) (Result, uint64) {
		p, err := New(Config{
			ThreadSlots:      1,
			ContextFrames:    4,
			StandbyStations:  true,
			DisableCycleSkip: disable,
		}, prog.Text, remoteChaseMem())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := p.StartThread(0); err != nil {
				t.Fatal(err)
			}
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, p.stepsExecuted
	}
	ref, refSteps := run(true)
	fast, fastSteps := run(false)
	if !reflect.DeepEqual(ref, fast) {
		t.Errorf("Result differs:\n  stepped: %+v\n  skipped: %+v", ref, fast)
	}
	if refSteps < ref.Cycles {
		t.Errorf("reference path stepped %d of %d cycles", refSteps, ref.Cycles)
	}
	if fastSteps*2 >= fast.Cycles {
		t.Errorf("skip stepped %d of %d cycles; want well under half", fastSteps, fast.Cycles)
	}
}

// TestFastForwardRotation checks fastForwardRotation against the naive
// boundary-by-boundary walk for a spread of targets, interval sizes and
// priority-list lengths, in both rotation modes.
func TestFastForwardRotation(t *testing.T) {
	prog := asm.MustAssemble("\thalt\n")
	for _, explicit := range []bool{false, true} {
		for _, slots := range []int{1, 2, 5, 8} {
			for _, interval := range []int{1, 4, 8} {
				mk := func() *Processor {
					p, err := New(Config{
						ThreadSlots:      slots,
						RotationInterval: interval,
						ExplicitRotation: explicit,
					}, prog.Text, mem.NewMemory(64))
					if err != nil {
						t.Fatal(err)
					}
					return p
				}
				fast, naive := mk(), mk()
				// Walk through increasing targets, fast-forwarding one and
				// consuming boundaries one at a time on the other.
				for _, target := range []uint64{1, 3, 8, 9, 64, 65, 1000, 1001, 99999} {
					fast.fastForwardRotation(target)
					for naive.nextRotation < target {
						naive.nextRotation += uint64(interval)
						if !naive.explicit && len(naive.prio) > 1 {
							naive.rotateOnce()
						}
					}
					if fast.nextRotation != naive.nextRotation {
						t.Fatalf("explicit=%v slots=%d interval=%d target=%d: nextRotation %d, want %d",
							explicit, slots, interval, target, fast.nextRotation, naive.nextRotation)
					}
					if !reflect.DeepEqual(fast.prio, naive.prio) {
						t.Fatalf("explicit=%v slots=%d interval=%d target=%d: prio %v, want %v",
							explicit, slots, interval, target, fast.prio, naive.prio)
					}
				}
			}
		}
	}
}
