package core

import (
	"fmt"

	"hirata/internal/exec"
	"hirata/internal/isa"
	"hirata/internal/mem"
)

// issueCtx adapts the processor to exec.Context for one instruction leaving
// decode. It redirects queue-register-mapped register names to the ring
// FIFOs: the first read of the read-mapped register pops the incoming
// queue, writes to the write-mapped register fill the entry reserved in the
// outgoing queue.
type issueCtx struct {
	p *Processor
	s *slot
	f *contextFrame

	popIntDone bool
	popIntVal  int64
	popFPDone  bool
	popFPVal   float64
	push       *qentry
	memErr     error
}

func (c *issueCtx) ReadInt(r isa.Reg) int64 {
	if r.Valid() && r == c.s.qInInt {
		if !c.popIntDone {
			c.popIntVal = int64(c.p.inQueue(c.s.id, false).pop())
			c.popIntDone = true
			if c.p.hostSampled {
				c.p.touchSmp.QueueHits++
			}
		}
		return c.popIntVal
	}
	return c.f.regs.ReadInt(r)
}

func (c *issueCtx) WriteInt(r isa.Reg, v int64) {
	if r.Valid() && r == c.s.qOutInt {
		c.push.bits = uint64(v)
		return
	}
	c.f.regs.WriteInt(r, v)
}

func (c *issueCtx) ReadFP(r isa.Reg) float64 {
	if r.Valid() && r == c.s.qInFP {
		if !c.popFPDone {
			c.popFPVal = floatFromBits(c.p.inQueue(c.s.id, true).pop())
			c.popFPDone = true
			if c.p.hostSampled {
				c.p.touchSmp.QueueHits++
			}
		}
		return c.popFPVal
	}
	return c.f.regs.ReadFP(r)
}

func (c *issueCtx) WriteFP(r isa.Reg, v float64) {
	if r.Valid() && r == c.s.qOutFP {
		c.push.bits = floatBits(v)
		c.push.isFloat = true
		return
	}
	c.f.regs.WriteFP(r, v)
}

func (c *issueCtx) Load(addr int64) (uint64, error)  { return c.p.mem.Load(addr) }
func (c *issueCtx) Store(addr int64, v uint64) error { return c.p.mem.Store(addr, v) }
func (c *issueCtx) TID() int                         { return int(c.f.tid) }

// decodePhase runs every decode unit for one cycle (stage D2): dependence
// checks via scoreboarding, queue-register full/empty interlocks, priority
// interlocks, branch resolution, and issue into standby stations. Running
// slots are the decode dirty set — only they hold decodable state or
// accrue stall statistics — so the event core returns immediately when
// none exist; a census visit is a running slot's window examination.
func (p *Processor) decodePhase() error {
	if p.eventCore && p.runningSlots == 0 {
		return nil
	}
	p.issueBudget = p.cfg.MaxIssuePerCycle
	if p.issueBudget <= 0 {
		p.issueBudget = 1 << 30 // unbounded: simultaneous issue
	}
	for _, slotID := range p.prio {
		s := p.slots[slotID]
		if s.state != slotRunning {
			continue
		}
		if p.hostSampled {
			p.touchSmp.SlotVisits++
		}
		if p.issueBudget <= 0 {
			break
		}
		if err := p.issueFromSlot(s); err != nil {
			return err
		}
	}
	return nil
}

// decodeAndAdvance fuses decodePhase and advanceDecodeStages into one pass
// over the priority list, touching each running slot's hot fields once per
// cycle instead of twice. It runs only on unsampled event-core steps:
// sampled steps keep the split phases so the host probe's issue/decode
// timing attribution and the touch census match the documented taxonomy.
//
// The fusion is result-neutral. A slot's own issue still precedes its own
// advance, and advance mutates only slot-local state plus the slot's
// fetchable bit, none of which issue on another slot reads (cross-slot
// issue effects — kills, queue traffic, priority interlocks — consult
// slot states, queues, and scoreboards, never decode-stage contents). A
// slot killed by an earlier-priority slot after advancing is flushed
// wholesale, erasing the advance exactly as the split ordering would have
// skipped it. The one iteration hazard is a change-priority instruction
// rotating p.prio mid-loop; the advanced bitmask plus the rotation-count
// check below guarantee every still-running slot advances exactly once
// regardless, matching the split core's index-order sweep.
func (p *Processor) decodeAndAdvance() error {
	if p.runningSlots == 0 {
		return nil
	}
	p.issueBudget = p.cfg.MaxIssuePerCycle
	if p.issueBudget <= 0 {
		p.issueBudget = 1 << 30 // unbounded: simultaneous issue
	}
	w := p.cfg.IssueWidth
	rot := p.rotCount
	var advanced uint64
	for _, slotID := range p.prio {
		s := p.slots[slotID]
		if s.state != slotRunning {
			continue
		}
		if p.issueBudget > 0 {
			if err := p.issueFromSlot(s); err != nil {
				return err
			}
		}
		// Re-check the state: the slot may have halted or been flushed to
		// idle by its own issue, in which case the split advance pass
		// would not have visited it either.
		if s.state == slotRunning && advanced&(1<<uint(slotID)) == 0 {
			advanced |= 1 << uint(slotID)
			p.advanceSlot(s, w)
		}
	}
	if p.rotCount != rot {
		// A mid-loop rotation reordered p.prio under the range above, so
		// some running slot may have been skipped: mop up in index order.
		for _, s := range p.slots {
			if s.state == slotRunning && advanced&(1<<uint(s.id)) == 0 {
				p.advanceSlot(s, w)
			}
		}
	}
	return nil
}

// issueFromSlot issues up to IssueWidth instructions from the slot's D2
// window, in order. With IssueWidth == 1 this is the paper's base design;
// wider widths implement the hybrid superscalar thread slots of §3.3.
func (p *Processor) issueFromSlot(s *slot) error {
	if len(s.d2) == 0 {
		p.stats.Slots[s.id].Stalls[StallEmpty]++
		if p.hostSampled {
			// The stall tally is per-cycle architectural state; recording
			// it is the visit's work, so it counts as a hit.
			p.touchSmp.SlotHits++
		}
		if p.observer != nil {
			p.observer.Stall(p.cycle, s.id, -1, StallEmpty)
		}
		return nil
	}
	if p.cfg.IssueWidth == 1 {
		// The paper's base design: the window holds a single candidate, so
		// none of the wide path's intra-window hazard bookkeeping applies.
		// decodePhase guarantees issueBudget > 0 on entry.
		if s.stallUntil != 0 {
			// The head is scoreboard-blocked and nothing that could unblock
			// it has happened (see cacheHeadStall): tally the stall without
			// re-deriving it. The tally is the visit's work, so the census
			// counts a hit — exactly what the re-derivation would record,
			// since a scoreboard miss fails before any queue census.
			// Observed runs recompute so per-cycle Stall callbacks carry
			// the head pc.
			if p.cycle < s.stallUntil && p.observer == nil {
				p.stats.Slots[s.id].Stalls[s.stallReason]++
				if p.hostSampled {
					p.touchSmp.SlotHits++
				}
				return nil
			}
			s.stallUntil = 0
		}
		issued, reason, stop, err := p.tryIssue(s, &s.d2[0], true, nil, nil, false)
		if err != nil {
			return err
		}
		if issued {
			s.stallUntil = 0
			p.issueBudget--
			if stop {
				s.d2 = s.d2[:0]
			} else {
				s.d2 = s.d2[:copy(s.d2, s.d2[1:])]
			}
			if p.hostSampled {
				p.touchSmp.SlotHits++
			}
			return nil
		}
		if reason != StallNone {
			p.stats.Slots[s.id].Stalls[reason]++
			if p.hostSampled {
				p.touchSmp.SlotHits++ // stall tally recorded (see above)
			}
			if p.observer != nil {
				p.observer.Stall(p.cycle, s.id, s.d2[0].pc, reason)
			}
		}
		return nil
	}
	var (
		pendingDests = p.pendScratch[:0]  // dests of earlier, unissued window entries
		pendingSrcs  = p.pendScratch2[:0] // sources of earlier, unissued window entries
		memBlocked   bool                 // an earlier unissued memory op exists
		ctrlBlocked  bool                 // an earlier unissued control op exists
		issuedIdx    = p.idxScratch[:0]
		firstStall   = StallNone
	)
	for i := 0; i < len(s.d2); i++ {
		di := &s.d2[i]
		if ctrlBlocked || p.issueBudget <= 0 {
			break
		}
		headClear := i == len(issuedIdx)
		issued, reason, stop, err := p.tryIssue(s, di, headClear, pendingDests, pendingSrcs, memBlocked)
		if err != nil {
			return err
		}
		if issued {
			issuedIdx = append(issuedIdx, i)
			p.issueBudget--
			if stop {
				// A branch or thread-control instruction redirected or
				// ended the stream; everything younger is already flushed.
				s.d2 = s.d2[:0]
				if p.hostSampled {
					p.touchSmp.SlotHits++
				}
				return nil
			}
			continue
		}
		if firstStall == StallNone && reason != StallNone {
			firstStall = reason
		}
		pendingDests = appendReg(pendingDests, di.pre.dest)
		pendingSrcs = append(pendingSrcs, di.pre.srcList()...)
		if di.pre.isMem {
			memBlocked = true
		}
		if di.pre.control && di.ins.Op != isa.NOP {
			ctrlBlocked = true
		}
		if p.cfg.IssueWidth == 1 {
			break
		}
	}
	if len(issuedIdx) > 0 {
		keep := s.d2[:0]
		k := 0
		for i, di := range s.d2 {
			if k < len(issuedIdx) && issuedIdx[k] == i {
				k++
				continue
			}
			keep = append(keep, di)
		}
		s.d2 = keep
		if p.hostSampled {
			p.touchSmp.SlotHits++
		}
	} else if firstStall != StallNone {
		p.stats.Slots[s.id].Stalls[firstStall]++
		if p.hostSampled {
			p.touchSmp.SlotHits++ // stall tally recorded (see above)
		}
		if p.observer != nil {
			p.observer.Stall(p.cycle, s.id, s.d2[0].pc, firstStall)
		}
	}
	p.pendScratch = pendingDests[:0]
	p.pendScratch2 = pendingSrcs[:0]
	p.idxScratch = issuedIdx[:0]
	return nil
}

// appendReg appends r to dst when it names a real register.
func appendReg(dst []isa.Reg, r isa.Reg) []isa.Reg {
	if r.Valid() {
		dst = append(dst, r)
	}
	return dst
}

// tryIssue attempts to issue one instruction out of the D2 window.
// headClear reports that every older window entry has issued, which is
// required for control instructions. stop=true means the instruction ended
// or redirected the instruction stream.
func (p *Processor) tryIssue(s *slot, di *dinstr, headClear bool, pendingDests, pendingSrcs []isa.Reg, memBlocked bool) (issued bool, reason StallReason, stop bool, err error) {
	in := di.ins
	pre := di.pre
	f := p.frames[s.frame]

	// Window-internal hazards (superscalar widths only).
	if p.cfg.IssueWidth > 1 {
		for _, r := range pre.srcList() {
			if regIn(pendingDests, r) {
				return false, StallData, false, nil
			}
		}
		if d := pre.dest; d.Valid() && (regIn(pendingDests, d) || regIn(pendingSrcs, d)) {
			return false, StallData, false, nil
		}
		if pre.isMem && memBlocked {
			return false, StallData, false, nil
		}
	}

	if pre.control {
		if !headClear {
			return false, StallData, false, nil
		}
		return p.issueControl(s, f, di)
	}

	// Priority-interlocked stores (§2.3.3) wait for the highest priority.
	if pre.needsPrio && p.highestActiveSlot() != s.id {
		return false, StallPriority, false, nil
	}

	// Structural: a free standby station (or the issue latch). The stall
	// lifts when an instruction schedule unit drains this slot's issued
	// work — a selectInstr for this slot, which clears the cache.
	cls := pre.class
	if p.cfg.StandbyStations {
		if len(s.standby[cls]) >= p.cfg.StandbyDepth {
			p.cacheHeadStall(s, pre, pendingReady, StallStandby)
			return false, StallStandby, false, nil
		}
	} else if s.latch != nil {
		p.cacheHeadStall(s, pre, pendingReady, StallStandby)
		return false, StallStandby, false, nil
	}

	// Source operands: queue-register reads need a filled, ready entry;
	// plain registers consult the scoreboard.
	if ok, r, until := p.sourcesReady(s, f, pre.srcList()); !ok {
		if until != 0 {
			p.cacheHeadStall(s, pre, until, r)
		}
		return false, r, false, nil
	}

	// Destination: queue-register writes need capacity; plain registers
	// interlock on WAW via the scoreboard.
	dest := pre.dest
	destQueue := false
	if dest.Valid() {
		switch {
		case dest == s.qOutInt, dest == s.qOutFP:
			destQueue = true
			if p.hostSampled {
				p.touchSmp.QueueVisits++
			}
			if p.outQueue(s.id, dest.IsFP()).full() {
				return false, StallQueueFull, false, nil
			}
		default:
			if !f.scoreboardReady(dest, p.cycle) {
				p.cacheHeadStall(s, pre, f.readyAt[sbIndex(dest)], StallData)
				return false, StallData, false, nil
			}
		}
	}

	// Data-absence trap on loads of remote data (§2.1.3): in implicit
	// rotation mode with spare context frames, switch contexts instead of
	// stalling. Explicit-rotation mode suppresses context switches. In
	// trace-driven mode the effective address comes from the trace record.
	extraLat := 0
	if pre.isMem {
		base := in.Rs1
		haveAddr := p.traceMode || base != s.qInInt // queue-mapped bases cannot be pre-read
		if haveAddr {
			addr := di.addr
			if !p.traceMode {
				addr = f.regs.ReadInt(base) + int64(in.Imm)
			}
			if p.mem.IsRemote(addr) && !f.satisfied[addr] {
				if !p.explicit && p.concurrentOn() && !p.traceMode && pre.isLoad {
					p.trapDataAbsence(s, f, di, addr)
					return true, StallNone, true, nil
				}
				extraLat += p.mem.RemoteLatency()
				if f.satisfied == nil {
					f.satisfied = make(map[int64]bool)
				}
				f.satisfied[addr] = true
			}
			extraLat += p.dcache.Access(addr) - p.dcacheHitCycles()
		}
	}

	// Issue: apply architectural effects now, timing flows through the
	// standby station and schedule unit. Trace-driven replay performs the
	// interlocks only; the recorded stream already fixed the values.
	var push *qentry
	if !p.traceMode {
		// The simulator is single-threaded and exec.Execute does not retain
		// its context, so one reusable issueCtx serves every instruction.
		ctx := &p.ictx
		*ctx = issueCtx{p: p, s: s, f: f}
		if destQueue {
			ctx.push = p.outQueue(s.id, dest.IsFP()).reserve()
			if p.hostSampled {
				p.touchSmp.QueueHits++
			}
		}
		out, eerr := exec.Execute(in, di.pc, ctx)
		if eerr != nil {
			return false, StallNone, false, fmt.Errorf("core: slot %d: %w", s.id, eerr)
		}
		if out.Effect != exec.EffectNone {
			return false, StallNone, false, fmt.Errorf("core: slot %d: unexpected effect from %s", s.id, in.Op)
		}
		push = ctx.push
	}

	inf := p.allocInflight()
	inf.ins = in
	inf.pre = pre
	inf.pc = di.pc
	inf.slot = s.id
	inf.frame = f.id
	inf.class = cls
	inf.extraLat = extraLat
	inf.push = push
	if dest.Valid() && !destQueue {
		inf.dest = dest
		f.markPending(dest)
	} else {
		inf.dest = isa.NoReg
	}
	if p.cfg.StandbyStations {
		s.standby[cls] = append(s.standby[cls], inf)
	} else {
		s.latch = inf
	}
	p.markIssued(s, int(cls))
	p.issuedPending++
	if di.fromARB {
		f.arb.Complete(di.arbSeq)
	}
	p.noteIssued(s, di)
	return true, StallNone, false, nil
}

// sourcesReady checks every source operand of an instruction. On a plain
// scoreboard miss the third result is the register's readyAt deadline (the
// pendingReady sentinel while the producer awaits selection), which feeds
// the head-stall cache; queue-register misses return 0 — a queue can fill
// on any cycle, so they are never cacheable.
func (p *Processor) sourcesReady(s *slot, f *contextFrame, srcs []isa.Reg) (bool, StallReason, uint64) {
	needIntPop, needFPPop := false, false
	for _, r := range srcs {
		switch {
		case r == s.qInInt && s.qInInt != isa.NoReg:
			needIntPop = true
		case r == s.qInFP && s.qInFP != isa.NoReg:
			needFPPop = true
		default:
			if !f.scoreboardReady(r, p.cycle) {
				return false, StallData, f.readyAt[sbIndex(r)]
			}
		}
	}
	if p.hostSampled && (needIntPop || needFPPop) {
		p.touchSmp.QueueVisits++
	}
	if needIntPop && p.inQueue(s.id, false).readyCount(p.cycle) < 1 {
		return false, StallQueueEmpty, 0
	}
	if needFPPop && p.inQueue(s.id, true).readyCount(p.cycle) < 1 {
		return false, StallQueueEmpty, 0
	}
	return true, StallNone, 0
}

// issueControl executes branches and the special thread-control
// instructions inside the decode unit.
func (p *Processor) issueControl(s *slot, f *contextFrame, di *dinstr) (bool, StallReason, bool, error) {
	in := di.ins
	if p.traceMode {
		return p.issueControlTrace(s, f, di)
	}

	// Priority interlocks: change-priority (explicit mode) and kill run
	// only on the highest-priority logical processor (§2.2, §2.3.3).
	switch in.Op {
	case isa.KILL:
		if p.highestActiveSlot() != s.id {
			return false, StallPriority, false, nil
		}
	case isa.CHGPRI:
		if p.explicit && p.highestActiveSlot() != s.id {
			return false, StallPriority, false, nil
		}
	}

	// Branch conditions and jump targets read registers in the decode
	// unit; they must be ready.
	if ok, r, _ := p.sourcesReady(s, f, di.pre.srcList()); !ok {
		return false, r, false, nil
	}

	ctx := &p.ictx
	*ctx = issueCtx{p: p, s: s, f: f}
	out, err := exec.Execute(in, di.pc, ctx)
	if err != nil {
		return false, StallNone, false, fmt.Errorf("core: slot %d: %w", s.id, err)
	}
	if di.fromARB {
		f.arb.Complete(di.arbSeq)
	}
	p.noteIssued(s, di)

	switch out.Effect {
	case exec.EffectNone:
		// NOP; also TID and JAL-style link writes already applied. Results
		// computed in the decode unit are usable the next cycle.
		if d := in.Dest(); d.Valid() {
			f.setReady(d, p.cycle+1)
		}
		return true, StallNone, false, nil

	case exec.EffectBranch:
		p.stats.Slots[s.id].Branches++
		if d := in.Dest(); d.Valid() { // jal link register
			f.setReady(d, p.cycle+1)
		}
		next := di.pc + 1
		if out.Taken {
			next = out.Target
		}
		p.redirect(s, next)
		return true, StallNone, true, nil

	case exec.EffectHalt:
		p.setFrameState(f, frameDone)
		s.flushPipeline()
		s.unmapQueues()
		if p.observer != nil {
			p.observer.ThreadEnd(p.cycle, s.id, f.id, false)
		}
		p.setSlotState(s, slotIdle)
		s.frame = -1
		p.touch(p.cycle)
		return true, StallNone, true, nil

	case exec.EffectFork:
		p.fork(s, di.pc)
		return true, StallNone, false, nil

	case exec.EffectKill:
		p.kill(s)
		return true, StallNone, false, nil

	case exec.EffectChangePriority:
		if p.explicit {
			p.rotateOnce()
		}
		return true, StallNone, false, nil

	case exec.EffectQueueEnable:
		s.qInInt, s.qOutInt = in.Rs1, in.Rs2
		return true, StallNone, false, nil

	case exec.EffectQueueEnableFP:
		s.qInFP, s.qOutFP = in.Rs1, in.Rs2
		return true, StallNone, false, nil

	case exec.EffectQueueDisable:
		s.unmapQueues()
		return true, StallNone, false, nil

	case exec.EffectSetMode:
		p.explicit = out.Mode != 0
		return true, StallNone, false, nil
	}
	return false, StallNone, false, fmt.Errorf("core: unhandled effect %d for %s", out.Effect, in.Op)
}

// issueControlTrace replays branches, NOP and HALT from a trace record:
// timing interlocks are identical to execution-driven mode, but control
// flow simply continues with the next trace entry.
func (p *Processor) issueControlTrace(s *slot, f *contextFrame, di *dinstr) (bool, StallReason, bool, error) {
	in := di.ins
	if ok, r, _ := p.sourcesReady(s, f, di.pre.srcList()); !ok {
		return false, r, false, nil
	}
	p.noteIssued(s, di)
	switch {
	case in.Op == isa.NOP:
		return true, StallNone, false, nil
	case in.Op == isa.HALT:
		p.setFrameState(f, frameDone)
		s.flushPipeline()
		if p.observer != nil {
			p.observer.ThreadEnd(p.cycle, s.id, f.id, false)
		}
		p.setSlotState(s, slotIdle)
		s.frame = -1
		p.touch(p.cycle)
		return true, StallNone, true, nil
	case in.Op.IsBranch():
		p.stats.Slots[s.id].Branches++
		if d := in.Dest(); d.Valid() { // jal link register
			f.setReady(d, p.cycle+1)
		}
		p.redirect(s, di.pc+1) // the trace already resolved the target
		return true, StallNone, true, nil
	}
	return false, StallNone, false, fmt.Errorf("core: trace replay cannot execute %s", in.Op)
}

// redirect restarts the slot's instruction stream at pc after a branch.
// The refetch becomes eligible next cycle; the resulting bubble reproduces
// the paper's 5-cycle branch delay on an otherwise idle fetch unit.
func (p *Processor) redirect(s *slot, pc int64) {
	s.flushPipeline()
	s.fetchPC = pc
	s.fetchDone = pc >= p.streamLen(p.frames[s.frame]) || pc < 0
	s.fetchHoldUntil = p.cycle + 1
	p.refreshFetchable(s)
	fu := p.fetcherFor(s.id)
	fu.redirects = append(fu.redirects, redirectReq{
		slot:          s.id,
		gen:           s.fetchGen,
		earliestStart: p.cycle + 1,
	})
	p.pendingRedirects++
	if p.observer != nil {
		p.observer.Redirect(p.cycle, s.id, pc)
	}
}

// trapDataAbsence switches the thread out on a remote-memory load.
func (p *Processor) trapDataAbsence(s *slot, f *contextFrame, di *dinstr, addr int64) {
	f.arbSeq++
	f.arb.Add(mem.AccessRequirement{Instr: di.ins, PC: di.pc, Seq: f.arbSeq})
	f.pc = di.pc + 1
	p.setFrameState(f, frameWaiting)
	f.waitUntil = p.cycle + uint64(p.mem.RemoteLatency())
	p.pushWait(f.waitUntil, f.id)
	if f.satisfied == nil {
		f.satisfied = make(map[int64]bool)
	}
	f.satisfied[addr] = true
	s.flushPipeline()
	p.setSlotState(s, slotDraining)
	p.stats.Switches++
	if p.observer != nil {
		p.observer.Trap(p.cycle, s.id, f.id, addr)
	}
	// The wait itself is only charged when the frame actually wakes
	// (wakeFrames); a kill can cut it short.
	p.touch(p.cycle)
}

// fork implements fast-fork (§2.3.1): every idle thread slot starts a
// thread at the instruction after the fork, with its logical processor
// identifier as thread id.
func (p *Processor) fork(forker *slot, forkPC int64) {
	for _, s := range p.slots {
		if s == forker || s.state != slotIdle {
			continue
		}
		f := p.frames[s.id]
		if f.state != frameFree && f.state != frameDone {
			continue
		}
		f.reset()
		f.tid = int64(s.id)
		f.pc = forkPC + 1
		p.bindFrame(s, f)
		p.stats.Forks++
	}
}

// kill implements the kill instruction: stop all other running threads.
func (p *Processor) kill(killer *slot) {
	for _, s := range p.slots {
		if s == killer || s.frame < 0 {
			continue
		}
		p.setFrameState(p.frames[s.frame], frameDone)
		s.flushPipeline()
		p.clearIssuedSlot(s)
		s.unmapQueues()
		if p.observer != nil {
			p.observer.ThreadEnd(p.cycle, s.id, s.frame, true)
		}
		p.setSlotState(s, slotIdle)
		s.frame = -1
		p.stats.Kills++
	}
	for _, fid := range p.readyQ {
		if p.frames[fid].state == frameReady {
			p.setFrameState(p.frames[fid], frameDone)
			p.stats.Kills++
		}
	}
	p.readyQ = p.readyQ[:0]
	for _, f := range p.frames {
		if f.state == frameWaiting {
			// The frame's wait-heap entry goes stale; wakeFrames skips it.
			p.setFrameState(f, frameDone)
			p.stats.Kills++
		}
	}
	p.clearQueues()
	p.touch(p.cycle)
}

// noteIssued updates per-slot and global instruction counts.
func (p *Processor) noteIssued(s *slot, di *dinstr) {
	p.stats.Slots[s.id].Issued++
	p.stats.Instructions++
	if p.hostSampled {
		p.touchSmp.Issues++
	}
	p.touch(p.cycle)
	if p.OnIssue != nil {
		p.OnIssue(s.id, di.pc, p.cycle)
	}
	if p.observer != nil {
		p.observer.Issue(p.cycle, s.id, di.pc, di.ins)
	}
}

// dcacheHitCycles returns the baseline data-cache access time already
// folded into the load/store latencies of Table 1.
func (p *Processor) dcacheHitCycles() int { return mem.CacheAccessCycles }

func regIn(list []isa.Reg, r isa.Reg) bool {
	for _, x := range list {
		if x == r {
			return true
		}
	}
	return false
}
