package core

import "math/bits"

// Quiescent-cycle skipping: when no slot is running a thread, nothing can
// decode, fetch or retire until a scheduled future event — a completion
// leaving the ring, a waiting frame's remote data arriving, an idle slot's
// rebind delay elapsing, a functional or fetch unit going free. Instead of
// spinning stepCycle through those cycles (the dominant cost of concurrent
// multithreading runs with 100+-cycle remote latency, §2.1.3), Run jumps
// p.cycle straight to the earliest such event. Results are cycle-exact:
// per-cycle stall statistics only accrue on running slots, so a stretch
// with runningSlots == 0 is observationally identical whether stepped or
// skipped, provided priority rotation is fast-forwarded the same number of
// boundaries.
//
// On the event core (event.go), the jump is the degenerate case of the
// pending-event heap: with the per-cycle dirty sets empty, the horizon is
// simply the earliest pending event (heap top, folded with the frame wake
// heap). The structural scan below (quiescentHorizonScan) survives as the
// legacy fallback and as the cross-check reference the event-heap tests
// compare against.

// skipEnabled reports whether quiescent-cycle fast-forwarding is safe.
// Observers and the OnIssue/OnSelect hooks may watch per-cycle activity
// (e.g. rotation events), so their presence pins the machine to
// cycle-by-cycle stepping, as does Config.DisableCycleSkip (the
// differential-test reference path).
func (p *Processor) skipEnabled() bool {
	return !p.cfg.DisableCycleSkip && p.observer == nil && p.OnIssue == nil && p.OnSelect == nil
}

// advanceCycle moves the machine to the next simulated cycle, jumping over
// provably quiescent stretches. A HostProbe does not disable skipping (it
// observes the simulator, not the machine): jumps are reported through
// SkipJump, and on sampled steps the horizon machinery is charged to
// HostPhaseSkip — but only when it actually arms. A step that advances
// normally closes its sampled window through hostStepDone without touching
// the event-horizon phase, so phase profiles separate "cycle simulated"
// from "cycle jumped by event horizon".
func (p *Processor) advanceCycle() {
	next := p.cycle + 1
	if p.runningSlots > 0 || !p.skipEnabled() {
		// Normal step: retire pending events up to the cycle being entered
		// (each push is popped exactly once, keeping the heap bounded).
		p.drainEv(next)
		p.cycle = next
		p.hostStepDone()
		return
	}
	t := p.quiescentHorizon()
	if t > p.cfg.MaxCycles {
		// Jump to the limit so Run reports the runaway/deadlock error at
		// the same cycle, with the same statistics, as stepping would.
		t = p.cfg.MaxCycles
	}
	if t <= next {
		p.drainEv(next)
		p.cycle = next
		p.hostSkipDone()
		return
	}
	if p.hostProbe != nil {
		p.hostProbe.SkipJump(next-1, t)
	}
	p.fastForwardRotation(t)
	p.drainEv(t)
	p.cycle = t
	p.hostSkipDone()
}

// hostStepDone closes a sampled step that advanced normally: the sampled
// flag is cleared so no touch-census increment can run between two steps,
// and nothing is charged to the event-horizon phase (it never ran).
func (p *Processor) hostStepDone() {
	p.hostSampled = false
}

// hostSkipDone closes the event-horizon phase of a sampled step on which
// the skip machinery armed (runningSlots == 0 and skipping enabled).
func (p *Processor) hostSkipDone() {
	if p.hostSampled {
		p.hostProbe.PhaseEnd(HostPhaseSkip)
		p.hostSampled = false
	}
}

// maxU returns the larger of two cycle numbers.
func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// minEvent folds one candidate event cycle into the horizon.
func minEvent(t, c uint64) uint64 {
	if c < t {
		return c
	}
	return t
}

// noEvent is the horizon sentinel: no resource reports a future event.
const noEvent = ^uint64(0)

// quiescentHorizon returns the earliest future cycle at which any pipeline
// activity can occur, given that no slot is running: read off the pending-
// event heap on the event core, recomputed structurally on the legacy one.
func (p *Processor) quiescentHorizon() uint64 {
	if p.eventCore {
		return p.quiescentHorizonEvent()
	}
	return p.quiescentHorizonScan()
}

// quiescentHorizonEvent is the event-core horizon: the earliest bit of the
// near-event wheel, folded with the far-event heap top and the earliest
// frame-wake deadline (kept in its own heap for (when, id) wake ordering).
// Stale events — a killed slot's rebind, a re-busied unit — are at worst
// early, never late, costing one extra step. If the whole event set is
// empty the machine can never make progress (and finished() was false),
// i.e. a genuine deadlock: return MaxCycles so Run raises the same
// diagnostic the cycle-by-cycle loop would reach.
func (p *Processor) quiescentHorizonEvent() uint64 {
	floor := p.cycle + 1
	p.drainEv(p.cycle)
	t := uint64(noEvent)
	if p.evNear != 0 {
		t = p.cycle + 1 + uint64(bits.TrailingZeros64(p.evNear))
	}
	if len(p.evFar) > 0 {
		t = minEvent(t, p.evFar[0])
	}
	if len(p.waitHeap) > 0 {
		t = minEvent(t, maxU(p.waitHeap[0].when, floor))
	}
	if t == noEvent {
		return p.cfg.MaxCycles
	}
	return t
}

// quiescentHorizonScan is the legacy structural horizon (and the reference
// the event-heap cross-check tests compare against). Every candidate is
// conservative: reporting an event too early merely costs a normal step,
// while missing one would alter results — so each machine resource that
// can wake the pipeline contributes its own bound:
//
//   - completion ring: the next non-empty retire list (outstanding > 0);
//   - wait heap: the earliest frame wake deadline (stale entries are at
//     worst early, never late);
//   - ready queue: the earliest rebind time of an idle slot;
//   - standby stations/latches: for each class with issued-but-unselected
//     instructions, the first cycle a unit of that class is free
//     (busyUntil + 1, since schedulePhase requires busyUntil < cycle);
//   - draining slots that have fully drained: they unbind at the very next
//     bindSlots, so the horizon collapses to cycle+1;
//   - busy fetch units: their delivery cycle (deliveries into non-running
//     slots are dropped, but the drop itself must happen on time so the
//     unit frees up on the cycle stepping would free it).
//
// Idle fetch units need no bound: startFetch only serves running slots.
// If no resource reports an event the machine can never make progress
// (and finished() was false), i.e. a genuine deadlock: return MaxCycles so
// Run raises the same diagnostic the cycle-by-cycle loop would reach.
func (p *Processor) quiescentHorizonScan() uint64 {
	floor := p.cycle + 1
	t := uint64(noEvent)

	if p.outstanding > 0 {
		for d := uint64(1); d <= p.compMask+1; d++ {
			if len(p.completions[(p.cycle+d)&p.compMask]) > 0 {
				t = minEvent(t, p.cycle+d)
				break
			}
		}
	}
	if len(p.waitHeap) > 0 {
		t = minEvent(t, maxU(p.waitHeap[0].when, floor))
	}
	if len(p.readyQ) > 0 {
		for _, s := range p.slots {
			if s.state == slotIdle {
				t = minEvent(t, maxU(s.bindReadyAt, floor))
			}
		}
	}
	if p.issuedPending > 0 {
		var classes [unitClassCount]bool
		for _, s := range p.slots {
			if s.latch != nil {
				classes[s.latch.class] = true
			}
			for cls, st := range s.standby {
				if len(st) > 0 {
					classes[cls] = true
				}
			}
		}
		for cls, need := range classes {
			if !need {
				continue
			}
			for _, u := range p.unitsByCls[cls] {
				t = minEvent(t, maxU(u.busyUntil+1, floor))
			}
		}
	}
	for _, s := range p.slots {
		if s.state == slotDraining && s.outstanding == 0 && s.issuedEmpty() {
			t = minEvent(t, floor) // unbinds at the next bindSlots
		}
	}
	for _, fu := range p.fetchers {
		if fu.busy {
			t = minEvent(t, maxU(fu.busyUntil, floor))
		}
	}
	if t == noEvent {
		return p.cfg.MaxCycles
	}
	return t
}

// fastForwardRotation applies the implicit-rotation boundaries in the
// half-open interval (p.cycle, t) that a cycle-by-cycle walk to t would
// have crossed, leaving the priority order and the nextRotation counter
// exactly as stepping would. A boundary landing on t itself stays pending
// for rotatePriorities at cycle t. Boundaries are consumed even in
// explicit-rotation mode (matching rotatePriorities); rotations only apply
// in implicit mode, reduced modulo the priority-list length since rotation
// is cyclic.
func (p *Processor) fastForwardRotation(t uint64) {
	if p.nextRotation >= t {
		return
	}
	interval := uint64(p.cfg.RotationInterval)
	k := (t-1-p.nextRotation)/interval + 1
	p.nextRotation += k * interval
	if p.explicit || len(p.prio) < 2 {
		return
	}
	for i := uint64(0); i < k%uint64(len(p.prio)); i++ {
		p.rotateOnce()
	}
}
