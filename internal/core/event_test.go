package core

// White-box proof that the pending-event set never drops a scheduled wake:
// at every point the quiescent jump can arm, the heap-and-wheel horizon
// (quiescentHorizonEvent) must not lie beyond the structural reference scan
// (quiescentHorizonScan). An event horizon that is *early* merely costs one
// extra step — stale pushes are allowed — but a *late* horizon means some
// resource's wake was never pushed, which would change results.

import (
	"testing"

	"hirata/internal/asm"
	"hirata/internal/mem"
)

// TestEventHorizonNeverLate drives the Run loop by hand across the machine
// shapes that exercise every event source — forks and kills, data-absence
// traps with more frames than slots, plain multithreaded loops — and
// cross-checks the two horizons before every advanceCycle at which the
// skip machinery would arm.
func TestEventHorizonNeverLate(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		cfg     Config
		threads int
	}{
		{
			name: "forks",
			src: `
		ffork
		tid  r1
		sw   r1, 200(r1)
		halt
	`,
			cfg:     Config{ThreadSlots: 4, StandbyStations: true},
			threads: 1,
		},
		{
			name:    "remote-traps",
			src:     "",
			cfg:     Config{ThreadSlots: 1, ContextFrames: 4, StandbyStations: true},
			threads: 4,
		},
		{
			name:    "remote-traps-wide",
			src:     "",
			cfg:     Config{ThreadSlots: 2, ContextFrames: 6, StandbyStations: true, LoadStoreUnits: 2},
			threads: 6,
		},
		{
			name: "plain",
			src: `
		tid  r1
		li   r2, 20
	loop:	addi r2, r2, -1
		bnez r2, loop
		halt
	`,
			cfg:     Config{ThreadSlots: 2, ContextFrames: 2},
			threads: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var prog *asm.Program
			var m *mem.Memory
			if tc.src == "" {
				prog = remoteChaseProg(t)
				m = remoteChaseMem()
			} else {
				prog = asm.MustAssemble(tc.src)
				m = mem.NewMemory(2048)
				if err := prog.InitMemory(m); err != nil {
					t.Fatal(err)
				}
			}
			p, err := New(tc.cfg, prog.Text, m)
			if err != nil {
				t.Fatal(err)
			}
			if !p.eventCore {
				t.Fatal("event core not enabled by default")
			}
			for i := 0; i < tc.threads; i++ {
				if err := p.StartThread(0); err != nil {
					t.Fatal(err)
				}
			}
			p.started = true
			checks := 0
			for {
				if p.cycle >= p.cfg.MaxCycles {
					t.Fatalf("runaway at cycle %d", p.cycle)
				}
				if err := p.stepCycle(); err != nil {
					t.Fatal(err)
				}
				if p.finished() {
					break
				}
				if p.runningSlots == 0 && p.skipEnabled() {
					checks++
					ev := p.quiescentHorizonEvent()
					sc := p.quiescentHorizonScan()
					if ev > sc {
						t.Fatalf("cycle %d: event horizon %d beyond structural horizon %d (dropped wake)",
							p.cycle, ev, sc)
					}
					if ev <= p.cycle {
						t.Fatalf("cycle %d: event horizon %d does not advance", p.cycle, ev)
					}
				}
				p.advanceCycle()
			}
			if tc.src == "" && checks == 0 {
				t.Error("remote workload never armed the quiescent jump; cross-check exercised nothing")
			}
		})
	}
}
