package core

import "hirata/internal/isa"

// schedulePhase is the S pipeline stage: for every functional-unit class,
// the instruction schedule unit picks, in thread-priority order, issued
// instructions waiting in standby stations (or issue latches) and assigns
// them to free functional units (§2.2).
//
// An instruction selected at cycle s occupies its unit for the issue
// latency and delivers its result at cycle s + result latency; that is the
// cycle at which a dependent instruction may pass decode, which reproduces
// the paper's 3-cycle dependent-issue distance for 2-cycle results.
func (p *Processor) schedulePhase() {
	for cls := isa.UnitClass(1); int(cls) < unitClassCount; cls++ {
		units := p.unitsByCls[cls]
		if p.hostSampled {
			p.touchSmp.UnitScans += uint64(len(units))
		}
		free := p.freeUnits[:0]
		for _, u := range units {
			if u.busyUntil < p.cycle {
				free = append(free, u)
			}
		}
		if len(free) == 0 {
			continue
		}
		// Candidates in priority order: at most one instruction per slot
		// per class can be waiting (standby stations have depth one).
		for _, slotID := range p.prio {
			if p.hostSampled {
				p.touchSmp.SlotScans++
			}
			if len(free) == 0 {
				break
			}
			s := p.slots[slotID]
			var inf *inflight
			if p.cfg.StandbyStations {
				if len(s.standby[cls]) > 0 {
					inf = s.standby[cls][0]
				}
			} else if s.latch != nil && s.latch.class == cls {
				inf = s.latch
			}
			if inf == nil {
				continue
			}
			u := free[0]
			free = free[1:]
			p.selectInstr(u, inf)
			if p.cfg.StandbyStations {
				q := s.standby[cls]
				s.standby[cls] = q[:copy(q, q[1:])]
			} else {
				s.latch = nil
			}
			p.issuedPending--
		}
	}
}

// selectInstr commits an issued instruction to a functional unit.
func (p *Processor) selectInstr(u *funcUnit, inf *inflight) {
	issueLat := inf.pre.issueLat
	resultLat := inf.pre.resultLat + uint64(inf.extraLat)

	u.busyUntil = p.cycle + issueLat - 1
	u.stat.Invocations++
	u.stat.BusyCycles += issueLat
	if p.hostSampled {
		p.touchSmp.UnitSelections++
		p.hostSlotTouched(inf.slot)
	}

	ready := p.cycle + resultLat
	if inf.frame >= 0 {
		p.frames[inf.frame].setReady(inf.dest, ready)
	}
	stampQueueEntry(inf.push, ready)

	s := p.slots[inf.slot]
	s.outstanding++
	p.outstanding++
	if ready-p.cycle > p.compMask {
		panic("core: completion ring too small for result latency")
	}
	idx := ready & p.compMask
	p.completions[idx] = append(p.completions[idx], inf.slot)
	p.touch(ready)
	if p.OnSelect != nil {
		p.OnSelect(inf.slot, inf.pc, p.cycle)
	}
	if p.observer != nil {
		p.observer.Select(p.cycle, inf.slot, inf.pc, inf.ins, u.class, u.index, ready)
		if p.compDetail != nil {
			p.compDetail[idx] = append(p.compDetail[idx], compDetail{
				slot: inf.slot, pc: inf.pc, ins: inf.ins, unit: u.class, unitIndex: u.index,
			})
		}
	}
}
