package core

import (
	"math/bits"

	"hirata/internal/isa"
)

// schedulePhase is the S pipeline stage: for every functional-unit class,
// the instruction schedule unit picks, in thread-priority order, issued
// instructions waiting in standby stations (or issue latches) and assigns
// them to free functional units (§2.2).
//
// An instruction selected at cycle s occupies its unit for the issue
// latency and delivers its result at cycle s + result latency; that is the
// cycle at which a dependent instruction may pass decode, which reproduces
// the paper's 3-cycle dependent-issue distance for 2-cycle results.
//
// The event core consumes the classMask dirty set: the classDirty summary
// names the classes with issued work (clean classes are never touched),
// and the per-class scan visits only slots whose mask bit is set, in
// thread-priority order via the prioIdx rank table — the same slots, in
// the same order, the legacy full scan would have found candidates in.
func (p *Processor) schedulePhase() {
	if !p.eventCore {
		p.schedulePhaseScan()
		return
	}
	for dirty := p.classDirty; dirty != 0; dirty &= dirty - 1 {
		cls := isa.UnitClass(bits.TrailingZeros32(dirty))
		units := p.unitsByCls[cls]
		if p.hostSampled {
			p.touchSmp.UnitVisits += uint64(len(units))
		}
		free := p.freeUnits[:0]
		for _, u := range units {
			if u.busyUntil < p.cycle {
				free = append(free, u)
			}
		}
		if len(free) == 0 {
			continue
		}
		// Candidates in priority order: at most one instruction per slot
		// per class can be waiting at the head of its standby FIFO. The
		// pending mask is iterated by repeatedly extracting the slot with
		// the best (lowest) priority rank — identical order to walking
		// p.prio, but proportional to the candidates, not the slot count.
		pending := p.classMask[cls]
		for pending != 0 && len(free) > 0 {
			slotID, bestRank := -1, 256
			for m := pending; m != 0; m &= m - 1 {
				id := bits.TrailingZeros64(m)
				if r := int(p.prioIdx[id]); r < bestRank {
					slotID, bestRank = id, r
				}
			}
			pending &^= slotBit(slotID)
			if p.hostSampled {
				p.touchSmp.SlotVisits++
			}
			s := p.slots[slotID]
			var inf *inflight
			if p.cfg.StandbyStations {
				if len(s.standby[cls]) > 0 {
					inf = s.standby[cls][0]
				}
			} else if s.latch != nil && s.latch.class == cls {
				inf = s.latch
			}
			if inf == nil {
				continue
			}
			u := free[0]
			free = free[1:]
			p.selectInstr(u, inf)
			if p.cfg.StandbyStations {
				q := s.standby[cls]
				s.standby[cls] = q[:copy(q, q[1:])]
				if len(s.standby[cls]) == 0 {
					p.clearClassSlot(int(cls), slotBit(slotID))
				}
			} else {
				s.latch = nil
				p.clearClassSlot(int(cls), slotBit(slotID))
			}
			p.freeInflight(inf)
			p.issuedPending--
		}
	}
}

// schedulePhaseScan is the legacy scan path: every class, every unit, every
// slot in priority order, each cycle.
func (p *Processor) schedulePhaseScan() {
	for cls := isa.UnitClass(1); int(cls) < unitClassCount; cls++ {
		units := p.unitsByCls[cls]
		if p.hostSampled {
			p.touchSmp.UnitVisits += uint64(len(units))
		}
		free := p.freeUnits[:0]
		for _, u := range units {
			if u.busyUntil < p.cycle {
				free = append(free, u)
			}
		}
		if len(free) == 0 {
			continue
		}
		for _, slotID := range p.prio {
			if len(free) == 0 {
				break
			}
			if p.hostSampled {
				p.touchSmp.SlotVisits++
			}
			s := p.slots[slotID]
			var inf *inflight
			if p.cfg.StandbyStations {
				if len(s.standby[cls]) > 0 {
					inf = s.standby[cls][0]
				}
			} else if s.latch != nil && s.latch.class == cls {
				inf = s.latch
			}
			if inf == nil {
				continue
			}
			u := free[0]
			free = free[1:]
			p.selectInstr(u, inf)
			if p.cfg.StandbyStations {
				q := s.standby[cls]
				s.standby[cls] = q[:copy(q, q[1:])]
				if len(s.standby[cls]) == 0 {
					p.clearClassSlot(int(cls), slotBit(slotID))
				}
			} else {
				s.latch = nil
				p.clearClassSlot(int(cls), slotBit(slotID))
			}
			p.freeInflight(inf)
			p.issuedPending--
		}
	}
}

// selectInstr commits an issued instruction to a functional unit. The
// caller owns removing inf from its standby station/latch and returning it
// to the pool.
func (p *Processor) selectInstr(u *funcUnit, inf *inflight) {
	issueLat := inf.pre.issueLat
	resultLat := inf.pre.resultLat + uint64(inf.extraLat)

	u.busyUntil = p.cycle + issueLat - 1
	u.stat.Invocations++
	u.stat.BusyCycles += issueLat
	// The unit frees at busyUntil+1 (schedulePhase needs busyUntil < cycle);
	// a standby entry of this class may be waiting for exactly that cycle.
	p.pushEv(u.busyUntil + 1)
	if p.hostSampled {
		p.touchSmp.UnitHits++
		p.touchSmp.SlotHits++
	}

	ready := p.cycle + resultLat
	if inf.frame >= 0 {
		p.frames[inf.frame].setReady(inf.dest, ready)
	}
	// This selection may be the unblock a sentinel-deadline head stall
	// waits for: the standby drain, or the stamp that turns a pendingReady
	// scoreboard entry into a concrete cycle. Concrete-deadline stalls are
	// unaffected — a selection never moves a readyAt earlier.
	if sl := p.slots[inf.slot]; sl.stallUntil == pendingReady {
		sl.stallUntil = 0
	}
	stampQueueEntry(inf.push, ready)

	s := p.slots[inf.slot]
	s.outstanding++
	p.outstanding++
	if ready-p.cycle > p.compMask {
		panic("core: completion ring too small for result latency")
	}
	idx := ready & p.compMask
	p.completions[idx] = append(p.completions[idx], inf.slot)
	p.pushEv(ready)
	p.touch(ready)
	if p.OnSelect != nil {
		p.OnSelect(inf.slot, inf.pc, p.cycle)
	}
	if p.observer != nil {
		p.observer.Select(p.cycle, inf.slot, inf.pc, inf.ins, u.class, u.index, ready)
		if p.compDetail != nil {
			p.compDetail[idx] = append(p.compDetail[idx], compDetail{
				slot: inf.slot, pc: inf.pc, ins: inf.ins, unit: u.class, unitIndex: u.index,
			})
		}
	}
}
