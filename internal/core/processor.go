package core

import (
	"fmt"
	"math"
	"strings"

	"hirata/internal/exec"
	"hirata/internal/isa"
	"hirata/internal/mem"
)

// pendingReady marks a scoreboard entry or queue entry whose producer has
// been issued but not yet selected by an instruction schedule unit.
const pendingReady = math.MaxUint64

// frameState is the lifecycle of a context frame (one thread).
type frameState uint8

const (
	frameFree    frameState = iota // no thread assigned
	frameReady                     // runnable, waiting for a thread slot
	frameRunning                   // bound to a thread slot
	frameWaiting                   // switched out on a data-absence trap
	frameDone                      // halted or killed
)

// contextFrame bundles a register bank, the instruction address save
// register, the thread status, the per-bank scoreboard and the access
// requirement buffer (§2.1.3).
type contextFrame struct {
	id        int
	tid       int64
	traceID   int // index into Processor.traces; -1 in execution-driven mode
	state     frameState
	regs      exec.RegFile
	pc        int64 // instruction address save register
	readyAt   [isa.NumIntRegs + isa.NumFPRegs]uint64
	arb       mem.AccessRequirementBuffer
	waitUntil uint64         // when the remote data arrives
	satisfied map[int64]bool // remote addresses now locally available
	arbSeq    uint64         // sequence source for arb entries
}

// frameLive reports whether a frame state counts toward liveFrames: the
// states that keep the simulation running (ready, running or waiting).
func frameLive(st frameState) bool {
	return st == frameReady || st == frameRunning || st == frameWaiting
}

// sbIndex maps a register to its scoreboard slot.
func sbIndex(r isa.Reg) int {
	if r.IsFP() {
		return isa.NumIntRegs + r.Index()
	}
	return r.Index()
}

// scoreboardReady reports whether register r is free of pending writes at
// the given cycle.
func (f *contextFrame) scoreboardReady(r isa.Reg, cycle uint64) bool {
	if !r.Valid() || (r.IsInt() && r.Index() == 0) {
		return true
	}
	return f.readyAt[sbIndex(r)] <= cycle
}

// markPending flags r busy until the producing instruction is scheduled.
func (f *contextFrame) markPending(r isa.Reg) {
	if r.Valid() && !(r.IsInt() && r.Index() == 0) {
		f.readyAt[sbIndex(r)] = pendingReady
	}
}

// setReady records the cycle at which r's pending write completes.
func (f *contextFrame) setReady(r isa.Reg, cycle uint64) {
	if r.Valid() && !(r.IsInt() && r.Index() == 0) {
		f.readyAt[sbIndex(r)] = cycle
	}
}

// reset clears the frame for reuse by a new thread.
func (f *contextFrame) reset() {
	f.regs.Reset()
	f.pc = 0
	f.readyAt = [isa.NumIntRegs + isa.NumFPRegs]uint64{}
	f.arb.Clear()
	f.waitUntil = 0
	f.satisfied = nil
	f.state = frameFree
}

// slotState is the lifecycle of a thread slot (logical processor).
type slotState uint8

const (
	slotIdle     slotState = iota // no context frame bound
	slotRunning                   // executing a thread
	slotDraining                  // waiting for issued instructions before a context switch
)

// bufEntry is one instruction in a slot's instruction queue unit: the
// decoded-instruction payload plus the cycle gate for entering decode.
type bufEntry struct {
	d     dinstr
	minD1 uint64 // earliest cycle the entry may enter decode stage D1
}

// dinstr is an instruction occupying a decode stage.
type dinstr struct {
	pc      int64
	ins     isa.Instruction
	pre     *insMeta // predecoded metadata for ins
	fromARB bool
	arbSeq  uint64
	addr    int64 // recorded effective address (trace-driven mode)
}

// inflight is an issued instruction waiting in a standby station (or the
// issue latch) for an instruction schedule unit to select it. Its
// architectural effects are already applied; only timing remains.
type inflight struct {
	ins      isa.Instruction
	pre      *insMeta // predecoded metadata for ins
	pc       int64
	slot     int
	frame    int
	class    isa.UnitClass
	dest     isa.Reg // NoReg if none or queue-mapped
	push     *qentry // reserved queue entry to stamp at select time
	extraLat int     // additional result latency (cache miss, remote access)
}

// slot is one thread slot: instruction queue unit + decode unit + program
// counter, forming a logical processor.
type slot struct {
	id          int
	state       slotState
	frame       int // bound context frame id, -1 when idle
	buf         insRing
	bufCap      int
	fetchPC     int64
	fetchGen    uint64      // invalidates in-flight fetches after a flush
	fetchDone   bool        // fetchPC ran past the program end
	d1n         int         // buffer-front entries occupying decode stage D1 (see advanceDecodeStages)
	stallUntil  uint64      // head-of-D2 stall deadline, 0 = none (see cacheHeadStall)
	stallReason StallReason // cached stall's per-cycle tally reason
	d2          []dinstr
	standby     [unitClassCount][]*inflight // FIFO per class, cap = StandbyDepth
	latch       *inflight                   // used when standby stations are disabled
	outstanding int                         // selected instructions not yet completed
	bindReadyAt uint64                      // context-switch rebinding delay
	// fetchHoldUntil keeps the fetch unit away from this slot until a
	// branch redirect becomes eligible, so the refetch cannot start in the
	// resolution cycle itself (the decode-to-decode branch distance is 5).
	fetchHoldUntil uint64

	// Queue register mappings (NoReg = unmapped).
	qInInt, qOutInt isa.Reg
	qInFP, qOutFP   isa.Reg
}

// flushPipeline empties the decode stages and instruction queue buffer.
func (s *slot) flushPipeline() {
	s.buf.reset()
	s.d1n = 0
	s.stallUntil = 0
	s.d2 = s.d2[:0]
	s.fetchGen++
}

// issuedEmpty reports whether no issued instruction awaits scheduling.
func (s *slot) issuedEmpty() bool {
	if s.latch != nil {
		return false
	}
	for _, st := range s.standby {
		if len(st) > 0 {
			return false
		}
	}
	return true
}

// unmapQueues clears all queue register mappings.
func (s *slot) unmapQueues() {
	s.qInInt, s.qOutInt = isa.NoReg, isa.NoReg
	s.qInFP, s.qOutFP = isa.NoReg, isa.NoReg
}

// funcUnit is one functional unit instance.
type funcUnit struct {
	class     isa.UnitClass
	index     int
	busyUntil uint64 // last cycle of the current issue-latency occupancy
	stat      UnitStat
}

// redirectReq asks the fetch unit to serve a slot after a branch.
type redirectReq struct {
	slot          int
	gen           uint64
	earliestStart uint64
}

// fetchUnit models the (shared or per-slot) instruction fetch unit.
type fetchUnit struct {
	icache    *mem.Cache
	busy      bool
	busyUntil uint64
	target    int
	gen       uint64
	pc0, pc1  int64 // pending delivery: stream range [pc0, pc1)
	redirects []redirectReq
	rr        int    // round-robin position
	slotMask  uint64 // slots served by this unit (round-robin assignment)
}

// Processor is one multithreaded physical processor.
type Processor struct {
	cfg      Config
	prog     []isa.Instruction
	pre      []insMeta   // predecoded metadata, parallel to prog
	tracePre [][]insMeta // predecoded metadata per trace (trace mode)
	mem      *mem.Memory
	dcache   *mem.Cache

	cycle    uint64
	slots    []*slot
	frames   []*contextFrame
	readyQ   []int // frame ids ready to run, FIFO
	prio     []int // slot ids, highest priority first
	explicit bool
	rotCount uint64 // rotateOnce invocations; guards decodeAndAdvance's prio iteration

	// Live aggregates kept in sync by setFrameState/setSlotState and the
	// issue/select paths. They replace the per-cycle finished()/wakeFrames()
	// scans and feed the quiescent-cycle horizon (skip.go).
	liveFrames    int         // frames in ready/running/waiting states
	runningSlots  int         // slots in slotRunning
	drainingSlots int         // slots in slotDraining
	issuedPending int         // standby/latch entries not yet selected
	waitHeap      []frameWake // min-heap of (waitUntil, frame id)
	nextRotation  uint64      // next implicit-rotation boundary (multiple of RotationInterval)
	stepsExecuted uint64      // stepCycle invocations (cycle-skip effectiveness metric)

	// Event-driven dirty sets (event.go). eventCore is the master switch
	// (!Config.DisableEventCore); evNear/evFar form the pending-event set
	// (a 64-cycle timing-wheel bitmap plus an overflow min-heap) holding
	// future cycles at which timed state changes; classMask[cls], classDirty
	// and fetchable are per-structure dirty bitmaps maintained at the
	// mutation sites. The masks are maintained on both cores (cheap bit
	// ops) but only consulted when eventCore is set, so the legacy path
	// scans exactly as the original loop did.
	eventCore        bool
	evNear           uint64                 // bit k = event at cycle+1+k (k < 64)
	evFar            []uint64               // min-heap of events beyond the near window
	classMask        [unitClassCount]uint64 // slots with issued-but-unselected work, per class
	classDirty       uint32                 // bit cls set iff classMask[cls] != 0
	fetchable        uint64                 // slots whose queue buffer wants a fill
	busyFetchers     int                    // fetch units mid-access
	pendingRedirects int                    // queued branch-redirect requests
	infPool          []*inflight            // in-flight entry free list
	ictx             issueCtx               // reusable exec.Context for the issue path
	prioIdx          []uint8                // slot id -> rank in prio (rebuilt on rotation)

	units      []*funcUnit
	unitsByCls [unitClassCount][]*funcUnit
	fetchers   []*fetchUnit // one if shared, one per slot if private
	// completions is a ring of per-cycle completion lists, sized to the
	// maximum possible result latency (Table 1 + remote + cache miss).
	completions [][]int
	compMask    uint64
	// compDetail mirrors completions with the facts Observer.Complete
	// reports. Allocated lazily by Run only when an observer is attached,
	// so the nil-observer hot loop never touches it.
	compDetail [][]compDetail
	intQueues  []*queueFIFO // ring link read by slot i
	fpQueues   []*queueFIFO

	outstanding int // total selected-but-incomplete instructions
	nextTID     int64
	fetchMax    int // B: instructions delivered per fetch access

	// Trace-driven mode (the paper's §3 methodology): each thread replays
	// a recorded dynamic instruction stream; decode performs all timing
	// interlocks but no architectural execution.
	traceMode bool
	traces    [][]TraceInput

	issueBudget int // per-cycle issue budget (MaxIssuePerCycle)

	// Reusable per-cycle scratch buffers (the simulator is single-
	// threaded; these avoid per-cycle allocations).
	freeUnits    []*funcUnit
	pendScratch  []isa.Reg
	pendScratch2 []isa.Reg
	idxScratch   []int

	stats     Result
	started   bool
	lastEvent uint64 // cycle of the latest architectural activity

	// OnIssue, when set, observes every instruction leaving a decode unit:
	// (slot, pc, cycle). Used by timing tests and the trace tool.
	OnIssue func(slot int, pc int64, cycle uint64)
	// OnSelect observes every selection by an instruction schedule unit.
	OnSelect func(slot int, pc int64, cycle uint64)

	observer Observer // optional rich event sink (see Observe)

	// Host-side self-observability (hostprobe.go). hostProbe is the
	// optional probe; hostSampled flags that the probe elected to sample
	// the step in flight, gating every touch-census increment so the
	// disabled path costs one nil check per step plus predictable
	// always-false branches.
	hostProbe   HostProbe
	hostSampled bool
	touchSmp    TouchSample
}

// compDetail carries one completing instruction to Observer.Complete.
type compDetail struct {
	slot      int
	pc        int64
	ins       isa.Instruction
	unit      isa.UnitClass
	unitIndex int
}

// TraceInput is one record of a dynamic instruction stream for
// trace-driven simulation: the instruction plus the effective address of
// memory operations (register values are not replayed, so addresses must
// be recorded). Branch records always redirect the stream to the next
// trace entry; the flush penalty models the machine's lack of branch
// prediction, exactly as in execution-driven mode.
type TraceInput struct {
	Ins  isa.Instruction
	Addr int64
}

// NewTraceDriven builds a processor that replays one recorded instruction
// stream per thread (the paper's trace-driven methodology). Thread i
// replays traces[i]; ContextFrames is raised to the thread count if
// needed. The traces may contain only ordinary instructions, branches and
// a final HALT — the multithreading-control opcodes describe interactions
// a linear trace cannot capture. Call Run directly; StartThread is not
// used in this mode.
func NewTraceDriven(cfg Config, traces [][]TraceInput) (*Processor, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("core: no traces")
	}
	if cfg.ContextFrames < len(traces) {
		cfg.ContextFrames = len(traces)
	}
	for t, tr := range traces {
		if len(tr) == 0 {
			return nil, fmt.Errorf("core: trace %d is empty", t)
		}
		for i, rec := range tr {
			switch rec.Ins.Op {
			case isa.FFORK, isa.KILL, isa.CHGPRI, isa.QEN, isa.QENF, isa.QDIS, isa.SETMODE, isa.SWP, isa.FSWP, isa.TID:
				return nil, fmt.Errorf("core: trace %d record %d: %s cannot be replayed from a trace", t, i, rec.Ins.Op)
			}
		}
	}
	p, err := New(cfg, []isa.Instruction{{Op: isa.HALT}}, mem.NewMemory(1))
	if err != nil {
		return nil, err
	}
	p.traceMode = true
	p.traces = traces
	p.tracePre = make([][]insMeta, len(traces))
	for i, tr := range traces {
		p.tracePre[i] = predecodeTrace(tr)
	}
	for i := range traces {
		f := p.frames[i]
		p.setFrameState(f, frameReady)
		f.traceID = i
		f.tid = int64(i)
		p.readyQ = append(p.readyQ, f.id)
	}
	p.nextTID = int64(len(traces))
	return p, nil
}

// New builds a processor for the given program and data memory.
func New(cfg Config, prog []isa.Instruction, m *mem.Memory) (*Processor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(prog) == 0 {
		return nil, fmt.Errorf("core: empty program")
	}
	p := &Processor{
		cfg:    cfg,
		prog:   prog,
		pre:    predecode(prog),
		mem:    m,
		dcache: mem.NewCache(cfg.DCache),
	}
	p.nextRotation = uint64(cfg.RotationInterval)
	maxLat := 32 + m.RemoteLatency() + cfg.DCache.MissPenalty + mem.CacheAccessCycles
	ringSize := 64
	for ringSize < maxLat+2 {
		ringSize *= 2
	}
	p.completions = make([][]int, ringSize)
	p.compMask = uint64(ringSize - 1)
	// The paper sizes the queue buffer at B = S×C words minimum and fetches
	// at most B instructions per access; we give the buffer 2×B so a fetch
	// can overlap the draining of the previous block.
	p.fetchMax = cfg.ThreadSlots * mem.CacheAccessCycles * cfg.IssueWidth
	if p.fetchMax < 2 {
		p.fetchMax = 2
	}
	bufCap := 2 * p.fetchMax
	for i := 0; i < cfg.ThreadSlots; i++ {
		s := &slot{id: i, frame: -1, bufCap: bufCap}
		s.unmapQueues()
		p.slots = append(p.slots, s)
		p.prio = append(p.prio, i)
		p.prioIdx = append(p.prioIdx, uint8(i))
	}
	for i := 0; i < cfg.ContextFrames; i++ {
		p.frames = append(p.frames, &contextFrame{id: i, traceID: -1})
	}
	for cls := isa.UnitClass(1); int(cls) < unitClassCount; cls++ {
		for k := 0; k < cfg.unitCount(cls); k++ {
			u := &funcUnit{class: cls, index: k, stat: UnitStat{Class: cls, Index: k}}
			p.units = append(p.units, u)
			p.unitsByCls[cls] = append(p.unitsByCls[cls], u)
		}
	}
	// Scratch for schedulePhase's free-unit scan; sized to the largest
	// class so the hot loop never reallocates it.
	for _, us := range p.unitsByCls {
		if len(us) > cap(p.freeUnits) {
			p.freeUnits = make([]*funcUnit, 0, len(us))
		}
	}
	for i := 0; i < cfg.FetchUnits; i++ {
		fu := &fetchUnit{icache: mem.NewCache(cfg.ICache), target: -1}
		// Bitmask of the slots this unit serves (round-robin assignment),
		// intersected with the fetchable dirty set to elide idle units.
		for id := i; id < cfg.ThreadSlots; id += cfg.FetchUnits {
			fu.slotMask |= slotBit(id)
		}
		p.fetchers = append(p.fetchers, fu)
	}
	p.explicit = cfg.ExplicitRotation
	p.eventCore = !cfg.DisableEventCore
	p.stats.Slots = make([]SlotStat, cfg.ThreadSlots)
	p.initQueues()
	return p, nil
}

// StartThread registers a runnable thread beginning at pc. Threads are
// assigned to slots in registration order at cycle 0 (and later, whenever a
// slot frees up). Must be called before Run.
func (p *Processor) StartThread(pc int64) error {
	if p.started {
		return fmt.Errorf("core: StartThread after Run")
	}
	if p.traceMode {
		return fmt.Errorf("core: StartThread is not used in trace-driven mode")
	}
	if pc < 0 || pc >= int64(len(p.prog)) {
		return fmt.Errorf("core: start pc %d outside program", pc)
	}
	for _, f := range p.frames {
		if f.state == frameFree {
			p.setFrameState(f, frameReady)
			f.pc = pc
			f.tid = p.nextTID
			p.nextTID++
			p.readyQ = append(p.readyQ, f.id)
			return nil
		}
	}
	return fmt.Errorf("core: no free context frame for thread (have %d)", len(p.frames))
}

// concurrentOn reports whether data-absence traps switch contexts.
func (p *Processor) concurrentOn() bool {
	return p.cfg.ContextFrames > p.cfg.ThreadSlots
}

// setFrameState transitions a frame's lifecycle state while keeping the
// liveFrames counter exact. Every state change after construction must go
// through here (frame.reset is exempt: it only runs on free/done frames).
func (p *Processor) setFrameState(f *contextFrame, st frameState) {
	if frameLive(f.state) != frameLive(st) {
		if frameLive(st) {
			p.liveFrames++
		} else {
			p.liveFrames--
		}
	}
	f.state = st
}

// setSlotState transitions a slot's lifecycle state while keeping the
// runningSlots/drainingSlots counters and the fetchable dirty set exact.
// A transition out of slotRunning schedules an event for the next cycle:
// it may expose a fully-drained slot to the unbind check, a ready frame to
// an idle slot, or a standby entry to an idle unit — all at cycle+1,
// exactly where the legacy horizon scan's floor-collapse cases land.
func (p *Processor) setSlotState(s *slot, st slotState) {
	if s.state == slotRunning && st != slotRunning {
		p.pushEv(p.cycle + 1)
	}
	switch s.state {
	case slotRunning:
		p.runningSlots--
	case slotDraining:
		p.drainingSlots--
	}
	switch st {
	case slotRunning:
		p.runningSlots++
	case slotDraining:
		p.drainingSlots++
	}
	s.state = st
	p.refreshFetchable(s)
}

// frameWake is one waitUntil deadline in the wake heap. Entries order by
// (when, id) so that frames waking in the same cycle enter the ready queue
// in frame-id order, exactly as the previous full scan did. Entries can go
// stale (the frame was killed before its data arrived); wakeFrames and the
// quiescent horizon tolerate them — a stale deadline can only make the
// horizon earlier, never later, so it costs one extra step at worst.
type frameWake struct {
	when uint64
	id   int
}

func wakeLess(a, b frameWake) bool {
	return a.when < b.when || (a.when == b.when && a.id < b.id)
}

// pushWait records a frame's wake deadline in the min-heap.
func (p *Processor) pushWait(when uint64, id int) {
	h := append(p.waitHeap, frameWake{when: when, id: id})
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !wakeLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	p.waitHeap = h
}

// popWait removes and returns the earliest wake deadline.
func (p *Processor) popWait() frameWake {
	h := p.waitHeap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r, small := 2*i+1, 2*i+2, i
		if l < n && wakeLess(h[l], h[small]) {
			small = l
		}
		if r < n && wakeLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	p.waitHeap = h
	return top
}

// Run simulates until every thread has finished, and returns statistics.
func (p *Processor) Run() (Result, error) {
	if p.started {
		return Result{}, fmt.Errorf("core: Run called twice")
	}
	if len(p.readyQ) == 0 {
		if err := p.StartThread(0); err != nil {
			return Result{}, err
		}
	}
	p.started = true
	if p.observer != nil {
		p.compDetail = make([][]compDetail, len(p.completions))
	}
	for {
		if p.cycle >= p.cfg.MaxCycles {
			return p.stats, fmt.Errorf("core: exceeded %d cycles (deadlock or runaway program?)\n%s",
				p.cfg.MaxCycles, p.snapshot())
		}
		if err := p.stepCycle(); err != nil {
			return p.stats, err
		}
		if p.finished() {
			// The final step exits before advanceCycle runs; the horizon
			// machinery never armed for it, so close the sampled window
			// without charging the event-horizon phase.
			p.hostStepDone()
			break
		}
		p.advanceCycle()
	}
	p.stats.Cycles = p.lastEvent + 1
	for _, u := range p.units {
		p.stats.Units = append(p.stats.Units, u.stat)
	}
	if p.hostProbe != nil {
		p.hostProbe.RunEnd(p.stats.Cycles, p.stepsExecuted)
	}
	return p.stats, nil
}

// stepCycle advances the machine by one cycle, in reverse pipeline order so
// that each stage sees the previous cycle's downstream state.
func (p *Processor) stepCycle() error {
	p.stepsExecuted++
	if p.hostProbe != nil {
		p.hostSampled = p.hostProbe.StepStart(p.cycle)
		if p.hostSampled {
			p.touchSmp = TouchSample{Cycle: p.cycle, RunningSlots: uint64(p.runningSlots)}
		}
	}
	p.rotatePriorities()
	if p.hostSampled {
		p.hostProbe.PhaseEnd(HostPhaseRotation)
	}
	p.retireCompletions()
	if p.hostSampled {
		p.hostProbe.PhaseEnd(HostPhaseCompletion)
	}
	p.wakeFrames()
	if p.hostSampled {
		p.hostProbe.PhaseEnd(HostPhaseWake)
	}
	p.bindSlots()
	if p.hostSampled {
		p.hostProbe.PhaseEnd(HostPhaseBind)
	}
	p.schedulePhase()
	if p.hostSampled {
		p.hostProbe.PhaseEnd(HostPhaseSelect)
	}
	if p.eventCore && !p.hostSampled {
		// Fused issue+advance pass (result-identical, one slot sweep).
		// Sampled steps take the split phases below so the probe's
		// issue/decode-buffer attribution and census stay meaningful.
		if err := p.decodeAndAdvance(); err != nil {
			return err
		}
	} else {
		if err := p.decodePhase(); err != nil {
			return err
		}
		if p.hostSampled {
			p.hostProbe.PhaseEnd(HostPhaseIssue)
		}
		p.advanceDecodeStages()
		if p.hostSampled {
			p.hostProbe.PhaseEnd(HostPhaseDecodeBuffer)
		}
	}
	p.fetchPhase()
	if p.hostSampled {
		p.hostProbe.PhaseEnd(HostPhaseFetch)
		p.hostProbe.StepEnd(p.touchSmp)
	}
	return nil
}

// finished reports whether the simulation is complete. It consults only
// live counters — O(1) per cycle instead of the frame+slot scan it
// replaced (kept as finishedScan for the invariant test). Decode stages of
// non-idle slots need no separate check: d1/d2 are flushed on every
// transition to idle, and non-idle slots show up in the slot counters.
func (p *Processor) finished() bool {
	return p.outstanding == 0 && p.issuedPending == 0 && len(p.readyQ) == 0 &&
		p.liveFrames == 0 && p.runningSlots == 0 && p.drainingSlots == 0
}

// finishedScan is the original full-scan implementation of finished. Tests
// assert it agrees with the counter version every cycle.
func (p *Processor) finishedScan() bool {
	if p.outstanding > 0 || len(p.readyQ) > 0 {
		return false
	}
	for _, f := range p.frames {
		if f.state == frameRunning || f.state == frameWaiting || f.state == frameReady {
			return false
		}
	}
	for _, s := range p.slots {
		if s.state != slotIdle || s.d1n+len(s.d2) > 0 || !s.issuedEmpty() {
			return false
		}
	}
	return true
}

// rotatePriorities applies implicit-rotation mode (§2.2). Rotation
// boundaries are the multiples of RotationInterval; instead of a modulo
// per cycle, nextRotation holds the next boundary as an absolute cycle
// number. A boundary is consumed even in explicit mode (matching the old
// modulo check: a SETMODE flip back to implicit resumes on the original
// period, not a shifted one).
func (p *Processor) rotatePriorities() {
	if p.cycle != p.nextRotation {
		return
	}
	p.nextRotation += uint64(p.cfg.RotationInterval)
	if p.explicit {
		return
	}
	p.rotateOnce()
}

// rotateOnce moves the highest-priority slot to the lowest position.
func (p *Processor) rotateOnce() {
	if len(p.prio) < 2 {
		return
	}
	head := p.prio[0]
	copy(p.prio, p.prio[1:])
	p.prio[len(p.prio)-1] = head
	p.rotCount++
	for r, id := range p.prio {
		p.prioIdx[id] = uint8(r)
	}
	if p.observer != nil {
		p.observer.Rotate(p.cycle, p.prio)
	}
}

// highestActiveSlot returns the highest-priority slot currently running a
// thread, or -1. Idle slots are skipped so that priority-interlocked
// instructions cannot deadlock behind a finished thread.
func (p *Processor) highestActiveSlot() int {
	for _, id := range p.prio {
		if p.slots[id].state == slotRunning || p.slots[id].state == slotDraining {
			return id
		}
	}
	return -1
}

// retireCompletions credits instructions whose result latency elapsed.
func (p *Processor) retireCompletions() {
	idx := p.cycle & p.compMask
	if p.hostSampled {
		p.touchSmp.Retires += uint64(len(p.completions[idx]))
	}
	for _, id := range p.completions[idx] {
		p.slots[id].outstanding--
		p.outstanding--
	}
	p.completions[idx] = p.completions[idx][:0]
	if p.compDetail != nil {
		for _, d := range p.compDetail[idx] {
			p.observer.Complete(p.cycle, d.slot, d.pc, d.ins, d.unit, d.unitIndex)
		}
		p.compDetail[idx] = p.compDetail[idx][:0]
	}
}

// wakeFrames transitions waiting frames whose remote data has arrived.
// Deadlines come from the wait heap instead of a full frame scan; stale
// entries (frame killed, or re-trapped with a later deadline) are skipped.
// (when, id) heap order reproduces the scan's frame-id wake order for
// frames sharing a deadline.
func (p *Processor) wakeFrames() {
	for len(p.waitHeap) > 0 && p.waitHeap[0].when <= p.cycle {
		fw := p.popWait()
		f := p.frames[fw.id]
		if p.hostSampled {
			p.touchSmp.FrameVisits++
		}
		if f.state != frameWaiting || f.waitUntil != fw.when {
			continue // stale deadline
		}
		p.setFrameState(f, frameReady)
		p.readyQ = append(p.readyQ, f.id)
		if p.hostSampled {
			p.touchSmp.FrameHits++
		}
		p.touch(p.cycle)
	}
}

// bindSlots assigns ready frames to idle slots. The event core gates each
// loop on its work set: the bind scan needs both a ready frame and an idle
// slot, the unbind scan needs a draining slot. The gates are exact (the
// loops are no-ops without those conditions), so legacy and event cores
// bind identically.
func (p *Processor) bindSlots() {
	idleSlots := len(p.slots) - p.runningSlots - p.drainingSlots
	if !p.eventCore || (len(p.readyQ) > 0 && idleSlots > 0) {
		for _, s := range p.slots {
			if p.hostSampled {
				p.touchSmp.SlotVisits++
			}
			if s.state != slotIdle || p.cycle < s.bindReadyAt || len(p.readyQ) == 0 {
				continue
			}
			fid := p.readyQ[0]
			p.readyQ = p.readyQ[1:]
			p.bindFrame(s, p.frames[fid])
		}
	}
	// Complete pending context switches: a draining slot unbinds once its
	// issued instructions have been performed (§2.1.3).
	if !p.eventCore || p.drainingSlots > 0 {
		for _, s := range p.slots {
			if s.state != slotDraining {
				continue
			}
			if p.hostSampled {
				p.touchSmp.SlotVisits++
			}
			if s.outstanding == 0 && s.issuedEmpty() {
				p.setSlotState(s, slotIdle)
				s.frame = -1
				s.bindReadyAt = p.cycle + uint64(p.cfg.ContextSwitchCycles)
				// The freshly idle slot can take a ready frame once the
				// rebind delay elapses.
				p.pushEv(s.bindReadyAt)
				if p.hostSampled {
					p.touchSmp.SlotHits++
				}
				p.touch(s.bindReadyAt)
			}
		}
	}
}

// bindFrame binds frame f to slot s and restarts its instruction stream,
// re-injecting any outstanding access requirements first.
func (p *Processor) bindFrame(s *slot, f *contextFrame) {
	p.setFrameState(f, frameRunning)
	p.setSlotState(s, slotRunning)
	s.frame = f.id
	s.flushPipeline()
	s.fetchPC = f.pc
	s.fetchDone = f.pc >= p.streamLen(f)
	for _, req := range f.arb.Pending() {
		// ARB re-injection happens only in execution-driven mode (traps
		// cannot occur during trace replay), so program metadata applies.
		s.buf.push(bufEntry{
			d:     dinstr{pc: req.PC, ins: req.Instr, pre: &p.pre[req.PC], fromARB: true, arbSeq: req.Seq},
			minD1: p.cycle + 1,
		})
	}
	p.refreshFetchable(s)
	if p.observer != nil {
		p.observer.Bind(p.cycle, s.id, f.id, f.tid)
	}
	if p.hostSampled {
		p.touchSmp.Binds++
		p.touchSmp.SlotHits++
	}
	p.touch(p.cycle)
}

// streamLen returns the length of the instruction stream a frame runs:
// the program text, or the frame's trace in trace-driven mode.
func (p *Processor) streamLen(f *contextFrame) int64 {
	if p.traceMode && f.traceID >= 0 {
		return int64(len(p.traces[f.traceID]))
	}
	return int64(len(p.prog))
}

// streamAt fetches one instruction of a frame's stream.
func (p *Processor) streamAt(f *contextFrame, pc int64) (isa.Instruction, int64) {
	if p.traceMode && f.traceID >= 0 {
		rec := p.traces[f.traceID][pc]
		return rec.Ins, rec.Addr
	}
	return p.prog[pc], 0
}

// touch records architectural activity for the total-cycle metric.
func (p *Processor) touch(cycle uint64) {
	if cycle > p.lastEvent {
		p.lastEvent = cycle
	}
}

// snapshot renders a short machine-state dump for deadlock diagnostics.
func (p *Processor) snapshot() string {
	var out strings.Builder
	for _, s := range p.slots {
		fmt.Fprintf(&out, "slot %d: state=%d frame=%d buf=%d d1=%d d2=%d outstanding=%d",
			s.id, s.state, s.frame, s.buf.len()-s.d1n, s.d1n, len(s.d2), s.outstanding)
		if len(s.d2) > 0 {
			fmt.Fprintf(&out, " d2head=%q(pc=%d)", s.d2[0].ins.String(), s.d2[0].pc)
		}
		out.WriteByte('\n')
	}
	return out.String()
}

// Cycle returns the current cycle (for tests).
func (p *Processor) Cycle() uint64 { return p.cycle }

// Frame returns a context frame's register bank and thread id (for tests
// and result extraction after Run).
func (p *Processor) Frame(i int) (*exec.RegFile, int64) {
	return &p.frames[i].regs, p.frames[i].tid
}

// Mem returns the data memory the processor operates on.
func (p *Processor) Mem() *mem.Memory { return p.mem }
