package core

// Config.ExtraUnits: the unit census must grow per class, the scheduler
// must actually build (and use) the extra instances, and validation must
// reject nonsense. What-if bottleneck validation (internal/obs) re-runs
// workloads through this knob, so it has to be cycle-visible: an
// ALU-saturated kernel must get faster with a second ALU.

import (
	"strings"
	"testing"

	"hirata/internal/asm"
	"hirata/internal/isa"
	"hirata/internal/mem"
)

func TestExtraUnitsCensus(t *testing.T) {
	var cfg Config
	cfg.ExtraUnits[isa.UnitIntALU] = 1
	cfg.LoadStoreUnits = 2
	cfg.ExtraUnits[isa.UnitLoadStore] = 1
	if got := cfg.UnitCount(isa.UnitIntALU); got != 2 {
		t.Errorf("UnitCount(IntALU) = %d, want 2", got)
	}
	if got := cfg.UnitCount(isa.UnitLoadStore); got != 3 {
		t.Errorf("UnitCount(LoadStore) = %d, want 3", got)
	}
	if got := cfg.UnitCount(isa.UnitFPAdd); got != 1 {
		t.Errorf("UnitCount(FPAdd) = %d, want 1", got)
	}
	if got := cfg.UnitCount(isa.UnitNone); got != 0 {
		t.Errorf("UnitCount(UnitNone) = %d, want 0", got)
	}

	prog := []isa.Instruction{{Op: isa.HALT}}
	p, err := New(cfg, prog, mem.NewMemory(64))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.unitsByCls[isa.UnitIntALU]); got != 2 {
		t.Errorf("built %d IntALU units, want 2", got)
	}
	if got := len(p.unitsByCls[isa.UnitLoadStore]); got != 3 {
		t.Errorf("built %d LoadStore units, want 3", got)
	}
}

func TestExtraUnitsValidate(t *testing.T) {
	var cfg Config
	cfg.ExtraUnits[isa.UnitIntALU] = -1
	if _, err := New(cfg, []isa.Instruction{{Op: isa.HALT}}, mustMem(t)); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("negative ExtraUnits: got err %v, want negative-count error", err)
	}
	cfg = Config{}
	cfg.ExtraUnits[isa.UnitShifter] = 8
	if _, err := New(cfg, []isa.Instruction{{Op: isa.HALT}}, mustMem(t)); err == nil || !strings.Contains(err.Error(), "maximum of 8") {
		t.Errorf("9 shifters: got err %v, want above-maximum error", err)
	}
}

func mustMem(t *testing.T) *mem.Memory {
	t.Helper()
	return mem.NewMemory(64)
}

// aluBoundProg issues long dependent-free ADD streams from every slot so
// the single shared integer ALU is the bottleneck.
const aluBoundSrc = `
	.text
start:
	ADDI r1, r0, 200
loop:
	ADD r2, r1, r1
	ADD r3, r1, r1
	ADD r4, r1, r1
	ADD r5, r1, r1
	ADDI r1, r1, -1
	BNE r1, r0, loop
	HALT
`

func TestExtraALUSpeedsUpALUBoundRun(t *testing.T) {
	prog := asm.MustAssemble(aluBoundSrc)
	run := func(extraALU int) uint64 {
		var cfg Config
		cfg.ThreadSlots = 4
		cfg.StandbyStations = true
		cfg.ExtraUnits[isa.UnitIntALU] = extraALU
		p, err := New(cfg, prog.Text, mem.NewMemory(4096))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cfg.ThreadSlots; i++ {
			if err := p.StartThread(0); err != nil {
				t.Fatal(err)
			}
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	base, faster := run(0), run(1)
	if faster >= base {
		t.Errorf("2 ALUs took %d cycles, 1 ALU took %d; expected a speedup on an ALU-bound kernel", faster, base)
	}
}
